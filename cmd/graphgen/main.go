// graphgen generates benchmark graphs and prints their structural
// properties. Output going to a path ending in .csrg is written in the
// binary zero-copy format (mdsrun and mdsbench memory-map it back); any
// other destination gets the text edge-list format, overridable with
// -format. With -smoke it also drives a broadcast-and-fold program over
// the generated graph on a selectable execution engine (-sim), so
// generated workloads can be sanity-checked — and timed — on any engine
// before feeding them to mdsrun:
//
//	go run ./cmd/graphgen -family disk -n 200 -o disk200.txt
//	go run ./cmd/graphgen -family torus -n 1000000 -o torus1m.csrg
//	go run ./cmd/graphgen -family torus -n 1000000 -smoke -sim stepped
//	go run ./cmd/graphgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

func main() {
	family := flag.String("family", "gnp", "graph family")
	n := flag.Int("n", 100, "graph size")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	format := flag.String("format", "auto",
		"output format: auto (by -o extension: .csrg = binary, else text) | text | csrg")
	list := flag.Bool("list", false, "list available families")
	stats := flag.Bool("stats", false, "print properties instead of the graph")
	smoke := flag.Bool("smoke", false, "run a 16-round broadcast-and-fold over the graph instead of printing it")
	sim := flag.String("sim", "stepped", "execution engine for -smoke: goroutine | sharded | stepped")
	flag.Parse()

	if *list {
		for _, f := range graph.Families() {
			fmt.Println(f)
		}
		return
	}
	g, err := graph.Named(*family, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *smoke {
		runSmoke(g, *sim)
		return
	}
	if *stats {
		_, comps := g.Components()
		fmt.Printf("family=%s n=%d m=%d Δ=%d components=%d", *family, g.N(), g.M(), g.MaxDegree(), comps)
		if comps == 1 {
			fmt.Printf(" diameter=%d", g.Diameter())
		}
		fmt.Println()
		return
	}
	binary := false
	switch *format {
	case "auto":
		binary = strings.HasSuffix(*out, ".csrg")
	case "text":
	case "csrg":
		binary = true
	default:
		log.Fatalf("graphgen: unknown -format %q (formats: auto, text, csrg)", *format)
	}
	if *out == "" {
		if binary {
			log.Fatal("graphgen: -format csrg needs -o (refusing to write binary to a terminal)")
		}
		if err := g.Write(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if binary {
		if err := g.WriteCSRGFile(*out); err != nil {
			log.Fatal(err)
		}
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		f.Close()
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
}

// smokeStep is a 16-round broadcast-and-fold (the paper's Part I/II message
// pattern) with an order-sensitive accumulator, so the printed checksum is
// a determinism witness: it must be identical on every engine.
type smokeStep struct {
	out []int64
	acc int64
}

const smokeRounds = 16

func (s *smokeStep) Init(nd *congest.Node) bool {
	s.acc = nd.ID()
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func (s *smokeStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for i, msg := range in {
		v, _ := congest.Varint(msg.Payload, 0)
		s.acc = s.acc*31 + v*int64(i+1)
	}
	if round+1 >= smokeRounds {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func runSmoke(g *graph.Graph, sim string) {
	eng, err := congest.ParseEngine(sim)
	if err != nil {
		log.Fatal(err)
	}
	net := congest.NewNetwork(g, congest.Config{Engine: eng})
	out := make([]int64, g.N())
	start := time.Now()
	m, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &smokeStep{out: out}
	})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	sum := int64(0)
	for _, x := range out {
		sum = sum*131 + x
	}
	fmt.Printf("graph: %v\n", g)
	fmt.Printf("engine=%v rounds=%d messages=%d bits=%d\n", eng, m.Rounds, m.Messages, m.Bits)
	fmt.Printf("elapsed=%v (%.0f node-rounds/s)\n", elapsed.Round(time.Millisecond),
		float64(g.N())*float64(m.Rounds)/elapsed.Seconds())
	fmt.Printf("checksum=%d (engine-independent)\n", sum)
}
