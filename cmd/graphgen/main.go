// graphgen generates benchmark graphs in the repository's text format and
// prints their structural properties.
//
//	go run ./cmd/graphgen -family disk -n 200 -o disk200.txt
//	go run ./cmd/graphgen -list
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"congestds/internal/graph"
)

func main() {
	family := flag.String("family", "gnp", "graph family")
	n := flag.Int("n", 100, "graph size")
	seed := flag.Uint64("seed", 1, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	list := flag.Bool("list", false, "list available families")
	stats := flag.Bool("stats", false, "print properties instead of the graph")
	flag.Parse()

	if *list {
		for _, f := range graph.Families() {
			fmt.Println(f)
		}
		return
	}
	g, err := graph.Named(*family, *n, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *stats {
		_, comps := g.Components()
		fmt.Printf("family=%s n=%d m=%d Δ=%d components=%d", *family, g.N(), g.M(), g.MaxDegree(), comps)
		if comps == 1 {
			fmt.Printf(" diameter=%d", g.Diameter())
		}
		fmt.Println()
		return
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := g.Write(w); err != nil {
		log.Fatal(err)
	}
}
