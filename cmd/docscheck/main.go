// docscheck is the repository's documentation guard, run by the CI docs
// job:
//
//	go run ./cmd/docscheck [-root .]
//
// It enforces two invariants and exits non-zero listing every violation:
//
//   - every relative link in a Markdown file points at a file or directory
//     that exists (external http(s)/mailto links and pure #anchors are not
//     checked — the guard is against dead intra-repo references, the kind
//     a refactor silently leaves behind);
//   - every Go package under internal/ and cmd/ has a package doc comment
//     in the `// Package <name> ...` (or `// <command> ...` for main
//     packages) convention, so `go doc` output stays self-explanatory;
//   - every `//detlint:allow <analyzer> <reason>` suppression outside
//     testdata carries a reason that references something real: a
//     Markdown anchor that exists (like
//     `docs/ARCHITECTURE.md#static-guarantees`) or a `Test*` function
//     defined in the tree. detlint itself rejects reasonless and stale
//     allows; this check closes the loop so a reason cannot cite a doc
//     section or test that a later refactor deleted.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	problems = append(problems, checkPackageComments(*root)...)
	problems = append(problems, checkAllowReasons(*root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// linkRE matches Markdown inline links and images: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that every relative link target in every
// *.md file under root exists on disk.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor; what must exist is the file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: dead link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	sort.Strings(problems)
	return problems
}

// checkPackageComments verifies that every Go package under root/internal
// and root/cmd carries a package doc comment on at least one of its
// non-test files, and that non-main packages follow the `// Package <name>`
// convention.
func checkPackageComments(root string) []string {
	var problems []string
	for _, sub := range []string{"internal", "cmd"} {
		base := filepath.Join(root, sub)
		if _, err := os.Stat(base); err != nil {
			continue
		}
		// Collect package directories: any directory holding .go files.
		dirs := map[string][]string{}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
			return nil
		})
		if err != nil {
			problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", base, err))
			continue
		}
		for dir, files := range dirs {
			pkgName, doc := "", ""
			for _, file := range files {
				fset := token.NewFileSet()
				f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					problems = append(problems, fmt.Sprintf("%s: %v", file, err))
					continue
				}
				pkgName = f.Name.Name
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					doc = f.Doc.Text()
				}
			}
			switch {
			case doc == "":
				problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkgName))
			case pkgName != "main" && !strings.HasPrefix(doc, "Package "+pkgName):
				problems = append(problems, fmt.Sprintf(
					"%s: package doc comment does not start with %q", dir, "Package "+pkgName))
			}
		}
	}
	sort.Strings(problems)
	return problems
}

// allowMarker is the suppression-comment prefix, kept in sync with
// internal/lint: only a comment whose raw text begins with the marker is
// a suppression — the marker quoted mid-prose or inside a diagnostic
// string literal is not.
const allowMarker = "//detlint:allow"

// docRefRE matches a doc-anchor citation inside a reason:
// path/to/file.md#anchor (the path is repo-root-relative).
var docRefRE = regexp.MustCompile(`([A-Za-z0-9_./-]+\.md)#([A-Za-z0-9-]+)`)

// testRefRE matches a Go test-function citation inside a reason.
var testRefRE = regexp.MustCompile(`\bTest[A-Za-z0-9_]+\b`)

// headingRE matches Markdown ATX headings for anchor extraction.
var headingRE = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*$`)

// checkAllowReasons verifies that every //detlint:allow reason in
// non-testdata Go sources cites at least one reference that resolves: a
// Markdown anchor that exists or a test function defined somewhere in the
// tree. Dangling citations are reported individually, so a renamed
// heading or deleted test surfaces as exactly one problem line.
func checkAllowReasons(root string) []string {
	var problems []string
	tests, err := collectTestNames(root)
	if err != nil {
		return []string{fmt.Sprintf("docscheck: collecting test names: %v", err)}
	}
	anchors := map[string]map[string]bool{} // md path (slash) -> anchor set

	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		fset := token.NewFileSet()
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowMarker))
				analyzer, reason, _ := strings.Cut(rest, " ")
				reason = strings.TrimSpace(reason)
				where := fmt.Sprintf("%s:%d", path, fset.Position(c.Pos()).Line)
				if analyzer == "" || reason == "" {
					// detlint reports this too; repeat it here so the docs
					// job catches allows in files detlint cannot type-check.
					problems = append(problems, fmt.Sprintf(
						"%s: //detlint:allow needs an analyzer name and a reason", where))
					continue
				}
				docRefs := docRefRE.FindAllStringSubmatch(reason, -1)
				testRefs := testRefRE.FindAllString(reason, -1)
				for _, ref := range docRefs {
					mdPath, anchor := ref[1], ref[2]
					set, ok := anchors[mdPath]
					if !ok {
						set = loadAnchors(filepath.Join(root, filepath.FromSlash(mdPath)))
						anchors[mdPath] = set
					}
					if set == nil {
						problems = append(problems, fmt.Sprintf(
							"%s: allow reason cites %s#%s but %s does not exist", where, mdPath, anchor, mdPath))
					} else if !set[anchor] {
						problems = append(problems, fmt.Sprintf(
							"%s: allow reason cites %s#%s but that anchor does not exist", where, mdPath, anchor))
					}
				}
				for _, name := range testRefs {
					if !tests[name] {
						problems = append(problems, fmt.Sprintf(
							"%s: allow reason cites %s but no such test exists", where, name))
					}
				}
				// A dangling citation is already reported above; the generic
				// problem is for reasons that cite nothing checkable at all.
				if len(docRefs)+len(testRefs) == 0 {
					problems = append(problems, fmt.Sprintf(
						"%s: allow reason for %s must cite an existing doc anchor (file.md#anchor) or Test* name", where, analyzer))
				}
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	sort.Strings(problems)
	return problems
}

// loadAnchors extracts the GitHub-style anchor slugs of every heading in a
// Markdown file; nil means the file does not exist.
func loadAnchors(path string) map[string]bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	set := map[string]bool{}
	for _, m := range headingRE.FindAllStringSubmatch(string(data), -1) {
		set[slugify(m[1])] = true
	}
	return set
}

// slugify reproduces GitHub's heading-to-anchor rule closely enough for
// ASCII headings: lowercase, drop punctuation, spaces become hyphens.
func slugify(heading string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '-' || r == '_':
			b.WriteRune(r)
		case r == ' ':
			b.WriteByte('-')
		}
	}
	return b.String()
}

// testNameRE matches test/fuzz/benchmark declarations in _test.go files.
var testNameRE = regexp.MustCompile(`(?m)^func\s+((?:Test|Fuzz|Benchmark)[A-Za-z0-9_]*)\s*\(`)

// collectTestNames gathers every Test/Fuzz/Benchmark function name in the
// tree so allow reasons can cite them.
func collectTestNames(root string) (map[string]bool, error) {
	names := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "testdata":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range testNameRE.FindAllStringSubmatch(string(data), -1) {
			names[m[1]] = true
		}
		return nil
	})
	return names, err
}
