// docscheck is the repository's documentation guard, run by the CI docs
// job:
//
//	go run ./cmd/docscheck [-root .]
//
// It enforces two invariants and exits non-zero listing every violation:
//
//   - every relative link in a Markdown file points at a file or directory
//     that exists (external http(s)/mailto links and pure #anchors are not
//     checked — the guard is against dead intra-repo references, the kind
//     a refactor silently leaves behind);
//   - every Go package under internal/ and cmd/ has a package doc comment
//     in the `// Package <name> ...` (or `// <command> ...` for main
//     packages) convention, so `go doc` output stays self-explanatory.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()

	var problems []string
	problems = append(problems, checkMarkdownLinks(*root)...)
	problems = append(problems, checkPackageComments(*root)...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, p)
		}
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// linkRE matches Markdown inline links and images: [text](target).
var linkRE = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks verifies that every relative link target in every
// *.md file under root exists on disk.
func checkMarkdownLinks(root string) []string {
	var problems []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range linkRE.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") ||
				strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			// Strip an in-file anchor; what must exist is the file.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				problems = append(problems,
					fmt.Sprintf("%s: dead link %q (%s does not exist)", path, m[1], resolved))
			}
		}
		return nil
	})
	if err != nil {
		problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", root, err))
	}
	sort.Strings(problems)
	return problems
}

// checkPackageComments verifies that every Go package under root/internal
// and root/cmd carries a package doc comment on at least one of its
// non-test files, and that non-main packages follow the `// Package <name>`
// convention.
func checkPackageComments(root string) []string {
	var problems []string
	for _, sub := range []string{"internal", "cmd"} {
		base := filepath.Join(root, sub)
		if _, err := os.Stat(base); err != nil {
			continue
		}
		// Collect package directories: any directory holding .go files.
		dirs := map[string][]string{}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
			return nil
		})
		if err != nil {
			problems = append(problems, fmt.Sprintf("docscheck: walking %s: %v", base, err))
			continue
		}
		for dir, files := range dirs {
			pkgName, doc := "", ""
			for _, file := range files {
				fset := token.NewFileSet()
				f, err := parser.ParseFile(fset, file, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					problems = append(problems, fmt.Sprintf("%s: %v", file, err))
					continue
				}
				pkgName = f.Name.Name
				if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
					doc = f.Doc.Text()
				}
			}
			switch {
			case doc == "":
				problems = append(problems, fmt.Sprintf("%s: package %s has no package doc comment", dir, pkgName))
			case pkgName != "main" && !strings.HasPrefix(doc, "Package "+pkgName):
				problems = append(problems, fmt.Sprintf(
					"%s: package doc comment does not start with %q", dir, "Package "+pkgName))
			}
		}
	}
	sort.Strings(problems)
	return problems
}
