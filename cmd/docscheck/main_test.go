package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The repository itself must pass both guards — this is the same check the
// CI docs job runs via `go run ./cmd/docscheck`.
func TestRepositoryPassesDocscheck(t *testing.T) {
	if problems := checkMarkdownLinks("../.."); len(problems) > 0 {
		t.Errorf("markdown link problems:\n%s", strings.Join(problems, "\n"))
	}
	if problems := checkPackageComments("../.."); len(problems) > 0 {
		t.Errorf("package comment problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckMarkdownLinksFindsDeadLink(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	content := "see [good](doc.md), [web](https://example.com), [anchor](#x), [bad](missing/file.md)\n"
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := checkMarkdownLinks(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing/file.md") {
		t.Errorf("want exactly the dead link flagged, got %v", problems)
	}
}

func TestCheckPackageCommentsFindsMissing(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "nodoc")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkg, "a.go"), []byte("package nodoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := checkPackageComments(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "no package doc comment") {
		t.Errorf("want the missing doc flagged, got %v", problems)
	}
	// A malformed doc (not starting with "Package <name>") is flagged too.
	if err := os.WriteFile(filepath.Join(pkg, "a.go"),
		[]byte("// some words\npackage nodoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems = checkPackageComments(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "does not start with") {
		t.Errorf("want the malformed doc flagged, got %v", problems)
	}
}
