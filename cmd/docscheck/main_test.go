package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The repository itself must pass all three guards — this is the same
// check the CI docs job runs via `go run ./cmd/docscheck`.
func TestRepositoryPassesDocscheck(t *testing.T) {
	if problems := checkMarkdownLinks("../.."); len(problems) > 0 {
		t.Errorf("markdown link problems:\n%s", strings.Join(problems, "\n"))
	}
	if problems := checkPackageComments("../.."); len(problems) > 0 {
		t.Errorf("package comment problems:\n%s", strings.Join(problems, "\n"))
	}
	if problems := checkAllowReasons("../.."); len(problems) > 0 {
		t.Errorf("detlint allow-reason problems:\n%s", strings.Join(problems, "\n"))
	}
}

func TestCheckMarkdownLinksFindsDeadLink(t *testing.T) {
	dir := t.TempDir()
	md := filepath.Join(dir, "doc.md")
	content := "see [good](doc.md), [web](https://example.com), [anchor](#x), [bad](missing/file.md)\n"
	if err := os.WriteFile(md, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := checkMarkdownLinks(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "missing/file.md") {
		t.Errorf("want exactly the dead link flagged, got %v", problems)
	}
}

func TestCheckPackageCommentsFindsMissing(t *testing.T) {
	dir := t.TempDir()
	pkg := filepath.Join(dir, "internal", "nodoc")
	if err := os.MkdirAll(pkg, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(pkg, "a.go"), []byte("package nodoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems := checkPackageComments(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "no package doc comment") {
		t.Errorf("want the missing doc flagged, got %v", problems)
	}
	// A malformed doc (not starting with "Package <name>") is flagged too.
	if err := os.WriteFile(filepath.Join(pkg, "a.go"),
		[]byte("// some words\npackage nodoc\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	problems = checkPackageComments(dir)
	if len(problems) != 1 || !strings.Contains(problems[0], "does not start with") {
		t.Errorf("want the malformed doc flagged, got %v", problems)
	}
}

// TestCheckAllowReasons pins the suppression-citation contract: a reason
// resolves through a real doc anchor or a real test name; dangling
// citations, reasonless allows, and reasons citing nothing are each one
// problem — while the marker quoted mid-prose or inside a string literal
// is not a suppression at all.
func TestCheckAllowReasons(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("docs/GUIDE.md", "# Guide\n\n## Known Exceptions\n\ntext\n")
	write("pkg/ok_test.go", "package pkg\n\nimport \"testing\"\n\nfunc TestReal(t *testing.T) {}\n")
	write("pkg/ok.go", `package pkg

//detlint:allow nondet reviewed, see docs/GUIDE.md#known-exceptions
var a = 1

//detlint:allow maporder covered by TestReal
var b = 2

// Prose mentioning //detlint:allow nondet is not a suppression.
var c = "annotate //detlint:allow nondet <reason>"
`)
	write("pkg/bad.go", `package pkg

//detlint:allow nondet see docs/GUIDE.md#gone-section
var d = 1

//detlint:allow nondet covered by TestVanished
var e = 2

//detlint:allow nondet because reasons
var f = 3

//detlint:allow nondet
var g = 4
`)
	// Suppression hygiene inside testdata trees is exercised on purpose;
	// the citation check must not reach into them.
	write("pkg/testdata/src/x/x.go", "package x\n\n//detlint:allow nondet no citation at all\nvar h = 1\n")

	problems := checkAllowReasons(dir)
	wants := []string{
		"bad.go:3: allow reason cites docs/GUIDE.md#gone-section but that anchor does not exist",
		"bad.go:6: allow reason cites TestVanished but no such test exists",
		"bad.go:9: allow reason for nondet must cite an existing doc anchor",
		"bad.go:12: //detlint:allow needs an analyzer name and a reason",
	}
	if len(problems) != len(wants) {
		t.Fatalf("got %d problems, want %d:\n%s", len(problems), len(wants), strings.Join(problems, "\n"))
	}
	for _, want := range wants {
		found := false
		for _, p := range problems {
			if strings.Contains(p, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing problem containing %q in:\n%s", want, strings.Join(problems, "\n"))
		}
	}
}
