package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestExitCodes pins the scripting contract: 2 for misuse, 1 for run
// failures (with the input named), 3 is reserved for claim violations.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		want     int
		inStderr string
	}{
		{"bad-flag", []string{"-no-such-flag"}, 2, ""},
		{"positional-args", []string{"stray"}, 2, "unexpected arguments"},
		{"unknown-sim", []string{"-sim", "quantum"}, 2, ""},
		{"unknown-experiment", []string{"-quick", "-only", "E999"}, 2, "unknown experiment"},
		{"missing-graph", []string{"-earb-graph", "no/such/file.csrg"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(c.args, &out, &errb)
			if code != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, code, c.want, errb.String())
			}
			if c.inStderr != "" && !strings.Contains(errb.String(), c.inStderr) {
				t.Fatalf("run(%v): stderr %q does not contain %q", c.args, errb.String(), c.inStderr)
			}
		})
	}
}

// TestQuickExperimentSucceeds: one real experiment end to end, exit 0.
func TestQuickExperimentSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: experiment tables are exercised by internal/experiments")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-only", "E1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E1") {
		t.Fatalf("no E1 table in output:\n%s", out.String())
	}
}
