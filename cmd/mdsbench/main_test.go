package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"congestds/internal/obs"
)

// TestExitCodes pins the scripting contract: 2 for misuse, 1 for run
// failures (with the input named), 3 is reserved for claim violations.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		want     int
		inStderr string
	}{
		{"bad-flag", []string{"-no-such-flag"}, 2, ""},
		{"positional-args", []string{"stray"}, 2, "unexpected arguments"},
		{"unknown-sim", []string{"-sim", "quantum"}, 2, ""},
		{"unknown-experiment", []string{"-quick", "-only", "E999"}, 2, "unknown experiment"},
		{"missing-graph", []string{"-earb-graph", "no/such/file.csrg"}, 1, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			code := run(c.args, &out, &errb)
			if code != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, code, c.want, errb.String())
			}
			if c.inStderr != "" && !strings.Contains(errb.String(), c.inStderr) {
				t.Fatalf("run(%v): stderr %q does not contain %q", c.args, errb.String(), c.inStderr)
			}
		})
	}
}

// TestQuickExperimentSucceeds: one real experiment end to end, exit 0.
func TestQuickExperimentSucceeds(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: experiment tables are exercised by internal/experiments")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-only", "E1"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "E1") {
		t.Fatalf("no E1 table in output:\n%s", out.String())
	}
}

// TestJSONOutput: -json emits one parseable object per table row with the
// conventional columns lifted and cost figures attached.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: experiment tables are exercised by internal/experiments")
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-only", "E1", "-json"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSON rows emitted")
	}
	for i, line := range lines {
		var row struct {
			ID      string            `json:"id"`
			Family  string            `json:"family"`
			N       int64             `json:"n"`
			Rounds  int64             `json:"rounds"`
			Ratio   float64           `json:"ratio"`
			NsOp    int64             `json:"ns_op"`
			PeakRSS int64             `json:"peak_rss_bytes"`
			Cols    map[string]string `json:"cols"`
		}
		if err := json.Unmarshal([]byte(line), &row); err != nil {
			t.Fatalf("row %d is not JSON: %v\n%s", i, err, line)
		}
		if row.ID != "E1" || row.Family == "" || row.N == 0 || row.Rounds == 0 {
			t.Errorf("row %d missing lifted columns: %s", i, line)
		}
		if row.NsOp <= 0 || row.PeakRSS <= 0 {
			t.Errorf("row %d missing cost figures: %s", i, line)
		}
		if row.Cols["family"] != row.Family {
			t.Errorf("row %d raw cells disagree with lifted family: %s", i, line)
		}
	}
}

// TestTraceFlagWritesReplayableTrace: -trace captures the experiment's
// engine runs as JSONL that replays cleanly.
func TestTraceFlagWritesReplayableTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: experiment tables are exercised by internal/experiments")
	}
	trace := filepath.Join(t.TempDir(), "bench.jsonl")
	var out, errb bytes.Buffer
	if code := run([]string{"-quick", "-only", "E2", "-trace", trace}, &out, &errb); code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errb.String())
	}
	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	agg := obs.NewAggregator()
	if err := obs.Replay(f, agg); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if agg.Profile().Rounds == 0 {
		t.Error("trace contains no rounds")
	}
}
