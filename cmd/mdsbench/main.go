// mdsbench regenerates the full experiment suite (E1..E12 plus E-arb) and
// prints one table per experiment; see EXPERIMENTS.md for the
// claim-by-claim record.
//
//	go run ./cmd/mdsbench [-quick] [-only E6]
//	go run ./cmd/mdsbench -earb-scale 1000000   # million-node E-arb row
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"congestds/internal/congest"
	"congestds/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "small instances (used by the test suite)")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E6)")
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	earbScale := flag.Int("earb-scale", 0,
		"run only the full-size E-arb table at this node count (e.g. 1000000) on the stepped engine")
	flag.Parse()

	eng, err := congest.ParseEngine(*sim)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SimEngine = eng

	if *earbScale > 0 {
		t := experiments.EArbScale(*earbScale)
		fmt.Println(t)
		if t.Violations > 0 {
			fmt.Fprintf(os.Stderr, "mdsbench: %d claim violations\n", t.Violations)
			os.Exit(1)
		}
		return
	}

	violations := 0
	for _, t := range experiments.All(*quick) {
		if *only != "" && t.ID != *only {
			continue
		}
		fmt.Println(t)
		violations += t.Violations
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "mdsbench: %d claim violations\n", violations)
		os.Exit(1)
	}
}
