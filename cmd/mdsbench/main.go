// mdsbench regenerates the full experiment suite (E1..E12 plus E-arb and
// E-mcds) and prints one table per experiment; see EXPERIMENTS.md for the
// claim-by-claim record.
//
//	go run ./cmd/mdsbench [-quick] [-only E6]
//	go run ./cmd/mdsbench -earb-scale 1000000    # million-node E-arb row
//	go run ./cmd/mdsbench -emcds-scale 1000000   # million-node E-mcds row
//	go run ./cmd/mdsbench -earb-graph g.csrg     # same row on a graph file
//	go run ./cmd/mdsbench -emcds-graph g.csrg    # (.csrg is memory-mapped)
//
// Exit codes follow mdsrun's scripting contract: 0 success, 1 run failure
// (a final "sentinel <class>" stderr line names engine sentinels), 2 usage
// error, 3 claim violations in the generated tables.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"congestds/internal/congest"
	"congestds/internal/experiments"
	"congestds/internal/graph"
)

// Exit codes (see the package comment).
const (
	exitOK      = 0
	exitRun     = 1
	exitUsage   = 2
	exitCertify = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fail reports a run failure, naming the engine sentinel class when the
// error carries one.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "mdsbench: %v\n", err)
	if class := congest.SentinelClass(err); class != "" {
		fmt.Fprintf(stderr, "sentinel %s\n", class)
	}
	return exitRun
}

// run is main behind a testable seam.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "small instances (used by the test suite)")
	only := fs.String("only", "", "run a single experiment by ID (e.g. E6)")
	sim := fs.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	earbScale := fs.Int("earb-scale", 0,
		"run only the full-size E-arb table at this node count (e.g. 1000000) on the stepped engine")
	emcdsScale := fs.Int("emcds-scale", 0,
		"run only the full-size E-mcds table at this node count (e.g. 1000000) on the stepped engine")
	earbGraph := fs.String("earb-graph", "",
		"run only the full-size E-arb row on the graph at this path (.csrg is memory-mapped, else text format)")
	emcdsGraph := fs.String("emcds-graph", "",
		"run only the full-size E-mcds row on the graph at this path (.csrg is memory-mapped, else text format)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mdsbench: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}

	eng, err := congest.ParseEngine(*sim)
	if err != nil {
		fmt.Fprintf(stderr, "mdsbench: %v\n", err)
		return exitUsage
	}
	experiments.SimEngine = eng

	ranScale, scaleViolations := false, 0
	for _, scale := range []struct {
		n     int
		table func(int) *experiments.Table
	}{
		{*earbScale, experiments.EArbScale},
		{*emcdsScale, experiments.EMcdsScale},
	} {
		if scale.n <= 0 {
			continue
		}
		t := scale.table(scale.n)
		fmt.Fprintln(stdout, t)
		ranScale = true
		scaleViolations += t.Violations
	}
	for _, fileScale := range []struct {
		path  string
		table func(string, *graph.Graph) *experiments.Table
	}{
		{*earbGraph, experiments.EArbScaleOn},
		{*emcdsGraph, experiments.EMcdsScaleOn},
	} {
		if fileScale.path == "" {
			continue
		}
		g, closer, err := graph.Load(fileScale.path)
		if err != nil {
			return fail(stderr, err)
		}
		name := strings.TrimSuffix(filepath.Base(fileScale.path), filepath.Ext(fileScale.path))
		t := fileScale.table(name, g)
		closer.Close()
		fmt.Fprintln(stdout, t)
		ranScale = true
		scaleViolations += t.Violations
	}
	if ranScale {
		if scaleViolations > 0 {
			fmt.Fprintf(stderr, "mdsbench: %d claim violations\n", scaleViolations)
			return exitCertify
		}
		return exitOK
	}

	violations, matched := 0, false
	for _, e := range experiments.Suite() {
		if *only != "" && e.ID != *only {
			continue
		}
		matched = true
		t := e.Run(*quick)
		fmt.Fprintln(stdout, t)
		violations += t.Violations
	}
	if !matched {
		ids := make([]string, 0, len(experiments.Suite()))
		for _, e := range experiments.Suite() {
			ids = append(ids, e.ID)
		}
		fmt.Fprintf(stderr, "mdsbench: unknown experiment %q (experiments: %s)\n", *only, strings.Join(ids, ", "))
		return exitUsage
	}
	if violations > 0 {
		fmt.Fprintf(stderr, "mdsbench: %d claim violations\n", violations)
		return exitCertify
	}
	return exitOK
}
