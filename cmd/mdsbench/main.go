// mdsbench regenerates the full experiment suite (E1..E12 plus E-arb and
// E-mcds) and prints one table per experiment; see EXPERIMENTS.md for the
// claim-by-claim record.
//
//	go run ./cmd/mdsbench [-quick] [-only E6]
//	go run ./cmd/mdsbench -earb-scale 1000000    # million-node E-arb row
//	go run ./cmd/mdsbench -emcds-scale 1000000   # million-node E-mcds row
//	go run ./cmd/mdsbench -earb-graph g.csrg     # same row on a graph file
//	go run ./cmd/mdsbench -emcds-graph g.csrg    # (.csrg is memory-mapped)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"congestds/internal/congest"
	"congestds/internal/experiments"
	"congestds/internal/graph"
)

func main() {
	quick := flag.Bool("quick", false, "small instances (used by the test suite)")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E6)")
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	earbScale := flag.Int("earb-scale", 0,
		"run only the full-size E-arb table at this node count (e.g. 1000000) on the stepped engine")
	emcdsScale := flag.Int("emcds-scale", 0,
		"run only the full-size E-mcds table at this node count (e.g. 1000000) on the stepped engine")
	earbGraph := flag.String("earb-graph", "",
		"run only the full-size E-arb row on the graph at this path (.csrg is memory-mapped, else text format)")
	emcdsGraph := flag.String("emcds-graph", "",
		"run only the full-size E-mcds row on the graph at this path (.csrg is memory-mapped, else text format)")
	flag.Parse()

	eng, err := congest.ParseEngine(*sim)
	if err != nil {
		log.Fatal(err)
	}
	experiments.SimEngine = eng

	ranScale, scaleViolations := false, 0
	for _, scale := range []struct {
		n     int
		table func(int) *experiments.Table
	}{
		{*earbScale, experiments.EArbScale},
		{*emcdsScale, experiments.EMcdsScale},
	} {
		if scale.n <= 0 {
			continue
		}
		t := scale.table(scale.n)
		fmt.Println(t)
		ranScale = true
		scaleViolations += t.Violations
	}
	for _, fileScale := range []struct {
		path  string
		table func(string, *graph.Graph) *experiments.Table
	}{
		{*earbGraph, experiments.EArbScaleOn},
		{*emcdsGraph, experiments.EMcdsScaleOn},
	} {
		if fileScale.path == "" {
			continue
		}
		g, closer, err := graph.Load(fileScale.path)
		if err != nil {
			log.Fatal(err)
		}
		name := strings.TrimSuffix(filepath.Base(fileScale.path), filepath.Ext(fileScale.path))
		t := fileScale.table(name, g)
		closer.Close()
		fmt.Println(t)
		ranScale = true
		scaleViolations += t.Violations
	}
	if ranScale {
		if scaleViolations > 0 {
			fmt.Fprintf(os.Stderr, "mdsbench: %d claim violations\n", scaleViolations)
			os.Exit(1)
		}
		return
	}

	violations, matched := 0, false
	for _, e := range experiments.Suite() {
		if *only != "" && e.ID != *only {
			continue
		}
		matched = true
		t := e.Run(*quick)
		fmt.Println(t)
		violations += t.Violations
	}
	if !matched {
		ids := make([]string, 0, len(experiments.Suite()))
		for _, e := range experiments.Suite() {
			ids = append(ids, e.ID)
		}
		log.Fatalf("mdsbench: unknown experiment %q (experiments: %s)", *only, strings.Join(ids, ", "))
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "mdsbench: %d claim violations\n", violations)
		os.Exit(1)
	}
}
