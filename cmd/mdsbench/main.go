// mdsbench regenerates the full experiment suite (E1..E12 plus E-arb and
// E-mcds) and prints one table per experiment; see EXPERIMENTS.md for the
// claim-by-claim record.
//
//	go run ./cmd/mdsbench [-quick] [-only E6]
//	go run ./cmd/mdsbench -earb-scale 1000000    # million-node E-arb row
//	go run ./cmd/mdsbench -emcds-scale 1000000   # million-node E-mcds row
//	go run ./cmd/mdsbench -earb-graph g.csrg     # same row on a graph file
//	go run ./cmd/mdsbench -emcds-graph g.csrg    # (.csrg is memory-mapped)
//
// Exit codes follow mdsrun's scripting contract: 0 success, 1 run failure
// (a final "sentinel <class>" stderr line names engine sentinels), 2 usage
// error, 3 claim violations in the generated tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"congestds/internal/congest"
	"congestds/internal/experiments"
	"congestds/internal/graph"
	"congestds/internal/obs"
	"congestds/internal/testmem"
)

// Exit codes (see the package comment).
const (
	exitOK      = 0
	exitRun     = 1
	exitUsage   = 2
	exitCertify = 3
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// fail reports a run failure, naming the engine sentinel class when the
// error carries one.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "mdsbench: %v\n", err)
	if class := congest.SentinelClass(err); class != "" {
		fmt.Fprintf(stderr, "sentinel %s\n", class)
	}
	return exitRun
}

// jsonRow is one machine-readable result row (-json): the conventional
// columns lifted by header name when the table has them, every raw cell
// under "cols", and process-level cost figures. NsOp is the experiment's
// wall time amortized over its rows (exact for one-row scale tables);
// PeakRSS is the process high-water mark at emission, so it only grows
// down a run — the last row of an experiment bounds that experiment.
type jsonRow struct {
	ID         string            `json:"id"`
	Family     string            `json:"family,omitempty"`
	N          int64             `json:"n,omitempty"`
	Rounds     int64             `json:"rounds,omitempty"`
	Ratio      float64           `json:"ratio,omitempty"`
	OK         *bool             `json:"ok,omitempty"`
	NsOp       int64             `json:"ns_op"`
	PeakRSS    int64             `json:"peak_rss_bytes"`
	Violations int               `json:"violations"`
	Cols       map[string]string `json:"cols"`
}

// emitJSON writes one JSON object per table row.
func emitJSON(w io.Writer, t *experiments.Table, wallNs int64) error {
	col := func(row []string, name string) (string, bool) {
		for i, h := range t.Header {
			if h == name && i < len(row) {
				return row[i], true
			}
		}
		return "", false
	}
	nsOp := wallNs
	if len(t.Rows) > 1 {
		nsOp = wallNs / int64(len(t.Rows))
	}
	enc := json.NewEncoder(w)
	for _, row := range t.Rows {
		r := jsonRow{
			ID:         t.ID,
			NsOp:       nsOp,
			PeakRSS:    testmem.ReadVmHWM(),
			Violations: t.Violations,
			Cols:       make(map[string]string, len(t.Header)),
		}
		for i, h := range t.Header {
			if i < len(row) {
				r.Cols[h] = row[i]
			}
		}
		r.Family, _ = col(row, "family")
		if s, ok := col(row, "n"); ok {
			r.N, _ = strconv.ParseInt(s, 10, 64)
		}
		if s, ok := col(row, "rounds"); ok {
			r.Rounds, _ = strconv.ParseInt(s, 10, 64)
		}
		if s, ok := col(row, "ratio≤"); ok {
			r.Ratio, _ = strconv.ParseFloat(s, 64)
		}
		if s, ok := col(row, "ok"); ok {
			v := s == "true" || s == "ok"
			r.OK = &v
		}
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// run is main behind a testable seam.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdsbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	quick := fs.Bool("quick", false, "small instances (used by the test suite)")
	only := fs.String("only", "", "run a single experiment by ID (e.g. E6)")
	sim := fs.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	earbScale := fs.Int("earb-scale", 0,
		"run only the full-size E-arb table at this node count (e.g. 1000000) on the stepped engine")
	emcdsScale := fs.Int("emcds-scale", 0,
		"run only the full-size E-mcds table at this node count (e.g. 1000000) on the stepped engine")
	earbGraph := fs.String("earb-graph", "",
		"run only the full-size E-arb row on the graph at this path (.csrg is memory-mapped, else text format)")
	emcdsGraph := fs.String("emcds-graph", "",
		"run only the full-size E-mcds row on the graph at this path (.csrg is memory-mapped, else text format)")
	jsonOut := fs.Bool("json", false,
		"emit one JSON object per result row instead of tables (id, family, n, rounds, ratio, ns_op, peak_rss_bytes, raw cells)")
	tracePath := fs.String("trace", "",
		"stream per-round engine telemetry of every experiment run to this file as JSONL (see internal/obs)")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "mdsbench: unexpected arguments: %v\n", fs.Args())
		return exitUsage
	}

	eng, err := congest.ParseEngine(*sim)
	if err != nil {
		fmt.Fprintf(stderr, "mdsbench: %v\n", err)
		return exitUsage
	}
	experiments.SimEngine = eng
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return fail(stderr, err)
		}
		rec := obs.NewRecorder(obs.NewJSONL(f))
		experiments.Observer = rec
		defer func() {
			experiments.Observer = nil
			if err := rec.Close(); err != nil {
				fmt.Fprintf(stderr, "mdsbench: trace: %v\n", err)
			}
		}()
	}
	// emit prints a finished table — aligned text by default, JSONL rows
	// under -json.
	emit := func(t *experiments.Table, wallNs int64) {
		if *jsonOut {
			if err := emitJSON(stdout, t, wallNs); err != nil {
				fmt.Fprintf(stderr, "mdsbench: json: %v\n", err)
			}
			return
		}
		fmt.Fprintln(stdout, t)
	}

	ranScale, scaleViolations := false, 0
	for _, scale := range []struct {
		n     int
		table func(int) *experiments.Table
	}{
		{*earbScale, experiments.EArbScale},
		{*emcdsScale, experiments.EMcdsScale},
	} {
		if scale.n <= 0 {
			continue
		}
		start := time.Now()
		t := scale.table(scale.n)
		emit(t, int64(time.Since(start)))
		ranScale = true
		scaleViolations += t.Violations
	}
	for _, fileScale := range []struct {
		path  string
		table func(string, *graph.Graph) *experiments.Table
	}{
		{*earbGraph, experiments.EArbScaleOn},
		{*emcdsGraph, experiments.EMcdsScaleOn},
	} {
		if fileScale.path == "" {
			continue
		}
		g, closer, err := graph.Load(fileScale.path)
		if err != nil {
			return fail(stderr, err)
		}
		name := strings.TrimSuffix(filepath.Base(fileScale.path), filepath.Ext(fileScale.path))
		start := time.Now()
		t := fileScale.table(name, g)
		closer.Close()
		emit(t, int64(time.Since(start)))
		ranScale = true
		scaleViolations += t.Violations
	}
	if ranScale {
		if scaleViolations > 0 {
			fmt.Fprintf(stderr, "mdsbench: %d claim violations\n", scaleViolations)
			return exitCertify
		}
		return exitOK
	}

	violations, matched := 0, false
	for _, e := range experiments.Suite() {
		if *only != "" && e.ID != *only {
			continue
		}
		matched = true
		start := time.Now()
		t := e.Run(*quick)
		emit(t, int64(time.Since(start)))
		violations += t.Violations
	}
	if !matched {
		ids := make([]string, 0, len(experiments.Suite()))
		for _, e := range experiments.Suite() {
			ids = append(ids, e.ID)
		}
		fmt.Fprintf(stderr, "mdsbench: unknown experiment %q (experiments: %s)\n", *only, strings.Join(ids, ", "))
		return exitUsage
	}
	if violations > 0 {
		fmt.Fprintf(stderr, "mdsbench: %d claim violations\n", violations)
		return exitCertify
	}
	return exitOK
}
