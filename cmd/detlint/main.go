// Command detlint runs the detlint analyzer suite (internal/lint): the
// determinism, payload-aliasing, unsafe-confinement and error-taxonomy
// checks that guard this repo's CONGEST engines.
//
// It speaks two protocols:
//
//	detlint ./...                       # standalone, via `go list -export`
//	go vet -vettool=$(which detlint) ./...   # as a cmd/go vet tool
//
// In vet-tool mode cmd/go invokes the binary three ways — `-V=full` for a
// cache key, `-flags` for the flag manifest, and once per compilation unit
// with a JSON config file argument — the same contract implemented by
// x/tools' unitchecker, re-implemented here on the standard library so the
// tool builds offline. Diagnostics go to stderr as file:line:col lines;
// exit status is 2 when findings exist, 1 on driver failure, 0 when clean.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"congestds/internal/lint"
	"congestds/internal/lint/analysis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("detlint: ")

	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V="):
		printVersion(args[0])
	case len(args) == 1 && args[0] == "-flags":
		// No tool-specific flags; cmd/go expects a JSON manifest.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(vetUnit(args[0]))
	default:
		os.Exit(standalone(args))
	}
}

// printVersion implements `detlint -V=full`: cmd/go hashes this line into
// its build cache key, so it must change whenever the binary changes —
// hence the content digest of the executable itself.
func printVersion(arg string) {
	name := filepath.Base(os.Args[0])
	if arg != "-V=full" {
		fmt.Printf("%s version devel\n", name)
		return
	}
	exe, err := os.Executable()
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Open(exe)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, string(h.Sum(nil)))
}

// vetConfig is the per-compilation-unit JSON file cmd/go hands a vettool.
// Field names are fixed by cmd/go/internal/work; unknown fields are
// ignored so the schema may grow.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one compilation unit described by cfgFile and returns
// the process exit code.
func vetUnit(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		log.Print(err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		log.Printf("%s: %v", cfgFile, err)
		return 1
	}

	// detlint exports no facts, but cmd/go requires the vetx output file
	// to exist for the unit to be considered analyzed (and cached).
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				log.Print(err)
			}
		}
	}
	if cfg.VetxOnly {
		writeVetx()
		return 0
	}

	unit, err := typecheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		log.Print(err)
		return 1
	}

	diags, err := lint.Run(unit, lint.Suite())
	if err != nil {
		log.Print(err)
		return 1
	}
	writeVetx()
	printDiags(unit.Fset, diags)
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// typecheckUnit parses and type-checks the unit's GoFiles against the
// export data cmd/go supplied. Test files participate in type checking
// (the in-package test variant does not compile without them) but are
// excluded from analysis: the determinism contracts bind the shipped
// packages, and tests legitimately use wall-clock timeouts and maps.
func typecheckUnit(cfg *vetConfig) (*lint.Unit, error) {
	fset := token.NewFileSet()
	var all, analyzed []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		all = append(all, f)
		if !strings.HasSuffix(name, "_test.go") {
			analyzed = append(analyzed, f)
		}
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup receives resolved package paths (cmd/go applies
		// ImportMap before writing PackageFile), but be liberal.
		file, ok := cfg.PackageFile[path]
		if !ok {
			if mapped, mok := cfg.ImportMap[path]; mok {
				file, ok = cfg.PackageFile[mapped]
			}
		}
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{
		Importer: importerFunc(func(path string) (*types.Package, error) {
			if path == "unsafe" {
				return types.Unsafe, nil
			}
			if mapped, ok := cfg.ImportMap[path]; ok {
				path = mapped
			}
			return compilerImporter.Import(path)
		}),
	}
	var typeErr error
	tconf.Error = func(err error) {
		if typeErr == nil {
			typeErr = err
		}
	}
	info := analysis.NewTypesInfo()
	pkg, _ := tconf.Check(cfg.ImportPath, fset, all, info)
	if typeErr != nil {
		return nil, fmt.Errorf("%s: %v", cfg.ImportPath, typeErr)
	}
	return &lint.Unit{Fset: fset, Files: analyzed, Pkg: pkg, Info: info}, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// standalone runs the suite over go-list patterns (default ./...) relative
// to the enclosing module root, so `detlint` works from any subdirectory.
func standalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	for _, p := range patterns {
		if strings.HasPrefix(p, "-") {
			fmt.Fprintf(os.Stderr, "usage: detlint [packages]\n   or: go vet -vettool=$(which detlint) [packages]\n")
			return 1
		}
	}
	root := lint.ModuleRoot(".")
	units, err := lint.Load(root, patterns...)
	if err != nil {
		log.Print(err)
		return 1
	}
	found := false
	for _, u := range units {
		diags, err := lint.Run(u, lint.Suite())
		if err != nil {
			log.Print(err)
			return 1
		}
		printDiags(u.Fset, diags)
		found = found || len(diags) > 0
	}
	if found {
		return 2
	}
	return 0
}

func printDiags(fset *token.FileSet, diags []analysis.Diagnostic) {
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Message, d.Category)
	}
}
