package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"congestds/internal/lint"
)

// buildTool compiles detlint once per test binary into a temp dir and
// returns its absolute path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "detlint")
	cmd := exec.Command("go", "build", "-o", bin, "congestds/cmd/detlint")
	cmd.Dir = lint.ModuleRoot(".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building detlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule materializes a throwaway module for vetting: files maps
// relative path to contents; a minimal go.mod is added.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module vetprobe\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runVet(t *testing.T, tool, dir string) (string, error) {
	t.Helper()
	cmd := exec.Command("go", "vet", "-vettool="+tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &out
	err := cmd.Run()
	return out.String(), err
}

// TestVersionHandshake pins the -V=full contract: cmd/go hashes the line
// into its build cache key, so the format must stay parseable and the
// buildID must be a content digest.
func TestVersionHandshake(t *testing.T) {
	tool := buildTool(t)
	out, err := exec.Command(tool, "-V=full").Output()
	if err != nil {
		t.Fatalf("-V=full: %v", err)
	}
	re := regexp.MustCompile(`^detlint version \S+ comments-go-here buildID=[0-9a-f]{64}\n$`)
	if !re.Match(out) {
		t.Errorf("-V=full output %q does not match %v", out, re)
	}

	flags, err := exec.Command(tool, "-flags").Output()
	if err != nil {
		t.Fatalf("-flags: %v", err)
	}
	if strings.TrimSpace(string(flags)) != "[]" {
		t.Errorf("-flags = %q, want []", flags)
	}
}

// TestVetToolFindings drives the real `go vet -vettool` protocol end to
// end: cmd/go invokes detlint with a .cfg per compilation unit, and a
// deterministic-package map range must surface as a vet failure.
func TestVetToolFindings(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"graph/graph.go": `package graph

// Degrees leaks map order into its output.
func Degrees(deg map[int]int) []int {
	var out []int
	for _, d := range deg {
		out = append(out, d)
	}
	return out
}
`,
		// A host-side package with the same code must stay silent.
		"tools/tools.go": `package tools

func Degrees(deg map[int]int) []int {
	var out []int
	for _, d := range deg {
		out = append(out, d)
	}
	return out
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err == nil {
		t.Fatalf("go vet succeeded, want maporder finding; output:\n%s", out)
	}
	if !strings.Contains(out, "range over map") || !strings.Contains(out, "graph.go") {
		t.Errorf("vet output missing maporder finding:\n%s", out)
	}
	if strings.Contains(out, "tools.go") {
		t.Errorf("vet flagged the non-deterministic package:\n%s", out)
	}
}

// TestVetToolClean pins the success path (exit 0, empty output) and that
// _test.go files are exempt from the determinism contracts even inside a
// deterministic package.
func TestVetToolClean(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"graph/graph.go": `package graph

// Sum is order-insensitive, so ranging the map is fine.
func Sum(w map[int]int) int {
	total := 0
	for _, v := range w {
		total += v
	}
	return total
}
`,
		"graph/graph_test.go": `package graph

import (
	"testing"
	"time"
)

// Tests may use wall clock and map ranges freely.
func TestSum(t *testing.T) {
	start := time.Now()
	m := map[int]int{1: 2}
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	if Sum(m) != 2 || len(keys) != 1 || start.IsZero() {
		t.Fatal("impossible")
	}
}
`,
	})
	out, err := runVet(t, tool, dir)
	if err != nil {
		t.Fatalf("go vet failed on clean module: %v\n%s", err, out)
	}
	if strings.TrimSpace(out) != "" {
		t.Errorf("clean vet run produced output:\n%s", out)
	}
}

// TestStandaloneDriver pins the go-list driver: same module, same
// findings, exit status 2.
func TestStandaloneDriver(t *testing.T) {
	tool := buildTool(t)
	dir := writeModule(t, map[string]string{
		"chaos/chaos.go": `package chaos

import "time"

// Jitter reads the wall clock in a deterministic package.
func Jitter() int64 { return time.Now().UnixNano() }
`,
	})
	cmd := exec.Command(tool, "./...")
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "GOWORK=off")
	out, err := cmd.CombinedOutput()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != 2 {
		t.Fatalf("standalone detlint: err=%v, want exit status 2; output:\n%s", err, out)
	}
	if !strings.Contains(string(out), "wall-clock read time.Now") {
		t.Errorf("standalone output missing nondet finding:\n%s", out)
	}
}
