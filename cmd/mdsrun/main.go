// mdsrun runs one dominating set algorithm on one graph and prints the
// result with cost metrics and an approximation certificate.
//
//	go run ./cmd/mdsrun -family gnp -n 200 -algo thm1.2 -eps 0.5
//	go run ./cmd/mdsrun -in graph.txt -algo cds
//	go run ./cmd/mdsrun -in graph.csrg -algo arbmds -sim stepped   (zero-copy mmap)
//	go run ./cmd/mdsrun -family uforest -n 100000 -algo arbmds -sim stepped
//	go run ./cmd/mdsrun -family ba -n 100000 -algo mcds -sim stepped
//	go run ./cmd/mdsrun -family disk -n 150 -algo greedy -v
//
// The paper pipeline algorithms (thm1.1, thm1.2/paper, cor1.3, cds) and
// the host-level baselines (greedy, exact) are dispatched here; every
// other -algo value is looked up in the algorithm-family registry
// (internal/family: arbmds, mcds, ...), which carries its own
// certificates. Unknown names get an error listing every valid algorithm.
//
// Exit codes are scripting API, pinned by TestExitCodes:
//
//	0  success
//	1  run failure (graph unavailable, simulation aborted, ...); when the
//	   failure maps to an engine sentinel, a final "sentinel <class>" line
//	   on stderr names it (deadline, bandwidth, bad-ckpt, ...)
//	2  usage error (bad flags, unknown algorithm/engine, invalid combination)
//	3  certification violation: the run completed but its output failed
//	   the certificate — a bug, never a usage or environment problem
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"

	"congestds/internal/baseline"
	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/family"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/obs"
	"congestds/internal/verify"
)

// Exit codes (see the package comment).
const (
	exitOK      = 0
	exitRun     = 1
	exitUsage   = 2
	exitCertify = 3
)

// builtinAlgos are the -algo values dispatched in run's switch; every
// other value is looked up in the family registry. thm1.2 and paper are
// aliases.
var builtinAlgos = []string{"paper", "thm1.1", "thm1.2", "cor1.3", "cds", "greedy", "exact"}

// algoNames returns every valid -algo value, sorted: the builtins plus the
// registered algorithm families.
func algoNames() []string {
	names := append([]string(nil), builtinAlgos...)
	names = append(names, family.Names()...)
	sort.Strings(names)
	return names
}

// unknownAlgoErr is the error for an unrecognized -algo value. Like
// graph.Named's unknown-family error, it lists the valid names so callers
// never have to cross-reference the source.
func unknownAlgoErr(name string) error {
	return fmt.Errorf("unknown algorithm %q (algorithms: %s)",
		name, strings.Join(algoNames(), ", "))
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// usage reports a misuse and returns the usage exit code.
func usage(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "mdsrun: "+format+"\n", args...)
	return exitUsage
}

// fail reports a run failure, naming the engine sentinel class when the
// error carries one, and returns the run-failure exit code.
func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "mdsrun: %v\n", err)
	if class := congest.SentinelClass(err); class != "" {
		fmt.Fprintf(stderr, "sentinel %s\n", class)
	}
	return exitRun
}

// violation reports an output that failed its certificate.
func violation(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "mdsrun: certification violation: "+format+"\n", args...)
	return exitCertify
}

// run is main behind a testable seam: parse, solve, certify, report.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdsrun", flag.ContinueOnError)
	fs.SetOutput(stderr)
	familyFlag := fs.String("family", "gnp", "graph family (see graphgen -list)")
	n := fs.Int("n", 100, "graph size")
	seed := fs.Uint64("seed", 1, "generator seed")
	in := fs.String("in", "",
		"read graph from file instead of generating (.csrg files are memory-mapped zero-copy)")
	algo := fs.String("algo", "thm1.2",
		"algorithm: "+strings.Join(algoNames(), " | ")+" (paper = thm1.2)")
	eps := fs.Float64("eps", 0.5, "approximation parameter ε")
	theory := fs.Bool("theory", false, "use the paper's worst-case constants")
	sim := fs.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	diam := fs.Int("diam", 0,
		"known diameter upper bound for orientation-phase algorithms (mcds); 0 = 2·ecc+2 from one host-side BFS")
	deadline := fs.Duration("deadline", 0,
		"wall-clock budget for the whole solve; overruns exit 1 with \"sentinel deadline\"")
	ckpt := fs.String("ckpt", "",
		"checkpoint file for kill-resumable runs (arbmds with -sim stepped only); a matching checkpoint in the file resumes the run")
	ckptEvery := fs.Int("ckpt-every", 1, "checkpoint cadence in rounds (with -ckpt)")
	tracePath := fs.String("trace", "",
		"stream per-round telemetry to this file as JSONL (replayable: see internal/obs.Replay)")
	chromePath := fs.String("trace-chrome", "",
		"write a Chrome trace-event file of the run (open at chrome://tracing or ui.perfetto.dev)")
	profileFlag := fs.Bool("profile", false,
		"print a run profile after the solve: round-time percentiles, slowest rounds, message-size histogram, engine events")
	pprofCPU := fs.String("pprof-cpu", "", "write a CPU profile of the solve to this file (go tool pprof)")
	pprofHeap := fs.String("pprof-heap", "", "write a post-solve heap profile to this file (go tool pprof)")
	verbose := fs.Bool("v", false, "print the set members")
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return usage(stderr, "unexpected arguments: %v", fs.Args())
	}

	simEngine, err := congest.ParseEngine(*sim)
	if err != nil {
		return usage(stderr, "%v", err)
	}
	isBuiltin := false
	for _, b := range builtinAlgos {
		isBuiltin = isBuiltin || b == *algo
	}
	var fam family.Family
	if !isBuiltin {
		if fam, err = family.Get(*algo); err != nil {
			return usage(stderr, "%v", unknownAlgoErr(*algo))
		}
	}
	if *ckpt != "" && (*algo != "arbmds" || simEngine != congest.EngineStepped) {
		return usage(stderr, "-ckpt requires -algo arbmds -sim stepped (got -algo %s -sim %s)", *algo, *sim)
	}
	if *ckptEvery < 1 {
		return usage(stderr, "-ckpt-every must be >= 1 (got %d)", *ckptEvery)
	}
	if *algo == "exact" && *in == "" && *n > 64 {
		return usage(stderr, "exact solver is for n ≤ 64 (got %d)", *n)
	}

	// One budget for the whole solve: -deadline becomes a context shared by
	// every simulated phase, so multi-part pipelines cannot stack budgets.
	var ctx context.Context
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), *deadline)
		defer cancel()
	}

	var g *graph.Graph
	if *in != "" {
		var closer io.Closer
		g, closer, err = graph.Load(*in)
		if err == nil {
			// The mapping must outlive every use of g; the process exit
			// releases it, the deferred Close just keeps the path tidy.
			defer closer.Close()
		}
	} else {
		g, err = graph.Named(*familyFlag, *n, *seed)
	}
	if err != nil {
		return fail(stderr, err)
	}
	fmt.Fprintf(stdout, "graph: %v\n", g)

	preset := mds.Practical
	if *theory {
		preset = mds.Theory
	}
	params := mds.Params{Eps: *eps, Preset: preset, Sim: simEngine, Ctx: ctx}

	// Telemetry: one Recorder fans the run out to every requested sink.
	// Attaching it never changes the solve (the conformance suite pins
	// that), so the flags compose freely with every algorithm and engine.
	var rec *obs.Recorder
	var agg *obs.Aggregator
	if *tracePath != "" || *chromePath != "" || *profileFlag {
		var sinks []obs.Sink
		if *tracePath != "" {
			f, err := os.Create(*tracePath)
			if err != nil {
				return fail(stderr, err)
			}
			sinks = append(sinks, obs.NewJSONL(f))
		}
		if *chromePath != "" {
			f, err := os.Create(*chromePath)
			if err != nil {
				return fail(stderr, err)
			}
			sinks = append(sinks, obs.NewChrome(f))
		}
		if *profileFlag {
			agg = obs.NewAggregator()
			sinks = append(sinks, agg)
		}
		rec = obs.NewRecorder(sinks...)
		params.Observer = rec
	}
	// closeTrace flushes the sinks exactly once; the defer covers failure
	// exits so a partial trace of an aborted run still lands on disk.
	closeTrace := func() {
		if rec != nil {
			if err := rec.Close(); err != nil {
				fmt.Fprintf(stderr, "mdsrun: trace: %v\n", err)
			}
			rec = nil
		}
	}
	defer closeTrace()
	// report prints the profile (and the wall-annotated ledger, when the
	// pipeline kept one) on the success paths.
	report := func(led *congest.Ledger) {
		if rec == nil {
			return
		}
		if led != nil {
			obs.FillLedgerWall(led, rec)
		}
		closeTrace()
		if agg != nil {
			fmt.Fprint(stdout, agg.Profile())
			if led != nil {
				fmt.Fprintf(stdout, "ledger: %v\n", led)
			}
		}
	}

	// The CPU profile brackets the solve alone: started after graph load,
	// stopped (via stopCPU at each solve's return) before verification and
	// reporting; the defer is the backstop on failure exits.
	stopCPU := func() {}
	if *pprofCPU != "" {
		f, err := os.Create(*pprofCPU)
		if err != nil {
			return fail(stderr, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fail(stderr, err)
		}
		var once sync.Once
		stopCPU = func() {
			once.Do(func() {
				pprof.StopCPUProfile()
				f.Close()
			})
		}
		defer stopCPU()
	}
	if *pprofHeap != "" {
		f, err := os.Create(*pprofHeap)
		if err != nil {
			return fail(stderr, err)
		}
		defer func() {
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "mdsrun: pprof-heap: %v\n", err)
			}
			f.Close()
		}()
	}

	var set []int
	var rounds int
	var led *congest.Ledger
	bound := 0.0
	switch *algo {
	case "thm1.1", "thm1.2", "paper", "cor1.3":
		switch *algo {
		case "thm1.1":
			params.Engine = mds.EngineDecomposition
		case "cor1.3":
			params.Engine = mds.EngineColoringLocal
		default:
			params.Engine = mds.EngineColoring
		}
		res, err := mds.Solve(g, params)
		stopCPU()
		if err != nil {
			return fail(stderr, err)
		}
		set, rounds, bound, led = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound, res.Ledger
	case "cds":
		res, err := cds.Solve(g, cds.Params{MDS: params})
		stopCPU()
		if err != nil {
			return fail(stderr, err)
		}
		set, rounds, bound, led = res.CDS, res.Ledger.Metrics().TotalRounds(), res.Bound, res.Ledger
		if err := verify.CheckCDS(g, set); err != nil {
			return violation(stderr, "invalid CDS: %v", err)
		}
		fmt.Fprintf(stdout, "underlying dominating set: %d nodes, %d cluster centres\n",
			len(res.DS), len(res.RulingSet))
	case "greedy":
		set = baseline.Greedy(g)
	case "exact":
		if g.N() > 64 {
			return usage(stderr, "exact solver is for n ≤ 64 (got %d)", g.N())
		}
		set = baseline.Exact(g)
	default:
		diamBound := *diam
		if diamBound == 0 && fam.NeedsDiam {
			// One host-side BFS; only paid for families that run an
			// orientation phase.
			diamBound = 2*g.Eccentricity(0) + 2
		}
		res, err := fam.Solve(g, family.Params{
			Eps: *eps, Sim: simEngine, DiamBound: diamBound,
			Ctx: ctx, CkptPath: *ckpt, CkptEvery: *ckptEvery,
			Observer: params.Observer,
		})
		stopCPU()
		if err != nil {
			return fail(stderr, err)
		}
		// The family certificate covers the generic tail below (domination
		// check + dual-packing LB) plus the family's own claim, so it is the
		// only verification pass — at 10⁶ nodes a second one would double
		// the post-solve wall-clock.
		if !res.Cert.Passed() {
			return violation(stderr, "%s output failed its certificate (bug): %v", *algo, res.Cert)
		}
		fmt.Fprintf(stdout, "%s certificate: %v\n", *algo, res.Cert)
		for _, note := range res.Notes {
			fmt.Fprintln(stdout, note)
		}
		fmt.Fprintf(stdout, "set size: %d\n", len(res.Set))
		fmt.Fprintf(stdout, "rounds: %d\n", res.Rounds)
		if *verbose {
			fmt.Fprintf(stdout, "members: %v\n", res.Set)
		}
		report(nil)
		return exitOK
	}
	stopCPU()

	if *algo != "cds" {
		if !verify.IsDominatingSet(g, set) {
			return violation(stderr, "output is not a dominating set (bug)")
		}
	}
	cert := verify.Certify(g, set)
	fmt.Fprintf(stdout, "set size: %d\n", len(set))
	fmt.Fprintf(stdout, "certified lower bound on OPT: %.2f (ratio ≤ %.3f)\n", cert.LowerBound, cert.Ratio)
	if bound > 0 {
		fmt.Fprintf(stdout, "paper guarantee: %.3f\n", bound)
	}
	if rounds > 0 {
		fmt.Fprintf(stdout, "rounds (measured+charged): %d\n", rounds)
	}
	if *verbose {
		fmt.Fprintf(stdout, "members: %v\n", set)
	}
	report(led)
	return exitOK
}
