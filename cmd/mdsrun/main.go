// mdsrun runs one dominating set algorithm on one graph and prints the
// result with cost metrics and an approximation certificate.
//
//	go run ./cmd/mdsrun -family gnp -n 200 -algo thm1.2 -eps 0.5
//	go run ./cmd/mdsrun -in graph.txt -algo cds
//	go run ./cmd/mdsrun -family disk -n 150 -algo greedy -v
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"congestds/internal/arbmds"
	"congestds/internal/baseline"
	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

func main() {
	family := flag.String("family", "gnp", "graph family (see graphgen -list)")
	n := flag.Int("n", 100, "graph size")
	seed := flag.Uint64("seed", 1, "generator seed")
	in := flag.String("in", "", "read graph from file instead of generating")
	algo := flag.String("algo", "thm1.2",
		"algorithm: paper (= thm1.2) | thm1.1 | thm1.2 | cor1.3 | cds | arbmds | greedy | exact")
	eps := flag.Float64("eps", 0.5, "approximation parameter ε")
	theory := flag.Bool("theory", false, "use the paper's worst-case constants")
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	verbose := flag.Bool("v", false, "print the set members")
	flag.Parse()

	simEngine, simErr := congest.ParseEngine(*sim)
	if simErr != nil {
		log.Fatal(simErr)
	}

	var g *graph.Graph
	var err error
	if *in != "" {
		f, ferr := os.Open(*in)
		if ferr != nil {
			log.Fatal(ferr)
		}
		g, err = graph.ReadFrom(f)
		f.Close()
	} else {
		g, err = graph.Named(*family, *n, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	preset := mds.Practical
	if *theory {
		preset = mds.Theory
	}
	params := mds.Params{Eps: *eps, Preset: preset, Sim: simEngine}

	var set []int
	var rounds int
	bound := 0.0
	switch *algo {
	case "thm1.1":
		params.Engine = mds.EngineDecomposition
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "thm1.2", "paper":
		params.Engine = mds.EngineColoring
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "arbmds":
		res, err := arbmds.Solve(g, arbmds.Params{Eps: *eps, Sim: simEngine})
		exitOn(err)
		set, rounds = res.Set, res.Metrics.Rounds
		// CertifyArb covers the generic tail below (domination check +
		// dual-packing LB) plus the O(α) claim, so it is the only
		// verification pass — at 10⁶ nodes a second one would double the
		// post-solve wall-clock.
		cert := verify.CertifyArb(g, set, *eps)
		if !cert.OK {
			log.Fatalf("arbmds output failed its certificate (bug): %v", cert)
		}
		fmt.Printf("bounded-arboricity certificate: %v\n", cert)
		fmt.Printf("phases: %d (thresholds %v), rounds independent of n\n",
			len(res.Thresholds), res.Thresholds)
		fmt.Printf("set size: %d\n", len(set))
		fmt.Printf("rounds: %d\n", rounds)
		if *verbose {
			fmt.Printf("members: %v\n", set)
		}
		return
	case "cor1.3":
		params.Engine = mds.EngineColoringLocal
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "cds":
		res, err := cds.Solve(g, cds.Params{MDS: params})
		exitOn(err)
		set, rounds, bound = res.CDS, res.Ledger.Metrics().TotalRounds(), res.Bound
		if err := verify.CheckCDS(g, set); err != nil {
			log.Fatalf("invalid CDS: %v", err)
		}
		fmt.Printf("underlying dominating set: %d nodes, %d cluster centres\n",
			len(res.DS), len(res.RulingSet))
	case "greedy":
		set = baseline.Greedy(g)
	case "exact":
		if g.N() > 64 {
			log.Fatalf("exact solver is for n ≤ 64 (got %d)", g.N())
		}
		set = baseline.Exact(g)
	default:
		log.Fatalf("unknown algorithm %q", *algo)
	}

	if *algo != "cds" {
		if !verify.IsDominatingSet(g, set) {
			log.Fatal("output is not a dominating set (bug)")
		}
	}
	cert := verify.Certify(g, set)
	fmt.Printf("set size: %d\n", len(set))
	fmt.Printf("certified lower bound on OPT: %.2f (ratio ≤ %.3f)\n", cert.LowerBound, cert.Ratio)
	if bound > 0 {
		fmt.Printf("paper guarantee: %.3f\n", bound)
	}
	if rounds > 0 {
		fmt.Printf("rounds (measured+charged): %d\n", rounds)
	}
	if *verbose {
		fmt.Printf("members: %v\n", set)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
