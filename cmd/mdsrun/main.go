// mdsrun runs one dominating set algorithm on one graph and prints the
// result with cost metrics and an approximation certificate.
//
//	go run ./cmd/mdsrun -family gnp -n 200 -algo thm1.2 -eps 0.5
//	go run ./cmd/mdsrun -in graph.txt -algo cds
//	go run ./cmd/mdsrun -in graph.csrg -algo arbmds -sim stepped   (zero-copy mmap)
//	go run ./cmd/mdsrun -family uforest -n 100000 -algo arbmds -sim stepped
//	go run ./cmd/mdsrun -family ba -n 100000 -algo mcds -sim stepped
//	go run ./cmd/mdsrun -family disk -n 150 -algo greedy -v
//
// The paper pipeline algorithms (thm1.1, thm1.2/paper, cor1.3, cds) and
// the host-level baselines (greedy, exact) are dispatched here; every
// other -algo value is looked up in the algorithm-family registry
// (internal/family: arbmds, mcds, ...), which carries its own
// certificates. Unknown names get an error listing every valid algorithm.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"sort"
	"strings"

	"congestds/internal/baseline"
	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/family"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

// builtinAlgos are the -algo values dispatched in main's switch; every
// other value is looked up in the family registry. thm1.2 and paper are
// aliases.
var builtinAlgos = []string{"paper", "thm1.1", "thm1.2", "cor1.3", "cds", "greedy", "exact"}

// algoNames returns every valid -algo value, sorted: the builtins plus the
// registered algorithm families.
func algoNames() []string {
	names := append([]string(nil), builtinAlgos...)
	names = append(names, family.Names()...)
	sort.Strings(names)
	return names
}

// unknownAlgoErr is the error for an unrecognized -algo value. Like
// graph.Named's unknown-family error, it lists the valid names so callers
// never have to cross-reference the source.
func unknownAlgoErr(name string) error {
	return fmt.Errorf("mdsrun: unknown algorithm %q (algorithms: %s)",
		name, strings.Join(algoNames(), ", "))
}

func main() {
	familyFlag := flag.String("family", "gnp", "graph family (see graphgen -list)")
	n := flag.Int("n", 100, "graph size")
	seed := flag.Uint64("seed", 1, "generator seed")
	in := flag.String("in", "",
		"read graph from file instead of generating (.csrg files are memory-mapped zero-copy)")
	algo := flag.String("algo", "thm1.2",
		"algorithm: "+strings.Join(algoNames(), " | ")+" (paper = thm1.2)")
	eps := flag.Float64("eps", 0.5, "approximation parameter ε")
	theory := flag.Bool("theory", false, "use the paper's worst-case constants")
	sim := flag.String("sim", "goroutine", "congest execution engine: goroutine | sharded | stepped")
	diam := flag.Int("diam", 0,
		"known diameter upper bound for orientation-phase algorithms (mcds); 0 = 2·ecc+2 from one host-side BFS")
	verbose := flag.Bool("v", false, "print the set members")
	flag.Parse()

	simEngine, simErr := congest.ParseEngine(*sim)
	if simErr != nil {
		log.Fatal(simErr)
	}

	var g *graph.Graph
	var err error
	if *in != "" {
		var closer io.Closer
		g, closer, err = graph.Load(*in)
		if err == nil {
			// The mapping must outlive every use of g; the process exit
			// releases it, the deferred Close just keeps the path tidy.
			defer closer.Close()
		}
	} else {
		g, err = graph.Named(*familyFlag, *n, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %v\n", g)

	preset := mds.Practical
	if *theory {
		preset = mds.Theory
	}
	params := mds.Params{Eps: *eps, Preset: preset, Sim: simEngine}

	var set []int
	var rounds int
	bound := 0.0
	switch *algo {
	case "thm1.1":
		params.Engine = mds.EngineDecomposition
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "thm1.2", "paper":
		params.Engine = mds.EngineColoring
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "cor1.3":
		params.Engine = mds.EngineColoringLocal
		res, err := mds.Solve(g, params)
		exitOn(err)
		set, rounds, bound = res.Set, res.Ledger.Metrics().TotalRounds(), res.Bound
	case "cds":
		res, err := cds.Solve(g, cds.Params{MDS: params})
		exitOn(err)
		set, rounds, bound = res.CDS, res.Ledger.Metrics().TotalRounds(), res.Bound
		if err := verify.CheckCDS(g, set); err != nil {
			log.Fatalf("invalid CDS: %v", err)
		}
		fmt.Printf("underlying dominating set: %d nodes, %d cluster centres\n",
			len(res.DS), len(res.RulingSet))
	case "greedy":
		set = baseline.Greedy(g)
	case "exact":
		if g.N() > 64 {
			log.Fatalf("exact solver is for n ≤ 64 (got %d)", g.N())
		}
		set = baseline.Exact(g)
	default:
		fam, ferr := family.Get(*algo)
		if ferr != nil {
			log.Fatal(unknownAlgoErr(*algo))
		}
		diamBound := *diam
		if diamBound == 0 && fam.NeedsDiam {
			// One host-side BFS; only paid for families that run an
			// orientation phase.
			diamBound = 2*g.Eccentricity(0) + 2
		}
		res, err := fam.Solve(g, family.Params{Eps: *eps, Sim: simEngine, DiamBound: diamBound})
		exitOn(err)
		// The family certificate covers the generic tail below (domination
		// check + dual-packing LB) plus the family's own claim, so it is the
		// only verification pass — at 10⁶ nodes a second one would double
		// the post-solve wall-clock.
		if !res.Cert.Passed() {
			log.Fatalf("%s output failed its certificate (bug): %v", *algo, res.Cert)
		}
		fmt.Printf("%s certificate: %v\n", *algo, res.Cert)
		for _, note := range res.Notes {
			fmt.Println(note)
		}
		fmt.Printf("set size: %d\n", len(res.Set))
		fmt.Printf("rounds: %d\n", res.Rounds)
		if *verbose {
			fmt.Printf("members: %v\n", res.Set)
		}
		return
	}

	if *algo != "cds" {
		if !verify.IsDominatingSet(g, set) {
			log.Fatal("output is not a dominating set (bug)")
		}
	}
	cert := verify.Certify(g, set)
	fmt.Printf("set size: %d\n", len(set))
	fmt.Printf("certified lower bound on OPT: %.2f (ratio ≤ %.3f)\n", cert.LowerBound, cert.Ratio)
	if bound > 0 {
		fmt.Printf("paper guarantee: %.3f\n", bound)
	}
	if rounds > 0 {
		fmt.Printf("rounds (measured+charged): %d\n", rounds)
	}
	if *verbose {
		fmt.Printf("members: %v\n", set)
	}
}

func exitOn(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
