package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"congestds/internal/family"
	"congestds/internal/graph"
	"congestds/internal/obs"
)

// Regression test for the unknown-algorithm error: it must list every
// valid -algo value (the builtins and the registered families), mirroring
// the graph.Named unknown-family fix. Before this, the error was a bare
// `unknown algorithm "x"` and users had to read the source to find the
// valid names.
func TestUnknownAlgoErrorListsAlgorithms(t *testing.T) {
	err := unknownAlgoErr("frobnicate")
	if err == nil {
		t.Fatal("nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"frobnicate"`) {
		t.Errorf("error does not echo the bad name: %q", msg)
	}
	for _, want := range []string{"paper", "thm1.1", "thm1.2", "cor1.3", "cds", "greedy", "exact", "arbmds", "mcds"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not list %q: %q", want, msg)
		}
	}
}

func TestAlgoNamesSortedAndComplete(t *testing.T) {
	names := algoNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("algoNames not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate algorithm name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if !seen[want] {
			t.Errorf("registered family %q missing from algoNames", want)
		}
	}
}

// failCert is a Certificate that never passes, backing the exit-code-3
// regression family.
type failCert struct{}

func (failCert) String() string { return "deliberately failing certificate" }
func (failCert) Passed() bool   { return false }

func init() {
	// A family whose output always fails certification: the only way to
	// exercise exit code 3 without planting a bug in a real algorithm.
	family.Register(family.Family{
		Name:    "testbadcert",
		Summary: "test-only family with a failing certificate",
		Solve: func(g *graph.Graph, p family.Params) (*family.Result, error) {
			return &family.Result{Set: []int{0}, Cert: failCert{}}, nil
		},
	})
}

// runCase captures one invocation.
func runCase(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestExitCodes pins the scripting contract documented in the package
// comment: 0 success, 1 run failure (+ sentinel line), 2 usage, 3
// certification violation.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name     string
		args     []string
		want     int
		inStderr string
	}{
		{"success", []string{"-family", "gnp", "-n", "40", "-algo", "greedy"}, 0, ""},
		{"success-family", []string{"-family", "gnp", "-n", "60", "-algo", "arbmds", "-sim", "stepped"}, 0, ""},
		{"bad-flag", []string{"-no-such-flag"}, 2, ""},
		{"positional-args", []string{"stray"}, 2, "unexpected arguments"},
		{"unknown-algo", []string{"-algo", "nope"}, 2, "unknown algorithm"},
		{"unknown-sim", []string{"-sim", "quantum"}, 2, ""},
		{"unknown-graph-family", []string{"-family", "nope", "-algo", "greedy"}, 1, ""},
		{"exact-too-big", []string{"-algo", "exact", "-n", "100"}, 2, "n ≤ 64"},
		{"ckpt-wrong-algo", []string{"-algo", "greedy", "-ckpt", "x.ckpt"}, 2, "-ckpt requires"},
		{"ckpt-wrong-sim", []string{"-algo", "arbmds", "-sim", "goroutine", "-ckpt", "x.ckpt"}, 2, "-ckpt requires"},
		{"ckpt-every-zero", []string{"-algo", "arbmds", "-sim", "stepped", "-ckpt", "x.ckpt", "-ckpt-every", "0"}, 2, "-ckpt-every"},
		{"missing-input", []string{"-in", "no/such/file.csrg", "-algo", "greedy"}, 1, ""},
		{"cert-violation", []string{"-family", "gnp", "-n", "20", "-algo", "testbadcert"}, 3, "certification violation"},
		{"deadline", []string{"-family", "gnp", "-n", "80", "-algo", "arbmds", "-sim", "stepped", "-deadline", "1ns"}, 1, "sentinel deadline"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			code, _, stderr := runCase(t, c.args...)
			if code != c.want {
				t.Fatalf("run(%v) = %d, want %d\nstderr: %s", c.args, code, c.want, stderr)
			}
			if c.inStderr != "" && !strings.Contains(stderr, c.inStderr) {
				t.Fatalf("run(%v): stderr %q does not contain %q", c.args, stderr, c.inStderr)
			}
		})
	}
}

// TestCkptFlagWritesAndResumes: a checkpointed run leaves a decodable file
// behind, and rerunning against it succeeds (resume from the final
// checkpoint) with the same reported set size.
func TestCkptFlagWritesAndResumes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	args := []string{"-family", "gnp", "-n", "120", "-algo", "arbmds", "-sim", "stepped", "-ckpt", path}
	code, out1, stderr := runCase(t, args...)
	if code != 0 {
		t.Fatalf("checkpointed run exited %d\nstderr: %s", code, stderr)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint left behind: %v", err)
	}
	code, out2, stderr := runCase(t, args...)
	if code != 0 {
		t.Fatalf("resumed run exited %d\nstderr: %s", code, stderr)
	}
	size := func(out string) string {
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "set size:") {
				return line
			}
		}
		return ""
	}
	if s1, s2 := size(out1), size(out2); s1 == "" || s1 != s2 {
		t.Fatalf("set size diverged across resume: %q vs %q", s1, s2)
	}
}

// TestTelemetryFlags: the observability surface end to end — -profile
// prints the profile table, -trace writes a JSONL stream that replays into
// the same round count the run reported, -trace-chrome writes valid JSON,
// and the pprof flags leave non-empty profiles behind. All riding one
// small stepped run.
func TestTelemetryFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "run.jsonl")
	chrome := filepath.Join(dir, "run.chrome.json")
	cpu := filepath.Join(dir, "cpu.pprof")
	heap := filepath.Join(dir, "heap.pprof")
	code, stdout, stderr := runCase(t,
		"-family", "gnp", "-n", "120", "-algo", "arbmds", "-sim", "stepped",
		"-profile", "-trace", trace, "-trace-chrome", chrome,
		"-pprof-cpu", cpu, "-pprof-heap", heap)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	for _, want := range []string{"profile:", "round wall time", "message size histogram"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("stdout missing %q:\n%s", want, stdout)
		}
	}

	// The trace replays into a profile agreeing with the printed one on
	// round count (the profile line renders "N rounds").
	f, err := os.Open(trace)
	if err != nil {
		t.Fatalf("trace file: %v", err)
	}
	defer f.Close()
	agg := obs.NewAggregator()
	if err := obs.Replay(f, agg); err != nil {
		t.Fatalf("replay: %v", err)
	}
	p := agg.Profile()
	if p.Rounds == 0 {
		t.Error("replayed trace has no rounds")
	}
	if !strings.Contains(stdout, fmt.Sprintf("%d rounds", p.Rounds)) {
		t.Errorf("printed profile disagrees with replayed trace (%d rounds):\n%s", p.Rounds, stdout)
	}

	var anyJSON []any
	chromeBytes, err := os.ReadFile(chrome)
	if err != nil {
		t.Fatalf("chrome file: %v", err)
	}
	if err := json.Unmarshal(chromeBytes, &anyJSON); err != nil {
		t.Errorf("chrome trace is not a JSON array: %v", err)
	}
	for _, path := range []string{cpu, heap} {
		if st, err := os.Stat(path); err != nil || st.Size() == 0 {
			t.Errorf("pprof file %s missing or empty (err=%v)", path, err)
		}
	}
}

// TestProfilePrintsLedgerWall: on a pipeline algorithm the profile output
// includes the ledger with observer-attributed per-phase wall time.
func TestProfilePrintsLedgerWall(t *testing.T) {
	code, stdout, stderr := runCase(t, "-family", "gnp", "-n", "60", "-algo", "paper", "-profile")
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "ledger:") || !strings.Contains(stdout, "wall=") {
		t.Errorf("profile output missing wall-annotated ledger:\n%s", stdout)
	}
}
