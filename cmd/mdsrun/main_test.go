package main

import (
	"sort"
	"strings"
	"testing"
)

// Regression test for the unknown-algorithm error: it must list every
// valid -algo value (the builtins and the registered families), mirroring
// the graph.Named unknown-family fix. Before this, the error was a bare
// `unknown algorithm "x"` and users had to read the source to find the
// valid names.
func TestUnknownAlgoErrorListsAlgorithms(t *testing.T) {
	err := unknownAlgoErr("frobnicate")
	if err == nil {
		t.Fatal("nil error")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"frobnicate"`) {
		t.Errorf("error does not echo the bad name: %q", msg)
	}
	for _, want := range []string{"paper", "thm1.1", "thm1.2", "cor1.3", "cds", "greedy", "exact", "arbmds", "mcds"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not list %q: %q", want, msg)
		}
	}
}

func TestAlgoNamesSortedAndComplete(t *testing.T) {
	names := algoNames()
	if !sort.StringsAreSorted(names) {
		t.Errorf("algoNames not sorted: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate algorithm name %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if !seen[want] {
			t.Errorf("registered family %q missing from algoNames", want)
		}
	}
}
