package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"congestds/internal/graph"
)

// startDaemon runs the daemon on an ephemeral port and returns its base
// URL plus a shutdown function that waits for run to exit and returns its
// exit code.
func startDaemon(t *testing.T, args ...string) (baseURL string, shutdown func() int) {
	t.Helper()
	addrCh := make(chan string, 1)
	var srv *http.Server
	onListen = func(addr string, s *http.Server) {
		srv = s
		addrCh <- addr
	}
	t.Cleanup(func() { onListen = nil })

	exitCh := make(chan int, 1)
	var out, errb bytes.Buffer
	go func() { exitCh <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), &out, &errb) }()

	select {
	case addr := <-addrCh:
		baseURL = "http://" + addr
	case code := <-exitCh:
		t.Fatalf("daemon exited before listening: code %d, stderr %s", code, errb.String())
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never started listening")
	}
	if !strings.Contains(out.String(), "serving on") {
		t.Errorf("startup banner missing: %q", out.String())
	}
	return baseURL, func() int {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		select {
		case code := <-exitCh:
			return code
		case <-time.After(10 * time.Second):
			t.Fatal("run did not return after shutdown")
			return -1
		}
	}
}

func writeGraph(t *testing.T, dir, name string) string {
	t.Helper()
	g := graph.GNPConnected(20, 0.2, 3)
	path := filepath.Join(dir, name)
	if strings.HasSuffix(name, ".csrg") {
		if err := g.WriteCSRGFile(path); err != nil {
			t.Fatal(err)
		}
		return path
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDaemonServesAndShutsDownCleanly(t *testing.T) {
	dir := t.TempDir()
	path := writeGraph(t, dir, "g.csrg")
	base, shutdown := startDaemon(t, "-graph", "g="+path)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: status %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(base + "/solve?graph=g&algo=arbmds")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/solve: status %d body %s", resp.StatusCode, body)
	}
	var view struct {
		Passed  bool `json:"passed"`
		SetSize int  `json:"set_size"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/solve body not JSON: %v\n%s", err, body)
	}
	if !view.Passed || view.SetSize == 0 {
		t.Errorf("implausible solve body: %s", body)
	}

	if code := shutdown(); code != exitOK {
		t.Errorf("clean shutdown exit code = %d, want %d", code, exitOK)
	}
}

func TestDaemonDirMode(t *testing.T) {
	dir := t.TempDir()
	writeGraph(t, dir, "sub.txt")
	base, shutdown := startDaemon(t, "-dir", dir)
	defer shutdown()

	resp, err := http.Get(base + "/solve?graph=sub.txt&algo=arbmds")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("dir-mode /solve: status %d body %s", resp.StatusCode, body)
	}
}

func TestDaemonUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
	}{
		{"no graphs", nil},
		{"bad graph spec", []string{"-graph", "nopath"}},
		{"duplicate graph", []string{"-graph", "g=a.txt", "-graph", "g=b.txt"}},
		{"bad engine", []string{"-graph", "g=a.txt", "-sim", "bogus"}},
		{"negative budget", []string{"-graph", "g=a.txt", "-graph-budget", "-1"}},
		{"stray args", []string{"-graph", "g=a.txt", "stray"}},
		{"bad flag", []string{"-nope"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errb bytes.Buffer
			if code := run(tc.args, &out, &errb); code != exitUsage {
				t.Errorf("exit code = %d, want %d (stderr %q)", code, exitUsage, errb.String())
			}
		})
	}
}

func TestDaemonListenFailure(t *testing.T) {
	dir := t.TempDir()
	path := writeGraph(t, dir, "g.txt")
	var out, errb bytes.Buffer
	if code := run([]string{"-addr", "256.256.256.256:1", "-graph", "g=" + path}, &out, &errb); code != exitRun {
		t.Errorf("exit code = %d, want %d (stderr %q)", code, exitRun, errb.String())
	}
}
