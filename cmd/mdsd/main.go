// mdsd is the resident graph-serving daemon: it loads graphs once (heap
// or zero-copy memory-mapped .csrg), keeps them resident behind a
// byte-budgeted LRU, and answers dominating-set queries over HTTP by
// dispatching through the algorithm-family registry. Concurrent identical
// requests coalesce into one engine run and certified results are cached,
// so a fleet of clients querying the same graph pays for one solve.
//
//	go run ./cmd/mdsd -graph web=web.csrg -graph road=road.txt
//	go run ./cmd/mdsd -dir graphs/ -addr :8080 -graph-budget 2147483648
//
//	curl 'localhost:8080/solve?graph=web&algo=arbmds&eps=0.5'
//	curl 'localhost:8080/certify?graph=web&algo=mcds'
//	curl 'localhost:8080/graphs'
//	curl 'localhost:8080/stats'
//
// Endpoints and their failure taxonomy (sentinel classes pinned to HTTP
// statuses) are documented on the serve package; the daemon itself only
// parses flags and owns the listener.
//
// Exit codes: 0 on clean shutdown, 2 on usage errors (bad flags), 1 when
// the listener fails.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"

	"congestds/internal/congest"
	"congestds/internal/serve"
)

const (
	exitOK    = 0
	exitRun   = 1
	exitUsage = 2
)

// onListen, when non-nil, observes the bound listen address and the
// http.Server before Serve blocks. Test seam: lets the daemon test bind
// :0, learn the real port, and shut the server down.
var onListen func(addr string, srv *http.Server)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func usage(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "mdsd: "+format+"\n", args...)
	return exitUsage
}

// run is main behind a testable seam: parse flags, build the serve.Server,
// listen.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdsd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	dir := fs.String("dir", "", "serve any graph file under this directory by relative path")
	graphBudget := fs.Int64("graph-budget", 0, "resident graph byte budget (0 = unlimited)")
	cacheBudget := fs.Int64("cache-budget", 64<<20, "certified-solution cache byte budget (0 = unlimited)")
	sim := fs.String("sim", "stepped", "default congest execution engine: goroutine | sharded | stepped")
	graphs := map[string]string{}
	fs.Func("graph", "preregister a graph as name=path (repeatable; .csrg is memory-mapped)", func(v string) error {
		name, path, ok := strings.Cut(v, "=")
		if !ok || name == "" || path == "" {
			return fmt.Errorf("want name=path, got %q", v)
		}
		if _, dup := graphs[name]; dup {
			return fmt.Errorf("duplicate graph name %q", name)
		}
		graphs[name] = path
		return nil
	})
	if err := fs.Parse(args); err != nil {
		return exitUsage
	}
	if fs.NArg() > 0 {
		return usage(stderr, "unexpected arguments: %s", strings.Join(fs.Args(), " "))
	}
	if len(graphs) == 0 && *dir == "" {
		return usage(stderr, "nothing to serve: give at least one -graph name=path or a -dir")
	}
	engine, err := congest.ParseEngine(*sim)
	if err != nil {
		return usage(stderr, "%v", err)
	}
	if *graphBudget < 0 || *cacheBudget < 0 {
		return usage(stderr, "budgets must be ≥ 0")
	}

	srv := &http.Server{
		Addr: *addr,
		Handler: serve.New(serve.Config{
			Graphs:      graphs,
			Dir:         *dir,
			GraphBudget: *graphBudget,
			CacheBudget: *cacheBudget,
			Engine:      engine,
		}),
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "mdsd: %v\n", err)
		return exitRun
	}
	fmt.Fprintf(stdout, "mdsd: serving on %s (%d graphs preregistered, engine %s)\n",
		ln.Addr(), len(graphs), engine)
	if onListen != nil {
		onListen(ln.Addr().String(), srv)
	}
	if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintf(stderr, "mdsd: %v\n", err)
		return exitRun
	}
	return exitOK
}
