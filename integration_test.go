package main

import (
	"math"
	"testing"
	"testing/quick"

	"congestds/internal/baseline"
	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/rounding"
	"congestds/internal/verify"
)

// Property: on arbitrary random connected graphs, both engines produce
// dominating sets whose size respects the Theorem 1.1/1.2 bound against the
// exact optimum (graphs kept small enough for branch and bound).
func TestPropertyApproximationBound(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		p := 0.12
		if dense {
			p = 0.3
		}
		g := graph.GNPConnected(16+int(seed%8), p, seed)
		opt := len(baseline.Exact(g))
		for _, eng := range []mds.Engine{mds.EngineDecomposition, mds.EngineColoring} {
			res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: eng})
			if err != nil {
				t.Logf("seed %d: %v", seed, err)
				return false
			}
			if !verify.IsDominatingSet(g, res.Set) {
				return false
			}
			if float64(len(res.Set)) > res.Bound*float64(opt)+1e-9 {
				t.Logf("seed %d: %d > %.2f × %d", seed, len(res.Set), res.Bound, opt)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

// Property: the CDS pipeline always yields a connected dominating set with
// |CDS| ≤ 3|DS| on random connected graphs.
func TestPropertyCDS(t *testing.T) {
	f := func(seed uint64) bool {
		g := graph.GNPConnected(20+int(seed%20), 0.12, seed)
		res, err := cds.Solve(g, cds.Params{})
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return verify.CheckCDS(g, res.CDS) == nil && len(res.CDS) <= 3*len(res.DS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// Property: the abstract rounding process output is feasible for arbitrary
// coin outcomes derived from the seed (Lemma 3.1, property 1).
func TestPropertyRoundingAlwaysFeasible(t *testing.T) {
	f := func(seed uint64, coinBits uint64) bool {
		g := graph.GNPConnected(12+int(seed%10), 0.3, seed)
		ctx := fractional.ScaleFor(g.N())
		fds := fractional.NewFDS(ctx, g.N())
		minInc := g.N()
		for v := 0; v < g.N(); v++ {
			if d := g.Degree(v) + 1; d < minInc {
				minInc = d
			}
		}
		for v := range fds.X {
			fds.X[v] = ctx.FromRatio(1, uint64(minInc), true)
		}
		inst := rounding.OneShotOnGraph(g, fds, ctx.FromFloat(math.Log(float64(g.MaxDegree()+2))))
		out := inst.Execute(func(j int) bool { return coinBits>>(uint(j)%64)&1 == 1 })
		res := fractional.NewFDS(ctx, g.N())
		copy(res.X, out.Values)
		return res.Check(g) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the congest execution engine (goroutine vs sharded scheduler)
// is invisible to mds.Solve — for arbitrary random graphs and both
// derandomization engines, set membership and every cost metric must be
// identical. This is the pipeline-level face of the determinism contract
// that internal/congest/conformance pins at the message-passing level.
func TestPropertyCrossSimEngineEquivalence(t *testing.T) {
	f := func(seed uint64, dense bool) bool {
		p := 0.12
		if dense {
			p = 0.3
		}
		g := graph.GNPConnected(20+int(seed%16), p, seed)
		for _, eng := range []mds.Engine{mds.EngineDecomposition, mds.EngineColoring} {
			var ref *mds.Result
			for _, sim := range congest.Engines() {
				res, err := mds.Solve(g, mds.Params{Eps: 0.5, Engine: eng, Sim: sim})
				if err != nil {
					t.Logf("seed %d engine %v sim %v: %v", seed, eng, sim, err)
					return false
				}
				if ref == nil {
					ref = res
					continue
				}
				if len(res.Set) != len(ref.Set) {
					t.Logf("seed %d engine %v: set size %d vs %d", seed, eng, len(res.Set), len(ref.Set))
					return false
				}
				for i := range res.Set {
					if res.Set[i] != ref.Set[i] {
						t.Logf("seed %d engine %v: member %d differs", seed, eng, i)
						return false
					}
				}
				a, b := ref.Ledger.Metrics(), res.Ledger.Metrics()
				if a.Rounds != b.Rounds || a.ChargedRounds != b.ChargedRounds ||
					a.Messages != b.Messages || a.Bits != b.Bits || a.MaxMsgBits != b.MaxMsgBits {
					t.Logf("seed %d engine %v: metrics diverge: %+v vs %+v", seed, eng, a, b)
					return false
				}
			}
		}
		return true
	}
	max := 10
	if testing.Short() {
		max = 4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: max}); err != nil {
		t.Error(err)
	}
}

// Cross-engine consistency: both engines start from the same Part I
// solution, so their outputs must be valid and within a small factor of
// each other on every family.
func TestEnginesConsistent(t *testing.T) {
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(64, 0.08, 4)},
		{"grid", graph.Grid(8, 8)},
		{"disk", graph.UnitDiskConnected(64, 0.25, 5)},
	} {
		r1, err := mds.Solve(fam.g, mds.Params{Eps: 0.5, Engine: mds.EngineDecomposition})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := mds.Solve(fam.g, mds.Params{Eps: 0.5, Engine: mds.EngineColoring})
		if err != nil {
			t.Fatal(err)
		}
		a, b := float64(len(r1.Set)), float64(len(r2.Set))
		if a > 2*b+2 || b > 2*a+2 {
			t.Errorf("%s: engines disagree wildly: %v vs %v", fam.name, a, b)
		}
	}
}

// End-to-end bandwidth audit: the measured phases of the full pipeline must
// respect the CONGEST budget on every family.
func TestPipelineBandwidthAudit(t *testing.T) {
	for _, fam := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(96, 0.05, 6)},
		{"ba", graph.BarabasiAlbert(96, 2, 7)},
	} {
		res, err := mds.Solve(fam.g, mds.Params{Eps: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		m := res.Ledger.Metrics()
		if m.BandwidthBits > 0 && m.MaxMsgBits > m.BandwidthBits {
			t.Errorf("%s: message of %d bits exceeded budget %d", fam.name, m.MaxMsgBits, m.BandwidthBits)
		}
		if m.Model != congest.Congest {
			t.Errorf("%s: expected CONGEST model, got %v", fam.name, m.Model)
		}
	}
}

// Degenerate topologies must not break any pipeline.
func TestDegenerateTopologies(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
	}{
		{"single", graph.Path(1)},
		{"pair", graph.Path(2)},
		{"triangle", graph.Complete(3)},
		{"star3", graph.Star(3)},
	}
	for _, tt := range cases {
		for _, eng := range []mds.Engine{mds.EngineDecomposition, mds.EngineColoring} {
			res, err := mds.Solve(tt.g, mds.Params{Eps: 0.5, Engine: eng})
			if err != nil {
				t.Errorf("%s/%v: %v", tt.name, eng, err)
				continue
			}
			if !verify.IsDominatingSet(tt.g, res.Set) {
				t.Errorf("%s/%v: not dominating", tt.name, eng)
			}
		}
	}
}
