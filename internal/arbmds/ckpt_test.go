package arbmds

import (
	"errors"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"congestds/internal/chaos"
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// TestPeelStateRoundTrip: RestoreState∘AppendState is the identity on the
// mutable fields, for every flag combination.
func TestPeelStateRoundTrip(t *testing.T) {
	for flags := 0; flags <= peelFlagMax; flags++ {
		src := &peelStep{
			s:         int32(7 + flags),
			white:     flags&peelWhite != 0,
			selfNom:   flags&peelSelfNom != 0,
			announce:  flags&peelAnnounce != 0,
			candidate: flags&peelCandidate != 0,
		}
		dst := &peelStep{}
		if err := dst.RestoreState(src.AppendState(nil)); err != nil {
			t.Fatalf("flags %d: %v", flags, err)
		}
		if !reflect.DeepEqual(src, dst) {
			t.Fatalf("flags %d: %+v round-tripped to %+v", flags, src, dst)
		}
	}
}

// TestPeelStateRejects: inputs the encoder cannot produce are errors, not
// silent misreads.
func TestPeelStateRejects(t *testing.T) {
	good := (&peelStep{s: 5, white: true}).AppendState(nil)
	for name, data := range map[string][]byte{
		"empty":     nil,
		"no-flags":  good[:len(good)-1],
		"trailing":  append(append([]byte(nil), good...), 0),
		"bad-flags": {good[0], peelFlagMax + 1},
		"overflow":  append(congest.AppendVarint(nil, 1<<40), 0),
	} {
		if err := (&peelStep{}).RestoreState(data); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBoolsHostRoundTrip covers the bit-packing across padding shapes and
// the corruption rejections.
func TestBoolsHostRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 64, 100} {
		src := boolsHost{xs: make([]bool, n)}
		for i := range src.xs {
			src.xs[i] = i%3 == 0
		}
		dst := boolsHost{xs: make([]bool, n)}
		if err := dst.RestoreHost(src.AppendHost(nil)); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !reflect.DeepEqual(src.xs, dst.xs) {
			t.Fatalf("n=%d: vector lost in round trip", n)
		}
	}
}

// TestBoolsHostRejects: length mismatches and set padding bits are errors.
func TestBoolsHostRejects(t *testing.T) {
	enc := (&boolsHost{xs: make([]bool, 9)}).AppendHost(nil)
	if err := (&boolsHost{xs: make([]bool, 8)}).RestoreHost(enc); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := (&boolsHost{xs: make([]bool, 9)}).RestoreHost(enc[:len(enc)-1]); err == nil {
		t.Error("truncated body accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[len(bad)-1] |= 0x80 // bit 15 of a 9-slot vector: padding
	if err := (&boolsHost{xs: make([]bool, 9)}).RestoreHost(bad); err == nil {
		t.Error("set padding bit accepted")
	}
}

// TestSolveCkptRejectsNonStepped: checkpointing is a stepped-engine
// feature; other engines must refuse loudly.
func TestSolveCkptRejectsNonStepped(t *testing.T) {
	g := graph.Cycle(16)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	_, err := Solve(g, Params{Sim: congest.EngineGoroutine, CkptPath: path})
	if err == nil || !strings.Contains(err.Error(), "EngineStepped") {
		t.Fatalf("err=%v, want a stepped-engine requirement error", err)
	}
}

// TestSolveCkptResume: a Solve interrupted by an injected fault resumes
// from its checkpoint to the same set and metrics as an uninterrupted run.
func TestSolveCkptResume(t *testing.T) {
	g := graph.GNPConnected(300, 0.03, 9)
	want, err := Solve(g, Params{Sim: congest.EngineStepped})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted attempt, driven at the congest layer so a fault hook can
	// abort it mid-run; checkpoints land where Solve will look.
	path := filepath.Join(t.TempDir(), "run.ckpt")
	inD := make([]bool, g.N())
	cfg := congest.Config{Engine: congest.EngineStepped,
		Hooks: chaos.NewPlan(0, chaos.Fault{Kind: chaos.FailRound, Round: 5})}
	_, err = congest.NewNetwork(g, cfg).RunSteppedCkpt(StepFactory(g, 0.5, inD),
		congest.CkptSpec{Path: path, Every: 1, Host: &boolsHost{xs: inD}})
	if !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("interrupted run: err=%v, want ErrInjected", err)
	}

	got, err := Solve(g, Params{Sim: congest.EngineStepped, CkptPath: path})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(got.Set, want.Set) {
		t.Errorf("resumed set diverges: %d vs %d nodes", len(got.Set), len(want.Set))
	}
	if got.Metrics != want.Metrics {
		t.Errorf("resumed metrics diverge:\n got: %+v\nwant: %+v", got.Metrics, want.Metrics)
	}
}
