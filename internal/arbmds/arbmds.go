// Package arbmds implements a deterministic peeling-based CONGEST
// algorithm for minimum dominating set on graphs of bounded arboricity,
// following the skeleton of Dory, Ghaffari and Ilchi, "Near-Optimal
// Distributed Dominating Set in Bounded Arboricity Graphs"
// (arXiv:2206.05174, PODC 2022): an O(α)-approximation in O(ε⁻¹·log Δ)
// rounds — crucially, a round complexity independent of n, which makes it
// the natural million-node stress workload for the stepped engine (the
// source paper's LP-rounding pipeline needs rounds growing with log n and
// far heavier machinery).
//
// # Algorithm
//
// All nodes know Δ (the standard known-max-degree assumption) and sweep a
// shared threshold schedule θ = Δ̃, Δ̃/(1+ε), Δ̃/(1+ε)², …, 1 with
// Δ̃ = Δ+1. Call a node white while it is not yet dominated, and let its
// support s(v) = |{u ∈ N⁺(v) : u white}| be the number of nodes it would
// newly cover. Each threshold phase takes exactly 4 CONGEST rounds:
//
//	report:   nodes covered in the previous phase announce it, so every
//	          node's s is exact before candidacy is decided;
//	offer:    nodes with s ≥ θ broadcast s (they are candidates);
//	nominate: each white node nominates the best candidate in its closed
//	          neighbourhood — max s, ties to the larger ID — with itself
//	          eligible when it is a candidate;
//	join:     every nominated candidate joins the dominating set and
//	          broadcasts the fact (tagged with whether it was itself still
//	          white), covering all its white neighbours.
//
// Every message is at most one identifier-sized integer, well inside the
// CONGEST budget.
//
// After the phase at threshold θ, no node has s ≥ θ: a white node with a
// ≥θ-candidate in its closed neighbourhood always nominates one, and a
// nominated candidate always joins, so any such white node gets covered in
// the phase. Two consequences drive the analysis: entering the phase at
// threshold θ every node covers < (1+ε)θ+1 white nodes, so
// OPT ≥ |W|/((1+ε)θ+1); and each joiner is nominated by a distinct white
// node that is covered within the phase, so joiners are charged to
// freshly-covered whites. On an arboricity-α graph the candidate/white
// incidence counting (every subgraph on k nodes has ≤ αk edges) bounds the
// per-phase joiners by O(α)·OPT, giving a worst-case O(α·ε⁻¹·log Δ̃)
// guarantee for this simultaneous-join variant; the refined charging of
// Dory–Ghaffari–Ilchi tightens the total to O(α)·OPT. The E-arb experiment
// suite (internal/experiments) checks the instantiated O(α) claim —
// size ≤ (2+ε)(2α̂+1)·LB with α̂ the measured degeneracy and LB the dual
// packing bound — and that measured rounds equal 4·|schedule|, independent
// of n.
//
// The final phase runs at θ = 1, where every white node is its own
// candidate, so the algorithm always terminates with a dominating set —
// no separate cleanup step.
//
// The native implementation is a congest.StepProgram (explicit per-node
// state, no goroutine stacks), so Solve runs million-node instances on
// EngineStepped in bounded memory; an independently written blocking twin
// (blocking.go) backs the differential conformance corpus.
package arbmds

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

// Params configures Solve.
type Params struct {
	// Eps is the threshold decay parameter: thresholds shrink by (1+ε) per
	// phase, trading rounds (O(ε⁻¹·log Δ)) against the constant in the
	// approximation. Zero means 0.5; positive values below MinEps are
	// clamped to MinEps.
	Eps float64
	// Sim selects the congest execution engine (congest.EngineStepped for
	// large instances). Zero means the goroutine reference engine.
	Sim congest.Engine
	// MaxRounds clamps the simulated run (zero: the simulator default).
	// Exposed for failure-injection tests.
	MaxRounds int
	// Deadline, when positive, bounds the run's wall clock; overruns
	// surface as congest.ErrDeadline with honest metrics.
	Deadline time.Duration
	// Ctx, when non-nil, cancels the run at round boundaries.
	Ctx context.Context
	// CkptPath, when set, checkpoints the run to this file every CkptEvery
	// rounds and resumes from it when the file already holds a checkpoint
	// of this graph. Requires Sim == congest.EngineStepped (the native
	// form); Solve rejects the combination otherwise rather than silently
	// running unprotected.
	CkptPath string
	// CkptEvery is the checkpoint cadence in rounds (zero means 1).
	CkptEvery int
	// Observer, when non-nil, receives per-round telemetry from the run
	// (see congest.Observer); attaching one never changes the outcome.
	Observer congest.Observer
}

// MinEps is the smallest accepted threshold decay: below it the schedule
// would have thousands of phases per unit of log Δ (and at float64
// granularity 1+ε can collapse to 1, which would never terminate), so
// Thresholds clamps ε into [MinEps, ∞) and Params treats anything ≤ 0 as
// the 0.5 default. Aliases verify.ArbMinEps so verify.RoundBoundArb
// clamps identically.
const MinEps = verify.ArbMinEps

// withDefaults normalizes the zero values.
func (p Params) withDefaults() Params {
	if p.Eps <= 0 {
		p.Eps = 0.5
	}
	return p
}

// Result is the outcome of a run.
type Result struct {
	// Set is the dominating set, ascending.
	Set []int
	// InD is the indicator vector behind Set.
	InD []bool
	// Thresholds is the phase schedule the nodes swept (4 rounds each).
	Thresholds []int
	// Metrics is the simulator's cost account; Metrics.Rounds is always
	// 4·len(Thresholds), independent of n.
	Metrics congest.Metrics
}

// Thresholds returns the shared phase schedule for a graph of maximum
// degree delta: strictly decreasing integer thresholds from Δ̃ = delta+1
// down to (always including) 1, shrinking by (1+ε) per step. Its length is
// the phase count, ⌈log_{1+ε} Δ̃⌉+O(1) — a pure function of (Δ, ε), so
// every node computes it locally under the known-Δ assumption and the
// round count never depends on n.
func Thresholds(delta int, eps float64) []int {
	if eps <= 0 {
		eps = 0.5
	}
	if eps < MinEps {
		eps = MinEps
	}
	deltaTilde := delta + 1
	if deltaTilde < 1 {
		deltaTilde = 1
	}
	var ths []int
	x := float64(deltaTilde)
	for {
		th := int(math.Ceil(x))
		if th < 1 {
			th = 1
		}
		if len(ths) == 0 || th < ths[len(ths)-1] {
			ths = append(ths, th)
		}
		if th == 1 {
			return ths
		}
		x /= 1 + eps
	}
}

// Solve runs the peeling algorithm on g under the selected simulator
// engine and returns the dominating set with the run's cost metrics. The
// program runs natively as a StepProgram on congest.EngineStepped and via
// the blocking adapter elsewhere, with byte-identical results.
func Solve(g *graph.Graph, p Params) (*Result, error) {
	p = p.withDefaults()
	net := congest.NewNetwork(g, congest.Config{
		Engine: p.Sim, MaxRounds: p.MaxRounds,
		Deadline: p.Deadline, Ctx: p.Ctx, Observer: p.Observer,
	})
	inD := make([]bool, g.N())
	var m congest.Metrics
	var err error
	if p.CkptPath != "" {
		if p.Sim != congest.EngineStepped {
			return nil, fmt.Errorf("arbmds: CkptPath requires Sim == congest.EngineStepped (got %v)", p.Sim)
		}
		every := p.CkptEvery
		if every <= 0 {
			every = 1
		}
		m, err = net.RunSteppedCkpt(StepFactory(g, p.Eps, inD),
			congest.CkptSpec{Path: p.CkptPath, Every: every, Host: &boolsHost{xs: inD}})
	} else {
		m, err = net.RunStepped(StepFactory(g, p.Eps, inD))
	}
	if err != nil {
		return nil, err
	}
	res := &Result{InD: inD, Thresholds: Thresholds(g.MaxDegree(), p.Eps), Metrics: m}
	for v, in := range inD {
		if in {
			res.Set = append(res.Set, v)
		}
	}
	sort.Ints(res.Set)
	return res, nil
}
