package arbmds

import (
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

// TestSolveDominatesAllFamilies: the output must be a dominating set on
// every registered graph family, including disconnected graphs and graphs
// with isolated nodes.
func TestSolveDominatesAllFamilies(t *testing.T) {
	for _, fam := range graph.Families() {
		g, err := graph.Named(fam, 120, 3)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		res, err := Solve(g, Params{})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if !verify.IsDominatingSet(g, res.Set) {
			t.Errorf("%s: output is not a dominating set", fam)
		}
	}
	for _, g := range []*graph.Graph{
		graph.GNP(40, 0.04, 5), // disconnected
		graph.GNP(24, 0.03, 7), // isolated nodes
		graph.Path(1),
		graph.Path(2),
	} {
		res, err := Solve(g, Params{})
		if err != nil {
			t.Fatal(err)
		}
		if !verify.IsDominatingSet(g, res.Set) {
			t.Errorf("graph %v: not dominating", g)
		}
	}
}

// TestSolveCrossEngineIdentical: Solve must return the identical set and
// metrics on all three engines (native stepped vs blocking adapter).
func TestSolveCrossEngineIdentical(t *testing.T) {
	g := graph.UnionForests(300, 3, 11)
	ref, err := Solve(g, Params{Sim: congest.EngineGoroutine})
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range congest.Engines() {
		res, err := Solve(g, Params{Sim: eng})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if res.Metrics != ref.Metrics {
			t.Errorf("%v: metrics %+v != reference %+v", eng, res.Metrics, ref.Metrics)
		}
		if len(res.Set) != len(ref.Set) {
			t.Fatalf("%v: |set|=%d != reference %d", eng, len(res.Set), len(ref.Set))
		}
		for i := range res.Set {
			if res.Set[i] != ref.Set[i] {
				t.Fatalf("%v: set[%d]=%d != reference %d", eng, i, res.Set[i], ref.Set[i])
			}
		}
	}
}

// TestBlockingTwinMatchesStepped: the independently written blocking
// program must be byte-identical to the stepped form — same set, same
// metrics — on every engine (the conformance suite repeats this over its
// whole corpus; this is the package-local pin).
func TestBlockingTwinMatchesStepped(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.UnionForests(150, 2, 5),
		graph.GridDiagonals(9, 9),
		graph.RandomOutDAG(150, 3, 5),
		graph.Caterpillar(20, 3),
		graph.GNP(60, 0.05, 9),
	} {
		stepRes, err := Solve(g, Params{})
		if err != nil {
			t.Fatal(err)
		}
		for _, eng := range congest.Engines() {
			inD := make([]bool, g.N())
			net := congest.NewNetwork(g, congest.Config{Engine: eng})
			m, err := net.Run(BlockingProgram(g, 0.5, inD))
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			if m != stepRes.Metrics {
				t.Errorf("%v: blocking metrics %+v != stepped %+v", eng, m, stepRes.Metrics)
			}
			for v := range inD {
				if inD[v] != stepRes.InD[v] {
					t.Fatalf("%v: node %d membership diverges between forms", eng, v)
				}
			}
		}
	}
}

// TestRoundsIndependentOfN is the headline property: on families whose max
// degree does not grow with n, the round count must be exactly
// 4·|schedule| — the same number at 100 nodes and at 40 000.
func TestRoundsIndependentOfN(t *testing.T) {
	small := graph.GridDiagonals(10, 10)
	large := graph.GridDiagonals(200, 200)
	if small.MaxDegree() != large.MaxDegree() {
		t.Fatalf("Δ differs: %d vs %d", small.MaxDegree(), large.MaxDegree())
	}
	rs, err := Solve(small, Params{Sim: congest.EngineStepped})
	if err != nil {
		t.Fatal(err)
	}
	rl, err := Solve(large, Params{Sim: congest.EngineStepped})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Metrics.Rounds != rl.Metrics.Rounds {
		t.Errorf("rounds depend on n: %d (n=%d) vs %d (n=%d)",
			rs.Metrics.Rounds, small.N(), rl.Metrics.Rounds, large.N())
	}
	if want := 4 * len(rs.Thresholds); rs.Metrics.Rounds != want {
		t.Errorf("rounds=%d, want 4·|schedule|=%d", rs.Metrics.Rounds, want)
	}
	if bound := verify.RoundBoundArb(small.MaxDegree(), 0.5); rs.Metrics.Rounds > bound {
		t.Errorf("rounds=%d exceed the claimed bound %d", rs.Metrics.Rounds, bound)
	}
}

// TestThresholdSchedule pins the schedule's invariants: strictly
// decreasing, starts at Δ̃, always ends at 1, length O(ε⁻¹·log Δ̃).
func TestThresholdSchedule(t *testing.T) {
	for _, delta := range []int{0, 1, 2, 7, 100, 100000} {
		for _, eps := range []float64{0.1, 0.5, 1} {
			ths := Thresholds(delta, eps)
			if ths[0] != delta+1 && !(delta == 0 && ths[0] == 1) {
				t.Errorf("Δ=%d ε=%v: schedule starts at %d, want Δ̃=%d", delta, eps, ths[0], delta+1)
			}
			if ths[len(ths)-1] != 1 {
				t.Errorf("Δ=%d ε=%v: schedule ends at %d, want 1", delta, eps, ths[len(ths)-1])
			}
			for i := 1; i < len(ths); i++ {
				if ths[i] >= ths[i-1] {
					t.Errorf("Δ=%d ε=%v: schedule not strictly decreasing at %d", delta, eps, i)
				}
			}
			if bound := verify.RoundBoundArb(delta, eps); 4*len(ths) > bound {
				t.Errorf("Δ=%d ε=%v: 4·|schedule|=%d exceeds claimed bound %d", delta, eps, 4*len(ths), bound)
			}
		}
	}
}

// TestThresholdsTinyEpsTerminates is the regression for the review
// finding that 0 < ε < 2⁻⁵³ made 1+ε collapse to 1.0 in float64 and the
// schedule loop spin forever: any ε is clamped to MinEps, so the schedule
// stays finite and still ends at 1.
func TestThresholdsTinyEpsTerminates(t *testing.T) {
	for _, eps := range []float64{1e-300, 1e-17, 1e-9, 0.0099} {
		ths := Thresholds(1000, eps)
		want := Thresholds(1000, MinEps)
		if len(ths) != len(want) {
			t.Errorf("eps=%g: |schedule|=%d, want the MinEps schedule length %d", eps, len(ths), len(want))
		}
		if ths[len(ths)-1] != 1 {
			t.Errorf("eps=%g: schedule ends at %d, want 1", eps, ths[len(ths)-1])
		}
	}
	// And the clamped schedule still fits the (equally clamped) round bound.
	if got, bound := 4*len(Thresholds(1000, 1e-17)), verify.RoundBoundArb(999, 1e-17); got > bound {
		t.Errorf("clamped schedule rounds %d exceed clamped bound %d", got, bound)
	}
}

// TestApproximationWithinClaim checks the instantiated O(α) claim on the
// bounded-arboricity families at two sizes each, against the dual-packing
// lower bound (conservative: LB ≤ OPT).
func TestApproximationWithinClaim(t *testing.T) {
	for _, tc := range []struct {
		name string
		make func(n int) *graph.Graph
	}{
		{"uforest", func(n int) *graph.Graph { return graph.UnionForests(n, 3, 7) }},
		{"gridx", func(n int) *graph.Graph { s := isqrt(n); return graph.GridDiagonals(s, s) }},
		{"adag", func(n int) *graph.Graph { return graph.RandomOutDAG(n, 3, 7) }},
		{"caterpillar", func(n int) *graph.Graph { return graph.Caterpillar(n/5, 4) }},
		{"path", graph.Path},
	} {
		for _, n := range []int{64, 400} {
			g := tc.make(n)
			res, err := Solve(g, Params{})
			if err != nil {
				t.Fatalf("%s/%d: %v", tc.name, n, err)
			}
			cert := verify.CertifyArb(g, res.Set, 0.5)
			if !cert.OK {
				t.Errorf("%s/%d: certificate failed: %v", tc.name, n, cert)
			}
		}
	}
}

// TestGreedyComparableQuality is a sanity guard against silent quality
// regressions: on the bounded-arboricity suite the peeling set should stay
// within a small factor of the sequential greedy baseline.
func TestGreedyComparableQuality(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.UnionForests(400, 3, 13),
		graph.GridDiagonals(20, 20),
		graph.RandomOutDAG(400, 3, 13),
	} {
		res, err := Solve(g, Params{})
		if err != nil {
			t.Fatal(err)
		}
		greedy := greedySize(g)
		if len(res.Set) > 4*greedy {
			t.Errorf("%v: |arbmds|=%d vs greedy %d — worse than 4×", g, len(res.Set), greedy)
		}
	}
}

// greedySize is a local max-coverage greedy (kept independent of
// internal/baseline to avoid a dependency edge from this package).
func greedySize(g *graph.Graph) int {
	n := g.N()
	covered := make([]bool, n)
	size, left := 0, n
	for left > 0 {
		best, gain := -1, 0
		for v := 0; v < n; v++ {
			c := 0
			if !covered[v] {
				c++
			}
			for _, u := range g.Neighbors(v) {
				if !covered[u] {
					c++
				}
			}
			if c > gain {
				best, gain = v, c
			}
		}
		if !covered[best] {
			covered[best] = true
			left--
		}
		for _, u := range g.Neighbors(best) {
			if !covered[u] {
				covered[u] = true
				left--
			}
		}
		size++
	}
	return size
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
