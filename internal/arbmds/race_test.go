//go:build race

package arbmds

func init() { raceEnabled = true }
