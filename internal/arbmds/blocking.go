package arbmds

import (
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// BlockingProgram is the peeling algorithm written independently in the
// blocking Program style: a loop over the threshold schedule with four
// Syncs per phase. Where the stepped form maintains the support s as an
// incrementally-updated counter, this one tracks per-neighbour whiteness
// in a boolean slice and recounts s every phase — a deliberately different
// implementation of the same protocol, so a bookkeeping bug in either form
// shows up as a byte-level divergence in the conformance suite rather than
// being replicated into both.
func BlockingProgram(g *graph.Graph, eps float64, inD []bool) congest.Program {
	ths := Thresholds(g.MaxDegree(), eps)
	return func(nd *congest.Node) {
		deg := nd.Degree()
		nbrWhite := make([]bool, deg)
		for p := range nbrWhite {
			nbrWhite[p] = true
		}
		white := true
		pendingCovered := false
		for _, th := range ths {
			// Report segment: announce a coverage picked up last phase.
			if pendingCovered {
				nd.Broadcast(nil)
				pendingCovered = false
			}
			for _, msg := range nd.Sync() {
				nbrWhite[msg.Port] = false
			}
			// Offer segment: recount support, broadcast it if candidate.
			s := 0
			for _, w := range nbrWhite {
				if w {
					s++
				}
			}
			if white {
				s++
			}
			candidate := s >= th
			if candidate {
				nd.Broadcast(congest.AppendUvarint(nil, uint64(s)))
			}
			offers := nd.Sync()
			// Nominate segment: whites pick the best candidate in N⁺.
			selfNom := false
			if white {
				bestS, bestID, bestPort := int64(-1), int64(-1), -1
				if candidate {
					bestS, bestID = int64(s), nd.ID()
				}
				for _, msg := range offers {
					cs, off := congest.Uvarint(msg.Payload, 0)
					if off < 0 {
						panic("arbmds: bad candidacy payload")
					}
					if id := nd.NeighborID(msg.Port); int64(cs) > bestS || (int64(cs) == bestS && id > bestID) {
						bestS, bestID, bestPort = int64(cs), id, msg.Port
					}
				}
				if bestPort >= 0 {
					nd.Send(bestPort, nil)
				} else if bestS >= 0 {
					selfNom = true
				}
			}
			nominations := nd.Sync()
			// Join segment: nominated candidates enter the set.
			if candidate && (selfNom || len(nominations) > 0) {
				inD[nd.V()] = true
				if white {
					white = false
					nd.Broadcast([]byte{1})
				} else {
					nd.Broadcast([]byte{0})
				}
			}
			joins := nd.Sync()
			for _, msg := range joins {
				if len(msg.Payload) != 1 {
					panic("arbmds: bad join payload")
				}
				if msg.Payload[0] == 1 {
					nbrWhite[msg.Port] = false
				}
			}
			if white && len(joins) > 0 {
				white = false
				pendingCovered = true
			}
		}
	}
}
