package arbmds_test

import (
	"fmt"

	"congestds/internal/arbmds"
	"congestds/internal/graph"
)

// ExampleSolve runs the bounded-arboricity peeling MDS on a star: the
// centre has maximal support, wins every nomination, and dominates the
// graph alone. The round count is 4·|schedule|, a pure function of (Δ, ε).
func ExampleSolve() {
	g := graph.Star(8)
	res, err := arbmds.Solve(g, arbmds.Params{})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("dominating set:", res.Set)
	fmt.Println("rounds:", res.Metrics.Rounds, "= 4 ×", len(res.Thresholds), "phases")
	// Output:
	// dominating set: [0]
	// rounds: 24 = 4 × 6 phases
}
