package arbmds

import (
	"runtime/debug"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/testmem"
	"congestds/internal/verify"
)

// raceEnabled is set by race_test.go under the race detector.
var raceEnabled = false

// TestArbmdsMillionNodeUnionForest is the scale demonstration the
// subsystem exists for: a full algorithm — not just a synthetic broadcast
// pattern — on a million-node bounded-arboricity graph, natively on the
// stepped engine, inside the CI memory budget. The run must produce a
// verified dominating set within the instantiated O(α) claim, in a round
// count that is a pure function of (Δ, ε). The CI memsmoke job runs this
// under an external GOMEMLIMIT=700MiB next to the torus smoke.
func TestArbmdsMillionNodeUnionForest(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: million-node run takes ~10 s")
	}
	if raceEnabled {
		t.Skip("race detector multiplies the 1M-node footprint several-fold")
	}
	// Bound the GC's laziness so peak RSS reflects live memory (generator
	// churn included), as the torus smoke does.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(600 << 20))
	const n = 1_000_000
	g := graph.UnionForests(n, 3, 1)
	res, err := Solve(g, Params{Sim: congest.EngineStepped})
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * len(res.Thresholds); res.Metrics.Rounds != want {
		t.Errorf("rounds=%d, want 4·|schedule|=%d", res.Metrics.Rounds, want)
	}
	if bound := verify.RoundBoundArb(g.MaxDegree(), 0.5); res.Metrics.Rounds > bound {
		t.Errorf("rounds=%d exceed the claimed bound %d (Δ=%d)", res.Metrics.Rounds, bound, g.MaxDegree())
	}
	if v := verify.FirstUndominated(g, res.Set); v != -1 {
		t.Fatalf("node %d undominated", v)
	}
	// The full certificate (dual-packing LB + degeneracy) is cheap even at
	// this size; ratio ≈ 1.95 on this instance, claim 22.5.
	cert := verify.CertifyArb(g, res.Set, 0.5)
	if !cert.OK {
		t.Errorf("certificate failed at n=10⁶: %v", cert)
	}
	t.Logf("n=%d Δ=%d rounds=%d |set|=%d %v", n, g.MaxDegree(), res.Metrics.Rounds, len(res.Set), cert)
	hwm := testmem.ReadVmHWM()
	t.Logf("peak RSS after 1M-node arbmds run: %.1f MiB", float64(hwm)/(1<<20))
	if hwm > 0 && hwm >= 700<<20 {
		t.Errorf("peak RSS %d bytes >= 700 MiB bound", hwm)
	}
}
