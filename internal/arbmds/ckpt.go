package arbmds

import (
	"errors"
	"fmt"

	"congestds/internal/congest"
)

// Checkpoint support for the native stepped form: peelStep serializes its
// five mutable fields (the shared threshold schedule and output vector are
// rebuilt by the factory on resume, not stored), and boolsHost carries the
// inD output vector so nodes that joined the set before the checkpoint
// survive a process restart.

var _ congest.CkptStep = (*peelStep)(nil)

var errBadPeelState = errors.New("arbmds: bad peel checkpoint state")

// peelFlag bits of the state encoding's flag byte.
const (
	peelWhite = 1 << iota
	peelSelfNom
	peelAnnounce
	peelCandidate
	peelFlagMax = peelCandidate<<1 - 1
)

// AppendState encodes the mutable per-node state: varint(s) + one flag
// byte.
func (ps *peelStep) AppendState(buf []byte) []byte {
	buf = congest.AppendVarint(buf, int64(ps.s))
	var flags byte
	if ps.white {
		flags |= peelWhite
	}
	if ps.selfNom {
		flags |= peelSelfNom
	}
	if ps.announce {
		flags |= peelAnnounce
	}
	if ps.candidate {
		flags |= peelCandidate
	}
	return append(buf, flags)
}

// RestoreState decodes AppendState's encoding, rejecting anything the
// encoder cannot have produced.
func (ps *peelStep) RestoreState(data []byte) error {
	s, off := congest.Varint(data, 0)
	if off < 0 || off != len(data)-1 {
		return errBadPeelState
	}
	if int64(int32(s)) != s {
		return fmt.Errorf("%w: support %d overflows int32", errBadPeelState, s)
	}
	flags := data[off]
	if flags > peelFlagMax {
		return fmt.Errorf("%w: unknown flag bits 0x%02x", errBadPeelState, flags)
	}
	ps.s = int32(s)
	ps.white = flags&peelWhite != 0
	ps.selfNom = flags&peelSelfNom != 0
	ps.announce = flags&peelAnnounce != 0
	ps.candidate = flags&peelCandidate != 0
	return nil
}

// boolsHost checkpoints a shared []bool output vector in place (bit-packed,
// length-prefixed). The restore target must already have the right length —
// the slice is allocated per graph, so a mismatch means the checkpoint
// belongs to a different run shape.
type boolsHost struct{ xs []bool }

func (h *boolsHost) AppendHost(buf []byte) []byte {
	buf = congest.AppendUvarint(buf, uint64(len(h.xs)))
	var acc byte
	for i, x := range h.xs {
		if x {
			acc |= 1 << (i % 8)
		}
		if i%8 == 7 {
			buf = append(buf, acc)
			acc = 0
		}
	}
	if len(h.xs)%8 != 0 {
		buf = append(buf, acc)
	}
	return buf
}

func (h *boolsHost) RestoreHost(data []byte) error {
	n, off := congest.Uvarint(data, 0)
	if off < 0 || n != uint64(len(h.xs)) {
		return fmt.Errorf("arbmds: host vector length mismatch (checkpoint %d, run %d)", n, len(h.xs))
	}
	want := (len(h.xs) + 7) / 8
	if len(data)-off != want {
		return fmt.Errorf("arbmds: host vector body is %d bytes, want %d", len(data)-off, want)
	}
	for i := range h.xs {
		h.xs[i] = data[off+i/8]&(1<<(i%8)) != 0
	}
	// Reject set bits in the final byte's padding: the encoder never writes
	// them, so they flag corruption the bit loop above would silently drop.
	if r := len(h.xs) % 8; r != 0 && data[len(data)-1]>>r != 0 {
		return errors.New("arbmds: host vector has padding bits set")
	}
	return nil
}
