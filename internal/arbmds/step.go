package arbmds

import (
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// The native StepProgram form of the peeling algorithm. Per-node state is
// a handful of machine words — a support counter maintained incrementally
// from the phase messages, the white/nominated flags and the shared
// threshold schedule — so a million-node run costs the engine's slot
// records plus ~5 words per node, no goroutine stacks.
//
// Message types are implied by the round segment (all nodes run the same
// 4-segment phase schedule in lockstep), so three of the four message
// kinds are empty payloads and only the candidacy offer carries an
// integer:
//
//	segment 4t   report:   empty        (sender was covered last phase)
//	segment 4t+1 offer:    uvarint(s)   (sender is a candidate, s ≥ θ_t)
//	segment 4t+2 nominate: empty        (sent to the chosen candidate)
//	segment 4t+3 join:     1 byte       (1 = sender was still white)
//
// The blocking twin in blocking.go independently re-derives the same
// protocol (tracking per-neighbour whiteness instead of a counter); the
// conformance suite holds the two byte-identical on every engine.

// Segment layout of a phase.
const (
	segReport = iota
	segOffer
	segNominate
	segJoin
	segPerPhase
)

// peelStep is the per-node state machine.
type peelStep struct {
	ths []int  // shared threshold schedule (read-only)
	inD []bool // shared output, nodes write disjoint slots

	s         int32 // support: white members of the closed neighbourhood
	white     bool  // not yet dominated
	selfNom   bool  // nominated itself in the current phase
	announce  bool  // must report "covered" at the next phase's report segment
	candidate bool  // s ≥ θ held at this phase's offer segment
}

// StepFactory builds the native stepped form for g: the threshold schedule
// is computed once from Δ (all nodes know it) and shared read-only across
// nodes; inD is the output vector (distinct nodes write distinct slots, as
// the StepFactory contract allows).
func StepFactory(g *graph.Graph, eps float64, inD []bool) congest.StepFactory {
	ths := Thresholds(g.MaxDegree(), eps)
	return func(nd *congest.Node) congest.StepProgram {
		return &peelStep{ths: ths, inD: inD}
	}
}

func (ps *peelStep) Init(nd *congest.Node) bool {
	ps.white = true
	ps.s = int32(nd.Degree()) + 1
	// Segment 0 is the first phase's report segment: nothing to report.
	return false
}

func (ps *peelStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	phase := round / segPerPhase
	th := int32(ps.ths[phase])
	switch round % segPerPhase {
	case segReport:
		// Neighbours covered last phase leave the white set.
		ps.s -= int32(len(in))
		// Candidacy is decided on the now-exact support and offered to the
		// neighbourhood.
		ps.candidate = ps.s >= th
		if ps.candidate {
			nd.Broadcast(congest.AppendUvarint(nd.PayloadBuf(5), uint64(ps.s)))
		}
	case segOffer:
		// White nodes nominate the best candidate in N⁺: max support, ties
		// to the larger identifier.
		if !ps.white {
			return false
		}
		bestS, bestID, bestPort := int64(-1), int64(-1), -1
		if ps.candidate {
			bestS, bestID = int64(ps.s), nd.ID()
		}
		for _, msg := range in {
			cs, off := congest.Uvarint(msg.Payload, 0)
			if off < 0 {
				panic("arbmds: bad candidacy payload")
			}
			id := nd.NeighborID(msg.Port)
			if int64(cs) > bestS || (int64(cs) == bestS && id > bestID) {
				bestS, bestID, bestPort = int64(cs), id, msg.Port
			}
		}
		ps.selfNom = bestS >= 0 && bestPort < 0
		if bestPort >= 0 {
			nd.Send(bestPort, nil)
		}
	case segNominate:
		// Nominated candidates join and announce it; the tag byte says
		// whether the joiner itself just left the white set, so receivers
		// can keep their support counters exact.
		if ps.candidate && (ps.selfNom || len(in) > 0) {
			ps.inD[nd.V()] = true
			wasWhite := byte(0)
			if ps.white {
				wasWhite = 1
				ps.white = false
				ps.s--
			}
			nd.Broadcast(append(nd.PayloadBuf(1), wasWhite))
		}
		ps.selfNom = false
	case segJoin:
		for _, msg := range in {
			if len(msg.Payload) != 1 {
				panic("arbmds: bad join payload")
			}
			if msg.Payload[0] == 1 {
				ps.s--
			}
		}
		if ps.white && len(in) > 0 {
			// Covered by a neighbour's join: report it next phase.
			ps.white = false
			ps.s--
			ps.announce = true
		}
		if phase+1 >= len(ps.ths) {
			return true // θ reached 1: every node is covered
		}
		if ps.announce {
			nd.Broadcast(nil)
			ps.announce = false
		}
	}
	return false
}
