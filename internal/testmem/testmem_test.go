package testmem

import "testing"

func TestReadVmHWM(t *testing.T) {
	hwm := ReadVmHWM()
	if hwm == 0 {
		t.Skip("/proc unavailable on this host")
	}
	// A running Go test binary has certainly peaked above 1 MiB and (on
	// these container hosts) below 1 TiB; anything outside means the
	// parsing broke.
	if hwm < 1<<20 || hwm > 1<<40 {
		t.Errorf("implausible VmHWM %d bytes", hwm)
	}
}
