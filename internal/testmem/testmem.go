// Package testmem provides the process-memory probe shared by the
// million-node scale tests (the stepped-engine torus smoke and the
// arbmds/mcds full-algorithm smokes): peak RSS as the kernel accounts it,
// so each test can assert its run stayed inside the CI memsmoke budget.
// It lives outside the test files because three packages need the same
// /proc parsing and the bound convention must not drift between them.
package testmem

import (
	"os"
	"strconv"
	"strings"
)

// ReadVmHWM returns the process's peak resident set size ("high water
// mark") in bytes, or 0 if /proc is unavailable (non-Linux hosts), in
// which case callers skip their RSS assertion.
func ReadVmHWM() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				if kb, err := strconv.ParseInt(fields[0], 10, 64); err == nil {
					return kb * 1024
				}
			}
		}
	}
	return 0
}
