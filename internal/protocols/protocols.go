// Package protocols provides reusable synchronous message-passing building
// blocks on the CONGEST simulator: flooding aggregation (global min/max),
// leader election, and BFS tree construction. The dominating set algorithms
// assume knowledge of n and Δ (standard in the literature the paper builds
// on); these protocols show how such quantities are obtained from scratch
// and serve the runnable examples.
//
// Every protocol is written in the stackless StepProgram form and executed
// via Network.RunStepped, so on congest.EngineStepped the broadcast-and-fold
// inner loops run with no per-node goroutine; on the other engines the
// blocking adapter produces identical results and metrics.
package protocols

import (
	"fmt"

	"congestds/internal/congest"
)

// floodMinStep floods the running minimum for a fixed number of rounds,
// broadcasting only when the minimum improved (the standard silence
// optimization; round count is unchanged, message count shrinks).
type floodMinStep struct {
	out    []int64
	rounds int
	cur    int64
}

func (s *floodMinStep) broadcast(nd *congest.Node) {
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(10), s.cur))
}

func (s *floodMinStep) Init(nd *congest.Node) bool {
	if s.rounds <= 0 {
		s.out[nd.V()] = s.cur
		return true
	}
	s.broadcast(nd) // the first iteration always announces
	return false
}

func (s *floodMinStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	changed := false
	for _, msg := range in {
		x, off := congest.Varint(msg.Payload, 0)
		if off < 0 {
			panic("protocols: bad flood message")
		}
		if x < s.cur {
			s.cur = x
			changed = true
		}
	}
	if round+1 >= s.rounds {
		s.out[nd.V()] = s.cur
		return true
	}
	if changed {
		s.broadcast(nd)
	}
	return false
}

// FloodMin computes, at every node, the minimum over all nodes of the given
// per-node value, by flooding for rounds synchronous rounds (rounds must be
// an upper bound on the diameter; n-1 always works). Values must be
// non-negative.
func FloodMin(net *congest.Network, ledger *congest.Ledger, value func(v int) int64, rounds int) ([]int64, error) {
	g := net.Graph()
	out := make([]int64, g.N())
	metrics, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &floodMinStep{out: out, rounds: rounds, cur: value(nd.V())}
	})
	if ledger != nil {
		ledger.RecordRun("protocols/flood-min", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("protocols: flood: %w", err)
	}
	return out, nil
}

// FloodMax is FloodMin for maxima.
func FloodMax(net *congest.Network, ledger *congest.Ledger, value func(v int) int64, rounds int) ([]int64, error) {
	vals, err := FloodMin(net, ledger, func(v int) int64 { return -value(v) }, rounds)
	if err != nil {
		return nil, err
	}
	for i := range vals {
		vals[i] = -vals[i]
	}
	return vals, nil
}

// ElectLeader returns the node with the minimum ID, agreed upon by every
// node via flooding (n-1 rounds).
func ElectLeader(net *congest.Network, ledger *congest.Ledger) (int, error) {
	g := net.Graph()
	if g.N() == 0 {
		return -1, fmt.Errorf("protocols: empty network")
	}
	mins, err := FloodMin(net, ledger, func(v int) int64 { return g.ID(v) }, g.N()-1)
	if err != nil {
		return -1, err
	}
	for v := 0; v < g.N(); v++ {
		if mins[v] != mins[0] {
			return -1, fmt.Errorf("protocols: leader disagreement (graph disconnected?)")
		}
	}
	for v := 0; v < g.N(); v++ {
		if g.ID(v) == mins[0] {
			return v, nil
		}
	}
	return -1, fmt.Errorf("protocols: leader id %d not found", mins[0])
}

// Tree is a rooted BFS tree: Parent[v] is v's parent node index (-1 for the
// root and unreached nodes), Depth[v] the BFS depth (-1 if unreached).
type Tree struct {
	Root   int
	Parent []int
	Depth  []int
}

// bfsStep is layered flooding: nodes at depth r announce in round r,
// unreached nodes adopt the smallest-port announcer as parent.
type bfsStep struct {
	tree       *Tree
	rounds     int
	root       bool
	depth      int
	parentPort int
}

func (s *bfsStep) record(nd *congest.Node) {
	v := nd.V()
	s.tree.Depth[v] = s.depth
	if s.parentPort >= 0 {
		s.tree.Parent[v] = nd.NeighborIndex(s.parentPort)
	} else {
		s.tree.Parent[v] = -1
	}
}

func (s *bfsStep) Init(nd *congest.Node) bool {
	s.depth, s.parentPort = -1, -1
	if s.root {
		s.depth = 0
	}
	if s.rounds <= 0 {
		s.record(nd)
		return true
	}
	if s.depth == 0 {
		nd.Broadcast([]byte{1})
	}
	return false
}

func (s *bfsStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	if s.depth < 0 && len(in) > 0 {
		s.depth = round + 1
		s.parentPort = in[0].Port // inbox sorted by port: deterministic
	}
	if round+1 >= s.rounds {
		s.record(nd)
		return true
	}
	if s.depth == round+1 {
		nd.Broadcast([]byte{1})
	}
	return false
}

// BFSTree builds a breadth-first tree from root by layered flooding. Runs
// for rounds rounds (an upper bound on the eccentricity of the root).
func BFSTree(net *congest.Network, ledger *congest.Ledger, root, rounds int) (*Tree, error) {
	g := net.Graph()
	tree := &Tree{Root: root, Parent: make([]int, g.N()), Depth: make([]int, g.N())}
	metrics, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &bfsStep{tree: tree, rounds: rounds, root: nd.V() == root}
	})
	if ledger != nil {
		ledger.RecordRun("protocols/bfs-tree", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("protocols: bfs: %w", err)
	}
	return tree, nil
}

// convergecastStep aggregates a sum up a BFS tree (leaves first: a node at
// depth d reports at round height-d) and then broadcasts the total back
// down. Step k < height+1 handles the upward phase; later steps the
// downward one. 2·(height+1) rounds in total.
type convergecastStep struct {
	tree       *Tree
	height     int
	results    []int64
	acc        int64
	total      int64
	have       bool
	parent     int
	parentPort int
}

func (s *convergecastStep) Init(nd *congest.Node) bool {
	v := nd.V()
	s.parent = s.tree.Parent[v]
	s.parentPort = -1
	for p := 0; p < nd.Degree(); p++ {
		if nd.NeighborIndex(p) == s.parent {
			s.parentPort = p
		}
	}
	s.upSend(nd, 0)
	return false
}

// upSend queues the upward report of round r: a node at depth d reports to
// its parent at round height-d, by when all children have reported.
func (s *convergecastStep) upSend(nd *congest.Node, r int) {
	myDepth := s.tree.Depth[nd.V()]
	if myDepth >= 0 && s.height-myDepth == r && s.parentPort >= 0 {
		nd.Send(s.parentPort, congest.AppendVarint(nd.PayloadBuf(10), s.acc))
	}
}

// downSend queues the downward broadcast of round r: nodes that know the
// total and sit at depth r announce it.
func (s *convergecastStep) downSend(nd *congest.Node, r int) {
	if s.have && s.tree.Depth[nd.V()] == r {
		nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(10), s.total))
	}
}

func (s *convergecastStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	v := nd.V()
	if round <= s.height {
		// Upward phase receive: only accept reports from children.
		for _, msg := range in {
			child := nd.NeighborIndex(msg.Port)
			if s.tree.Parent[child] == v {
				x, off := congest.Varint(msg.Payload, 0)
				if off < 0 {
					panic("protocols: bad convergecast message")
				}
				s.acc += x
			}
		}
		if round == s.height {
			// Upward phase over: the root's accumulator is the global sum.
			s.total = s.acc
			s.have = v == s.tree.Root
			s.downSend(nd, 0)
		} else {
			s.upSend(nd, round+1)
		}
		return false
	}
	// Downward phase receive for down-round r = round-height-1.
	r := round - s.height - 1
	if !s.have {
		for _, msg := range in {
			if nd.NeighborIndex(msg.Port) == s.parent {
				x, off := congest.Varint(msg.Payload, 0)
				if off < 0 {
					panic("protocols: bad broadcast message")
				}
				s.total = x
				s.have = true
			}
		}
	}
	if r == s.height {
		s.results[v] = s.total
		return true
	}
	s.downSend(nd, r+1)
	return false
}

// ConvergecastSum aggregates the sum of per-node int64 values to the root of
// tree, then broadcasts it back down; every node returns the global sum.
// Runs in 2·height rounds where height is the tree height.
func ConvergecastSum(net *congest.Network, ledger *congest.Ledger, tree *Tree, value func(v int) int64) (int64, error) {
	g := net.Graph()
	height := 0
	for _, d := range tree.Depth {
		if d > height {
			height = d
		}
	}
	results := make([]int64, g.N())
	metrics, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &convergecastStep{tree: tree, height: height, results: results, acc: value(nd.V())}
	})
	if ledger != nil {
		ledger.RecordRun("protocols/convergecast", metrics)
	}
	if err != nil {
		return 0, fmt.Errorf("protocols: convergecast: %w", err)
	}
	for v := 1; v < g.N(); v++ {
		if results[v] != results[0] && tree.Depth[v] >= 0 {
			return 0, fmt.Errorf("protocols: sum disagreement at node %d", v)
		}
	}
	return results[0], nil
}
