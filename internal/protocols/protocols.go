// Package protocols provides reusable synchronous message-passing building
// blocks on the CONGEST simulator: flooding aggregation (global min/max),
// leader election, and BFS tree construction. The dominating set algorithms
// assume knowledge of n and Δ (standard in the literature the paper builds
// on); these protocols show how such quantities are obtained from scratch
// and serve the runnable examples.
package protocols

import (
	"fmt"

	"congestds/internal/congest"
)

// FloodMin computes, at every node, the minimum over all nodes of the given
// per-node value, by flooding for rounds synchronous rounds (rounds must be
// an upper bound on the diameter; n-1 always works). Values must be
// non-negative.
func FloodMin(net *congest.Network, ledger *congest.Ledger, value func(v int) int64, rounds int) ([]int64, error) {
	g := net.Graph()
	out := make([]int64, g.N())
	metrics, err := net.Run(func(nd *congest.Node) {
		cur := value(nd.V())
		changed := true
		for r := 0; r < rounds; r++ {
			if changed {
				nd.Broadcast(congest.AppendVarint(nil, cur))
			}
			in := nd.Sync()
			changed = false
			for _, msg := range in {
				x, off := congest.Varint(msg.Payload, 0)
				if off < 0 {
					panic("protocols: bad flood message")
				}
				if x < cur {
					cur = x
					changed = true
				}
			}
		}
		out[nd.V()] = cur
	})
	if ledger != nil {
		ledger.RecordRun("protocols/flood-min", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("protocols: flood: %w", err)
	}
	return out, nil
}

// FloodMax is FloodMin for maxima.
func FloodMax(net *congest.Network, ledger *congest.Ledger, value func(v int) int64, rounds int) ([]int64, error) {
	vals, err := FloodMin(net, ledger, func(v int) int64 { return -value(v) }, rounds)
	if err != nil {
		return nil, err
	}
	for i := range vals {
		vals[i] = -vals[i]
	}
	return vals, nil
}

// ElectLeader returns the node with the minimum ID, agreed upon by every
// node via flooding (n-1 rounds).
func ElectLeader(net *congest.Network, ledger *congest.Ledger) (int, error) {
	g := net.Graph()
	if g.N() == 0 {
		return -1, fmt.Errorf("protocols: empty network")
	}
	mins, err := FloodMin(net, ledger, func(v int) int64 { return g.ID(v) }, g.N()-1)
	if err != nil {
		return -1, err
	}
	for v := 0; v < g.N(); v++ {
		if mins[v] != mins[0] {
			return -1, fmt.Errorf("protocols: leader disagreement (graph disconnected?)")
		}
	}
	for v := 0; v < g.N(); v++ {
		if g.ID(v) == mins[0] {
			return v, nil
		}
	}
	return -1, fmt.Errorf("protocols: leader id %d not found", mins[0])
}

// Tree is a rooted BFS tree: Parent[v] is v's parent node index (-1 for the
// root and unreached nodes), Depth[v] the BFS depth (-1 if unreached).
type Tree struct {
	Root   int
	Parent []int
	Depth  []int
}

// BFSTree builds a breadth-first tree from root by layered flooding: in
// round r, nodes at depth r announce themselves; unreached nodes adopt the
// smallest-port announcer as parent. Runs for rounds rounds (an upper bound
// on the eccentricity of the root).
func BFSTree(net *congest.Network, ledger *congest.Ledger, root, rounds int) (*Tree, error) {
	g := net.Graph()
	tree := &Tree{Root: root, Parent: make([]int, g.N()), Depth: make([]int, g.N())}
	metrics, err := net.Run(func(nd *congest.Node) {
		v := nd.V()
		depth := -1
		parentPort := -1
		if v == root {
			depth = 0
		}
		for r := 0; r < rounds; r++ {
			if depth == r {
				nd.Broadcast([]byte{1})
			}
			in := nd.Sync()
			if depth < 0 && len(in) > 0 {
				depth = r + 1
				parentPort = in[0].Port // inbox sorted by port: deterministic
			}
		}
		tree.Depth[v] = depth
		if parentPort >= 0 {
			tree.Parent[v] = nd.NeighborIndex(parentPort)
		} else {
			tree.Parent[v] = -1
		}
	})
	if ledger != nil {
		ledger.RecordRun("protocols/bfs-tree", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("protocols: bfs: %w", err)
	}
	return tree, nil
}

// ConvergecastSum aggregates the sum of per-node int64 values to the root of
// tree, then broadcasts it back down; every node returns the global sum.
// Runs in 2·height rounds where height is the tree height.
func ConvergecastSum(net *congest.Network, ledger *congest.Ledger, tree *Tree, value func(v int) int64) (int64, error) {
	g := net.Graph()
	height := 0
	for _, d := range tree.Depth {
		if d > height {
			height = d
		}
	}
	results := make([]int64, g.N())
	metrics, err := net.Run(func(nd *congest.Node) {
		v := nd.V()
		acc := value(v)
		parent := tree.Parent[v]
		parentPort := -1
		for p := 0; p < nd.Degree(); p++ {
			if nd.NeighborIndex(p) == parent {
				parentPort = p
			}
		}
		// Upward phase: leaves first. A node at depth d sends at round
		// height-d (by then all children have reported).
		myDepth := tree.Depth[v]
		for r := 0; r <= height; r++ {
			if myDepth >= 0 && height-myDepth == r && parentPort >= 0 {
				nd.Send(parentPort, congest.AppendVarint(nil, acc))
			}
			in := nd.Sync()
			for _, msg := range in {
				// Only accept reports from children.
				child := nd.NeighborIndex(msg.Port)
				if tree.Parent[child] == v {
					x, off := congest.Varint(msg.Payload, 0)
					if off < 0 {
						panic("protocols: bad convergecast message")
					}
					acc += x
				}
			}
		}
		// Downward phase: root broadcasts the total.
		total := acc
		have := v == tree.Root
		for r := 0; r <= height; r++ {
			if have && tree.Depth[v] == r {
				nd.Broadcast(congest.AppendVarint(nil, total))
			}
			in := nd.Sync()
			if !have {
				for _, msg := range in {
					if nd.NeighborIndex(msg.Port) == parent {
						x, off := congest.Varint(msg.Payload, 0)
						if off < 0 {
							panic("protocols: bad broadcast message")
						}
						total = x
						have = true
					}
				}
			}
		}
		results[v] = total
	})
	if ledger != nil {
		ledger.RecordRun("protocols/convergecast", metrics)
	}
	if err != nil {
		return 0, fmt.Errorf("protocols: convergecast: %w", err)
	}
	for v := 1; v < g.N(); v++ {
		if results[v] != results[0] && tree.Depth[v] >= 0 {
			return 0, fmt.Errorf("protocols: sum disagreement at node %d", v)
		}
	}
	return results[0], nil
}
