package protocols

import (
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

func TestFloodMinReachesGlobalMin(t *testing.T) {
	g := graph.Grid(4, 5)
	net := congest.NewNetwork(g, congest.Config{})
	vals, err := FloodMin(net, nil, func(v int) int64 { return g.ID(v) * 10 }, g.N()-1)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(1 << 62)
	for v := 0; v < g.N(); v++ {
		if x := g.ID(v) * 10; x < want {
			want = x
		}
	}
	for v, got := range vals {
		if got != want {
			t.Errorf("node %d: min=%d, want %d", v, got, want)
		}
	}
}

func TestFloodMax(t *testing.T) {
	g := graph.Cycle(9)
	net := congest.NewNetwork(g, congest.Config{})
	vals, err := FloodMax(net, nil, func(v int) int64 { return int64(g.Degree(v)) }, g.N())
	if err != nil {
		t.Fatal(err)
	}
	for _, got := range vals {
		if got != 2 {
			t.Errorf("max degree=%d, want 2", got)
		}
	}
}

func TestElectLeader(t *testing.T) {
	g := graph.GNPConnected(30, 0.15, 4)
	var ledger congest.Ledger
	net := congest.NewNetwork(g, congest.Config{})
	leader, err := ElectLeader(net, &ledger)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.ID(v) < g.ID(leader) {
			t.Fatalf("node %d has smaller ID than leader", v)
		}
	}
	if ledger.Metrics().Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestBFSTreeMatchesCentralBFS(t *testing.T) {
	g := graph.GNPConnected(40, 0.1, 8)
	net := congest.NewNetwork(g, congest.Config{})
	root := 0
	tree, err := BFSTree(net, nil, root, g.N())
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _ := g.BFS(root)
	for v := 0; v < g.N(); v++ {
		if tree.Depth[v] != wantDist[v] {
			t.Errorf("node %d: depth=%d, want %d", v, tree.Depth[v], wantDist[v])
		}
		if v != root && tree.Depth[v] > 0 {
			p := tree.Parent[v]
			if p < 0 || wantDist[p] != wantDist[v]-1 || !g.HasEdge(v, p) {
				t.Errorf("node %d: invalid parent %d", v, p)
			}
		}
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.Grid(5, 5)
	net := congest.NewNetwork(g, congest.Config{})
	tree, err := BFSTree(net, nil, 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	net2 := congest.NewNetwork(g, congest.Config{})
	total, err := ConvergecastSum(net2, nil, tree, func(v int) int64 { return int64(v) })
	if err != nil {
		t.Fatal(err)
	}
	want := int64(g.N() * (g.N() - 1) / 2)
	if total != want {
		t.Errorf("sum=%d, want %d", total, want)
	}
}

func TestConvergecastDegreeSumIsTwiceEdges(t *testing.T) {
	g := graph.GNPConnected(25, 0.2, 3)
	net := congest.NewNetwork(g, congest.Config{})
	tree, err := BFSTree(net, nil, 0, g.N())
	if err != nil {
		t.Fatal(err)
	}
	net2 := congest.NewNetwork(g, congest.Config{})
	total, err := ConvergecastSum(net2, nil, tree, func(v int) int64 { return int64(g.Degree(v)) })
	if err != nil {
		t.Fatal(err)
	}
	if total != int64(2*g.M()) {
		t.Errorf("degree sum=%d, want %d", total, 2*g.M())
	}
}

func TestElectLeaderEmptyNetwork(t *testing.T) {
	net := congest.NewNetwork(graph.Path(0), congest.Config{})
	if _, err := ElectLeader(net, nil); err == nil {
		t.Error("empty network accepted")
	}
}
