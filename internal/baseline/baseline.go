// Package baseline provides the comparison algorithms for the experiment
// harness: the classical sequential greedy (the ln(Δ+1)-approximation of
// [Joh74] the paper's guarantee is measured against), an exact
// branch-and-bound solver for small instances, and the randomized rounding
// baseline that the paper's algorithms derandomize.
package baseline

import (
	"math"
	"math/rand/v2"
	"sort"

	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/rounding"
)

// Greedy computes the classical greedy dominating set: repeatedly add the
// node covering the most uncovered nodes (ties by smaller ID). Guarantees a
// ln(Δ+1)+1 approximation [Joh74].
func Greedy(g *graph.Graph) []int {
	n := g.N()
	covered := make([]bool, n)
	inSet := make([]bool, n)
	gain := make([]int, n)
	for v := 0; v < n; v++ {
		gain[v] = g.Degree(v) + 1
	}
	remaining := n
	var set []int
	for remaining > 0 {
		best := -1
		for v := 0; v < n; v++ {
			if inSet[v] || gain[v] == 0 {
				continue
			}
			if best < 0 || gain[v] > gain[best] ||
				(gain[v] == gain[best] && g.ID(v) < g.ID(best)) {
				best = v
			}
		}
		if best < 0 {
			break // should not happen: every uncovered node has gain ≥ 1
		}
		inSet[best] = true
		set = append(set, best)
		cover := func(u int) {
			if covered[u] {
				return
			}
			covered[u] = true
			remaining--
			// u no longer contributes to the gain of its dominators.
			gain[u]--
			for _, w := range g.Neighbors(u) {
				gain[w]--
			}
		}
		cover(best)
		for _, u := range g.Neighbors(best) {
			cover(int(u))
		}
	}
	sort.Ints(set)
	return set
}

// Exact computes a minimum dominating set by branch and bound with greedy
// upper bound and fractional-packing pruning. Intended for n ≤ ~60;
// complexity is exponential in the worst case.
func Exact(g *graph.Graph) []int {
	n := g.N()
	if n == 0 {
		return nil
	}
	best := Greedy(g)
	covered := make([]int, n) // count of dominators in current partial set
	var cur []int

	// Order candidate nodes by decreasing inclusive degree for strong
	// branching.
	var rec func(firstUncovered int)
	rec = func(firstUncovered int) {
		if len(cur) >= len(best) {
			return
		}
		// Find the lowest uncovered node.
		u := -1
		for v := firstUncovered; v < n; v++ {
			if covered[v] == 0 {
				u = v
				break
			}
		}
		if u == -1 {
			best = append(best[:0], cur...)
			return
		}
		// Lower-bound prune: remaining uncovered nodes / Δ̃.
		uncov := 0
		for v := u; v < n; v++ {
			if covered[v] == 0 {
				uncov++
			}
		}
		lb := int(math.Ceil(float64(uncov) / float64(g.MaxDegree()+1)))
		if len(cur)+lb >= len(best) {
			return
		}
		// Branch: some dominator of u must be in the set.
		cands := g.InclusiveNeighbors(nil, u)
		// Try higher-coverage candidates first.
		sort.Slice(cands, func(a, b int) bool {
			return g.Degree(int(cands[a])) > g.Degree(int(cands[b]))
		})
		for _, cn := range cands {
			c := int(cn)
			cur = append(cur, c)
			covered[c]++
			for _, w := range g.Neighbors(c) {
				covered[w]++
			}
			rec(u)
			covered[c]--
			for _, w := range g.Neighbors(c) {
				covered[w]--
			}
			cur = cur[:len(cur)-1]
		}
	}
	rec(0)
	sort.Ints(best)
	return best
}

// RandomizedOneShot is the randomized baseline the paper derandomizes: given
// a fractional dominating set, run the one-shot abstract rounding process
// with truly random coins and return the resulting dominating set. Each call
// consumes randomness from r.
func RandomizedOneShot(g *graph.Graph, fds *fractional.CFDS, r *rand.Rand) []int {
	ctx := fds.Ctx
	ln := ctx.FromFloat(math.Log(float64(g.MaxDegree() + 2)))
	inst := rounding.OneShotOnGraph(g, fds, ln)
	out := inst.Execute(func(j int) bool {
		// Uniform threshold sampling: true with probability P[j] exactly.
		return fixpoint.Value(r.Uint64N(uint64(ctx.One()))) < inst.P[j]
	})
	var set []int
	for v, val := range out.Values {
		if val == ctx.One() {
			set = append(set, v)
		}
	}
	return set
}
