package baseline

import (
	"math"
	"math/rand/v2"
	"testing"

	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

func TestGreedyDominates(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"star", graph.Star(12)},
		{"path", graph.Path(17)},
		{"cycle", graph.Cycle(11)},
		{"grid", graph.Grid(5, 6)},
		{"gnp", graph.GNPConnected(60, 0.08, 2)},
		{"single", graph.Path(1)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			set := Greedy(tt.g)
			if !verify.IsDominatingSet(tt.g, set) {
				t.Fatal("greedy output not dominating")
			}
		})
	}
}

func TestGreedyOptimalOnEasyGraphs(t *testing.T) {
	if got := len(Greedy(graph.Star(10))); got != 1 {
		t.Errorf("greedy on star: %d, want 1", got)
	}
	if got := len(Greedy(graph.Complete(7))); got != 1 {
		t.Errorf("greedy on complete: %d, want 1", got)
	}
}

func TestExactKnownOptima(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"star9", graph.Star(9), 1},
		{"path2", graph.Path(2), 1},
		{"path7", graph.Path(7), 3},
		{"cycle6", graph.Cycle(6), 2},
		{"cycle9", graph.Cycle(9), 3},
		{"grid3x3", graph.Grid(3, 3), 3},
		{"complete5", graph.Complete(5), 1},
		{"caterpillar", graph.Caterpillar(4, 2), 4},
		{"hypercube3", graph.Hypercube(3), 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			set := Exact(tt.g)
			if !verify.IsDominatingSet(tt.g, set) {
				t.Fatal("exact output not dominating")
			}
			if len(set) != tt.want {
				t.Errorf("|OPT|=%d, want %d", len(set), tt.want)
			}
		})
	}
}

func TestExactNeverWorseThanGreedy(t *testing.T) {
	for seed := uint64(0); seed < 4; seed++ {
		g := graph.GNPConnected(24, 0.15, seed)
		e, gr := Exact(g), Greedy(g)
		if len(e) > len(gr) {
			t.Errorf("seed %d: exact %d > greedy %d", seed, len(e), len(gr))
		}
		if !verify.IsDominatingSet(g, e) {
			t.Error("exact not dominating")
		}
	}
}

// Greedy respects the classical ln(Δ+1)+1 bound against the exact optimum.
func TestGreedyWithinLnBound(t *testing.T) {
	for seed := uint64(0); seed < 3; seed++ {
		g := graph.GNPConnected(22, 0.2, seed)
		gr, ex := Greedy(g), Exact(g)
		bound := math.Log(float64(g.MaxDegree()+1)) + 1
		if float64(len(gr)) > bound*float64(len(ex))+1e-9 {
			t.Errorf("seed %d: greedy %d > (ln Δ̃+1)·OPT = %.2f·%d",
				seed, len(gr), bound, len(ex))
		}
	}
}

func TestRandomizedOneShotDominates(t *testing.T) {
	g := graph.GNPConnected(30, 0.2, 7)
	ctx := fractional.ScaleFor(g.N())
	fds := fractional.NewFDS(ctx, g.N())
	minInc := g.N()
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v) + 1; d < minInc {
			minInc = d
		}
	}
	for v := range fds.X {
		fds.X[v] = ctx.FromRatio(1, uint64(minInc), true)
	}
	r := rand.New(rand.NewPCG(1, 1))
	for trial := 0; trial < 20; trial++ {
		set := RandomizedOneShot(g, fds, r)
		if !verify.IsDominatingSet(g, set) {
			t.Fatal("randomized one-shot output not dominating")
		}
	}
}
