package family

import (
	"fmt"

	"congestds/internal/arbmds"
	"congestds/internal/graph"
	"congestds/internal/mcds"
	"congestds/internal/verify"
)

// Registrations of the algorithm families beyond the source paper. The
// registry deliberately lives on the consumer side (adapters around the
// families' typed APIs) so the algorithm packages stay free of registry
// concerns and their Solve signatures can stay precise.

// arbCert adapts verify.ArbCertificate to the Certificate interface.
type arbCert struct{ verify.ArbCertificate }

func (c arbCert) Passed() bool { return c.OK }

// cdsCert adapts verify.CDSCertificate.
type cdsCert struct{ verify.CDSCertificate }

func (c cdsCert) Passed() bool { return c.OK }

func init() {
	Register(Family{
		Name:       "arbmds",
		Summary:    "bounded-arboricity peeling MDS (Dory–Ghaffari–Ilchi, arXiv:2206.05174): O(α)·OPT in 4·⌈log₁₊ε Δ̃⌉ rounds, independent of n",
		DefaultEps: 0.5,
		Solve: func(g *graph.Graph, p Params) (*Result, error) {
			eps := p.Eps
			if eps <= 0 {
				eps = 0.5
			}
			res, err := arbmds.Solve(g, arbmds.Params{
				Eps: eps, Sim: p.Sim, MaxRounds: p.MaxRounds,
				Deadline: p.Deadline, Ctx: p.Ctx,
				CkptPath: p.CkptPath, CkptEvery: p.CkptEvery,
				Observer: p.Observer,
			})
			if err != nil {
				return nil, err
			}
			cert := verify.CertifyArb(g, res.Set, eps)
			return &Result{
				Set:    res.Set,
				Rounds: res.Metrics.Rounds,
				Cert:   arbCert{cert},
				Notes: []string{
					fmt.Sprintf("phases: %d (thresholds %v), rounds independent of n",
						len(res.Thresholds), res.Thresholds),
				},
			}, nil
		},
	})

	Register(Family{
		Name:       "mcds",
		Summary:    "connected dominating set (Ghaffari MCDS family, arXiv:1404.7559, unit weights): dominate via threshold greedy, connect via two-hop paths along a BFS orientation",
		NeedsDiam:  true,
		DefaultEps: 0.5,
		Solve: func(g *graph.Graph, p Params) (*Result, error) {
			eps := p.Eps
			if eps <= 0 {
				eps = 0.5
			}
			if p.CkptPath != "" {
				return nil, fmt.Errorf("family: mcds does not support checkpointing (CkptPath set)")
			}
			res, err := mcds.Solve(g, mcds.Params{
				Eps: eps, Sim: p.Sim, MaxRounds: p.MaxRounds, DiamBound: p.DiamBound,
				Deadline: p.Deadline, Ctx: p.Ctx, Observer: p.Observer,
			})
			if err != nil {
				return nil, err
			}
			// Solve verified connectivity + domination before returning;
			// only the LP ratio is left to compute.
			cert := verify.CertifyCDSVerified(g, res.CDS, verify.MCDSClaimBound(g.MaxDegree(), eps))
			return &Result{
				Set:    res.CDS,
				Rounds: res.Metrics.Rounds,
				Cert:   cdsCert{cert},
				Notes: []string{
					fmt.Sprintf("underlying dominating set: %d nodes (|CDS| ≤ 3|DS|+1 = %d)",
						len(res.DS), 3*len(res.DS)+1),
					fmt.Sprintf("schedule: %d peel phases + D̂=%d orientation + 2 connect rounds",
						len(res.Thresholds), res.DiamBound),
				},
			}, nil
		},
	})
}
