package family

import (
	"slices"
	"strings"
	"testing"
	"time"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) < 2 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if _, err := Get(want); err != nil {
			t.Errorf("Get(%q): %v", want, err)
		}
	}
}

func TestGetUnknownListsFamilies(t *testing.T) {
	_, err := Get("nope")
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestFamiliesSolveAndCertify(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if f.Summary == "" {
				t.Error("empty summary")
			}
			g := graph.GNPConnected(40, 0.12, 5)
			res, err := f.Solve(g, Params{Sim: congest.EngineStepped})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cert == nil || !res.Cert.Passed() {
				t.Fatalf("certificate failed: %v", res.Cert)
			}
			if res.Cert.String() == "" {
				t.Error("empty certificate rendering")
			}
			if v := verify.FirstUndominated(g, res.Set); v != -1 {
				t.Errorf("node %d undominated", v)
			}
			if res.Rounds <= 0 {
				t.Errorf("rounds = %d", res.Rounds)
			}
		})
	}
}

// TestParamsKeyCanonicalEquality is the regression test for the canonical
// equality gap Params historically had: a zero-valued parameter set and
// the default-filled set the family actually runs must collide exactly —
// but only after Family.Canon fills the family defaults, and only for
// parameter sets the family treats identically.
func TestParamsKeyCanonicalEquality(t *testing.T) {
	for _, name := range Names() {
		f, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			if f.DefaultEps <= 0 {
				t.Fatalf("family %s has no DefaultEps; Canon cannot canonicalize Eps", name)
			}
			zero := f.Canon(Params{})
			filled := f.Canon(Params{Eps: f.DefaultEps})
			if zero.Key() != filled.Key() {
				t.Errorf("zero-valued and default-filled params do not collide: %q vs %q",
					zero.Key(), filled.Key())
			}
			// A genuinely different Eps must not collide.
			other := f.Canon(Params{Eps: f.DefaultEps / 2})
			if other.Key() == zero.Key() {
				t.Errorf("eps=%g collides with the default key %q", f.DefaultEps/2, zero.Key())
			}
			// Execution-context fields never reach the key.
			ctxed := f.Canon(Params{Deadline: time.Second, CkptPath: "x.ckpt", CkptEvery: 7})
			if ctxed.Key() != zero.Key() {
				t.Errorf("execution-context fields leaked into the key: %q vs %q",
					ctxed.Key(), zero.Key())
			}
			// DiamBound only keys families that read it.
			diamed := f.Canon(Params{DiamBound: 42})
			if f.NeedsDiam && diamed.Key() == zero.Key() {
				t.Errorf("NeedsDiam family ignores DiamBound in the key")
			}
			if !f.NeedsDiam && diamed.Key() != zero.Key() {
				t.Errorf("DiamBound keys a family that never reads it: %q vs %q",
					diamed.Key(), zero.Key())
			}
		})
	}
}

// TestParamsKeyBustsOnSemanticChange pins that every semantic field
// changes the key: the serving layer's "cache busting on any param change"
// contract reduces to this.
func TestParamsKeyBustsOnSemanticChange(t *testing.T) {
	base := Params{Eps: 0.5}
	for name, p := range map[string]Params{
		"eps":       {Eps: 0.25},
		"sim":       {Eps: 0.5, Sim: congest.EngineStepped},
		"maxrounds": {Eps: 0.5, MaxRounds: 64},
		"diam":      {Eps: 0.5, DiamBound: 9},
	} {
		if p.Key() == base.Key() {
			t.Errorf("%s change did not bust the key: %q", name, p.Key())
		}
	}
}

// TestCanonPreservesSolve pins Canon's contract: canonicalization never
// changes what Solve computes.
func TestCanonPreservesSolve(t *testing.T) {
	g := graph.GNPConnected(30, 0.15, 11)
	for _, name := range Names() {
		f, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(name, func(t *testing.T) {
			p := Params{Sim: congest.EngineStepped, DiamBound: 2*g.Eccentricity(0) + 2}
			raw, err := f.Solve(g, p)
			if err != nil {
				t.Fatal(err)
			}
			canon, err := f.Solve(g, f.Canon(p))
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(raw.Set, canon.Set) || raw.Rounds != canon.Rounds {
				t.Errorf("Canon changed the solve: set %v/%v rounds %d/%d",
					raw.Set, canon.Set, raw.Rounds, canon.Rounds)
			}
		})
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Family{Name: "arbmds", Solve: func(*graph.Graph, Params) (*Result, error) { return nil, nil }})
}
