package family

import (
	"strings"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

func TestRegistryNames(t *testing.T) {
	names := Names()
	if len(names) < 2 {
		t.Fatalf("registry too small: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if _, err := Get(want); err != nil {
			t.Errorf("Get(%q): %v", want, err)
		}
	}
}

func TestGetUnknownListsFamilies(t *testing.T) {
	_, err := Get("nope")
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	for _, want := range []string{"arbmds", "mcds"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestFamiliesSolveAndCertify(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			f, err := Get(name)
			if err != nil {
				t.Fatal(err)
			}
			if f.Summary == "" {
				t.Error("empty summary")
			}
			g := graph.GNPConnected(40, 0.12, 5)
			res, err := f.Solve(g, Params{Sim: congest.EngineStepped})
			if err != nil {
				t.Fatal(err)
			}
			if res.Cert == nil || !res.Cert.Passed() {
				t.Fatalf("certificate failed: %v", res.Cert)
			}
			if res.Cert.String() == "" {
				t.Error("empty certificate rendering")
			}
			if v := verify.FirstUndominated(g, res.Set); v != -1 {
				t.Errorf("node %d undominated", v)
			}
			if res.Rounds <= 0 {
				t.Errorf("rounds = %d", res.Rounds)
			}
		})
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register(Family{Name: "arbmds", Solve: func(*graph.Graph, Params) (*Result, error) { return nil, nil }})
}
