// Package family is the algorithm-family registry: the shared
// solve → certify → report plumbing that every dominating-set family
// beyond the source paper plugs into. A Family bundles a Solve function
// with the certificate its outputs are checked against, in the uniform
// shape cmd/mdsrun dispatches on and the experiment tables consume — so
// adding a family (the recipe arbmds and mcds established, see
// docs/ARCHITECTURE.md) is: implement the algorithm package, register it
// here, add a conformance case and an experiment table. Registered
// families are automatically listed in mdsrun's -algo help and its
// unknown-algorithm error.
package family

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Params is the uniform parameter set a family's Solve receives; families
// ignore the fields they have no use for.
type Params struct {
	// Eps is the approximation/decay parameter (zero: the family default).
	Eps float64
	// Sim selects the congest execution engine.
	Sim congest.Engine
	// MaxRounds clamps the simulated run (zero: simulator default).
	MaxRounds int
	// DiamBound is the known diameter upper bound for families that run an
	// orientation phase (zero: the family's safe default, typically n).
	DiamBound int
	// Deadline, when positive, bounds each simulated run's wall clock;
	// overruns surface as congest.ErrDeadline (see congest.Config.Deadline).
	Deadline time.Duration
	// Ctx, when non-nil, cancels the family's simulated runs: one context
	// bounds the whole solve, even when it spans several runs.
	Ctx context.Context
	// CkptPath enables checkpoint/resume for families whose solver runs as
	// a single checkpointable stepped program (currently arbmds): the run
	// checkpoints to this path every CkptEvery rounds and resumes from it
	// when the file already holds a matching checkpoint. Families that
	// cannot checkpoint reject a non-empty CkptPath.
	CkptPath string
	// CkptEvery is the checkpoint cadence in rounds (only read when
	// CkptPath is set; zero means 1).
	CkptEvery int
	// Observer, when non-nil, receives per-round telemetry from the
	// family's simulated runs (see congest.Observer); attaching one never
	// changes the outcome.
	Observer congest.Observer
}

// Key returns the canonical equality key of the parameters that determine
// a family's certified output: Eps, Sim, MaxRounds and DiamBound. The
// execution-context fields — Deadline, Ctx, Observer, CkptPath, CkptEvery
// — are deliberately excluded: they decide whether and how a run executes,
// never what a successful run produces (checkpoint resume and observer
// attachment are byte-identity-preserving by tested contract). Two Params
// with equal Keys applied to the same graph and family yield identical
// Results, which is what makes Key a cache key for certified solutions.
//
// Key does not know family defaults: Eps=0 and Eps=0.5 produce different
// Keys even though arbmds treats them identically. Canonicalize through
// Family.Canon first when that collision is wanted (a solution cache
// always wants it).
func (p Params) Key() string {
	return fmt.Sprintf("eps=%s sim=%s maxrounds=%d diam=%d",
		strconv.FormatFloat(p.Eps, 'g', -1, 64), p.Sim, p.MaxRounds, p.DiamBound)
}

// Certificate is what a family's verification layer returns: a printable
// verdict. All concrete certificates (verify.ArbCertificate,
// verify.CDSCertificate, ...) satisfy it via small adapters in
// register.go.
type Certificate interface {
	fmt.Stringer
	// Passed reports whether the output met the family's claim.
	Passed() bool
}

// Result is a family run in the uniform shape.
type Result struct {
	// Set is the family's solution (a dominating set, or a connected
	// dominating set for CDS families), ascending.
	Set []int
	// Rounds is the measured synchronous round count.
	Rounds int
	// Cert is the family's certificate over Set (never nil).
	Cert Certificate
	// Notes are extra human-readable lines for command-line output.
	Notes []string
}

// Family is one registered algorithm family.
type Family struct {
	// Name is the -algo name.
	Name string
	// Summary is a one-line description for listings.
	Summary string
	// NeedsDiam marks families that consume Params.DiamBound, so callers
	// only pay for a host-side diameter estimate (a BFS) when the family
	// will use it.
	NeedsDiam bool
	// DefaultEps is the value the family's Solve substitutes for a
	// non-positive Params.Eps. Canon uses it so that a zero-valued and a
	// default-filled parameter set produce the same Key.
	DefaultEps float64
	// Solve runs the family on g and certifies the output.
	Solve func(g *graph.Graph, p Params) (*Result, error)
}

// Canon returns p with the fields the family would normalize anyway folded
// to their canonical spelling, so that parameter sets the family treats
// identically collide under Params.Key: a non-positive Eps becomes
// DefaultEps (exactly the substitution the registered Solve adapters
// perform), a DiamBound on a family that never reads one is dropped, and
// negative round clamps (no clamp) become zero. Canon changes no
// execution-context field and never changes what Solve computes —
// Solve(g, p) and Solve(g, f.Canon(p)) produce identical Results, which
// TestCanonPreservesSolve pins per registered family.
func (f Family) Canon(p Params) Params {
	if p.Eps <= 0 {
		p.Eps = f.DefaultEps
	}
	if !f.NeedsDiam {
		p.DiamBound = 0
	}
	if p.MaxRounds < 0 {
		p.MaxRounds = 0
	}
	if p.DiamBound < 0 {
		p.DiamBound = 0
	}
	return p
}

var (
	mu       sync.Mutex
	registry = map[string]Family{}
)

// Register adds a family. Duplicate names panic: they are a wiring bug.
func Register(f Family) {
	mu.Lock()
	defer mu.Unlock()
	if f.Name == "" || f.Solve == nil {
		panic("family: Register with empty name or nil Solve")
	}
	if _, dup := registry[f.Name]; dup {
		panic("family: duplicate registration of " + f.Name)
	}
	registry[f.Name] = f
}

// Names returns the sorted registered family names.
func Names() []string {
	mu.Lock()
	defer mu.Unlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns the named family. The error for an unknown name lists the
// registered names, mirroring graph.Named.
func Get(name string) (Family, error) {
	mu.Lock()
	f, ok := registry[name]
	mu.Unlock()
	if !ok {
		return Family{}, fmt.Errorf("family: unknown algorithm family %q (families: %s)",
			name, strings.Join(Names(), ", "))
	}
	return f, nil
}
