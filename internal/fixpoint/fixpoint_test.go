package fixpoint

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("scale 3 accepted")
	}
	if _, err := New(57); err == nil {
		t.Error("scale 57 accepted")
	}
	if _, err := New(40); err != nil {
		t.Errorf("scale 40 rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNew(2) did not panic")
		}
	}()
	MustNew(2)
}

func TestBasicConstants(t *testing.T) {
	c := Default()
	if c.Float(c.One()) != 1 || c.Float(c.Half()) != 0.5 {
		t.Error("One/Half wrong")
	}
	if c.Eps() != 1 {
		t.Error("Eps wrong")
	}
	if c.Scale() != DefaultScale {
		t.Error("Scale wrong")
	}
}

func TestFromFloatRoundsUp(t *testing.T) {
	c := MustNew(8) // coarse scale so rounding is visible
	v := c.FromFloat(1.0 / 3.0)
	if got := c.Float(v); got < 1.0/3.0 {
		t.Errorf("FromFloat rounded down: %v < 1/3", got)
	}
	if got := c.Float(v); got > 1.0/3.0+1.0/256+1e-12 {
		t.Errorf("FromFloat overshoots: %v", got)
	}
	if c.FromFloat(-1) != 0 {
		t.Error("negative input should clamp to 0")
	}
	if c.FromFloat(0.5) != 128 {
		t.Errorf("FromFloat(0.5)=%d, want 128", c.FromFloat(0.5))
	}
}

func TestFromRatio(t *testing.T) {
	c := MustNew(8)
	up := c.FromRatio(1, 3, true)
	down := c.FromRatio(1, 3, false)
	if up != down+1 {
		t.Errorf("ratio rounding: up=%d down=%d", up, down)
	}
	if c.FromRatio(1, 2, false) != c.Half() {
		t.Error("1/2 not exact")
	}
	// Large numerators exercise the 128-bit path.
	c2 := MustNew(40)
	v := c2.FromRatio(1<<40, 1<<20, false)
	if c2.Float(v) != float64(1<<20) {
		t.Errorf("large ratio wrong: %v", c2.Float(v))
	}
}

func TestMulRoundingDirection(t *testing.T) {
	c := MustNew(8)
	third := c.FromRatio(1, 3, false)
	upv := c.MulUp(third, third)
	downv := c.MulDown(third, third)
	if upv < downv {
		t.Fatal("MulUp < MulDown")
	}
	exact := c.Float(third) * c.Float(third)
	if c.Float(upv) < exact || c.Float(downv) > exact {
		t.Errorf("rounding direction violated: down=%v exact=%v up=%v",
			c.Float(downv), exact, c.Float(upv))
	}
}

func TestDiv(t *testing.T) {
	c := MustNew(16)
	x := c.FromRatio(3, 4, false)
	y := c.FromRatio(1, 2, false)
	if got := c.DivDown(x, y); c.Float(got) != 1.5 {
		t.Errorf("3/4 ÷ 1/2 = %v, want 1.5", c.Float(got))
	}
	if c.DivUp(c.One(), c.FromRatio(1, 3, false)) < c.DivDown(c.One(), c.FromRatio(1, 3, false)) {
		t.Error("DivUp < DivDown")
	}
}

func TestAddSubMinMax(t *testing.T) {
	c := Default()
	a, b := c.FromFloat(0.25), c.FromFloat(0.5)
	if c.Float(c.Add(a, b)) != 0.75 {
		t.Error("Add wrong")
	}
	if c.SubFloor(a, b) != 0 {
		t.Error("SubFloor should clamp at 0")
	}
	if c.Float(c.SubFloor(b, a)) != 0.25 {
		t.Error("SubFloor wrong")
	}
	if Min(a, b) != a || Max(a, b) != b {
		t.Error("Min/Max wrong")
	}
	if c.Clamp1(c.Add(c.One(), c.One())) != c.One() {
		t.Error("Clamp1 wrong")
	}
	if c.Float(c.Complement(a)) != 0.75 {
		t.Error("Complement wrong")
	}
	if c.Complement(c.Add(c.One(), a)) != 0 {
		t.Error("Complement above 1 should be 0")
	}
}

func TestStringNonEmpty(t *testing.T) {
	c := Default()
	if c.String(c.Half()) == "" {
		t.Error("empty String")
	}
}

func TestIsqrtExact(t *testing.T) {
	cases := []uint64{0, 1, 2, 3, 4, 15, 16, 17, 1 << 20, 1<<40 - 1, 1 << 40, math.MaxUint32}
	for _, x := range cases {
		r := isqrt(x)
		if r*r > x {
			t.Errorf("isqrt(%d)=%d too big", x, r)
		}
		if (r+1)*(r+1) <= x {
			t.Errorf("isqrt(%d)=%d too small", x, r)
		}
	}
}

func TestIsqrtProperty(t *testing.T) {
	f := func(x uint64) bool {
		x >>= 1 // avoid (r+1)^2 overflow corner
		r := isqrt(x)
		return r*r <= x && (r+1)*(r+1) > x
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestExp2NegAgainstFloat(t *testing.T) {
	c := Default()
	for _, x := range []float64{0, 0.01, 0.25, 0.5, 1, 1.5, 2, 3.75, 10, 20} {
		xv := c.FromFloat(x)
		up := c.Exp2Neg(xv, true)
		down := c.Exp2Neg(xv, false)
		want := math.Exp2(-c.Float(xv))
		gotUp, gotDown := c.Float(up), c.Float(down)
		if gotUp < want-1e-9 {
			t.Errorf("Exp2Neg(%v,up)=%v below exact %v", x, gotUp, want)
		}
		if gotDown > want+1e-9 {
			t.Errorf("Exp2Neg(%v,down)=%v above exact %v", x, gotDown, want)
		}
		if math.Abs(gotUp-want) > 1e-6*(1+want) {
			t.Errorf("Exp2Neg(%v) error too large: got %v want %v", x, gotUp, want)
		}
	}
}

func TestExp2NegExtremes(t *testing.T) {
	c := Default()
	if c.Exp2Neg(0, true) != c.One() {
		t.Error("2^0 != 1")
	}
	huge := c.MulUp(c.FromFloat(100), c.One())
	if c.Exp2Neg(huge, true) != 1 {
		t.Error("up-rounded 2^-100 should be Eps")
	}
	if c.Exp2Neg(huge, false) != 0 {
		t.Error("down-rounded 2^-100 should be 0")
	}
}

// Exp2Neg must be monotone decreasing — the estimator optimizer relies on it.
func TestExp2NegMonotone(t *testing.T) {
	c := MustNew(20)
	prev := c.Exp2Neg(0, true)
	for i := 1; i <= 400; i++ {
		x := Value(uint64(i) << 13)
		cur := c.Exp2Neg(x, true)
		if cur > prev {
			t.Fatalf("Exp2Neg not monotone at step %d", i)
		}
		prev = cur
	}
}

func TestDivByZeroPanics(t *testing.T) {
	c := Default()
	defer func() {
		if recover() == nil {
			t.Error("no panic on div by zero")
		}
	}()
	c.DivUp(c.One(), 0)
}

func TestMulOverflowPanics(t *testing.T) {
	c := Default()
	defer func() {
		if recover() == nil {
			t.Error("no panic on mul overflow")
		}
	}()
	big := Value(uint64(1) << 62)
	c.MulUp(big, big)
}

// Property: MulDown(x,y) ≤ exact ≤ MulUp(x,y), and they differ by ≤ 1 ulp.
func TestMulTightness(t *testing.T) {
	c := MustNew(20)
	f := func(a, b uint32) bool {
		x := Value(a % (1 << 20))
		y := Value(b % (1 << 20))
		up, down := c.MulUp(x, y), c.MulDown(x, y)
		return up == down || up == down+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}
