package fixpoint

import (
	"math/big"
	"sync"
)

// Exp2Neg returns 2^(-x) with the requested rounding direction (up = safe
// for pessimistic estimators, i.e. the result is ≥ the exact value when up
// and ≤ when down, with error < (S+2)·2^-S).
//
// The deterministic Chernoff estimator of the factor-two derandomization
// (see internal/rounding) needs e^(-λY); we work in base 2, so the only
// transcendental needed is 2^(-x) for fixed-point x ≥ 0. It is computed by
// square-and-multiply over precomputed constants c_i = 2^(-2^-i), which are
// obtained by exact integer square roots: c_i = sqrt(c_{i-1}·2^S). No
// floating point is involved, so results are identical on every platform.
func (c Ctx) Exp2Neg(x Value, up bool) Value {
	intPart := uint64(x) >> c.s
	if intPart >= 64 {
		if up {
			return 1 // smallest positive value: a valid upper bound of 2^-huge
		}
		return 0
	}
	frac := uint64(x) & ((1 << c.s) - 1)
	res := c.One() >> intPart
	if up && c.One()&((1<<intPart)-1) != 0 {
		res++
	}
	consts := c.exp2Consts()
	for i := uint(1); i <= c.s; i++ {
		if frac&(1<<(c.s-i)) != 0 {
			res = c.mul(res, consts[i-1], up)
		}
	}
	if res == 0 && up {
		res = 1
	}
	return res
}

var (
	exp2Mu    sync.Mutex
	exp2Cache = map[uint][]Value{}
)

// exp2Consts returns [2^(-1/2), 2^(-1/4), ..., 2^(-2^-S)] at scale S,
// rounded to nearest (error ≤ 2^-S each, absorbed by the directional
// rounding of the multiplications in Exp2Neg, which dominates). The one-time
// precompute uses big.Int square roots because cur·2^S exceeds 64 bits.
func (c Ctx) exp2Consts() []Value {
	exp2Mu.Lock()
	defer exp2Mu.Unlock()
	if cs, ok := exp2Cache[c.s]; ok {
		return cs
	}
	cs := make([]Value, c.s)
	cur := new(big.Int).SetUint64(uint64(c.Half()))
	scale := new(big.Int).Lsh(big.NewInt(1), c.s)
	for i := range cs {
		cur.Mul(cur, scale)
		cur.Sqrt(cur)
		cs[i] = Value(cur.Uint64())
	}
	exp2Cache[c.s] = cs
	return cs
}

// isqrt returns ⌊√x⌋ for uint64 x, by Newton iteration on integers.
func isqrt(x uint64) uint64 {
	if x < 2 {
		return x
	}
	// Initial estimate from bit length, then monotone Newton descent.
	r := uint64(1) << ((bitsLen(x) + 1) / 2)
	for {
		nr := (r + x/r) / 2
		if nr >= r {
			break
		}
		r = nr
	}
	for r*r > x {
		r--
	}
	for (r+1)*(r+1) <= x && r+1 != 0 {
		r++
	}
	return r
}

func bitsLen(x uint64) uint {
	n := uint(0)
	for x > 0 {
		n++
		x >>= 1
	}
	return n
}
