// Package fixpoint implements the paper's "CONGEST transmittable" values
// (Section 2): probabilities and fractional values that are exact multiples
// of 2^-S for a scale S = O(log n). All arithmetic is exact integer
// arithmetic with explicit rounding direction, so algorithms built on it are
// bit-for-bit deterministic across platforms — a requirement for the
// derandomization engines, where every node must compute identical
// conditional expectations.
//
// The paper uses ι with 2^-ι ≤ n^-10; we expose S as a parameter (default
// 40 fractional bits) and keep all sums of up to 2^(63-S) terms exact in
// uint64 (see DESIGN.md, substitution 6).
package fixpoint

import (
	"fmt"
	"math/bits"
)

// Value is an unsigned fixed-point number: the real value is Value / 2^S for
// the scale S of the owning Ctx. Value carries no scale of its own; mixing
// scales is a programming error that Ctx methods cannot detect, so keep one
// Ctx per computation.
type Value uint64

// DefaultScale is the default number of fractional bits.
const DefaultScale = 40

// Ctx is an arithmetic context with a fixed scale.
type Ctx struct {
	s uint // fractional bits
}

// New returns a context with the given scale. Scales outside [4, 56] are
// rejected: below 4 the quantization error overwhelms the algorithms, above
// 56 sums of more than 128 terms could overflow.
func New(scale uint) (Ctx, error) {
	if scale < 4 || scale > 56 {
		return Ctx{}, fmt.Errorf("fixpoint: scale %d out of range [4,56]", scale)
	}
	return Ctx{s: scale}, nil
}

// MustNew is New for constant scales known to be valid.
func MustNew(scale uint) Ctx {
	c, err := New(scale)
	if err != nil {
		panic(err)
	}
	return c
}

// Default returns the context with DefaultScale.
func Default() Ctx { return Ctx{s: DefaultScale} }

// Scale returns the number of fractional bits.
func (c Ctx) Scale() uint { return c.s }

// One returns the representation of 1.
func (c Ctx) One() Value { return 1 << c.s }

// Half returns the representation of 1/2.
func (c Ctx) Half() Value { return 1 << (c.s - 1) }

// Eps returns the smallest positive value, 2^-S.
func (c Ctx) Eps() Value { return 1 }

// FromFloat converts f to a Value, rounding up (the safe direction for the
// pessimistic estimators and for the paper's "round to the next transmittable
// value" steps). Negative inputs map to 0.
func (c Ctx) FromFloat(f float64) Value {
	if f <= 0 {
		return 0
	}
	scaled := f * float64(uint64(1)<<c.s)
	v := Value(scaled)
	if float64(v) < scaled {
		v++
	}
	return v
}

// Float returns the float64 value of v (for reporting only; algorithms never
// branch on floats).
func (c Ctx) Float(v Value) float64 {
	return float64(v) / float64(uint64(1)<<c.s)
}

// FromRatio returns a/b rounded up if up is true, down otherwise. b must be
// positive.
func (c Ctx) FromRatio(a, b uint64, up bool) Value {
	if b == 0 {
		panic("fixpoint: division by zero")
	}
	hi, lo := mul64(a, uint64(1)<<c.s)
	q, r := div64(hi, lo, b)
	if up && r != 0 {
		q++
	}
	return Value(q)
}

// MulUp returns x·y rounded up to the next multiple of 2^-S.
func (c Ctx) MulUp(x, y Value) Value { return c.mul(x, y, true) }

// MulDown returns x·y rounded down.
func (c Ctx) MulDown(x, y Value) Value { return c.mul(x, y, false) }

func (c Ctx) mul(x, y Value, up bool) Value {
	hi, lo := mul64(uint64(x), uint64(y))
	// The result is (hi·2^64 + lo) >> s, which fits in 64 bits iff hi < 2^s.
	if hi>>c.s != 0 {
		panic("fixpoint: multiplication overflow")
	}
	res := hi<<(64-c.s) | lo>>c.s
	if up && lo&((1<<c.s)-1) != 0 {
		res++
	}
	return Value(res)
}

// DivUp returns x/y rounded up. y must be nonzero.
func (c Ctx) DivUp(x, y Value) Value { return c.div(x, y, true) }

// DivDown returns x/y rounded down. y must be nonzero.
func (c Ctx) DivDown(x, y Value) Value { return c.div(x, y, false) }

func (c Ctx) div(x, y Value, up bool) Value {
	if y == 0 {
		panic("fixpoint: division by zero")
	}
	hi := uint64(x) >> (64 - c.s)
	lo := uint64(x) << c.s
	if hi >= uint64(y) {
		panic("fixpoint: division overflow")
	}
	q, r := div64(hi, lo, uint64(y))
	if up && r != 0 {
		q++
	}
	return Value(q)
}

// Add returns x+y; it panics on uint64 overflow, which is unreachable when
// the context's headroom contract (sums of at most 2^(63-S) unit-bounded
// terms) is respected.
func (c Ctx) Add(x, y Value) Value {
	s := x + y
	if s < x {
		panic("fixpoint: addition overflow")
	}
	return s
}

// SubFloor returns max(x-y, 0).
func (c Ctx) SubFloor(x, y Value) Value {
	if y >= x {
		return 0
	}
	return x - y
}

// Min returns the smaller of x and y.
func Min(x, y Value) Value {
	if x < y {
		return x
	}
	return y
}

// Max returns the larger of x and y.
func Max(x, y Value) Value {
	if x > y {
		return x
	}
	return y
}

// Clamp1 returns min(x, 1).
func (c Ctx) Clamp1(x Value) Value { return Min(x, c.One()) }

// Complement returns 1-x for x ≤ 1.
func (c Ctx) Complement(x Value) Value {
	if x >= c.One() {
		return 0
	}
	return c.One() - x
}

// String formats v at the context's scale.
func (c Ctx) String(v Value) string {
	return fmt.Sprintf("%d/2^%d(≈%.6g)", uint64(v), c.s, c.Float(v))
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) { return bits.Mul64(a, b) }

// div64 divides the 128-bit value (hi,lo) by d, returning quotient and
// remainder. Requires hi < d (quotient fits in 64 bits).
func div64(hi, lo, d uint64) (q, r uint64) { return bits.Div64(hi, lo, d) }
