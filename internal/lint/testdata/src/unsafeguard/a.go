// Package sneaky is unsafeguard testdata: memory reinterpretation
// outside the audited internal/graph loader files is a finding.
package sneaky

import (
	"reflect"
	"syscall"
	"unsafe" // want "import of unsafe outside the audited zero-copy loader files"
)

func peek(p *int) uintptr {
	return uintptr(unsafe.Pointer(p))
}

func header(s []byte) int {
	var h reflect.SliceHeader // want "reflect.SliceHeader is unsound"
	h.Len = len(s)
	return h.Len
}

func mapFile(fd int, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED) // want "syscall.Mmap outside the audited internal/graph mmap files"
}

func peek2(p *int) uintptr {
	return uintptr(unsafe.Pointer(p)) // uses are not re-flagged; the import is the choke point
}
