package sneaky

import (
	"unsafe" //detlint:allow unsafeguard endianness probe fixture, see docs/ARCHITECTURE.md#static-guarantees
)

// hostLE is the suppressed form: the reviewed allow on the import line
// covers this file's unsafe use.
var hostLE = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()
