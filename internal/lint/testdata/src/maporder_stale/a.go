// Package graph is allow-hygiene testdata: stale, reasonless and
// unknown-analyzer suppressions are findings themselves.
package graph

func fine(m map[int]int) int {
	sum := 0
	//detlint:allow maporder nothing here needs suppressing // want "stale //detlint:allow maporder"
	for _, v := range m {
		sum += v
	}
	return sum
}

func reasonless(m map[int]int) {
	//detlint:allow maporder // want "needs a reason"
	for k := range m {
		observe(k)
	}
}

func unknownAnalyzer(m map[int]int) {
	//detlint:allow frobnicate not a real analyzer // want "unknown analyzer"
	for k := range m { // want "range over map m"
		observe(k)
	}
}

func observe(int) {}
