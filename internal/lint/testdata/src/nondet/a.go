// Package congest is nondet testdata: deterministic engine code must not
// read ambient entropy.
package congest

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() int64 {
	t := time.Now() // want "wall-clock read time.Now"
	return t.Unix()
}

func elapsed(since time.Time) time.Duration {
	return time.Since(since) // want "wall-clock read time.Since"
}

func globalRand() int {
	return rand.Intn(10) // want "global math/rand source math/rand.Intn"
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicit seeded source
	return r.Intn(10)
}

func pid() int {
	return os.Getpid() // want "process identity os.Getpid"
}

func raceSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}

func pollSelect(a chan int) int {
	select { // ok: one case plus default is a deterministic poll
	case x := <-a:
		return x
	default:
		return 0
	}
}

func deadlineByDesign() time.Time {
	//detlint:allow nondet Config.Deadline is wall-clock by contract, see docs/ARCHITECTURE.md#static-guarantees
	return time.Now()
}

func constructionOnly(d time.Duration) *time.Timer {
	return time.NewTimer(d) // ok: not a banned entropy read
}
