// Package host is maporder negative testdata: not a deterministic
// package, so map iteration order is its own business.
package host

func anyOrder(m map[int]string) []string {
	var out []string
	for _, v := range m { // ok: host-side package
		out = append(out, v)
	}
	return out
}
