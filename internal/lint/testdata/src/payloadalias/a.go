// Package progs is payloadalias testdata: Step/Deliver methods must not
// retain delivered payload bytes without a copy.
package progs

// Incoming mirrors congest.Incoming: a payload-carrying inbox element.
type Incoming struct {
	Port    int
	Payload []byte
}

var global []byte

type prog struct {
	saved []byte
	all   [][]byte
	hook  func() int
	last  Incoming
}

func (p *prog) Step(round int, inbox []Incoming) bool {
	p.saved = inbox[0].Payload // want "stored in field p.saved"
	for _, msg := range inbox {
		p.saved = msg.Payload           // want "stored in field p.saved"
		p.saved = msg.Payload[1:]       // want "stored in field p.saved"
		p.all = append(p.all, msg.Payload) // want "stored in field p.all"
		global = msg.Payload            // want "package variable global"
		p.last = msg                    // want "stored in field p.last"

		q := msg.Payload
		p.saved = q // want "stored in field p.saved"

		p.saved = append([]byte(nil), msg.Payload...) // ok: fresh copy
		var cp []byte
		cp = append(cp, msg.Payload...)
		p.saved = cp // ok: cp owns its bytes

		p.hook = func() int { return len(q) } // want "stored in field p.hook"
	}
	return false
}

func (p *prog) Deliver(payload []byte) bool {
	hold := make([][]byte, 0, 4)
	hold = append(hold, payload)
	p.all = hold // want "stored in field p.all"

	sum := 0
	for _, b := range payload { // ok: reading bytes is free
		sum += int(b)
	}
	return sum > 0
}

// NotAStep retains its argument, but the contract only covers Step and
// Deliver: other methods own their own lifetimes.
func (p *prog) NotAStep(payload []byte) {
	p.saved = payload // ok
}

func (p *prog) StepClean(round int, inbox []Incoming) bool {
	return len(inbox) == 0 // ok: not named Step/Deliver
}

type decoder struct {
	frames [][]byte
}

func (d *decoder) Step(n int, inbox []Incoming) bool {
	//detlint:allow payloadalias frames is flushed before Step returns, see docs/ARCHITECTURE.md#static-guarantees
	d.frames = append(d.frames, inbox[0].Payload)
	return false
}

// scalar pins the in[0].Port regression: selecting a non-byte-carrying
// field out of a tainted inbox element is not a retention.
type scalar struct {
	parentPort int
	bestRound  int
}

func (s *scalar) Step(round int, inbox []Incoming) bool {
	if len(inbox) > 0 {
		s.parentPort = inbox[0].Port // ok: an int cannot alias the arena
		for _, m := range inbox {
			s.bestRound = m.Port // ok: field of ranged element, still an int
		}
	}
	return false
}
