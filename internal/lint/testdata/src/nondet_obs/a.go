// Package obs is nondet testdata for the telemetry carve-out: obs is the
// one deterministic-adjacent package chartered to read the wall clock
// (docs/ARCHITECTURE.md#observability), so time.Now/time.Since pass with
// no allow annotation — while every other entropy ban still applies.
package obs

import (
	"math/rand"
	"os"
	"time"
)

func stamp(start time.Time) int64 {
	return int64(time.Since(start)) // ok: obs's charter is stamping telemetry
}

func recorderEpoch() time.Time {
	return time.Now() // ok: the carve-out covers all wall-clock reads here
}

func jitter() int {
	return rand.Intn(10) // want "global math/rand source math/rand.Intn"
}

func pid() int {
	return os.Getpid() // want "process identity os.Getpid"
}

func raceSelect(a, b chan int) int {
	select { // want "select with 2 communication cases"
	case x := <-a:
		return x
	case x := <-b:
		return x
	}
}
