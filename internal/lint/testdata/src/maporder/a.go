// Package graph is maporder testdata: the package name places it in the
// deterministic set, so range-over-map needs an order-insensitive body.
package graph

import (
	"sort"
)

func leakOrder(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "range over map m in deterministic package"
		out = append(out, v)
	}
	return out
}

func appendThenSort(m map[int]string) []string {
	var out []string
	for _, v := range m { // ok: the sink is sorted before use
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func appendNeverSorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "range over map m"
		out = append(out, v)
	}
	return append(out, "tail")
}

func commutativeFold(m map[int]int) int {
	sum := 0
	n := 0
	for _, v := range m { // ok: += and ++ commute
		sum += v
		n++
	}
	return sum + n
}

func keyIndexedWrites(m map[int]int, out []int, inv map[int]int) {
	for k, v := range m { // ok: writes are disjoint per key
		out[k] = v
		inv[k] = v
	}
}

func valueIndexedWrites(m map[int]int, inv map[int]int) {
	for k, v := range m { // want "range over map m"
		inv[v] = k // values may collide: last write wins by order
	}
}

func guardedFold(m map[int]int) int {
	best := 0
	for k, v := range m { // ok: guard plus commutative ops
		if v > 0 {
			best += v + k
		}
	}
	return best
}

func earlyBreak(m map[int]int) int {
	got := 0
	for _, v := range m { // want "range over map m"
		got += v
		break // which iteration ran depends on order
	}
	return got
}

func deleteAll(m map[int]int, dead map[int]bool) {
	for k := range m { // ok: delete commutes
		if dead[k] {
			delete(m, k)
		}
	}
}

func callsEscape(m map[int]int) {
	for k := range m { // want "range over map m"
		observe(k)
	}
}

func suppressed(m map[int]int) {
	//detlint:allow maporder callsEscape is order-insensitive by construction, see docs/ARCHITECTURE.md#static-guarantees
	for k := range m {
		observe(k)
	}
}

func suppressedTrailing(m map[int]int) {
	for k := range m { //detlint:allow maporder observe commutes, see docs/ARCHITECTURE.md#static-guarantees
		observe(k)
	}
}

func nestedSortInOuterList(m map[int]string) []string {
	var out []string
	if len(m) > 0 {
		for _, v := range m { // ok: sorted in the enclosing block's tail
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

func nestedInnerLoop(m map[int][]int) int {
	total := 0
	for _, vs := range m { // ok: inner loop only folds commutatively
		for _, v := range vs {
			total += v
		}
	}
	return total
}

func observe(int) {}
