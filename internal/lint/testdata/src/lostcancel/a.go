// Package ctxuse is lostcancel testdata: context cancel functions must
// not be discarded.
package ctxuse

import (
	"context"
	"time"
)

func discarded(d time.Duration) context.Context {
	ctx, _ := context.WithTimeout(context.Background(), d) // want "cancel function returned by context.WithTimeout is discarded"
	return ctx
}

func blankLaundered() context.Context {
	ctx, cancel := context.WithCancel(context.Background()) // want "cancel function cancel returned by context.WithCancel is never used"
	_ = cancel
	return ctx
}

func deferred(d time.Duration) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Time{}.Add(d)) // ok
	defer cancel()
	<-ctx.Done()
}

func passedAlong() (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background()) // ok: returned to the caller
	return ctx, cancel
}

func suppressed() context.Context {
	//detlint:allow lostcancel process-lifetime context, cancelled by exit, see docs/ARCHITECTURE.md#static-guarantees
	ctx, _ := context.WithCancel(context.Background())
	return ctx
}
