// Package congest is sentinel testdata: errors crossing the exported API
// must stay inside the sentinel taxonomy.
package congest

import (
	"errors"
	"fmt"
)

// Declared sentinels: package-level Err* vars are the taxonomy.
var (
	ErrBandwidth = errors.New("congest: message exceeds bandwidth budget")
	ErrMaxRounds = errors.New("congest: exceeded MaxRounds")
)

func Run(n int) error {
	if n < 0 {
		return errors.New("negative n") // want "errors.New escapes the congest API boundary unclassified"
	}
	if n == 0 {
		return fmt.Errorf("empty run (n=%d)", n) // want "fmt.Errorf without %w escapes the congest API boundary"
	}
	if n > 1<<20 {
		return fmt.Errorf("run too large: %w", ErrBandwidth) // ok: wraps a sentinel
	}
	return nil
}

func RunSentinel(n int) error {
	if n > 10 {
		return ErrMaxRounds // ok: the sentinel itself
	}
	return nil
}

func RunPropagated(n int) error {
	err := helper(n)
	if err != nil {
		return err // ok: propagation, classified at the source
	}
	return nil
}

func RunHelper(n int) error {
	return badRun("n=%d", n) // ok: local constructor owns classification
}

func ParseThing(s string) (int, error) {
	if s == "" {
		//detlint:allow sentinel host-side config parse is "program" class by design, see docs/ARCHITECTURE.md#static-guarantees
		return 0, fmt.Errorf("empty thing")
	}
	return len(s), nil
}

func unexported(n int) error {
	return errors.New("internal detail") // ok: not across the API boundary
}

func helper(n int) error { return nil }

func badRun(format string, args ...any) error {
	return fmt.Errorf("congest: "+format+": %w", append(args, ErrMaxRounds)...)
}
