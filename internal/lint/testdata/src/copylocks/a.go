// Package locks is copylocks testdata: values containing sync locks must
// not be copied.
package locks

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type deep struct {
	inner guarded
}

func byValue(g guarded) int { // params are flagged at the call site, not here
	return g.n
}

func byPointer(g *guarded) int {
	return g.n
}

func (g guarded) ValueMethod() int { // want "by-value receiver of lock-containing type"
	return g.n
}

func (g *guarded) PointerMethod() int { // ok
	return g.n
}

func use() {
	var a guarded
	b := a // want "assignment copies a lock value"
	_ = byValue(a) // want "call passes a lock by value"
	_ = byPointer(&a) // ok
	_ = byPointer(&b)

	c := guarded{} // ok: composite literal is a fresh value
	_ = byPointer(&c)

	var d deep
	e := d // want "assignment copies a lock value"
	_ = byPointer(&e.inner)

	s := make([]guarded, 3)
	for i := range s { // ok: index form copies nothing
		s[i].n++
	}
	for _, g := range s { // want "range clause copies lock-containing elements"
		_ = g.n
	}
}
