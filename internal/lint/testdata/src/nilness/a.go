// Package nils is nilness testdata: the sound subset flags dereferences
// inside the branch that proved the value nil.
package nils

type node struct {
	next *node
	val  int
}

func fieldThroughNil(p *node) int {
	if p == nil {
		return p.val // want "guaranteed nil dereference: p is nil on this path"
	}
	return 0
}

func elseBranch(p *node) int {
	if p != nil {
		return p.val // ok: proven non-nil
	} else {
		return p.val // want "guaranteed nil dereference: p is nil on this path"
	}
}

func starDeref(p *int) int {
	if p == nil {
		return *p // want "guaranteed nil dereference: p is nil on this path"
	}
	return *p
}

func nilMapStore(m map[int]int) {
	if m == nil {
		m[1] = 2 // want "guaranteed panic: store into nil map m"
	}
}

func nilMapRead(m map[int]int) int {
	if m == nil {
		return m[1] // ok: reading a nil map yields the zero value
	}
	return 0
}

func nilSliceIndex(s []int) int {
	if s == nil {
		return s[0] // want "guaranteed out-of-range index: s is nil"
	}
	return s[0]
}

func reassigned(p *node) int {
	if p == nil {
		p = &node{}
		return p.val // ok: reassignment disables the check
	}
	return p.val
}

func methodOnNil(p *node) int {
	if p == nil {
		return p.depth() // ok: methods may accept nil receivers
	}
	return p.depth()
}

func (p *node) depth() int {
	if p == nil {
		return 0
	}
	return 1 + p.next.depth()
}

func suppressed(p *node) int {
	if p == nil {
		//detlint:allow nilness documents a panic the caller relies on, see docs/ARCHITECTURE.md#static-guarantees
		return p.val
	}
	return 0
}
