//go:build linux || darwin

package graph

import "syscall"

func mapRO(fd int, n int) ([]byte, error) {
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_SHARED) // ok: tagged mmap file
}
