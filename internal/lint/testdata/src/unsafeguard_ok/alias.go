// Package graph is unsafeguard allowlist testdata: alias.go and tagged
// mmap_*.go files are the audited home of unsafe.
package graph

import "unsafe" // ok: alias.go in package graph is allow-listed

func aliasInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}
