package graph

import (
	"syscall"
	"unsafe" // want "requires an explicit //go:build constraint"
)

func mapRW(fd int, n int) ([]byte, error) {
	p := new(int)
	_ = uintptr(unsafe.Pointer(p))
	return syscall.Mmap(fd, 0, n, syscall.PROT_READ, syscall.MAP_PRIVATE) // want "must live in a mmap_\\*.go file under a //go:build constraint"
}
