package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"congestds/internal/lint/analysis"
)

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	CgoFiles   []string
	Export     string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load lists patterns (go syntax, e.g. "./...") in dir with the go tool,
// compiles export data for every dependency, and returns one type-checked
// Unit per matched non-test package. This is the standalone detlint
// driver; under `go vet -vettool` the go command supplies the same
// information through the vet config file instead (see cmd/detlint).
func Load(dir string, patterns ...string) ([]*Unit, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			q := p
			targets = append(targets, &q)
		}
	}

	var units []*Unit
	for _, p := range targets {
		u, err := typecheck(p, exports)
		if err != nil {
			return nil, err
		}
		units = append(units, u)
	}
	return units, nil
}

// typecheck parses and type-checks one listed package against the export
// data of its dependencies.
func typecheck(p *listPkg, exports map[string]string) (*Unit, error) {
	if len(p.CgoFiles) > 0 {
		return nil, fmt.Errorf("%s: cgo packages are not supported by the offline driver", p.ImportPath)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := analysis.NewTypesInfo()
	conf := types.Config{
		Importer: newExportImporter(fset, p.ImportMap, exports),
	}
	var typeErrs []error
	conf.Error = func(err error) { typeErrs = append(typeErrs, err) }
	pkg, _ := conf.Check(p.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %v", p.ImportPath, typeErrs[0])
	}
	return &Unit{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// exportImporter resolves imports from compiled gc export data files, the
// way cmd/compile itself would — the offline equivalent of
// x/tools/go/gcexportdata.
// One gc importer instance serves the whole unit: its internal package
// cache is what makes a transitively-imported package (go/ast reached
// through go/types' export data) identical to the same package imported
// directly — fresh instances per import would yield distinct
// *types.Package values and spurious type mismatches.
type exportImporter struct {
	importMap map[string]string
	gc        types.Importer
}

func newExportImporter(fset *token.FileSet, importMap, exports map[string]string) exportImporter {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return exportImporter{importMap: importMap, gc: importer.ForCompiler(fset, "gc", lookup)}
}

func (ei exportImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := ei.importMap[path]; ok {
		path = mapped
	}
	return ei.gc.Import(path)
}

// ModuleRoot walks up from dir to the enclosing go.mod, so `detlint ./...`
// run from a subdirectory still lints relative to the module.
func ModuleRoot(dir string) string {
	d, err := filepath.Abs(dir)
	if err != nil {
		return dir
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return dir
		}
		d = parent
	}
}
