package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"congestds/internal/lint/analysis"
)

// Sentinel enforces the congest error taxonomy at its source: mdsrun and
// mdsbench pin exit codes to congest.SentinelClass, and the conformance
// suite diffs the class across engines, so an error that escapes the
// congest API as a bare errors.New or a non-wrapping fmt.Errorf silently
// lands in the catch-all "program" class and can never be matched with
// errors.Is. Inside package congest, every error returned from an
// exported function or method must therefore be nil, a declared Err*
// sentinel, a propagated value, or an fmt.Errorf that wraps (%w) — the
// deliberate exceptions (host-side config parsing) carry reviewed
// //detlint:allow sentinel annotations.
var Sentinel = &analysis.Analyzer{
	Name: "sentinel",
	Doc: "errors returned across the congest API boundary must wrap a declared " +
		"Err* sentinel (or %w-chain to one) so SentinelClass stays total",
	Run: runSentinel,
}

func runSentinel(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() != "congest" {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			if !returnsError(pass, fd) {
				continue
			}
			checkReturns(pass, fd.Body)
		}
	}
	return nil, nil
}

func returnsError(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, r := range fd.Type.Results.List {
		if tv := pass.TypesInfo.Types[r.Type]; isErrorType(tv.Type) {
			return true
		}
	}
	return false
}

// checkReturns walks the return statements of body (not descending into
// function literals, which have their own result contract) and flags
// unclassifiable error constructions.
func checkReturns(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				checkErrorExpr(pass, res)
			}
		}
		return true
	})
}

func checkErrorExpr(pass *analysis.Pass, e ast.Expr) {
	tv := pass.TypesInfo.Types[e]
	if !isErrorType(tv.Type) {
		return
	}
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return // nil, a sentinel var, a propagated err — all classified upstream
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return // local helper (badCkpt, ...) owns its own classification
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch {
	case fn.Pkg().Path() == "errors" && fn.Name() == "New":
		pass.Reportf(e.Pos(),
			"errors.New escapes the congest API boundary unclassified: SentinelClass reports it as \"program\" and errors.Is can never match it; wrap a declared Err* sentinel with fmt.Errorf(\"...: %%w\", ErrX) or declare a new sentinel")
	case fn.Pkg().Path() == "fmt" && fn.Name() == "Errorf":
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING &&
			!strings.Contains(lit.Value, "%w") {
			pass.Reportf(e.Pos(),
				"fmt.Errorf without %%w escapes the congest API boundary unclassified (SentinelClass: \"program\"); wrap a declared Err* sentinel or annotate //detlint:allow sentinel <reason>")
		}
	}
}
