package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestPayloadAlias pins the arena aliasing rule: delivered payload
// slices (parameters, inbox Payload fields, sub-slices, holders and
// closures over them) must not reach fields, globals or escaping
// containers without a copy; append([]byte(nil), p...) launders the
// taint, and methods other than Step/Deliver are out of scope.
func TestPayloadAlias(t *testing.T) {
	linttest.Run(t, "testdata", lint.PayloadAlias, "payloadalias")
}
