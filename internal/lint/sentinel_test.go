package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestSentinel pins the error-taxonomy rule: exported congest functions
// may return nil, declared Err* sentinels, propagated errors, local
// constructors or %w-wrapping fmt.Errorf — bare errors.New and
// non-wrapping fmt.Errorf are findings unless carrying a reviewed allow.
func TestSentinel(t *testing.T) {
	linttest.Run(t, "testdata", lint.Sentinel, "sentinel")
}
