// Package linttest is the offline analysistest: it loads a package from
// testdata/src/<name>, type-checks it against the standard library (via
// the source importer, so no export data or network is needed), runs
// detlint's driver — analyzers plus //detlint:allow suppression and
// stale-allow detection — and compares the diagnostics against
// `// want "regexp"` annotations in the source, exactly the x/tools
// analysistest convention. Testdata packages must be self-contained
// (standard-library imports only).
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/analysis"
)

// The source importer re-type-checks stdlib packages from GOROOT source;
// share one instance (and its fileset) across all Run calls in the test
// binary so each stdlib package is checked once. The source importer is
// not safe for concurrent use — Run serializes on mu and tests must not
// wrap it in t.Parallel.
var (
	mu        sync.Mutex
	sharedFS  = token.NewFileSet()
	sharedImp = struct {
		types.Importer
	}{importer.ForCompiler(sharedFS, "source", nil)}
)

type unsafeAwareImporter struct{ next types.Importer }

func (u unsafeAwareImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return u.next.Import(path)
}

// Run loads each named package under testdata/src, runs the analyzer
// through the full detlint driver, and checks the findings against the
// package's // want annotations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	mu.Lock()
	defer mu.Unlock()
	for _, pkg := range pkgs {
		runOne(t, filepath.Join(testdata, "src", pkg), a)
	}
}

func runOne(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("linttest: no Go files in %s (%v)", dir, err)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFS, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
	}

	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: unsafeAwareImporter{sharedImp}}
	var typeErrs []error
	conf.Error = func(err error) { typeErrs = append(typeErrs, err) }
	pkg, _ := conf.Check(files[0].Name.Name, sharedFS, files, info)
	if len(typeErrs) > 0 {
		t.Fatalf("linttest: %s does not type-check: %v", dir, typeErrs)
	}

	unit := &lint.Unit{Fset: sharedFS, Files: files, Pkg: pkg, Info: info}
	diags, err := lint.Run(unit, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("linttest: driver: %v", err)
	}
	checkWants(t, files, diags)
}

// wantRE matches the expectation marker inside a comment's raw text: the
// token `want` followed by one or more Go string literals.
var wantRE = regexp.MustCompile("\\bwant\\s+((?:(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`))(?:\\s+(?:(?:\"(?:[^\"\\\\]|\\\\.)*\")|(?:`[^`]*`)))*)")

var strLitRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	src  string
	met  bool
}

func checkWants(t *testing.T, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := sharedFS.Position(c.Pos())
				for _, lit := range strLitRE.FindAllString(m[1], -1) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("%s:%d: bad want literal %s: %v", pos.Filename, pos.Line, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, src: pat})
				}
			}
		}
	}

	for _, d := range diags {
		pos := sharedFS.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.met && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic [%s]: %s",
				relName(pos.Filename), pos.Line, d.Category, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", relName(w.file), w.line, w.src)
		}
	}
}

func relName(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// Fprint is a debugging helper for writing the diagnostics of a run; it
// keeps the package's public surface honest about what a diagnostic is.
func Fprint(diags []analysis.Diagnostic, fset *token.FileSet) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s: [%s] %s\n", fset.Position(d.Pos), d.Category, d.Message)
	}
	return b.String()
}
