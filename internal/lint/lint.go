// Package lint is detlint: the determinism-and-safety analyzer suite that
// proves, on every build, the source-level invariants the conformance
// corpus can only sample — no map-iteration-order leaks or wall-clock
// entropy in the deterministic packages, no retained payload views across
// arena generations, unsafe confined to the audited mmap files, and a
// congest API that cannot return errors outside the sentinel taxonomy.
//
// The suite runs as `go vet -vettool=$(which detlint) ./...` or
// standalone as `detlint ./...` (see cmd/detlint). Analyzers are built on
// the offline go/analysis shim in internal/lint/analysis; each is a
// single-package check over the type-checked AST.
//
// A finding is suppressed by an explicit, reviewed annotation:
//
//	//detlint:allow <analyzer> <reason>
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory and must cite a doc anchor or a test name (cmd/docscheck
// enforces that), and a suppression that no longer suppresses anything is
// itself a finding — stale allows cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"congestds/internal/lint/analysis"
)

// deterministicPkgs names the packages whose code must be bit-reproducible
// across engines, runs and hosts: the three CONGEST engines and their
// protocol/program layers, the graph generators, and the fault injector.
// maporder and nondet fire only inside these; host-side tools (cmd/*,
// internal/testmem, internal/experiments, ...) are exempt by omission —
// the offline stand-in for the facts-based whitelist the x/tools port
// would use.
var deterministicPkgs = map[string]bool{
	"congest":    true,
	"graph":      true,
	"arbmds":     true,
	"mcds":       true,
	"mds":        true,
	"chaos":      true,
	"fractional": true,
	"protocols":  true,
	// obs is deterministic-adjacent: it rides the engines' observer
	// callbacks, so map-order and entropy leaks there would surface in
	// traces, but nondet grants it the wall-clock carve-out (see nondet.go:
	// stamping telemetry is the package's charter).
	"obs": true,
}

// Deterministic reports whether pkgName is one of the packages held to
// byte-reproducibility (see deterministicPkgs).
func Deterministic(pkgName string) bool { return deterministicPkgs[pkgName] }

// Suite returns the full detlint analyzer suite in reporting order: the
// five repo-specific invariant checkers followed by the stdlib-adjacent
// passes (offline re-implementations of the x/tools copylocks/lostcancel
// checks and a sound subset of nilness).
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		MapOrder,
		NonDet,
		PayloadAlias,
		UnsafeGuard,
		Sentinel,
		CopyLocks,
		LostCancel,
		Nilness,
	}
}

// suiteNames is the set of valid analyzer names for allow-comment
// validation.
func suiteNames() map[string]bool {
	m := map[string]bool{}
	for _, a := range Suite() {
		m[a.Name] = true
	}
	return m
}

// A Unit is one type-checked package ready for analysis: the parse and
// type artifacts plus the file subset the analyzers look at. Both drivers
// (cmd/detlint's go-list loader and vet-cfg mode, and the linttest
// harness) produce Units.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File // non-test files only; analyzers see exactly these
	Pkg   *types.Package
	Info  *types.Info
}

// Run applies the analyzers to the unit, enforces //detlint:allow
// suppression, and reports stale or malformed allow comments. The returned
// diagnostics are sorted by position then analyzer name. An error from an
// analyzer's Run is an infrastructure failure, not a finding.
func Run(u *Unit, analyzers []*analysis.Analyzer) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      u.Fset,
			Files:     u.Files,
			Pkg:       u.Pkg,
			TypesInfo: u.Info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			if d.Category == "" {
				d.Category = a.Name
			}
			diags = append(diags, d)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}

	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name] = true
	}
	allows := collectAllows(u.Fset, u.Files)
	valid := suiteNames()

	// Suppress findings covered by an allow on the same or preceding line.
	kept := diags[:0]
	for _, d := range diags {
		pos := u.Fset.Position(d.Pos)
		if al := matchAllow(allows, d.Category, pos); al != nil {
			al.used = true
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	// Malformed, unknown or stale allows are findings themselves.
	for _, al := range allows {
		switch {
		case !valid[al.analyzer]:
			diags = append(diags, analysis.Diagnostic{
				Pos:      al.pos,
				Category: "allow",
				Message: fmt.Sprintf("//detlint:allow names unknown analyzer %q (valid: %s)",
					al.analyzer, strings.Join(sortedNames(valid), ", ")),
			})
		case al.reason == "":
			diags = append(diags, analysis.Diagnostic{
				Pos:      al.pos,
				Category: "allow",
				Message: fmt.Sprintf("//detlint:allow %s needs a reason citing a doc anchor or test name",
					al.analyzer),
			})
		case !al.used && running[al.analyzer]:
			diags = append(diags, analysis.Diagnostic{
				Pos:      al.pos,
				Category: "allow",
				Message: fmt.Sprintf("stale //detlint:allow %s: no %s diagnostic on this or the next line — delete the suppression",
					al.analyzer, al.analyzer),
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		pi, pj := u.Fset.Position(diags[i].Pos), u.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Category < diags[j].Category
	})
	return diags, nil
}

func sortedNames(set map[string]bool) []string {
	names := make([]string, 0, len(set))
	for n := range set {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// exprString renders a (small) expression for diagnostics without
// dragging in go/printer's formatting state.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.ParenExpr:
		return "(" + exprString(e.X) + ")"
	default:
		return "expression"
	}
}

// isErrorType reports whether t is (or trivially wraps) the built-in
// error interface type.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	it, ok := t.Underlying().(*types.Interface)
	return ok && it.NumMethods() == 1 && it.Method(0).Name() == "Error"
}
