package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"congestds/internal/lint/analysis"
)

// NonDet bans ambient-entropy reads inside the deterministic packages:
// wall-clock (time.Now/Since/Until), the process-global math/rand source
// (any package-level rand function — seeded rand.New(rand.NewSource(s))
// values remain fine), process identity (os.Getpid/Getppid), and select
// statements with two or more communication cases (the runtime picks a
// ready case pseudo-randomly). Engine code that is wall-clock-dependent
// by design — the Config.Deadline check — carries reviewed
// //detlint:allow nondet annotations instead. The obs package alone gets
// a standing wall-clock carve-out (timestamping telemetry is its charter;
// docs/ARCHITECTURE.md#observability) — every other ban still applies
// there, keeping traces rand- and pid-free.
var NonDet = &analysis.Analyzer{
	Name: "nondet",
	Doc: "bans wall-clock, global math/rand, process identity and multi-case " +
		"select in the deterministic packages",
	Run: runNonDet,
}

// bannedFuncs maps package path → function name → short description of
// the entropy source.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock read",
		"Since": "wall-clock read",
		"Until": "wall-clock read",
	},
	"os": {
		"Getpid":  "process identity",
		"Getppid": "process identity",
	},
}

func runNonDet(pass *analysis.Pass) (any, error) {
	if !Deterministic(pass.Pkg.Name()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				sig, ok := fn.Type().(*types.Signature)
				if !ok || sig.Recv() != nil {
					return true // methods (e.g. on a seeded *rand.Rand) are fine
				}
				path, name := fn.Pkg().Path(), fn.Name()
				if path == "time" && pass.Pkg.Name() == "obs" {
					return true // obs's charter is stamping telemetry
				}
				if why, ok := bannedFuncs[path][name]; ok {
					pass.Reportf(n.Pos(),
						"%s %s.%s in deterministic package %q: outputs must be reproducible across runs and hosts; derive it from the seed or annotate //detlint:allow nondet <reason>",
						why, path, name, pass.Pkg.Name())
					return true
				}
				if (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(name, "New") {
					pass.Reportf(n.Pos(),
						"global math/rand source %s.%s in deterministic package %q: the process-wide generator is seeded with entropy; thread a seeded *rand.Rand instead",
						path, name, pass.Pkg.Name())
				}
			case *ast.SelectStmt:
				comm := 0
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						comm++
					}
				}
				if comm >= 2 {
					pass.Reportf(n.Pos(),
						"select with %d communication cases in deterministic package %q: the runtime picks a ready case pseudo-randomly; use an explicit priority order or annotate //detlint:allow nondet <reason>",
						comm, pass.Pkg.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
