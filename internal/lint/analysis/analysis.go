// Package analysis is a minimal, dependency-free re-implementation of the
// golang.org/x/tools/go/analysis kernel: an [Analyzer] is a named check, a
// [Pass] hands it one type-checked package, and [Diagnostic] is a finding.
//
// The API deliberately mirrors x/tools so that the detlint analyzers
// (internal/lint) port mechanically to the upstream framework the moment
// the module can depend on it; this build environment is offline, so the
// dependency is gated behind this shim instead of pinned in go.mod (see
// docs/ARCHITECTURE.md#static-guarantees). Unlike x/tools there are no
// cross-package Facts: every detlint analyzer is a single-package check,
// and the whitelisting that upstream would do with facts is done by
// package name instead.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer is one named static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //detlint:allow comments. It must be a valid Go identifier.
	Name string
	// Doc is the one-paragraph description shown by detlint -help.
	Doc string
	// Run applies the check to one package. Findings are delivered via
	// pass.Report; the error return is for infrastructure failures only
	// (a finding is never an error).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass presents one type-checked package to an Analyzer's Run.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report delivers one diagnostic. The driver owns suppression
	// (//detlint:allow) and aggregation.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Category: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// A Diagnostic is one finding: a position and a message, categorized by
// the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Category string
	Message  string
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated. Both drivers (cmd/detlint and the linttest harness) use it so
// analyzers can rely on non-nil maps.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
