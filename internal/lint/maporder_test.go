package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestMapOrder pins the maporder analyzer: positive findings, the
// order-insensitive exemptions (commutative folds, key-indexed writes,
// append-then-sort, delete), //detlint:allow suppression, and silence
// outside the deterministic package set.
func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "maporder", "maporder_host")
}

// TestAllowHygiene pins the driver's suppression bookkeeping: a stale
// allow (no matching diagnostic), a reasonless allow, and an allow naming
// an unknown analyzer are all findings.
func TestAllowHygiene(t *testing.T) {
	linttest.Run(t, "testdata", lint.MapOrder, "maporder_stale")
}
