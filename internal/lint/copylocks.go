package lint

import (
	"go/ast"
	"go/types"

	"congestds/internal/lint/analysis"
)

// CopyLocks is an offline re-implementation of the x/tools copylocks
// pass (golang.org/x/tools is gated — see internal/lint/analysis): a
// value whose type transitively contains a lock (any type with
// pointer-receiver Lock and Unlock methods: sync.Mutex, RWMutex,
// WaitGroup, Once, ...) must not be copied, because the copy and the
// original guard nothing in common. Flagged sites: value assignments
// from an existing value, by-value call arguments, by-value method
// receivers, and range clauses that copy lock-containing elements.
// Fresh values (composite literals, function results) are fine.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc:  "flags copies of values containing sync locks (offline stand-in for x/tools copylocks)",
	Run:  runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) (any, error) {
	seen := map[types.Type]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Rhs) != len(n.Lhs) {
						break
					}
					if copiesLock(pass, rhs, seen) {
						pass.Reportf(n.Lhs[i].Pos(),
							"assignment copies a lock value: %s contains a lock (pointer-receiver Lock/Unlock); use a pointer",
							typeOf(pass, rhs))
					}
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok {
					if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						return true // len/cap/... read without copying
					}
				}
				for _, arg := range n.Args {
					if copiesLock(pass, arg, seen) {
						pass.Reportf(arg.Pos(),
							"call passes a lock by value: %s contains a lock; pass a pointer", typeOf(pass, arg))
					}
				}
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) == 1 {
					rt := pass.TypesInfo.Types[n.Recv.List[0].Type].Type
					if rt != nil {
						if _, isPtr := rt.Underlying().(*types.Pointer); !isPtr && containsLock(rt, seen) {
							pass.Reportf(n.Recv.Pos(),
								"method %s uses a by-value receiver of lock-containing type %s; use a pointer receiver",
								n.Name.Name, rt)
						}
					}
				}
			case *ast.RangeStmt:
				if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
					if obj := pass.TypesInfo.Defs[v]; obj != nil && containsLock(obj.Type(), seen) {
						pass.Reportf(v.Pos(),
							"range clause copies lock-containing elements of type %s; range over indices instead", obj.Type())
					}
				}
			}
			return true
		})
	}
	return nil, nil
}

func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	return pass.TypesInfo.Types[e].Type
}

// copiesLock reports whether evaluating e as an r-value copies an
// existing lock-containing value. Composite literals and calls build
// fresh values, so only reads of existing storage count.
func copiesLock(pass *analysis.Pass, e ast.Expr, seen map[types.Type]bool) bool {
	switch e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr, *ast.ParenExpr:
	default:
		return false
	}
	t := pass.TypesInfo.Types[e].Type
	return t != nil && containsLock(t, seen)
}

// containsLock reports whether t (not a pointer to t) transitively
// contains a type with pointer-receiver Lock and Unlock methods.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	defer delete(seen, t)

	if hasPtrLock(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// hasPtrLock reports whether *t has Lock and Unlock while t itself does
// not — the signature of a misuse-by-copy type.
func hasPtrLock(t types.Type) bool {
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	ptr := types.NewMethodSet(types.NewPointer(t))
	lock, unlock := false, false
	for i := 0; i < ptr.Len(); i++ {
		switch ptr.At(i).Obj().Name() {
		case "Lock":
			lock = true
		case "Unlock":
			unlock = true
		}
	}
	if !lock || !unlock {
		return false
	}
	val := types.NewMethodSet(t)
	for i := 0; i < val.Len(); i++ {
		if val.At(i).Obj().Name() == "Lock" {
			return false // Lock is usable on the value; copying is the caller's business
		}
	}
	return true
}
