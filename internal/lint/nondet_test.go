package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestNonDet pins the nondet analyzer: wall-clock, global math/rand,
// process identity and multi-case select are findings in deterministic
// packages; seeded rand.New values, single-case polls and reviewed
// allows are not.
func TestNonDet(t *testing.T) {
	linttest.Run(t, "testdata", lint.NonDet, "nondet")
}

// TestNonDetObsCarveOut pins the obs exception: the telemetry package may
// read the wall clock without an allow annotation, but every other
// entropy ban still fires there.
func TestNonDetObsCarveOut(t *testing.T) {
	linttest.Run(t, "testdata", lint.NonDet, "nondet_obs")
}
