package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"congestds/internal/lint/analysis"
)

// Nilness is the sound, SSA-free subset of the x/tools nilness pass that
// an offline build can support: it flags dereferences that are
// *guaranteed* to fault — a field access, slice index, map store or
// pointer dereference of a variable inside the branch that just proved
// it nil (`if x == nil { ... x.f ... }`, or the else-branch of
// `x != nil`). Method calls are deliberately not flagged (nil receivers
// are legal Go), and any reassignment of the variable inside the branch
// disables the check; the full dataflow version arrives with the gated
// x/tools dependency.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc:  "flags guaranteed nil dereferences inside the branch that proved the value nil (sound subset of x/tools nilness)",
	Run:  runNilness,
}

func runNilness(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok {
				return true
			}
			obj, eq := nilCompare(pass, ifs.Cond)
			if obj == nil {
				return true
			}
			if eq {
				checkNilUse(pass, ifs.Body, obj)
			} else if els, ok := ifs.Else.(*ast.BlockStmt); ok {
				checkNilUse(pass, els, obj)
			}
			return true
		})
	}
	return nil, nil
}

// nilCompare matches `x == nil` / `x != nil` where x is an identifier of
// nil-able type, returning its object and whether the comparison is ==.
func nilCompare(pass *analysis.Pass, cond ast.Expr) (types.Object, bool) {
	be, ok := cond.(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := be.X, be.Y
	if isNilIdent(pass, x) {
		x, y = y, x
	}
	if !isNilIdent(pass, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil, false
	}
	switch obj.Type().Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Signature, *types.Chan:
		return obj, be.Op == token.EQL
	}
	return nil, false
}

func isNilIdent(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// checkNilUse reports guaranteed faults on obj inside block, bailing out
// entirely if the block ever reassigns obj.
func checkNilUse(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object) {
	if reassigns(pass, block, obj) {
		return
	}
	ast.Inspect(block, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			// Field access through a nil pointer faults; a method value or
			// call may be legal on a nil receiver.
			if sel := pass.TypesInfo.Selections[n]; sel != nil && sel.Kind() == types.FieldVal {
				if _, isPtr := obj.Type().Underlying().(*types.Pointer); isPtr {
					pass.Reportf(n.Pos(), "guaranteed nil dereference: %s is nil on this path", id.Name)
				}
			}
		case *ast.IndexExpr:
			id, ok := n.X.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
				pass.Reportf(n.Pos(), "guaranteed out-of-range index: %s is nil (length 0) on this path", id.Name)
			}
		case *ast.StarExpr:
			if id, ok := n.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				pass.Reportf(n.Pos(), "guaranteed nil dereference: %s is nil on this path", id.Name)
			}
		case *ast.AssignStmt:
			// Map stores through a nil map panic.
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if id, ok := ix.X.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					if _, isMap := obj.Type().Underlying().(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "guaranteed panic: store into nil map %s", id.Name)
					}
				}
			}
		}
		return true
	})
}

func reassigns(pass *analysis.Pass, block *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(block, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return !found
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && (pass.TypesInfo.Uses[id] == obj || pass.TypesInfo.Defs[id] == obj) {
				found = true
			}
		}
		return !found
	})
	return found
}
