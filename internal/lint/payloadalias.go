package lint

import (
	"go/ast"
	"go/types"

	"congestds/internal/lint/analysis"
)

// PayloadAlias is the slot-arena aliasing rule as a checker: inside a
// Step or Deliver method, the delivered payload bytes (a []byte
// parameter, or the Payload field of an inbox element) are only valid
// until the method returns — the stepped engine's three-generation arena
// recycles them two rounds later. Storing such a slice (or a sub-slice)
// into a struct field, a package variable, a container that reaches one,
// or a closure, without an intervening copy (append([]byte(nil), p...)
// or copy) is exactly the corruption class the arena grace round papers
// over; this analyzer makes it a build error instead of a
// two-rounds-later heisenbug. Passing the payload to another function is
// not tracked (the callee owns its own contract).
var PayloadAlias = &analysis.Analyzer{
	Name: "payloadalias",
	Doc: "flags delivered-payload slices retained past Step/Deliver without a copy " +
		"(the stepped engine recycles payload arenas after a two-round grace)",
	Run: runPayloadAlias,
}

func runPayloadAlias(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "Step" && fd.Name.Name != "Deliver" {
				continue
			}
			ck := newAliasChecker(pass)
			if !ck.seedParams(fd) {
				continue // no payload-carrying parameters
			}
			ck.stmts(fd.Body.List)
		}
	}
	return nil, nil
}

type aliasChecker struct {
	pass *analysis.Pass
	// tainted: []byte locals aliasing delivered payload bytes.
	tainted map[types.Object]bool
	// container: slices whose elements carry payloads (the inbox).
	container map[types.Object]bool
	// elem: struct values drawn from a container (an Incoming message);
	// their Payload field is tainted and storing the struct retains it.
	elem map[types.Object]bool
	// holder: locals ([][]byte, maps, structs) into which a tainted slice
	// was stored; storing a holder anywhere retains the payload too.
	holder map[types.Object]bool
}

func newAliasChecker(pass *analysis.Pass) *aliasChecker {
	return &aliasChecker{
		pass:      pass,
		tainted:   map[types.Object]bool{},
		container: map[types.Object]bool{},
		elem:      map[types.Object]bool{},
		holder:    map[types.Object]bool{},
	}
}

// seedParams marks the method's payload sources: []byte parameters and
// parameters that are slices of a struct with a Payload []byte field.
// Returns false when the method has neither.
func (ck *aliasChecker) seedParams(fd *ast.FuncDecl) bool {
	any := false
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			obj := ck.pass.TypesInfo.Defs[name]
			if obj == nil {
				continue
			}
			t := obj.Type()
			if isByteSlice(t) {
				ck.tainted[obj] = true
				any = true
				continue
			}
			if sl, ok := t.Underlying().(*types.Slice); ok {
				if st, ok := sl.Elem().Underlying().(*types.Struct); ok && hasPayloadField(st) {
					ck.container[obj] = true
					any = true
				}
			}
		}
	}
	return any
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func hasPayloadField(st *types.Struct) bool {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "Payload" && isByteSlice(f.Type()) {
			return true
		}
	}
	return false
}

func (ck *aliasChecker) obj(e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := ck.pass.TypesInfo.Uses[id]; obj != nil {
		return obj
	}
	return ck.pass.TypesInfo.Defs[id]
}

// taintedExpr reports whether evaluating e yields memory that aliases a
// delivered payload.
func (ck *aliasChecker) taintedExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := ck.obj(e)
		return ck.tainted[obj] || ck.elem[obj] || ck.holder[obj] || ck.container[obj]
	case *ast.ParenExpr:
		return ck.taintedExpr(e.X)
	case *ast.SliceExpr:
		return ck.taintedExpr(e.X)
	case *ast.IndexExpr:
		// holder[i] or inbox[i] both carry payload memory — but only when
		// the element type can hold bytes at all.
		return ck.taintedExpr(e.X) && carriesBytesExpr(ck.pass, e)
	case *ast.SelectorExpr:
		// msg.Payload aliases the arena; msg.Port (an int) cannot — taint
		// propagates through a selection only if its type can reach the
		// payload bytes.
		return ck.taintedExpr(e.X) && carriesBytesExpr(ck.pass, e)
	case *ast.StarExpr:
		return ck.taintedExpr(e.X)
	case *ast.UnaryExpr:
		return ck.taintedExpr(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if ck.taintedExpr(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return ck.taintedAppend(e)
	case *ast.FuncLit:
		return ck.capturesTaint(e)
	default:
		return false
	}
}

// taintedAppend handles the one call form whose result can alias payload
// memory without the callee's involvement: append. A spread of payload
// bytes (append(dst, p...)) copies the bytes and is clean; appending a
// payload slice as an element (append(s, p) into [][]byte) stores the
// alias. Every other call returns fresh memory as far as this analyzer
// can know.
func (ck *aliasChecker) taintedAppend(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	if _, isBuiltin := ck.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return false
	}
	// The base slice: appending onto a holder keeps it a holder.
	if ck.taintedExpr(call.Args[0]) && !isByteSliceExpr(ck.pass, call.Args[0]) {
		return true
	}
	for i, arg := range call.Args[1:] {
		last := i == len(call.Args)-2
		if call.Ellipsis.IsValid() && last {
			// Spread: copies elements. Copying bytes launders the taint;
			// spreading a [][]byte holder copies the aliasing headers.
			if ck.taintedExpr(arg) && !isByteSliceExpr(ck.pass, arg) {
				return true
			}
			continue
		}
		if ck.taintedExpr(arg) {
			return true
		}
	}
	return false
}

func isByteSliceExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv := pass.TypesInfo.Types[e]
	return tv.Type != nil && isByteSlice(tv.Type)
}

// carriesBytesExpr reports whether e's type can transitively hold a []byte
// — the precondition for an expression to alias payload memory. Selecting
// an int field (msg.Port) out of a tainted message cannot retain the
// arena, no matter how tainted the base is.
func carriesBytesExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv := pass.TypesInfo.Types[e]
	if tv.Type == nil {
		return true // missing type info: stay conservative
	}
	return carriesBytes(tv.Type, map[types.Type]bool{})
}

func carriesBytes(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Slice:
		return isByteSlice(t) || carriesBytes(u.Elem(), seen)
	case *types.Array:
		return carriesBytes(u.Elem(), seen)
	case *types.Pointer:
		return carriesBytes(u.Elem(), seen)
	case *types.Map:
		return carriesBytes(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesBytes(u.Field(i).Type(), seen) {
				return true
			}
		}
		return false
	case *types.Interface:
		return true // an any could box the slice
	default:
		return false
	}
}

// capturesTaint reports whether a function literal references any
// payload-aliasing variable.
func (ck *aliasChecker) capturesTaint(fl *ast.FuncLit) bool {
	found := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := ck.pass.TypesInfo.Uses[id]
			if ck.tainted[obj] || ck.elem[obj] || ck.holder[obj] || ck.container[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// escapes reports whether writing through lhs stores the value somewhere
// that outlives this Step call: a struct field (receiver or otherwise), a
// package-level variable, a dereferenced pointer, or an element of any of
// those.
func (ck *aliasChecker) stmts(list []ast.Stmt) {
	for _, s := range list {
		ck.stmt(s)
	}
}

func (ck *aliasChecker) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.AssignStmt:
		ck.assign(s)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) {
						ck.bind(name, vs.Values[i])
					}
				}
			}
		}
	case *ast.IfStmt:
		ck.stmt(s.Init)
		ck.stmts(s.Body.List)
		ck.stmt(s.Else)
	case *ast.BlockStmt:
		ck.stmts(s.List)
	case *ast.ForStmt:
		ck.stmt(s.Init)
		ck.stmts(s.Body.List)
		ck.stmt(s.Post)
	case *ast.RangeStmt:
		// Ranging over the inbox yields payload-carrying elements; over a
		// holder, tainted slices.
		if ck.taintedExpr(s.X) {
			if v, ok := s.Value.(*ast.Ident); ok && v.Name != "_" {
				if obj := ck.pass.TypesInfo.Defs[v]; obj != nil {
					if isByteSlice(obj.Type()) {
						ck.tainted[obj] = true
					} else if _, isStruct := obj.Type().Underlying().(*types.Struct); isStruct {
						ck.elem[obj] = true
					}
				}
			}
		}
		ck.stmts(s.Body.List)
	case *ast.SwitchStmt:
		ck.stmt(s.Init)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ck.stmts(cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ck.stmts(cc.Body)
			}
		}
	case *ast.ExprStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.BranchStmt,
		*ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.LabeledStmt, *ast.EmptyStmt:
		// Calls (including deferred ones) are outside the contract this
		// analyzer enforces; the callee owns its own retention rules.
	}
}

func (ck *aliasChecker) assign(s *ast.AssignStmt) {
	if len(s.Lhs) != len(s.Rhs) {
		return // multi-value call results are fresh memory
	}
	for i, lhs := range s.Lhs {
		ck.bind(lhs, s.Rhs[i])
	}
}

// bind records or reports the effect of `lhs = rhs`.
func (ck *aliasChecker) bind(lhs ast.Expr, rhs ast.Expr) {
	rt := ck.taintedExpr(rhs)
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := ck.obj(lhs)
		if obj == nil {
			return
		}
		if obj.Parent() == ck.pass.Pkg.Scope() {
			if rt {
				ck.pass.Reportf(lhs.Pos(),
					"delivered payload stored in package variable %s: the slot arena recycles these bytes two rounds later; copy first (append([]byte(nil), p...))",
					lhs.Name)
			}
			return
		}
		// Local rebinding: track what it now holds.
		ck.tainted[obj] = rt && isByteSlice(obj.Type())
		if !ck.tainted[obj] {
			ck.holder[obj] = rt
		}
		if !rt {
			delete(ck.elem, obj)
			delete(ck.container, obj)
		} else if ce, ok := rhs.(*ast.Ident); ok {
			co := ck.obj(ce)
			ck.elem[obj] = ck.elem[co]
			ck.container[obj] = ck.container[co]
		}
	case *ast.SelectorExpr:
		if !rt {
			return
		}
		if base := ck.localValueRoot(lhs.X); base != nil {
			// Field of a local struct value: nothing escapes yet, but the
			// local now retains payload memory.
			ck.holder[base] = true
			return
		}
		ck.pass.Reportf(lhs.Pos(),
			"delivered payload stored in field %s: inbox payload bytes are only valid until Step returns (three-generation slot arena); copy first (append([]byte(nil), p...))",
			exprString(lhs))
	case *ast.IndexExpr:
		if !rt {
			return
		}
		if base := ck.localValueRoot(lhs.X); base != nil {
			// Element store into a local container: the container now
			// retains payload memory.
			ck.holder[base] = true
			return
		}
		ck.pass.Reportf(lhs.Pos(),
			"delivered payload stored in element %s: payload bytes do not outlive Step; copy first (append([]byte(nil), p...))",
			exprString(lhs))
	case *ast.StarExpr:
		if rt {
			ck.pass.Reportf(lhs.Pos(),
				"delivered payload stored through pointer %s: payload bytes do not outlive Step; copy first (append([]byte(nil), p...))",
				exprString(lhs))
		}
	}
}

// localValueRoot resolves the base of a selector/index chain and returns
// its object when it is a non-pointer local value (a stack struct or
// slice that has not escaped): writes into those are tracked as holder
// taint rather than reported, because only a later store of the holder
// itself would leak the payload. A pointer-typed root — the receiver, an
// out-parameter — escapes the call by construction and returns nil.
func (ck *aliasChecker) localValueRoot(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, ok := ck.obj(x).(*types.Var)
			if !ok || v.Parent() == ck.pass.Pkg.Scope() {
				return nil
			}
			if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
				return nil
			}
			return v
		default:
			return nil
		}
	}
}
