package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestUnsafeGuard pins the unsafe confinement rule: unsafe imports,
// syscall.Mmap and reflect.SliceHeader are findings outside the audited
// internal/graph loader files, the mmap files must carry //go:build
// constraints, and an allow on the import line suppresses a reviewed
// exception.
func TestUnsafeGuard(t *testing.T) {
	linttest.Run(t, "testdata", lint.UnsafeGuard, "unsafeguard", "unsafeguard_ok")
}
