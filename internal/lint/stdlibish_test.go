package lint_test

import (
	"testing"

	"congestds/internal/lint"
	"congestds/internal/lint/linttest"
)

// TestCopyLocks pins the offline copylocks stand-in: assignments, call
// arguments, by-value receivers and range clauses that copy
// lock-containing values are findings; pointers, composite literals and
// index-form ranges are not.
func TestCopyLocks(t *testing.T) {
	linttest.Run(t, "testdata", lint.CopyLocks, "copylocks")
}

// TestLostCancel pins the offline lostcancel stand-in: a context cancel
// function assigned to _ (or only ever blank-discarded) is a finding;
// deferring, returning or otherwise using it is not.
func TestLostCancel(t *testing.T) {
	linttest.Run(t, "testdata", lint.LostCancel, "lostcancel")
}

// TestNilness pins the sound nilness subset: field access, slice index,
// map store and pointer deref inside the branch that proved the value
// nil are findings; method calls, nil-map reads and reassigned branches
// are not.
func TestNilness(t *testing.T) {
	linttest.Run(t, "testdata", lint.Nilness, "nilness")
}
