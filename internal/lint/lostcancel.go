package lint

import (
	"go/ast"
	"go/types"

	"congestds/internal/lint/analysis"
)

// LostCancel is an offline re-implementation of the x/tools lostcancel
// pass: the CancelFunc returned by context.WithCancel, WithTimeout or
// WithDeadline must not be discarded — dropping it leaks the context's
// resources (and, for the congest engines, leaves Config.Ctx
// cancellation untestable). Flagged: assigning the cancel function to
// the blank identifier, and binding it to a variable that is never
// referenced again in the function. (Unlike upstream there is no
// control-flow analysis proving a call on every path.)
var LostCancel = &analysis.Analyzer{
	Name: "lostcancel",
	Doc:  "flags discarded context.CancelFunc values (offline stand-in for x/tools lostcancel)",
	Run:  runLostCancel,
}

var cancelFuncs = map[string]bool{"WithCancel": true, "WithTimeout": true, "WithDeadline": true}

func runLostCancel(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCancels(pass, fd.Body)
		}
	}
	return nil, nil
}

func checkCancels(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" || !cancelFuncs[fn.Name()] {
			return true
		}
		cancel, ok := as.Lhs[1].(*ast.Ident)
		if !ok {
			return true
		}
		if cancel.Name == "_" {
			pass.Reportf(cancel.Pos(),
				"the cancel function returned by context.%s is discarded: call it (usually `defer cancel()`) to release the context's resources", fn.Name())
			return true
		}
		obj := pass.TypesInfo.Defs[cancel]
		if obj == nil {
			return true // reassignment into an existing var: assume managed
		}
		if !identUsedIn(pass, body, obj, cancel) {
			pass.Reportf(cancel.Pos(),
				"the cancel function %s returned by context.%s is never used: call it (usually `defer %s()`) to release the context's resources",
				cancel.Name, fn.Name(), cancel.Name)
		}
		return true
	})
	// Nested function literals are walked by the same Inspect.
}

// identUsedIn reports whether obj is meaningfully referenced in body:
// any use other than its defining identifier or a blank-discard
// assignment (`_ = cancel` silences the compiler, not the leak).
func identUsedIn(pass *analysis.Pass, body *ast.BlockStmt, obj types.Object, def *ast.Ident) bool {
	discards := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			if bl, ok := lhs.(*ast.Ident); ok && bl.Name == "_" {
				if rhs, ok := as.Rhs[i].(*ast.Ident); ok {
					discards[rhs] = true
				}
			}
		}
		return true
	})
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id != def && !discards[id] && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}
