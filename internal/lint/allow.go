package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowMarker is the comment prefix that suppresses a detlint finding.
// The full grammar is
//
//	//detlint:allow <analyzer> <reason>
//
// written either as a trailing comment on the flagged line or as a
// standalone comment on the line directly above it. The reason is free
// text up to an embedded "//" (so test harness annotations can follow on
// the same comment) and must cite a doc anchor (file.md#anchor) or a test
// name — cmd/docscheck verifies the citation resolves.
const allowMarker = "//detlint:allow"

// An allow is one parsed suppression comment.
type allow struct {
	pos      token.Pos
	file     string
	line     int
	analyzer string
	reason   string
	used     bool
}

// collectAllows parses every //detlint:allow comment in files. The
// directive must use the exact marker (no space after //, like
// //go:build); a close miss such as "// detlint:allow" is ignored here
// and caught by cmd/docscheck's formatting check.
func collectAllows(fset *token.FileSet, files []*ast.File) []*allow {
	var out []*allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowMarker) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowMarker)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //detlint:allowx — not the directive
				}
				// The reason runs to the end of the comment or to an
				// embedded "//" (linttest's want annotations ride there).
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				al := &allow{pos: c.Pos()}
				p := fset.Position(c.Pos())
				al.file, al.line = p.Filename, p.Line
				if len(fields) > 0 {
					al.analyzer = fields[0]
				}
				if len(fields) > 1 {
					al.reason = strings.Join(fields[1:], " ")
				}
				out = append(out, al)
			}
		}
	}
	return out
}

// matchAllow returns the allow that covers a diagnostic from the named
// analyzer at pos, or nil. An allow on line L covers lines L and L+1:
// trailing comments suppress their own line, standalone comments the line
// below.
func matchAllow(allows []*allow, analyzer string, pos token.Position) *allow {
	for _, al := range allows {
		if al.analyzer != analyzer || al.file != pos.Filename {
			continue
		}
		if al.line == pos.Line || al.line == pos.Line-1 {
			return al
		}
	}
	return nil
}
