package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"congestds/internal/lint/analysis"
)

// MapOrder flags `range` over a map in the deterministic packages: Go's
// map iteration order is randomized per run, so any order-dependent
// effect inside such a loop breaks byte-reproducibility across engines
// and hosts — the exact class of bug behind PR 1's BarabasiAlbert
// generator fix. A loop is exempt when every statement in its body is
// provably order-insensitive (commutative folds like x += v, writes
// indexed by the iteration key, delete, fresh per-iteration locals, or
// appends into a slice that the same function subsequently sorts);
// everything else needs sorted keys or a //detlint:allow maporder with a
// reviewed reason.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map in deterministic packages unless the body is " +
		"order-insensitive (commutative fold, key-indexed writes, append-then-sort)",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	if !Deterministic(pass.Pkg.Name()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body.List, nil)
		}
	}
	return nil, nil
}

// checkMapRanges walks a statement list looking for range-over-map. After
// a loop ends, the statements that run next are the rest of its own list
// plus the tails of every enclosing list — that is where an append sink
// may legally be sorted, so the tails thread down as `followers`.
func checkMapRanges(pass *analysis.Pass, list []ast.Stmt, followers [][]ast.Stmt) {
	for i, stmt := range list {
		tail := append(followers[:len(followers):len(followers)], list[i+1:])
		ast.Inspect(stmt, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				checkMapRanges(pass, n.Body.List, nil)
				return false
			case *ast.BlockStmt:
				// Recurse with list tracking so appends inside nested
				// blocks still see their followers.
				checkMapRanges(pass, n.List, tail)
				return false
			case *ast.RangeStmt:
				tv := pass.TypesInfo.Types[n.X]
				if tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if !orderInsensitiveBody(pass, n, tail) {
					pass.Reportf(n.For,
						"range over map %s in deterministic package %q: iteration order is randomized per run; sort the keys first, make every statement order-insensitive, or annotate //detlint:allow maporder <reason>",
						exprString(n.X), pass.Pkg.Name())
				}
				// Nested map ranges inside this body are checked with the
				// loop body's own tails.
				checkMapRanges(pass, n.Body.List, tail)
				return false
			}
			return true
		})
	}
}

// orderInsensitiveBody reports whether every statement in the loop body
// has the same net effect regardless of iteration order.
func orderInsensitiveBody(pass *analysis.Pass, rs *ast.RangeStmt, followers [][]ast.Stmt) bool {
	keyObj := rangeVarObj(pass, rs.Key)
	ck := &orderChecker{pass: pass, keyObj: keyObj, followers: followers}
	return ck.stmts(rs.Body.List)
}

// rangeVarObj resolves the key (or value) variable of a range clause to
// its types.Object, for both `:=` definitions and `=` reuses.
func rangeVarObj(pass *analysis.Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

type orderChecker struct {
	pass      *analysis.Pass
	keyObj    types.Object
	followers [][]ast.Stmt
}

func (ck *orderChecker) stmts(list []ast.Stmt) bool {
	for _, s := range list {
		if !ck.stmt(s) {
			return false
		}
	}
	return true
}

func (ck *orderChecker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return true
	case *ast.AssignStmt:
		return ck.assign(s)
	case *ast.IncDecStmt:
		// x++ / x-- commute across iterations.
		return true
	case *ast.DeclStmt:
		// A fresh local per iteration has no cross-iteration effect.
		return true
	case *ast.ExprStmt:
		// delete(m, k) commutes: each key is removed at most once.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "delete" {
				if _, isBuiltin := ck.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		return false
	case *ast.IfStmt:
		// Guards are fine as long as the guarded effects commute.
		return ck.stmt(s.Init) && ck.stmts(s.Body.List) && ck.stmt(s.Else)
	case *ast.BlockStmt:
		return ck.stmts(s.List)
	case *ast.BranchStmt:
		// continue skips one independent iteration; break makes the set of
		// executed iterations order-dependent.
		return s.Tok == token.CONTINUE
	case *ast.RangeStmt:
		// An inner loop (over the map value, say) inherits the exemption
		// rules; an inner range over another map is checked on its own by
		// checkMapRanges, so only the body's effects matter here.
		return ck.stmts(s.Body.List)
	case *ast.ForStmt:
		return ck.stmt(s.Init) && ck.stmts(s.Body.List) && ck.stmt(s.Post)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); !ok || !ck.stmts(cc.Body) {
				return false
			}
		}
		return ck.stmt(s.Init)
	default:
		return false
	}
}

func (ck *orderChecker) assign(s *ast.AssignStmt) bool {
	switch s.Tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
		// Commutative, associative folds.
		return true
	case token.SUB_ASSIGN:
		// x -= v is x += (-v): still commutative over integers.
		return true
	case token.DEFINE:
		// New locals scoped to the iteration.
		return true
	case token.ASSIGN:
		for i, lhs := range s.Lhs {
			if !ck.plainAssignOK(lhs, rhsFor(s, i)) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func rhsFor(s *ast.AssignStmt, i int) ast.Expr {
	if len(s.Rhs) == len(s.Lhs) {
		return s.Rhs[i]
	}
	return nil
}

// plainAssignOK accepts the `=` forms that commute: writes indexed by the
// iteration key (each key visits once, so the writes are disjoint) and
// appends into a slice the function later sorts.
func (ck *orderChecker) plainAssignOK(lhs ast.Expr, rhs ast.Expr) bool {
	if ix, ok := lhs.(*ast.IndexExpr); ok && ck.keyObj != nil && mentionsObj(ck.pass, ix.Index, ck.keyObj) {
		return true
	}
	if id, ok := lhs.(*ast.Ident); ok && rhs != nil {
		if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(ck.pass, call) {
			if base, ok := call.Args[0].(*ast.Ident); ok && base.Name == id.Name {
				sink := ck.pass.TypesInfo.Uses[id]
				if sink == nil {
					sink = ck.pass.TypesInfo.Defs[id]
				}
				return sink != nil && sortedLater(ck.pass, sink, ck.followers)
			}
		}
	}
	return false
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" || len(call.Args) == 0 {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// mentionsObj reports whether expression e references obj.
func mentionsObj(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortFuncs lists the canonicalizing calls that discharge an append sink:
// package path → function names.
var sortFuncs = map[string]map[string]bool{
	"sort": {"Sort": true, "Stable": true, "Slice": true, "SliceStable": true,
		"Strings": true, "Ints": true, "Float64s": true},
	"slices": {"Sort": true, "SortFunc": true, "SortStableFunc": true},
}

// sortedLater reports whether any statement that runs after the loop — in
// its own list or an enclosing one — sorts the sink slice.
func sortedLater(pass *analysis.Pass, sink types.Object, followers [][]ast.Stmt) bool {
	for _, list := range followers {
		for _, stmt := range list {
			found := false
			ast.Inspect(stmt, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				names := sortFuncs[fn.Pkg().Path()]
				if names == nil || !names[fn.Name()] {
					return true
				}
				for _, arg := range call.Args {
					if mentionsObj(pass, arg, sink) {
						found = true
					}
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}
