package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"congestds/internal/lint/analysis"
)

// UnsafeGuard confines the repository's memory-reinterpretation surface:
// importing unsafe, calling syscall.Mmap/Munmap, and touching the
// deprecated reflect.SliceHeader/StringHeader are allowed only in the
// audited zero-copy loader files of internal/graph (alias.go,
// format*.go, mmap_*.go — see docs/ARCHITECTURE.md#static-guarantees),
// and the mmap files must additionally sit under an explicit //go:build
// constraint so the heap-read fallback stays the portable default.
// Anywhere else these are findings, whatever the justification — new
// unsafe code must extend the audited allowlist, not bypass it.
var UnsafeGuard = &analysis.Analyzer{
	Name: "unsafeguard",
	Doc: "confines unsafe, syscall.Mmap and reflect.SliceHeader to the audited " +
		"internal/graph loader files under their build tags",
	Run: runUnsafeGuard,
}

// unsafeAllowedFile reports whether base (a file basename) is one of the
// audited internal/graph loader files.
func unsafeAllowedFile(base string) bool {
	for _, pat := range []string{"alias.go", "format*.go", "mmap_*.go"} {
		if ok, _ := filepath.Match(pat, base); ok {
			return true
		}
	}
	return false
}

func runUnsafeGuard(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		base := filepath.Base(pass.Fset.Position(f.Pos()).Filename)
		allowed := pass.Pkg.Name() == "graph" && unsafeAllowedFile(base)
		needsTag := strings.HasPrefix(base, "mmap_")
		hasTag := hasBuildConstraint(f)

		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path != "unsafe" {
				continue
			}
			switch {
			case !allowed:
				pass.Reportf(imp.Pos(),
					"import of unsafe outside the audited zero-copy loader files (package graph: alias.go, format*.go, mmap_*.go): extend the audited allowlist instead of aliasing memory ad hoc")
			case needsTag && !hasTag:
				pass.Reportf(imp.Pos(),
					"unsafe in %s requires an explicit //go:build constraint: the portable heap-read fallback must stay the default on unlisted platforms", base)
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "syscall" && (obj.Name() == "Mmap" || obj.Name() == "Munmap"):
				switch {
				case !allowed:
					pass.Reportf(sel.Pos(),
						"syscall.%s outside the audited internal/graph mmap files: memory mapping belongs behind graph.Mmap", obj.Name())
				case !needsTag || !hasTag:
					pass.Reportf(sel.Pos(),
						"syscall.%s must live in a mmap_*.go file under a //go:build constraint (the non-mmap hosts use the validated heap-read fallback)", obj.Name())
				}
			case obj.Pkg().Path() == "reflect" && (obj.Name() == "SliceHeader" || obj.Name() == "StringHeader"):
				if _, isType := obj.(*types.TypeName); isType {
					pass.Reportf(sel.Pos(),
						"reflect.%s is unsound under a moving collector and banned repo-wide; use unsafe.Slice in an audited file instead", obj.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// hasBuildConstraint reports whether the file carries a //go:build line
// (comments before or on the package clause line).
func hasBuildConstraint(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() > f.Package {
			break
		}
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//go:build ") {
				return true
			}
		}
	}
	return false
}
