package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// jsonlRound / jsonlEvent are the two JSONL line shapes: the record with a
// leading "t" discriminator so a stream mixes both kinds.
type jsonlRound struct {
	T string `json:"t"`
	RoundRec
}

type jsonlEvent struct {
	T string `json:"t"`
	EventRec
}

// JSONL streams records as one JSON object per line — the archival trace
// format: cheap to append during a run, and lossless, so Replay can feed a
// saved trace back through any other sink (profile, Chrome) and produce
// exactly what a live run would have.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	c   io.Closer
	err error
}

var _ Sink = (*JSONL)(nil)

// NewJSONL returns a JSONL sink writing to w. If w is also an io.Closer
// (a file), Close closes it after flushing.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	j := &JSONL{bw: bw, enc: json.NewEncoder(bw)}
	if c, ok := w.(io.Closer); ok {
		j.c = c
	}
	return j
}

// Round implements Sink.
func (j *JSONL) Round(r RoundRec) {
	if j.err == nil {
		j.err = j.enc.Encode(jsonlRound{T: "round", RoundRec: r})
	}
}

// Event implements Sink.
func (j *JSONL) Event(e EventRec) {
	if j.err == nil {
		j.err = j.enc.Encode(jsonlEvent{T: "event", EventRec: e})
	}
}

// Close flushes the stream and closes the underlying writer if it owns
// one, reporting the first error seen anywhere in the sink's lifetime.
func (j *JSONL) Close() error {
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	if j.c != nil {
		if err := j.c.Close(); err != nil && j.err == nil {
			j.err = err
		}
	}
	return j.err
}

// Replay feeds a JSONL trace back through sinks, reproducing the exact
// record sequence of the run that wrote it (stamps travel in the records,
// so time-derived sink output is identical too). Blank lines are skipped;
// a malformed line or unknown record type is an error. Replay does not
// Close the sinks — the caller owns their lifecycle.
func Replay(r io.Reader, sinks ...Sink) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var probe struct {
			T string `json:"t"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		switch probe.T {
		case "round":
			var rec jsonlRound
			if err := json.Unmarshal(b, &rec); err != nil {
				return fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			for _, s := range sinks {
				s.Round(rec.RoundRec)
			}
		case "event":
			var rec jsonlEvent
			if err := json.Unmarshal(b, &rec); err != nil {
				return fmt.Errorf("obs: trace line %d: %w", line, err)
			}
			for _, s := range sinks {
				s.Event(rec.EventRec)
			}
		default:
			return fmt.Errorf("obs: trace line %d: unknown record type %q", line, probe.T)
		}
	}
	return sc.Err()
}
