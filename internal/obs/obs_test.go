package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// echoStep broadcasts a round-stamped payload every round — the minimal
// traffic-generating program for exercising the telemetry path end to end.
type echoStep struct {
	out    []int64
	rounds int
	acc    int64
}

func (s *echoStep) Init(nd *congest.Node) bool {
	s.acc = nd.ID()
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func (s *echoStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for i, msg := range in {
		v, _ := congest.Varint(msg.Payload, 0)
		s.acc = s.acc*31 + v*int64(i+1)
	}
	if round+1 >= s.rounds {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func echoFactory(out []int64, rounds int) congest.StepFactory {
	return func(nd *congest.Node) congest.StepProgram { return &echoStep{out: out, rounds: rounds} }
}

// TestRecorderSegmentsAndDeltas drives the Recorder with a synthetic
// two-run callback sequence and checks segment detection, cumulative→delta
// conversion, and the per-segment round counts.
func TestRecorderSegmentsAndDeltas(t *testing.T) {
	agg := NewAggregator()
	r := NewRecorder(agg)
	end := func(round, live int, msgs, bits int64) {
		var h congest.MsgHist
		h[3] = msgs // pretend every message is 4-7 bits
		r.RoundEnd(congest.RoundStats{Round: round, Live: live, Messages: msgs, Bits: bits, Hist: h})
	}
	// Run 1: three rounds, cumulative counters 10/100 → 15/150 → 15/150.
	r.RoundStart(1)
	end(1, 8, 10, 100)
	r.RoundStart(2)
	end(2, 8, 15, 150)
	r.RoundStart(3)
	end(3, 0, 15, 150)
	// Run 2: round numbering restarts — must open a new segment and reset
	// the delta baseline.
	r.RoundStart(1)
	end(1, 4, 7, 70)

	segs := r.Segments()
	if len(segs) != 2 || segs[0].Rounds != 3 || segs[1].Rounds != 1 {
		t.Fatalf("segments = %+v, want rounds 3 and 1", segs)
	}
	if len(agg.rounds) != 4 {
		t.Fatalf("got %d round records, want 4", len(agg.rounds))
	}
	wantMsgs := []int64{10, 5, 0, 7}
	wantBits := []int64{100, 50, 0, 70}
	for i, rec := range agg.rounds {
		if rec.Msgs != wantMsgs[i] || rec.Bits != wantBits[i] {
			t.Errorf("round %d: delta msgs=%d bits=%d, want %d/%d", i, rec.Msgs, rec.Bits, wantMsgs[i], wantBits[i])
		}
		if rec.Hist.Total() != wantMsgs[i] {
			t.Errorf("round %d: hist delta total=%d, want %d", i, rec.Hist.Total(), wantMsgs[i])
		}
	}
	if agg.rounds[3].Seg != 1 {
		t.Errorf("second run's record landed in segment %d, want 1", agg.rounds[3].Seg)
	}
}

// TestRecorderTrailingOpenDiscarded: a RoundStart with no matching
// RoundEnd (the run finished during that compute) contributes no record,
// and the next run still opens a fresh segment.
func TestRecorderTrailingOpenDiscarded(t *testing.T) {
	agg := NewAggregator()
	r := NewRecorder(agg)
	r.RoundStart(1)
	r.RoundEnd(congest.RoundStats{Round: 1, Messages: 2, Bits: 20})
	r.RoundStart(2) // dangling: run ends here
	r.RoundStart(3) // next run — open round forces a new segment
	r.RoundEnd(congest.RoundStats{Round: 3, Messages: 4, Bits: 40})
	segs := r.Segments()
	if len(segs) != 2 || segs[0].Rounds != 1 || segs[1].Rounds != 1 {
		t.Fatalf("segments = %+v, want two one-round segments", segs)
	}
	if len(agg.rounds) != 2 {
		t.Fatalf("got %d records, want 2 (dangling start discarded)", len(agg.rounds))
	}
	if agg.rounds[1].Seg != 1 || agg.rounds[1].Msgs != 4 {
		t.Errorf("second record = %+v, want seg 1 with fresh delta baseline", agg.rounds[1])
	}
}

// TestEventRoundAttribution: Round -1 events resolve to the open round, or
// to the last delivered round when none is open.
func TestEventRoundAttribution(t *testing.T) {
	var got []EventRec
	agg := NewAggregator()
	r := NewRecorder(sinkFunc{onEvent: func(e EventRec) { got = append(got, e) }}, agg)
	r.RoundStart(1)
	r.Event(congest.Event{Kind: congest.EvShardArrive, Round: -1, Node: 2})
	r.RoundEnd(congest.RoundStats{Round: 1})
	r.Event(congest.Event{Kind: congest.EvCkpt, Round: -1})
	r.Event(congest.Event{Kind: congest.EvArena, Round: 7, Value: 9})
	if len(got) != 3 {
		t.Fatalf("got %d events, want 3", len(got))
	}
	if got[0].Round != 1 || got[0].Kind != "shard-arrive" {
		t.Errorf("open-round event = %+v, want round 1", got[0])
	}
	if got[1].Round != 1 {
		t.Errorf("post-delivery event round = %d, want last delivered 1", got[1].Round)
	}
	if got[2].Round != 7 || got[2].Value != 9 {
		t.Errorf("explicit-round event = %+v, want round 7 value 9", got[2])
	}
}

// sinkFunc adapts callbacks to Sink for tests.
type sinkFunc struct {
	onRound func(RoundRec)
	onEvent func(EventRec)
}

func (s sinkFunc) Round(r RoundRec) {
	if s.onRound != nil {
		s.onRound(r)
	}
}
func (s sinkFunc) Event(e EventRec) {
	if s.onEvent != nil {
		s.onEvent(e)
	}
}
func (s sinkFunc) Close() error { return nil }

// TestReplayIdentity is the issue's acceptance property: a live run traced
// to JSONL, replayed through fresh profile and Chrome sinks, reproduces
// the live sinks' output byte for byte — the stamps travel in the records,
// so nothing is re-measured on replay.
func TestReplayIdentity(t *testing.T) {
	for _, eng := range congest.Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			g := graph.GNPConnected(60, 0.1, 7)
			var trace, liveChrome bytes.Buffer
			liveAgg := NewAggregator()
			rec := NewRecorder(NewJSONL(&trace), liveAgg, NewChrome(&liveChrome))
			out := make([]int64, g.N())
			m, err := congest.NewNetwork(g, congest.Config{Engine: eng, Observer: rec}).
				RunStepped(echoFactory(out, 6))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := rec.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}

			liveProfile := liveAgg.Profile()
			if liveProfile.Rounds != m.Rounds {
				t.Errorf("profile rounds=%d, want Metrics.Rounds=%d", liveProfile.Rounds, m.Rounds)
			}
			if liveProfile.Msgs != m.Messages || liveProfile.Bits != m.Bits {
				t.Errorf("profile msgs/bits=%d/%d, want %d/%d", liveProfile.Msgs, liveProfile.Bits, m.Messages, m.Bits)
			}
			if liveProfile.Hist.Total() != m.Messages {
				t.Errorf("hist total=%d, want %d", liveProfile.Hist.Total(), m.Messages)
			}

			replayAgg := NewAggregator()
			var replayChrome bytes.Buffer
			rc := NewChrome(&replayChrome)
			if err := Replay(bytes.NewReader(trace.Bytes()), replayAgg, rc); err != nil {
				t.Fatalf("replay: %v", err)
			}
			if err := rc.Close(); err != nil {
				t.Fatalf("chrome close: %v", err)
			}
			if !reflect.DeepEqual(replayAgg.Profile(), liveProfile) {
				t.Errorf("replayed profile differs from live:\nlive:\n%s\nreplayed:\n%s",
					liveProfile, replayAgg.Profile())
			}
			if got, want := replayChrome.String(), liveChrome.String(); got != want {
				t.Errorf("replayed Chrome trace differs from live (%d vs %d bytes)", len(got), len(want))
			}
			var any []any
			if err := json.Unmarshal(liveChrome.Bytes(), &any); err != nil {
				t.Errorf("Chrome trace is not a JSON array: %v", err)
			}
			if s := liveProfile.String(); !strings.Contains(s, "round wall time") {
				t.Errorf("profile table missing distribution line:\n%s", s)
			}
		})
	}
}

// TestFillLedgerWall: segment wall times land on the measured phases, in
// order, skipping charged-only phases, and render in Ledger.String.
func TestFillLedgerWall(t *testing.T) {
	var l congest.Ledger
	l.RecordRun("part1", congest.Metrics{Rounds: 3, Messages: 15, Bits: 150})
	l.Charge("decomposition", 40)
	l.RecordRun("part2", congest.Metrics{Rounds: 1, Messages: 7, Bits: 70})

	r := NewRecorder()
	r.RoundStart(1)
	r.RoundEnd(congest.RoundStats{Round: 1, Messages: 10, Bits: 100})
	r.RoundStart(2)
	r.RoundEnd(congest.RoundStats{Round: 2, Messages: 15, Bits: 150})
	r.RoundStart(3)
	r.RoundEnd(congest.RoundStats{Round: 3, Messages: 15, Bits: 150})
	r.RoundStart(1)
	r.RoundEnd(congest.RoundStats{Round: 1, Messages: 7, Bits: 70})

	FillLedgerWall(&l, r)
	ph := l.Phases()
	if ph[0].WallNs <= 0 || ph[2].WallNs <= 0 {
		t.Errorf("measured phases missing wall time: %+v", ph)
	}
	if ph[1].WallNs != 0 {
		t.Errorf("charged-only phase got wall time %d, want 0", ph[1].WallNs)
	}
	if s := l.String(); !strings.Contains(s, "wall=") {
		t.Errorf("ledger string missing wall column:\n%s", s)
	}

	// The wall rows must survive a HostState-style encode/decode round trip.
	var l2 congest.Ledger
	if err := l2.RestoreState(l.AppendState(nil)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !reflect.DeepEqual(l2.Phases(), l.Phases()) {
		t.Errorf("phases after round trip = %+v, want %+v", l2.Phases(), l.Phases())
	}
}

// TestReplayErrors pins the failure modes of trace parsing.
func TestReplayErrors(t *testing.T) {
	cases := map[string]string{
		"malformed":    "{not json\n",
		"unknown-type": `{"t":"mystery"}` + "\n",
	}
	for name, in := range cases {
		if err := Replay(strings.NewReader(in), NewAggregator()); err == nil {
			t.Errorf("%s: replay accepted bad input", name)
		}
	}
	if err := Replay(strings.NewReader("\n\n"), NewAggregator()); err != nil {
		t.Errorf("blank lines rejected: %v", err)
	}
}

// TestProfilePercentiles checks the nearest-rank percentile math and the
// top-k ordering on a hand-built distribution.
func TestProfilePercentiles(t *testing.T) {
	agg := NewAggregator()
	for i := 1; i <= 100; i++ {
		agg.Round(RoundRec{Seg: 0, Round: i, WallNs: int64(i) * 1000, Msgs: int64(i)})
	}
	p := agg.Profile()
	if p.P50Ns != 50_000 || p.P90Ns != 90_000 || p.P99Ns != 99_000 || p.MaxNs != 100_000 {
		t.Errorf("percentiles p50=%d p90=%d p99=%d max=%d", p.P50Ns, p.P90Ns, p.P99Ns, p.MaxNs)
	}
	if len(p.Slowest) != topSlow || p.Slowest[0].Round != 100 || p.Slowest[4].Round != 96 {
		t.Errorf("slowest = %+v", p.Slowest)
	}
	// Ties break by (seg, round) ascending.
	agg2 := NewAggregator()
	agg2.Round(RoundRec{Seg: 1, Round: 2, WallNs: 10})
	agg2.Round(RoundRec{Seg: 0, Round: 9, WallNs: 10})
	agg2.Round(RoundRec{Seg: 0, Round: 3, WallNs: 10})
	s := agg2.Profile().Slowest
	if s[0].Seg != 0 || s[0].Round != 3 || s[2].Seg != 1 {
		t.Errorf("tie-break order = %+v", s)
	}
}

// TestChromeSweepPairing: sweep start/end events pair into one worker-lane
// span carrying the chunk count.
func TestChromeSweepPairing(t *testing.T) {
	var buf bytes.Buffer
	c := NewChrome(&buf)
	c.Event(EventRec{Seg: 0, Round: 1, Kind: "sweep-start", Node: 2, AtNs: 1000})
	c.Event(EventRec{Seg: 0, Round: 1, Kind: "sweep-end", Node: 2, Value: 5, AtNs: 4000})
	if err := c.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("output not a JSON array: %v\n%s", err, buf.String())
	}
	if len(evs) != 1 {
		t.Fatalf("got %d events, want 1 paired span:\n%s", len(evs), buf.String())
	}
	e := evs[0]
	if e["ph"] != "X" || e["tid"] != float64(3) || e["dur"] != float64(3) {
		t.Errorf("span = %v, want X span on tid 3 with dur 3µs", e)
	}
}
