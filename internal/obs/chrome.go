package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Chrome exports the record stream in the Chrome trace-event format
// (load the file at chrome://tracing or https://ui.perfetto.dev). Layout:
// each segment is a "process" (pid = segment); round delivery spans render
// on tid 0, and the stepped engine's per-worker sweep spans each get their
// own lane (tid = worker+1), so chunk-steal imbalance is visible as ragged
// lane ends. Other events render as instants on the emitting lane.
type Chrome struct {
	bw    *bufio.Writer
	c     io.Closer
	first bool
	err   error
	// open holds receipt stamps of sweep-start events awaiting their
	// sweep-end, keyed by (seg, worker).
	open map[[2]int]int64
}

var _ Sink = (*Chrome)(nil)

// NewChrome returns a Chrome trace sink writing to w. If w is also an
// io.Closer (a file), Close closes it after finishing the JSON array.
func NewChrome(w io.Writer) *Chrome {
	c := &Chrome{bw: bufio.NewWriter(w), first: true, open: map[[2]int]int64{}}
	if cl, ok := w.(io.Closer); ok {
		c.c = cl
	}
	c.raw("[")
	return c
}

func (c *Chrome) raw(s string) {
	if c.err == nil {
		_, c.err = c.bw.WriteString(s)
	}
}

// chromeEvent is one trace-event record. Timestamps and durations are in
// microseconds per the format; float64 keeps sub-microsecond round times
// from collapsing to zero-width spans.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

func (c *Chrome) emit(e chromeEvent) {
	if c.err != nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		c.err = err
		return
	}
	if !c.first {
		c.raw(",\n")
	}
	c.first = false
	_, c.err = c.bw.Write(b)
}

func us(ns int64) float64 { return float64(ns) / 1e3 }

// Round implements Sink: a complete "X" span on the segment's round lane.
func (c *Chrome) Round(r RoundRec) {
	c.emit(chromeEvent{
		Name: fmt.Sprintf("round %d", r.Round),
		Ph:   "X",
		Ts:   us(r.StartNs),
		Dur:  us(r.WallNs),
		Pid:  r.Seg,
		Tid:  0,
		Args: map[string]any{
			"live": r.Live,
			"msgs": r.Msgs,
			"bits": r.Bits,
		},
	})
}

// Event implements Sink: sweep start/end pairs become worker-lane spans,
// everything else an instant event.
func (c *Chrome) Event(e EventRec) {
	switch e.Kind {
	case "sweep-start":
		c.open[[2]int{e.Seg, e.Node}] = e.AtNs
		return
	case "sweep-end":
		key := [2]int{e.Seg, e.Node}
		start, ok := c.open[key]
		if !ok {
			start = e.AtNs // lone end (trace truncation): zero-width span
		}
		delete(c.open, key)
		c.emit(chromeEvent{
			Name: fmt.Sprintf("sweep r%d", e.Round),
			Ph:   "X",
			Ts:   us(start),
			Dur:  us(e.AtNs - start),
			Pid:  e.Seg,
			Tid:  e.Node + 1,
			Args: map[string]any{"chunks": e.Value},
		})
		return
	}
	tid := 0
	if e.Node >= 0 {
		tid = e.Node + 1
	}
	args := map[string]any{"value": e.Value, "round": e.Round}
	if e.Detail != "" {
		args["detail"] = e.Detail
	}
	c.emit(chromeEvent{
		Name: e.Kind,
		Ph:   "i",
		Ts:   us(e.AtNs),
		Pid:  e.Seg,
		Tid:  tid,
		S:    "t",
		Args: args,
	})
}

// Close terminates the JSON array, flushes, and closes the underlying
// writer if the sink owns one.
func (c *Chrome) Close() error {
	c.raw("]\n")
	if err := c.bw.Flush(); err != nil && c.err == nil {
		c.err = err
	}
	if c.c != nil {
		if err := c.c.Close(); err != nil && c.err == nil {
			c.err = err
		}
	}
	return c.err
}
