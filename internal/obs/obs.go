// Package obs is the engine observability layer: it turns the counters the
// deterministic congest engines emit through congest.Observer into a
// timestamped, diffable time series, and fans it out to pluggable sinks —
// a streaming JSONL trace (trace.go), an in-memory profile aggregator
// (profile.go) and a Chrome trace-event exporter (chrome.go).
//
// The division of labour is strict: the engines are deterministic packages
// whose only wall-clock reads are the audited Deadline checks, so their
// callbacks carry counters only; the Recorder here is the single place a
// telemetry timestamp is taken (the nondet analyzer grants exactly this
// package a wall-clock exemption, see internal/lint). Every sink sees the
// same stamped records, which is why a JSONL trace replayed through
// Replay reproduces bit-identical profiles: the stamps travel with the
// records instead of being re-taken per sink.
//
// Attaching a Recorder never changes a run: the conformance suite
// (internal/congest/conformance) proves outputs, metrics and sentinel
// classes stay byte-identical with and without one, on every engine and
// program form.
package obs

import (
	"sync"
	"time"

	"congestds/internal/congest"
)

// RoundRec is one delivered round, stamped and delta-ified: traffic fields
// are this round's contribution (the engines report cumulative counters;
// the Recorder subtracts), stamps are nanoseconds since the Recorder was
// created (monotonic).
type RoundRec struct {
	// Seg numbers the engine run within the Recorder's lifetime (a
	// pipeline such as mds runs several): 0-based, detected at RoundStart.
	Seg   int `json:"seg"`
	Round int `json:"round"`
	// StartNs/WallNs bound the round: receipt stamps of its RoundStart and
	// RoundEnd callbacks.
	StartNs int64 `json:"start_ns"`
	WallNs  int64 `json:"wall_ns"`
	Live    int   `json:"live"`
	Msgs    int64 `json:"msgs"`
	Bits    int64 `json:"bits"`
	// MaxMsgBits is cumulative (a run-level high-water mark, not a delta).
	MaxMsgBits int             `json:"max_msg_bits"`
	Hist       congest.MsgHist `json:"hist"`
}

// EventRec is one engine event, stamped on receipt.
type EventRec struct {
	Seg    int    `json:"seg"`
	Round  int    `json:"round"`
	Kind   string `json:"kind"`
	Node   int    `json:"node"`
	Value  int64  `json:"value"`
	AtNs   int64  `json:"at_ns"`
	Detail string `json:"detail,omitempty"`
}

// Sink consumes the stamped record stream. Recorder serializes calls, so
// implementations need no locking of their own against the Recorder (but
// Aggregator locks anyway: Replay feeds sinks directly).
type Sink interface {
	Round(r RoundRec)
	Event(e EventRec)
	// Close flushes and releases the sink (closing files it owns).
	Close() error
}

// Segment summarizes one engine run observed by a Recorder.
type Segment struct {
	Rounds  int   // RoundEnd count (= that run's Metrics.Rounds)
	WallNs  int64 // last RoundEnd stamp − first RoundStart stamp
	startNs int64
}

// Recorder implements congest.Observer: it stamps every callback once with
// a monotonic clock and fans the resulting records to its sinks. It is the
// only wall-clock reader in the telemetry path — sinks receive stamps,
// they never take their own. Safe for the concurrent Event emission the
// Observer contract allows.
type Recorder struct {
	start time.Time

	mu    sync.Mutex
	sinks []Sink
	segs  []Segment

	seg       int // current segment; -1 before the first RoundStart
	openRound int // round opened by RoundStart, 0 = none
	openAt    int64
	lastRound int // last delivered round in the current segment

	// Previous RoundEnd cumulatives of the current segment, for deltas.
	prevMsgs int64
	prevBits int64
	prevHist congest.MsgHist
}

var _ congest.Observer = (*Recorder)(nil)

// NewRecorder creates a Recorder fanning out to the given sinks. The
// time.Now here and the time.Since in now() are the telemetry path's only
// wall-clock reads, sanctioned by the nondet analyzer's obs carve-out.
func NewRecorder(sinks ...Sink) *Recorder {
	r := &Recorder{start: time.Now(), seg: -1}
	r.sinks = sinks
	return r
}

// now returns nanoseconds since the Recorder was created (monotonic: the
// time package carries the monotonic reading through Sub).
func (r *Recorder) now() int64 {
	return int64(time.Since(r.start))
}

// RoundStart implements congest.Observer. A RoundStart that cannot be a
// continuation of the current segment — one arrives while a round is still
// open (the previous run ended mid-compute), or with a non-increasing
// round number — begins a new segment; the dangling open round, if any, is
// discarded (the run ended during that compute, so there was no delivery
// to record).
func (r *Recorder) RoundStart(round int) {
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg < 0 || r.openRound != 0 || round <= r.lastRound {
		r.seg++
		r.segs = append(r.segs, Segment{startNs: at})
		r.lastRound = 0
		r.prevMsgs, r.prevBits, r.prevHist = 0, 0, congest.MsgHist{}
	}
	r.openRound = round
	r.openAt = at
}

// RoundEnd implements congest.Observer.
func (r *Recorder) RoundEnd(s congest.RoundStats) {
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.seg < 0 {
		// Defensive: a RoundEnd with no prior RoundStart (no engine does
		// this) still lands in a segment rather than being dropped.
		r.seg = 0
		r.segs = append(r.segs, Segment{startNs: at})
	}
	startNs := r.openAt
	if r.openRound == 0 {
		startNs = at
	}
	rec := RoundRec{
		Seg:        r.seg,
		Round:      s.Round,
		StartNs:    startNs,
		WallNs:     at - startNs,
		Live:       s.Live,
		Msgs:       s.Messages - r.prevMsgs,
		Bits:       s.Bits - r.prevBits,
		MaxMsgBits: s.MaxMsgBits,
	}
	for i := range s.Hist {
		rec.Hist[i] = s.Hist[i] - r.prevHist[i]
	}
	r.prevMsgs, r.prevBits, r.prevHist = s.Messages, s.Bits, s.Hist
	r.lastRound = s.Round
	r.openRound = 0
	seg := &r.segs[r.seg]
	seg.Rounds++
	seg.WallNs = at - seg.startNs
	for _, s := range r.sinks {
		s.Round(rec)
	}
}

// Event implements congest.Observer. Events with Round -1 (emitted outside
// the engine's delivery lock) are attributed to the round in progress.
func (r *Recorder) Event(e congest.Event) {
	at := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	round := e.Round
	if round < 0 {
		if round = r.openRound; round == 0 {
			round = r.lastRound
		}
	}
	seg := r.seg
	if seg < 0 {
		seg = 0
	}
	rec := EventRec{
		Seg:    seg,
		Round:  round,
		Kind:   e.Kind.String(),
		Node:   e.Node,
		Value:  e.Value,
		AtNs:   at,
		Detail: e.Detail,
	}
	for _, s := range r.sinks {
		s.Event(rec)
	}
}

// Segments returns the engine runs observed so far, in order.
func (r *Recorder) Segments() []Segment {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Segment(nil), r.segs...)
}

// Close closes every sink, returning the first error.
func (r *Recorder) Close() error {
	r.mu.Lock()
	sinks := r.sinks
	r.sinks = nil
	r.mu.Unlock()
	var first error
	for _, s := range sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FillLedgerWall attributes the Recorder's segment wall times to the
// ledger's measured phases: the i-th segment with deliveries maps to the
// i-th phase with measured rounds, in order — pipelines record phases in
// execution order and every measured phase is one engine run. Charged-only
// phases (structural simulation, no engine run) are skipped on the ledger
// side; delivery-less segments are skipped on the recorder side. Purely
// advisory: mismatched counts fill the prefix that does line up.
func FillLedgerWall(l *congest.Ledger, r *Recorder) {
	segs := r.Segments()
	si := 0
	for pi, p := range l.Phases() {
		if p.Rounds == 0 {
			continue
		}
		for si < len(segs) && segs[si].Rounds == 0 {
			si++
		}
		if si >= len(segs) {
			return
		}
		l.SetPhaseWall(pi, segs[si].WallNs)
		si++
	}
}
