package obs

import (
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/testmem"
)

// raceEnabled is set by race_test.go under -race; the memory smoke test is
// meaningless with the race runtime's shadow memory inflating RSS.
var raceEnabled = false

// TestSteppedMillionNodeTracedRSS is CI's observability memory smoke: a
// million-node torus on the stepped engine with a Recorder streaming JSONL
// to disk must stay within the same RSS envelope as the untraced run
// (TestSteppedMillionNodeTorus in internal/congest) — telemetry streams,
// it must not accumulate per-node or per-round state proportional to the
// run. GOMEMLIMIT-style clamp plus a VmHWM ceiling, as in the untraced
// twin.
func TestSteppedMillionNodeTracedRSS(t *testing.T) {
	if testing.Short() {
		t.Skip("million-node smoke test skipped in -short")
	}
	if raceEnabled {
		t.Skip("race-detector shadow memory breaks the RSS budget")
	}
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(450 << 20))

	f, err := os.Create(filepath.Join(t.TempDir(), "trace.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator()
	rec := NewRecorder(NewJSONL(f), agg)

	g := graph.Torus(1000, 1000)
	out := make([]int64, g.N())
	m, err := congest.NewNetwork(g, congest.Config{Engine: congest.EngineStepped, Observer: rec}).
		RunStepped(echoFactory(out, 16))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := rec.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if m.Rounds != 16 {
		t.Fatalf("rounds=%d, want 16", m.Rounds)
	}
	p := agg.Profile()
	if p.Rounds != m.Rounds || p.Msgs != m.Messages {
		t.Errorf("profile rounds/msgs=%d/%d, want %d/%d", p.Rounds, p.Msgs, m.Rounds, m.Messages)
	}
	if hwm := testmem.ReadVmHWM(); hwm > 0 && hwm >= 700<<20 {
		t.Errorf("peak RSS %d MiB under JSONL observer, want < 700 MiB", hwm>>20)
	}
	runtime.KeepAlive(out)
}
