package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"congestds/internal/congest"
)

// Aggregator is the in-memory Sink behind `mdsrun -profile`: it retains
// every round record (rounds are bounded by MaxRounds, so this is small)
// and summarizes events, then derives a Profile. Everything it computes is
// a pure function of the record stream — no clock reads — so a live run
// and a Replay of that run's JSONL trace yield identical profiles.
type Aggregator struct {
	mu     sync.Mutex
	rounds []RoundRec
	events map[string]*EventSummary
}

var _ Sink = (*Aggregator)(nil)

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{events: map[string]*EventSummary{}}
}

// Round implements Sink.
func (a *Aggregator) Round(r RoundRec) {
	a.mu.Lock()
	a.rounds = append(a.rounds, r)
	a.mu.Unlock()
}

// Event implements Sink.
func (a *Aggregator) Event(e EventRec) {
	a.mu.Lock()
	s := a.events[e.Kind]
	if s == nil {
		s = &EventSummary{Kind: e.Kind}
		a.events[e.Kind] = s
	}
	s.Count++
	s.Sum += e.Value
	if e.Value > s.Max {
		s.Max = e.Value
	}
	a.mu.Unlock()
}

// Close implements Sink (nothing to release).
func (a *Aggregator) Close() error { return nil }

// EventSummary folds every event of one kind: Sum/Max are over the
// events' Value field (chunk steal counts for sweep-end, arena bytes for
// arena, parked waiters for wake, ...).
type EventSummary struct {
	Kind  string
	Count int64
	Sum   int64
	Max   int64
}

// SlowRound identifies one of the slowest rounds of a run.
type SlowRound struct {
	Seg    int
	Round  int
	WallNs int64
	Msgs   int64
	Live   int
}

// Profile is the derived summary of a record stream.
type Profile struct {
	Segments   int
	Rounds     int
	Msgs       int64
	Bits       int64
	MaxMsgBits int
	WallNs     int64 // sum of per-round wall times
	Hist       congest.MsgHist

	// Round wall-time distribution, nanoseconds.
	P50Ns, P90Ns, P99Ns, MaxNs int64

	Slowest []SlowRound    // top rounds by wall time, slowest first
	Events  []EventSummary // sorted by kind
}

// topSlow is how many rounds Profile.Slowest retains.
const topSlow = 5

// Profile derives the summary of everything aggregated so far.
func (a *Aggregator) Profile() Profile {
	a.mu.Lock()
	defer a.mu.Unlock()
	var p Profile
	segs := map[int]bool{}
	walls := make([]int64, 0, len(a.rounds))
	for _, r := range a.rounds {
		segs[r.Seg] = true
		p.Rounds++
		p.Msgs += r.Msgs
		p.Bits += r.Bits
		if r.MaxMsgBits > p.MaxMsgBits {
			p.MaxMsgBits = r.MaxMsgBits
		}
		p.WallNs += r.WallNs
		p.Hist.Merge(r.Hist)
		walls = append(walls, r.WallNs)
	}
	p.Segments = len(segs)
	if len(walls) > 0 {
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		p.P50Ns = percentile(walls, 50)
		p.P90Ns = percentile(walls, 90)
		p.P99Ns = percentile(walls, 99)
		p.MaxNs = walls[len(walls)-1]
	}
	slow := append([]RoundRec(nil), a.rounds...)
	// Slowest first; (seg, round) ascending breaks wall-time ties so the
	// listing is deterministic across live and replayed runs.
	sort.Slice(slow, func(i, j int) bool {
		if slow[i].WallNs != slow[j].WallNs {
			return slow[i].WallNs > slow[j].WallNs
		}
		if slow[i].Seg != slow[j].Seg {
			return slow[i].Seg < slow[j].Seg
		}
		return slow[i].Round < slow[j].Round
	})
	for i := 0; i < len(slow) && i < topSlow; i++ {
		r := slow[i]
		p.Slowest = append(p.Slowest, SlowRound{
			Seg: r.Seg, Round: r.Round, WallNs: r.WallNs, Msgs: r.Msgs, Live: r.Live,
		})
	}
	kinds := make([]string, 0, len(a.events))
	for k := range a.events {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		p.Events = append(p.Events, *a.events[k])
	}
	return p
}

// percentile returns the nearest-rank q-th percentile of sorted (ascending)
// samples.
func percentile(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (q*len(sorted) + 99) / 100 // ceil(q/100 * n), nearest-rank
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func durNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

// String renders the profile as the table `mdsrun -profile` prints.
func (p Profile) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "profile: %d segment(s), %d rounds, %d msgs, %d bits (max msg %d bits), wall %s\n",
		p.Segments, p.Rounds, p.Msgs, p.Bits, p.MaxMsgBits, durNs(p.WallNs))
	fmt.Fprintf(&b, "round wall time: p50=%s p90=%s p99=%s max=%s\n",
		durNs(p.P50Ns), durNs(p.P90Ns), durNs(p.P99Ns), durNs(p.MaxNs))
	if len(p.Slowest) > 0 {
		fmt.Fprintf(&b, "slowest rounds:\n")
		fmt.Fprintf(&b, "  %-4s %-6s %12s %10s %8s\n", "seg", "round", "wall", "msgs", "live")
		for _, s := range p.Slowest {
			fmt.Fprintf(&b, "  %-4d %-6d %12s %10d %8d\n", s.Seg, s.Round, durNs(s.WallNs), s.Msgs, s.Live)
		}
	}
	if p.Hist.Total() > 0 {
		fmt.Fprintf(&b, "message size histogram (payload bits):\n")
		for i := range p.Hist {
			if p.Hist[i] == 0 {
				continue
			}
			fmt.Fprintf(&b, "  %-12s %10d\n", congest.BucketLabel(i), p.Hist[i])
		}
	}
	if len(p.Events) > 0 {
		fmt.Fprintf(&b, "events:\n")
		fmt.Fprintf(&b, "  %-14s %8s %14s %14s\n", "kind", "count", "sum", "max")
		for _, e := range p.Events {
			fmt.Fprintf(&b, "  %-14s %8d %14d %14d\n", e.Kind, e.Count, e.Sum, e.Max)
		}
	}
	return b.String()
}
