// Package setcover implements the paper's Section 5 generalization: the
// dominating set machinery applied to minimum set cover. In the distributed
// formulation, a node is created for each set and each element, with an edge
// when the set contains the element; our abstract rounding instances carry
// that bipartite structure directly (value sites = sets, constraints =
// elements), so the same derandomized one-shot rounding applies verbatim.
package setcover

import (
	"fmt"
	"math"
	"sort"

	"congestds/internal/coloring"
	"congestds/internal/derand"
	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/rounding"
)

// Instance is a set cover instance: elements 0..NumElements-1 and sets given
// as element lists.
type Instance struct {
	NumElements int
	Sets        [][]int
}

// Validate checks that every element is coverable.
func (in *Instance) Validate() error {
	if in.NumElements < 0 {
		return fmt.Errorf("setcover: negative element count")
	}
	covered := make([]bool, in.NumElements)
	for si, s := range in.Sets {
		for _, e := range s {
			if e < 0 || e >= in.NumElements {
				return fmt.Errorf("setcover: set %d contains invalid element %d", si, e)
			}
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("setcover: element %d not contained in any set", e)
		}
	}
	return nil
}

// MaxSetSize returns the largest set cardinality (the Δ̃ analogue).
func (in *Instance) MaxSetSize() int {
	m := 0
	for _, s := range in.Sets {
		if len(s) > m {
			m = len(s)
		}
	}
	return m
}

// Result is the output of Solve.
type Result struct {
	// Cover lists the chosen set indices.
	Cover []int
	// FractionalSize is the size of the intermediate fractional cover.
	FractionalSize float64
	// Bound is the guaranteed approximation factor of the rounding step
	// relative to the fractional cover: 1 + ln(smax+1) (+ the fractional
	// solver's own loss, cf. DESIGN.md substitution 4).
	Bound float64
}

// Solve computes a deterministic approximate set cover: a fractional
// threshold-greedy cover followed by the derandomized one-shot rounding of
// Lemma 3.10 with a distance-2 coloring of the set-element structure.
func Solve(in *Instance, eps float64) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if eps <= 0 || eps > 1 {
		return nil, fmt.Errorf("setcover: eps=%v out of (0,1]", eps)
	}
	nSets := len(in.Sets)
	if in.NumElements == 0 {
		return &Result{Bound: 1}, nil
	}
	ctx := fractional.ScaleFor(nSets + in.NumElements)
	x := fractionalCover(in, ctx, eps)

	// One-shot instance: value sites = sets, constraints = elements.
	smax := in.MaxSetSize()
	lnMul := ctx.FromFloat(math.Log(float64(smax + 1)))
	inst := &rounding.Instance{
		Ctx: ctx,
		X:   make([]fixpoint.Value, nSets),
		P:   make([]fixpoint.Value, nSets),
	}
	var fracSize fixpoint.Value
	for s := 0; s < nSets; s++ {
		fracSize = ctx.Add(fracSize, x[s])
		v := ctx.Clamp1(ctx.MulUp(x[s], lnMul))
		inst.X[s] = v
		inst.P[s] = v
	}
	memberSets := make([][]int32, in.NumElements)
	for si, s := range in.Sets {
		for _, e := range s {
			memberSets[e] = append(memberSets[e], int32(si))
		}
	}
	for e := 0; e < in.NumElements; e++ {
		sort.Slice(memberSets[e], func(a, b int) bool { return memberSets[e][a] < memberSets[e][b] })
		inst.C = append(inst.C, ctx.One())
		inst.Members = append(inst.Members, memberSets[e])
		inst.Owner = append(inst.Owner, memberSets[e][0])
	}
	proc, err := rounding.NewProcess(inst)
	if err != nil {
		return nil, err
	}
	part := make([]bool, nSets)
	ids := make([]int64, nSets)
	for s := 0; s < nSets; s++ {
		part[s] = !inst.Deterministic(s)
		ids[s] = int64(s + 1)
	}
	col := coloring.Distance2Bipartite(nSets, inst.Members, part, ids)
	out, err := derand.ByColoring(proc, col, nil, 1)
	if err != nil {
		return nil, err
	}
	res := &Result{
		FractionalSize: ctx.Float(fracSize),
		Bound:          1 + math.Log(float64(smax+1)),
	}
	for s, v := range out.Values {
		if v == ctx.One() {
			res.Cover = append(res.Cover, s)
		}
	}
	if err := checkCover(in, res.Cover); err != nil {
		return nil, fmt.Errorf("setcover: internal: %w", err)
	}
	return res, nil
}

// fractionalCover runs the threshold-batched fractional greedy of
// fractional.Initial on the set system (structural form).
func fractionalCover(in *Instance, ctx fixpoint.Ctx, eps float64) []fixpoint.Value {
	nSets := len(in.Sets)
	x := make([]fixpoint.Value, nSets)
	cov := make([]fixpoint.Value, in.NumElements)
	onePlusEps := ctx.Add(ctx.One(), ctx.FromFloat(eps))
	theta := fixpoint.Value(uint64(in.MaxSetSize())) * ctx.One()
	if theta == 0 {
		theta = ctx.One()
	}
	for {
		den := ctx.MulUp(theta, onePlusEps)
		inc := ctx.DivDown(ctx.One(), den)
		if inc == 0 {
			inc = ctx.Eps()
		}
		iters := int(uint64(den)>>ctx.Scale()) + 2
		for it := 0; it < iters; it++ {
			// Residual degrees.
			raised := false
			for s := 0; s < nSets; s++ {
				if x[s] >= ctx.One() {
					continue
				}
				d := 0
				for _, e := range in.Sets[s] {
					if cov[e] < ctx.One() {
						d++
					}
				}
				if fixpoint.Value(uint64(d))*ctx.One() >= theta {
					nx := ctx.Clamp1(ctx.Add(x[s], inc))
					delta := nx - x[s]
					x[s] = nx
					for _, e := range in.Sets[s] {
						cov[e] = ctx.Add(cov[e], delta)
					}
					raised = true
				}
			}
			if !raised {
				break
			}
		}
		if theta == ctx.One() {
			break
		}
		theta = ctx.DivDown(theta, onePlusEps)
		if theta < ctx.One() {
			theta = ctx.One()
		}
	}
	return x
}

// Greedy is the classical greedy set cover baseline.
func Greedy(in *Instance) []int {
	covered := make([]bool, in.NumElements)
	remaining := in.NumElements
	var cover []int
	used := make([]bool, len(in.Sets))
	for remaining > 0 {
		best, bestGain := -1, 0
		for s := range in.Sets {
			if used[s] {
				continue
			}
			gain := 0
			for _, e := range in.Sets[s] {
				if !covered[e] {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = s, gain
			}
		}
		if best < 0 {
			break
		}
		used[best] = true
		cover = append(cover, best)
		for _, e := range in.Sets[best] {
			if !covered[e] {
				covered[e] = true
				remaining--
			}
		}
	}
	sort.Ints(cover)
	return cover
}

// checkCover verifies that the chosen sets cover every element.
func checkCover(in *Instance, cover []int) error {
	covered := make([]bool, in.NumElements)
	for _, s := range cover {
		for _, e := range in.Sets[s] {
			covered[e] = true
		}
	}
	for e, ok := range covered {
		if !ok {
			return fmt.Errorf("element %d uncovered", e)
		}
	}
	return nil
}
