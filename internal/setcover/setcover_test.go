package setcover

import (
	"math/rand/v2"
	"testing"
)

func TestValidate(t *testing.T) {
	ok := &Instance{NumElements: 3, Sets: [][]int{{0, 1}, {2}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	uncoverable := &Instance{NumElements: 3, Sets: [][]int{{0, 1}}}
	if err := uncoverable.Validate(); err == nil {
		t.Error("uncoverable element accepted")
	}
	bad := &Instance{NumElements: 2, Sets: [][]int{{0, 5}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range element accepted")
	}
}

func TestSolveSimpleInstances(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
		opt  int
	}{
		{"one-set", &Instance{NumElements: 4, Sets: [][]int{{0, 1, 2, 3}}}, 1},
		{"partition", &Instance{NumElements: 4, Sets: [][]int{{0, 1}, {2, 3}}}, 2},
		{"overlap", &Instance{NumElements: 3, Sets: [][]int{{0, 1}, {1, 2}, {0, 2}}}, 2},
		{"singletons", &Instance{NumElements: 3, Sets: [][]int{{0}, {1}, {2}}}, 3},
		{"big-plus-small", &Instance{
			NumElements: 6,
			Sets:        [][]int{{0, 1, 2, 3, 4, 5}, {0}, {1}, {2}},
		}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Solve(tt.in, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			if err := checkCover(tt.in, res.Cover); err != nil {
				t.Fatal(err)
			}
			bound := res.Bound * float64(tt.opt) * 1.6 // fractional-phase slack
			if float64(len(res.Cover)) > bound+1 {
				t.Errorf("cover size %d far above bound %.2f (OPT=%d)",
					len(res.Cover), bound, tt.opt)
			}
		})
	}
}

func TestSolveValidation(t *testing.T) {
	in := &Instance{NumElements: 1, Sets: [][]int{{0}}}
	if _, err := Solve(in, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Solve(in, 2); err == nil {
		t.Error("eps=2 accepted")
	}
}

func TestSolveEmpty(t *testing.T) {
	res, err := Solve(&Instance{NumElements: 0}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cover) != 0 {
		t.Error("empty instance should yield empty cover")
	}
}

func TestGreedyBaseline(t *testing.T) {
	in := &Instance{NumElements: 5, Sets: [][]int{{0, 1, 2}, {2, 3}, {3, 4}, {4}}}
	cover := Greedy(in)
	if err := checkCover(in, cover); err != nil {
		t.Fatal(err)
	}
	if len(cover) > 3 {
		t.Errorf("greedy used %d sets", len(cover))
	}
}

func TestSolveRandomInstances(t *testing.T) {
	r := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 10; trial++ {
		nElem := 20 + r.IntN(30)
		nSets := 10 + r.IntN(20)
		in := &Instance{NumElements: nElem}
		for s := 0; s < nSets; s++ {
			size := 1 + r.IntN(8)
			set := make([]int, 0, size)
			seen := map[int]bool{}
			for len(set) < size {
				e := r.IntN(nElem)
				if !seen[e] {
					seen[e] = true
					set = append(set, e)
				}
			}
			in.Sets = append(in.Sets, set)
		}
		// Ensure coverage with singletons.
		covered := make([]bool, nElem)
		for _, s := range in.Sets {
			for _, e := range s {
				covered[e] = true
			}
		}
		for e, ok := range covered {
			if !ok {
				in.Sets = append(in.Sets, []int{e})
			}
		}
		res, err := Solve(in, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if err := checkCover(in, res.Cover); err != nil {
			t.Fatal(err)
		}
		greedy := Greedy(in)
		// The derandomized cover should be in the same ballpark as greedy.
		if len(res.Cover) > 3*len(greedy)+3 {
			t.Errorf("trial %d: cover %d vs greedy %d", trial, len(res.Cover), len(greedy))
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := &Instance{NumElements: 10, Sets: [][]int{
		{0, 1, 2}, {2, 3, 4}, {4, 5, 6}, {6, 7, 8}, {8, 9}, {1, 3, 5}, {0, 9},
	}}
	a, err := Solve(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cover) != len(b.Cover) {
		t.Fatal("non-deterministic")
	}
	for i := range a.Cover {
		if a.Cover[i] != b.Cover[i] {
			t.Fatal("non-deterministic cover")
		}
	}
}
