// Package fractional implements constraint fractional dominating sets
// (Definition 2.1 of the paper) and the computation of the initial
// fractional solution (Lemma 2.1, after [KMW06]).
package fractional

import (
	"fmt"

	"congestds/internal/fixpoint"
	"congestds/internal/graph"
)

// CFDS is a constraint fractional dominating set (x, c) over a graph: node v
// carries a fractional value X[v] ∈ [0,1] and a constraint C[v] ∈ [0,1]; it
// is feasible when Σ_{u∈N(v)} X[u] ≥ C[v] for the inclusive neighbourhood
// N(v). All values are transmittable fixed-point numbers in Ctx's scale.
type CFDS struct {
	Ctx fixpoint.Ctx
	X   []fixpoint.Value
	C   []fixpoint.Value
}

// NewFDS returns a fractional dominating set skeleton (all constraints 1,
// all values 0) for n nodes.
func NewFDS(ctx fixpoint.Ctx, n int) *CFDS {
	f := &CFDS{Ctx: ctx, X: make([]fixpoint.Value, n), C: make([]fixpoint.Value, n)}
	for v := range f.C {
		f.C[v] = ctx.One()
	}
	return f
}

// Clone returns a deep copy.
func (f *CFDS) Clone() *CFDS {
	return &CFDS{
		Ctx: f.Ctx,
		X:   append([]fixpoint.Value(nil), f.X...),
		C:   append([]fixpoint.Value(nil), f.C...),
	}
}

// N returns the number of nodes.
func (f *CFDS) N() int { return len(f.X) }

// Size returns Σ_v X[v] (the paper's "size of the CFDS").
func (f *CFDS) Size() fixpoint.Value {
	var s fixpoint.Value
	for _, x := range f.X {
		s = f.Ctx.Add(s, x)
	}
	return s
}

// SizeFloat returns the size as a float64 for reporting.
func (f *CFDS) SizeFloat() float64 { return f.Ctx.Float(f.Size()) }

// Coverage returns Σ_{u∈N(v)} X[u] for node v on g.
func (f *CFDS) Coverage(g *graph.Graph, v int) fixpoint.Value {
	s := f.X[v]
	for _, u := range g.Neighbors(v) {
		s = f.Ctx.Add(s, f.X[u])
	}
	return s
}

// Check verifies feasibility on g: every node's coverage meets its
// constraint and every value is in [0,1]. It returns a descriptive error for
// the first violation.
func (f *CFDS) Check(g *graph.Graph) error {
	if g.N() != f.N() {
		return fmt.Errorf("fractional: CFDS has %d nodes, graph has %d", f.N(), g.N())
	}
	one := f.Ctx.One()
	for v, x := range f.X {
		if x > one {
			return fmt.Errorf("fractional: x(%d)=%s exceeds 1", v, f.Ctx.String(x))
		}
		if f.C[v] > one {
			return fmt.Errorf("fractional: c(%d)=%s exceeds 1", v, f.Ctx.String(f.C[v]))
		}
	}
	for v := range f.X {
		if cov := f.Coverage(g, v); cov < f.C[v] {
			return fmt.Errorf("fractional: node %d uncovered: coverage %s < constraint %s",
				v, f.Ctx.String(cov), f.Ctx.String(f.C[v]))
		}
	}
	return nil
}

// Fractionality returns the smallest nonzero value (the paper's λ for a
// λ-fractional solution), or 0 if all values are zero.
func (f *CFDS) Fractionality() fixpoint.Value {
	var min fixpoint.Value
	for _, x := range f.X {
		if x > 0 && (min == 0 || x < min) {
			min = x
		}
	}
	return min
}

// Integral reports whether every value is 0 or 1.
func (f *CFDS) Integral() bool {
	one := f.Ctx.One()
	for _, x := range f.X {
		if x != 0 && x != one {
			return false
		}
	}
	return true
}

// Set returns the nodes with value 1 (the dominating set, when Integral).
func (f *CFDS) Set() []int {
	var s []int
	one := f.Ctx.One()
	for v, x := range f.X {
		if x == one {
			s = append(s, v)
		}
	}
	return s
}

// ScaleFor returns the fixed-point scale used for an n-node instance,
// mirroring the paper's transmittable precision ι = Θ(log n) while keeping
// sums of n+1 terms exact in uint64 (see DESIGN.md, substitution 6).
func ScaleFor(n int) fixpoint.Ctx {
	logn := 1
	for (1 << logn) < n {
		logn++
	}
	s := 5 * logn
	if s < 12 {
		s = 12
	}
	if s > 44 {
		s = 44
	}
	return fixpoint.MustNew(uint(s))
}
