package fractional

import (
	"testing"

	"congestds/internal/congest"
	"congestds/internal/fixpoint"
	"congestds/internal/graph"
)

func TestNewFDSDefaults(t *testing.T) {
	ctx := fixpoint.Default()
	f := NewFDS(ctx, 5)
	if f.N() != 5 {
		t.Fatalf("N=%d", f.N())
	}
	for v := 0; v < 5; v++ {
		if f.X[v] != 0 || f.C[v] != ctx.One() {
			t.Errorf("node %d not initialized to (0, 1)", v)
		}
	}
	if f.Size() != 0 {
		t.Error("empty FDS has nonzero size")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	g := graph.Path(3)
	ctx := fixpoint.Default()
	f := NewFDS(ctx, 3)
	if err := f.Check(g); err == nil {
		t.Error("all-zero FDS accepted")
	}
	f.X[1] = ctx.One() // centre dominates the path
	if err := f.Check(g); err != nil {
		t.Errorf("valid FDS rejected: %v", err)
	}
	f.X[0] = ctx.Add(ctx.One(), ctx.One()) // x > 1
	if err := f.Check(g); err == nil {
		t.Error("x>1 accepted")
	}
	f.X[0] = 0
	f2 := NewFDS(ctx, 2)
	if err := f2.Check(g); err == nil {
		t.Error("size mismatch accepted")
	}
}

func TestFractionalCoverageHalves(t *testing.T) {
	// Two halves of 1/2 cover a constraint of 1.
	g := graph.Path(3)
	ctx := fixpoint.Default()
	f := NewFDS(ctx, 3)
	f.X[0] = ctx.Half()
	f.X[2] = ctx.Half()
	// Node 1 sees 1/2+1/2 = 1; nodes 0 and 2 see 1/2 < 1.
	if cov := f.Coverage(g, 1); cov != ctx.One() {
		t.Errorf("coverage=%s, want 1", ctx.String(cov))
	}
	if err := f.Check(g); err == nil {
		t.Error("endpoints are uncovered; Check should fail")
	}
}

func TestFractionalityAndIntegral(t *testing.T) {
	ctx := fixpoint.Default()
	f := NewFDS(ctx, 4)
	if f.Fractionality() != 0 {
		t.Error("fractionality of zero vector should be 0")
	}
	f.X[0] = ctx.One()
	f.X[1] = ctx.Half()
	if f.Fractionality() != ctx.Half() {
		t.Error("fractionality wrong")
	}
	if f.Integral() {
		t.Error("half value reported integral")
	}
	f.X[1] = ctx.One()
	if !f.Integral() {
		t.Error("0/1 vector not integral")
	}
	set := f.Set()
	if len(set) != 2 || set[0] != 0 || set[1] != 1 {
		t.Errorf("Set=%v", set)
	}
}

func TestCloneIndependent(t *testing.T) {
	ctx := fixpoint.Default()
	f := NewFDS(ctx, 2)
	g := f.Clone()
	g.X[0] = ctx.One()
	if f.X[0] != 0 {
		t.Error("Clone aliases X")
	}
}

func TestScaleFor(t *testing.T) {
	if s := ScaleFor(4).Scale(); s != 12 {
		t.Errorf("ScaleFor(4)=%d, want 12", s)
	}
	if s := ScaleFor(256).Scale(); s != 40 {
		t.Errorf("ScaleFor(256)=%d, want 40", s)
	}
	if s := ScaleFor(1 << 20).Scale(); s != 44 {
		t.Errorf("ScaleFor(2^20)=%d, want 44 (capped)", s)
	}
}

func TestInitialFeasibleAcrossFamilies(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path16", graph.Path(16)},
		{"cycle15", graph.Cycle(15)},
		{"star20", graph.Star(20)},
		{"grid5x5", graph.Grid(5, 5)},
		{"gnp40", graph.GNPConnected(40, 0.12, 3)},
		{"caterpillar", graph.Caterpillar(6, 3)},
		{"single", graph.Path(1)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			net := congest.NewNetwork(tt.g, congest.Config{})
			var ledger congest.Ledger
			f, err := Initial(net, &ledger, InitialParams{Eps: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Check(tt.g); err != nil {
				t.Fatalf("infeasible: %v", err)
			}
			// Fractionality floor from Lemma 2.1.
			floor := FloorValue(f.Ctx, 0.5, tt.g.MaxDegree())
			if fr := f.Fractionality(); fr < floor {
				t.Errorf("fractionality %s below floor %s",
					f.Ctx.String(fr), f.Ctx.String(floor))
			}
			if ledger.Metrics().Rounds == 0 && tt.g.N() > 1 {
				t.Error("no rounds recorded")
			}
		})
	}
}

func TestInitialSizeReasonable(t *testing.T) {
	// On a star, OPT=1; the fractional solution should be O(1)+n·floor.
	g := graph.Star(50)
	net := congest.NewNetwork(g, congest.Config{})
	f, err := Initial(net, nil, InitialParams{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	size := f.SizeFloat()
	// Floor contributes at most n·ε/(2Δ̃) = 50·0.5/100 = 0.25.
	if size > 3.5 {
		t.Errorf("fractional size %v too large for a star (OPT=1)", size)
	}
}

func TestInitialDeterministic(t *testing.T) {
	g := graph.GNPConnected(30, 0.15, 11)
	run := func() []fixpoint.Value {
		net := congest.NewNetwork(g, congest.Config{})
		f, err := Initial(net, nil, InitialParams{Eps: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		return f.X
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs across runs", v)
		}
	}
}

func TestInitialValidation(t *testing.T) {
	g := graph.Path(4)
	net := congest.NewNetwork(g, congest.Config{})
	if _, err := Initial(net, nil, InitialParams{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Initial(net, nil, InitialParams{Eps: 1.5}); err == nil {
		t.Error("eps>1 accepted")
	}
}

func TestInitialMessageBudgetRespected(t *testing.T) {
	// The run must not violate the CONGEST bandwidth (Run errors if so).
	g := graph.GNPConnected(64, 0.1, 2)
	net := congest.NewNetwork(g, congest.Config{Model: congest.Congest})
	var ledger congest.Ledger
	if _, err := Initial(net, &ledger, InitialParams{Eps: 0.5}); err != nil {
		t.Fatalf("CONGEST run failed: %v", err)
	}
	m := ledger.Metrics()
	if m.MaxMsgBits > m.BandwidthBits {
		t.Errorf("max message %d bits exceeds budget %d", m.MaxMsgBits, m.BandwidthBits)
	}
}
