package fractional

import (
	"fmt"

	"congestds/internal/congest"
	"congestds/internal/fixpoint"
)

// InitialParams configures the initial fractional solver (Lemma 2.1).
type InitialParams struct {
	// Eps is the ε of Lemma 2.1: the result is floored to ε/(2Δ̃)-fractional
	// values. Must be in (0, 1].
	Eps float64
	// MaxDegree is Δ, assumed known to all nodes (the standard CONGEST
	// assumption the paper's Δ-parameterized bounds rely on).
	MaxDegree int
}

// Initial computes the paper's Part I (Lemma 2.1): a feasible fractional
// dominating set that is ε/(2Δ̃)-fractional, by a deterministic distributed
// covering algorithm, followed by the value floor from the lemma's proof
// ("each node with value < ε/(2Δ) sets its value to ε/(2Δ)").
//
// The covering phase is our substitute for the cited [KMW06] LP solver (see
// DESIGN.md, substitution 4): a threshold-batched parallel fractional
// greedy. Thresholds θ descend from Δ̃ by factors of (1+ε); while a node's
// residual degree d_v (uncovered constraints in N(v)) is at least θ it
// raises x(v) by 1/(θ(1+ε)). Residual degrees are non-increasing, so after
// ⌈θ(1+ε)⌉+1 iterations no candidate remains at a threshold, which gives a
// deterministic per-threshold round budget without global termination
// detection.
//
// It runs as a genuine CONGEST message-passing program: two rounds per
// iteration (uncovered bits, then value increments), O(log n)-bit messages.
// The program is written in the stackless StepProgram form — per-node state
// is the coverStep struct below — so the greedy covering phase executes on
// congest.EngineStepped with no per-node goroutine; the other engines run
// it through the blocking adapter with identical results.
func Initial(net *congest.Network, ledger *congest.Ledger, p InitialParams) (*CFDS, error) {
	g := net.Graph()
	n := g.N()
	if n == 0 {
		return NewFDS(ScaleFor(1), 0), nil
	}
	if p.Eps <= 0 || p.Eps > 1 {
		return nil, fmt.Errorf("fractional: eps=%v out of (0,1]", p.Eps)
	}
	if p.MaxDegree <= 0 {
		p.MaxDegree = g.MaxDegree()
	}
	ctx := ScaleFor(n)
	deltaTilde := uint64(p.MaxDegree + 1)

	onePlusEps := ctx.Add(ctx.One(), ctx.FromFloat(p.Eps))
	// Threshold schedule and per-threshold iteration budgets, identical at
	// every node (both depend only on Δ̃ and ε).
	var phases []coverPhase
	addPhase := func(theta fixpoint.Value) {
		den := ctx.MulUp(theta, onePlusEps)
		inc := ctx.DivDown(ctx.One(), den)
		if inc == 0 {
			inc = ctx.Eps()
		}
		// iterations until guaranteed quiescence: ⌈θ(1+ε)⌉ + 1
		it := int(uint64(den)>>ctx.Scale()) + 2
		phases = append(phases, coverPhase{threshold: theta, increment: inc, iters: it})
	}
	theta := fixpoint.Value(deltaTilde) * ctx.One() // Δ̃ in fixed point
	for theta > ctx.One() {
		addPhase(theta)
		theta = ctx.DivDown(theta, onePlusEps)
	}
	// Final phase at θ=1 guarantees every remaining uncovered constraint is
	// finished (an uncovered node always has residual degree ≥ 1 in its own
	// inclusive neighbourhood).
	addPhase(ctx.One())

	x := make([]fixpoint.Value, n)
	metrics, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &coverStep{x: x, phases: phases, ctx: ctx}
	})
	if ledger != nil {
		ledger.RecordRun("partI/fractional-cover", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("fractional: covering phase: %w", err)
	}

	// Lemma 2.1 floor: value floor ε/(2Δ̃) keeps the approximation within
	// (1+ε) because OPT ≥ n/Δ̃, and makes the solution ε/(2Δ̃)-fractional.
	floor := ctx.FromRatio(1, 2*deltaTilde, false)
	floor = ctx.MulUp(floor, ctx.FromFloat(p.Eps))
	if floor == 0 {
		floor = ctx.Eps()
	}
	f := NewFDS(ctx, n)
	for v := range x {
		f.X[v] = fixpoint.Max(x[v], floor)
	}
	if ledger != nil {
		ledger.Charge("partI/floor", 0) // purely local step
	}
	return f, nil
}

// coverPhase is one threshold of the covering schedule: while a node's
// residual degree is ≥ threshold it raises its value by increment; iters
// bounds the iterations until guaranteed quiescence.
type coverPhase struct {
	threshold fixpoint.Value // θ_t, in units of constraints (scaled)
	increment fixpoint.Value // 1/(θ_t(1+ε))
	iters     int
}

// coverStep is the threshold-batched parallel fractional greedy as a
// stackless state machine. Each schedule iteration spans two synchronous
// rounds: round A broadcasts the node's own uncovered bit, round B
// broadcasts the value increment the node chose after seeing its residual
// degree. The struct fields are exactly the stack variables of the blocking
// form: current value, own coverage, the neighbours' uncovered bits and the
// (phase, iteration, sub-round) position in the schedule.
type coverStep struct {
	x      []fixpoint.Value
	phases []coverPhase
	ctx    fixpoint.Ctx

	xv           fixpoint.Value
	covSelf      fixpoint.Value
	uncoveredNbr []bool
	myUncovered  bool
	delta        fixpoint.Value
	pi, it       int
	awaitingB    bool // the next inbox holds round-B increments
}

// sendA broadcasts whether this node's own constraint is still uncovered.
func (s *coverStep) sendA(nd *congest.Node) {
	s.myUncovered = s.covSelf < s.ctx.One()
	bit := byte(0)
	if s.myUncovered {
		bit = 1
	}
	nd.Broadcast(append(nd.PayloadBuf(1), bit))
}

func (s *coverStep) Init(nd *congest.Node) bool {
	s.uncoveredNbr = make([]bool, nd.Degree())
	s.sendA(nd)
	return false
}

func (s *coverStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	ctx := s.ctx
	if !s.awaitingB {
		// Round A receive: residual degree over the inclusive neighbourhood.
		for i := range s.uncoveredNbr {
			s.uncoveredNbr[i] = false
		}
		for _, msg := range in {
			s.uncoveredNbr[msg.Port] = msg.Payload[0] == 1
		}
		d := 0
		if s.myUncovered {
			d++
		}
		for _, u := range s.uncoveredNbr {
			if u {
				d++
			}
		}
		// Round B send: candidates raise and broadcast the actual delta.
		ph := s.phases[s.pi]
		s.delta = 0
		if fixpoint.Value(uint64(d))*ctx.One() >= ph.threshold && s.xv < ctx.One() {
			nx := ctx.Clamp1(ctx.Add(s.xv, ph.increment))
			s.delta = nx - s.xv
			s.xv = nx
		}
		nd.Broadcast(congest.AppendUvarint(nd.PayloadBuf(10), uint64(s.delta)))
		s.awaitingB = true
		return false
	}
	// Round B receive: fold every increment into our own coverage.
	s.covSelf = ctx.Add(s.covSelf, s.delta)
	for _, msg := range in {
		d, off := congest.Uvarint(msg.Payload, 0)
		if off < 0 {
			panic("fractional: bad increment message")
		}
		s.covSelf = ctx.Add(s.covSelf, fixpoint.Value(d))
	}
	s.awaitingB = false
	if s.it++; s.it >= s.phases[s.pi].iters {
		s.it = 0
		s.pi++
	}
	if s.pi >= len(s.phases) {
		s.x[nd.V()] = s.xv
		return true
	}
	s.sendA(nd)
	return false
}

// FloorValue returns the Lemma 2.1 fractionality floor ε/(2Δ̃) in ctx's
// scale (exported for tests and the experiment harness).
func FloorValue(ctx fixpoint.Ctx, eps float64, maxDegree int) fixpoint.Value {
	fl := ctx.FromRatio(1, 2*uint64(maxDegree+1), false)
	fl = ctx.MulUp(fl, ctx.FromFloat(eps))
	if fl == 0 {
		fl = ctx.Eps()
	}
	return fl
}
