package fractional

import (
	"fmt"

	"congestds/internal/congest"
	"congestds/internal/fixpoint"
)

// InitialParams configures the initial fractional solver (Lemma 2.1).
type InitialParams struct {
	// Eps is the ε of Lemma 2.1: the result is floored to ε/(2Δ̃)-fractional
	// values. Must be in (0, 1].
	Eps float64
	// MaxDegree is Δ, assumed known to all nodes (the standard CONGEST
	// assumption the paper's Δ-parameterized bounds rely on).
	MaxDegree int
}

// Initial computes the paper's Part I (Lemma 2.1): a feasible fractional
// dominating set that is ε/(2Δ̃)-fractional, by a deterministic distributed
// covering algorithm, followed by the value floor from the lemma's proof
// ("each node with value < ε/(2Δ) sets its value to ε/(2Δ)").
//
// The covering phase is our substitute for the cited [KMW06] LP solver (see
// DESIGN.md, substitution 4): a threshold-batched parallel fractional
// greedy. Thresholds θ descend from Δ̃ by factors of (1+ε); while a node's
// residual degree d_v (uncovered constraints in N(v)) is at least θ it
// raises x(v) by 1/(θ(1+ε)). Residual degrees are non-increasing, so after
// ⌈θ(1+ε)⌉+1 iterations no candidate remains at a threshold, which gives a
// deterministic per-threshold round budget without global termination
// detection.
//
// It runs as a genuine CONGEST message-passing program: two rounds per
// iteration (uncovered bits, then value increments), O(log n)-bit messages.
func Initial(net *congest.Network, ledger *congest.Ledger, p InitialParams) (*CFDS, error) {
	g := net.Graph()
	n := g.N()
	if n == 0 {
		return NewFDS(ScaleFor(1), 0), nil
	}
	if p.Eps <= 0 || p.Eps > 1 {
		return nil, fmt.Errorf("fractional: eps=%v out of (0,1]", p.Eps)
	}
	if p.MaxDegree <= 0 {
		p.MaxDegree = g.MaxDegree()
	}
	ctx := ScaleFor(n)
	deltaTilde := uint64(p.MaxDegree + 1)

	onePlusEps := ctx.Add(ctx.One(), ctx.FromFloat(p.Eps))
	// Threshold schedule and per-threshold iteration budgets, identical at
	// every node (both depend only on Δ̃ and ε).
	type phase struct {
		threshold fixpoint.Value // θ_t, in units of constraints (scaled)
		increment fixpoint.Value // 1/(θ_t(1+ε))
		iters     int
	}
	var phases []phase
	addPhase := func(theta fixpoint.Value) {
		den := ctx.MulUp(theta, onePlusEps)
		inc := ctx.DivDown(ctx.One(), den)
		if inc == 0 {
			inc = ctx.Eps()
		}
		// iterations until guaranteed quiescence: ⌈θ(1+ε)⌉ + 1
		it := int(uint64(den)>>ctx.Scale()) + 2
		phases = append(phases, phase{threshold: theta, increment: inc, iters: it})
	}
	theta := fixpoint.Value(deltaTilde) * ctx.One() // Δ̃ in fixed point
	for theta > ctx.One() {
		addPhase(theta)
		theta = ctx.DivDown(theta, onePlusEps)
	}
	// Final phase at θ=1 guarantees every remaining uncovered constraint is
	// finished (an uncovered node always has residual degree ≥ 1 in its own
	// inclusive neighbourhood).
	addPhase(ctx.One())

	x := make([]fixpoint.Value, n)
	metrics, err := net.Run(func(nd *congest.Node) {
		v := nd.V()
		var xv fixpoint.Value
		// cov[u-port] tracks the coverage of each neighbour's constraint;
		// covSelf tracks this node's own constraint.
		deg := nd.Degree()
		covNbr := make([]fixpoint.Value, deg)
		covSelf := fixpoint.Value(0)
		uncoveredNbr := make([]bool, deg)
		for _, ph := range phases {
			for it := 0; it < ph.iters; it++ {
				// Round A: broadcast whether our own constraint is uncovered.
				myUncovered := covSelf < ctx.One()
				bit := byte(0)
				if myUncovered {
					bit = 1
				}
				nd.Broadcast([]byte{bit})
				in := nd.Sync()
				for i := range uncoveredNbr {
					uncoveredNbr[i] = false
				}
				for _, msg := range in {
					uncoveredNbr[msg.Port] = msg.Payload[0] == 1
				}
				// Residual degree over the inclusive neighbourhood.
				d := 0
				if myUncovered {
					d++
				}
				for _, u := range uncoveredNbr {
					if u {
						d++
					}
				}
				// Round B: candidates raise and broadcast the actual delta.
				var delta fixpoint.Value
				if fixpoint.Value(uint64(d))*ctx.One() >= ph.threshold && xv < ctx.One() {
					nx := ctx.Clamp1(ctx.Add(xv, ph.increment))
					delta = nx - xv
					xv = nx
				}
				nd.Broadcast(congest.AppendUvarint(nil, uint64(delta)))
				in = nd.Sync()
				covSelf = ctx.Add(covSelf, delta)
				for _, msg := range in {
					d, off := congest.Uvarint(msg.Payload, 0)
					if off < 0 {
						panic("fractional: bad increment message")
					}
					covSelf = ctx.Add(covSelf, fixpoint.Value(d))
					covNbr[msg.Port] = ctx.Add(covNbr[msg.Port], fixpoint.Value(d))
				}
				_ = covNbr // retained for symmetry; candidates use broadcast bits
			}
		}
		x[v] = xv
	})
	if ledger != nil {
		ledger.RecordRun("partI/fractional-cover", metrics)
	}
	if err != nil {
		return nil, fmt.Errorf("fractional: covering phase: %w", err)
	}

	// Lemma 2.1 floor: value floor ε/(2Δ̃) keeps the approximation within
	// (1+ε) because OPT ≥ n/Δ̃, and makes the solution ε/(2Δ̃)-fractional.
	floor := ctx.FromRatio(1, 2*deltaTilde, false)
	floor = ctx.MulUp(floor, ctx.FromFloat(p.Eps))
	if floor == 0 {
		floor = ctx.Eps()
	}
	f := NewFDS(ctx, n)
	for v := range x {
		f.X[v] = fixpoint.Max(x[v], floor)
	}
	if ledger != nil {
		ledger.Charge("partI/floor", 0) // purely local step
	}
	return f, nil
}

// FloorValue returns the Lemma 2.1 fractionality floor ε/(2Δ̃) in ctx's
// scale (exported for tests and the experiment harness).
func FloorValue(ctx fixpoint.Ctx, eps float64, maxDegree int) fixpoint.Value {
	fl := ctx.FromRatio(1, 2*uint64(maxDegree+1), false)
	fl = ctx.MulUp(fl, ctx.FromFloat(eps))
	if fl == 0 {
		fl = ctx.Eps()
	}
	return fl
}
