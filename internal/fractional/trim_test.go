package fractional

import (
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

func TestTrimPreservesFeasibility(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(50, 0.12, 5)},
		{"star", graph.Star(20)},
		{"grid", graph.Grid(6, 6)},
		{"cycle", graph.Cycle(15)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			net := congest.NewNetwork(tt.g, congest.Config{})
			fds, err := Initial(net, nil, InitialParams{Eps: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			before := fds.SizeFloat()
			var ledger congest.Ledger
			Trim(tt.g, fds, &ledger, 2)
			if err := fds.Check(tt.g); err != nil {
				t.Fatalf("trim broke feasibility: %v", err)
			}
			after := fds.SizeFloat()
			if after > before+1e-9 {
				t.Errorf("trim increased size: %.4f -> %.4f", before, after)
			}
			if ledger.Metrics().ChargedRounds <= 0 {
				t.Error("no rounds charged")
			}
		})
	}
}

func TestTrimRemovesObviousSlack(t *testing.T) {
	// All-ones on a star is feasible but wasteful; trimming must remove most
	// of it (only the hub is needed).
	g := graph.Star(12)
	ctx := ScaleFor(12)
	fds := NewFDS(ctx, 12)
	for v := range fds.X {
		fds.X[v] = ctx.One()
	}
	Trim(g, fds, nil, 2)
	if err := fds.Check(g); err != nil {
		t.Fatal(err)
	}
	if s := fds.SizeFloat(); s > 3 {
		t.Errorf("trimmed size %.2f still wasteful on a star", s)
	}
}

func TestTrimEmptyGraph(t *testing.T) {
	fds := NewFDS(ScaleFor(1), 0)
	Trim(graph.Path(0), fds, nil, 1) // must not panic
}

func TestTrimDeterministic(t *testing.T) {
	g := graph.GNPConnected(30, 0.2, 8)
	run := func() []float64 {
		net := congest.NewNetwork(g, congest.Config{})
		fds, err := Initial(net, nil, InitialParams{Eps: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		Trim(g, fds, nil, 3)
		out := make([]float64, g.N())
		for v := range out {
			out[v] = fds.Ctx.Float(fds.X[v])
		}
		return out
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatal("trim not deterministic")
		}
	}
}
