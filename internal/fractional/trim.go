package fractional

import (
	"congestds/internal/coloring"
	"congestds/internal/congest"
	"congestds/internal/fixpoint"
	"congestds/internal/graph"
)

// Trim removes redundancy from a feasible fractional dominating set: every
// node lowers its value to the largest reduction that keeps all constraints
// in its inclusive neighbourhood satisfied. Nodes act in the color classes
// of a proper coloring of G² (same-colored nodes are at distance ≥ 3, so
// their inclusive neighbourhoods are disjoint and simultaneous trimming is
// safe). Feasibility is preserved exactly; the size never increases.
//
// This is the local-ratio cleanup pass applied after the Part I covering
// phase (see DESIGN.md, substitution 4): the threshold-batched greedy
// over-raises when many candidates cover the same constraint, and trimming
// recovers most of that slack with O(sweeps · colors(G²)) extra rounds.
func Trim(g *graph.Graph, fds *CFDS, ledger *congest.Ledger, sweeps int) {
	if sweeps <= 0 {
		sweeps = 2
	}
	n := g.N()
	if n == 0 {
		return
	}
	ctx := fds.Ctx
	col := coloring.Graph(g.Power(2))
	// Current coverage per constraint.
	cov := make([]fixpoint.Value, n)
	for v := 0; v < n; v++ {
		cov[v] = fds.Coverage(g, v)
	}
	for sweep := 0; sweep < sweeps; sweep++ {
		for c := 0; c < col.NumColors; c++ {
			for v := 0; v < n; v++ {
				if col.Colors[v] != c || fds.X[v] == 0 {
					continue
				}
				// Maximum reduction: the minimum slack among the inclusive
				// neighbourhood constraints v contributes to.
				slack := ctx.SubFloor(cov[v], fds.C[v])
				for _, u := range g.Neighbors(v) {
					if s := ctx.SubFloor(cov[u], fds.C[u]); s < slack {
						slack = s
					}
				}
				cut := fixpoint.Min(slack, fds.X[v])
				if cut == 0 {
					continue
				}
				fds.X[v] -= cut
				cov[v] -= cut
				for _, u := range g.Neighbors(v) {
					cov[u] -= cut
				}
			}
		}
	}
	if ledger != nil {
		// One round per color class per sweep (trim decisions are local; the
		// new values are broadcast to neighbours), plus the G²-coloring.
		ledger.Charge("partI/trim", sweeps*col.NumColors+col.Rounds)
	}
}
