package derand

import (
	"math"
	"testing"

	"congestds/internal/coloring"
	"congestds/internal/congest"
	"congestds/internal/decomp"
	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/kwise"
	"congestds/internal/rounding"
)

// uniformFDS builds a 1/f-fractional FDS; feasible on graphs with minimum
// inclusive degree ≥ f.
func uniformFDS(g *graph.Graph, f uint64) *fractional.CFDS {
	ctx := fractional.ScaleFor(g.N())
	fds := fractional.NewFDS(ctx, g.N())
	for v := range fds.X {
		fds.X[v] = ctx.FromRatio(1, f, true) // round up so f values sum to ≥ 1
	}
	return fds
}

// feasibleFDS builds a feasible fractional FDS on any graph: every node gets
// 1/(deg_min_neighbourhood) — here simply 1/Δ̃ plus enough: use 1/minIncDeg.
func feasibleFDS(g *graph.Graph) *fractional.CFDS {
	ctx := fractional.ScaleFor(g.N())
	fds := fractional.NewFDS(ctx, g.N())
	minInc := g.N() + 1
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v) + 1; d < minInc {
			minInc = d
		}
	}
	for v := range fds.X {
		fds.X[v] = ctx.FromRatio(1, uint64(minInc), true)
	}
	return fds
}

func lnDelta(ctx fixpoint.Ctx, g *graph.Graph) fixpoint.Value {
	return ctx.FromFloat(math.Log(float64(g.MaxDegree() + 1 + 1)))
}

func TestOneShotBipartiteReducesLeftDegree(t *testing.T) {
	g := graph.Complete(10) // 1/4-fractional is feasible (Δ̃=10)
	fds := uniformFDS(g, 4)
	bi, err := OneShotBipartite(g, fds, 4, lnDelta(fds.Ctx, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := bi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	if bi.LeftDegree > 4 {
		t.Errorf("left degree %d exceeds F=4", bi.LeftDegree)
	}
	for v, ms := range bi.Inst.Members {
		if len(ms) > 4 {
			t.Errorf("constraint %d has %d members", v, len(ms))
		}
	}
}

func TestOneShotBipartiteRejectsInfeasibleInput(t *testing.T) {
	g := graph.Path(4)
	ctx := fractional.ScaleFor(4)
	fds := fractional.NewFDS(ctx, 4) // all-zero: infeasible
	if _, err := OneShotBipartite(g, fds, 2, ctx.One()); err == nil {
		t.Error("infeasible input accepted")
	}
}

func TestFactorTwoBipartiteSplitSizes(t *testing.T) {
	g := graph.Complete(30)
	fds := uniformFDS(g, 30) // all light for r = 40: (1+ε)/30 ≈ 0.042 < 2/40 = 0.05
	s := 5
	bi, err := FactorTwoBipartite(g, fds, 0.25, 40, s)
	if err != nil {
		t.Fatal(err)
	}
	if err := bi.Inst.Validate(); err != nil {
		t.Fatal(err)
	}
	// All members are light, so every split constraint has between s and 2s
	// members.
	for i, ms := range bi.Inst.Members {
		if len(ms) < s || len(ms) > 2*s {
			t.Errorf("constraint %d size %d outside [%d,%d]", i, len(ms), s, 2*s)
		}
	}
	if bi.LeftDegree > 2*s {
		t.Errorf("left degree %d > 2s", bi.LeftDegree)
	}
}

func TestFactorTwoBipartiteKeepsHeavyTogether(t *testing.T) {
	g := graph.Star(12)
	ctx := fractional.ScaleFor(12)
	fds := fractional.NewFDS(ctx, 12)
	fds.X[0] = ctx.One() // the hub is heavy
	for v := 1; v < 12; v++ {
		fds.X[v] = ctx.FromRatio(1, 100, false) // light
	}
	bi, err := FactorTwoBipartite(g, fds, 0.25, 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The hub keeps its value (p = 1).
	if bi.Participating[0] {
		t.Error("heavy hub should not participate")
	}
	if !bi.Participating[1] {
		t.Error("light leaf should participate")
	}
}

// End-to-end Engine II on the one-shot bipartite instance: the result is an
// integral dominating set of size within the Phi bound.
func TestEngineIIOneShotEndToEnd(t *testing.T) {
	for _, seed := range []uint64{1, 5, 9} {
		g := graph.GNPConnected(40, 0.3, seed) // dense: ln(Δ̃)·x' stays below 1
		fds := feasibleFDS(g)
		f := uint64(g.N()) // any F ≥ 1/fractionality works for the reduction
		bi, err := OneShotBipartite(g, fds, f, lnDelta(fds.Ctx, g))
		if err != nil {
			t.Fatal(err)
		}
		proc, err := rounding.NewProcess(bi.Inst)
		if err != nil {
			t.Fatal(err)
		}
		phi := bi.Inst.Ctx.Float(proc.Phi())
		col := coloring.Distance2Bipartite(g.N(), bi.Inst.Members, bi.Participating, g.IDs())
		if ok, pair := coloring.Validate(col, bi.Inst.Members, bi.Participating); !ok {
			t.Fatalf("coloring invalid: %v", pair)
		}
		var ledger congest.Ledger
		out, err := ByColoring(proc, col, &ledger, bi.LeftDegree)
		if err != nil {
			t.Fatal(err)
		}
		res := FDSFromOutcome(bi.Inst.Ctx, out)
		if !res.Integral() {
			t.Error("one-shot output not integral")
		}
		if err := res.Check(g); err != nil {
			t.Fatalf("not dominating: %v", err)
		}
		if size := res.SizeFloat(); size > phi*1.05+0.5 {
			t.Errorf("seed %d: size %.3f exceeds Phi %.3f", seed, size, phi)
		}
		anyCoins := false
		for j := range bi.Participating {
			if bi.Participating[j] {
				anyCoins = true
			}
		}
		if anyCoins && ledger.Metrics().ChargedRounds <= 0 {
			t.Error("no rounds charged")
		}
	}
}

// End-to-end Engine II on factor-two: fractionality doubles (to ≥ 2/r) and
// the result stays feasible.
func TestEngineIIFactorTwoEndToEnd(t *testing.T) {
	g := graph.GNPConnected(36, 0.2, 3)
	ctx := fractional.ScaleFor(g.N())
	fds := fractional.NewFDS(ctx, g.N())
	// Start from a feasible 1/r-fractional solution.
	r := uint64(2 * (g.MaxDegree() + 1))
	minInc := g.N()
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v) + 1; d < minInc {
			minInc = d
		}
	}
	for v := range fds.X {
		fds.X[v] = ctx.FromRatio(1, uint64(minInc), true)
	}
	if err := fds.Check(g); err != nil {
		t.Fatal(err)
	}
	bi, err := FactorTwoBipartite(g, fds, 0.25, r, 4)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := rounding.NewProcess(bi.Inst)
	if err != nil {
		t.Fatal(err)
	}
	col := coloring.Distance2Bipartite(g.N(), bi.Inst.Members, bi.Participating, g.IDs())
	out, err := ByColoring(proc, col, nil, bi.LeftDegree)
	if err != nil {
		t.Fatal(err)
	}
	res := FDSFromOutcome(ctx, out)
	if err := res.Check(g); err != nil {
		t.Fatalf("factor-two output infeasible: %v", err)
	}
	// Fractionality improved: every nonzero value is ≥ min(2/r, old 2·min).
	oldFrac := ctx.Float(fds.Fractionality())
	newFrac := ctx.Float(res.Fractionality())
	if newFrac < 1.9*oldFrac && newFrac < 0.99*ctx.Float(ctx.FromRatio(2, r, false)) {
		t.Errorf("fractionality did not double: old %v new %v (2/r=%v)",
			oldFrac, newFrac, 2.0/float64(r))
	}
}

// Engine I end-to-end: one-shot on the plain graph instance with a 2-hop
// decomposition.
func TestEngineIOneShotEndToEnd(t *testing.T) {
	for _, seed := range []uint64{2, 7} {
		g := graph.GNPConnected(40, 0.12, seed)
		fds := feasibleFDS(g)
		inst := rounding.OneShotOnGraph(g, fds, lnDelta(fds.Ctx, g))
		proc, err := rounding.NewProcess(inst)
		if err != nil {
			t.Fatal(err)
		}
		phi := inst.Ctx.Float(proc.Phi())
		d, err := decomp.Build(g, decomp.Params{K: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		var ledger congest.Ledger
		out, err := ByDecomposition(proc, d, g, &ledger)
		if err != nil {
			t.Fatal(err)
		}
		res := FDSFromOutcome(inst.Ctx, out)
		if !res.Integral() {
			t.Error("output not integral")
		}
		if err := res.Check(g); err != nil {
			t.Fatalf("not dominating: %v", err)
		}
		if size := res.SizeFloat(); size > phi*1.05+0.5 {
			t.Errorf("size %.3f exceeds Phi %.3f", size, phi)
		}
	}
}

func TestEngineIRejectsBadInputs(t *testing.T) {
	g := graph.Path(6)
	fds := feasibleFDS(g)
	inst := rounding.OneShotOnGraph(g, fds, lnDelta(fds.Ctx, g))
	proc, _ := rounding.NewProcess(inst)
	d1, _ := decomp.Build(g, decomp.Params{K: 1})
	if _, err := ByDecomposition(proc, d1, g, nil); err == nil {
		t.Error("K=1 decomposition accepted")
	}
	other := graph.Path(7)
	d2, _ := decomp.Build(other, decomp.Params{K: 2})
	if _, err := ByDecomposition(proc, d2, other, nil); err == nil {
		t.Error("mismatched graph accepted")
	}
}

func TestEngineIIDeterministic(t *testing.T) {
	g := graph.GNPConnected(30, 0.2, 4)
	run := func() []int {
		fds := feasibleFDS(g)
		bi, err := OneShotBipartite(g, fds, uint64(g.N()), lnDelta(fds.Ctx, g))
		if err != nil {
			t.Fatal(err)
		}
		proc, err := rounding.NewProcess(bi.Inst)
		if err != nil {
			t.Fatal(err)
		}
		col := coloring.Distance2Bipartite(g.N(), bi.Inst.Members, bi.Participating, g.IDs())
		out, err := ByColoring(proc, col, nil, 1)
		if err != nil {
			t.Fatal(err)
		}
		return FDSFromOutcome(bi.Inst.Ctx, out).Set()
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("non-deterministic size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic set")
		}
	}
}

// Lemma 3.4 mechanism demo: shared k-wise seed fixed bit by bit by exact
// conditional expectations; the realized size must not exceed the expected
// size over a uniformly random seed.
func TestSharedSeedDerandomization(t *testing.T) {
	g := graph.Cycle(8)
	fds := uniformFDS(g, 3) // inclusive degree 3 ⇒ feasible
	if err := fds.Check(g); err != nil {
		t.Fatal(err)
	}
	inst := rounding.OneShotOnGraph(g, fds, fds.Ctx.FromFloat(math.Log(4)))
	gen, err := kwise.New(2, 8, 4) // m=3 field, 4-bit values → 2·2·3 = 12 seed bits
	if err != nil {
		t.Fatal(err)
	}
	if gen.SeedBits() > 20 {
		t.Fatalf("seed too large for demo: %d bits", gen.SeedBits())
	}
	seed, out, err := DerandomizeSharedSeed(inst, gen, 20)
	if err != nil {
		t.Fatal(err)
	}
	if len(seed) != gen.SeedWords() {
		t.Fatalf("seed words %d", len(seed))
	}
	// Expected size over all seeds (exhaustive).
	ctx := inst.Ctx
	var total float64
	count := 0
	words := gen.SeedWords()
	m := int(gen.FieldM())
	var rec func(i int, s []uint64)
	all := make([]uint64, words)
	rec = func(i int, s []uint64) {
		if i == words {
			o := inst.Execute(func(j int) bool { return gen.Coin(s, j, uint64(inst.P[j])) })
			total += ctx.Float(o.Size(ctx))
			count++
			return
		}
		for v := uint64(0); v < 1<<m; v++ {
			s[i] = v
			rec(i+1, s)
		}
	}
	rec(0, all)
	mean := total / float64(count)
	realized := ctx.Float(out.Size(ctx))
	if realized > mean+1e-6 {
		t.Errorf("derandomized size %.4f exceeds E[size] %.4f", realized, mean)
	}
	// The result is still a dominating set.
	res := FDSFromOutcome(ctx, out)
	if err := res.Check(g); err != nil {
		t.Errorf("seed-mode output infeasible: %v", err)
	}
}

func TestSharedSeedRejectsBigSeeds(t *testing.T) {
	g := graph.Cycle(6)
	fds := uniformFDS(g, 3)
	inst := rounding.OneShotOnGraph(g, fds, fds.Ctx.One())
	gen, err := kwise.New(8, 64, 40)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := DerandomizeSharedSeed(inst, gen, 20); err == nil {
		t.Error("oversized seed accepted")
	}
}
