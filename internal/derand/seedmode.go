package derand

import (
	"fmt"

	"congestds/internal/fixpoint"
	"congestds/internal/kwise"
	"congestds/internal/rounding"
)

// DerandomizeSharedSeed demonstrates the paper's exact Lemma 3.4 mechanism
// at small scale (see DESIGN.md, substitution 3): all coins of the instance
// are derived from ONE shared k-wise independent seed (Lemma 3.3), and the
// seed's bits are fixed one at a time by the method of conditional
// expectations, where each conditional expectation E[size | b_1..b_j] is
// computed exactly by enumerating all completions of the seed — the
// unbounded local computation the CONGEST model grants cluster leaders.
//
// The generator's seed must be at most maxSeedBits bits (default 20) to keep
// the exhaustive enumeration tractable. Returns the chosen seed and the
// outcome; the realized size is at most the expected size over a uniformly
// random seed (the supermartingale property of Lemma 3.4's claim).
func DerandomizeSharedSeed(inst *rounding.Instance, gen *kwise.Generator, maxSeedBits int) ([]uint64, *rounding.Outcome, error) {
	if maxSeedBits <= 0 {
		maxSeedBits = 20
	}
	if gen.SeedBits() > maxSeedBits {
		return nil, nil, fmt.Errorf("derand: seed has %d bits, limit %d", gen.SeedBits(), maxSeedBits)
	}
	if gen.N() < len(inst.X) {
		return nil, nil, fmt.Errorf("derand: generator indexes %d < %d sites", gen.N(), len(inst.X))
	}
	totalBits := gen.SeedBits()
	m := int(gen.FieldM())
	words := gen.SeedWords()

	// expectedSize computes E[size] over the uniform completion of the seed
	// bits after the first `fixed` bits are set per `prefix`.
	expectedSize := func(prefix uint64, fixed int) fixpoint.Value {
		free := totalBits - fixed
		count := uint64(1) << free
		var total fixpoint.Value
		ctx := inst.Ctx
		seed := make([]uint64, words)
		for completion := uint64(0); completion < count; completion++ {
			bits := prefix | completion<<fixed
			for w := 0; w < words; w++ {
				seed[w] = (bits >> (w * m)) & ((1 << m) - 1)
			}
			out := inst.Execute(func(j int) bool {
				return gen.Coin(seed, j, uint64(inst.P[j]))
			})
			total = ctx.Add(total, out.Size(ctx))
		}
		// Average: divide by the completion count (a power of two, exact).
		return total >> free
	}

	var prefix uint64
	for bit := 0; bit < totalBits; bit++ {
		e0 := expectedSize(prefix, bit+1)
		e1 := expectedSize(prefix|1<<bit, bit+1)
		if e1 < e0 {
			prefix |= 1 << bit
		}
	}
	seed := make([]uint64, words)
	for w := 0; w < words; w++ {
		seed[w] = (prefix >> (w * m)) & ((1 << m) - 1)
	}
	out := inst.Execute(func(j int) bool {
		return gen.Coin(seed, j, uint64(inst.P[j]))
	})
	return seed, out, nil
}
