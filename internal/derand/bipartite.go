package derand

import (
	"fmt"
	"sort"

	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/rounding"
)

// BipartiteInstance is a rounding instance built on the (degree-reduced or
// split) bipartite representation B of a graph (Section 3.3): value sites
// remain the graph nodes (the right-hand copies V_R), while the constraints
// are the modified left-hand copies. Participating reports which sites flip
// coins — the set S that Lemma 3.10 requires to be distance-2 colored.
type BipartiteInstance struct {
	Inst *rounding.Instance
	// Participating[j] is true when p(j) ∉ {0,1}.
	Participating []bool
	// LeftDegree is the maximum constraint size after reduction/splitting
	// (Δ_L of Lemma 3.12, the CONGEST simulation factor).
	LeftDegree int
}

// OneShotBipartite builds the instance of Lemma 3.13: x = min(1, lnΔ̃·x'),
// p = x, and each constraint keeps only a covering set of at most F members
// ("we reduce the degree on the left hand side to F").
func OneShotBipartite(g *graph.Graph, fds *fractional.CFDS, f uint64, lnDeltaTilde fixpoint.Value) (*BipartiteInstance, error) {
	ctx := fds.Ctx
	n := g.N()
	inst := &rounding.Instance{
		Ctx:     ctx,
		X:       make([]fixpoint.Value, n),
		P:       make([]fixpoint.Value, n),
		C:       make([]fixpoint.Value, n),
		Members: make([][]int32, n),
		Owner:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		x := ctx.Clamp1(ctx.MulUp(fds.X[v], lnDeltaTilde))
		inst.X[v] = x
		inst.P[v] = x
		inst.C[v] = ctx.One()
		inst.Owner[v] = int32(v)
	}
	maxLeft := 0
	for v := 0; v < n; v++ {
		cover, err := coveringSet(g, fds, v, ctx.One())
		if err != nil {
			return nil, err
		}
		if len(cover) > int(f) {
			// The input was promised 1/F-fractional; a cover of F members
			// always exists then. Larger covers indicate a caller bug.
			return nil, fmt.Errorf("derand: node %d needs %d > F=%d covering members", v, len(cover), f)
		}
		inst.Members[v] = cover
		if len(cover) > maxLeft {
			maxLeft = len(cover)
		}
	}
	return finishBipartite(inst, maxLeft), nil
}

// FactorTwoBipartite builds the instance of Lemma 3.14: x = min(1,(1+ε)x'),
// participants (x < 2/r) round with p = 1/2; each constraint node v is split
// into v1 (all heavy members, plus the light ones if fewer than s remain)
// and v2..vk carrying between s and 2s light members each, with constraints
// c(v_j) = min(1, Σ x'(members)).
func FactorTwoBipartite(g *graph.Graph, fds *fractional.CFDS, eps float64, r uint64, s int) (*BipartiteInstance, error) {
	if s < 1 {
		return nil, fmt.Errorf("derand: split size s=%d < 1", s)
	}
	ctx := fds.Ctx
	n := g.N()
	onePlusEps := ctx.Add(ctx.One(), ctx.FromFloat(eps))
	twoOverR := ctx.FromRatio(2, r, false)
	inst := &rounding.Instance{
		Ctx: ctx,
		X:   make([]fixpoint.Value, n),
		P:   make([]fixpoint.Value, n),
	}
	for v := 0; v < n; v++ {
		x := ctx.Clamp1(ctx.MulUp(fds.X[v], onePlusEps))
		inst.X[v] = x
		if x < twoOverR {
			inst.P[v] = ctx.Half()
		} else {
			inst.P[v] = ctx.One()
		}
	}
	maxLeft := 0
	addConstraint := func(owner int, members []int32) {
		if len(members) == 0 {
			return
		}
		var sum fixpoint.Value
		for _, u := range members {
			sum = ctx.Add(sum, fds.X[u])
		}
		c := fixpoint.Min(sum, ctx.One())
		if c == 0 {
			return
		}
		inst.C = append(inst.C, c)
		inst.Members = append(inst.Members, members)
		inst.Owner = append(inst.Owner, int32(owner))
		if len(members) > maxLeft {
			maxLeft = len(members)
		}
	}
	for v := 0; v < n; v++ {
		var heavy, light []int32
		for _, u := range g.InclusiveNeighbors(nil, v) {
			if inst.P[u] == ctx.One() {
				heavy = append(heavy, u)
			} else {
				light = append(light, u)
			}
		}
		if len(light) < s {
			// v1 takes everything (k = 1).
			addConstraint(v, append(heavy, light...))
			continue
		}
		addConstraint(v, heavy) // v1: heavy members only
		// Split light members into chunks of size in [s, 2s].
		q := len(light) / s
		base := len(light) / q
		rem := len(light) % q
		off := 0
		for i := 0; i < q; i++ {
			sz := base
			if i < rem {
				sz++
			}
			addConstraint(v, light[off:off+sz])
			off += sz
		}
	}
	return finishBipartite(inst, maxLeft), nil
}

// coveringSet returns a minimal prefix (by descending x') of v's inclusive
// neighbourhood whose x' values sum to at least threshold.
func coveringSet(g *graph.Graph, fds *fractional.CFDS, v int, threshold fixpoint.Value) ([]int32, error) {
	ctx := fds.Ctx
	nbrs := g.InclusiveNeighbors(nil, v)
	sort.Slice(nbrs, func(a, b int) bool {
		if fds.X[nbrs[a]] != fds.X[nbrs[b]] {
			return fds.X[nbrs[a]] > fds.X[nbrs[b]]
		}
		return nbrs[a] < nbrs[b]
	})
	var sum fixpoint.Value
	for i, u := range nbrs {
		sum = ctx.Add(sum, fds.X[u])
		if sum >= threshold {
			cover := append([]int32(nil), nbrs[:i+1]...)
			sort.Slice(cover, func(a, b int) bool { return cover[a] < cover[b] })
			return cover, nil
		}
	}
	return nil, fmt.Errorf("derand: input FDS leaves node %d uncovered", v)
}

func finishBipartite(inst *rounding.Instance, maxLeft int) *BipartiteInstance {
	part := make([]bool, len(inst.X))
	for j := range part {
		part[j] = !inst.Deterministic(j)
	}
	return &BipartiteInstance{Inst: inst, Participating: part, LeftDegree: maxLeft}
}

// FDSFromOutcome converts a rounding outcome over node-aligned value sites
// back into a fractional dominating set on the graph ("the FDS on B induces
// an FDS on G by reverting the bipartite representation").
func FDSFromOutcome(ctx fixpoint.Ctx, out *rounding.Outcome) *fractional.CFDS {
	f := fractional.NewFDS(ctx, len(out.Values))
	copy(f.X, out.Values)
	return f
}
