// Package derand implements the paper's two derandomization engines for the
// abstract randomized rounding process:
//
//   - Engine I (Lemma 3.4): driven by a 2-hop network decomposition; colors
//     are processed in order, same-colored clusters act in parallel (their
//     inclusive neighbourhoods are disjoint), and coins inside a cluster are
//     fixed through the cluster tree.
//   - Engine II (Lemma 3.10): driven by a distance-2 coloring of the
//     participating value sites of the (possibly split bipartite, Lemmas
//     3.13/3.14) constraint structure; same-colored sites decide
//     simultaneously because they share no constraint.
//
// Both engines fix coins by the method of conditional expectations using
// rounding.Process, whose conditional bounds are exact where cheap and
// pessimistic (Chernoff) otherwise — see DESIGN.md, substitution 2.
package derand

import (
	"fmt"
	"sort"

	"congestds/internal/coloring"
	"congestds/internal/congest"
	"congestds/internal/decomp"
	"congestds/internal/graph"
	"congestds/internal/rounding"
)

// ByColoring derandomizes proc with Engine II: participating sites are fixed
// color class by color class (Lemma 3.10). simFactor is the CONGEST
// simulation overhead per conflict-graph round (Lemma 3.12 charges O(Δ_L);
// pass 1 for the LOCAL model of Corollary 1.3). Returns the outcome.
func ByColoring(proc *rounding.Process, col *coloring.Result, ledger *congest.Ledger, simFactor int) (*rounding.Outcome, error) {
	inst := proc.Instance()
	nSites := len(inst.X)
	if len(col.Colors) != nSites {
		return nil, fmt.Errorf("derand: coloring covers %d sites, instance has %d", len(col.Colors), nSites)
	}
	if simFactor < 1 {
		simFactor = 1
	}
	// Group participating sites by color.
	byColor := make([][]int, col.NumColors)
	for j := 0; j < nSites; j++ {
		if !proc.Unassigned(j) {
			continue
		}
		c := col.Colors[j]
		if c < 0 {
			return nil, fmt.Errorf("derand: participating site %d is uncolored", j)
		}
		byColor[c] = append(byColor[c], j)
	}
	for c := 0; c < col.NumColors; c++ {
		// Same-colored sites share no constraint, so sequential fixing below
		// is observationally identical to the paper's simultaneous decision.
		for _, j := range byColor[c] {
			proc.DecideCoin(j)
		}
	}
	if ledger != nil {
		// One conflict round per color class; each costs O(simFactor)
		// CONGEST rounds plus 2 rounds to exchange α̃-values (Lemma 3.10).
		ledger.Charge("derand/engineII-colors", col.NumColors*(simFactor+2))
	}
	return proc.Finalize(), nil
}

// ByDecomposition derandomizes proc with Engine I (Lemma 3.4): the instance
// must have one value site per graph node (the plain instances of Section
// 3.2). Clusters are processed color by color; same-colored clusters fix
// their members' coins in parallel, which is sound because a 2-hop
// decomposition keeps their inclusive neighbourhoods disjoint (the paper's
// second claim in Lemma 3.4). Within a cluster, coins are fixed sequentially
// through the cluster tree (DESIGN.md, substitution 3).
func ByDecomposition(proc *rounding.Process, d *decomp.Decomposition, g *graph.Graph, ledger *congest.Ledger) (*rounding.Outcome, error) {
	inst := proc.Instance()
	if len(inst.X) != g.N() {
		return nil, fmt.Errorf("derand: Engine I needs node-aligned instance (%d sites, %d nodes)",
			len(inst.X), g.N())
	}
	if d.K < 2 {
		return nil, fmt.Errorf("derand: Engine I needs a K≥2 decomposition, got K=%d", d.K)
	}
	charged := 0
	for color := 0; color < d.NumColors; color++ {
		maxWork := 0
		for _, cl := range d.Clusters {
			if cl.Color != color {
				continue
			}
			work := 0
			// Deterministic member order: sorted by ID.
			members := append([]int(nil), cl.Nodes...)
			sort.Slice(members, func(a, b int) bool { return g.ID(members[a]) < g.ID(members[b]) })
			for _, v := range members {
				if proc.Unassigned(v) {
					proc.DecideCoin(v)
					work++
				}
			}
			// Each coin fix aggregates α̃-sums up and broadcasts the decision
			// down the cluster tree: 2·(radius+1) rounds.
			if w := work * 2 * (cl.Radius + 1); w > maxWork {
				maxWork = w
			}
		}
		charged += maxWork
	}
	if ledger != nil {
		ledger.Charge("derand/engineI-clusters", charged)
		ledger.Charge("derand/engineI-decomp", d.ChargedRounds)
	}
	return proc.Finalize(), nil
}
