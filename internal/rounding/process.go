package rounding

import (
	"fmt"

	"congestds/internal/fixpoint"
)

// Process tracks a partially derandomized execution of an Instance: each
// non-deterministic value site has a coin that is unassigned, fixed to fire,
// or fixed to zero. The derandomization engines (package derand) fix coins
// one group at a time using ConditionalCost, which implements the
// conditional expectations of Lemmas 3.4 and 3.10.
//
// Conditional probabilities Pr(E_i | assignment) are computed exactly when
// cheap — the product form whenever any single unassigned firing covers the
// remaining deficit (which is always the case for one-shot rounding, cf.
// Lemma 3.6), or subset enumeration when few coins remain — and otherwise by
// a deterministic base-2 Chernoff pessimistic estimator (see DESIGN.md,
// substitution 2). All three forms are upper bounds that satisfy the
// averaging property over an unassigned coin, so the fixed outcome's
// realized cost never exceeds the initial bound (plus quantization slack
// mirroring the paper's 1/n^10 rounding accounting).
type Process struct {
	inst          *Instance
	coin          []int8    // -1 unassigned, 0 fixed off, 1 fixed fire
	constraintsOf [][]int32 // value site -> constraints it appears in
	exactLimit    int
	sGrid         []uint // Chernoff exponents: s = 2^e
}

// coinUnset marks an unassigned coin.
const coinUnset int8 = -1

// NewProcess prepares a derandomization run over inst.
func NewProcess(inst *Instance) (*Process, error) {
	if err := inst.Validate(); err != nil {
		return nil, err
	}
	p := &Process{
		inst:          inst,
		coin:          make([]int8, len(inst.X)),
		constraintsOf: make([][]int32, len(inst.X)),
		exactLimit:    16,
	}
	for j := range p.coin {
		p.coin[j] = coinUnset
	}
	for i, ms := range inst.Members {
		for _, j := range ms {
			if !inst.Deterministic(int(j)) {
				p.constraintsOf[j] = append(p.constraintsOf[j], int32(i))
			}
		}
	}
	// Deterministic exponent grid for the Chernoff estimator: s = 2^e for
	// e = 0..18. The optimizer takes the minimum bound over the grid; a
	// coarse geometric grid loses at most a constant factor in the exponent,
	// which the experiments absorb. Powers of two make s·x an exact shift.
	for e := uint(0); e <= 18; e++ {
		p.sGrid = append(p.sGrid, e)
	}
	return p, nil
}

// shiftSat returns x·2^e saturated at 64 (in fixed point), beyond which
// Exp2Neg is 0/1 anyway.
func shiftSat(ctx fixpoint.Ctx, x fixpoint.Value, e uint) fixpoint.Value {
	cap64 := fixpoint.Value(64) * ctx.One()
	if x == 0 {
		return 0
	}
	if e >= 64 || x > cap64>>e {
		return cap64
	}
	return x << e
}

// freeSite is an unassigned member of a constraint: its phase-1 firing value
// and probability.
type freeSite struct{ fire, prob fixpoint.Value }

// Instance returns the instance under derandomization.
func (p *Process) Instance() *Instance { return p.inst }

// Unassigned reports whether site j still has a free coin.
func (p *Process) Unassigned(j int) bool {
	return !p.inst.Deterministic(j) && p.coin[j] == coinUnset
}

// SetCoin fixes the coin of site j.
func (p *Process) SetCoin(j int, fire bool) {
	if p.inst.Deterministic(j) {
		panic(fmt.Sprintf("rounding: SetCoin on deterministic site %d", j))
	}
	if fire {
		p.coin[j] = 1
	} else {
		p.coin[j] = 0
	}
}

// Coin returns the coin state of site j (-1, 0, or 1).
func (p *Process) Coin(j int) int8 { return p.coin[j] }

// siteState returns the contribution status of site j under the current
// assignment, optionally overriding site j0 with coin b0 (j0 = -1 for no
// override): (fixed contribution, or unassigned fire value + probability).
func (p *Process) siteTerms(j int, j0 int, b0 int8) (fixed fixpoint.Value, fire, prob fixpoint.Value, unassigned bool) {
	in := p.inst
	if in.Deterministic(j) {
		if in.P[j] == 0 {
			return 0, 0, 0, false
		}
		return in.X[j], 0, 0, false
	}
	c := p.coin[j]
	if j == j0 {
		c = b0
	}
	switch c {
	case 1:
		return in.FireValue(j), 0, 0, false
	case 0:
		return 0, 0, 0, false
	default:
		return 0, in.FireValue(j), in.P[j], true
	}
}

// ConstraintUB returns an upper bound on Pr(E_i | current assignment), the
// probability that constraint i is violated after phase 1, with site j0
// optionally overridden to coin b0 (pass j0 = -1 for no override). The bound
// is exact whenever the product form or exhaustive enumeration applies.
func (p *Process) ConstraintUB(i int, j0 int, b0 int8) fixpoint.Value {
	ctx := p.inst.Ctx
	var fixedSum fixpoint.Value
	var frees []freeSite
	minFire := fixpoint.Value(0)
	for _, j := range p.inst.Members[i] {
		fx, fire, prob, un := p.siteTerms(int(j), j0, b0)
		if un {
			frees = append(frees, freeSite{fire: fire, prob: prob})
			if minFire == 0 || fire < minFire {
				minFire = fire
			}
		} else {
			fixedSum = ctx.Add(fixedSum, fx)
		}
	}
	if fixedSum >= p.inst.C[i] {
		return 0
	}
	deficit := p.inst.C[i] - fixedSum
	if len(frees) == 0 {
		return ctx.One() // deterministically violated
	}
	// Exact product form: any single firing covers the deficit, so the
	// constraint is violated iff no free site fires.
	if minFire >= deficit {
		prUnc := ctx.One()
		for _, f := range frees {
			prUnc = ctx.MulUp(prUnc, ctx.Complement(f.prob))
		}
		return prUnc
	}
	// Exhaustive enumeration over free coins (exact, round-up).
	if len(frees) <= p.exactLimit {
		return p.enumerate(frees, deficit)
	}
	// Deterministic Chernoff estimator, base 2: for every s > 0,
	// Pr(Σ fire_u·B_u < D) ≤ 2^{s·D} · Π_u (p_u·2^{-s·fire_u} + (1-p_u)).
	best := ctx.One()
	for _, e := range p.sGrid {
		prod := ctx.One()
		for _, f := range frees {
			exp := shiftSat(ctx, f.fire, e) // s·fire_u with s = 2^e
			factor := ctx.Add(
				ctx.MulUp(f.prob, ctx.Exp2Neg(exp, true)),
				ctx.Complement(f.prob))
			prod = ctx.MulUp(prod, factor)
			if prod >= best {
				break
			}
		}
		if prod >= best {
			continue
		}
		// bound = prod · 2^{s·D} = prod / 2^{-s·D}, rounded up.
		den := ctx.Exp2Neg(shiftSat(ctx, deficit, e), false)
		if den == 0 {
			continue // 2^{s·D} too large; bound exceeds 1 anyway
		}
		if prod >= den { // bound ≥ 1: useless
			continue
		}
		bound := ctx.DivUp(prod, den)
		if bound < best {
			best = bound
		}
	}
	return best
}

// enumerate computes Pr(Σ fire_u·B_u < deficit) exactly over independent
// coins, rounding up. Branches whose partial sum already covers the deficit
// are pruned.
func (p *Process) enumerate(frees []freeSite, deficit fixpoint.Value) fixpoint.Value {
	ctx := p.inst.Ctx
	var rec func(idx int, sum, prob fixpoint.Value) fixpoint.Value
	rec = func(idx int, sum, prob fixpoint.Value) fixpoint.Value {
		if sum >= deficit {
			return 0
		}
		if idx == len(frees) {
			return prob
		}
		f := frees[idx]
		off := rec(idx+1, sum, ctx.MulUp(prob, ctx.Complement(f.prob)))
		on := rec(idx+1, ctx.Add(sum, f.fire), ctx.MulUp(prob, f.prob))
		return ctx.Add(off, on)
	}
	return fixpoint.Min(rec(0, 0, ctx.One()), ctx.One())
}

// ValueExp returns E[value of site j after phase 1 | assignment], with an
// optional override of site j0 to coin b0.
func (p *Process) ValueExp(j int, j0 int, b0 int8) fixpoint.Value {
	ctx := p.inst.Ctx
	fx, fire, prob, un := p.siteTerms(j, j0, b0)
	if !un {
		return fx
	}
	return ctx.MulUp(prob, fire)
}

// ConditionalCost evaluates the local objective change relevant to fixing
// site j's coin to b: its own expected value plus the violation bounds of
// every constraint it appears in. This is the quantity Ã_{v,b} of
// Lemma 3.10 (equations (2)–(3)) in pessimistic-estimator form.
func (p *Process) ConditionalCost(j int, b bool) fixpoint.Value {
	b0 := int8(0)
	if b {
		b0 = 1
	}
	ctx := p.inst.Ctx
	cost := p.ValueExp(j, j, b0)
	for _, i := range p.constraintsOf[j] {
		cost = ctx.Add(cost, p.ConstraintUB(int(i), j, b0))
	}
	return cost
}

// DecideCoin fixes site j's coin to the argmin of ConditionalCost (ties
// prefer not firing, matching equation (4): fire only on strict
// improvement) and returns the choice.
func (p *Process) DecideCoin(j int) bool {
	fire := p.ConditionalCost(j, true) < p.ConditionalCost(j, false)
	p.SetCoin(j, fire)
	return fire
}

// Phi returns the full current objective Σ_j E[value_j] + Σ_i Pr-bound(E_i):
// the conditional-expectation potential whose initial value is Lemma 3.1's
// A + Σ_v Pr(E_v) bound. Exposed for tests and experiments.
func (p *Process) Phi() fixpoint.Value {
	ctx := p.inst.Ctx
	var phi fixpoint.Value
	for j := range p.inst.X {
		phi = ctx.Add(phi, p.ValueExp(j, -1, 0))
	}
	for i := range p.inst.C {
		phi = ctx.Add(phi, p.ConstraintUB(i, -1, 0))
	}
	return phi
}

// Finalize executes both phases under the fully fixed assignment. It panics
// if any coin is still unassigned.
func (p *Process) Finalize() *Outcome {
	return p.inst.Execute(func(j int) bool {
		if p.coin[j] == coinUnset {
			panic(fmt.Sprintf("rounding: Finalize with unassigned coin %d", j))
		}
		return p.coin[j] == 1
	})
}
