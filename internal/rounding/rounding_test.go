package rounding

import (
	"math"
	"math/rand/v2"
	"testing"

	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/kwise"
)

// uniformFDS returns a 1/F-fractional FDS with every value 1/F on g,
// feasible whenever Δ̃_min ≥ F (e.g. complete graphs or F ≤ min degree+1).
func uniformFDS(g *graph.Graph, f uint64) *fractional.CFDS {
	ctx := fractional.ScaleFor(g.N())
	fds := fractional.NewFDS(ctx, g.N())
	for v := range fds.X {
		fds.X[v] = ctx.FromRatio(1, f, false)
	}
	return fds
}

func TestInstanceValidate(t *testing.T) {
	ctx := fixpoint.Default()
	inst := &Instance{
		Ctx:     ctx,
		X:       []fixpoint.Value{ctx.Half()},
		P:       []fixpoint.Value{ctx.Half()},
		C:       []fixpoint.Value{ctx.One()},
		Members: [][]int32{{0}},
		Owner:   []int32{0},
	}
	if err := inst.Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
	bad := *inst
	bad.P = []fixpoint.Value{ctx.FromFloat(0.25)} // p < x
	if err := bad.Validate(); err == nil {
		t.Error("p < x accepted")
	}
	bad2 := *inst
	bad2.Owner = []int32{5}
	if err := bad2.Validate(); err == nil {
		t.Error("invalid owner accepted")
	}
	bad3 := *inst
	bad3.Members = [][]int32{{7}}
	if err := bad3.Validate(); err == nil {
		t.Error("invalid member accepted")
	}
}

func TestOneShotInstanceShape(t *testing.T) {
	g := graph.Complete(6) // Δ̃ = 6, uniform 1/6 is feasible
	fds := uniformFDS(g, 6)
	ln := fds.Ctx.FromFloat(math.Log(7))
	inst := OneShotOnGraph(g, fds, ln)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if inst.P[v] != inst.X[v] {
			t.Errorf("one-shot p != x at %d", v)
		}
		if inst.Owner[v] != int32(v) {
			t.Errorf("owner wrong at %d", v)
		}
		if len(inst.Members[v]) != g.Degree(v)+1 {
			t.Errorf("members not inclusive at %d", v)
		}
	}
}

func TestFactorTwoInstanceShape(t *testing.T) {
	g := graph.Complete(8)
	ctx := fractional.ScaleFor(8)
	fds := fractional.NewFDS(ctx, 8)
	r := uint64(16)
	for v := range fds.X {
		if v < 4 {
			fds.X[v] = ctx.FromRatio(1, r, false) // small: participates
		} else {
			fds.X[v] = ctx.FromRatio(1, 2, false) // large: keeps value
		}
	}
	inst := FactorTwoOnGraph(g, fds, 0.25, r)
	if err := inst.Validate(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if inst.P[v] != ctx.Half() {
			t.Errorf("small node %d should participate (p=1/2), got %s", v, ctx.String(inst.P[v]))
		}
	}
	for v := 4; v < 8; v++ {
		if inst.P[v] != ctx.One() {
			t.Errorf("large node %d should keep its value", v)
		}
	}
}

// Lemma 3.1 property 1: the output of the process is always feasible
// (every constraint covered after phase 2), for arbitrary coins.
func TestProcessAlwaysFeasible(t *testing.T) {
	g := graph.GNPConnected(24, 0.2, 5)
	fds := uniformFDS(g, 4)
	ln := fds.Ctx.FromFloat(math.Log(float64(g.MaxDegree() + 1)))
	inst := OneShotOnGraph(g, fds, ln)
	r := rand.New(rand.NewPCG(3, 4))
	for trial := 0; trial < 50; trial++ {
		out := inst.Execute(func(j int) bool { return r.IntN(2) == 0 })
		// Verify constraints on the outcome.
		for i, ms := range inst.Members {
			var cov fixpoint.Value
			for _, j := range ms {
				cov = inst.Ctx.Add(cov, out.Values[j])
			}
			if cov < inst.C[i] {
				t.Fatalf("trial %d: constraint %d uncovered after phase 2", trial, i)
			}
		}
	}
}

// Lemma 3.1 property 2 (empirical): mean outcome size ≈ A + Σ Pr(E_v)·1,
// and at most the Phi() bound on average.
func TestProcessExpectedSizeMatchesPhi(t *testing.T) {
	g := graph.GNPConnected(20, 0.3, 7)
	fds := uniformFDS(g, 3)
	ln := fds.Ctx.FromFloat(math.Log(float64(g.MaxDegree() + 1)))
	inst := OneShotOnGraph(g, fds, ln)
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	phi := inst.Ctx.Float(proc.Phi())
	r := rand.New(rand.NewPCG(9, 1))
	const trials = 4000
	var total float64
	for trial := 0; trial < trials; trial++ {
		out := inst.Execute(func(j int) bool {
			// true with probability p(j), via 40-bit threshold sampling
			return fixpoint.Value(r.Uint64N(uint64(inst.Ctx.One()))) < inst.P[j]
		})
		total += inst.Ctx.Float(out.Size(inst.Ctx))
	}
	mean := total / trials
	if mean > phi*1.05+0.5 {
		t.Errorf("mean realized size %.3f exceeds Phi bound %.3f", mean, phi)
	}
}

// The product form must be exact: a single constraint where any firing
// covers it.
func TestConstraintUBProductExact(t *testing.T) {
	ctx := fixpoint.Default()
	half := ctx.Half()
	inst := &Instance{
		Ctx:     ctx,
		X:       []fixpoint.Value{half, half},
		P:       []fixpoint.Value{half, half},
		C:       []fixpoint.Value{ctx.One()},
		Members: [][]int32{{0, 1}},
		Owner:   []int32{0},
	}
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	// fire value = x/p = 1 ≥ deficit 1; Pr(unc) = (1-1/2)² = 1/4 exactly.
	got := ctx.Float(proc.ConstraintUB(0, -1, 0))
	if math.Abs(got-0.25) > 1e-9 {
		t.Errorf("UB=%v, want 0.25", got)
	}
	// Conditioning: coin 0 fires → covered, Pr = 0.
	if proc.ConstraintUB(0, 0, 1) != 0 {
		t.Error("UB with fired coin should be 0")
	}
	// Coin 0 off → Pr = 1-1/2 = 1/2.
	got = ctx.Float(proc.ConstraintUB(0, 0, 0))
	if math.Abs(got-0.5) > 1e-9 {
		t.Errorf("UB with off coin=%v, want 0.5", got)
	}
}

// Enumeration exactness on a small instance where partial firings matter:
// threshold 1, two sites with fire value 0.6 and p=1/2 each; covered only if
// both fire: Pr(unc) = 3/4.
func TestConstraintUBEnumerationExact(t *testing.T) {
	ctx := fixpoint.Default()
	x := ctx.FromFloat(0.3)
	inst := &Instance{
		Ctx:     ctx,
		X:       []fixpoint.Value{x, x},
		P:       []fixpoint.Value{ctx.Half(), ctx.Half()},
		C:       []fixpoint.Value{ctx.One()},
		Members: [][]int32{{0, 1}},
		Owner:   []int32{0},
	}
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.Float(proc.ConstraintUB(0, -1, 0))
	if math.Abs(got-0.75) > 1e-9 {
		t.Errorf("UB=%v, want 0.75", got)
	}
}

// The Chernoff path must (a) upper-bound the true probability and (b) be
// nontrivial for a concentrated sum. 40 sites each fire 0.1 w.p. 1/2,
// threshold 1: E[sum]=2, Pr(sum<1) is small.
func TestConstraintUBChernoffPath(t *testing.T) {
	ctx := fixpoint.Default()
	n := 40
	inst := &Instance{Ctx: ctx}
	members := make([]int32, n)
	for j := 0; j < n; j++ {
		inst.X = append(inst.X, ctx.FromFloat(0.05))
		inst.P = append(inst.P, ctx.Half())
		members[j] = int32(j)
	}
	inst.C = []fixpoint.Value{ctx.One()}
	inst.Members = [][]int32{members}
	inst.Owner = []int32{0}
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	ub := ctx.Float(proc.ConstraintUB(0, -1, 0))
	if ub >= 1 {
		t.Fatalf("Chernoff bound trivial: %v", ub)
	}
	// True probability by Monte Carlo.
	r := rand.New(rand.NewPCG(2, 8))
	const trials = 20000
	unc := 0
	for trial := 0; trial < trials; trial++ {
		var sum float64
		for j := 0; j < n; j++ {
			if r.IntN(2) == 0 {
				sum += 0.1
			}
		}
		if sum < 1 {
			unc++
		}
	}
	truth := float64(unc) / trials
	if ub < truth {
		t.Errorf("Chernoff bound %v below Monte Carlo estimate %v", ub, truth)
	}
}

// Averaging property: for every unassigned coin, min_b ConditionalCost ≤
// the unconditioned cost contribution (supermartingale step of the method of
// conditional expectations, Lemma 3.10's key inequality).
func TestConditionalCostAveraging(t *testing.T) {
	g := graph.GNPConnected(18, 0.25, 13)
	fds := uniformFDS(g, 3)
	ln := fds.Ctx.FromFloat(math.Log(float64(g.MaxDegree() + 1)))
	inst := OneShotOnGraph(g, fds, ln)
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	ctx := inst.Ctx
	slack := ctx.FromFloat(1e-6)
	for j := 0; j < g.N(); j++ {
		if !proc.Unassigned(j) {
			continue
		}
		// Unconditioned local cost.
		base := proc.ValueExp(j, -1, 0)
		for _, i := range proc.constraintsOf[j] {
			base = ctx.Add(base, proc.ConstraintUB(int(i), -1, 0))
		}
		c0 := proc.ConditionalCost(j, false)
		c1 := proc.ConditionalCost(j, true)
		min := fixpoint.Min(c0, c1)
		if min > ctx.Add(base, slack) {
			t.Fatalf("site %d: min(cost)=%s exceeds base=%s",
				j, ctx.String(min), ctx.String(base))
		}
	}
}

// Full derandomized pass: fixing every coin greedily must end with realized
// size ≤ initial Phi (plus tiny quantization slack).
func TestDerandomizedSizeWithinPhi(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		g := graph.GNPConnected(30, 0.2, seed)
		fds := uniformFDS(g, 4)
		ln := fds.Ctx.FromFloat(math.Log(float64(g.MaxDegree() + 1)))
		inst := OneShotOnGraph(g, fds, ln)
		proc, err := NewProcess(inst)
		if err != nil {
			t.Fatal(err)
		}
		phi0 := inst.Ctx.Float(proc.Phi())
		for j := 0; j < g.N(); j++ {
			if proc.Unassigned(j) {
				proc.DecideCoin(j)
			}
		}
		out := proc.Finalize()
		size := inst.Ctx.Float(out.Size(inst.Ctx))
		if size > phi0+0.01*phi0+0.1 {
			t.Errorf("seed %d: derandomized size %.4f exceeds Phi %.4f", seed, size, phi0)
		}
	}
}

// Phase 2 always rescues: constraints impossible to cover in phase 1 get
// their owner set to 1.
func TestPhaseTwoRescue(t *testing.T) {
	ctx := fixpoint.Default()
	inst := &Instance{
		Ctx:     ctx,
		X:       []fixpoint.Value{ctx.FromFloat(0.1)},
		P:       []fixpoint.Value{ctx.FromFloat(0.1)},
		C:       []fixpoint.Value{ctx.One()},
		Members: [][]int32{{0}},
		Owner:   []int32{0},
	}
	out := inst.Execute(func(int) bool { return false })
	if out.Rescued != 1 {
		t.Errorf("Rescued=%d, want 1", out.Rescued)
	}
	if out.Values[0] != ctx.One() {
		t.Error("owner not raised to 1")
	}
}

// Lemma 3.6 (empirical): one-shot rounding with k-wise coins, k ≥ F, leaves
// a node uncovered with probability ≤ 1/Δ̃ (up to sampling error).
func TestLemma36UncoveredProbability(t *testing.T) {
	g := graph.Complete(12) // Δ̃ = 12, uniform 1/12-fractional FDS
	f := uint64(12)
	fds := uniformFDS(g, f)
	ln := fds.Ctx.FromFloat(math.Log(13))
	inst := OneShotOnGraph(g, fds, ln)
	gen, err := kwise.New(int(f), g.N(), fds.Ctx.Scale())
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(4, 2))
	const trials = 3000
	uncoveredEvents := 0
	for trial := 0; trial < trials; trial++ {
		seed := gen.RandomSeed(r)
		out := inst.Execute(func(j int) bool {
			return gen.Coin(seed, j, uint64(inst.P[j]))
		})
		uncoveredEvents += out.Rescued
	}
	perNode := float64(uncoveredEvents) / float64(trials*g.N())
	bound := 1.0 / 13
	if perNode > bound*1.5+0.02 {
		t.Errorf("Pr(E_v) ≈ %.4f exceeds Lemma 3.6 bound %.4f", perNode, bound)
	}
}

func TestFinalizePanicsOnUnassigned(t *testing.T) {
	g := graph.Path(3)
	fds := uniformFDS(g, 2)
	inst := OneShotOnGraph(g, fds, fds.Ctx.FromFloat(0.5))
	proc, err := NewProcess(inst)
	if err != nil {
		t.Fatal(err)
	}
	hasFree := false
	for j := 0; j < 3; j++ {
		if proc.Unassigned(j) {
			hasFree = true
		}
	}
	if !hasFree {
		t.Skip("no free coins in this configuration")
	}
	defer func() {
		if recover() == nil {
			t.Error("Finalize with unassigned coins did not panic")
		}
	}()
	proc.Finalize()
}
