// Package rounding implements the paper's abstract randomized rounding
// process (Section 3.1) together with the conditional-probability machinery
// needed to derandomize it by the method of conditional expectations
// (Sections 3.2 and 3.3).
//
// The process is defined over an abstract constraint structure rather than a
// graph, so the same code serves the plain inclusive-neighbourhood instances
// of Lemmas 3.8/3.9 and the split bipartite instances of Lemmas 3.13/3.14:
// value sites carry (x, p) pairs; constraint sites carry thresholds and
// member lists. Phase 1 sets each value site to x/p with probability p and
// to 0 otherwise; phase 2 sets the owner of every violated constraint to 1
// (Lemma 3.1).
package rounding

import (
	"fmt"

	"congestds/internal/fixpoint"
	"congestds/internal/fractional"
	"congestds/internal/graph"
)

// Instance is one instantiation of the abstract randomized rounding process.
type Instance struct {
	Ctx fixpoint.Ctx
	// X and P are per value site: the current fractional value and the
	// rounding probability, with P[j] ≥ X[j] as Section 3.1 requires
	// (P[j] = 1 means the site keeps X[j] deterministically).
	X, P []fixpoint.Value
	// C and Members are per constraint: the threshold and the value sites
	// whose phase-1 values count toward it.
	C       []fixpoint.Value
	Members [][]int32
	// Owner maps each constraint to the value site that is set to 1 in
	// phase 2 if the constraint is violated after phase 1.
	Owner []int32
}

// Validate checks the structural invariants of the instance.
func (in *Instance) Validate() error {
	if len(in.X) != len(in.P) {
		return fmt.Errorf("rounding: |X|=%d |P|=%d", len(in.X), len(in.P))
	}
	if len(in.C) != len(in.Members) || len(in.C) != len(in.Owner) {
		return fmt.Errorf("rounding: constraints inconsistent: %d/%d/%d",
			len(in.C), len(in.Members), len(in.Owner))
	}
	one := in.Ctx.One()
	for j := range in.X {
		if in.X[j] > one {
			return fmt.Errorf("rounding: x(%d) > 1", j)
		}
		if in.P[j] < in.X[j] {
			return fmt.Errorf("rounding: p(%d)=%s < x(%d)=%s", j,
				in.Ctx.String(in.P[j]), j, in.Ctx.String(in.X[j]))
		}
		if in.P[j] > one {
			return fmt.Errorf("rounding: p(%d) > 1", j)
		}
	}
	for i, ms := range in.Members {
		if in.C[i] > one {
			return fmt.Errorf("rounding: c(%d) > 1", i)
		}
		for _, j := range ms {
			if int(j) >= len(in.X) || j < 0 {
				return fmt.Errorf("rounding: constraint %d references site %d", i, j)
			}
		}
		if int(in.Owner[i]) >= len(in.X) || in.Owner[i] < 0 {
			return fmt.Errorf("rounding: constraint %d has invalid owner %d", i, in.Owner[i])
		}
	}
	return nil
}

// FireValue returns the phase-1 "on" value x(j)/p(j) of site j (0 for
// p(j)=0), rounded down so realized feasibility claims stay conservative.
func (in *Instance) FireValue(j int) fixpoint.Value {
	if in.P[j] == 0 {
		return 0
	}
	if in.P[j] == in.Ctx.One() {
		return in.X[j]
	}
	return in.Ctx.DivDown(in.X[j], in.P[j])
}

// Deterministic reports whether site j does not flip a coin (p ∈ {0, 1}).
func (in *Instance) Deterministic(j int) bool {
	return in.P[j] == 0 || in.P[j] == in.Ctx.One()
}

// InputSize returns Σ_j X[j] (the "A" of Lemma 3.1).
func (in *Instance) InputSize() fixpoint.Value {
	var s fixpoint.Value
	for _, x := range in.X {
		s = in.Ctx.Add(s, x)
	}
	return s
}

// OneShotOnGraph builds the one-shot rounding instance of Section 3.2 on a
// graph: x(v) = min(1, ln(Δ̃)·x'(v)), p(v) = x(v), constraints are the
// inclusive neighbourhoods with threshold 1, and every node owns its own
// constraint.
func OneShotOnGraph(g *graph.Graph, fds *fractional.CFDS, lnDeltaTilde fixpoint.Value) *Instance {
	ctx := fds.Ctx
	n := g.N()
	inst := &Instance{
		Ctx:     ctx,
		X:       make([]fixpoint.Value, n),
		P:       make([]fixpoint.Value, n),
		C:       make([]fixpoint.Value, n),
		Members: make([][]int32, n),
		Owner:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		x := ctx.Clamp1(ctx.MulUp(fds.X[v], lnDeltaTilde))
		inst.X[v] = x
		inst.P[v] = x
		inst.C[v] = ctx.One()
		inst.Members[v] = g.InclusiveNeighbors(nil, v)
		inst.Owner[v] = int32(v)
	}
	return inst
}

// FactorTwoOnGraph builds the factor-two rounding instance of Section 3.2:
// x(v) = min(1, (1+ε)·x'(v)); nodes with x(v) < 2/r participate with
// p(v) = 1/2, the rest keep their value (p = 1).
func FactorTwoOnGraph(g *graph.Graph, fds *fractional.CFDS, eps float64, r uint64) *Instance {
	ctx := fds.Ctx
	n := g.N()
	onePlusEps := ctx.Add(ctx.One(), ctx.FromFloat(eps))
	twoOverR := ctx.FromRatio(2, r, false)
	inst := &Instance{
		Ctx:     ctx,
		X:       make([]fixpoint.Value, n),
		P:       make([]fixpoint.Value, n),
		C:       make([]fixpoint.Value, n),
		Members: make([][]int32, n),
		Owner:   make([]int32, n),
	}
	for v := 0; v < n; v++ {
		x := ctx.Clamp1(ctx.MulUp(fds.X[v], onePlusEps))
		inst.X[v] = x
		if x < twoOverR {
			inst.P[v] = ctx.Half()
		} else {
			inst.P[v] = ctx.One()
		}
		inst.C[v] = ctx.One()
		inst.Members[v] = g.InclusiveNeighbors(nil, v)
		inst.Owner[v] = int32(v)
	}
	return inst
}

// Outcome is the result of executing both phases of the process for a full
// coin assignment.
type Outcome struct {
	// Values are the final per-site values (after phase 2), clamped to 1.
	Values []fixpoint.Value
	// Rescued counts constraints that were violated after phase 1 (their
	// owners joined in phase 2) — the realized Σ 1{E_i}.
	Rescued int
}

// Size returns the total size Σ values of the outcome.
func (o *Outcome) Size(ctx fixpoint.Ctx) fixpoint.Value {
	var s fixpoint.Value
	for _, v := range o.Values {
		s = ctx.Add(s, v)
	}
	return s
}

// Execute runs both phases for the coin assignment given by coins: coins(j)
// is consulted only for non-deterministic sites and reports whether site j
// fires. This is used by the randomized baselines (true randomness or
// k-wise seeds, Lemmas 3.6/3.7) and by the derandomization engines once all
// coins are fixed.
func (in *Instance) Execute(coins func(j int) bool) *Outcome {
	ctx := in.Ctx
	vals := make([]fixpoint.Value, len(in.X))
	for j := range in.X {
		switch {
		case in.Deterministic(j):
			if in.P[j] == 0 {
				vals[j] = 0
			} else {
				vals[j] = in.X[j]
			}
		case coins(j):
			vals[j] = ctx.Clamp1(in.FireValue(j))
		default:
			vals[j] = 0
		}
	}
	out := &Outcome{Values: vals}
	// Phase 2 is evaluated against phase-1 values only: collect the violated
	// constraints first, then raise their owners.
	var violated []int32
	for i, ms := range in.Members {
		var cov fixpoint.Value
		for _, j := range ms {
			cov = ctx.Add(cov, vals[j])
		}
		if cov < in.C[i] {
			violated = append(violated, in.Owner[i])
		}
	}
	for _, j := range violated {
		vals[j] = ctx.One()
	}
	out.Rescued = len(violated)
	return out
}
