package serve

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"congestds/internal/graph"
)

// ErrUnknownGraph is wrapped by Store.Acquire when a name resolves to no
// registered path and no file under the store's directory root. Handlers
// map it to 404.
var ErrUnknownGraph = errors.New("serve: unknown graph")

// Resident is one graph held resident by a Store. The embedded closer owns
// the backing resources (the memory mapping for .csrg graphs); the Store
// closes it on eviction, which is why residents are refcounted — unmapping
// pages under a running engine would be a SIGBUS, so eviction skips pinned
// entries.
type Resident struct {
	Name   string
	Path   string
	G      *graph.Graph
	FP     uint32 // graph.Fingerprint of G
	Bytes  int64  // CSR residency cost (graph.Graph.Bytes)
	Mapped bool   // served zero-copy from a .csrg mapping

	closer io.Closer
	refs   int // pins held by in-flight requests; evictable only at 0
	elem   *list.Element

	diamOnce sync.Once
	diam     int
}

// DiamBound returns the host-side diameter bound 2·ecc(0)+2 used for
// orientation-phase families when the request does not carry one. Computed
// lazily (one BFS) and cached for the resident's lifetime: the graph is
// immutable, so the bound is too — and a cached bound means every request
// against this resident canonicalizes to the same Params.Key.
func (r *Resident) DiamBound() int {
	r.diamOnce.Do(func() { r.diam = 2*r.G.Eccentricity(0) + 2 })
	return r.diam
}

// Store keeps graphs resident behind an LRU with a byte budget. Names
// resolve through the preregistered name→path table first, then (when a
// directory root is configured) as relative paths under it. Loads happen
// under the store lock, so concurrent requests for the same cold graph
// load it exactly once — the graph-level analogue of the request
// singleflight.
type Store struct {
	mu        sync.Mutex
	budget    int64 // byte budget; 0 = unlimited
	used      int64
	graphs    map[string]string // preregistered name → path
	dir       string            // optional on-demand root
	res       map[string]*Resident
	order     *list.List // front = most recently used
	evictions int64
}

// NewStore creates a Store over the preregistered graphs and optional
// directory root, with the given resident byte budget (0 = unlimited).
func NewStore(graphs map[string]string, dir string, budget int64) *Store {
	g := make(map[string]string, len(graphs))
	for name, path := range graphs {
		g[name] = path
	}
	return &Store{
		budget: budget,
		graphs: g,
		dir:    dir,
		res:    map[string]*Resident{},
		order:  list.New(),
	}
}

// resolve maps a request name to a loadable path.
func (st *Store) resolve(name string) (string, error) {
	if path, ok := st.graphs[name]; ok {
		return path, nil
	}
	if st.dir != "" {
		if name == "" || filepath.IsAbs(name) || strings.Contains(name, "..") {
			return "", fmt.Errorf("%w: invalid name %q", ErrUnknownGraph, name)
		}
		return filepath.Join(st.dir, filepath.Clean(name)), nil
	}
	return "", fmt.Errorf("%w: %q (graphs: %s)", ErrUnknownGraph, name, strings.Join(st.names(), ", "))
}

// names returns the registered graph names, sorted. Callers hold st.mu.
func (st *Store) names() []string {
	names := make([]string, 0, len(st.graphs))
	for name := range st.graphs {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Acquire returns the named graph, loading it if it is not resident, and
// pins it against eviction until the matching Release. A load failure on a
// name that resolves to no path wraps ErrUnknownGraph.
func (st *Store) Acquire(name string) (*Resident, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r, ok := st.res[name]; ok {
		st.order.MoveToFront(r.elem)
		r.refs++
		return r, nil
	}
	path, err := st.resolve(name)
	if err != nil {
		return nil, err
	}
	g, closer, err := graph.Load(path)
	if err != nil {
		return nil, fmt.Errorf("serve: loading graph %q from %s: %w", name, path, err)
	}
	r := &Resident{
		Name:   name,
		Path:   path,
		G:      g,
		FP:     graph.Fingerprint(g),
		Bytes:  g.Bytes(),
		Mapped: strings.HasSuffix(path, ".csrg"),
		closer: closer,
		refs:   1,
	}
	r.elem = st.order.PushFront(r)
	st.res[name] = r
	st.used += r.Bytes
	st.evict()
	return r, nil
}

// Release unpins a resident returned by Acquire and retries any eviction
// the pin was blocking.
func (st *Store) Release(r *Resident) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if r.refs > 0 {
		r.refs--
	}
	st.evict()
}

// evict closes least-recently-used unpinned residents until the store fits
// its budget. Pinned residents are skipped, so the store can transiently
// exceed the budget while every resident is in use — residency is a cache
// hint, correctness (no unmap under a run) wins. Callers hold st.mu.
func (st *Store) evict() {
	if st.budget <= 0 {
		return
	}
	for e := st.order.Back(); e != nil && st.used > st.budget; {
		prev := e.Prev()
		r := e.Value.(*Resident)
		if r.refs == 0 {
			st.order.Remove(e)
			delete(st.res, r.Name)
			st.used -= r.Bytes
			st.evictions++
			r.closer.Close()
		}
		e = prev
	}
}

// Residents returns a snapshot of the resident graphs, most recently used
// first.
func (st *Store) Residents() []ResidentInfo {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ResidentInfo, 0, st.order.Len())
	for e := st.order.Front(); e != nil; e = e.Next() {
		r := e.Value.(*Resident)
		out = append(out, ResidentInfo{
			Name:        r.Name,
			Path:        r.Path,
			Fingerprint: fmt.Sprintf("%08x", r.FP),
			N:           r.G.N(),
			M:           r.G.M(),
			Bytes:       r.Bytes,
			Mapped:      r.Mapped,
			Pinned:      r.refs > 0,
		})
	}
	return out
}

// ResidentInfo is the /graphs listing row.
type ResidentInfo struct {
	Name        string `json:"name"`
	Path        string `json:"path"`
	Fingerprint string `json:"fingerprint"`
	N           int    `json:"n"`
	M           int    `json:"m"`
	Bytes       int64  `json:"bytes"`
	Mapped      bool   `json:"mapped"`
	Pinned      bool   `json:"pinned"`
}

// Usage returns the resident count, total resident bytes and eviction
// count.
func (st *Store) Usage() (residents int, bytes int64, evictions int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.res), st.used, st.evictions
}
