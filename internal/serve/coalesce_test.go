package serve

// Coalescing proof: N concurrent identical requests observe exactly one
// engine run. Proven two independent ways — a gated synthetic family held
// in flight until every follower has provably joined the leader's flight,
// and a real family where a counting obs.Sink observes how many engine
// runs the server actually performed — plus a distinct-params control
// showing different parameters never share a flight. The CI serve job runs
// this file under -race.

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"

	"congestds/internal/obs"
)

// concurrency is the request fan-in for the coalescing proofs; the issue
// pins ≥ 8.
const concurrency = 8

// fanIn fires n concurrent GETs against url and returns their statuses,
// cache states and bodies, index-aligned.
func fanIn(t *testing.T, url string, n int, ready func()) (statuses []int, states []string, bodies [][]byte) {
	t.Helper()
	statuses = make([]int, n)
	states = make([]string, n)
	bodies = make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(url)
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			buf.ReadFrom(resp.Body)
			statuses[i] = resp.StatusCode
			states[i] = resp.Header.Get("X-Mdsd-Cache")
			bodies[i] = buf.Bytes()
		}(i)
	}
	if ready != nil {
		ready()
	}
	wg.Wait()
	return statuses, states, bodies
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestCoalescingGatedExactlyOneRun(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})
	entered, release := armGate(t, concurrency)

	url := ts.URL + "/solve?graph=g&algo=" + testFamPrefix + "gate"
	statuses, states, bodies := fanIn(t, url, concurrency, func() {
		// One leader is inside Solve, blocked on the gate...
		<-entered
		// ...and every other request is provably blocked on its flight.
		waitFor(t, "followers to join the flight", func() bool {
			return s.flight.waiting() == concurrency-1
		})
		close(release)
	})

	miss, coalesced := 0, 0
	for i := range statuses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
		switch states[i] {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Errorf("request %d: X-Mdsd-Cache = %q", i, states[i])
		}
	}
	if miss != 1 || coalesced != concurrency-1 {
		t.Errorf("cache states: %d miss, %d coalesced; want 1 and %d", miss, coalesced, concurrency-1)
	}

	st := s.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want exactly 1 engine run for %d identical requests", st.Runs, concurrency)
	}
	if st.CoalescedHits != concurrency-1 {
		t.Errorf("CoalescedHits = %d, want %d", st.CoalescedHits, concurrency-1)
	}
	if st.CacheMisses != 1 || st.CacheHits != 0 {
		t.Errorf("cache misses/hits = %d/%d, want 1/0", st.CacheMisses, st.CacheHits)
	}

	// No second entry into Solve ever happened.
	select {
	case <-entered:
		t.Error("a second engine run entered the gate")
	default:
	}
}

// runCounter counts engine runs by watching for each run's first round
// record (Seg 0, Round 1) — a signal only a real engine run emits.
type runCounter struct {
	mu   sync.Mutex
	runs int
}

func (c *runCounter) Round(r obs.RoundRec) {
	if r.Seg == 0 && r.Round == 1 {
		c.mu.Lock()
		c.runs++
		c.mu.Unlock()
	}
}
func (c *runCounter) Event(obs.EventRec) {}
func (c *runCounter) Close() error       { return nil }

func (c *runCounter) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.runs
}

func TestCoalescingRealFamilySingleEngineRun(t *testing.T) {
	dir := t.TempDir()
	path := writeCSRG(t, dir, "g.csrg", testGraph())
	counter := &runCounter{}
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}, RunSink: counter})

	url := ts.URL + "/solve?graph=g&algo=arbmds"
	statuses, _, bodies := fanIn(t, url, concurrency, nil)
	for i := range statuses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d, body %s", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Errorf("request %d body differs", i)
		}
	}
	// Whether each request coalesced onto the leader's flight or landed
	// after it as a cache hit, the engine must have run exactly once.
	if got := counter.count(); got != 1 {
		t.Errorf("engine ran %d times for %d identical requests, want 1", got, concurrency)
	}
	st := s.Stats()
	if st.Runs != 1 {
		t.Errorf("Runs = %d, want 1", st.Runs)
	}
	if st.CoalescedHits+st.CacheHits != concurrency-1 {
		t.Errorf("coalesced %d + cache hits %d ≠ %d followers",
			st.CoalescedHits, st.CacheHits, concurrency-1)
	}
}

func TestDistinctParamsDoNotCoalesce(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})
	entered, release := armGate(t, 2)

	base := ts.URL + "/solve?graph=g&algo=" + testFamPrefix + "gate&eps="
	var wg sync.WaitGroup
	bodies := make([][]byte, 2)
	for i, eps := range []string{"0.3", "0.7"} {
		wg.Add(1)
		go func(i int, eps string) {
			defer wg.Done()
			_, _, _, bodies[i] = get(t, base+eps)
		}(i, eps)
	}
	// Both requests enter Solve concurrently: neither waited on the other.
	<-entered
	<-entered
	close(release)
	wg.Wait()

	if bytes.Equal(bodies[0], bodies[1]) {
		t.Errorf("distinct eps produced identical bodies: %s", bodies[0])
	}
	st := s.Stats()
	if st.Runs != 2 || st.CoalescedHits != 0 {
		t.Errorf("Runs/CoalescedHits = %d/%d, want 2/0 — distinct params must not share a flight",
			st.Runs, st.CoalescedHits)
	}
}
