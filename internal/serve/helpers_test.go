package serve

// Shared fixtures for the service-level suite: synthetic algorithm
// families (one per sentinel class, a certificate-violating one, and a
// gated one whose Solve blocks on a channel so coalescing tests can hold a
// run in flight deterministically), graph files in both on-disk formats,
// and an httptest harness. Synthetic families are registered under a
// "zz-test-" prefix; the every-registered-family sweeps skip that prefix.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/family"
	"congestds/internal/graph"
)

const testFamPrefix = "zz-test-"

// testCert is the synthetic families' certificate.
type testCert struct{ ok bool }

func (c testCert) Passed() bool   { return c.ok }
func (c testCert) String() string { return fmt.Sprintf("test certificate (ok=%v)", c.ok) }

// sentinelFamilies maps each congest sentinel class to the synthetic
// family whose Solve fails with a (wrapped) error of that class.
var sentinelFamilies = map[string]string{
	"bandwidth":  testFamPrefix + "err-bandwidth",
	"max-rounds": testFamPrefix + "err-maxrounds",
	"deadline":   testFamPrefix + "err-deadline",
	"injected":   testFamPrefix + "err-injected",
	"bad-ckpt":   testFamPrefix + "err-badckpt",
	"config":     testFamPrefix + "err-config",
	"program":    testFamPrefix + "err-program",
}

// Gate plumbing for the gated family. Guarded by gateMu; tests in this
// package do not run in parallel.
var (
	gateMu      sync.Mutex
	gateEntered chan struct{} // Solve sends one token on entry when non-nil
	gateRelease chan struct{} // Solve blocks until closed when non-nil
)

// armGate installs fresh gate channels sized for n concurrent runs and
// returns them; the cleanup disarms the gate.
func armGate(t *testing.T, n int) (entered chan struct{}, release chan struct{}) {
	t.Helper()
	entered = make(chan struct{}, n)
	release = make(chan struct{})
	gateMu.Lock()
	gateEntered, gateRelease = entered, release
	gateMu.Unlock()
	t.Cleanup(func() {
		gateMu.Lock()
		gateEntered, gateRelease = nil, nil
		gateMu.Unlock()
	})
	return entered, release
}

var registerTestFamilies = sync.OnceFunc(func() {
	for class, name := range sentinelFamilies {
		cause := map[string]error{
			"bandwidth":  congest.ErrBandwidth,
			"max-rounds": congest.ErrMaxRounds,
			"deadline":   congest.ErrDeadline,
			"injected":   congest.ErrInjected,
			"bad-ckpt":   congest.ErrBadCkpt,
			"config":     congest.ErrConfig,
			"program":    errors.New("synthetic program failure"),
		}[class]
		family.Register(family.Family{
			Name:       name,
			Summary:    "test-only: always fails with the " + class + " sentinel",
			DefaultEps: 0.5,
			Solve: func(g *graph.Graph, p family.Params) (*family.Result, error) {
				return nil, fmt.Errorf("synthetic failure: %w", cause)
			},
		})
	}
	family.Register(family.Family{
		Name:       testFamPrefix + "certfail",
		Summary:    "test-only: returns a solution whose certificate fails",
		DefaultEps: 0.5,
		Solve: func(g *graph.Graph, p family.Params) (*family.Result, error) {
			return &family.Result{Set: []int{0}, Rounds: 1, Cert: testCert{ok: false}}, nil
		},
	})
	family.Register(family.Family{
		Name:       testFamPrefix + "gate",
		Summary:    "test-only: blocks on the package gate, result depends on eps",
		DefaultEps: 0.5,
		Solve: func(g *graph.Graph, p family.Params) (*family.Result, error) {
			gateMu.Lock()
			entered, release := gateEntered, gateRelease
			gateMu.Unlock()
			if entered != nil {
				entered <- struct{}{}
			}
			if release != nil {
				<-release
			}
			// The solution depends on eps so distinct-params requests can
			// be told apart by body bytes, not just headers.
			size := 1 + int(p.Eps*10)
			if size > g.N() {
				size = g.N()
			}
			set := make([]int, size)
			for i := range set {
				set[i] = i
			}
			return &family.Result{Set: set, Rounds: 1, Cert: testCert{ok: true}}, nil
		},
	})
})

// testGraph is the small connected fixture every suite shares.
func testGraph() *graph.Graph { return graph.GNPConnected(24, 0.18, 7) }

// writeText writes g in the text edge-list format and returns the path.
func writeText(t *testing.T, dir, name string, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// writeCSRG writes g in the binary .csrg format and returns the path.
func writeCSRG(t *testing.T, dir, name string, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := g.WriteCSRGFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// newTestServer builds a Server over the given graphs and wraps it in an
// httptest.Server. The congest engine defaults to stepped — the
// deterministic engine the rest of the repo's tests pin.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	registerTestFamilies()
	if cfg.Engine == 0 {
		cfg.Engine = congest.EngineStepped
	}
	s := New(cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// get performs a GET and returns status, the X-Mdsd-* headers and body.
func get(t *testing.T, url string) (status int, cacheState, sentinel string, body []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s body: %v", url, err)
	}
	return resp.StatusCode, resp.Header.Get("X-Mdsd-Cache"), resp.Header.Get("X-Mdsd-Sentinel"), body
}
