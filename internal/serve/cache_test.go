package serve

// Cache correctness: the fingerprint key is representation-independent
// (heap text load and zero-copy .csrg mapping of the same graph share one
// cache entry), any semantic parameter change busts the cache while
// default-vs-explicit spellings of the same parameters collide, and both
// LRUs (result cache and graph store) honor their byte budgets.

import (
	"bytes"
	"errors"
	"fmt"
	"net/http"
	"testing"

	"congestds/internal/graph"
)

func TestHeapAndMmapShareOneCacheEntry(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	txt := writeText(t, dir, "g.txt", g)
	csrg := writeCSRG(t, dir, "g.csrg", g)
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"heap": txt, "mmap": csrg}})

	_, state1, _, body1 := get(t, ts.URL+"/solve?graph=heap&algo=arbmds")
	_, state2, _, body2 := get(t, ts.URL+"/solve?graph=mmap&algo=arbmds")
	if state1 != "miss" || state2 != "hit" {
		t.Errorf("cache states = %q, %q; want miss then hit — same content, same key", state1, state2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("heap and mmap bodies differ:\n%s\nvs\n%s", body1, body2)
	}
	st := s.Stats()
	if st.Runs != 1 || st.CacheHits != 1 {
		t.Errorf("Runs/CacheHits = %d/%d, want 1/1", st.Runs, st.CacheHits)
	}
	// Both representations are resident and agree on the fingerprint.
	res := s.store.Residents()
	if len(res) != 2 || res[0].Fingerprint != res[1].Fingerprint {
		t.Fatalf("residents = %+v, want two with equal fingerprints", res)
	}
	if res[0].Mapped == res[1].Mapped {
		t.Errorf("expected one mapped and one heap resident: %+v", res)
	}
}

func TestStoreFingerprintMatchesAcrossRepresentations(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	txt := writeText(t, dir, "g.txt", g)
	csrg := writeCSRG(t, dir, "g.csrg", g)
	st := NewStore(map[string]string{"heap": txt, "mmap": csrg}, "", 0)

	heap, err := st.Acquire("heap")
	if err != nil {
		t.Fatal(err)
	}
	mmap, err := st.Acquire("mmap")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release(heap)
	defer st.Release(mmap)
	if heap.FP != mmap.FP {
		t.Errorf("fingerprints differ across representations: %08x vs %08x", heap.FP, mmap.FP)
	}
	if heap.FP != graph.Fingerprint(g) {
		t.Errorf("store fingerprint %08x ≠ direct fingerprint %08x", heap.FP, graph.Fingerprint(g))
	}
	if heap.Mapped || !mmap.Mapped {
		t.Errorf("Mapped flags wrong: heap=%v mmap=%v", heap.Mapped, mmap.Mapped)
	}
}

func TestCacheBustsOnAnyParamChange(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	_, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	cases := []struct {
		name  string
		algo  string
		base  string // extra query for the priming request
		probe string // extra query for the probe request
		want  string // expected X-Mdsd-Cache on the probe
	}{
		// Any semantic parameter change busts the cache...
		{"eps busts", "arbmds", "", "&eps=0.25", "miss"},
		{"sim busts", "arbmds", "", "&sim=goroutine", "miss"},
		{"maxrounds busts", "arbmds", "", "&maxrounds=500", "miss"},
		{"diam busts (NeedsDiam family)", "mcds", "&diam=12", "&diam=14", "miss"},
		// ...while spellings the family treats identically collide.
		{"default eps collides", "arbmds", "", "&eps=0.5", "hit"},
		{"explicit default engine collides", "arbmds", "", "&sim=stepped", "hit"},
		{"diam ignored (family without NeedsDiam)", "arbmds", "", "&diam=9", "hit"},
		{"zero maxrounds collides", "arbmds", "", "&maxrounds=0", "hit"},
		{"deadline is execution context, not key", "arbmds", "", "&deadline=1h", "hit"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := ts.URL + "/solve?graph=g&algo=" + tc.algo + tc.base
			status, _, _, body := get(t, base)
			if status != http.StatusOK {
				t.Fatalf("prime: status %d, body %s", status, body)
			}
			status, state, _, body := get(t, ts.URL+"/solve?graph=g&algo="+tc.algo+tc.probe)
			if status != http.StatusOK {
				t.Fatalf("probe: status %d, body %s", status, body)
			}
			if state != tc.want {
				t.Errorf("probe X-Mdsd-Cache = %q, want %q", state, tc.want)
			}
		})
	}
}

// mkEntry builds a cache entry whose accounting cost is exactly size.
func mkEntry(key string, size int64) *entry {
	return &entry{key: key, solve: make([]byte, size), bytes: size}
}

func TestResultCacheLRUBudget(t *testing.T) {
	cases := []struct {
		name      string
		budget    int64
		ops       func(c *resultCache)
		wantKeys  []string
		wantBytes int64
		wantEvict int64
	}{
		{
			name:   "within budget keeps everything",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 40))
				c.put(mkEntry("b", 40))
			},
			wantKeys: []string{"a", "b"}, wantBytes: 80, wantEvict: 0,
		},
		{
			name:   "exceeding budget evicts oldest",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 40))
				c.put(mkEntry("b", 40))
				c.put(mkEntry("c", 40))
			},
			wantKeys: []string{"b", "c"}, wantBytes: 80, wantEvict: 1,
		},
		{
			name:   "get refreshes recency",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 40))
				c.put(mkEntry("b", 40))
				c.get("a") // a is now most recent; b becomes the victim
				c.put(mkEntry("c", 40))
			},
			wantKeys: []string{"a", "c"}, wantBytes: 80, wantEvict: 1,
		},
		{
			name:   "oversize entry is not cached",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 40))
				c.put(mkEntry("huge", 101))
			},
			wantKeys: []string{"a"}, wantBytes: 40, wantEvict: 0,
		},
		{
			name:   "replacing a key reaccounts bytes",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 40))
				c.put(mkEntry("a", 60))
			},
			wantKeys: []string{"a"}, wantBytes: 60, wantEvict: 0,
		},
		{
			name:   "one big entry can evict several",
			budget: 100,
			ops: func(c *resultCache) {
				c.put(mkEntry("a", 30))
				c.put(mkEntry("b", 30))
				c.put(mkEntry("c", 30))
				c.put(mkEntry("d", 90))
			},
			wantKeys: []string{"d"}, wantBytes: 90, wantEvict: 3,
		},
		{
			name:   "zero budget is unlimited",
			budget: 0,
			ops: func(c *resultCache) {
				for i := 0; i < 20; i++ {
					c.put(mkEntry(fmt.Sprintf("k%d", i), 1000))
				}
			},
			wantKeys: nil, wantBytes: 20000, wantEvict: 0,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newResultCache(tc.budget)
			tc.ops(c)
			entries, bytes, evictions := c.usage()
			if bytes != tc.wantBytes || evictions != tc.wantEvict {
				t.Errorf("usage = %d bytes, %d evictions; want %d, %d",
					bytes, evictions, tc.wantBytes, tc.wantEvict)
			}
			if tc.wantKeys != nil {
				if entries != len(tc.wantKeys) {
					t.Errorf("entries = %d, want %d", entries, len(tc.wantKeys))
				}
				for _, k := range tc.wantKeys {
					if c.get(k) == nil {
						t.Errorf("key %q missing", k)
					}
				}
			}
			if tc.budget > 0 && bytes > tc.budget {
				t.Errorf("cache over budget: %d > %d", bytes, tc.budget)
			}
		})
	}
}

func TestStoreEvictionHonorsBudgetAndPins(t *testing.T) {
	dir := t.TempDir()
	g := testGraph()
	perGraph := g.Bytes()
	paths := map[string]string{
		"a": writeCSRG(t, dir, "a.csrg", g),
		"b": writeCSRG(t, dir, "b.csrg", g),
		"c": writeCSRG(t, dir, "c.csrg", g),
	}
	// Budget fits two graphs but not three.
	st := NewStore(paths, "", 2*perGraph)

	a, err := st.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	c, err := st.Acquire("c")
	if err != nil {
		t.Fatal(err)
	}
	// All three pinned: over budget, but nothing evictable — correctness
	// (no unmap under a run) beats the budget.
	if n, bytes, ev := st.Usage(); n != 3 || bytes != 3*perGraph || ev != 0 {
		t.Fatalf("pinned usage = %d/%d/%d, want 3 residents, no evictions", n, bytes, ev)
	}

	// Releasing the least recently used graph lets the store shed it.
	st.Release(a)
	if n, bytes, ev := st.Usage(); n != 2 || bytes != 2*perGraph || ev != 1 {
		t.Fatalf("after release: usage = %d/%d/%d, want 2 residents, 1 eviction", n, bytes, ev)
	}

	// The evicted mapping is gone; the pinned ones must still be readable.
	if b.G.N() != g.N() || c.G.Degree(0) != g.Degree(0) {
		t.Error("pinned residents unreadable after eviction")
	}

	// Re-acquiring the evicted graph reloads it and evicts the new LRU
	// victim once everything else is released.
	st.Release(b)
	st.Release(c)
	a2, err := st.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release(a2)
	if a2 == a {
		t.Error("evicted resident was resurrected instead of reloaded")
	}
	if n, bytes, _ := st.Usage(); n != 2 || bytes != 2*perGraph {
		t.Errorf("after reload: usage = %d residents %d bytes, want 2 residents within budget", n, bytes)
	}
}

func TestStoreResolveAndUnknownNames(t *testing.T) {
	dir := t.TempDir()
	writeText(t, dir, "under.txt", testGraph())
	reg := writeText(t, dir, "reg.txt", testGraph())

	t.Run("unknown without dir", func(t *testing.T) {
		st := NewStore(map[string]string{"g": reg}, "", 0)
		_, err := st.Acquire("nope")
		if !errors.Is(err, ErrUnknownGraph) {
			t.Errorf("err = %v, want ErrUnknownGraph", err)
		}
	})
	t.Run("dir-relative name loads", func(t *testing.T) {
		st := NewStore(nil, dir, 0)
		r, err := st.Acquire("under.txt")
		if err != nil {
			t.Fatal(err)
		}
		st.Release(r)
	})
	t.Run("traversal rejected", func(t *testing.T) {
		st := NewStore(nil, dir, 0)
		for _, name := range []string{"../escape.txt", "/etc/passwd", ""} {
			if _, err := st.Acquire(name); !errors.Is(err, ErrUnknownGraph) {
				t.Errorf("Acquire(%q) err = %v, want ErrUnknownGraph", name, err)
			}
		}
	})
	t.Run("dir-relative missing file", func(t *testing.T) {
		st := NewStore(nil, dir, 0)
		if _, err := st.Acquire("missing.txt"); err == nil {
			t.Error("expected an error for a missing file")
		}
	})
}

func TestResidentDiamBoundStable(t *testing.T) {
	dir := t.TempDir()
	st := NewStore(map[string]string{"g": writeText(t, dir, "g.txt", graph.Path(10))}, "", 0)
	r, err := st.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Release(r)
	want := 2*graph.Path(10).Eccentricity(0) + 2
	if got := r.DiamBound(); got != want {
		t.Errorf("DiamBound = %d, want %d", got, want)
	}
	if got := r.DiamBound(); got != want {
		t.Errorf("second DiamBound = %d, want %d (cached)", got, want)
	}
}
