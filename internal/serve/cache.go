package serve

import (
	"container/list"
	"sync"
)

// entry is one certified solution in the result cache. Both response
// bodies are rendered once, when the engine run that produced them
// completes — every later hit (cache or coalesced) writes the same bytes,
// which is how the service keeps repeat responses byte-identical without
// re-marshaling anything.
type entry struct {
	key     string
	solve   []byte // rendered /solve body
	certify []byte // rendered /certify body
	bytes   int64  // accounting cost: len(solve) + len(certify)
}

// resultCache is a bounded LRU over certified solutions, keyed by
// (graph fingerprint, family, canonical params) and accounted in body
// bytes. Only certificate-passing results are ever inserted (the caller
// enforces it): the verifier's certificate is what makes a cached answer
// as trustworthy as a fresh solve. An entry larger than the whole budget
// is not cached at all — inserting it would evict everything for a single
// never-shareable answer.
type resultCache struct {
	mu        sync.Mutex
	budget    int64 // byte budget; 0 = unlimited
	used      int64
	entries   map[string]*list.Element
	order     *list.List // front = most recently used
	evictions int64
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{budget: budget, entries: map[string]*list.Element{}, order: list.New()}
}

// get returns the cached entry for key, refreshing its LRU position, or
// nil.
func (c *resultCache) get(key string) *entry {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		return nil
	}
	c.order.MoveToFront(e)
	return e.Value.(*entry)
}

// put inserts ent and evicts least-recently-used entries until the cache
// fits its budget. Re-inserting an existing key replaces the old entry.
func (c *resultCache) put(ent *entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget > 0 && ent.bytes > c.budget {
		return
	}
	if old, ok := c.entries[ent.key]; ok {
		c.used -= old.Value.(*entry).bytes
		c.order.Remove(old)
		delete(c.entries, ent.key)
	}
	c.entries[ent.key] = c.order.PushFront(ent)
	c.used += ent.bytes
	if c.budget <= 0 {
		return
	}
	for c.used > c.budget {
		back := c.order.Back()
		old := back.Value.(*entry)
		c.order.Remove(back)
		delete(c.entries, old.key)
		c.used -= old.bytes
		c.evictions++
	}
}

// usage returns the entry count, total bytes and eviction count.
func (c *resultCache) usage() (entries int, bytes int64, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries), c.used, c.evictions
}
