package serve

import (
	"sort"
	"sync"
)

// sampleCap bounds the per-family percentile reservoirs: the most recent
// sampleCap runs contribute to the /stats percentiles, so a long-lived
// daemon's stats stay O(families) in memory.
const sampleCap = 1024

// counters is the server's mutable statistics state. All wall times come
// from the per-run obs.Recorder stamps — the serving layer itself never
// reads a clock.
type counters struct {
	mu        sync.Mutex
	runs      int64
	coalesced int64
	cacheHits int64
	cacheMiss int64
	errors    int64
	fams      map[string]*famSamples
}

type famSamples struct {
	runs   int64
	rounds []int64 // ring buffers, most recent sampleCap runs
	wallNs []int64
	next   int
}

func (c *counters) coalescedHit() {
	c.mu.Lock()
	c.coalesced++
	c.mu.Unlock()
}

func (c *counters) cacheHit() {
	c.mu.Lock()
	c.cacheHits++
	c.mu.Unlock()
}

func (c *counters) cacheMissed() {
	c.mu.Lock()
	c.cacheMiss++
	c.mu.Unlock()
}

func (c *counters) runFailed() {
	c.mu.Lock()
	c.runs++
	c.errors++
	c.mu.Unlock()
}

// runDone records one completed engine run for fam.
func (c *counters) runDone(fam string, rounds int, wallNs int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.runs++
	if c.fams == nil {
		c.fams = map[string]*famSamples{}
	}
	s := c.fams[fam]
	if s == nil {
		s = &famSamples{}
		c.fams[fam] = s
	}
	s.runs++
	if len(s.rounds) < sampleCap {
		s.rounds = append(s.rounds, int64(rounds))
		s.wallNs = append(s.wallNs, wallNs)
	} else {
		s.rounds[s.next] = int64(rounds)
		s.wallNs[s.next] = wallNs
	}
	s.next = (s.next + 1) % sampleCap
}

// Stats is the /stats response shape.
type Stats struct {
	Runs           int64                  `json:"runs"`
	CoalescedHits  int64                  `json:"coalesced_hits"`
	CacheHits      int64                  `json:"cache_hits"`
	CacheMisses    int64                  `json:"cache_misses"`
	Errors         int64                  `json:"errors"`
	CacheEntries   int                    `json:"cache_entries"`
	CacheBytes     int64                  `json:"cache_bytes"`
	CacheEvictions int64                  `json:"cache_evictions"`
	GraphsResident int                    `json:"graphs_resident"`
	GraphBytes     int64                  `json:"graph_bytes"`
	GraphEvictions int64                  `json:"graph_evictions"`
	Families       map[string]FamilyStats `json:"families"`
}

// FamilyStats summarizes the recent runs of one family: nearest-rank
// percentiles over the last sampleCap runs' round counts and wall times.
type FamilyStats struct {
	Runs      int64   `json:"runs"`
	RoundsP50 int64   `json:"rounds_p50"`
	RoundsP90 int64   `json:"rounds_p90"`
	RoundsP99 int64   `json:"rounds_p99"`
	RoundsMax int64   `json:"rounds_max"`
	WallMsP50 float64 `json:"wall_ms_p50"`
	WallMsP90 float64 `json:"wall_ms_p90"`
	WallMsP99 float64 `json:"wall_ms_p99"`
	WallMsMax float64 `json:"wall_ms_max"`
}

// snapshot folds the counters into the exported Stats shape (cache and
// store gauges are filled in by the Server, which owns those components).
func (c *counters) snapshot() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Stats{
		Runs:          c.runs,
		CoalescedHits: c.coalesced,
		CacheHits:     c.cacheHits,
		CacheMisses:   c.cacheMiss,
		Errors:        c.errors,
		Families:      map[string]FamilyStats{},
	}
	for name, f := range c.fams {
		rounds := append([]int64(nil), f.rounds...)
		wall := append([]int64(nil), f.wallNs...)
		sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
		sort.Slice(wall, func(i, j int) bool { return wall[i] < wall[j] })
		ms := func(ns int64) float64 { return float64(ns) / 1e6 }
		s.Families[name] = FamilyStats{
			Runs:      f.runs,
			RoundsP50: percentile(rounds, 50),
			RoundsP90: percentile(rounds, 90),
			RoundsP99: percentile(rounds, 99),
			RoundsMax: percentile(rounds, 100),
			WallMsP50: ms(percentile(wall, 50)),
			WallMsP90: ms(percentile(wall, 90)),
			WallMsP99: ms(percentile(wall, 99)),
			WallMsMax: ms(percentile(wall, 100)),
		}
	}
	return s
}

// percentile returns the nearest-rank q-th percentile of sorted
// (ascending) samples — the same rule obs.Profile uses, so /stats and
// `mdsrun -profile` agree on what a percentile means.
func percentile(sorted []int64, q int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (q*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
