// Package serve is the resident graph-serving layer behind cmd/mdsd: an
// HTTP service that loads graphs once (heap or memory-mapped .csrg), keeps
// them resident behind a byte-budgeted LRU keyed by content fingerprint
// (graph.Fingerprint — the same hash the .ckpt format binds checkpoints
// to), and answers solve/certify queries by dispatching through the
// algorithm-family registry (internal/family).
//
// Three mechanisms make repeated queries cheap without weakening any
// guarantee:
//
//   - Residency: a graph is loaded at most once while it stays in the LRU;
//     .csrg graphs are served zero-copy from the mapping, pinned against
//     eviction (refcount) while any run uses them.
//   - Coalescing: concurrent requests for the same (graph fingerprint,
//     family, canonical params) key collapse into one engine run via a
//     singleflight; every waiter receives byte-identical bytes.
//   - Certified-solution cache: a bounded LRU of rendered responses,
//     populated only by certificate-passing results — the verifier's
//     certificate is what makes a cached answer as trustworthy as a fresh
//     solve — and busted by any semantic parameter change (family.Params.Key).
//
// Failures stay typed end to end: a run error's congest.SentinelClass maps
// to a pinned HTTP status (StatusForClass), echoed in the X-Mdsd-Sentinel
// header and the JSON error body, so HTTP clients can dispatch on failure
// classes exactly like mdsrun's exit-code scripting API. Per-run telemetry
// rides an obs.Recorder (the repo's only sanctioned clock reader);
// GET /stats exposes run, coalescing and cache counters plus per-family
// round and wall-time percentiles.
//
// Endpoints: GET/POST /solve and /certify (graph, algo, and optional eps,
// sim, maxrounds, diam, deadline query parameters), GET /graphs (resident
// listing), GET /stats, GET /healthz.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"congestds/internal/congest"
	"congestds/internal/family"
	"congestds/internal/obs"
)

// Config parameterizes a Server.
type Config struct {
	// Graphs preregisters name → path. Paths ending in .csrg are served
	// from a zero-copy memory mapping.
	Graphs map[string]string
	// Dir, when non-empty, additionally serves any file under this root by
	// its relative path.
	Dir string
	// GraphBudget bounds the resident graphs' total CSR bytes (0 =
	// unlimited); least-recently-used unpinned graphs are evicted past it.
	GraphBudget int64
	// CacheBudget bounds the certified-solution cache in rendered response
	// bytes (0 = unlimited).
	CacheBudget int64
	// Engine is the execution engine used when a request does not name one
	// (zero value: goroutine; cmd/mdsd defaults to stepped).
	Engine congest.Engine
	// RunSink, when non-nil, is attached to every engine run's
	// obs.Recorder in addition to the server's own accounting. Test seam:
	// a sink counting first-round records observes exactly how many engine
	// runs the server really performed.
	RunSink obs.Sink
}

// Server is the HTTP service. Create with New; it serves via the standard
// http.Handler interface.
type Server struct {
	cfg    Config
	store  *Store
	cache  *resultCache
	flight flightGroup
	stats  counters
	mux    *http.ServeMux
}

// New builds a Server over cfg.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg,
		store: NewStore(cfg.Graphs, cfg.Dir, cfg.GraphBudget),
		cache: newResultCache(cfg.CacheBudget),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("/solve", func(w http.ResponseWriter, r *http.Request) { s.handleQuery(w, r, false) })
	s.mux.HandleFunc("/certify", func(w http.ResponseWriter, r *http.Request) { s.handleQuery(w, r, true) })
	s.mux.HandleFunc("/graphs", s.handleGraphs)
	s.mux.HandleFunc("/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// StatusForClass pins the congest sentinel taxonomy onto HTTP statuses —
// the service-level twin of mdsrun's exit codes, regression-tested per
// class:
//
//	""           200 OK                    (run succeeded)
//	config       400 Bad Request           (caller misuse; the run never started)
//	max-rounds   422 Unprocessable Entity  (the instance hit its round clamp)
//	deadline     504 Gateway Timeout       (the request's budget elapsed)
//	bandwidth    500 Internal Server Error (engine contract violation — a bug)
//	injected     500 Internal Server Error (a chaos fault schedule aborted the run)
//	bad-ckpt     500 Internal Server Error (corrupt or mismatched checkpoint)
//	program      500 Internal Server Error (any other failure)
//
// Unknown graph or algorithm names are not run failures and map to 404
// before any run starts.
func StatusForClass(class string) int {
	switch class {
	case "":
		return http.StatusOK
	case "config":
		return http.StatusBadRequest
	case "max-rounds":
		return http.StatusUnprocessableEntity
	case "deadline":
		return http.StatusGatewayTimeout
	default: // bandwidth, injected, bad-ckpt, program
		return http.StatusInternalServerError
	}
}

// Stats snapshots the server's counters, filling in the cache and store
// gauges.
func (s *Server) Stats() Stats {
	st := s.stats.snapshot()
	st.CacheEntries, st.CacheBytes, st.CacheEvictions = s.cache.usage()
	st.GraphsResident, st.GraphBytes, st.GraphEvictions = s.store.Usage()
	return st
}

// solveView is the /solve response body. The graph is identified by its
// content fingerprint, not the request name: two names for the same bytes
// share one cache entry, so the body must not depend on which name asked.
type solveView struct {
	Graph       string   `json:"graph"` // content fingerprint, hex
	Algo        string   `json:"algo"`
	Params      string   `json:"params"` // canonical family.Params.Key
	N           int      `json:"n"`
	Rounds      int      `json:"rounds"`
	SetSize     int      `json:"set_size"`
	Certificate string   `json:"certificate"`
	Passed      bool     `json:"passed"`
	Notes       []string `json:"notes,omitempty"`
	Set         []int    `json:"set"`
}

// certifyView is the /certify response body: the certificate without the
// solution members.
type certifyView struct {
	Graph       string `json:"graph"`
	Algo        string `json:"algo"`
	Params      string `json:"params"`
	N           int    `json:"n"`
	Rounds      int    `json:"rounds"`
	SetSize     int    `json:"set_size"`
	Certificate string `json:"certificate"`
	Passed      bool   `json:"passed"`
}

// errorView is every error response body.
type errorView struct {
	Error    string `json:"error"`
	Sentinel string `json:"sentinel,omitempty"`
}

// render builds the cache entry for a certified result: both endpoint
// bodies marshaled once, so every future hit writes identical bytes.
func render(key string, fp uint32, algo string, p family.Params, res *family.Result, n int) *entry {
	fph := fmt.Sprintf("%08x", fp)
	solve := mustJSON(solveView{
		Graph: fph, Algo: algo, Params: p.Key(), N: n,
		Rounds: res.Rounds, SetSize: len(res.Set),
		Certificate: res.Cert.String(), Passed: res.Cert.Passed(),
		Notes: res.Notes, Set: res.Set,
	})
	certify := mustJSON(certifyView{
		Graph: fph, Algo: algo, Params: p.Key(), N: n,
		Rounds: res.Rounds, SetSize: len(res.Set),
		Certificate: res.Cert.String(), Passed: res.Cert.Passed(),
	})
	return &entry{key: key, solve: solve, certify: certify, bytes: int64(len(solve) + len(certify))}
}

// mustJSON marshals a response view. The views contain only
// marshal-friendly fields, so an error is a programming bug.
func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic("serve: marshaling response view: " + err.Error())
	}
	return append(b, '\n')
}

// configErr wraps congest.ErrConfig so request-parsing failures carry the
// same sentinel class ("config" → 400) as engine-level caller misuse.
func configErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", congest.ErrConfig, fmt.Sprintf(format, args...))
}

// queryKeys are the recognized /solve and /certify query parameters.
// Unknown keys are rejected: a typo like "maxrunds" silently ignored would
// serve the wrong cached answer with a 200.
var queryKeys = map[string]bool{
	"graph": true, "algo": true, "eps": true, "sim": true,
	"maxrounds": true, "diam": true, "deadline": true,
}

// parseParams decodes the optional solve parameters. Every failure wraps
// congest.ErrConfig.
func parseParams(q url.Values, deflt congest.Engine) (family.Params, time.Duration, error) {
	p := family.Params{Sim: deflt}
	for key := range q {
		if !queryKeys[key] {
			return p, 0, configErr("unknown query parameter %q", key)
		}
	}
	if v := q.Get("eps"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			return p, 0, configErr("bad eps %q (want a finite value ≥ 0)", v)
		}
		p.Eps = f
	}
	if v := q.Get("sim"); v != "" {
		eng, err := congest.ParseEngine(v)
		if err != nil {
			return p, 0, err
		}
		p.Sim = eng
	}
	if v := q.Get("maxrounds"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, 0, configErr("bad maxrounds %q (want an integer ≥ 0)", v)
		}
		p.MaxRounds = n
	}
	if v := q.Get("diam"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return p, 0, configErr("bad diam %q (want an integer ≥ 0)", v)
		}
		p.DiamBound = n
	}
	var deadline time.Duration
	if v := q.Get("deadline"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			return p, 0, configErr("bad deadline %q (want a positive duration)", v)
		}
		deadline = d
	}
	return p, deadline, nil
}

// handleQuery is the shared /solve and /certify pipeline: parse →
// acquire graph → canonicalize → cache → coalesce → run → render.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request, certify bool) {
	if r.Method != http.MethodGet && r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET or POST", "")
		return
	}
	q := r.URL.Query()
	name, algo := q.Get("graph"), q.Get("algo")
	if name == "" || algo == "" {
		s.writeClassified(w, configErr("graph and algo query parameters are required"))
		return
	}
	fam, err := family.Get(algo)
	if err != nil {
		s.writeError(w, http.StatusNotFound, err.Error(), "")
		return
	}
	p, deadline, err := parseParams(q, s.cfg.Engine)
	if err != nil {
		s.writeClassified(w, err)
		return
	}
	res, err := s.store.Acquire(name)
	if err != nil {
		// Not a run failure: no sentinel class, just the pinned status.
		status := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownGraph) {
			status = http.StatusNotFound
		}
		s.writeError(w, status, err.Error(), "")
		return
	}
	defer s.store.Release(res)

	if fam.NeedsDiam && p.DiamBound == 0 {
		p.DiamBound = res.DiamBound()
	}
	p = fam.Canon(p)
	key := fmt.Sprintf("%08x|%s|%s", res.FP, fam.Name, p.Key())

	if ent := s.cache.get(key); ent != nil {
		s.stats.cacheHit()
		s.writeEntry(w, ent, certify, "hit")
		return
	}

	// Execution context threads into the run but never into the key: the
	// leader's request drives a coalesced run, so its deadline and context
	// bound every waiter's answer too (documented singleflight semantics).
	p.Deadline = deadline
	p.Ctx = r.Context()

	out, coalesced := s.flight.do(key, func() outcome { return s.runSolve(key, fam, res, p) })
	state := "miss"
	if coalesced {
		s.stats.coalescedHit()
		state = "coalesced"
	}
	if out.ent == nil {
		s.writeError(w, out.status, out.errMsg, out.sentinel)
		return
	}
	s.writeEntry(w, out.ent, certify, state)
}

// runSolve executes one engine run as a flight leader: re-check the cache
// (a previous flight may have landed between our miss and the flight
// start), run the family with a per-run obs.Recorder, record stats, and
// cache the rendered result iff its certificate passed.
func (s *Server) runSolve(key string, fam family.Family, res *Resident, p family.Params) outcome {
	if ent := s.cache.get(key); ent != nil {
		s.stats.cacheHit()
		return outcome{ent: ent, status: http.StatusOK}
	}
	s.stats.cacheMissed()

	var sinks []obs.Sink
	if s.cfg.RunSink != nil {
		sinks = append(sinks, s.cfg.RunSink)
	}
	rec := obs.NewRecorder(sinks...)
	p.Observer = rec

	result, err := fam.Solve(res.G, p)
	var wallNs int64
	for _, seg := range rec.Segments() {
		wallNs += seg.WallNs
	}
	if err != nil {
		s.stats.runFailed()
		class := congest.SentinelClass(err)
		return outcome{status: StatusForClass(class), errMsg: err.Error(), sentinel: class}
	}
	s.stats.runDone(fam.Name, result.Rounds, wallNs)
	if !result.Cert.Passed() {
		// A cert-failing output is a bug, never cached: the cache's whole
		// trust argument is that every entry carries a passing certificate.
		return outcome{
			status: http.StatusInternalServerError,
			errMsg: fmt.Sprintf("certification violation: %s output failed its certificate (bug): %v", fam.Name, result.Cert),
		}
	}
	ent := render(key, res.FP, fam.Name, p, result, res.G.N())
	s.cache.put(ent)
	return outcome{ent: ent, status: http.StatusOK}
}

// writeEntry writes a cached/coalesced/fresh success body. The body bytes
// are the entry's rendered bytes verbatim — byte-identical across repeat
// calls by construction; only the advisory X-Mdsd-Cache header varies.
func (s *Server) writeEntry(w http.ResponseWriter, ent *entry, certify bool, state string) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Mdsd-Cache", state)
	body := ent.solve
	if certify {
		body = ent.certify
	}
	w.WriteHeader(http.StatusOK)
	w.Write(body)
}

// writeClassified maps err through the sentinel taxonomy and writes it.
func (s *Server) writeClassified(w http.ResponseWriter, err error) {
	class := congest.SentinelClass(err)
	s.writeError(w, StatusForClass(class), err.Error(), class)
}

// writeError writes the JSON error body, naming the sentinel class in the
// X-Mdsd-Sentinel header when the failure carries one.
func (s *Server) writeError(w http.ResponseWriter, status int, msg, sentinel string) {
	w.Header().Set("Content-Type", "application/json")
	if sentinel != "" {
		w.Header().Set("X-Mdsd-Sentinel", sentinel)
	}
	w.WriteHeader(status)
	w.Write(mustJSON(errorView{Error: msg, Sentinel: sentinel}))
}

// graphsView is the /graphs response body.
type graphsView struct {
	Graphs        []ResidentInfo `json:"graphs"`
	ResidentBytes int64          `json:"resident_bytes"`
}

func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET", "")
		return
	}
	_, bytes, _ := s.store.Usage()
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(graphsView{Graphs: s.store.Residents(), ResidentBytes: bytes}))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "use GET", "")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(mustJSON(s.Stats()))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}
