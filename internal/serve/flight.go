package serve

import "sync"

// outcome is what one engine run (or its failure) produces, shared verbatim
// between the leader that ran it and every coalesced follower.
type outcome struct {
	ent      *entry // non-nil on success
	status   int    // HTTP status (200 on success, StatusForClass otherwise)
	errMsg   string // error body text when ent == nil
	sentinel string // congest.SentinelClass of the failure, "" if none
}

// flightGroup coalesces concurrent requests for the same key into a single
// execution: the first caller becomes the leader and runs fn, every caller
// that arrives while the leader is in flight blocks until the leader
// finishes and receives the identical outcome. Keys are fully canonical
// (graph fingerprint + family + Params.Key), so two requests coalesce
// exactly when the engine would have produced byte-identical answers —
// distinct parameters never share a flight.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	out     outcome
	waiters int // callers blocked on done, for observability
}

// waiting reports how many callers are currently blocked on in-flight
// leaders across all keys. Tests use it to know every concurrent request
// has coalesced before releasing a gated run.
func (g *flightGroup) waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	n := 0
	for _, c := range g.calls {
		n += c.waiters
	}
	return n
}

// do returns fn's outcome for key, running fn at most once across
// concurrent callers. The second return reports whether this caller
// coalesced onto another's flight.
func (g *flightGroup) do(key string, fn func() outcome) (outcome, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = map[string]*flightCall{}
	}
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		<-c.done
		return c.out, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.out = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.out, false
}
