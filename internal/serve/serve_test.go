package serve

// Service-level e2e suite: every handler exercised through httptest
// against every registered family, success bodies byte-identical across
// repeat calls, and every congest sentinel class regression-tested against
// its pinned HTTP status — both as a unit table over StatusForClass and
// end-to-end through synthetic always-failing families.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/family"
)

func TestSolveAndCertifyEveryFamily(t *testing.T) {
	dir := t.TempDir()
	path := writeCSRG(t, dir, "g.csrg", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	for _, name := range family.Names() {
		if strings.HasPrefix(name, testFamPrefix) {
			continue
		}
		t.Run(name, func(t *testing.T) {
			for _, ep := range []string{"/solve", "/certify"} {
				url := ts.URL + ep + "?graph=g&algo=" + name
				status1, state1, _, body1 := get(t, url)
				if status1 != http.StatusOK {
					t.Fatalf("%s: status %d, body %s", ep, status1, body1)
				}
				status2, state2, _, body2 := get(t, url)
				if status2 != http.StatusOK {
					t.Fatalf("%s repeat: status %d", ep, status2)
				}
				if !bytes.Equal(body1, body2) {
					t.Errorf("%s: repeat body differs:\n%s\nvs\n%s", ep, body1, body2)
				}
				if state2 != "hit" {
					t.Errorf("%s repeat: X-Mdsd-Cache = %q, want hit", ep, state2)
				}
				_ = state1 // first call may be miss (solve) or hit (certify shares the entry)
				var view struct {
					Graph   string `json:"graph"`
					Algo    string `json:"algo"`
					N       int    `json:"n"`
					Rounds  int    `json:"rounds"`
					SetSize int    `json:"set_size"`
					Passed  bool   `json:"passed"`
				}
				if err := json.Unmarshal(body1, &view); err != nil {
					t.Fatalf("%s: body not JSON: %v\n%s", ep, err, body1)
				}
				if !view.Passed {
					t.Errorf("%s: certificate did not pass:\n%s", ep, body1)
				}
				if view.Algo != name || view.N != testGraph().N() || view.SetSize == 0 || view.Rounds == 0 {
					t.Errorf("%s: implausible body: %+v", ep, view)
				}
			}
		})
	}

	// /solve and /certify render from the same cache entry: after the
	// sweep above, total engine runs must equal the family count, not 2×.
	fams := 0
	for _, name := range family.Names() {
		if !strings.HasPrefix(name, testFamPrefix) {
			fams++
		}
	}
	if st := s.Stats(); st.Runs != int64(fams) {
		t.Errorf("Runs = %d, want %d (one per family across both endpoints)", st.Runs, fams)
	}
}

func TestStatusForClassPinnedTable(t *testing.T) {
	want := map[string]int{
		"":           http.StatusOK,
		"config":     http.StatusBadRequest,
		"max-rounds": http.StatusUnprocessableEntity,
		"deadline":   http.StatusGatewayTimeout,
		"bandwidth":  http.StatusInternalServerError,
		"injected":   http.StatusInternalServerError,
		"bad-ckpt":   http.StatusInternalServerError,
		"program":    http.StatusInternalServerError,
	}
	for class, status := range want {
		if got := StatusForClass(class); got != status {
			t.Errorf("StatusForClass(%q) = %d, want %d", class, got, status)
		}
	}
}

func TestSentinelClassesEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	for class, fam := range sentinelFamilies {
		t.Run(class, func(t *testing.T) {
			status, _, sentinel, body := get(t, ts.URL+"/solve?graph=g&algo="+fam)
			if want := StatusForClass(class); status != want {
				t.Errorf("status = %d, want %d", status, want)
			}
			if sentinel != class {
				t.Errorf("X-Mdsd-Sentinel = %q, want %q", sentinel, class)
			}
			var ev struct {
				Error    string `json:"error"`
				Sentinel string `json:"sentinel"`
			}
			if err := json.Unmarshal(body, &ev); err != nil {
				t.Fatalf("error body not JSON: %v\n%s", err, body)
			}
			if ev.Error == "" || ev.Sentinel != class {
				t.Errorf("error body = %+v, want sentinel %q and a message", ev, class)
			}
		})
	}
	st := s.Stats()
	if want := int64(len(sentinelFamilies)); st.Runs != want || st.Errors != want {
		t.Errorf("Runs/Errors = %d/%d, want %d/%d", st.Runs, st.Errors, want, want)
	}
	if st.CacheEntries != 0 {
		t.Errorf("failed runs were cached: %d entries", st.CacheEntries)
	}
}

func TestRealRequestFailurePaths(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	_, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	cases := []struct {
		name     string
		query    string
		status   int
		sentinel string
	}{
		{"unknown graph", "/solve?graph=nope&algo=arbmds", http.StatusNotFound, ""},
		{"unknown algo", "/solve?graph=g&algo=nope", http.StatusNotFound, ""},
		{"missing graph", "/solve?algo=arbmds", http.StatusBadRequest, "config"},
		{"missing algo", "/solve?graph=g", http.StatusBadRequest, "config"},
		{"bad eps", "/solve?graph=g&algo=arbmds&eps=abc", http.StatusBadRequest, "config"},
		{"negative eps", "/solve?graph=g&algo=arbmds&eps=-1", http.StatusBadRequest, "config"},
		{"bad sim", "/solve?graph=g&algo=arbmds&sim=bogus", http.StatusBadRequest, "config"},
		{"bad maxrounds", "/solve?graph=g&algo=arbmds&maxrounds=-2", http.StatusBadRequest, "config"},
		{"bad diam", "/solve?graph=g&algo=arbmds&diam=x", http.StatusBadRequest, "config"},
		{"bad deadline", "/solve?graph=g&algo=arbmds&deadline=banana", http.StatusBadRequest, "config"},
		{"unknown query key", "/solve?graph=g&algo=arbmds&maxrunds=3", http.StatusBadRequest, "config"},
		{"round clamp hit", "/solve?graph=g&algo=arbmds&maxrounds=1", http.StatusUnprocessableEntity, "max-rounds"},
		{"deadline elapsed", "/solve?graph=g&algo=arbmds&deadline=1ns", http.StatusGatewayTimeout, "deadline"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, sentinel, body := get(t, ts.URL+tc.query)
			if status != tc.status {
				t.Errorf("status = %d, want %d (body %s)", status, tc.status, body)
			}
			if sentinel != tc.sentinel {
				t.Errorf("X-Mdsd-Sentinel = %q, want %q", sentinel, tc.sentinel)
			}
		})
	}

	t.Run("bad method", func(t *testing.T) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/solve?graph=g&algo=arbmds", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("DELETE /solve: status %d, want 405", resp.StatusCode)
		}
	})
}

func TestCertificationViolationIsNeverCached(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	url := ts.URL + "/solve?graph=g&algo=" + testFamPrefix + "certfail"
	for i := 0; i < 2; i++ {
		status, _, _, body := get(t, url)
		if status != http.StatusInternalServerError {
			t.Fatalf("call %d: status %d, want 500", i, status)
		}
		if !bytes.Contains(body, []byte("certification violation")) {
			t.Fatalf("call %d: body does not name the violation: %s", i, body)
		}
	}
	st := s.Stats()
	if st.Runs != 2 {
		t.Errorf("Runs = %d, want 2 (cert-failing results must not be cached)", st.Runs)
	}
	if st.CacheEntries != 0 {
		t.Errorf("cert-failing result was cached: %d entries", st.CacheEntries)
	}
}

func TestGraphsEndpoint(t *testing.T) {
	dir := t.TempDir()
	csrg := writeCSRG(t, dir, "g.csrg", testGraph())
	txt := writeText(t, dir, "h.txt", testGraph())
	_, ts := newTestServer(t, Config{Graphs: map[string]string{"g": csrg, "h": txt}})

	// Nothing resident before the first solve.
	status, _, _, body := get(t, ts.URL+"/graphs")
	if status != http.StatusOK {
		t.Fatalf("/graphs: status %d", status)
	}
	var view struct {
		Graphs []struct {
			Name        string `json:"name"`
			Fingerprint string `json:"fingerprint"`
			Mapped      bool   `json:"mapped"`
			Bytes       int64  `json:"bytes"`
		} `json:"graphs"`
		ResidentBytes int64 `json:"resident_bytes"`
	}
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatalf("/graphs body not JSON: %v\n%s", err, body)
	}
	if len(view.Graphs) != 0 {
		t.Fatalf("graphs resident before any request: %+v", view.Graphs)
	}

	get(t, ts.URL+"/solve?graph=g&algo=arbmds")
	get(t, ts.URL+"/solve?graph=h&algo=arbmds")
	_, _, _, body = get(t, ts.URL+"/graphs")
	view.Graphs = nil
	if err := json.Unmarshal(body, &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Graphs) != 2 || view.ResidentBytes <= 0 {
		t.Fatalf("unexpected /graphs after solves: %s", body)
	}
	// Most recently used first: h was requested last.
	if view.Graphs[0].Name != "h" || view.Graphs[1].Name != "g" {
		t.Errorf("LRU order wrong: %s then %s", view.Graphs[0].Name, view.Graphs[1].Name)
	}
	for _, g := range view.Graphs {
		if wantMapped := g.Name == "g"; g.Mapped != wantMapped {
			t.Errorf("%s: mapped = %v, want %v", g.Name, g.Mapped, wantMapped)
		}
		if len(g.Fingerprint) != 8 || g.Bytes <= 0 {
			t.Errorf("%s: implausible listing row: %+v", g.Name, g)
		}
	}
	// Same content on disk twice → same fingerprint in both rows.
	if view.Graphs[0].Fingerprint != view.Graphs[1].Fingerprint {
		t.Errorf("same graph content, different fingerprints: %q vs %q",
			view.Graphs[0].Fingerprint, view.Graphs[1].Fingerprint)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	status, _, _, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("/healthz: status %d, body %q", status, body)
	}
}

func TestStatsEndpoint(t *testing.T) {
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	_, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	url := ts.URL + "/solve?graph=g&algo=arbmds"
	get(t, url) // cold: one run, one miss
	get(t, url) // warm: one hit

	status, _, _, body := get(t, ts.URL+"/stats")
	if status != http.StatusOK {
		t.Fatalf("/stats: status %d", status)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/stats body not JSON: %v\n%s", err, body)
	}
	if st.Runs != 1 || st.CacheMisses != 1 || st.CacheHits != 1 || st.Errors != 0 {
		t.Errorf("counters = runs %d, misses %d, hits %d, errors %d; want 1/1/1/0",
			st.Runs, st.CacheMisses, st.CacheHits, st.Errors)
	}
	fs, ok := st.Families["arbmds"]
	if !ok {
		t.Fatalf("no arbmds family stats in %s", body)
	}
	if fs.Runs != 1 || fs.RoundsP50 <= 0 || fs.RoundsMax < fs.RoundsP50 {
		t.Errorf("implausible family stats: %+v", fs)
	}
	if fs.WallMsMax < fs.WallMsP50 || fs.WallMsP50 < 0 {
		t.Errorf("implausible wall percentiles: %+v", fs)
	}
	if st.CacheEntries != 1 || st.CacheBytes <= 0 || st.GraphsResident != 1 {
		t.Errorf("gauges = entries %d, bytes %d, resident %d; want 1, >0, 1",
			st.CacheEntries, st.CacheBytes, st.GraphsResident)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	sorted := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	for _, tc := range []struct {
		q    int
		want int64
	}{{50, 50}, {90, 90}, {99, 100}, {100, 100}, {1, 10}} {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(q=%d) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(empty) = %d, want 0", got)
	}
}

func TestEngineParamSelectsEngine(t *testing.T) {
	// Same request with an explicit sim must produce the same certified
	// answer (engines are conformant) but a distinct cache entry.
	dir := t.TempDir()
	path := writeText(t, dir, "g.txt", testGraph())
	s, ts := newTestServer(t, Config{Graphs: map[string]string{"g": path}})

	_, _, _, def := get(t, ts.URL+"/solve?graph=g&algo=arbmds")
	_, _, _, gor := get(t, ts.URL+"/solve?graph=g&algo=arbmds&sim=goroutine")
	if st := s.Stats(); st.Runs != 2 {
		t.Fatalf("Runs = %d, want 2 (distinct engines are distinct keys)", st.Runs)
	}

	var a, b struct {
		SetSize int    `json:"set_size"`
		Rounds  int    `json:"rounds"`
		Params  string `json:"params"`
	}
	if err := json.Unmarshal(def, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(gor, &b); err != nil {
		t.Fatal(err)
	}
	if a.SetSize != b.SetSize || a.Rounds != b.Rounds {
		t.Errorf("engines disagree: %+v vs %+v", a, b)
	}
	if a.Params == b.Params {
		t.Errorf("params keys collide across engines: %q", a.Params)
	}
	if !strings.Contains(a.Params, congest.EngineStepped.String()) {
		t.Errorf("default engine not stepped in params key %q", a.Params)
	}
}
