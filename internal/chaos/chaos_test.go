package chaos

import (
	"bytes"
	"errors"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// TestPlanIndexing: each fault kind lands in the right hook.
func TestPlanIndexing(t *testing.T) {
	p := NewPlan(1,
		Fault{Kind: CrashNode, Node: 3, Round: 2},
		Fault{Kind: TruncatePayload, Node: 4, Port: 1, Round: 1, Arg: 2},
		Fault{Kind: FailRound, Round: 5},
		Fault{Kind: StallRound, Round: 2, Arg: 1},
	)
	if !p.Crash(3, 2) || p.Crash(3, 1) || p.Crash(2, 2) {
		t.Error("crash index wrong")
	}
	if err := p.RoundEnd(4); err != nil {
		t.Errorf("RoundEnd(4) = %v, want nil", err)
	}
	if err := p.RoundEnd(5); !errors.Is(err, congest.ErrInjected) {
		t.Errorf("RoundEnd(5) = %v, want ErrInjected", err)
	}
	if got := p.AlterPayload(4, 1, 1, []byte{1, 2, 3, 4}); len(got) != 2 {
		t.Errorf("truncate to 2 gave %v", got)
	}
	if got := p.AlterPayload(4, 0, 1, []byte{1, 2, 3, 4}); len(got) != 4 {
		t.Errorf("port-mismatched truncate fired: %v", got)
	}
}

// TestDeadlineRoundClass: DeadlineRound wraps ErrDeadline, not ErrInjected.
func TestDeadlineRoundClass(t *testing.T) {
	p := NewPlan(0, Fault{Kind: DeadlineRound, Round: 2})
	err := p.RoundEnd(2)
	if !errors.Is(err, congest.ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", err)
	}
	if got := congest.SentinelClass(err); got != "deadline" {
		t.Fatalf("class %q, want deadline", got)
	}
}

// TestAlterPayloadPure: same site, same bytes in → same bytes out, and the
// input slice is never mutated.
func TestAlterPayloadPure(t *testing.T) {
	p := NewPlan(99,
		Fault{Kind: FlipPayload, Node: 2, Port: -1, Round: 1},
		Fault{Kind: ExtendPayload, Node: 2, Port: -1, Round: 1, Arg: 3},
	)
	in := []byte{10, 20, 30}
	orig := append([]byte(nil), in...)
	a := p.AlterPayload(2, 0, 1, in)
	b := p.AlterPayload(2, 0, 1, in)
	if !bytes.Equal(in, orig) {
		t.Fatalf("input mutated: %v", in)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same site not deterministic: %v vs %v", a, b)
	}
	if len(a) != len(orig)+3 {
		t.Fatalf("extend by 3 gave %d bytes", len(a))
	}
	if c := p.AlterPayload(2, 0, 2, in); !bytes.Equal(c, orig) {
		t.Fatalf("op-mismatched fault fired: %v", c)
	}
	// A different seed must corrupt differently (the mask is seed-derived).
	q := NewPlan(100, Fault{Kind: FlipPayload, Node: 2, Port: -1, Round: 1})
	if bytes.Equal(p.AlterPayload(2, 0, 1, in)[:3], q.AlterPayload(2, 0, 1, in)) {
		t.Fatal("flip mask ignores the seed")
	}
}

// TestRandomPlanDeterministic: same parameters, same plan; and only
// run-preserving kinds are drawn.
func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 50, 6, 20)
	b := RandomPlan(7, 50, 6, 20)
	if a.String() != b.String() {
		t.Fatalf("plans differ:\n%s\n%s", a, b)
	}
	if RandomPlan(8, 50, 6, 20).String() == a.String() {
		t.Fatal("seed ignored")
	}
	for _, f := range a.Faults() {
		switch f.Kind {
		case FailRound, DeadlineRound, ExtendPayload:
			t.Errorf("random plan drew run-altering fault %v", f)
		}
		if f.Node < 0 || f.Node >= 50 {
			t.Errorf("fault %v outside the node range", f)
		}
	}
}

// TestFailGraphLoads: the injected loader failure hits Load and Mmap, wraps
// ErrInjected, and restore removes it.
func TestFailGraphLoads(t *testing.T) {
	boom := errors.New("disk on fire")
	restore := FailGraphLoads(boom)
	_, _, err := graph.Load("testdata/whatever.csrg")
	if !errors.Is(err, boom) || !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("Load err=%v, want wrapped injection", err)
	}
	if _, err := graph.Mmap("testdata/whatever.csrg"); !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("Mmap err=%v, want wrapped injection", err)
	}
	restore()
	if _, _, err := graph.Load("does-not-exist.csrg"); errors.Is(err, congest.ErrInjected) {
		t.Fatal("restore did not clear the injection")
	}
}

// TestKindStrings keeps the fault rendering stable (plans print into test
// failure messages; garbage names cost debugging time).
func TestKindStrings(t *testing.T) {
	for k := CrashNode; k <= DeadlineRound; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d) renders as %q", int(k), s)
		}
	}
	f := Fault{Kind: CrashNode, Node: 7, Round: 3}
	if f.String() != "crash-node(v=7, op=3)" {
		t.Errorf("fault renders as %q", f)
	}
}
