package chaos

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// TestPlanIndexing: each fault kind lands in the right hook.
func TestPlanIndexing(t *testing.T) {
	p := NewPlan(1,
		Fault{Kind: CrashNode, Node: 3, Round: 2},
		Fault{Kind: TruncatePayload, Node: 4, Port: 1, Round: 1, Arg: 2},
		Fault{Kind: FailRound, Round: 5},
		Fault{Kind: StallRound, Round: 2, Arg: 1},
	)
	if !p.Crash(3, 2) || p.Crash(3, 1) || p.Crash(2, 2) {
		t.Error("crash index wrong")
	}
	if err := p.RoundEnd(4); err != nil {
		t.Errorf("RoundEnd(4) = %v, want nil", err)
	}
	if err := p.RoundEnd(5); !errors.Is(err, congest.ErrInjected) {
		t.Errorf("RoundEnd(5) = %v, want ErrInjected", err)
	}
	if got := p.AlterPayload(4, 1, 1, []byte{1, 2, 3, 4}); len(got) != 2 {
		t.Errorf("truncate to 2 gave %v", got)
	}
	if got := p.AlterPayload(4, 0, 1, []byte{1, 2, 3, 4}); len(got) != 4 {
		t.Errorf("port-mismatched truncate fired: %v", got)
	}
}

// TestDeadlineRoundClass: DeadlineRound wraps ErrDeadline, not ErrInjected.
func TestDeadlineRoundClass(t *testing.T) {
	p := NewPlan(0, Fault{Kind: DeadlineRound, Round: 2})
	err := p.RoundEnd(2)
	if !errors.Is(err, congest.ErrDeadline) {
		t.Fatalf("err=%v, want ErrDeadline", err)
	}
	if got := congest.SentinelClass(err); got != "deadline" {
		t.Fatalf("class %q, want deadline", got)
	}
}

// TestAlterPayloadPure: same site, same bytes in → same bytes out, and the
// input slice is never mutated.
func TestAlterPayloadPure(t *testing.T) {
	p := NewPlan(99,
		Fault{Kind: FlipPayload, Node: 2, Port: -1, Round: 1},
		Fault{Kind: ExtendPayload, Node: 2, Port: -1, Round: 1, Arg: 3},
	)
	in := []byte{10, 20, 30}
	orig := append([]byte(nil), in...)
	a := p.AlterPayload(2, 0, 1, in)
	b := p.AlterPayload(2, 0, 1, in)
	if !bytes.Equal(in, orig) {
		t.Fatalf("input mutated: %v", in)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same site not deterministic: %v vs %v", a, b)
	}
	if len(a) != len(orig)+3 {
		t.Fatalf("extend by 3 gave %d bytes", len(a))
	}
	if c := p.AlterPayload(2, 0, 2, in); !bytes.Equal(c, orig) {
		t.Fatalf("op-mismatched fault fired: %v", c)
	}
	// A different seed must corrupt differently (the mask is seed-derived).
	q := NewPlan(100, Fault{Kind: FlipPayload, Node: 2, Port: -1, Round: 1})
	if bytes.Equal(p.AlterPayload(2, 0, 1, in)[:3], q.AlterPayload(2, 0, 1, in)) {
		t.Fatal("flip mask ignores the seed")
	}
}

// TestRandomPlanDeterministic: same parameters, same plan; and only
// run-preserving kinds are drawn.
func TestRandomPlanDeterministic(t *testing.T) {
	a := RandomPlan(7, 50, 6, 20)
	b := RandomPlan(7, 50, 6, 20)
	if a.String() != b.String() {
		t.Fatalf("plans differ:\n%s\n%s", a, b)
	}
	if RandomPlan(8, 50, 6, 20).String() == a.String() {
		t.Fatal("seed ignored")
	}
	for _, f := range a.Faults() {
		switch f.Kind {
		case FailRound, DeadlineRound, ExtendPayload:
			t.Errorf("random plan drew run-altering fault %v", f)
		}
		if f.Node < 0 || f.Node >= 50 {
			t.Errorf("fault %v outside the node range", f)
		}
	}
}

// TestFailGraphLoads: the injected loader failure hits Load and Mmap, wraps
// ErrInjected, and restore removes it.
func TestFailGraphLoads(t *testing.T) {
	boom := errors.New("disk on fire")
	restore := FailGraphLoads(boom)
	_, _, err := graph.Load("testdata/whatever.csrg")
	if !errors.Is(err, boom) || !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("Load err=%v, want wrapped injection", err)
	}
	if _, err := graph.Mmap("testdata/whatever.csrg"); !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("Mmap err=%v, want wrapped injection", err)
	}
	restore()
	if _, _, err := graph.Load("does-not-exist.csrg"); errors.Is(err, congest.ErrInjected) {
		t.Fatal("restore did not clear the injection")
	}
}

// TestKindStrings keeps the fault rendering stable (plans print into test
// failure messages; garbage names cost debugging time).
func TestKindStrings(t *testing.T) {
	for k := CrashNode; k <= DeadlineRound; k++ {
		if s := k.String(); s == "" || s[0] == 'K' {
			t.Errorf("Kind(%d) renders as %q", int(k), s)
		}
	}
	f := Fault{Kind: CrashNode, Node: 7, Round: 3}
	if f.String() != "crash-node(v=7, op=3)" {
		t.Errorf("fault renders as %q", f)
	}
}

// eventLog is a minimal congest.Observer collecting Event calls (the round
// callbacks are unused by chaos).
type eventLog struct {
	mu     sync.Mutex
	events []congest.Event
}

func (l *eventLog) RoundStart(int)              {}
func (l *eventLog) RoundEnd(congest.RoundStats) {}
func (l *eventLog) Event(e congest.Event) {
	l.mu.Lock()
	l.events = append(l.events, e)
	l.mu.Unlock()
}

// TestWithObserverEmitsFaults: every fault kind reports an EvFault with
// the fault's rendering when (and only when) it fires, the base plan stays
// observer-free, and outcomes are unchanged by observation.
func TestWithObserverEmitsFaults(t *testing.T) {
	base := NewPlan(5,
		Fault{Kind: CrashNode, Node: 3, Round: 2},
		Fault{Kind: TruncatePayload, Node: 4, Port: 1, Round: 1, Arg: 2},
		Fault{Kind: FailRound, Round: 6},
		Fault{Kind: StallRound, Round: 2, Arg: 1},
	)
	log := &eventLog{}
	p := base.WithObserver(log)

	if !p.Crash(3, 2) {
		t.Fatal("crash index lost in copy")
	}
	p.Crash(3, 1) // miss: no event
	got := p.AlterPayload(4, 1, 1, []byte{1, 2, 3, 4})
	if want := base.AlterPayload(4, 1, 1, []byte{1, 2, 3, 4}); !bytes.Equal(got, want) {
		t.Fatalf("observed AlterPayload diverges: %v vs %v", got, want)
	}
	p.AlterPayload(4, 0, 1, []byte{1, 2}) // port miss: no event
	if err := p.RoundEnd(6); !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("RoundEnd(6) = %v, want ErrInjected", err)
	}
	p.Stall(2)
	p.Stall(3) // miss: no event

	want := []string{
		"crash-node(v=3, op=2)",
		"truncate-payload(v=4, port=1, op=1, arg=2)",
		"fail-round(round=6, arg=0)",
		"stall-round(round=2, arg=0)",
	}
	if len(log.events) != len(want) {
		t.Fatalf("got %d events, want %d: %+v", len(log.events), len(want), log.events)
	}
	for i, e := range log.events {
		if e.Kind != congest.EvFault {
			t.Errorf("event %d kind = %v, want EvFault", i, e.Kind)
		}
		if e.Detail != want[i] {
			t.Errorf("event %d detail = %q, want %q", i, e.Detail, want[i])
		}
	}
	if log.events[0].Round != -1 || log.events[0].Node != 3 {
		t.Errorf("crash event attribution = %+v, want round -1, node 3", log.events[0])
	}
	if log.events[2].Round != 6 {
		t.Errorf("round-fault event round = %d, want 6", log.events[2].Round)
	}

	// The base plan must be untouched: firing its hooks emits nothing.
	base.Crash(3, 2)
	base.Stall(2)
	if len(log.events) != len(want) {
		t.Fatal("base plan leaked events after WithObserver")
	}
}
