// Package chaos is a seeded, declarative fault-injection layer for the
// congest execution engines. A Plan is a fixed set of Faults plus a seed;
// it implements congest.Hooks, so wiring it into a run is one Config field:
//
//	plan := chaos.NewPlan(42,
//		chaos.Fault{Kind: chaos.CrashNode, Node: 7, Round: 3},
//		chaos.Fault{Kind: chaos.DeadlineRound, Round: 10},
//	)
//	net := congest.NewNetwork(g, congest.Config{Hooks: plan})
//
// Everything a Plan does is a pure function of (faults, seed, fault site):
// no entropy, no clocks, no per-run state. That is the property the
// conformance suite leans on — the same Plan must produce byte-identical
// outcomes (outputs or sentinel class, and honest Metrics) on the
// goroutine, sharded and stepped engines, in blocking and stepped program
// forms alike. Plans are immutable after construction and safe for
// concurrent use from engine workers.
//
// Fault sites use the compute-opportunity numbering of congest.Hooks:
// Round r means opportunity r for node faults (r = 0 is Init, r ≥ 1 is
// Step(r-1)) and delivery boundary r (1-based) for round faults.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Kind enumerates the injectable fault classes.
type Kind int

// Supported fault kinds.
const (
	// CrashNode crash-stops Node at compute opportunity Round: the node
	// falls permanently silent, exactly as if its program returned there.
	// Not a run failure — the run continues without the node.
	CrashNode Kind = iota + 1
	// TruncatePayload cuts the payload Node sends on Port during
	// opportunity Round down to at most Arg bytes.
	TruncatePayload
	// FlipPayload XORs every payload byte Node sends on Port during
	// opportunity Round with a seed-derived mask (a copy is corrupted; the
	// sender's buffer is never mutated).
	FlipPayload
	// ExtendPayload appends Arg seed-derived bytes to the payload Node
	// sends on Port during opportunity Round; growing past the CONGEST
	// budget fails the run with ErrBandwidth on every engine.
	ExtendPayload
	// StallRound sleeps Arg milliseconds at round Round — in the blocking
	// engines at the delivery point, in the stepped engine on the worker
	// that claims the first chunk of the sweep (perturbing work stealing).
	// Timing-only: outcomes must not change.
	StallRound
	// FailRound aborts the run at delivery boundary Round with an error
	// wrapping congest.ErrInjected — the engine-neutral model of an
	// infrastructure fault (arena exhaustion, I/O error) striking at a
	// deterministic point.
	FailRound
	// DeadlineRound aborts the run at delivery boundary Round with an
	// error wrapping congest.ErrDeadline: a deterministic stand-in for a
	// wall-clock deadline, so deadline-failure behaviour is testable
	// without timing races.
	DeadlineRound
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case CrashNode:
		return "crash-node"
	case TruncatePayload:
		return "truncate-payload"
	case FlipPayload:
		return "flip-payload"
	case ExtendPayload:
		return "extend-payload"
	case StallRound:
		return "stall-round"
	case FailRound:
		return "fail-round"
	case DeadlineRound:
		return "deadline-round"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Fault is one declarative fault. Which fields matter depends on Kind; see
// the Kind constants. Port -1 on a payload fault matches every port.
type Fault struct {
	Kind  Kind
	Node  int
	Port  int
	Round int
	Arg   int
}

// String renders the fault compactly.
func (f Fault) String() string {
	switch f.Kind {
	case CrashNode:
		return fmt.Sprintf("%v(v=%d, op=%d)", f.Kind, f.Node, f.Round)
	case TruncatePayload, FlipPayload, ExtendPayload:
		return fmt.Sprintf("%v(v=%d, port=%d, op=%d, arg=%d)", f.Kind, f.Node, f.Port, f.Round, f.Arg)
	default:
		return fmt.Sprintf("%v(round=%d, arg=%d)", f.Kind, f.Round, f.Arg)
	}
}

// nodeOpKey addresses per-node fault sites.
type nodeOpKey struct {
	v, op int
}

// Plan is an immutable, indexed fault schedule implementing congest.Hooks.
type Plan struct {
	seed    uint64
	faults  []Fault
	crash   map[nodeOpKey]bool
	payload map[nodeOpKey][]Fault // filtered by port at the call site
	round   map[int]Fault         // FailRound / DeadlineRound, last one wins
	stall   map[int]time.Duration
	// obs, when non-nil, receives an EvFault event each time a fault
	// actually fires (see WithObserver). Telemetry only: the fault outcome
	// is identical with and without it.
	obs congest.Observer
}

var _ congest.Hooks = (*Plan)(nil)

// NewPlan indexes the given faults under the seed (which parameterizes the
// corruption masks of FlipPayload and ExtendPayload).
func NewPlan(seed uint64, faults ...Fault) *Plan {
	p := &Plan{
		seed:    seed,
		faults:  append([]Fault(nil), faults...),
		crash:   make(map[nodeOpKey]bool),
		payload: make(map[nodeOpKey][]Fault),
		round:   make(map[int]Fault),
		stall:   make(map[int]time.Duration),
	}
	for _, f := range p.faults {
		switch f.Kind {
		case CrashNode:
			p.crash[nodeOpKey{f.Node, f.Round}] = true
		case TruncatePayload, FlipPayload, ExtendPayload:
			k := nodeOpKey{f.Node, f.Round}
			p.payload[k] = append(p.payload[k], f)
		case FailRound, DeadlineRound:
			p.round[f.Round] = f
		case StallRound:
			p.stall[f.Round] += time.Duration(f.Arg) * time.Millisecond
		}
	}
	return p
}

// RandomPlan derives count faults over a graph of n nodes and the first
// rounds delivery boundaries from the seed alone — same (seed, n, rounds,
// count) always builds the same Plan, so randomized fault-schedule corpora
// stay reproducible. Only run-preserving kinds are drawn (crashes, payload
// truncation/flips, stalls): a random plan perturbs a run, a run-aborting
// fault is declared explicitly.
func RandomPlan(seed uint64, n, rounds, count int) *Plan {
	if n < 1 {
		n = 1
	}
	if rounds < 1 {
		rounds = 1
	}
	s := splitmix(seed)
	faults := make([]Fault, 0, count)
	for i := 0; i < count; i++ {
		var f Fault
		k := s.next() % 4
		f.Node = int(s.next() % uint64(n))
		f.Round = int(s.next() % uint64(rounds))
		switch k {
		case 0:
			f.Kind = CrashNode
		case 1:
			f.Kind = TruncatePayload
			f.Port = -1
			f.Arg = int(s.next() % 4)
		case 2:
			f.Kind = FlipPayload
			f.Port = -1
		case 3:
			f.Kind = StallRound
			f.Round++ // delivery boundaries are 1-based
			f.Arg = int(s.next() % 2)
		}
		faults = append(faults, f)
	}
	return NewPlan(seed, faults...)
}

// Faults returns the plan's faults in construction order.
func (p *Plan) Faults() []Fault { return append([]Fault(nil), p.faults...) }

// WithObserver returns a copy of the plan that reports each fired fault to
// o as an EvFault event (Detail renders the fault; faults on nodes carry
// Round -1 because they fire from engine workers mid-compute). The
// receiver is unchanged — plans stay immutable — and the copy shares the
// read-only fault indexes.
func (p *Plan) WithObserver(o congest.Observer) *Plan {
	cp := *p
	cp.obs = o
	return &cp
}

// fired reports one fault firing to the plan's observer, if any.
func (p *Plan) fired(f Fault, round, node int, value int64) {
	if p.obs != nil {
		p.obs.Event(congest.Event{
			Kind:   congest.EvFault,
			Round:  round,
			Node:   node,
			Value:  value,
			Detail: f.String(),
		})
	}
}

// String lists the plan's faults.
func (p *Plan) String() string {
	parts := make([]string, len(p.faults))
	for i, f := range p.faults {
		parts[i] = f.String()
	}
	sort.Strings(parts)
	return fmt.Sprintf("chaos.Plan(seed=%d: %s)", p.seed, strings.Join(parts, ", "))
}

// Crash implements congest.Hooks.
func (p *Plan) Crash(v, op int) bool {
	if !p.crash[nodeOpKey{v, op}] {
		return false
	}
	p.fired(Fault{Kind: CrashNode, Node: v, Round: op}, -1, v, int64(op))
	return true
}

// AlterPayload implements congest.Hooks. Faults on the same site apply in
// declaration order; the input slice is never mutated.
func (p *Plan) AlterPayload(v, port, op int, payload []byte) []byte {
	faults := p.payload[nodeOpKey{v, op}]
	if len(faults) == 0 {
		return payload
	}
	for _, f := range faults {
		if f.Port != -1 && f.Port != port {
			continue
		}
		p.fired(f, -1, v, int64(op))
		switch f.Kind {
		case TruncatePayload:
			if f.Arg < 0 {
				f.Arg = 0
			}
			if len(payload) > f.Arg {
				payload = payload[:f.Arg]
			}
		case FlipPayload:
			s := splitmix(p.seed ^ siteSeed(v, port, op))
			cp := append([]byte(nil), payload...)
			for i := range cp {
				cp[i] ^= byte(s.next())
			}
			payload = cp
		case ExtendPayload:
			s := splitmix(p.seed ^ siteSeed(v, port, op) ^ 0x9e37)
			cp := make([]byte, len(payload), len(payload)+f.Arg)
			copy(cp, payload)
			for i := 0; i < f.Arg; i++ {
				cp = append(cp, byte(s.next()))
			}
			payload = cp
		}
	}
	return payload
}

// RoundEnd implements congest.Hooks.
func (p *Plan) RoundEnd(round int) error {
	f, ok := p.round[round]
	if !ok {
		return nil
	}
	p.fired(f, round, -1, 0)
	if f.Kind == DeadlineRound {
		return fmt.Errorf("%w: injected deadline at round %d", congest.ErrDeadline, round)
	}
	return fmt.Errorf("%w: injected infrastructure fault at round %d (resource-exhaustion class)",
		congest.ErrInjected, round)
}

// Stall implements congest.Hooks.
func (p *Plan) Stall(round int) {
	if d := p.stall[round]; d > 0 {
		p.fired(Fault{Kind: StallRound, Round: round}, round, -1, int64(d/time.Millisecond))
		time.Sleep(d)
	}
}

// siteSeed folds a fault site into a 64-bit stream seed.
func siteSeed(v, port, op int) uint64 {
	return uint64(v)<<40 ^ uint64(uint32(port))<<20 ^ uint64(op)
}

// splitmix is SplitMix64 (Steele et al., "Fast splittable pseudorandom
// number generators"): tiny, stateless-seedable, and plenty for corruption
// masks and fault placement.
type splitmixState uint64

func splitmix(seed uint64) *splitmixState {
	s := splitmixState(seed)
	return &s
}

func (s *splitmixState) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// FailGraphLoads installs err as the injected failure for every subsequent
// graph.Load / graph.Mmap call and returns a restore func; typical use is
//
//	defer chaos.FailGraphLoads(myErr)()
//
// in tests exercising the loader failure path. The injected error is
// wrapped under congest.ErrInjected so callers classify it like any other
// injected fault. Not safe to install while loads are in flight.
func FailGraphLoads(err error) (restore func()) {
	prev := graph.LoadFault
	graph.LoadFault = func(path string) error {
		return fmt.Errorf("%w: graph load of %s: %w", congest.ErrInjected, path, err)
	}
	return func() { graph.LoadFault = prev }
}
