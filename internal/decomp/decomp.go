// Package decomp implements strong-diameter k-hop network decompositions
// (Definitions 3.1 and 3.2 of the paper): a partition of the nodes into
// connected clusters of small diameter, each with a leader and a spanning
// tree, together with a coloring of the clusters in which same-colored
// clusters are k-separated.
//
// The paper cites the 2^O(√(log n log log n))-round CONGEST construction of
// [GK18] (Theorem 3.2). We substitute a deterministic ball-carving
// decomposition (see DESIGN.md, substitution 1): repeatedly grow a BFS ball
// from the smallest-ID unclustered node until the ball stops growing by a
// (1+δ) factor, which bounds the radius by log_{1+δ} n; clusters are then
// greedily colored on the cluster graph whose edges join clusters at
// distance ≤ k. The output satisfies every requirement of Definition 3.2;
// the cluster count, diameter d and color count c are measured quantities.
package decomp

import (
	"fmt"
	"sort"

	"congestds/internal/graph"
)

// Cluster is one cluster of a decomposition (Definition 3.1).
type Cluster struct {
	// Leader is the cluster leader ℓ(C) (the ball centre).
	Leader int
	// Nodes lists the members, sorted by node index.
	Nodes []int
	// Parent maps each member to its parent in the cluster's spanning tree
	// rooted at Leader (-1 for the leader). Indexed by node, only members
	// are meaningful.
	Parent map[int]int
	// Radius is the tree depth (≤ diameter of the tree ≤ 2·Radius).
	Radius int
	// Color is the cluster's color in the k-separated coloring.
	Color int
}

// Decomposition is a k-hop (d, c)-decomposition of a graph (Definition 3.2).
type Decomposition struct {
	K        int
	Clusters []*Cluster
	// Of maps each node to its cluster index.
	Of []int
	// NumColors is c; MaxRadius bounds d/2.
	NumColors int
	MaxRadius int
	// ChargedRounds is the synchronous-round cost charged for constructing
	// the decomposition with a leader-serialized distributed schedule.
	ChargedRounds int
}

// Params configures the ball-carving construction.
type Params struct {
	// K is the separation parameter (same-color clusters are at pairwise
	// distance > K). The paper's Lemma 3.4 uses K = 2.
	K int
	// Delta is the sparsity threshold δ of the ball-growing rule: growing
	// stops at the first radius where |B(r+1)| ≤ (1+δ)·|B(r)|. Radius is
	// then at most log_{1+δ} n. Zero means 1.0.
	Delta float64
}

// Build computes a K-hop decomposition of g.
func Build(g *graph.Graph, p Params) (*Decomposition, error) {
	if p.K < 1 {
		return nil, fmt.Errorf("decomp: K=%d < 1", p.K)
	}
	if p.Delta == 0 {
		p.Delta = 1.0
	}
	if p.Delta < 0 {
		return nil, fmt.Errorf("decomp: negative delta %v", p.Delta)
	}
	n := g.N()
	d := &Decomposition{K: p.K, Of: make([]int, n)}
	for v := range d.Of {
		d.Of[v] = -1
	}
	// Unclustered nodes in ID order (deterministic carving order).
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(i, j int) bool { return g.ID(order[i]) < g.ID(order[j]) })

	charged := 0
	for _, centre := range order {
		if d.Of[centre] >= 0 {
			continue
		}
		c := carveBall(g, centre, d.Of, p.Delta)
		c.Color = -1
		for _, v := range c.Nodes {
			d.Of[v] = len(d.Clusters)
		}
		d.Clusters = append(d.Clusters, c)
		if c.Radius > d.MaxRadius {
			d.MaxRadius = c.Radius
		}
		// Leader-serialized distributed cost: locating the next centre and
		// growing the ball layer by layer costs O(radius) rounds plus a
		// constant per cluster.
		charged += 2*c.Radius + 2
	}
	colRounds := d.colorClusters(g)
	d.ChargedRounds = charged + colRounds
	return d, nil
}

// carveBall grows a BFS ball from centre within the unclustered residual
// graph, stopping at the first radius whose next layer grows the ball by a
// factor of at most (1+delta).
func carveBall(g *graph.Graph, centre int, of []int, delta float64) *Cluster {
	parent := map[int]int{centre: -1}
	depth := map[int]int{centre: 0}
	ball := []int{centre}
	frontier := []int{centre}
	radius := 0
	for len(frontier) > 0 {
		var next []int
		for _, v := range frontier {
			for _, wn := range g.Neighbors(v) {
				w := int(wn)
				if of[w] >= 0 {
					continue // already clustered
				}
				if _, seen := parent[w]; seen {
					continue
				}
				parent[w] = v
				depth[w] = radius + 1
				next = append(next, w)
			}
		}
		if len(next) == 0 {
			break
		}
		grown := float64(len(ball)+len(next)) / float64(len(ball))
		ball = append(ball, next...)
		frontier = next
		radius++
		if grown <= 1+delta {
			break
		}
	}
	sort.Ints(ball)
	return &Cluster{Leader: centre, Nodes: ball, Parent: parent, Radius: radius}
}

// colorClusters greedily colors the cluster graph (clusters adjacent when at
// graph distance ≤ K) in leader-ID order and returns the charged rounds.
func (d *Decomposition) colorClusters(g *graph.Graph) int {
	nc := len(d.Clusters)
	adj := make([]map[int]struct{}, nc)
	for i := range adj {
		adj[i] = make(map[int]struct{})
	}
	// K-limited BFS from every node, linking its cluster to every cluster
	// within distance K.
	dist := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	var queue []int
	for s := 0; s < g.N(); s++ {
		cs := d.Of[s]
		queue = append(queue[:0], s)
		dist[s] = 0
		visited := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if dist[v] == d.K {
				continue
			}
			for _, wn := range g.Neighbors(v) {
				w := int(wn)
				if dist[w] >= 0 {
					continue
				}
				dist[w] = dist[v] + 1
				visited = append(visited, w)
				queue = append(queue, w)
				if cw := d.Of[w]; cw != cs {
					adj[cs][cw] = struct{}{}
					adj[cw][cs] = struct{}{}
				}
			}
		}
		for _, w := range visited {
			dist[w] = -1
		}
	}
	// Greedy coloring in leader-ID order; rounds = longest decreasing chain.
	order := make([]int, nc)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.ID(d.Clusters[order[a]].Leader) < g.ID(d.Clusters[order[b]].Leader)
	})
	depthOf := make([]int, nc)
	maxDepth := 0
	for _, ci := range order {
		used := make(map[int]struct{})
		dep := 0
		for cj := range adj[ci] {
			if g.ID(d.Clusters[cj].Leader) < g.ID(d.Clusters[ci].Leader) {
				if col := d.Clusters[cj].Color; col >= 0 {
					used[col] = struct{}{}
				}
				if depthOf[cj] > dep {
					dep = depthOf[cj]
				}
			}
		}
		c := 0
		for {
			if _, taken := used[c]; !taken {
				break
			}
			c++
		}
		d.Clusters[ci].Color = c
		depthOf[ci] = dep + 1
		if depthOf[ci] > maxDepth {
			maxDepth = depthOf[ci]
		}
		if c+1 > d.NumColors {
			d.NumColors = c + 1
		}
	}
	// Each coloring round costs O(K) graph rounds (cluster-graph edges are
	// length-≤K paths) plus tree aggregation within clusters.
	return maxDepth * (d.K + 2*d.MaxRadius + 1)
}

// Validate checks Definitions 3.1 and 3.2: partition, connected clusters
// with valid spanning trees rooted at leaders, and K-separation of
// same-colored clusters.
func (d *Decomposition) Validate(g *graph.Graph) error {
	seen := make([]bool, g.N())
	for ci, c := range d.Clusters {
		if len(c.Nodes) == 0 {
			return fmt.Errorf("decomp: cluster %d empty", ci)
		}
		for _, v := range c.Nodes {
			if seen[v] {
				return fmt.Errorf("decomp: node %d in two clusters", v)
			}
			seen[v] = true
			if d.Of[v] != ci {
				return fmt.Errorf("decomp: Of[%d] != %d", v, ci)
			}
		}
		// Spanning tree: every member reaches the leader through members.
		for _, v := range c.Nodes {
			steps := 0
			for u := v; u != c.Leader; u = c.Parent[u] {
				p, ok := c.Parent[u]
				if !ok || p < 0 {
					return fmt.Errorf("decomp: cluster %d: node %d has no path to leader", ci, v)
				}
				if !g.HasEdge(u, p) {
					return fmt.Errorf("decomp: cluster %d: tree edge {%d,%d} not in graph", ci, u, p)
				}
				if d.Of[p] != ci {
					return fmt.Errorf("decomp: cluster %d: tree leaves cluster at %d", ci, p)
				}
				steps++
				if steps > len(c.Nodes) {
					return fmt.Errorf("decomp: cluster %d: tree cycle", ci)
				}
			}
		}
	}
	for v, ok := range seen {
		if !ok {
			return fmt.Errorf("decomp: node %d unclustered", v)
		}
	}
	// K-separation of same-colored clusters: BFS to depth K.
	for v := 0; v < g.N(); v++ {
		dist, _ := g.BFS(v)
		for u := 0; u < g.N(); u++ {
			if dist[u] > 0 && dist[u] <= d.K &&
				d.Of[u] != d.Of[v] &&
				d.Clusters[d.Of[u]].Color == d.Clusters[d.Of[v]].Color {
				return fmt.Errorf("decomp: same-color clusters %d,%d at distance %d ≤ K=%d",
					d.Of[v], d.Of[u], dist[u], d.K)
			}
		}
	}
	return nil
}
