package decomp

import (
	"math"
	"testing"

	"congestds/internal/graph"
)

func TestBuildValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := Build(g, Params{K: 0}); err == nil {
		t.Error("K=0 accepted")
	}
	if _, err := Build(g, Params{K: 1, Delta: -1}); err == nil {
		t.Error("negative delta accepted")
	}
}

func TestDecompositionAcrossFamilies(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"path20-k2", graph.Path(20), 2},
		{"cycle17-k2", graph.Cycle(17), 2},
		{"grid6x6-k2", graph.Grid(6, 6), 2},
		{"gnp50-k2", graph.GNPConnected(50, 0.1, 7), 2},
		{"gnp40-k3", graph.GNPConnected(40, 0.12, 8), 3},
		{"star15-k2", graph.Star(15), 2},
		{"single-k2", graph.Path(1), 2},
		{"disconnected", mustFromEdges(t, 6, [][2]int{{0, 1}, {2, 3}}), 2},
	} {
		t.Run(tt.name, func(t *testing.T) {
			d, err := Build(tt.g, Params{K: tt.k})
			if err != nil {
				t.Fatal(err)
			}
			if err := d.Validate(tt.g); err != nil {
				t.Fatal(err)
			}
			// Radius bound: log_{1+δ} n with δ=1 → log2 n.
			if bound := int(math.Log2(float64(tt.g.N()))) + 1; d.MaxRadius > bound {
				t.Errorf("radius %d exceeds log bound %d", d.MaxRadius, bound)
			}
			if d.ChargedRounds <= 0 {
				t.Error("no rounds charged")
			}
		})
	}
}

func mustFromEdges(t *testing.T, n int, edges [][2]int) *graph.Graph {
	t.Helper()
	g, err := graph.FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDecompositionDeterministic(t *testing.T) {
	g := graph.GNPConnected(60, 0.08, 5)
	a, err := Build(g, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(g, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) || a.NumColors != b.NumColors {
		t.Fatal("decomposition not deterministic")
	}
	for v := range a.Of {
		if a.Of[v] != b.Of[v] {
			t.Fatal("cluster assignment differs")
		}
	}
}

func TestCompleteGraphSingleCluster(t *testing.T) {
	g := graph.Complete(10)
	d, err := Build(g, Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) != 1 {
		t.Errorf("complete graph split into %d clusters", len(d.Clusters))
	}
	if d.NumColors != 1 {
		t.Errorf("colors=%d, want 1", d.NumColors)
	}
}

func TestSeparationIsRealObstruction(t *testing.T) {
	// On a long path with K=2, adjacent clusters must get different colors,
	// and at least 2 colors are needed unless there is a single cluster.
	g := graph.Path(40)
	d, err := Build(g, Params{K: 2, Delta: 4}) // small balls: many clusters
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(g); err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) > 1 && d.NumColors < 2 {
		t.Error("multiple touching clusters share one color")
	}
}
