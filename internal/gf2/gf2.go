// Package gf2 implements arithmetic in the finite fields GF(2^m) for
// 1 ≤ m ≤ 31. It underlies the k-wise independent coin generator of
// Lemma 3.3 (package kwise) and Linial's coloring construction (package
// coloring).
//
// Field elements are uint64 values < 2^m interpreted as polynomials over
// GF(2). The reducing polynomial is found at construction time by testing
// candidates for irreducibility (Rabin's test), so no hard-coded polynomial
// tables are needed and the choice is verifiable.
package gf2

import (
	"fmt"
	"math/bits"
)

// Field is GF(2^m). The zero value is invalid; use New.
type Field struct {
	m    uint
	poly uint64 // irreducible polynomial of degree m (bit m is set)
}

// New returns GF(2^m). m must be in [1, 31] so that all intermediate
// products of reduced elements fit in a uint64.
func New(m uint) (*Field, error) {
	if m < 1 || m > 31 {
		return nil, fmt.Errorf("gf2: m=%d out of range [1,31]", m)
	}
	poly, err := findIrreducible(m)
	if err != nil {
		return nil, err
	}
	return &Field{m: m, poly: poly}, nil
}

// MustNew is New for m known to be valid.
func MustNew(m uint) *Field {
	f, err := New(m)
	if err != nil {
		panic(err)
	}
	return f
}

// M returns the extension degree m.
func (f *Field) M() uint { return f.m }

// Order returns the field size 2^m.
func (f *Field) Order() uint64 { return 1 << f.m }

// Poly returns the reducing polynomial (for inspection and tests).
func (f *Field) Poly() uint64 { return f.poly }

// Add returns a+b (XOR).
func (f *Field) Add(a, b uint64) uint64 { return a ^ b }

// Mul returns a·b in the field. Operands must be reduced (< 2^m).
func (f *Field) Mul(a, b uint64) uint64 {
	return f.reduce(clmul(a, b))
}

// Pow returns a^e in the field.
func (f *Field) Pow(a uint64, e uint64) uint64 {
	res := uint64(1)
	base := a
	for e > 0 {
		if e&1 == 1 {
			res = f.Mul(res, base)
		}
		base = f.Mul(base, base)
		e >>= 1
	}
	return res
}

// Inv returns the multiplicative inverse of a ≠ 0 (via a^(2^m - 2)).
func (f *Field) Inv(a uint64) uint64 {
	if a == 0 {
		panic("gf2: inverse of zero")
	}
	return f.Pow(a, f.Order()-2)
}

// Eval evaluates the polynomial with the given coefficients (coeffs[0] is
// the constant term) at point x, by Horner's rule. Coefficients must be
// reduced field elements.
func (f *Field) Eval(coeffs []uint64, x uint64) uint64 {
	var acc uint64
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = f.Add(f.Mul(acc, x), coeffs[i])
	}
	return acc
}

// reduce reduces a polynomial of degree ≤ 2m-2 modulo the field polynomial.
func (f *Field) reduce(x uint64) uint64 {
	for d := degree(x); d >= int(f.m); d = degree(x) {
		x ^= f.poly << (uint(d) - f.m)
	}
	return x
}

// clmul is carry-less multiplication of polynomials over GF(2). The result
// degree must fit in 63 bits (guaranteed for reduced operands with m ≤ 31).
func clmul(a, b uint64) uint64 {
	var res uint64
	for b != 0 {
		i := bits.TrailingZeros64(b)
		res ^= a << uint(i)
		b &= b - 1
	}
	return res
}

// degree returns the degree of the polynomial x, or -1 for x = 0.
func degree(x uint64) int { return bits.Len64(x) - 1 }

// findIrreducible returns the lexicographically smallest irreducible
// polynomial of degree m over GF(2).
func findIrreducible(m uint) (uint64, error) {
	if m == 1 {
		return 1<<1 | 0, nil // x (irreducible of degree 1); x+1 also works
	}
	top := uint64(1) << m
	// Candidates must have a nonzero constant term (else divisible by x).
	for low := uint64(1); low < top; low += 2 {
		cand := top | low
		if isIrreducible(cand, m) {
			return cand, nil
		}
	}
	return 0, fmt.Errorf("gf2: no irreducible polynomial of degree %d found", m)
}

// isIrreducible applies Rabin's irreducibility test to the degree-m
// polynomial fpoly: fpoly is irreducible iff x^(2^m) ≡ x (mod fpoly) and for
// every prime divisor q of m, gcd(x^(2^(m/q)) - x, fpoly) = 1.
func isIrreducible(fpoly uint64, m uint) bool {
	x := uint64(2) // the polynomial "x"
	// h = x^(2^m) mod fpoly via m squarings.
	h := x
	for i := uint(0); i < m; i++ {
		h = polyMulMod(h, h, fpoly)
	}
	if h != x {
		return false
	}
	for _, q := range primeDivisors(m) {
		e := m / q
		g := x
		for i := uint(0); i < e; i++ {
			g = polyMulMod(g, g, fpoly)
		}
		if polyGCD(g^x, fpoly) != 1 {
			return false
		}
	}
	return true
}

// polyMulMod multiplies two polynomials modulo fpoly (degree ≤ 31 inputs).
func polyMulMod(a, b, fpoly uint64) uint64 {
	prod := clmul(a, b)
	d := degree(fpoly)
	for pd := degree(prod); pd >= d; pd = degree(prod) {
		prod ^= fpoly << (uint(pd) - uint(d))
	}
	return prod
}

// polyGCD is Euclid's algorithm on polynomials over GF(2).
func polyGCD(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, polyMod(a, b)
	}
	return a
}

// primeDivisors returns the distinct prime divisors of m in increasing
// order.
func primeDivisors(m uint) []uint {
	var ps []uint
	for p := uint(2); p*p <= m; p++ {
		if m%p == 0 {
			ps = append(ps, p)
			for m%p == 0 {
				m /= p
			}
		}
	}
	if m > 1 {
		ps = append(ps, m)
	}
	return ps
}

// polyMod returns a mod b for polynomials over GF(2), b ≠ 0.
func polyMod(a, b uint64) uint64 {
	d := degree(b)
	for ad := degree(a); ad >= d; ad = degree(a) {
		a ^= b << (uint(ad) - uint(d))
	}
	return a
}
