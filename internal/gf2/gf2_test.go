package gf2

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(32); err == nil {
		t.Error("m=32 accepted")
	}
	for m := uint(1); m <= 31; m++ {
		if _, err := New(m); err != nil {
			t.Errorf("New(%d): %v", m, err)
		}
	}
}

func TestKnownIrreduciblePolynomials(t *testing.T) {
	// Smallest irreducible polynomials: x²+x+1 = 0b111, x³+x+1 = 0b1011,
	// x⁴+x+1 = 0b10011, x⁸+x⁴+x³+x+1 = 0x11B (the AES polynomial).
	cases := map[uint]uint64{2: 0b111, 3: 0b1011, 4: 0b10011, 8: 0x11B}
	for m, want := range cases {
		f := MustNew(m)
		if f.Poly() != want {
			t.Errorf("m=%d: poly=%#x, want %#x", m, f.Poly(), want)
		}
	}
}

// Exhaustive field axioms for GF(2^3) and GF(2^4).
func TestFieldAxiomsExhaustive(t *testing.T) {
	for _, m := range []uint{2, 3, 4} {
		f := MustNew(m)
		q := f.Order()
		for a := uint64(0); a < q; a++ {
			for b := uint64(0); b < q; b++ {
				if f.Mul(a, b) != f.Mul(b, a) {
					t.Fatalf("m=%d: mul not commutative at %d,%d", m, a, b)
				}
				for c := uint64(0); c < q; c++ {
					if f.Mul(f.Mul(a, b), c) != f.Mul(a, f.Mul(b, c)) {
						t.Fatalf("m=%d: mul not associative", m)
					}
					if f.Mul(a, f.Add(b, c)) != f.Add(f.Mul(a, b), f.Mul(a, c)) {
						t.Fatalf("m=%d: not distributive", m)
					}
				}
			}
		}
		// Multiplicative group: every nonzero element has an inverse.
		for a := uint64(1); a < q; a++ {
			if f.Mul(a, f.Inv(a)) != 1 {
				t.Fatalf("m=%d: inverse of %d wrong", m, a)
			}
		}
		// Identity and zero.
		for a := uint64(0); a < q; a++ {
			if f.Mul(a, 1) != a || f.Mul(a, 0) != 0 {
				t.Fatalf("m=%d: identity/zero law broken at %d", m, a)
			}
		}
	}
}

func TestMulProducesReducedElements(t *testing.T) {
	f := MustNew(11)
	q := f.Order()
	vals := []uint64{0, 1, 2, 3, q / 2, q - 2, q - 1}
	for _, a := range vals {
		for _, b := range vals {
			if p := f.Mul(a, b); p >= q {
				t.Errorf("Mul(%d,%d)=%d not reduced (q=%d)", a, b, p, q)
			}
		}
	}
}

func TestPow(t *testing.T) {
	f := MustNew(5)
	for a := uint64(1); a < f.Order(); a++ {
		// Fermat: a^(2^m - 1) = 1.
		if f.Pow(a, f.Order()-1) != 1 {
			t.Errorf("a=%d: a^(q-1) != 1", a)
		}
		if f.Pow(a, 0) != 1 {
			t.Errorf("a=%d: a^0 != 1", a)
		}
		if f.Pow(a, 1) != a {
			t.Errorf("a=%d: a^1 != a", a)
		}
		if f.Pow(a, 5) != f.Mul(f.Mul(f.Mul(f.Mul(a, a), a), a), a) {
			t.Errorf("a=%d: a^5 mismatch", a)
		}
	}
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Inv(0) did not panic")
		}
	}()
	MustNew(4).Inv(0)
}

func TestEvalHorner(t *testing.T) {
	f := MustNew(8)
	coeffs := []uint64{7, 0, 5, 1} // 7 + 5x² + x³
	for _, x := range []uint64{0, 1, 2, 100, 255} {
		want := f.Add(f.Add(7, f.Mul(5, f.Mul(x, x))), f.Mul(x, f.Mul(x, x)))
		if got := f.Eval(coeffs, x); got != want {
			t.Errorf("Eval at %d: got %d, want %d", x, got, want)
		}
	}
	if f.Eval(nil, 3) != 0 {
		t.Error("empty polynomial should evaluate to 0")
	}
	if f.Eval(coeffs, 0) != 7 {
		t.Error("constant term wrong at x=0")
	}
}

// A degree-(k-1) polynomial through k points is unique; evaluating the
// interpolation property indirectly: distinct polynomials differ somewhere.
func TestEvalDistinguishesPolynomials(t *testing.T) {
	f := MustNew(5)
	a := []uint64{1, 2, 3}
	b := []uint64{1, 2, 4}
	diff := false
	for x := uint64(0); x < f.Order(); x++ {
		if f.Eval(a, x) != f.Eval(b, x) {
			diff = true
		}
	}
	if !diff {
		t.Error("distinct polynomials evaluate identically everywhere")
	}
}

func TestPolyGCD(t *testing.T) {
	// gcd(x²+x, x) = x  (both divisible by x)
	if g := polyGCD(0b110, 0b10); g != 0b10 {
		t.Errorf("gcd=%#b, want x", g)
	}
	// gcd of coprime polynomials is a unit (degree 0).
	if g := polyGCD(0b111, 0b10); degree(g) != 0 {
		t.Errorf("gcd of coprime polys has degree %d", degree(g))
	}
}

func TestIsIrreducibleRejectsComposites(t *testing.T) {
	// x²+1 = (x+1)² is reducible; x⁴+x²+1 = (x²+x+1)² is reducible.
	if isIrreducible(0b101, 2) {
		t.Error("x²+1 accepted as irreducible")
	}
	if isIrreducible(0b10101, 4) {
		t.Error("x⁴+x²+1 accepted as irreducible")
	}
	if !isIrreducible(0b111, 2) {
		t.Error("x²+x+1 rejected")
	}
}

func TestPrimeDivisors(t *testing.T) {
	cases := map[uint][]uint{1: nil, 2: {2}, 6: {2, 3}, 12: {2, 3}, 31: {31}, 30: {2, 3, 5}}
	for m, want := range cases {
		got := primeDivisors(m)
		if len(got) != len(want) {
			t.Errorf("primeDivisors(%d)=%v, want %v", m, got, want)
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("primeDivisors(%d)=%v, want %v", m, got, want)
			}
		}
	}
}
