package experiments

import "congestds/internal/graph"

// Shared experiment-row plumbing for the algorithm-family tables (E-arb,
// E-mcds, and the next family to come): a uniform (name, n, graph) case
// type, a sizes×families suite builder, and the failed-solve row shape.
// Family tables differ in their columns — that is their point — but the
// suite iteration and error accounting are identical, so they live here
// once.

// familyCase is one (graph family, size) instance of a family table.
type familyCase struct {
	Name string
	N    int
	G    *graph.Graph
}

// sizedSuite builds the cross product of sizes and the per-size family
// constructors.
func sizedSuite(sizes []int, perSize func(n int) []familyCase) []familyCase {
	var out []familyCase
	for _, n := range sizes {
		out = append(out, perSize(n)...)
	}
	return out
}

// errorRow appends the canonical failed-solve row — the family name,
// dashes, and the error in the last column — and counts the violation.
func (t *Table) errorRow(name string, err error) {
	row := make([]string, len(t.Header))
	row[0] = name
	for i := 1; i < len(row)-1; i++ {
		row[i] = "-"
	}
	row[len(row)-1] = "ERR:" + err.Error()
	t.Rows = append(t.Rows, row)
	t.Violations++
}
