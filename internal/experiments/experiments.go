// Package experiments implements the reproduction harness. The paper has no
// empirical evaluation (no tables, no figures — it is a theory paper), so
// each experiment validates one of its stated claims: approximation
// guarantees, fractionality schedules, uncovered-probability bounds, round
// and bandwidth complexity, and the connected dominating set construction.
// EXPERIMENTS.md records claimed-vs-measured for each; cmd/mdsbench prints
// the tables; bench_test.go wires each experiment into `go test -bench`.
package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"

	"congestds/internal/baseline"
	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/kwise"
	"congestds/internal/mds"
	"congestds/internal/rounding"
	"congestds/internal/setcover"
	"congestds/internal/verify"
)

// SimEngine selects the congest execution engine used by every experiment
// (threaded from cmd/mdsbench -sim). The engine changes wall-clock speed
// only, never results or round counts — the conformance suite
// (internal/congest/conformance) holds the engines byte-identical, and
// TestExperimentsEngineInvariant pins it at this level too.
var SimEngine congest.Engine

// Observer, when non-nil, is attached to every experiment-built run (see
// congest.Observer). Like SimEngine it is a package-level knob set by
// cmd/mdsbench before the suite runs; telemetry never changes results.
var Observer congest.Observer

// simConfig is the congest configuration every experiment-built network
// uses.
func simConfig() congest.Config { return congest.Config{Engine: SimEngine, Observer: Observer} }

// simParams threads the selected engine into an mds parameter set.
func simParams(p mds.Params) mds.Params {
	p.Sim = SimEngine
	p.Observer = Observer
	return p
}

// Table is one experiment's output.
type Table struct {
	ID     string
	Claim  string
	Header []string
	Rows   [][]string
	// Violations counts rows that violate the claim (0 = reproduced).
	Violations int
}

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s\n", t.ID, t.Claim)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "%-*s  ", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintf(&b, "violations: %d\n", t.Violations)
	return b.String()
}

// benchFamilies returns the graph suite at the given scale.
func benchFamilies(quick bool) []struct {
	Name string
	G    *graph.Graph
} {
	n := 256
	if quick {
		n = 64
	}
	return []struct {
		Name string
		G    *graph.Graph
	}{
		{"gnp", graph.GNPConnected(n, 4.0/float64(n), 1)},
		{"grid", graph.Grid(isqrt(n), isqrt(n))},
		{"ba", graph.BarabasiAlbert(n, 3, 2)},
		{"disk", graph.UnitDiskConnected(n, 1.8/math.Sqrt(float64(n)), 3)},
		{"caterpillar", graph.Caterpillar(n/5, 4)},
		{"cycle", graph.Cycle(n)},
	}
}

func isqrt(n int) int { return int(math.Round(math.Sqrt(float64(n)))) }

// optEstimate returns (lower bound on OPT, exact flag): exact for small
// graphs, dual-packing LB otherwise.
func optEstimate(g *graph.Graph) (float64, bool) {
	if g.N() <= 24 {
		return float64(len(baseline.Exact(g))), true
	}
	return verify.DualPackingLB(g), false
}

// E1 validates Theorem 1.1: the decomposition-engine MDS is deterministic,
// dominating, and within (1+ε)(1+ln(Δ+1)) of the optimum.
func E1(quick bool) *Table {
	return approxExperiment("E1", "Thm 1.1: |DS| ≤ (1+ε)(1+ln(Δ+1))·OPT via network decomposition",
		mds.EngineDecomposition, quick)
}

// E2 validates Theorem 1.2 (coloring engine).
func E2(quick bool) *Table {
	return approxExperiment("E2", "Thm 1.2: |DS| ≤ (1+ε)(1+ln(Δ+1))·OPT via distance-2 colorings",
		mds.EngineColoring, quick)
}

func approxExperiment(id, claim string, engine mds.Engine, quick bool) *Table {
	t := &Table{
		ID:     id,
		Claim:  claim,
		Header: []string{"family", "n", "Δ", "|DS|", "greedy", "OPT-lb", "ratio≤", "bound", "rounds", "ok"},
	}
	eps := 0.5
	for _, fam := range benchFamilies(quick) {
		g := fam.G
		res, err := mds.Solve(g, simParams(mds.Params{Eps: eps, Engine: engine}))
		if err != nil {
			t.Rows = append(t.Rows, []string{fam.Name, "-", "-", "-", "-", "-", "-", "-", "-", "ERR:" + err.Error()})
			t.Violations++
			continue
		}
		lb, exact := optEstimate(g)
		ratio := float64(len(res.Set)) / lb
		// The bound check is decisive only against exact OPT; against the
		// dual LB it is conservative (ratio is an upper bound on truth).
		ok := verify.IsDominatingSet(g, res.Set) && (!exact || ratio <= res.Bound+1e-9)
		if !ok {
			t.Violations++
		}
		gr := baseline.Greedy(g)
		t.Rows = append(t.Rows, []string{
			fam.Name,
			fmt.Sprint(g.N()), fmt.Sprint(g.MaxDegree()),
			fmt.Sprint(len(res.Set)), fmt.Sprint(len(gr)),
			fmt.Sprintf("%.1f", lb),
			fmt.Sprintf("%.3f", ratio), fmt.Sprintf("%.3f", res.Bound),
			fmt.Sprint(res.Ledger.Metrics().TotalRounds()),
			fmt.Sprint(ok),
		})
	}
	return t
}

// E3 validates Lemma 2.1: the initial fractional solution is feasible and
// ε/(2Δ̃)-fractional.
func E3(quick bool) *Table {
	t := &Table{
		ID:     "E3",
		Claim:  "Lemma 2.1: feasible fractional DS with fractionality ≥ ε/(2Δ̃)",
		Header: []string{"family", "n", "size", "OPT-lb", "fract", "floor", "feasible", "ok"},
	}
	eps := 0.5
	for _, fam := range benchFamilies(quick) {
		g := fam.G
		net := congest.NewNetwork(g, simConfig())
		fds, err := fractional.Initial(net, nil, fractional.InitialParams{Eps: eps})
		if err != nil {
			t.Rows = append(t.Rows, []string{fam.Name, "-", "-", "-", "-", "-", "-", "ERR"})
			t.Violations++
			continue
		}
		feasible := fds.Check(g) == nil
		floor := fractional.FloorValue(fds.Ctx, eps, g.MaxDegree())
		fr := fds.Fractionality()
		ok := feasible && fr >= floor
		if !ok {
			t.Violations++
		}
		lb, _ := optEstimate(g)
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()),
			fmt.Sprintf("%.2f", fds.SizeFloat()), fmt.Sprintf("%.1f", lb),
			fmt.Sprintf("%.2e", fds.Ctx.Float(fr)), fmt.Sprintf("%.2e", fds.Ctx.Float(floor)),
			fmt.Sprint(feasible), fmt.Sprint(ok),
		})
	}
	return t
}

// E4 validates Lemmas 3.9/3.14: every factor-two phase roughly doubles the
// fractionality at (1+ε₂)-ish size inflation.
func E4(quick bool) *Table {
	t := &Table{
		ID:     "E4",
		Claim:  "Lemma 3.14: factor-two phase doubles fractionality, size ×(1+ε₂)+n/Δ̃⁴",
		Header: []string{"family", "phase", "1/r in", "frac out/in", "size out/in", "ok"},
	}
	for _, fam := range benchFamilies(quick)[:3] {
		res, err := mds.Solve(fam.G, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineColoring}))
		if err != nil {
			t.Violations++
			continue
		}
		for i, ph := range res.Phases {
			fracGain := ph.FracOut / ph.FracIn
			sizeInfl := ph.SizeOut / math.Max(ph.SizeIn, 1e-9)
			ok := fracGain >= 1.5 && sizeInfl <= 1.6
			if !ok {
				t.Violations++
			}
			t.Rows = append(t.Rows, []string{
				fam.Name, fmt.Sprint(i), fmt.Sprintf("1/%d", ph.R),
				fmt.Sprintf("%.2f", fracGain), fmt.Sprintf("%.4f", sizeInfl), fmt.Sprint(ok),
			})
		}
	}
	return t
}

// E5 validates Lemmas 3.8/3.13: the one-shot step loses at most a ln(Δ̃)
// factor plus the rescue term (checked as final/initial fractional size).
func E5(quick bool) *Table {
	t := &Table{
		ID:     "E5",
		Claim:  "Lemma 3.13: one-shot size ≤ lnΔ̃·A + n/Δ̃ (checked vs fractional input A)",
		Header: []string{"family", "n", "A(frac)", "|DS|", "lnΔ̃·A+n/Δ̃", "ok"},
	}
	for _, fam := range benchFamilies(quick) {
		g := fam.G
		res, err := mds.Solve(g, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineColoring}))
		if err != nil {
			t.Violations++
			continue
		}
		// Use the size after Part II as A (input to one-shot).
		a := res.InitialSize
		if len(res.Phases) > 0 {
			a = res.Phases[len(res.Phases)-1].SizeOut
		}
		deltaTilde := float64(g.MaxDegree() + 1)
		bound := math.Log(deltaTilde+1)*a + float64(g.N())/deltaTilde + 1
		ok := float64(len(res.Set)) <= bound+1e-9
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()), fmt.Sprintf("%.2f", a),
			fmt.Sprint(len(res.Set)), fmt.Sprintf("%.2f", bound), fmt.Sprint(ok),
		})
	}
	return t
}

// E6 validates Theorem 1.4: valid CDS with |CDS| ≤ 3|DS| and the O(lnΔ)
// guarantee against OPT estimates.
func E6(quick bool) *Table {
	t := &Table{
		ID:     "E6",
		Claim:  "Thm 1.4: connected dominating set, |CDS| ≤ 3|DS| ≤ 3(1+ε)(1+lnΔ̃)·OPT",
		Header: []string{"family", "n", "|DS|", "|CDS|", "3|DS|", "valid", "rounds", "ok"},
	}
	for _, fam := range benchFamilies(quick) {
		g := fam.G
		if !g.IsConnected() {
			continue
		}
		res, err := cds.Solve(g, cds.Params{MDS: simParams(mds.Params{Eps: 0.5})})
		if err != nil {
			t.Violations++
			continue
		}
		valid := verify.CheckCDS(g, res.CDS) == nil
		ok := valid && len(res.CDS) <= 3*len(res.DS)
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()), fmt.Sprint(len(res.DS)), fmt.Sprint(len(res.CDS)),
			fmt.Sprint(3 * len(res.DS)), fmt.Sprint(valid),
			fmt.Sprint(res.Ledger.Metrics().TotalRounds()), fmt.Sprint(ok),
		})
	}
	return t
}

// E7 measures round/bandwidth scaling with n and checks the CONGEST
// message-size invariant (messages ≤ budget = O(log n)).
func E7(quick bool) *Table {
	t := &Table{
		ID:     "E7",
		Claim:  "Section 2: messages fit O(log n) bits; rounds grow polynomially in measured components",
		Header: []string{"n", "Δ", "rounds", "charged", "maxMsgBits", "budget", "ok"},
	}
	sizes := []int{32, 64, 128, 256}
	if quick {
		sizes = []int{32, 64, 128}
	}
	for _, n := range sizes {
		g := graph.GNPConnected(n, 4.0/float64(n), 9)
		res, err := mds.Solve(g, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineColoring}))
		if err != nil {
			t.Violations++
			continue
		}
		m := res.Ledger.Metrics()
		ok := m.MaxMsgBits <= m.BandwidthBits && verify.IsDominatingSet(g, res.Set)
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n), fmt.Sprint(g.MaxDegree()),
			fmt.Sprint(m.Rounds), fmt.Sprint(m.ChargedRounds),
			fmt.Sprint(m.MaxMsgBits), fmt.Sprint(m.BandwidthBits), fmt.Sprint(ok),
		})
	}
	return t
}

// E8 compares the derandomized algorithms with the randomized rounding
// baseline they derandomize: determinism must not cost more than the
// random baseline's mean (the conditional expectation argument).
func E8(quick bool) *Table {
	t := &Table{
		ID:     "E8",
		Claim:  "Derandomized one-shot ≤ mean randomized one-shot (method of conditional expectations)",
		Header: []string{"family", "derand |DS|", "random mean", "random min", "trials", "ok"},
	}
	trials := 50
	if quick {
		trials = 20
	}
	r := rand.New(rand.NewPCG(17, 19))
	for _, fam := range benchFamilies(quick)[:4] {
		g := fam.G
		res, err := mds.Solve(g, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineColoring}))
		if err != nil {
			t.Violations++
			continue
		}
		// Randomized baseline from the same fractional start.
		net := congest.NewNetwork(g, simConfig())
		fds, err := fractional.Initial(net, nil, fractional.InitialParams{Eps: 0.5 / 16})
		if err != nil {
			t.Violations++
			continue
		}
		fractional.Trim(g, fds, nil, 2)
		sum, min := 0, g.N()+1
		for i := 0; i < trials; i++ {
			set := baseline.RandomizedOneShot(g, fds, r)
			sum += len(set)
			if len(set) < min {
				min = len(set)
			}
		}
		mean := float64(sum) / float64(trials)
		// Pipelines differ slightly (random baseline skips part II), so
		// compare with 25% slack.
		ok := float64(len(res.Set)) <= mean*1.25+2
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(len(res.Set)), fmt.Sprintf("%.1f", mean),
			fmt.Sprint(min), fmt.Sprint(trials), fmt.Sprint(ok),
		})
	}
	return t
}

// E9 validates Lemmas 3.6/3.7 empirically: under k-wise coins the one-shot
// uncovered probability is ≤ 1/Δ̃.
func E9(quick bool) *Table {
	t := &Table{
		ID:     "E9",
		Claim:  "Lemma 3.6: Pr(E_v) ≤ Δ̃⁻¹ under k-wise independent coins, k ≥ F",
		Header: []string{"Δ̃", "F", "k", "trials", "Pr(E_v) est", "bound", "ok"},
	}
	trials := 2000
	if quick {
		trials = 600
	}
	r := rand.New(rand.NewPCG(23, 29))
	for _, nn := range []int{8, 12, 16} {
		g := graph.Complete(nn)
		ctx := fractional.ScaleFor(nn)
		fds := fractional.NewFDS(ctx, nn)
		for v := range fds.X {
			fds.X[v] = ctx.FromRatio(1, uint64(nn), true)
		}
		inst := rounding.OneShotOnGraph(g, fds, ctx.FromFloat(math.Log(float64(nn))))
		gen, err := kwise.New(nn, nn, ctx.Scale())
		if err != nil {
			t.Violations++
			continue
		}
		unc := 0
		for i := 0; i < trials; i++ {
			seed := gen.RandomSeed(r)
			out := inst.Execute(func(j int) bool { return gen.Coin(seed, j, uint64(inst.P[j])) })
			unc += out.Rescued
		}
		est := float64(unc) / float64(trials*nn)
		bound := 1.0 / float64(nn)
		ok := est <= bound*1.5+0.02
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(nn), fmt.Sprint(nn), fmt.Sprint(nn), fmt.Sprint(trials),
			fmt.Sprintf("%.4f", est), fmt.Sprintf("%.4f", bound), fmt.Sprint(ok),
		})
	}
	return t
}

// E10 validates Lemma 3.3: the extractor's coins are exactly k-wise uniform
// (exhaustively, on a small field).
func E10(bool) *Table {
	t := &Table{
		ID:     "E10",
		Claim:  "Lemma 3.3: k-wise independent coins from O(k·log²N)-bit seeds",
		Header: []string{"k", "N", "bits", "seed bits", "joint outcomes", "uniform", "ok"},
	}
	gen, err := kwise.New(2, 8, 3)
	if err != nil {
		t.Violations++
		return t
	}
	counts := make(map[[2]uint64]int)
	seed := make([]uint64, gen.SeedWords())
	order := uint64(1) << gen.FieldM()
	var rec func(i int)
	rec = func(i int) {
		if i == len(seed) {
			counts[[2]uint64{gen.Value(seed, 0), gen.Value(seed, 5)}]++
			return
		}
		for v := uint64(0); v < order; v++ {
			seed[i] = v
			rec(i + 1)
		}
	}
	rec(0)
	uniform := true
	first := -1
	for _, c := range counts {
		if first < 0 {
			first = c
		}
		if c != first {
			uniform = false
		}
	}
	ok := uniform && len(counts) == 64
	if !ok {
		t.Violations++
	}
	t.Rows = append(t.Rows, []string{
		"2", "8", "3", fmt.Sprint(gen.SeedBits()), fmt.Sprint(len(counts)),
		fmt.Sprint(uniform), fmt.Sprint(ok),
	})
	return t
}

// E11 validates the Section 5 set cover generalization.
func E11(quick bool) *Table {
	t := &Table{
		ID:     "E11",
		Claim:  "Section 5: set cover via the same machinery, ratio near greedy",
		Header: []string{"elements", "sets", "smax", "cover", "greedy", "ok"},
	}
	r := rand.New(rand.NewPCG(31, 37))
	sizes := []int{100, 200}
	if quick {
		sizes = []int{60}
	}
	for _, ne := range sizes {
		in := &setcover.Instance{NumElements: ne}
		for s := 0; s < ne/2; s++ {
			size := 2 + r.IntN(10)
			seen := map[int]bool{}
			var set []int
			for len(set) < size {
				e := r.IntN(ne)
				if !seen[e] {
					seen[e] = true
					set = append(set, e)
				}
			}
			in.Sets = append(in.Sets, set)
		}
		covered := make([]bool, ne)
		for _, s := range in.Sets {
			for _, e := range s {
				covered[e] = true
			}
		}
		for e, okc := range covered {
			if !okc {
				in.Sets = append(in.Sets, []int{e})
			}
		}
		res, err := setcover.Solve(in, 0.5)
		if err != nil {
			t.Violations++
			continue
		}
		gr := setcover.Greedy(in)
		ok := len(res.Cover) <= 3*len(gr)+3
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(ne), fmt.Sprint(len(in.Sets)), fmt.Sprint(in.MaxSetSize()),
			fmt.Sprint(len(res.Cover)), fmt.Sprint(len(gr)), fmt.Sprint(ok),
		})
	}
	return t
}

// E12 is the cross-algorithm ablation: both engines, greedy, and the
// randomized baseline on the same instances.
func E12(quick bool) *Table {
	t := &Table{
		ID:     "E12",
		Claim:  "Ablation: Thm1.1 vs Thm1.2 vs greedy vs randomized, same instances",
		Header: []string{"family", "n", "thm1.1", "thm1.2", "greedy", "rand(mean/5)", "OPT-lb"},
	}
	r := rand.New(rand.NewPCG(41, 43))
	for _, fam := range benchFamilies(quick)[:4] {
		g := fam.G
		r1, err1 := mds.Solve(g, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineDecomposition}))
		r2, err2 := mds.Solve(g, simParams(mds.Params{Eps: 0.5, Engine: mds.EngineColoring}))
		if err1 != nil || err2 != nil {
			t.Violations++
			continue
		}
		gr := baseline.Greedy(g)
		net := congest.NewNetwork(g, simConfig())
		fds, err := fractional.Initial(net, nil, fractional.InitialParams{Eps: 0.5 / 16})
		if err != nil {
			t.Violations++
			continue
		}
		fractional.Trim(g, fds, nil, 2)
		sum := 0
		for i := 0; i < 5; i++ {
			sum += len(baseline.RandomizedOneShot(g, fds, r))
		}
		lb, _ := optEstimate(g)
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()),
			fmt.Sprint(len(r1.Set)), fmt.Sprint(len(r2.Set)), fmt.Sprint(len(gr)),
			fmt.Sprintf("%.1f", float64(sum)/5), fmt.Sprintf("%.1f", lb),
		})
	}
	return t
}

// Experiment pairs a table's ID with its generator, so callers can select
// an experiment by name without computing the others (cmd/mdsbench -only).
type Experiment struct {
	ID  string
	Run func(quick bool) *Table
}

// Suite lists every experiment in run order.
func Suite() []Experiment {
	return []Experiment{
		{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5},
		{"E6", E6}, {"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10},
		{"E11", E11}, {"E12", E12}, {"E-arb", EArb}, {"E-mcds", EMcds},
	}
}

// All runs every experiment.
func All(quick bool) []*Table {
	tables := make([]*Table, 0, len(Suite()))
	for _, e := range Suite() {
		tables = append(tables, e.Run(quick))
	}
	return tables
}
