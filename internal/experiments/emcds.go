package experiments

import (
	"fmt"

	"congestds/internal/cds"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mcds"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

// E-mcds is the experiment table for the third algorithm family: the
// connected-dominating-set solver of internal/mcds (the Ghaffari MCDS
// family, arXiv:1404.7559, unit-weight restriction) against the source
// paper's Section 4 CDS construction (internal/cds over the Theorem 1.2
// pipeline). Three claims are checked per row:
//
//   - validity: the output passes verify.CertifyCDS — connected, dominating,
//     and within the instantiated claim 3·(1+ε)(1+ln(Δ̃+1)) against the
//     dual-packing lower bound (LB ≤ OPT_DS ≤ OPT_CDS, so the check is
//     conservative);
//   - structure: |CDS| ≤ 3·|DS|+1 — at most two connectors per dominator
//     plus the root, the charge against the LP bound;
//   - rounds: measured rounds = 4·|schedule| + D̂ + 2 exactly, at most
//     verify.RoundBoundMCDS(Δ, ε, D̂), with D̂ = 2·ecc(0)+2 from one
//     host-side BFS (the known-diameter assumption).
//
// The CI-sized table stops at ~500 nodes; EMcdsScale is the 10⁶-node
// version behind cmd/mdsbench -emcds-scale and the memsmoke CI job.

// emcdsEps is the threshold decay parameter every E-mcds row uses.
const emcdsEps = 0.5

// emcdsFamilies returns the connected suite at the given sizes.
func emcdsFamilies(sizes []int) []familyCase {
	return sizedSuite(sizes, func(n int) []familyCase {
		return []familyCase{
			{"gnp", n, graph.GNPConnected(n, 4.0/float64(n), 1)},
			{"grid", n, graph.Grid(isqrt(n), isqrt(n))},
			{"ba", n, graph.BarabasiAlbert(n, 2, 2)},
			{"caterpillar", n, graph.Caterpillar(n/5, 4)},
		}
	})
}

// EMcds validates the two-phase MCDS claims on the CI-sized suite.
func EMcds(quick bool) *Table {
	t := &Table{
		ID:     "E-mcds",
		Claim:  "Ghaffari'14 (unit weights): CDS ≤ 3|DS|+1, ratio ≤ 3(1+ε)(1+lnΔ̃⁺) vs LB, rounds = 4·|schedule|+D̂+2",
		Header: []string{"family", "n", "Δ", "D̂", "|DS|", "|CDS|", "3|DS|+1", "|paper|", "OPT-lb", "ratio≤", "claim", "rounds", "r-bound", "ok"},
	}
	sizes := []int{128, 512}
	if quick {
		sizes = []int{48, 192}
	}
	for _, fam := range emcdsFamilies(sizes) {
		g := fam.G
		diam := 2*g.Eccentricity(0) + 2
		res, err := mcds.Solve(g, mcds.Params{Eps: emcdsEps, Sim: SimEngine, DiamBound: diam, Observer: Observer})
		if err != nil {
			t.errorRow(fam.Name, err)
			continue
		}
		paper, err := cds.Solve(g, cds.Params{MDS: simParams(mds.Params{Eps: emcdsEps})})
		paperSize := "-"
		if err == nil {
			paperSize = fmt.Sprint(len(paper.CDS))
		}
		// Solve verified connectivity + domination; only the ratio is left.
		cert := verify.CertifyCDSVerified(g, res.CDS, verify.MCDSClaimBound(g.MaxDegree(), emcdsEps))
		rBound := verify.RoundBoundMCDS(g.MaxDegree(), emcdsEps, diam)
		ok := cert.OK &&
			len(res.CDS) <= 3*len(res.DS)+1 &&
			res.Metrics.Rounds == 4*len(res.Thresholds)+diam+2 &&
			res.Metrics.Rounds <= rBound
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()), fmt.Sprint(g.MaxDegree()), fmt.Sprint(diam),
			fmt.Sprint(len(res.DS)), fmt.Sprint(len(res.CDS)), fmt.Sprint(3*len(res.DS) + 1),
			paperSize,
			fmt.Sprintf("%.1f", cert.LowerBound),
			fmt.Sprintf("%.3f", cert.Ratio), fmt.Sprintf("%.1f", cert.ClaimBound),
			fmt.Sprint(res.Metrics.Rounds), fmt.Sprint(rBound),
			fmt.Sprint(ok),
		})
	}
	return t
}

// EMcdsScale is the full-size E-mcds row: connected families at n nodes
// (10⁶ in the memsmoke job and cmd/mdsbench -emcds-scale), run natively on
// the stepped engine regardless of SimEngine. The paper's CDS pipeline is
// out of reach at this size, so the row checks mcds against its
// certificate only; the CI-sized EMcds table carries the comparison.
func EMcdsScale(n int) *Table {
	t := emcdsScaleTable(fmt.Sprintf("Ghaffari'14 at n=%d on EngineStepped: verified connected+dominating, ratio vs LB, rounds from (Δ,ε,D̂)", n))
	for _, fam := range []familyCase{
		{"uforest", n, graph.UnionForests(n, graph.DefaultArbAlpha, 1)},
		{"ba", n, graph.BarabasiAlbert(n, 2, 4)},
	} {
		emcdsScaleRow(t, fam.Name, fam.G)
	}
	return t
}

// EMcdsScaleOn is EMcdsScale on one caller-supplied graph instead of the
// generated suite — the entry point behind cmd/mdsbench -emcds-graph,
// where the instance comes from a .csrg file (possibly memory-mapped)
// rather than a generator spec.
func EMcdsScaleOn(name string, g *graph.Graph) *Table {
	t := emcdsScaleTable(fmt.Sprintf("Ghaffari'14 on %s (n=%d) on EngineStepped: verified connected+dominating, ratio vs LB, rounds from (Δ,ε,D̂)", name, g.N()))
	emcdsScaleRow(t, name, g)
	return t
}

func emcdsScaleTable(claim string) *Table {
	return &Table{
		ID:     "E-mcds-scale",
		Claim:  claim,
		Header: []string{"family", "n", "Δ", "D̂", "|DS|", "|CDS|", "OPT-lb", "ratio≤", "claim", "rounds", "r-bound", "ok"},
	}
}

func emcdsScaleRow(t *Table, name string, g *graph.Graph) {
	diam := 2*g.Eccentricity(0) + 2
	res, err := mcds.Solve(g, mcds.Params{Eps: emcdsEps, Sim: congest.EngineStepped, DiamBound: diam, Observer: Observer})
	if err != nil {
		t.errorRow(name, err)
		return
	}
	// Solve verified connectivity + domination; only the ratio is left.
	cert := verify.CertifyCDSVerified(g, res.CDS, verify.MCDSClaimBound(g.MaxDegree(), emcdsEps))
	rBound := verify.RoundBoundMCDS(g.MaxDegree(), emcdsEps, diam)
	ok := cert.OK && len(res.CDS) <= 3*len(res.DS)+1 && res.Metrics.Rounds <= rBound
	if !ok {
		t.Violations++
	}
	t.Rows = append(t.Rows, []string{
		name, fmt.Sprint(g.N()), fmt.Sprint(g.MaxDegree()), fmt.Sprint(diam),
		fmt.Sprint(len(res.DS)), fmt.Sprint(len(res.CDS)),
		fmt.Sprintf("%.1f", cert.LowerBound),
		fmt.Sprintf("%.3f", cert.Ratio), fmt.Sprintf("%.1f", cert.ClaimBound),
		fmt.Sprint(res.Metrics.Rounds), fmt.Sprint(rBound),
		fmt.Sprint(ok),
	})
}
