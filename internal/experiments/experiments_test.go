package experiments

import (
	"strings"
	"testing"
)

// The entire experiment suite must reproduce every claim (0 violations) at
// the quick scale. This doubles as the repository's integration test: it
// exercises every package end to end.
func TestAllExperimentsReproduceClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	for _, tab := range All(true) {
		tab := tab
		t.Run(tab.ID, func(t *testing.T) {
			if tab.Violations != 0 {
				t.Errorf("%d claim violations:\n%s", tab.Violations, tab)
			}
			if len(tab.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
		})
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Claim:  "example",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	for _, want := range []string{"EX", "example", "333", "violations: 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestOptEstimateExactOnSmall(t *testing.T) {
	for _, fam := range benchFamilies(true) {
		lb, exact := optEstimate(fam.G)
		if fam.G.N() <= 24 && !exact {
			t.Errorf("%s: expected exact OPT for n=%d", fam.Name, fam.G.N())
		}
		if lb < 1 {
			t.Errorf("%s: lower bound %v < 1", fam.Name, lb)
		}
	}
}
