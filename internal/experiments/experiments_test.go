package experiments

import (
	"errors"
	"strings"
	"testing"

	"congestds/internal/congest"
)

// The entire experiment suite must reproduce every claim (0 violations) at
// the quick scale. This doubles as the repository's integration test: it
// exercises every package end to end.
func TestAllExperimentsReproduceClaims(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	for i, tab := range All(true) {
		tab, want := tab, Suite()[i].ID
		t.Run(tab.ID, func(t *testing.T) {
			if tab.ID != want {
				t.Errorf("Suite lists %q at position %d but the table reports ID %q", want, i, tab.ID)
			}
			if tab.Violations != 0 {
				t.Errorf("%d claim violations:\n%s", tab.Violations, tab)
			}
			if len(tab.Rows) == 0 {
				t.Error("experiment produced no rows")
			}
		})
	}
}

// The congest engine must be invisible at the experiment level: rendered
// tables (sizes, round counts, bandwidth columns) are byte-identical under
// both engines.
func TestExperimentsEngineInvariant(t *testing.T) {
	run := func(eng congest.Engine, exp func(bool) *Table) string {
		old := SimEngine
		SimEngine = eng
		defer func() { SimEngine = old }()
		return exp(true).String()
	}
	for _, exp := range []struct {
		name string
		fn   func(bool) *Table
	}{
		{"E3", E3},
		{"E4", E4},
		{"E-arb", EArb},
		{"E-mcds", EMcds},
	} {
		if testing.Short() && exp.name != "E3" {
			continue
		}
		ref := run(congest.EngineGoroutine, exp.fn)
		for _, eng := range []congest.Engine{congest.EngineSharded, congest.EngineStepped} {
			got := run(eng, exp.fn)
			if ref != got {
				t.Errorf("%s diverges across congest engines:\n--- goroutine\n%s\n--- %v\n%s", exp.name, ref, eng, got)
			}
		}
	}
}

// TestEArbScaleSmall drives the full-size table shape at a toy size, so
// the -earb-scale path is covered without a million-node CI run.
func TestEArbScaleSmall(t *testing.T) {
	tab := EArbScale(400)
	if tab.Violations != 0 {
		t.Errorf("%d violations:\n%s", tab.Violations, tab)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("rows=%d, want 2 (uforest, gridx)", len(tab.Rows))
	}
}

// TestEMcdsScaleSmall drives the full-size table shape at a toy size, so
// the -emcds-scale path is covered without a million-node CI run.
func TestEMcdsScaleSmall(t *testing.T) {
	tab := EMcdsScale(400)
	if tab.Violations != 0 {
		t.Errorf("%d violations:\n%s", tab.Violations, tab)
	}
	if len(tab.Rows) != 2 {
		t.Errorf("rows=%d, want 2 (uforest, ba)", len(tab.Rows))
	}
}

func TestErrorRowShape(t *testing.T) {
	tab := &Table{Header: []string{"family", "n", "ok"}}
	tab.errorRow("gnp", errors.New("boom"))
	if tab.Violations != 1 || len(tab.Rows) != 1 {
		t.Fatalf("violations=%d rows=%d", tab.Violations, len(tab.Rows))
	}
	if row := tab.Rows[0]; row[0] != "gnp" || row[1] != "-" || !strings.Contains(row[2], "boom") {
		t.Errorf("bad error row: %v", row)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "EX",
		Claim:  "example",
		Header: []string{"a", "bb"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	s := tab.String()
	for _, want := range []string{"EX", "example", "333", "violations: 0"} {
		if !strings.Contains(s, want) {
			t.Errorf("rendered table missing %q:\n%s", want, s)
		}
	}
}

func TestOptEstimateExactOnSmall(t *testing.T) {
	for _, fam := range benchFamilies(true) {
		lb, exact := optEstimate(fam.G)
		if fam.G.N() <= 24 && !exact {
			t.Errorf("%s: expected exact OPT for n=%d", fam.Name, fam.G.N())
		}
		if lb < 1 {
			t.Errorf("%s: lower bound %v < 1", fam.Name, lb)
		}
	}
}
