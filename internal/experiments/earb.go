package experiments

import (
	"fmt"

	"congestds/internal/arbmds"
	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

// E-arb is the first experiment table for an algorithm family beyond the
// source paper: the bounded-arboricity peeling MDS of Dory–Ghaffari–Ilchi
// (arXiv:2206.05174, implemented in internal/arbmds) against the paper's
// LP-rounding pipeline (mds.Solve) and the sequential greedy baseline, on
// graph families with an arboricity witness by construction. Two claims
// are checked per row:
//
//   - approximation: |DS| ≤ (2+ε)(2α̂+1) · LB, the instantiated O(α) claim
//     with α̂ the measured degeneracy (α ≤ α̂ ≤ 2α-1) and LB the
//     dual-packing lower bound (LB ≤ OPT), so the check is conservative
//     twice over;
//   - rounds: measured rounds = 4·|schedule|, at most
//     verify.RoundBoundArb(Δ, ε) — a function of (Δ, ε) only. Each family
//     appears at two sizes; for gridx (Δ fixed by construction) the two
//     rows must report the *same* round count, pinning the
//     n-independence claim directly.
//
// The CI-sized table stops at ~500 nodes; EArbScale is the 10⁶-node
// version behind cmd/mdsbench -earb-scale and the memsmoke CI job.

// earbEps is the threshold decay parameter every E-arb row uses.
const earbEps = 0.5

// earbFamilies returns the bounded-arboricity suite at the given sizes.
func earbFamilies(sizes []int) []familyCase {
	return sizedSuite(sizes, func(n int) []familyCase {
		side := isqrt(n)
		return []familyCase{
			{"uforest", n, graph.UnionForests(n, graph.DefaultArbAlpha, 7)},
			{"gridx", n, graph.GridDiagonals(side, side)},
			{"adag", n, graph.RandomOutDAG(n, graph.DefaultArbAlpha, 7)},
			{"caterpillar", n, graph.Caterpillar(n/5, 4)},
		}
	})
}

// EArb validates the bounded-arboricity claims on the CI-sized suite.
func EArb(quick bool) *Table {
	t := &Table{
		ID:     "E-arb",
		Claim:  "DGI'22: peeling MDS ≤ O(α)·OPT in O(ε⁻¹·logΔ) rounds, independent of n",
		Header: []string{"family", "n", "Δ", "α̂", "|arb|", "|paper|", "greedy", "OPT-lb", "ratio≤", "O(α)-claim", "rounds", "r-bound", "ok"},
	}
	sizes := []int{128, 512}
	if quick {
		sizes = []int{48, 192}
	}
	gridxRounds := map[int]int{} // size index → rounds, for the n-independence pin
	for _, fam := range earbFamilies(sizes) {
		g := fam.G
		res, err := arbmds.Solve(g, arbmds.Params{Eps: earbEps, Sim: SimEngine, Observer: Observer})
		if err != nil {
			t.errorRow(fam.Name, err)
			continue
		}
		paper, err := mds.Solve(g, simParams(mds.Params{Eps: earbEps, Engine: mds.EngineColoring}))
		paperSize := "-"
		if err == nil {
			paperSize = fmt.Sprint(len(paper.Set))
		}
		gr := baseline.Greedy(g)
		cert := verify.CertifyArb(g, res.Set, earbEps)
		rBound := verify.RoundBoundArb(g.MaxDegree(), earbEps)
		ok := cert.OK &&
			res.Metrics.Rounds == 4*len(res.Thresholds) &&
			res.Metrics.Rounds <= rBound
		if fam.Name == "gridx" {
			gridxRounds[fam.N] = res.Metrics.Rounds
		}
		if !ok {
			t.Violations++
		}
		t.Rows = append(t.Rows, []string{
			fam.Name, fmt.Sprint(g.N()), fmt.Sprint(g.MaxDegree()),
			fmt.Sprint(cert.Degeneracy),
			fmt.Sprint(len(res.Set)), paperSize, fmt.Sprint(len(gr)),
			fmt.Sprintf("%.1f", cert.LowerBound),
			fmt.Sprintf("%.3f", cert.Ratio), fmt.Sprintf("%.1f", cert.ClaimBound),
			fmt.Sprint(res.Metrics.Rounds), fmt.Sprint(rBound),
			fmt.Sprint(ok),
		})
	}
	// n-independence pin: gridx has Δ=8 at every size, so its round count
	// must not move between the two sizes.
	first, same := -1, true
	for _, r := range gridxRounds {
		if first < 0 {
			first = r
		} else if r != first {
			same = false
		}
	}
	if !same {
		t.Violations++
		t.Rows = append(t.Rows, []string{"gridx", "-", "-", "-", "-", "-", "-", "-", "-", "-",
			fmt.Sprint(gridxRounds), "-", "ROUNDS DEPEND ON n"})
	}
	return t
}

// EArbScale is the full-size E-arb row: a bounded-arboricity family at n
// nodes (10⁶ in the memsmoke job and cmd/mdsbench -earb-scale), run
// natively on the stepped engine regardless of SimEngine — the
// goroutine-backed engines would need gigabytes of stacks. The paper
// pipeline and the greedy baseline are out of reach at this size (greedy
// alone is O(|DS|·m)), so the row checks arbmds against its certificate
// only; the CI-sized EArb table carries the three-way comparison.
func EArbScale(n int) *Table {
	t := earbScaleTable(fmt.Sprintf("DGI'22 at n=%d on EngineStepped: verified O(α) ratio, rounds from (Δ,ε) alone", n))
	for _, fam := range []familyCase{
		{"uforest", n, graph.UnionForests(n, graph.DefaultArbAlpha, 7)},
		{"gridx", n, graph.GridDiagonals(isqrt(n), isqrt(n))},
	} {
		earbScaleRow(t, fam.Name, fam.G)
	}
	return t
}

// EArbScaleOn is EArbScale on one caller-supplied graph instead of the
// generated suite — the entry point behind cmd/mdsbench -earb-graph, where
// the instance comes from a .csrg file (possibly memory-mapped) rather
// than a generator spec.
func EArbScaleOn(name string, g *graph.Graph) *Table {
	t := earbScaleTable(fmt.Sprintf("DGI'22 on %s (n=%d) on EngineStepped: verified O(α) ratio, rounds from (Δ,ε) alone", name, g.N()))
	earbScaleRow(t, name, g)
	return t
}

func earbScaleTable(claim string) *Table {
	return &Table{
		ID:     "E-arb-scale",
		Claim:  claim,
		Header: []string{"family", "n", "Δ", "α̂", "|arb|", "OPT-lb", "ratio≤", "O(α)-claim", "rounds", "r-bound", "ok"},
	}
}

func earbScaleRow(t *Table, name string, g *graph.Graph) {
	res, err := arbmds.Solve(g, arbmds.Params{Eps: earbEps, Sim: congest.EngineStepped, Observer: Observer})
	if err != nil {
		t.errorRow(name, err)
		return
	}
	cert := verify.CertifyArb(g, res.Set, earbEps)
	rBound := verify.RoundBoundArb(g.MaxDegree(), earbEps)
	ok := cert.OK && res.Metrics.Rounds <= rBound
	if !ok {
		t.Violations++
	}
	t.Rows = append(t.Rows, []string{
		name, fmt.Sprint(g.N()), fmt.Sprint(g.MaxDegree()),
		fmt.Sprint(cert.Degeneracy), fmt.Sprint(len(res.Set)),
		fmt.Sprintf("%.1f", cert.LowerBound),
		fmt.Sprintf("%.3f", cert.Ratio), fmt.Sprintf("%.1f", cert.ClaimBound),
		fmt.Sprint(res.Metrics.Rounds), fmt.Sprint(rBound),
		fmt.Sprint(ok),
	})
}
