package kwise

import (
	"math/rand/v2"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 4, 8); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(2, 0, 8); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := New(2, 4, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := New(2, 4, 65); err == nil {
		t.Error("bits=65 accepted")
	}
	g, err := New(3, 100, 40)
	if err != nil {
		t.Fatal(err)
	}
	if g.K() != 3 || g.N() != 100 || g.Bits() != 40 {
		t.Error("accessors wrong")
	}
}

func TestSeedGeometry(t *testing.T) {
	g, err := New(4, 1000, 40)
	if err != nil {
		t.Fatal(err)
	}
	m := g.FieldM() // 10 bits for 1000 points
	if m != 10 {
		t.Errorf("field m=%d, want 10", m)
	}
	wantChunks := 4 // ceil(40/10)
	if g.SeedWords() != 4*wantChunks {
		t.Errorf("SeedWords=%d, want %d", g.SeedWords(), 4*wantChunks)
	}
	if g.SeedBits() != 4*wantChunks*int(m) {
		t.Errorf("SeedBits=%d", g.SeedBits())
	}
}

// enumerateSeeds calls fn for every possible seed of g (small fields only).
func enumerateSeeds(g *Generator, fn func(seed []uint64)) {
	words := g.SeedWords()
	order := uint64(1) << g.FieldM()
	seed := make([]uint64, words)
	var rec func(i int)
	rec = func(i int) {
		if i == words {
			fn(seed)
			return
		}
		for v := uint64(0); v < order; v++ {
			seed[i] = v
			rec(i + 1)
		}
	}
	rec(0)
}

// Exhaustive pairwise independence: with k=2 over GF(2^3), for every pair of
// indices the joint distribution of the two 3-bit values over all seeds must
// be exactly uniform.
func TestPairwiseIndependenceExhaustive(t *testing.T) {
	g, err := New(2, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.FieldM() != 3 {
		t.Fatalf("m=%d, want 3", g.FieldM())
	}
	totalSeeds := 1 << (3 * 2) // order^words = 8^2
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			counts := make(map[[2]uint64]int)
			enumerateSeeds(g, func(seed []uint64) {
				counts[[2]uint64{g.Value(seed, i), g.Value(seed, j)}]++
			})
			want := totalSeeds / (8 * 8)
			if len(counts) != 64 {
				t.Fatalf("pair (%d,%d): %d distinct outcomes, want 64", i, j, len(counts))
			}
			for kv, c := range counts {
				if c != want {
					t.Fatalf("pair (%d,%d): outcome %v count=%d, want %d", i, j, kv, c, want)
				}
			}
		}
	}
}

// Exhaustive 3-wise independence with k=3 over GF(2^2), n=4, 2-bit values.
func TestThreeWiseIndependenceExhaustive(t *testing.T) {
	g, err := New(3, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.FieldM() != 2 {
		t.Fatalf("m=%d, want 2", g.FieldM())
	}
	totalSeeds := 1 << (2 * 3) // 4^3
	idx := [][3]int{{0, 1, 2}, {0, 1, 3}, {0, 2, 3}, {1, 2, 3}}
	for _, tr := range idx {
		counts := make(map[[3]uint64]int)
		enumerateSeeds(g, func(seed []uint64) {
			counts[[3]uint64{g.Value(seed, tr[0]), g.Value(seed, tr[1]), g.Value(seed, tr[2])}]++
		})
		want := totalSeeds / (4 * 4 * 4)
		if len(counts) != 64 {
			t.Fatalf("triple %v: %d outcomes, want 64", tr, len(counts))
		}
		for kv, c := range counts {
			if c != want {
				t.Fatalf("triple %v: outcome %v count=%d, want %d", tr, kv, c, want)
			}
		}
	}
}

// Coin marginal exactness: Pr[Coin(i, T)] = T/2^S exactly, verified by
// exhaustive seed enumeration.
func TestCoinExactMarginal(t *testing.T) {
	g, err := New(2, 4, 4) // 4-bit values from GF(2^2): 2 chunks of 2 bits
	if err != nil {
		t.Fatal(err)
	}
	totalSeeds := 1
	for i := 0; i < g.SeedWords(); i++ {
		totalSeeds *= int(1 << g.FieldM())
	}
	for _, threshold := range []uint64{0, 1, 5, 8, 16} {
		for i := 0; i < g.N(); i++ {
			hits := 0
			enumerateSeeds(g, func(seed []uint64) {
				if g.Coin(seed, i, threshold) {
					hits++
				}
			})
			want := totalSeeds * int(threshold) / 16
			if hits != want {
				t.Fatalf("threshold=%d index=%d: hits=%d, want %d", threshold, i, hits, want)
			}
		}
	}
}

// Multi-chunk concatenation stays uniform per value.
func TestMultiChunkUniform(t *testing.T) {
	g, err := New(2, 4, 6) // GF(2^2): 3 chunks of 2 bits
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	enumerateSeeds(g, func(seed []uint64) {
		counts[g.Value(seed, 1)]++
	})
	want := counts[0]
	for v, c := range counts {
		if c != want {
			t.Fatalf("value %d: count %d, want %d (not uniform)", v, c, want)
		}
	}
}

func TestValueDeterministic(t *testing.T) {
	g, err := New(4, 50, 40)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(1, 2))
	seed := g.RandomSeed(r)
	for i := 0; i < g.N(); i++ {
		if g.Value(seed, i) != g.Value(seed, i) {
			t.Fatal("Value not deterministic")
		}
	}
}

func TestNormalizeSeed(t *testing.T) {
	g, err := New(2, 16, 8) // m=4
	if err != nil {
		t.Fatal(err)
	}
	raw := []uint64{0xFFFF, 0xABCD}
	norm := g.NormalizeSeed(raw)
	if len(norm) != g.SeedWords() {
		t.Fatalf("len=%d, want %d", len(norm), g.SeedWords())
	}
	for _, w := range norm {
		if w >= 1<<g.FieldM() {
			t.Errorf("word %d not reduced", w)
		}
	}
}

func TestValuePanicsOnBadInput(t *testing.T) {
	g, _ := New(2, 4, 4)
	for _, fn := range []func(){
		func() { g.Value(make([]uint64, g.SeedWords()), -1) },
		func() { g.Value(make([]uint64, g.SeedWords()), 4) },
		func() { g.Value(make([]uint64, 1), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

// Statistical sanity at realistic sizes: mean of values close to uniform
// mean over random seeds (not a proof, a smoke test for the wide field).
func TestLargeGeneratorStatistics(t *testing.T) {
	g, err := New(8, 512, 40)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewPCG(7, 9))
	var sum float64
	const trials = 200
	for tr := 0; tr < trials; tr++ {
		seed := g.RandomSeed(r)
		for i := 0; i < 64; i++ {
			sum += float64(g.Value(seed, i))
		}
	}
	mean := sum / (trials * 64)
	uniformMean := float64(uint64(1)<<40) / 2
	if mean < 0.9*uniformMean || mean > 1.1*uniformMean {
		t.Errorf("mean %.3g too far from uniform mean %.3g", mean, uniformMean)
	}
}
