// Package kwise implements Lemma 3.3 of the paper (after [AS04]): from a
// random seed of O(k·log²N) bits one can deterministically extract N biased
// coins with transmittable probabilities p_1..p_N that are k-wise
// independent.
//
// Construction: a uniformly random polynomial P of degree ≤ k-1 over
// GF(2^m), evaluated at N distinct points, yields N field elements that are
// k-wise independent and uniform. Truncating each to w ≤ m bits keeps both
// properties. Concatenating chunks from independent polynomials widens
// values to S bits. A biased coin with probability p (a multiple of 2^-S)
// is Value(i) < p·2^S, which has exactly probability p.
package kwise

import (
	"fmt"
	"math/rand/v2"

	"congestds/internal/gf2"
)

// Generator derives S-bit k-wise independent uniform values for indices
// 0..N-1 from a seed. Immutable after construction; safe for concurrent use.
type Generator struct {
	field  *gf2.Field
	k      int
	n      int
	bits   uint   // S: output bits per value
	widths []uint // chunk widths, sum = bits, each ≤ field.M()
}

// New returns a Generator for n values with independence k and the given
// output width in bits (the fixpoint scale S).
func New(k, n int, bitsOut uint) (*Generator, error) {
	if k < 1 {
		return nil, fmt.Errorf("kwise: independence k=%d < 1", k)
	}
	if n < 1 {
		return nil, fmt.Errorf("kwise: n=%d < 1", n)
	}
	if bitsOut < 1 || bitsOut > 64 {
		return nil, fmt.Errorf("kwise: bits=%d out of range [1,64]", bitsOut)
	}
	// Field must have at least n distinct evaluation points. Small fields
	// are allowed (tests enumerate seeds exhaustively); values are widened
	// to S bits with multiple chunks.
	m := uint(1)
	for (uint64(1) << m) < uint64(n) {
		m++
	}
	if m > 31 {
		return nil, fmt.Errorf("kwise: n=%d needs field larger than GF(2^31)", n)
	}
	f, err := gf2.New(m)
	if err != nil {
		return nil, err
	}
	var widths []uint
	remaining := bitsOut
	for remaining > 0 {
		w := remaining
		if w > m {
			w = m
		}
		widths = append(widths, w)
		remaining -= w
	}
	return &Generator{field: f, k: k, n: n, bits: bitsOut, widths: widths}, nil
}

// K returns the independence parameter.
func (g *Generator) K() int { return g.k }

// N returns the number of values.
func (g *Generator) N() int { return g.n }

// Bits returns the output width S.
func (g *Generator) Bits() uint { return g.bits }

// FieldM returns the extension degree of the underlying field.
func (g *Generator) FieldM() uint { return g.field.M() }

// SeedWords returns the seed length in uint64 words: one field element per
// coefficient, k coefficients per chunk.
func (g *Generator) SeedWords() int { return g.k * len(g.widths) }

// SeedBits returns the true entropy of the seed in bits (k·m per chunk),
// the quantity the paper's Lemma 3.3 calls K = O(k·log²N).
func (g *Generator) SeedBits() int { return g.k * len(g.widths) * int(g.field.M()) }

// NormalizeSeed reduces each seed word into the field (callers may supply
// arbitrary uint64 entropy). It returns a new slice of length SeedWords().
func (g *Generator) NormalizeSeed(raw []uint64) []uint64 {
	out := make([]uint64, g.SeedWords())
	mask := g.field.Order() - 1
	for i := range out {
		if i < len(raw) {
			out[i] = raw[i] & mask
		}
	}
	return out
}

// RandomSeed draws a seed from r (used by randomized baselines and tests;
// the deterministic algorithms never call it).
func (g *Generator) RandomSeed(r *rand.Rand) []uint64 {
	seed := make([]uint64, g.SeedWords())
	for i := range seed {
		seed[i] = r.Uint64() & (g.field.Order() - 1)
	}
	return seed
}

// Value returns the S-bit value for index i under the given seed. The seed
// must have length SeedWords() with every word < 2^m.
func (g *Generator) Value(seed []uint64, i int) uint64 {
	if i < 0 || i >= g.n {
		panic(fmt.Sprintf("kwise: index %d out of range [0,%d)", i, g.n))
	}
	if len(seed) != g.SeedWords() {
		panic(fmt.Sprintf("kwise: seed has %d words, want %d", len(seed), g.SeedWords()))
	}
	var out uint64
	point := uint64(i)
	for c, w := range g.widths {
		coeffs := seed[c*g.k : (c+1)*g.k]
		y := g.field.Eval(coeffs, point)
		out = out<<w | (y & ((1 << w) - 1))
	}
	return out
}

// Coin returns the biased coin for index i: true with probability
// threshold/2^S (for threshold ≤ 2^S), exactly as Lemma 3.3 requires for
// transmittable probabilities.
func (g *Generator) Coin(seed []uint64, i int, threshold uint64) bool {
	return g.Value(seed, i) < threshold
}
