// Package verify provides validators and optimality certificates for
// dominating sets: domination and connectivity checks, and LP-duality lower
// bounds used to certify approximation ratios on instances too large for
// exact solving.
package verify

import (
	"fmt"
	"sort"

	"congestds/internal/graph"
)

// IsDominatingSet reports whether set dominates g: every node is in the set
// or adjacent to a member.
func IsDominatingSet(g *graph.Graph, set []int) bool {
	return FirstUndominated(g, set) == -1
}

// FirstUndominated returns the first node not dominated by set, or -1.
func FirstUndominated(g *graph.Graph, set []int) int {
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || v >= g.N() {
			return v
		}
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, u := range g.Neighbors(v) {
			if in[u] {
				dominated = true
				break
			}
		}
		if !dominated {
			return v
		}
	}
	return -1
}

// IsConnectedSet reports whether the subgraph of g induced by set is
// connected (the CDS condition; empty and singleton sets count as
// connected). The check is a flat-slice BFS in O(n + m) — it certifies
// million-node connected dominating sets without map overhead.
func IsConnectedSet(g *graph.Graph, set []int) bool {
	if len(set) <= 1 {
		return true
	}
	in := make([]bool, g.N())
	for _, v := range set {
		if v < 0 || v >= g.N() {
			return false
		}
		in[v] = true
	}
	// BFS inside the induced subgraph.
	visited := make([]bool, g.N())
	visited[set[0]] = true
	reached := 1
	queue := make([]int32, 1, len(set))
	queue[0] = int32(set[0])
	for qi := 0; qi < len(queue); qi++ {
		v := int(queue[qi])
		for _, u := range g.Neighbors(v) {
			if in[u] && !visited[u] {
				visited[u] = true
				reached++
				queue = append(queue, u)
			}
		}
	}
	return reached == len(set)
}

// CheckCDS verifies the connected dominating set conditions and returns a
// descriptive error on failure.
func CheckCDS(g *graph.Graph, set []int) error {
	if v := FirstUndominated(g, set); v != -1 {
		return fmt.Errorf("verify: node %d not dominated", v)
	}
	if !IsConnectedSet(g, set) {
		return fmt.Errorf("verify: induced subgraph not connected")
	}
	return nil
}

// DualPackingLB returns a certified lower bound on the minimum (even
// fractional) dominating set of g, by constructing a feasible dual packing:
// values y(v) ≥ 0 with Σ_{u∈N(v)} y(u) ≤ 1 for every inclusive
// neighbourhood. By LP weak duality, Σ y ≤ OPT_f ≤ OPT. The packing is
// built greedily, preferring nodes whose inclusive neighbourhoods have small
// maximum degree (they constrain few others).
func DualPackingLB(g *graph.Graph) float64 {
	n := g.N()
	// load[u] = current Σ_{w∈N(u)} y(w), as exact multiples of 1/q with
	// q = lcm-free denominator: use integer arithmetic with denominator D.
	const denom = 1 << 20
	load := make([]int64, n)
	order := make([]int, n)
	for v := range order {
		order[v] = v
	}
	// Nodes with small inclusive-neighbourhood max degree first.
	weight := make([]int, n)
	for v := 0; v < n; v++ {
		w := g.Degree(v) + 1
		for _, u := range g.Neighbors(v) {
			if d := g.Degree(int(u)) + 1; d > w {
				w = d
			}
		}
		weight[v] = w
	}
	sort.Slice(order, func(i, j int) bool {
		if weight[order[i]] != weight[order[j]] {
			return weight[order[i]] < weight[order[j]]
		}
		return order[i] < order[j]
	})
	var total int64
	for _, v := range order {
		// Max raise for y(v): slack of the tightest constraint over the
		// inclusive neighbourhoods containing v, i.e. all u ∈ N⁺(v).
		slack := int64(denom) - load[v]
		for _, u := range g.Neighbors(v) {
			if s := int64(denom) - load[int(u)]; s < slack {
				slack = s
			}
		}
		if slack <= 0 {
			continue
		}
		load[v] += slack
		for _, u := range g.Neighbors(v) {
			load[int(u)] += slack
		}
		total += slack
	}
	return float64(total) / denom
}

// RatioCertificate bundles an approximation certificate: the achieved size,
// a lower bound on OPT, and the certified ratio size/LB (an upper bound on
// the true approximation ratio).
type RatioCertificate struct {
	Size       int
	LowerBound float64
	Ratio      float64
}

// Certify returns a RatioCertificate for a dominating set using the dual
// packing lower bound (and 1 as a floor for nonempty graphs).
func Certify(g *graph.Graph, set []int) RatioCertificate {
	lb := DualPackingLB(g)
	if g.N() > 0 && lb < 1 {
		lb = 1
	}
	c := RatioCertificate{Size: len(set), LowerBound: lb}
	if lb > 0 {
		c.Ratio = float64(len(set)) / lb
	}
	return c
}
