package verify

import (
	"fmt"
	"math"

	"congestds/internal/graph"
)

// Connected-dominating-set certificates. A CDS certificate bundles the
// hard structural checks (domination + induced connectivity, both linear
// time) with the LP-duality ratio: OPT_CDS ≥ OPT_DS ≥ DualPackingLB, so
// size/LB upper-bounds the true CDS approximation ratio. The claim bound
// the E-mcds experiments check against is the instantiated O(log Δ) claim
// of the Ghaffari-style two-phase construction (internal/mcds): the
// dominating phase tracks the greedy (1+ε)(1+ln(Δ̃+1)) regime, and the
// connection phase adds at most two connectors per dominator plus the
// root, hence the factor 3.

// CDSCertificate is the connected analogue of RatioCertificate.
type CDSCertificate struct {
	Size       int
	LowerBound float64
	Ratio      float64
	ClaimBound float64
	Connected  bool
	Dominating bool
	OK         bool
}

// CertifyCDS verifies set as a connected dominating set of g and checks
// its certified ratio (size over the dual-packing LB, floored at 1)
// against claimBound. A claimBound ≤ 0 skips the ratio check (structural
// checks only).
func CertifyCDS(g *graph.Graph, set []int, claimBound float64) CDSCertificate {
	c := CDSCertificate{Size: len(set), ClaimBound: claimBound}
	c.Dominating = FirstUndominated(g, set) == -1
	c.Connected = IsConnectedSet(g, set)
	return c.withRatio(g, claimBound)
}

// CertifyCDSVerified returns the certificate for a set that is already
// known connected and dominating — mcds.Solve and mcds.Connect verify
// their outputs (CheckCDS/CheckCDSComponents) before returning, so
// certifying such a result only needs the LP ratio. Skipping the
// redundant structural BFS passes matters at 10⁶ nodes, where they would
// double the post-solve wall-clock.
func CertifyCDSVerified(g *graph.Graph, set []int, claimBound float64) CDSCertificate {
	c := CDSCertificate{Size: len(set), ClaimBound: claimBound, Dominating: true, Connected: true}
	return c.withRatio(g, claimBound)
}

// withRatio fills the dual-packing ratio and the verdict from the already
// populated structural fields.
func (c CDSCertificate) withRatio(g *graph.Graph, claimBound float64) CDSCertificate {
	lb := DualPackingLB(g)
	if g.N() > 0 && lb < 1 {
		lb = 1
	}
	c.LowerBound = lb
	if lb > 0 {
		c.Ratio = float64(c.Size) / lb
	}
	c.OK = c.Dominating && c.Connected &&
		(claimBound <= 0 || c.Ratio <= claimBound+1e-9)
	return c
}

// String renders the certificate for command-line output.
func (c CDSCertificate) String() string {
	return fmt.Sprintf("size=%d LB=%.2f ratio≤%.3f claim=%.1f connected=%v dominating=%v ok=%v",
		c.Size, c.LowerBound, c.Ratio, c.ClaimBound, c.Connected, c.Dominating, c.OK)
}

// CheckCDSComponents verifies the componentwise CDS conditions: set must
// dominate g, and its members must induce a connected subgraph within
// every connected component of g. On a connected graph this is exactly
// CheckCDS; the componentwise form is the guarantee the connector
// programs give on arbitrary graphs (one CDS per component), and the
// check that catches a mis-oriented run (e.g. a diameter bound below the
// true diameter) on inputs where whole-graph connectivity is undefined.
func CheckCDSComponents(g *graph.Graph, set []int) error {
	if v := FirstUndominated(g, set); v != -1 {
		return fmt.Errorf("verify: node %d not dominated", v)
	}
	comp, count := g.Components()
	members := make([][]int, count)
	for _, v := range set {
		members[comp[v]] = append(members[comp[v]], v)
	}
	for ci, sub := range members {
		if !IsConnectedSet(g, sub) {
			return fmt.Errorf("verify: induced subgraph not connected within component %d", ci)
		}
	}
	return nil
}

// MCDSClaimBound instantiates the approximation claim the E-mcds tables
// check: |CDS| ≤ 3·(1+ε)·(1+ln(Δ̃+1))·OPT. The greedy dominating phase is
// checked against the (1+ε)(1+ln(Δ̃+1)) regime of the source paper's
// Theorem 1.1 bound shape, and the two-hop connection triples it (at most
// two connectors per dominator, |CDS| ≤ 3|DS|+1).
func MCDSClaimBound(delta int, eps float64) float64 {
	if eps <= 0 {
		eps = 0.5
	}
	deltaTilde := float64(delta + 1)
	if deltaTilde < 1 {
		deltaTilde = 1
	}
	return 3 * (1 + eps) * (1 + math.Log(deltaTilde+1))
}

// RoundBoundMCDS returns the claimed round bound of the two-phase MCDS
// construction for max degree delta, decay eps and diameter bound diam:
// the peeling bound (4 rounds per threshold, O(ε⁻¹·log Δ̃) thresholds)
// plus diam orientation rounds plus the two connect rounds. mcds.Solve
// pins its measured rounds to exactly 4·|schedule| + diam + 2 ≤ this.
func RoundBoundMCDS(delta int, eps float64, diam int) int {
	if diam < 1 {
		diam = 1
	}
	return RoundBoundArb(delta, eps) + diam + 2
}
