package verify

import (
	"math"
	"testing"

	"congestds/internal/graph"
)

func TestCertifyCDS(t *testing.T) {
	g := graph.Path(7)
	// {1,2,3,4,5} is a connected dominating set of the 7-path.
	cds := []int{1, 2, 3, 4, 5}
	c := CertifyCDS(g, cds, MCDSClaimBound(g.MaxDegree(), 0.5))
	if !c.OK || !c.Connected || !c.Dominating {
		t.Errorf("valid CDS rejected: %v", c)
	}
	if c.Size != 5 || c.Ratio <= 0 {
		t.Errorf("bad certificate fields: %v", c)
	}
	// {1,3,5} dominates but is disconnected.
	c = CertifyCDS(g, []int{1, 3, 5}, 0)
	if c.OK || c.Connected || !c.Dominating {
		t.Errorf("disconnected set accepted: %v", c)
	}
	// {0,1} is connected but does not dominate.
	c = CertifyCDS(g, []int{0, 1}, 0)
	if c.OK || !c.Connected || c.Dominating {
		t.Errorf("non-dominating set accepted: %v", c)
	}
	if c.String() == "" {
		t.Error("empty String()")
	}
}

func TestCertifyCDSClaimBound(t *testing.T) {
	g := graph.Star(10)
	// The centre alone is a CDS of a star; any positive claim accepts it
	// (ratio 1), a sub-unit claim rejects it.
	if c := CertifyCDS(g, []int{0}, 1.0); !c.OK {
		t.Errorf("ratio-1 CDS rejected at claim 1.0: %v", c)
	}
	if c := CertifyCDS(g, []int{0, 1, 2, 3}, 1.5); c.OK {
		t.Errorf("ratio-4 set accepted at claim 1.5: %v", c)
	}
}

func TestIsConnectedSetLargeAndEdgeCases(t *testing.T) {
	g := graph.Grid(40, 40)
	var column []int
	for r := 0; r < 40; r++ {
		column = append(column, r*40)
	}
	if !IsConnectedSet(g, column) {
		t.Error("grid column reported disconnected")
	}
	column = append(column, 5) // {5} is isolated from column 0 in the induced graph
	if IsConnectedSet(g, column) {
		t.Error("column plus detached node reported connected")
	}
	if !IsConnectedSet(g, nil) || !IsConnectedSet(g, []int{3}) {
		t.Error("empty/singleton sets must count as connected")
	}
	if IsConnectedSet(g, []int{0, 4000}) {
		t.Error("out-of-range member accepted")
	}
}

func TestCheckCDSComponents(t *testing.T) {
	// Two path components; {1,2,3} ∪ {6,7,8} is a componentwise CDS.
	g, err := graph.FromEdges(10, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {5, 6}, {6, 7}, {7, 8}, {8, 9}})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCDSComponents(g, []int{1, 2, 3, 6, 7, 8}); err != nil {
		t.Errorf("valid componentwise CDS rejected: %v", err)
	}
	// Disconnected within a component: {1,3} leaves node 2 between them.
	if err := CheckCDSComponents(g, []int{1, 3, 6, 7, 8}); err == nil {
		t.Error("within-component disconnection accepted")
	}
	// Missing coverage in the second component.
	if err := CheckCDSComponents(g, []int{1, 2, 3, 6, 7}); err == nil {
		t.Error("undominated node accepted")
	}
	// On a connected graph it must agree with CheckCDS.
	p := graph.Path(7)
	if got, want := CheckCDSComponents(p, []int{1, 2, 3, 4, 5}) == nil, CheckCDS(p, []int{1, 2, 3, 4, 5}) == nil; got != want {
		t.Error("componentwise check disagrees with CheckCDS on a connected graph")
	}
}

func TestMCDSClaimAndRoundBounds(t *testing.T) {
	want := 3 * 1.5 * (1 + math.Log(10))
	if got := MCDSClaimBound(8, 0.5); math.Abs(got-want) > 1e-9 {
		t.Errorf("MCDSClaimBound(8, 0.5) = %v, want %v", got, want)
	}
	if a, b := RoundBoundMCDS(8, 0.5, 10), RoundBoundArb(8, 0.5)+12; a != b {
		t.Errorf("RoundBoundMCDS = %d, want peel bound + diam + 2 = %d", a, b)
	}
	if RoundBoundMCDS(8, 0.5, 0) <= RoundBoundArb(8, 0.5) {
		t.Error("RoundBoundMCDS must clamp diam to at least 1")
	}
}
