package verify

import (
	"testing"

	"congestds/internal/graph"
)

// TestDegeneracyKnownGraphs checks the peel against graphs whose degeneracy
// is known in closed form.
func TestDegeneracyKnownGraphs(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"single", graph.Path(1), 0},
		{"path", graph.Path(10), 1},
		{"tree", graph.CompleteTree(3, 3), 1},
		{"cycle", graph.Cycle(9), 2},
		{"complete6", graph.Complete(6), 5},
		{"star", graph.Star(20), 1},
		{"grid", graph.Grid(6, 6), 2},
		{"torus", graph.Torus(5, 5), 4},
		{"hypercube4", graph.Hypercube(4), 4},
	}
	for _, c := range cases {
		if got := Degeneracy(c.g); got != c.want {
			t.Errorf("%s: degeneracy=%d, want %d", c.name, got, c.want)
		}
	}
}

// TestDegeneracyOrderProperty: the returned order must be a witness — every
// node has at most k neighbours appearing later in the order.
func TestDegeneracyOrderProperty(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := graph.GNP(80, 0.08, seed)
		k, order := DegeneracyOrder(g)
		rank := make([]int, g.N())
		for i, v := range order {
			rank[v] = i
		}
		for _, v := range order {
			later := 0
			for _, u := range g.Neighbors(v) {
				if rank[u] > rank[v] {
					later++
				}
			}
			if later > k {
				t.Fatalf("seed %d: node %d has %d later neighbours > k=%d", seed, v, later, k)
			}
		}
	}
}

// TestDegeneracyBoundsGenerators: the measured degeneracy of the
// constructed bounded-arboricity families must respect their witnesses.
func TestDegeneracyBoundsGenerators(t *testing.T) {
	for _, alpha := range []int{1, 2, 3, 4} {
		if d := Degeneracy(graph.UnionForests(300, alpha, 3)); d > 2*alpha-1 {
			t.Errorf("UnionForests(α=%d): degeneracy %d > 2α-1", alpha, d)
		}
		if d := Degeneracy(graph.RandomOutDAG(300, alpha, 3)); d > 2*alpha {
			t.Errorf("RandomOutDAG(α=%d): degeneracy %d > 2α", alpha, d)
		}
	}
	if d := Degeneracy(graph.GridDiagonals(14, 14)); d > 5 {
		t.Errorf("GridDiagonals: degeneracy %d > 5 (planar)", d)
	}
}

// TestArboricityBounds pins the sandwich lo ≤ α ≤ hi on graphs with known
// arboricity: trees have α=1, K6 has α=3, a union of 3 spanning trees ≤ 3.
func TestArboricityBounds(t *testing.T) {
	check := func(name string, g *graph.Graph, alpha int) {
		lo, hi := ArboricityBounds(g)
		if lo > alpha || hi < alpha {
			t.Errorf("%s: bounds [%d,%d] exclude true α=%d", name, lo, hi, alpha)
		}
	}
	check("tree", graph.CompleteTree(2, 5), 1)
	check("complete6", graph.Complete(6), 3)
	check("cycle", graph.Cycle(12), 2)
	lo, hi := ArboricityBounds(graph.UnionForests(200, 3, 9))
	if hi < lo || lo < 1 {
		t.Fatalf("UnionForests bounds [%d,%d] malformed", lo, hi)
	}
	if lo > 3 {
		t.Errorf("UnionForests(α=3): lower bound %d > 3 contradicts the witness", lo)
	}
}

// TestCertifyArb drives the certificate end to end: a full vertex set
// dominates but may blow the O(α) bound on dense graphs; a greedy-quality
// set on a star must certify at ratio 1.
func TestCertifyArb(t *testing.T) {
	star := graph.Star(30)
	c := CertifyArb(star, []int{0}, 0.5)
	if !c.OK || c.Ratio != 1 || c.Degeneracy != 1 {
		t.Errorf("star center: %+v, want ok ratio=1 degeneracy=1", c)
	}
	// Non-dominating set must fail regardless of ratio.
	c = CertifyArb(star, []int{1}, 0.5)
	if c.OK {
		t.Error("non-dominating set certified")
	}
	// All-vertices on a path: ratio ≈ 3 ≤ (2.5)·3 = 7.5 ⇒ ok.
	p := graph.Path(30)
	all := make([]int, p.N())
	for v := range all {
		all[v] = v
	}
	c = CertifyArb(p, all, 0.5)
	if !c.OK {
		t.Errorf("path all-vertices: %+v, want ok (ratio %.2f ≤ claim %.1f)", c, c.Ratio, c.ClaimBound)
	}
}

// TestRoundBoundArb: the claimed round bound must grow with Δ and 1/ε only.
func TestRoundBoundArb(t *testing.T) {
	if a, b := RoundBoundArb(3, 0.5), RoundBoundArb(3000, 0.5); a >= b {
		t.Errorf("bound not increasing in Δ: %d vs %d", a, b)
	}
	if a, b := RoundBoundArb(100, 0.5), RoundBoundArb(100, 0.1); a >= b {
		t.Errorf("bound not increasing in 1/ε: %d vs %d", a, b)
	}
	if RoundBoundArb(0, 0.5) < 4 {
		t.Error("degenerate Δ must still allow at least one phase")
	}
}
