package verify

import (
	"fmt"
	"math"

	"congestds/internal/graph"
)

// Greedy arboricity/degeneracy estimation. The degeneracy d(G) — the
// largest minimum degree over all subgraphs, computed exactly by the
// min-degree peel below — sandwiches the arboricity α(G) within a factor
// of two: α ≤ d ≤ 2α-1. That makes the peel a certified constant-factor
// arboricity estimator, which is all the O(α)-approximation checks of the
// E-arb experiments need: a bound stated against d is a bound against α up
// to the constant folded into the claim.

// Degeneracy returns the degeneracy of g: the smallest k such that every
// subgraph has a node of degree ≤ k, computed by the exact bucket-queue
// min-degree peel in O(n + m).
func Degeneracy(g *graph.Graph) int {
	k, _ := DegeneracyOrder(g)
	return k
}

// DegeneracyOrder returns the degeneracy of g together with the peel order
// (a degeneracy ordering: each node has ≤ k neighbours later in the order).
// The order is deterministic: buckets pop the smallest node index first.
func DegeneracyOrder(g *graph.Graph) (int, []int) {
	n := g.N()
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket queue over degrees; pos/vert give O(1) decrease-key, exactly
	// the Matula–Beck smallest-last ordering.
	bucketStart := make([]int, maxDeg+2)
	for v := 0; v < n; v++ {
		bucketStart[deg[v]+1]++
	}
	for d := 1; d < len(bucketStart); d++ {
		bucketStart[d] += bucketStart[d-1]
	}
	vert := make([]int, n) // nodes sorted by current degree, bucket by bucket
	pos := make([]int, n)  // index of node v in vert
	fill := append([]int(nil), bucketStart[:maxDeg+1]...)
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	order := make([]int, 0, n)
	removed := make([]bool, n)
	k := 0
	for i := 0; i < n; i++ {
		v := vert[i]
		if deg[v] > k {
			k = deg[v]
		}
		removed[v] = true
		order = append(order, v)
		for _, w := range g.Neighbors(v) {
			u := int(w)
			if removed[u] || deg[u] <= deg[v] {
				continue
			}
			// Swap u with the first node of its bucket, then shrink the
			// bucket: u's degree drops by one.
			du := deg[u]
			first := bucketStart[du]
			fv := vert[first]
			if fv != u {
				vert[first], vert[pos[u]] = u, fv
				pos[fv], pos[u] = pos[u], first
			}
			bucketStart[du]++
			deg[u]--
		}
	}
	return k, order
}

// ArboricityBounds returns certified lower and upper bounds on the
// arboricity of g: the Nash-Williams density floor ⌈m/(n-1)⌉ and half the
// degeneracy round up from below, against the degeneracy itself from above
// (α ≤ d(G) ≤ 2α-1).
func ArboricityBounds(g *graph.Graph) (lo, hi int) {
	d := Degeneracy(g)
	hi = d
	lo = (d + 1) / 2
	if n := g.N(); n > 1 {
		if dens := (g.M() + n - 2) / (n - 1); dens > lo {
			lo = dens
		}
	}
	if hi < 1 {
		hi = 1
	}
	if lo < 1 {
		lo = 1
	}
	return lo, hi
}

// ArbClaimBound instantiates the O(α) approximation claim of the
// bounded-arboricity MDS (Dory–Ghaffari–Ilchi, arXiv:2206.05174) with the
// explicit constant the E-arb experiments check: size ≤ (2+ε)·(2·α̂+1)·OPT,
// where α̂ is the degeneracy-based arboricity upper bound. Checked against
// the dual-packing lower bound the check is conservative twice over (the LB
// undershoots OPT, and α̂ overshoots α), so a violation is a real bug, not
// noise.
func ArbClaimBound(alphaUB int, eps float64) float64 {
	if alphaUB < 1 {
		alphaUB = 1
	}
	return (2 + eps) * float64(2*alphaUB+1)
}

// ArbCertificate is the bounded-arboricity analogue of RatioCertificate:
// the achieved size, the dual-packing lower bound on OPT, the certified
// ratio, the measured degeneracy standing in for α, and the instantiated
// O(α) claim the ratio is checked against.
type ArbCertificate struct {
	Size       int
	LowerBound float64
	Ratio      float64
	Degeneracy int
	ClaimBound float64
	OK         bool
}

// CertifyArb verifies set against the O(α) claim: it must dominate g and
// its certified ratio (size over the dual-packing LB, floored at 1) must
// stay within ArbClaimBound of the measured degeneracy.
func CertifyArb(g *graph.Graph, set []int, eps float64) ArbCertificate {
	c := ArbCertificate{Size: len(set), Degeneracy: Degeneracy(g)}
	c.ClaimBound = ArbClaimBound(c.Degeneracy, eps)
	lb := DualPackingLB(g)
	if g.N() > 0 && lb < 1 {
		lb = 1
	}
	c.LowerBound = lb
	if lb > 0 {
		c.Ratio = float64(len(set)) / lb
	}
	c.OK = IsDominatingSet(g, set) && c.Ratio <= c.ClaimBound+1e-9
	return c
}

// String renders the certificate for command-line output.
func (c ArbCertificate) String() string {
	return fmt.Sprintf("size=%d LB=%.2f ratio≤%.3f degeneracy=%d O(α)-claim=%.1f ok=%v",
		c.Size, c.LowerBound, c.Ratio, c.Degeneracy, c.ClaimBound, c.OK)
}

// RoundBoundArb returns the claimed round bound of the bounded-arboricity
// peeling algorithm for a graph with max degree delta: 4 CONGEST rounds per
// threshold phase, O(ε⁻¹·log Δ) phases, independent of n. arbmds pins its
// actual schedule length to this formula in its tests; the E-arb table
// checks measured rounds against it.
func RoundBoundArb(delta int, eps float64) int {
	deltaTilde := float64(delta + 1)
	if deltaTilde < 2 {
		deltaTilde = 2
	}
	if eps <= 0 {
		eps = 0.5
	}
	if eps < ArbMinEps {
		eps = ArbMinEps
	}
	phases := int(math.Ceil(math.Log(deltaTilde)/math.Log1p(eps))) + 2
	return 4 * phases
}

// ArbMinEps is the smallest accepted ε for the bounded-arboricity round
// accounting; arbmds.MinEps aliases it, so the threshold schedule and this
// bound always clamp identically.
const ArbMinEps = 0.01
