package verify

import (
	"testing"

	"congestds/internal/graph"
)

func TestIsDominatingSet(t *testing.T) {
	g := graph.Star(6)
	if !IsDominatingSet(g, []int{0}) {
		t.Error("hub should dominate star")
	}
	if IsDominatingSet(g, []int{1}) {
		t.Error("single leaf cannot dominate star")
	}
	if !IsDominatingSet(graph.Path(0), nil) {
		t.Error("empty graph is dominated by empty set")
	}
	p := graph.Path(5)
	if !IsDominatingSet(p, []int{1, 3}) {
		t.Error("{1,3} dominates P5")
	}
	if IsDominatingSet(p, []int{0, 4}) {
		t.Error("{0,4} misses node 2")
	}
	if v := FirstUndominated(p, []int{0, 4}); v != 2 {
		t.Errorf("FirstUndominated=%d, want 2", v)
	}
}

func TestIsConnectedSet(t *testing.T) {
	g := graph.Cycle(6)
	if !IsConnectedSet(g, []int{0, 1, 2}) {
		t.Error("arc should be connected")
	}
	if IsConnectedSet(g, []int{0, 3}) {
		t.Error("antipodal pair is not connected")
	}
	if !IsConnectedSet(g, nil) || !IsConnectedSet(g, []int{4}) {
		t.Error("empty/singleton should be connected")
	}
}

func TestCheckCDS(t *testing.T) {
	g := graph.Path(5)
	if err := CheckCDS(g, []int{1, 2, 3}); err != nil {
		t.Errorf("valid CDS rejected: %v", err)
	}
	if err := CheckCDS(g, []int{1, 3}); err == nil {
		t.Error("disconnected DS accepted as CDS")
	}
	if err := CheckCDS(g, []int{0, 1}); err == nil {
		t.Error("non-dominating set accepted as CDS")
	}
}

func TestDualPackingLBProperties(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
		opt  int // known optimum
	}{
		{"star10", graph.Star(10), 1},
		{"path7", graph.Path(7), 3},
		{"cycle9", graph.Cycle(9), 3},
		{"complete8", graph.Complete(8), 1},
		{"grid3x3", graph.Grid(3, 3), 3},
	} {
		t.Run(tt.name, func(t *testing.T) {
			lb := DualPackingLB(tt.g)
			if lb > float64(tt.opt)+1e-9 {
				t.Errorf("LB %.4f exceeds OPT %d — unsound certificate", lb, tt.opt)
			}
			if lb <= 0 {
				t.Errorf("LB %.4f not positive", lb)
			}
		})
	}
}

// The packing built by DualPackingLB must itself be feasible — re-verify.
func TestDualPackingFeasibleOnRandomGraphs(t *testing.T) {
	for seed := uint64(0); seed < 5; seed++ {
		g := graph.GNPConnected(40, 0.1, seed)
		lb := DualPackingLB(g)
		// Sanity: LB ≥ n/Δ̃ would be ideal; at least require LB ≥ 1.
		if lb < 1 {
			t.Errorf("seed %d: LB=%.4f < 1", seed, lb)
		}
	}
}

func TestCertify(t *testing.T) {
	g := graph.Star(8)
	c := Certify(g, []int{0})
	if c.Size != 1 || c.LowerBound < 1 || c.Ratio > 1+1e-9 {
		t.Errorf("certificate wrong: %+v", c)
	}
}
