package cds

import (
	"testing"

	"congestds/internal/baseline"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

func TestSolveRejectsDisconnected(t *testing.T) {
	g, err := graph.FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Solve(g, Params{}); err == nil {
		t.Error("disconnected graph accepted")
	}
}

func TestSolveEmptyAndSingle(t *testing.T) {
	res, err := Solve(graph.Path(0), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDS) != 0 {
		t.Error("empty graph should have empty CDS")
	}
	res, err = Solve(graph.Path(1), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CDS) != 1 {
		t.Errorf("single node CDS size %d, want 1", len(res.CDS))
	}
}

func TestCDSAcrossFamilies(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path20", graph.Path(20)},
		{"cycle16", graph.Cycle(16)},
		{"star14", graph.Star(14)},
		{"grid5x5", graph.Grid(5, 5)},
		{"gnp50", graph.GNPConnected(50, 0.1, 3)},
		{"caterpillar", graph.Caterpillar(6, 3)},
		{"tree", graph.CompleteTree(2, 4)},
		{"disk", graph.UnitDiskConnected(60, 0.25, 4)},
	}
	for _, tt := range graphs {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Solve(tt.g, Params{})
			if err != nil {
				t.Fatal(err)
			}
			if err := verify.CheckCDS(tt.g, res.CDS); err != nil {
				t.Fatalf("invalid CDS: %v", err)
			}
			// Section 4 size bound: |CDS| ≤ 3|S| (we add ≤ 2 inner nodes per
			// used G_S edge, with ≤ |S|−1 edges used).
			if len(res.CDS) > 3*len(res.DS) {
				t.Errorf("|CDS|=%d exceeds 3|DS|=%d", len(res.CDS), 3*len(res.DS))
			}
			if res.Ledger.Metrics().TotalRounds() <= 0 {
				t.Error("no rounds charged")
			}
		})
	}
}

func TestCDSWithDecompositionEngine(t *testing.T) {
	g := graph.GNPConnected(40, 0.12, 9)
	res, err := Solve(g, Params{MDS: mds.Params{Engine: mds.EngineDecomposition}})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckCDS(g, res.CDS); err != nil {
		t.Fatal(err)
	}
}

// Theorem 1.4 bound (against exact MDS optimum, since OPT_CDS ≥ OPT_DS):
// |CDS| ≤ 3·(1+ε)(1+ln(Δ+1))·OPT_DS on small graphs.
func TestCDSApproximationBound(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path12", graph.Path(12)},
		{"cycle13", graph.Cycle(13)},
		{"grid4x4", graph.Grid(4, 4)},
		{"gnp22", graph.GNPConnected(22, 0.2, 11)},
	}
	for _, tt := range graphs {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Solve(tt.g, Params{MDS: mds.Params{Eps: 0.5}})
			if err != nil {
				t.Fatal(err)
			}
			opt := len(baseline.Exact(tt.g))
			if float64(len(res.CDS)) > res.Bound*float64(opt)+1e-9 {
				t.Errorf("|CDS|=%d exceeds bound %.2f × OPT %d", len(res.CDS), res.Bound, opt)
			}
		})
	}
}

func TestExtendRejectsNonDominating(t *testing.T) {
	g := graph.Path(6)
	if _, err := Extend(g, []int{0}, Params{}, nil); err == nil {
		t.Error("non-dominating input accepted")
	}
}

func TestExtendKeepsDSMembers(t *testing.T) {
	g := graph.Cycle(15)
	ds := baseline.Greedy(g)
	res, err := Extend(g, ds, Params{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	in := make(map[int]bool)
	for _, v := range res.CDS {
		in[v] = true
	}
	for _, v := range ds {
		if !in[v] {
			t.Errorf("DS member %d missing from CDS", v)
		}
	}
}

func TestCDSDeterministic(t *testing.T) {
	g := graph.GNPConnected(36, 0.15, 5)
	a, err := Solve(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CDS) != len(b.CDS) {
		t.Fatal("non-deterministic CDS size")
	}
	for i := range a.CDS {
		if a.CDS[i] != b.CDS[i] {
			t.Fatal("non-deterministic CDS")
		}
	}
}

// Claim 4.1: G_S is connected iff G is connected — indirectly verified by
// connectClusters succeeding on every connected family above; here check a
// long path explicitly, where G_S connectivity relies on distance-3 edges.
func TestGSConnectivityOnPath(t *testing.T) {
	g := graph.Path(30)
	res, err := Solve(g, Params{})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CheckCDS(g, res.CDS); err != nil {
		t.Fatal(err)
	}
}

func TestRulingSetSeparation(t *testing.T) {
	g := graph.Path(40)
	ds := baseline.Greedy(g)
	res, err := Extend(g, ds, Params{Alpha: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise G-distance of centres must be ≥ 3 (alpha) in G_S terms,
	// i.e. > 3·2 in G is not guaranteed, but centres must be distinct and
	// at G_S distance ≥ alpha: verify pairwise G-distance > 3 (one G_S hop).
	for i := 0; i < len(res.RulingSet); i++ {
		for j := i + 1; j < len(res.RulingSet); j++ {
			if d := g.Dist(res.RulingSet[i], res.RulingSet[j]); d <= 3 {
				t.Errorf("centres %d,%d at G-distance %d (G_S neighbours)",
					res.RulingSet[i], res.RulingSet[j], d)
			}
		}
	}
}
