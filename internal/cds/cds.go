// Package cds implements Section 4 of the paper: transforming a dominating
// set S into a connected dominating set (Theorem 1.4, a deterministic
// O(ln Δ)-approximation).
//
// Construction, following the paper:
//
//  1. Build G_S (Claim 4.1): the graph on S with edges between members at
//     G-distance ≤ 3; G_S is connected iff G is.
//  2. Compute a ruling set S' ⊆ S on G_S: pairwise distance ≥ α, every
//     member of S within distance < α of S' (the paper uses the [ALGP89,
//     HKN16] construction with α = Θ(log² n); α is a parameter here).
//  3. Cluster S around S' by multi-source BFS in G_S, building cluster
//     trees whose G_S edges are realized as G-paths of length ≤ 3
//     (Lemma 4.2).
//  4. Connect the cluster graph G'_S: the paper derandomizes the
//     Baswana–Sen spanner [BS07, GK18] to add O(|S'| log²|S'|) connecting
//     edges; we use a BFS spanning tree of G'_S, which is smaller
//     (|S'|−1 edges) and is valid because the construction is charged
//     rounds rather than executed natively (DESIGN.md, substitution 1
//     discussion applies; the spanner exists to make this step efficient in
//     the real CONGEST model).
//  5. CDS = S ∪ inner nodes of all realized paths. Each G_S edge
//     contributes ≤ 2 inner nodes, so |CDS| ≤ 3|S| − 2.
package cds

import (
	"fmt"
	"math"
	"sort"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mds"
	"congestds/internal/verify"
)

// Params configures Solve.
type Params struct {
	// MDS configures the underlying dominating set computation.
	MDS mds.Params
	// Alpha is the ruling set distance parameter on G_S (the paper's
	// c'·log² n). Zero means max(2, ⌈log₂(n+1)⌉).
	Alpha int
}

// Result is the output of Solve.
type Result struct {
	// CDS is the connected dominating set.
	CDS []int
	// DS is the underlying dominating set from Part 1.
	DS []int
	// RulingSet is S' (cluster centres).
	RulingSet []int
	// Bound is the guaranteed approximation factor 3·(1+ε)(1+ln(Δ+1)).
	Bound float64
	// Ledger accumulates rounds across the MDS pipeline and the CDS
	// transformation.
	Ledger *congest.Ledger
}

// Solve computes a connected dominating set of the connected graph g.
func Solve(g *graph.Graph, p Params) (*Result, error) {
	if g.N() == 0 {
		return &Result{Ledger: &congest.Ledger{}}, nil
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("cds: graph is not connected")
	}
	mres, err := mds.Solve(g, p.MDS)
	if err != nil {
		return nil, fmt.Errorf("cds: dominating set: %w", err)
	}
	res, err := Extend(g, mres.Set, p, mres.Ledger)
	if err != nil {
		return nil, err
	}
	res.Bound = 3 * mres.Bound
	return res, nil
}

// Extend turns an existing dominating set into a connected dominating set
// (the Section 4 transformation alone). The ledger may be nil.
func Extend(g *graph.Graph, ds []int, p Params, ledger *congest.Ledger) (*Result, error) {
	if ledger == nil {
		ledger = &congest.Ledger{}
	}
	res := &Result{DS: append([]int(nil), ds...), Ledger: ledger}
	if v := verify.FirstUndominated(g, ds); v != -1 {
		return nil, fmt.Errorf("cds: input set does not dominate node %d", v)
	}
	if len(ds) <= 1 {
		res.CDS = append([]int(nil), ds...)
		return res, nil
	}
	if p.Alpha == 0 {
		p.Alpha = int(math.Max(2, math.Ceil(math.Log2(float64(g.N()+1)))))
	}

	gs := buildGS(g, ds)

	// Ruling set on G_S by greedy ID order (deterministic substitute for the
	// [ALGP89/HKN16] distributed construction; same (α, α−1) guarantees).
	rs := rulingSet(g, gs, p.Alpha)
	res.RulingSet = rs

	// Multi-source BFS clustering on G_S with cluster trees.
	clusterOf, parentEdge := clusterize(gs, rs)

	// Collect CDS nodes: S plus inner nodes of all used paths.
	inCDS := make(map[int]bool, 3*len(ds))
	for _, s := range ds {
		inCDS[s] = true
	}
	for sIdx, pe := range parentEdge {
		if pe != nil {
			addPath(inCDS, pe)
			_ = sIdx
		}
	}

	// Cluster graph spanning structure: BFS tree over clusters, connecting
	// via representative G_S edges.
	if err := connectClusters(gs, rs, clusterOf, inCDS); err != nil {
		return nil, err
	}

	cdsSet := make([]int, 0, len(inCDS))
	for v := range inCDS {
		cdsSet = append(cdsSet, v)
	}
	sort.Ints(cdsSet)
	res.CDS = cdsSet

	// Charged rounds: ruling set + clustering are the paper's O(log³ n)
	// phase (Lemma 4.2); connecting the clusters costs O(cluster-graph
	// diameter) G_S rounds, each simulated by ≤ 3 G rounds with the path
	// selection of [Gha14].
	logn := int(math.Ceil(math.Log2(float64(g.N() + 1))))
	ledger.Charge("cds/ruling+clustering", p.Alpha*logn+3*logn)
	ledger.Charge("cds/connect", 3*(len(rs)+1))

	if err := verify.CheckCDS(g, res.CDS); err != nil {
		return nil, fmt.Errorf("cds: internal: %w", err)
	}
	return res, nil
}

// gsGraph is G_S: S-members with edges between members at distance ≤ 3,
// each edge carrying a realizing G-path.
type gsGraph struct {
	nodes []int            // the members of S, sorted
	index map[int]int      // node -> position in nodes
	adj   [][]int          // adjacency by position
	paths map[[2]int][]int // canonical (minPos,maxPos) -> full G-path (incl. endpoints)
}

// buildGS constructs G_S by depth-3 BFS from every member of S.
func buildGS(g *graph.Graph, ds []int) *gsGraph {
	nodes := append([]int(nil), ds...)
	sort.Ints(nodes)
	gs := &gsGraph{
		nodes: nodes,
		index: make(map[int]int, len(nodes)),
		adj:   make([][]int, len(nodes)),
		paths: make(map[[2]int][]int),
	}
	for i, v := range nodes {
		gs.index[v] = i
	}
	inS := make([]bool, g.N())
	for _, v := range nodes {
		inS[v] = true
	}
	dist := make([]int, g.N())
	parent := make([]int, g.N())
	for i := range dist {
		dist[i] = -1
	}
	for si, s := range nodes {
		// BFS to depth 3.
		var visited []int
		queue := []int{s}
		dist[s] = 0
		parent[s] = -1
		visited = append(visited, s)
		for qi := 0; qi < len(queue); qi++ {
			v := queue[qi]
			if dist[v] == 3 {
				continue
			}
			for _, un := range g.Neighbors(v) {
				u := int(un)
				if dist[u] >= 0 {
					continue
				}
				dist[u] = dist[v] + 1
				parent[u] = v
				visited = append(visited, u)
				queue = append(queue, u)
			}
		}
		for _, t := range visited {
			if t == s || !inS[t] {
				continue
			}
			ti := gs.index[t]
			key := [2]int{si, ti}
			if si > ti {
				key = [2]int{ti, si}
			}
			if _, done := gs.paths[key]; done {
				continue
			}
			// Reconstruct the realizing path s..t.
			var path []int
			for v := t; v != -1; v = parent[v] {
				path = append(path, v)
			}
			gs.paths[key] = path
			gs.adj[si] = append(gs.adj[si], ti)
			gs.adj[ti] = append(gs.adj[ti], si)
		}
		for _, v := range visited {
			dist[v] = -1
		}
	}
	for i := range gs.adj {
		sort.Ints(gs.adj[i])
	}
	return gs
}

// rulingSet greedily selects members (in g-ID order) at pairwise G_S
// distance ≥ alpha.
func rulingSet(g *graph.Graph, gs *gsGraph, alpha int) []int {
	order := make([]int, len(gs.nodes))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return g.ID(gs.nodes[order[a]]) < g.ID(gs.nodes[order[b]])
	})
	selected := make([]bool, len(gs.nodes))
	var rs []int
	dist := make([]int, len(gs.nodes))
	for i := range dist {
		dist[i] = -1
	}
	for _, cand := range order {
		// BFS from cand to depth alpha-1 looking for an existing centre.
		ok := true
		queue := []int{cand}
		dist[cand] = 0
		visited := []int{cand}
		for qi := 0; qi < len(queue) && ok; qi++ {
			v := queue[qi]
			if selected[v] {
				ok = false
				break
			}
			if dist[v] == alpha-1 {
				continue
			}
			for _, u := range gs.adj[v] {
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					visited = append(visited, u)
					queue = append(queue, u)
				}
			}
		}
		for _, v := range visited {
			dist[v] = -1
		}
		if ok {
			selected[cand] = true
			rs = append(rs, gs.nodes[cand])
		}
	}
	sort.Ints(rs)
	return rs
}

// clusterize assigns every G_S node to its nearest centre (ties: smaller
// centre node, then smaller node) by multi-source BFS and returns, per G_S
// position, the cluster centre position and the realizing path of the BFS
// tree edge toward the centre (nil for centres).
func clusterize(gs *gsGraph, rs []int) (clusterOf []int, parentEdge [][]int) {
	n := len(gs.nodes)
	clusterOf = make([]int, n)
	parentEdge = make([][]int, n)
	distTo := make([]int, n)
	for i := range clusterOf {
		clusterOf[i] = -1
		distTo[i] = -1
	}
	var queue []int
	for _, c := range rs {
		ci := gs.index[c]
		clusterOf[ci] = ci
		distTo[ci] = 0
		queue = append(queue, ci)
	}
	sort.Ints(queue) // deterministic multi-source order
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, u := range gs.adj[v] {
			if clusterOf[u] >= 0 {
				continue
			}
			clusterOf[u] = clusterOf[v]
			distTo[u] = distTo[v] + 1
			parentEdge[u] = gs.pathBetween(u, v)
			queue = append(queue, u)
		}
	}
	return clusterOf, parentEdge
}

// pathBetween returns the realizing G-path of the G_S edge {a,b}.
func (gs *gsGraph) pathBetween(a, b int) []int {
	key := [2]int{a, b}
	if a > b {
		key = [2]int{b, a}
	}
	return gs.paths[key]
}

// connectClusters adds connector paths between clusters along a BFS spanning
// tree of the cluster graph.
func connectClusters(gs *gsGraph, rs []int, clusterOf []int, inCDS map[int]bool) error {
	if len(rs) <= 1 {
		return nil
	}
	// Cluster adjacency with representative G_S edges (lexicographically
	// smallest position pair).
	type rep struct{ a, b int }
	reps := make(map[[2]int]rep)
	for a := range gs.adj {
		for _, b := range gs.adj[a] {
			if a >= b {
				continue
			}
			ca, cb := clusterOf[a], clusterOf[b]
			if ca == cb {
				continue
			}
			key := [2]int{ca, cb}
			if ca > cb {
				key = [2]int{cb, ca}
			}
			if r, ok := reps[key]; !ok || a < r.a || (a == r.a && b < r.b) {
				reps[key] = rep{a: a, b: b}
			}
		}
	}
	// BFS over clusters from the smallest centre position.
	adj := make(map[int][]int)
	for key := range reps {
		adj[key[0]] = append(adj[key[0]], key[1])
		adj[key[1]] = append(adj[key[1]], key[0])
	}
	for c := range adj {
		sort.Ints(adj[c])
	}
	centres := make([]int, 0, len(rs))
	for _, c := range rs {
		centres = append(centres, gs.index[c])
	}
	sort.Ints(centres)
	visited := map[int]bool{centres[0]: true}
	queue := []int{centres[0]}
	for qi := 0; qi < len(queue); qi++ {
		c := queue[qi]
		for _, d := range adj[c] {
			if visited[d] {
				continue
			}
			visited[d] = true
			queue = append(queue, d)
			key := [2]int{c, d}
			if c > d {
				key = [2]int{d, c}
			}
			r := reps[key]
			addPath(inCDS, gs.pathBetween(r.a, r.b))
		}
	}
	if len(visited) != len(centres) {
		return fmt.Errorf("cds: cluster graph disconnected (%d of %d clusters reached)",
			len(visited), len(centres))
	}
	return nil
}

// addPath inserts all nodes of a realizing path into the CDS.
func addPath(inCDS map[int]bool, path []int) {
	for _, v := range path {
		inCDS[v] = true
	}
}
