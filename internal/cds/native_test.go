package cds

import (
	"testing"

	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/congest/conformance"
	"congestds/internal/graph"
	"congestds/internal/mcds"
	"congestds/internal/verify"
)

// Cross-engine property test for the native connector: on every graph of
// the conformance corpus, the independently written blocking and stepped
// connector forms must produce the identical CDS on every engine, and the
// result must pass the connectivity certificate. This is the package-level
// companion to the registered mcds-connect conformance case: it goes
// through the cds.ExtendStepped API and a different dominating set per
// graph (the greedy baseline), so a wiring bug in the fold — not just in
// the protocol — shows up here.
func TestNativeConnectorCrossEngine(t *testing.T) {
	for _, ng := range conformance.Corpus(testing.Short()) {
		g := ng.G
		if !g.IsConnected() || g.N() == 0 {
			continue // the connector contract (one CDS) is for connected graphs
		}
		ds := baseline.Greedy(g)
		inD := make([]bool, g.N())
		for _, v := range ds {
			inD[v] = true
		}
		var ref []int
		runs := 0
		check := func(form string, eng congest.Engine, cds []int) {
			t.Helper()
			if err := verify.CheckCDS(g, cds); err != nil {
				t.Fatalf("graph %s: %s on %v produced an invalid CDS: %v", ng.Name, form, eng, err)
			}
			if runs == 0 {
				ref = cds
			} else if len(cds) != len(ref) {
				t.Fatalf("graph %s: %s on %v diverges: %d vs %d members", ng.Name, form, eng, len(cds), len(ref))
			} else {
				for i := range cds {
					if cds[i] != ref[i] {
						t.Fatalf("graph %s: %s on %v diverges at member %d", ng.Name, form, eng, i)
					}
				}
			}
			runs++
		}
		for _, eng := range congest.Engines() {
			res, err := ExtendStepped(g, ds, eng, 0)
			if err != nil {
				t.Fatalf("graph %s: ExtendStepped on %v: %v", ng.Name, eng, err)
			}
			check("stepped-form", eng, res.CDS)

			inCDS := make([]bool, g.N())
			net := congest.NewNetwork(g, congest.Config{Engine: eng})
			if _, err := net.Run(mcds.ConnectBlocking(g, inD, g.N(), inCDS)); err != nil {
				t.Fatalf("graph %s: blocking connector on %v: %v", ng.Name, eng, err)
			}
			var cds []int
			for v, in := range inCDS {
				if in {
					cds = append(cds, v)
				}
			}
			check("blocking-form", eng, cds)
		}
	}
}

// The connector must keep every DS member and add at most two connectors
// per dominator plus the root.
func TestNativeConnectorSizeAndMembers(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path30", graph.Path(30)},
		{"grid6x6", graph.Grid(6, 6)},
		{"gnp50", graph.GNPConnected(50, 0.08, 13)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			ds := baseline.Greedy(tt.g)
			res, err := ExtendStepped(tt.g, ds, congest.EngineStepped, 0)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.CDS) > 3*len(ds)+1 {
				t.Errorf("|CDS|=%d exceeds 3|DS|+1=%d", len(res.CDS), 3*len(ds)+1)
			}
			in := make(map[int]bool, len(res.CDS))
			for _, v := range res.CDS {
				in[v] = true
			}
			for _, v := range ds {
				if !in[v] {
					t.Errorf("DS member %d missing from CDS", v)
				}
			}
			if res.Ledger.Metrics().TotalRounds() <= 0 {
				t.Error("no rounds recorded for the executed connector")
			}
		})
	}
}
