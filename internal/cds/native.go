package cds

import (
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mcds"
)

// Native connector: the CDS connector search in StepProgram form. Extend
// (extend.go's host-level construction in cds.go) realizes the paper's
// Section 4 pipeline — G_S, ruling set, clusters — structurally, charging
// rounds to the ledger instead of executing them. ExtendStepped is the
// executed counterpart: it runs the flood-min orientation and two-hop
// connect of internal/mcds as an actual message-passing program on the
// selected engine, which closes the long-standing ROADMAP item "port the
// CDS connector search to StepProgram form". The two constructions share
// the |CDS| ≤ 3|S|+O(1) shape but pick different connectors (Section 4
// clusters around a ruling set, mcds connects along a BFS orientation), so
// their outputs differ member-for-member while both certify under
// verify.CheckCDS.

// ExtendStepped turns an existing dominating set into a connected
// dominating set by executing the native mcds connector (orientation +
// connect) on the selected engine. diamBound is the known upper bound on
// the diameter (0 means n; see mcds.Params.DiamBound). The returned
// Result has CDS, DS and a ledger recording the executed run.
func ExtendStepped(g *graph.Graph, ds []int, sim congest.Engine, diamBound int) (*Result, error) {
	mres, err := mcds.Connect(g, ds, mcds.Params{Sim: sim, DiamBound: diamBound})
	if err != nil {
		return nil, err
	}
	ledger := &congest.Ledger{}
	ledger.RecordRun("cds/connector-stepped", mres.Metrics)
	// No re-verification here: mcds.Connect rejects any output that fails
	// verify.CheckCDSComponents (= CheckCDS on connected graphs).
	return &Result{CDS: mres.CDS, DS: mres.DS, Ledger: ledger}, nil
}
