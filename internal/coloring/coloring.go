// Package coloring provides the deterministic colorings that drive the
// paper's coloring-based derandomization (Section 3.3): proper colorings of
// conflict structures ("distance-two colorings" of bipartite graphs,
// Lemma 3.12) and plain (Δ+1)-colorings of graphs.
//
// The colorings are computed by deterministic greedy elimination in ID
// order. Distributed cost: a node can decide its color as soon as every
// conflicting node with a smaller ID has decided, so the synchronous round
// count equals the longest strictly-ID-decreasing path in the conflict
// structure, which the functions report as charged rounds; Lemma 3.12's
// simulation overhead (one conflict round costs O(Δ_L) CONGEST rounds on the
// bipartite graph) is applied by the caller. See DESIGN.md, substitution 5.
package coloring

import (
	"sort"

	"congestds/internal/graph"
)

// Result is a computed coloring.
type Result struct {
	// Colors holds a color in 0..NumColors-1 per site (-1 for sites that
	// were not colored, e.g. non-participating sites).
	Colors []int
	// NumColors is the palette size used.
	NumColors int
	// Rounds is the charged synchronous round count of the greedy schedule
	// (longest ID-decreasing dependency chain).
	Rounds int
}

// Graph computes a proper coloring of g with at most Δ+1 colors by greedy
// elimination in ID order.
func Graph(g *graph.Graph) *Result {
	n := g.N()
	conflicts := func(v int, fn func(u int)) {
		for _, u := range g.Neighbors(v) {
			fn(int(u))
		}
	}
	active := make([]bool, n)
	for v := range active {
		active[v] = true
	}
	return greedy(n, g.IDs(), active, conflicts)
}

// Distance2Bipartite colors the participating right-hand sites of a
// bipartite constraint structure so that two sites sharing a constraint get
// different colors — the "distance two coloring of VR" of Lemma 3.12. The
// structure is given as constraint member lists over sites 0..nSites-1.
// Sites with participating[j] == false are ignored (they correspond to
// p(v) ∈ {0,1}, cf. Lemma 3.10's set S).
func Distance2Bipartite(nSites int, members [][]int32, participating []bool, ids []int64) *Result {
	// Build conflict adjacency: sites sharing a constraint.
	adj := make(map[int]map[int]struct{}, nSites)
	addConflict := func(a, b int) {
		if adj[a] == nil {
			adj[a] = make(map[int]struct{})
		}
		adj[a][b] = struct{}{}
	}
	for _, ms := range members {
		for i := 0; i < len(ms); i++ {
			if !participating[ms[i]] {
				continue
			}
			for j := i + 1; j < len(ms); j++ {
				if !participating[ms[j]] {
					continue
				}
				a, b := int(ms[i]), int(ms[j])
				if a != b {
					addConflict(a, b)
					addConflict(b, a)
				}
			}
		}
	}
	conflicts := func(v int, fn func(u int)) {
		// Deterministic iteration order.
		us := make([]int, 0, len(adj[v]))
		for u := range adj[v] {
			us = append(us, u)
		}
		sort.Ints(us)
		for _, u := range us {
			fn(u)
		}
	}
	return greedy(nSites, ids, participating, conflicts)
}

// greedy colors active sites in ID order; the charged round count is the
// longest ID-decreasing chain in the conflict structure restricted to active
// sites.
func greedy(n int, ids []int64, active []bool, conflicts func(v int, fn func(u int))) *Result {
	order := make([]int, 0, n)
	for v := 0; v < n; v++ {
		if active[v] {
			order = append(order, v)
		}
	}
	sort.Slice(order, func(i, j int) bool { return ids[order[i]] < ids[order[j]] })

	colors := make([]int, n)
	depth := make([]int, n) // rounds until v's color is decided
	for v := range colors {
		colors[v] = -1
	}
	num := 0
	maxDepth := 0
	for _, v := range order {
		used := make(map[int]struct{})
		d := 0
		conflicts(v, func(u int) {
			if !active[u] {
				return
			}
			if ids[u] < ids[v] {
				if colors[u] >= 0 {
					used[colors[u]] = struct{}{}
				}
				if depth[u] > d {
					d = depth[u]
				}
			}
		})
		c := 0
		for {
			if _, taken := used[c]; !taken {
				break
			}
			c++
		}
		colors[v] = c
		depth[v] = d + 1
		if depth[v] > maxDepth {
			maxDepth = depth[v]
		}
		if c+1 > num {
			num = c + 1
		}
	}
	return &Result{Colors: colors, NumColors: num, Rounds: maxDepth}
}

// Validate checks that the coloring is proper for the given conflict
// structure (shared-constraint conflicts among participating sites). It
// returns false with the first conflicting pair when improper.
func Validate(res *Result, members [][]int32, participating []bool) (bool, [2]int) {
	for _, ms := range members {
		for i := 0; i < len(ms); i++ {
			if !participating[ms[i]] {
				continue
			}
			for j := i + 1; j < len(ms); j++ {
				if !participating[ms[j]] {
					continue
				}
				a, b := int(ms[i]), int(ms[j])
				if a != b && res.Colors[a] == res.Colors[b] {
					return false, [2]int{a, b}
				}
			}
		}
	}
	return true, [2]int{}
}
