package coloring

import (
	"testing"

	"congestds/internal/graph"
)

func properGraphColoring(g *graph.Graph, res *Result) bool {
	ok := true
	g.Edges(func(u, v int) {
		if res.Colors[u] == res.Colors[v] {
			ok = false
		}
	})
	return ok
}

func TestGraphColoringProperAndBounded(t *testing.T) {
	for _, tt := range []struct {
		name string
		g    *graph.Graph
	}{
		{"path10", graph.Path(10)},
		{"cycle7", graph.Cycle(7)},
		{"complete6", graph.Complete(6)},
		{"star9", graph.Star(9)},
		{"gnp", graph.GNPConnected(50, 0.15, 3)},
		{"grid", graph.Grid(6, 6)},
	} {
		t.Run(tt.name, func(t *testing.T) {
			res := Graph(tt.g)
			if !properGraphColoring(tt.g, res) {
				t.Fatal("improper coloring")
			}
			if res.NumColors > tt.g.MaxDegree()+1 {
				t.Errorf("colors=%d exceeds Δ+1=%d", res.NumColors, tt.g.MaxDegree()+1)
			}
			if res.Rounds < 1 && tt.g.N() > 0 {
				t.Error("no rounds charged")
			}
		})
	}
}

func TestGraphColoringDeterministic(t *testing.T) {
	g := graph.GNPConnected(40, 0.2, 9)
	a, b := Graph(g), Graph(g)
	for v := range a.Colors {
		if a.Colors[v] != b.Colors[v] {
			t.Fatal("coloring not deterministic")
		}
	}
}

func TestDistance2Bipartite(t *testing.T) {
	// Constraint structure: 3 constraints over 5 sites.
	members := [][]int32{{0, 1, 2}, {2, 3}, {3, 4}}
	participating := []bool{true, true, true, true, true}
	ids := []int64{5, 4, 3, 2, 1}
	res := Distance2Bipartite(5, members, participating, ids)
	if ok, pair := Validate(res, members, participating); !ok {
		t.Fatalf("improper: %v", pair)
	}
	// Sites 0,1,2 share a constraint: three distinct colors among them.
	if res.Colors[0] == res.Colors[1] || res.Colors[1] == res.Colors[2] || res.Colors[0] == res.Colors[2] {
		t.Error("conflicting sites share a color")
	}
}

func TestDistance2SkipsNonParticipating(t *testing.T) {
	members := [][]int32{{0, 1, 2}}
	participating := []bool{true, false, true}
	ids := []int64{1, 2, 3}
	res := Distance2Bipartite(3, members, participating, ids)
	if res.Colors[1] != -1 {
		t.Error("non-participating site colored")
	}
	if res.Colors[0] == res.Colors[2] {
		t.Error("conflict not resolved")
	}
	if ok, _ := Validate(res, members, participating); !ok {
		t.Error("validation failed")
	}
}

// Palette bound of Lemma 3.12: with left degree ≤ ΔL and right degree ≤ ΔR,
// the greedy distance-2 coloring uses at most ΔL·ΔR colors.
func TestDistance2PaletteBound(t *testing.T) {
	// Random bipartite-ish constraint structure.
	g := graph.GNPConnected(40, 0.12, 4)
	members := make([][]int32, g.N())
	for v := 0; v < g.N(); v++ {
		members[v] = g.InclusiveNeighbors(nil, v)
	}
	participating := make([]bool, g.N())
	for v := range participating {
		participating[v] = true
	}
	res := Distance2Bipartite(g.N(), members, participating, g.IDs())
	if ok, pair := Validate(res, members, participating); !ok {
		t.Fatalf("improper: %v", pair)
	}
	dl := g.MaxDegree() + 1 // constraint size ≤ Δ+1
	dr := g.MaxDegree() + 1 // memberships per site ≤ Δ+1
	if res.NumColors > dl*dr {
		t.Errorf("colors=%d exceeds ΔL·ΔR=%d", res.NumColors, dl*dr)
	}
}

func TestValidateDetectsConflicts(t *testing.T) {
	members := [][]int32{{0, 1}}
	res := &Result{Colors: []int{0, 0}, NumColors: 1}
	if ok, pair := Validate(res, members, []bool{true, true}); ok || pair != [2]int{0, 1} {
		t.Error("conflict not detected")
	}
}
