// Package mds implements the paper's deterministic CONGEST dominating set
// approximation algorithms (Section 3.4):
//
//   - Theorem 1.1: derandomization via network decomposition (Engine I),
//   - Theorem 1.2: derandomization via distance-2 colorings of split
//     bipartite graphs (Engine II),
//   - Corollary 1.3: the LOCAL-model variant of Theorem 1.2.
//
// Every algorithm follows the paper's three parts: (I) an initial fractional
// dominating set with fractionality ε/(2Δ̃) (Lemma 2.1); (II) O(log Δ)
// factor-two rounding phases that double the fractionality while inflating
// the size by (1+ε₂) each (Lemmas 3.9/3.14); (III) one one-shot rounding to
// an integral dominating set, losing a ln(Δ̃) factor (Lemmas 3.8/3.13).
package mds

import (
	"context"
	"fmt"
	"math"

	"congestds/internal/coloring"
	"congestds/internal/congest"
	"congestds/internal/decomp"
	"congestds/internal/derand"
	"congestds/internal/fractional"
	"congestds/internal/graph"
	"congestds/internal/rounding"
)

// Engine selects the derandomization engine.
type Engine int

// Engines.
const (
	// EngineDecomposition is Theorem 1.1 (network decomposition, CONGEST).
	EngineDecomposition Engine = iota + 1
	// EngineColoring is Theorem 1.2 (distance-2 colorings, CONGEST).
	EngineColoring
	// EngineColoringLocal is Corollary 1.3 (colorings, LOCAL model: no
	// bipartite simulation overhead is charged).
	EngineColoringLocal
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineDecomposition:
		return "decomposition(Thm1.1)"
	case EngineColoring:
		return "coloring(Thm1.2)"
	case EngineColoringLocal:
		return "coloring-local(Cor1.3)"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// Preset selects the parameter regime (see DESIGN.md, "Parameter regimes").
type Preset int

// Presets.
const (
	// Practical uses modest constants; the default for benchmarks.
	Practical Preset = iota
	// Theory uses the paper's worst-case constants (r ≥ 256·ε⁻³·ln Δ̃,
	// s = 64·ε⁻²·ln Δ̃, ε₂ = ε₁/(100ρ)).
	Theory
)

// Params configures Solve.
type Params struct {
	// Eps is the ε of Theorems 1.1/1.2; the approximation guarantee is
	// (1+ε)(1+ln(Δ+1)). Must be in (0, 1]. Zero means 0.5.
	Eps float64
	// Engine selects the derandomization engine. Zero means EngineColoring.
	Engine Engine
	// Preset selects Theory or Practical constants.
	Preset Preset
	// MaxPhases caps Part II (safety; the fractionality doubles each phase,
	// so ~log₂Δ phases suffice). Zero means 64.
	MaxPhases int
	// Sim selects the congest execution engine that simulates the measured
	// phases (congest.EngineGoroutine, congest.EngineSharded or
	// congest.EngineStepped; the Part I covering program is written in
	// stepped form, so under EngineStepped it runs with no per-node
	// goroutine). The engine never changes results or round counts — the
	// conformance suite holds the engines byte-identical — only wall-clock
	// speed and memory. Zero means congest.EngineGoroutine.
	Sim congest.Engine
	// Ctx, when non-nil, cancels the pipeline's simulated runs at round
	// boundaries (congest.ErrDeadline). One context bounds the whole
	// multi-part solve: Part I and every Part II phase share the budget.
	Ctx context.Context
	// Observer, when non-nil, receives per-round telemetry from every
	// simulated run of the pipeline (each run appears as one segment on the
	// observer side; see congest.Observer). Attaching one never changes the
	// outcome.
	Observer congest.Observer
}

// PhaseInfo records one Part II phase for the experiment harness (E4).
type PhaseInfo struct {
	R         uint64  // the input was 1/R-fractional
	SizeIn    float64 // FDS size before the phase
	SizeOut   float64 // FDS size after the phase
	FracIn    float64 // fractionality before
	FracOut   float64 // fractionality after
	NumColors int     // distance-2 colors (Engine II) or decomposition colors
}

// Result is the output of Solve.
type Result struct {
	// Set is the computed dominating set (node indices).
	Set []int
	// Bound is the guaranteed approximation factor (1+ε)(1+ln(Δ+1)).
	Bound float64
	// InitialSize is the Part I fractional size (an upper bound proxy for
	// (1+ε₁)·OPT_f under the Part I substitute, cf. DESIGN.md).
	InitialSize float64
	// Phases traces Part II.
	Phases []PhaseInfo
	// Ledger carries measured and charged round/bit costs of all parts.
	Ledger *congest.Ledger
}

// Solve runs the selected deterministic MDS approximation pipeline on g.
func Solve(g *graph.Graph, p Params) (*Result, error) {
	if p.Eps == 0 {
		p.Eps = 0.5
	}
	if p.Eps < 0 || p.Eps > 1 {
		return nil, fmt.Errorf("mds: eps=%v out of (0,1]", p.Eps)
	}
	if p.Engine == 0 {
		p.Engine = EngineColoring
	}
	if p.MaxPhases == 0 {
		p.MaxPhases = 64
	}
	n := g.N()
	res := &Result{Ledger: &congest.Ledger{}}
	if n == 0 {
		return res, nil
	}
	delta := g.MaxDegree()
	deltaTilde := float64(delta + 1)
	res.Bound = (1 + p.Eps) * (1 + math.Log(deltaTilde))

	// Parameter schedule (proof of Theorem 1.1/1.2 in Section 3.4).
	rho := math.Max(1, math.Log2(deltaTilde/p.Eps))
	eps1 := math.Min(p.Eps/16, 0.25)
	var eps2 float64
	var fTarget uint64
	var splitS int
	lnD := math.Log(deltaTilde + 1)
	switch p.Preset {
	case Theory:
		eps2 = eps1 / (100 * rho)
		fTarget = uint64(math.Ceil(256 * math.Pow(p.Eps, -3) * lnD))
		splitS = int(math.Ceil(64 * math.Pow(eps2, -2) * lnD))
	default:
		eps2 = eps1 / rho
		fTarget = uint64(math.Ceil(4 * lnD / p.Eps))
		splitS = int(math.Ceil(2 * lnD))
	}
	if fTarget < 2 {
		fTarget = 2
	}
	if splitS < 2 {
		splitS = 2
	}

	// Part I: initial fractional dominating set (Lemma 2.1), followed by the
	// local-ratio trim that removes the parallel greedy's overshoot.
	net := congest.NewNetwork(g, congest.Config{Engine: p.Sim, Ctx: p.Ctx, Observer: p.Observer})
	fds, err := fractional.Initial(net, res.Ledger, fractional.InitialParams{Eps: eps1, MaxDegree: delta})
	if err != nil {
		return nil, fmt.Errorf("mds: part I: %w", err)
	}
	fractional.Trim(g, fds, res.Ledger, 2)
	// Re-apply the Lemma 2.1 floor after trimming so Part II starts from an
	// ε/(2Δ̃)-fractional solution.
	floor := fractional.FloorValue(fds.Ctx, eps1, delta)
	for v := range fds.X {
		if fds.X[v] > 0 && fds.X[v] < floor {
			fds.X[v] = floor
		}
	}
	res.InitialSize = fds.SizeFloat()

	// Engine I precomputes one 2-hop decomposition and reuses it for every
	// phase (the paper computes it once as well).
	var dec *decomp.Decomposition
	if p.Engine == EngineDecomposition {
		dec, err = decomp.Build(g, decomp.Params{K: 2})
		if err != nil {
			return nil, fmt.Errorf("mds: decomposition: %w", err)
		}
	}

	ctx := fds.Ctx
	lnMul := ctx.FromFloat(lnD)

	// Part II: factor-two phases until the solution is 1/fTarget-fractional.
	for phase := 0; ; phase++ {
		frac := fds.Fractionality()
		if frac == 0 {
			return nil, fmt.Errorf("mds: part II: zero fractional solution")
		}
		inv := uint64(ctx.DivDown(ctx.One(), frac))
		r := inv >> ctx.Scale()
		if inv&(uint64(ctx.One())-1) != 0 {
			r++ // ceil(1/frac)
		}
		if r <= fTarget {
			break
		}
		if phase >= p.MaxPhases {
			return nil, fmt.Errorf("mds: part II did not converge after %d phases (r=%d, target=%d)",
				phase, r, fTarget)
		}
		info := PhaseInfo{R: r, SizeIn: fds.SizeFloat(), FracIn: ctx.Float(frac)}
		var out *rounding.Outcome
		switch p.Engine {
		case EngineDecomposition:
			inst := rounding.FactorTwoOnGraph(g, fds, eps2, r)
			proc, err := rounding.NewProcess(inst)
			if err != nil {
				return nil, fmt.Errorf("mds: phase %d: %w", phase, err)
			}
			info.NumColors = dec.NumColors
			out, err = derand.ByDecomposition(proc, dec, g, res.Ledger)
			if err != nil {
				return nil, fmt.Errorf("mds: phase %d: %w", phase, err)
			}
		default:
			bi, err := derand.FactorTwoBipartite(g, fds, eps2, r, splitS)
			if err != nil {
				return nil, fmt.Errorf("mds: phase %d: %w", phase, err)
			}
			proc, err := rounding.NewProcess(bi.Inst)
			if err != nil {
				return nil, fmt.Errorf("mds: phase %d: %w", phase, err)
			}
			col := coloring.Distance2Bipartite(n, bi.Inst.Members, bi.Participating, g.IDs())
			info.NumColors = col.NumColors
			res.Ledger.Charge("derand/d2-coloring", colorCost(p.Engine, col, bi.LeftDegree))
			out, err = derand.ByColoring(proc, col, res.Ledger, simFactor(p.Engine, bi.LeftDegree))
			if err != nil {
				return nil, fmt.Errorf("mds: phase %d: %w", phase, err)
			}
		}
		fds = derand.FDSFromOutcome(ctx, out)
		info.SizeOut = fds.SizeFloat()
		info.FracOut = ctx.Float(fds.Fractionality())
		res.Phases = append(res.Phases, info)
	}

	// Part III: one-shot rounding to an integral solution.
	var out *rounding.Outcome
	switch p.Engine {
	case EngineDecomposition:
		inst := rounding.OneShotOnGraph(g, fds, lnMul)
		proc, err := rounding.NewProcess(inst)
		if err != nil {
			return nil, fmt.Errorf("mds: part III: %w", err)
		}
		out, err = derand.ByDecomposition(proc, dec, g, res.Ledger)
		if err != nil {
			return nil, fmt.Errorf("mds: part III: %w", err)
		}
	default:
		// The current fractionality 1/r with r ≤ fTarget bounds the covering
		// sets of Lemma 3.13.
		bi, err := derand.OneShotBipartite(g, fds, fTarget, lnMul)
		if err != nil {
			return nil, fmt.Errorf("mds: part III: %w", err)
		}
		proc, err := rounding.NewProcess(bi.Inst)
		if err != nil {
			return nil, fmt.Errorf("mds: part III: %w", err)
		}
		col := coloring.Distance2Bipartite(n, bi.Inst.Members, bi.Participating, g.IDs())
		res.Ledger.Charge("derand/d2-coloring", colorCost(p.Engine, col, bi.LeftDegree))
		out, err = derand.ByColoring(proc, col, res.Ledger, simFactor(p.Engine, bi.LeftDegree))
		if err != nil {
			return nil, fmt.Errorf("mds: part III: %w", err)
		}
	}
	final := derand.FDSFromOutcome(ctx, out)
	if !final.Integral() {
		return nil, fmt.Errorf("mds: part III produced a non-integral solution")
	}
	if err := final.Check(g); err != nil {
		return nil, fmt.Errorf("mds: output not dominating: %w", err)
	}
	res.Set = final.Set()
	return res, nil
}

// simFactor returns the CONGEST simulation overhead per conflict round
// (Lemma 3.12 charges O(Δ_L); the LOCAL model of Corollary 1.3 needs none).
func simFactor(e Engine, leftDegree int) int {
	if e == EngineColoringLocal {
		return 1
	}
	if leftDegree < 1 {
		return 1
	}
	return leftDegree
}

// colorCost charges the rounds for computing the distance-2 coloring
// (greedy chain length × simulation factor, cf. Lemma 3.12).
func colorCost(e Engine, col *coloring.Result, leftDegree int) int {
	return col.Rounds * simFactor(e, leftDegree)
}

// Bound returns the approximation guarantee (1+ε)(1+ln(Δ+1)) for a graph
// with maximum degree delta.
func Bound(eps float64, delta int) float64 {
	return (1 + eps) * (1 + math.Log(float64(delta+1)))
}
