package mds

import (
	"testing"

	"congestds/internal/baseline"
	"congestds/internal/graph"
	"congestds/internal/verify"
)

func engines() []Engine {
	return []Engine{EngineDecomposition, EngineColoring, EngineColoringLocal}
}

func TestSolveValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := Solve(g, Params{Eps: -0.1}); err == nil {
		t.Error("negative eps accepted")
	}
	if _, err := Solve(g, Params{Eps: 2}); err == nil {
		t.Error("eps>1 accepted")
	}
}

func TestSolveEmptyGraph(t *testing.T) {
	res, err := Solve(graph.Path(0), Params{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Set) != 0 {
		t.Error("empty graph should yield empty set")
	}
}

// Every engine must produce a dominating set on every family.
func TestSolveDominatesAcrossFamiliesAndEngines(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path15", graph.Path(15)},
		{"cycle12", graph.Cycle(12)},
		{"star16", graph.Star(16)},
		{"grid5x5", graph.Grid(5, 5)},
		{"gnp40", graph.GNPConnected(40, 0.12, 3)},
		{"caterpillar", graph.Caterpillar(5, 3)},
		{"ba", graph.BarabasiAlbert(40, 2, 1)},
		{"single", graph.Path(1)},
		{"two", graph.Path(2)},
	}
	for _, eng := range engines() {
		for _, tt := range graphs {
			t.Run(eng.String()+"/"+tt.name, func(t *testing.T) {
				res, err := Solve(tt.g, Params{Eps: 0.5, Engine: eng})
				if err != nil {
					t.Fatal(err)
				}
				if !verify.IsDominatingSet(tt.g, res.Set) {
					t.Fatal("not a dominating set")
				}
				if res.Ledger.Metrics().TotalRounds() <= 0 && tt.g.N() > 1 {
					t.Error("no rounds accounted")
				}
			})
		}
	}
}

// Theorem 1.1 / 1.2 approximation guarantee against exact optima on small
// graphs: |DS| ≤ (1+ε)(1+ln(Δ+1))·OPT.
func TestApproximationBoundAgainstExactOPT(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"path10", graph.Path(10)},
		{"cycle11", graph.Cycle(11)},
		{"grid4x4", graph.Grid(4, 4)},
		{"gnp20", graph.GNPConnected(20, 0.2, 5)},
		{"gnp24", graph.GNPConnected(24, 0.15, 9)},
		{"caterpillar", graph.Caterpillar(4, 2)},
		{"star12", graph.Star(12)},
	}
	for _, eng := range []Engine{EngineDecomposition, EngineColoring} {
		for _, tt := range graphs {
			t.Run(eng.String()+"/"+tt.name, func(t *testing.T) {
				res, err := Solve(tt.g, Params{Eps: 0.5, Engine: eng})
				if err != nil {
					t.Fatal(err)
				}
				opt := len(baseline.Exact(tt.g))
				if float64(len(res.Set)) > res.Bound*float64(opt)+1e-9 {
					t.Errorf("size %d exceeds bound %.3f × OPT %d = %.3f",
						len(res.Set), res.Bound, opt, res.Bound*float64(opt))
				}
			})
		}
	}
}

// Part II trace: fractionality must strictly improve phase over phase, and
// size inflation per phase must stay modest (the (1+ε₂)·A + n/Δ̃⁴ bound of
// Lemma 3.9, checked loosely).
func TestFactorTwoPhasesImproveFractionality(t *testing.T) {
	g := graph.GNPConnected(50, 0.15, 4)
	res, err := Solve(g, Params{Eps: 0.5, Engine: EngineColoring})
	if err != nil {
		t.Fatal(err)
	}
	for i, ph := range res.Phases {
		if ph.FracOut < ph.FracIn*1.5 {
			t.Errorf("phase %d: fractionality %v -> %v did not ~double", i, ph.FracIn, ph.FracOut)
		}
		if ph.SizeOut > 1.6*ph.SizeIn+1.0 {
			t.Errorf("phase %d: size %v -> %v inflated too much", i, ph.SizeIn, ph.SizeOut)
		}
	}
}

func TestSolveDeterministic(t *testing.T) {
	g := graph.GNPConnected(36, 0.15, 8)
	for _, eng := range engines() {
		a, err := Solve(g, Params{Eps: 0.5, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Solve(g, Params{Eps: 0.5, Engine: eng})
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Set) != len(b.Set) {
			t.Fatalf("%v: non-deterministic size", eng)
		}
		for i := range a.Set {
			if a.Set[i] != b.Set[i] {
				t.Fatalf("%v: non-deterministic set", eng)
			}
		}
	}
}

// The theory preset must also produce valid dominating sets (its constants
// are just larger).
func TestTheoryPreset(t *testing.T) {
	g := graph.GNPConnected(25, 0.2, 6)
	res, err := Solve(g, Params{Eps: 0.5, Engine: EngineColoring, Preset: Theory})
	if err != nil {
		t.Fatal(err)
	}
	if !verify.IsDominatingSet(g, res.Set) {
		t.Fatal("theory preset output not dominating")
	}
	opt := len(baseline.Exact(g))
	if float64(len(res.Set)) > res.Bound*float64(opt) {
		t.Errorf("theory preset exceeded bound: %d > %.2f·%d", len(res.Set), res.Bound, opt)
	}
}

// The LOCAL variant (Corollary 1.3) must charge no more rounds than the
// CONGEST variant on the same instance.
func TestLocalVariantCheaper(t *testing.T) {
	g := graph.GNPConnected(30, 0.2, 2)
	congestRes, err := Solve(g, Params{Eps: 0.5, Engine: EngineColoring})
	if err != nil {
		t.Fatal(err)
	}
	localRes, err := Solve(g, Params{Eps: 0.5, Engine: EngineColoringLocal})
	if err != nil {
		t.Fatal(err)
	}
	if localRes.Ledger.Metrics().TotalRounds() > congestRes.Ledger.Metrics().TotalRounds() {
		t.Errorf("LOCAL variant charged more rounds (%d) than CONGEST (%d)",
			localRes.Ledger.Metrics().TotalRounds(), congestRes.Ledger.Metrics().TotalRounds())
	}
}

func TestBoundFormula(t *testing.T) {
	if b := Bound(0, 0); b != 1 {
		t.Errorf("Bound(0,0)=%v, want 1", b)
	}
	if b := Bound(0.5, 9); b <= 1.5*3.3 || b >= 1.5*3.4 {
		t.Errorf("Bound(0.5,9)=%v out of expected range", b)
	}
}
