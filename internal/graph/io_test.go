package graph

import (
	"errors"
	"strings"
	"testing"
)

// failAfterWriter accepts limit bytes, then fails every subsequent Write.
type failAfterWriter struct {
	limit   int
	written int
}

var errSink = errors.New("sink failed")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.limit {
		n := w.limit - w.written
		if n < 0 {
			n = 0
		}
		w.written += n
		return n, errSink
	}
	w.written += len(p)
	return len(p), nil
}

// TestWriteErrorPropagation pins the error plumbing of the text writer: a
// failure at any point of the stream — header, id line, edge lines, or
// only at the final flush — must surface as a non-nil error wrapping the
// destination's error, never as a silent short write.
func TestWriteErrorPropagation(t *testing.T) {
	// Complete(40) serializes to well over bufio's 4096-byte buffer, so
	// increasing limits move the failure point through every write path.
	g := Complete(40)
	full := &strings.Builder{}
	if err := g.Write(full); err != nil {
		t.Fatalf("Write to a working sink: %v", err)
	}
	total := full.Len()
	if total <= 4096 {
		t.Fatalf("test graph serializes to %d bytes, need > 4096 to defeat buffering", total)
	}
	for _, limit := range []int{0, 10, 100, 4096, total - 1} {
		w := &failAfterWriter{limit: limit}
		err := g.Write(w)
		if err == nil {
			t.Errorf("limit %d: Write succeeded against a failing sink", limit)
			continue
		}
		if !errors.Is(err, errSink) {
			t.Errorf("limit %d: error %v does not wrap the sink error", limit, err)
		}
	}
	if err := g.Write(&failAfterWriter{limit: total}); err != nil {
		t.Errorf("limit == total: Write failed: %v", err)
	}
}

// TestWriteFlushOnlyError is the case the buffered writer makes easy to
// drop: a graph small enough to fit the buffer performs no underlying
// Write until the final Flush, so only the flush path can report the
// failure.
func TestWriteFlushOnlyError(t *testing.T) {
	err := Path(3).Write(&failAfterWriter{limit: 0})
	if err == nil {
		t.Fatal("Write succeeded although every underlying write fails")
	}
	if !errors.Is(err, errSink) {
		t.Errorf("flush error %v does not wrap the sink error", err)
	}
}
