package graph

// Reinterpretation of raw .csrg bytes as the CSR slices. This is the only
// unsafe code in the repository; it is sound because decodeCSRG only
// aliases when the host is little-endian (matching the on-disk byte
// order), the buffer base is 8-byte aligned, and every section offset is a
// multiple of 8 by the format's layout rule.

import "unsafe"

// hostLittleEndian reports whether the host stores multi-byte integers
// least-significant byte first — the precondition for aliasing file bytes
// as []int64/[]int32 instead of copy-decoding them.
var hostLittleEndian = func() bool {
	x := uint16(0x0102)
	return *(*byte)(unsafe.Pointer(&x)) == 0x02
}()

// aligned8 reports whether b's backing array starts on an 8-byte boundary
// (vacuously true for the empty slice). Mmap'd pages always are; a heap
// buffer from io.ReadAll is too (Go allocations are ≥ 8-byte aligned), but
// decodeCSRG checks rather than assumes.
func aligned8(b []byte) bool {
	return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
}

func aliasInt64s(b []byte) []int64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func aliasInt32s(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}
