//go:build linux || darwin

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile is the zero-copy Mmap implementation for hosts with
// syscall.Mmap: the file's pages back the Graph's CSR slices directly, so
// topology costs file-backed (shareable, evictable, un-GC-scanned) memory
// instead of Go heap. The mapping is PROT_READ — a stray write through an
// aliased slice faults instead of corrupting the file.
func mmapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < csrgHeaderSize {
		return nil, badf("%s: truncated header: %d bytes", path, size)
	}
	if size != int64(int(size)) {
		return nil, badf("%s: size %d exceeds address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, derr := decodeCSRG(data, true)
	if derr != nil {
		syscall.Munmap(data)
		return nil, fmt.Errorf("%s: %w", path, derr)
	}
	// Stat-pin: the size was captured before mapping; if the file shrank
	// while validation ran, pages past the new EOF are already invalid and
	// reads through the returned Graph would SIGBUS. Re-stat and reject a
	// changed size — validation results for a torn view are worthless. This
	// closes the open-to-validated window only; for truncation *after* Mmap
	// returns, see the SIGBUS hazard note on Mmap itself.
	st2, serr := f.Stat()
	if serr != nil || st2.Size() != size {
		syscall.Munmap(data)
		if serr != nil {
			return nil, fmt.Errorf("graph: re-stat %s: %w", path, serr)
		}
		return nil, badf("%s: file size changed during validation (%d → %d bytes)", path, size, st2.Size())
	}
	if !hostLittleEndian {
		// decodeCSRG copy-decoded (byte-order mismatch): the heap copy
		// doesn't need the mapping, so release the address space now.
		syscall.Munmap(data)
		return &Mapped{Graph: g}, nil
	}
	return &Mapped{Graph: g, unmap: func() error { return syscall.Munmap(data) }}, nil
}
