// Package graph provides the static graph substrate used by every algorithm
// in this repository: immutable adjacency structures, unique node
// identifiers for symmetry breaking, graph powers, bipartite double covers,
// breadth-first search, and connectivity queries.
//
// Nodes are indexed 0..N-1. Every node additionally carries a unique
// identifier (ID) which distributed algorithms use for deterministic
// symmetry breaking, exactly as the CONGEST model of the paper assumes
// (Section 2: "each node has a unique identifier").
package graph

import (
	"errors"
	"fmt"
	"slices"
	"sort"
)

// Graph is an immutable simple undirected graph in compressed sparse row
// (CSR) form: node v's sorted neighbour list is
// targets[offsets[v]:offsets[v+1]]. The three flat slices are the entire
// representation — no per-node allocations, GC scans three pointers
// regardless of n, and the layout is exactly what the .csrg on-disk format
// (format.go) serializes, so a memory-mapped file can back a Graph with no
// translation. The zero value is the empty graph. Construct non-trivial
// graphs with a Builder or a generator.
type Graph struct {
	offsets []int64 // len N()+1; row bounds into targets, offsets[0] == 0
	targets []int32 // len 2·M(); concatenated sorted neighbour lists
	ids     []int64 // unique identifiers, ids[v] is node v's ID
}

// N returns the number of nodes.
func (g *Graph) N() int { return len(g.ids) }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.targets) / 2 }

// ID returns the unique identifier of node v.
func (g *Graph) ID(v int) int64 { return g.ids[v] }

// IDs returns the identifier slice indexed by node. The caller must not
// modify the returned slice.
func (g *Graph) IDs() []int64 { return g.ids }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int) int { return int(g.offsets[v+1] - g.offsets[v]) }

// MaxDegree returns Δ, the maximum degree over all nodes (0 for the empty
// graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Neighbors returns the sorted neighbour list of v. The caller must not
// modify the returned slice. The capacity is clamped to the row, so an
// append never clobbers the next node's row (the backing array may be a
// read-only memory mapping — see Mmap).
func (g *Graph) Neighbors(v int) []int32 {
	return g.targets[g.offsets[v]:g.offsets[v+1]:g.offsets[v+1]]
}

// InclusiveNeighbors appends v and its neighbours to dst and returns the
// result. This is N(v) in the paper's notation (the inclusive neighbourhood).
func (g *Graph) InclusiveNeighbors(dst []int32, v int) []int32 {
	dst = append(dst, int32(v))
	return append(dst, g.Neighbors(v)...)
}

// HasEdge reports whether {u,v} is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	list := g.Neighbors(u)
	i := sort.Search(len(list), func(i int) bool { return list[i] >= int32(v) })
	return i < len(list) && list[i] == int32(v)
}

// Edges calls fn for every edge {u,v} with u < v.
func (g *Graph) Edges(fn func(u, v int)) {
	for u := 0; u < g.N(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Clone returns a deep copy of g. The copy is always heap-backed, so
// cloning a memory-mapped graph detaches it from the mapping.
func (g *Graph) Clone() *Graph {
	return &Graph{
		offsets: append([]int64(nil), g.offsets...),
		targets: append([]int32(nil), g.targets...),
		ids:     append([]int64(nil), g.ids...),
	}
}

// String returns a short human-readable summary.
func (g *Graph) String() string {
	return fmt.Sprintf("graph(n=%d, m=%d, Δ=%d)", g.N(), g.M(), g.MaxDegree())
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self loops are rejected at Add time.
type Builder struct {
	n     int
	edges map[[2]int32]struct{}
	ids   []int64
}

// NewBuilder returns a Builder for a graph on n nodes with default
// identifiers (see DefaultIDs).
func NewBuilder(n int) *Builder {
	return &Builder{n: n, edges: make(map[[2]int32]struct{}), ids: DefaultIDs(n)}
}

// ErrBadEdge is returned by Builder.Add for self loops or out-of-range
// endpoints.
var ErrBadEdge = errors.New("graph: invalid edge")

// Add inserts the undirected edge {u,v}. Adding an existing edge is a no-op.
func (b *Builder) Add(u, v int) error {
	if u == v || u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrBadEdge, u, v, b.n)
	}
	if u > v {
		u, v = v, u
	}
	b.edges[[2]int32{int32(u), int32(v)}] = struct{}{}
	return nil
}

// SetIDs overrides the node identifiers. The slice must have length n and
// contain pairwise distinct values.
func (b *Builder) SetIDs(ids []int64) error {
	if len(ids) != b.n {
		return fmt.Errorf("graph: SetIDs got %d ids for %d nodes", len(ids), b.n)
	}
	seen := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			return fmt.Errorf("graph: duplicate id %d", id)
		}
		seen[id] = struct{}{}
	}
	b.ids = append([]int64(nil), ids...)
	return nil
}

// Graph freezes the builder into an immutable Graph in CSR form.
func (b *Builder) Graph() *Graph {
	offsets := make([]int64, b.n+1)
	for e := range b.edges {
		offsets[e[0]+1]++
		offsets[e[1]+1]++
	}
	for v := 0; v < b.n; v++ {
		offsets[v+1] += offsets[v]
	}
	targets := make([]int32, offsets[b.n])
	next := append([]int64(nil), offsets[:b.n]...)
	for e := range b.edges {
		targets[next[e[0]]] = e[1]
		next[e[0]]++
		targets[next[e[1]]] = e[0]
		next[e[1]]++
	}
	for v := 0; v < b.n; v++ {
		slices.Sort(targets[offsets[v]:offsets[v+1]])
	}
	return &Graph{offsets: offsets, targets: targets, ids: append([]int64(nil), b.ids...)}
}

// DefaultIDs returns the deterministic default identifier assignment for n
// nodes: a fixed pseudo-random permutation of 1..n. Identifiers therefore
// use O(log n) bits, matching the CONGEST model's assumption that a message
// fits a constant number of IDs. The permutation is scrambled (not the
// identity) so that symmetry-breaking code paths are exercised honestly:
// algorithms must not assume node v has identifier v.
func DefaultIDs(n int) []int64 {
	type kv struct {
		key uint64
		v   int
	}
	keys := make([]kv, n)
	for v := 0; v < n; v++ {
		// SplitMix64 mixing: a bijection on uint64, so keys are distinct.
		x := uint64(v) + 0x9e3779b97f4a7c15
		x ^= x >> 30
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 27
		x *= 0x94d049bb133111eb
		x ^= x >> 31
		keys[v] = kv{key: x, v: v}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].key < keys[j].key })
	ids := make([]int64, n)
	for rank, k := range keys {
		ids[k.v] = int64(rank + 1)
	}
	return ids
}

// FromEdges builds a graph on n nodes from an explicit edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.Add(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Graph(), nil
}

// BFS runs a breadth-first search from src and returns the distance slice
// (-1 for unreachable nodes) and the parent slice (-1 for src and unreachable
// nodes).
func (g *Graph) BFS(src int) (dist, parent []int) {
	dist = make([]int, g.N())
	parent = make([]int, g.N())
	for v := range dist {
		dist[v] = -1
		parent[v] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.N())
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		u := int(queue[0])
		queue = queue[1:]
		for _, w := range g.Neighbors(u) {
			if dist[w] < 0 {
				dist[w] = dist[u] + 1
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	return dist, parent
}

// Eccentricity returns the eccentricity of v within its connected
// component: the largest hop distance from v to any reachable node. One
// BFS, so it is usable on million-node graphs where Diameter (n BFS runs)
// is not; 2·Eccentricity(v)+2 is the standard host-side diameter bound
// passed to algorithms run under the known-diameter assumption (see
// mcds.Params.DiamBound).
func (g *Graph) Eccentricity(v int) int {
	if g.N() == 0 {
		return 0
	}
	dist, _ := g.BFS(v)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Dist returns the hop distance between u and v, or -1 if disconnected.
func (g *Graph) Dist(u, v int) int {
	if u == v {
		return 0
	}
	dist, _ := g.BFS(u)
	return dist[v]
}

// IsConnected reports whether g is connected (the empty graph counts as
// connected).
func (g *Graph) IsConnected() bool {
	if g.N() == 0 {
		return true
	}
	dist, _ := g.BFS(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// Components returns the connected components as a component index per node
// and the number of components.
func (g *Graph) Components() (comp []int, count int) {
	comp = make([]int, g.N())
	for v := range comp {
		comp[v] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			for _, w := range g.Neighbors(u) {
				if comp[w] < 0 {
					comp[w] = count
					queue = append(queue, w)
				}
			}
		}
		count++
	}
	return comp, count
}

// Diameter returns the exact hop diameter of a connected graph by running a
// BFS from every node. It returns -1 if the graph is disconnected or empty.
// Intended for test and benchmark graphs (O(n·m)).
func (g *Graph) Diameter() int {
	if g.N() == 0 {
		return -1
	}
	diam := 0
	for v := 0; v < g.N(); v++ {
		dist, _ := g.BFS(v)
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}

// Power returns G^k: same node set, an edge {u,v} whenever 0 < d_G(u,v) ≤ k.
// Node identifiers are preserved.
func (g *Graph) Power(k int) *Graph {
	if k <= 1 {
		return g.Clone()
	}
	b := NewBuilder(g.N())
	if err := b.SetIDs(g.ids); err != nil {
		panic("graph: internal: ids became invalid: " + err.Error())
	}
	// Truncated BFS to depth k from every node.
	dist := make([]int, g.N())
	for v := range dist {
		dist[v] = -1
	}
	var queue []int32
	for s := 0; s < g.N(); s++ {
		queue = append(queue[:0], int32(s))
		dist[s] = 0
		visited := []int32{int32(s)}
		for len(queue) > 0 {
			u := int(queue[0])
			queue = queue[1:]
			if dist[u] == k {
				continue
			}
			for _, w := range g.Neighbors(u) {
				if dist[w] < 0 {
					dist[w] = dist[u] + 1
					visited = append(visited, w)
					queue = append(queue, w)
					if int(w) > s {
						if err := b.Add(s, int(w)); err != nil {
							panic("graph: internal: " + err.Error())
						}
					}
				}
			}
		}
		for _, w := range visited {
			dist[w] = -1
		}
	}
	return b.Graph()
}

// Subgraph returns the induced subgraph on the given nodes together with the
// mapping from new indices to original indices. Node identifiers are
// inherited from the original nodes.
func (g *Graph) Subgraph(nodes []int) (*Graph, []int) {
	idx := make(map[int]int, len(nodes))
	orig := make([]int, len(nodes))
	for i, v := range nodes {
		idx[v] = i
		orig[i] = v
	}
	b := NewBuilder(len(nodes))
	ids := make([]int64, len(nodes))
	for i, v := range nodes {
		ids[i] = g.ids[v]
	}
	if err := b.SetIDs(ids); err != nil {
		panic("graph: internal: " + err.Error())
	}
	for i, v := range nodes {
		for _, w := range g.Neighbors(v) {
			if j, ok := idx[int(w)]; ok && j > i {
				if err := b.Add(i, j); err != nil {
					panic("graph: internal: " + err.Error())
				}
			}
		}
	}
	return b.Graph(), orig
}
