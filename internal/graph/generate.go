package graph

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
)

// rng returns a deterministic pseudo-random generator for workload
// construction. Generators are the only places in the repository that consume
// randomness; every distributed algorithm is deterministic.
func rng(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
}

// GNP returns an Erdős–Rényi G(n,p) graph drawn with the given seed.
func GNP(n int, p float64, seed uint64) *Graph {
	r := rng(seed)
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < p {
				mustAdd(b, u, v)
			}
		}
	}
	return b.Graph()
}

// GNPConnected returns a connected G(n,p) sample: after drawing the random
// edges, consecutive components are stitched with single edges. The stitch
// edges are deterministic in the seed.
func GNPConnected(n int, p float64, seed uint64) *Graph {
	g := GNP(n, p, seed)
	comp, count := g.Components()
	if count <= 1 {
		return g
	}
	b := NewBuilder(n)
	g.Edges(func(u, v int) { mustAdd(b, u, v) })
	first := make([]int, count)
	for i := range first {
		first[i] = -1
	}
	for v, c := range comp {
		if first[c] < 0 {
			first[c] = v
		}
	}
	for c := 1; c < count; c++ {
		mustAdd(b, first[c-1], first[c])
	}
	return b.Graph()
}

// Grid returns the rows×cols grid graph (4-neighbour mesh).
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, at(r, c), at(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows×cols grid with wraparound edges.
func Torus(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return (r%rows)*cols + (c % cols) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			mustAdd(b, at(r, c), at(r, c+1))
			mustAdd(b, at(r, c), at(r+1, c))
		}
	}
	return b.Graph()
}

// Path returns the path graph on n nodes.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		mustAdd(b, v, v+1)
	}
	return b.Graph()
}

// Cycle returns the cycle on n nodes (n ≥ 3).
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		mustAdd(b, v, (v+1)%n)
	}
	return b.Graph()
}

// Star returns the star K_{1,n-1} with node 0 as the centre.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		mustAdd(b, 0, v)
	}
	return b.Graph()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			mustAdd(b, u, v)
		}
	}
	return b.Graph()
}

// CompleteTree returns the complete rooted tree with the given arity and
// depth (depth 0 is a single node).
func CompleteTree(arity, depth int) *Graph {
	total := 1
	level := 1
	for d := 0; d < depth; d++ {
		level *= arity
		total += level
	}
	b := NewBuilder(total)
	next := 1
	frontier := []int{0}
	for d := 0; d < depth; d++ {
		var newFrontier []int
		for _, p := range frontier {
			for c := 0; c < arity; c++ {
				mustAdd(b, p, next)
				newFrontier = append(newFrontier, next)
				next++
			}
		}
		frontier = newFrontier
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube on 2^d nodes.
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			w := v ^ (1 << bit)
			if w > v {
				mustAdd(b, v, w)
			}
		}
	}
	return b.Graph()
}

// Caterpillar returns a caterpillar tree: a spine path of length spine where
// every spine node carries legs pendant leaves. Caterpillars are worst-case
// instances for naive dominating set heuristics.
func Caterpillar(spine, legs int) *Graph {
	n := spine + spine*legs
	b := NewBuilder(n)
	for v := 0; v+1 < spine; v++ {
		mustAdd(b, v, v+1)
	}
	next := spine
	for v := 0; v < spine; v++ {
		for l := 0; l < legs; l++ {
			mustAdd(b, v, next)
			next++
		}
	}
	return b.Graph()
}

// BarabasiAlbert returns a preferential-attachment graph: nodes arrive one at
// a time and attach m edges to existing nodes with probability proportional
// to degree. Produces heavy-tailed degree distributions (hub-dominated
// topologies, a hard case for degree-based heuristics).
func BarabasiAlbert(n, m int, seed uint64) *Graph {
	if m < 1 {
		m = 1
	}
	r := rng(seed)
	b := NewBuilder(n)
	// Repeated-endpoint list: classic O(m·n) preferential attachment.
	targets := make([]int, 0, 2*m*n)
	start := m + 1
	if start > n {
		start = n
	}
	for v := 0; v < start; v++ {
		for u := 0; u < v; u++ {
			mustAdd(b, u, v)
			targets = append(targets, u, v)
		}
	}
	for v := start; v < n; v++ {
		chosen := make(map[int]struct{}, m)
		for len(chosen) < m {
			u := targets[r.IntN(len(targets))]
			if u != v {
				chosen[u] = struct{}{}
			}
		}
		// Drain the set in sorted order: map iteration order would otherwise
		// leak into the repeated-endpoint list and make the generator
		// nondeterministic across calls with the same seed.
		picks := make([]int, 0, m)
		for u := range chosen {
			picks = append(picks, u)
		}
		sort.Ints(picks)
		for _, u := range picks {
			mustAdd(b, u, v)
			targets = append(targets, u, v)
		}
	}
	return b.Graph()
}

// UnitDisk returns a random geometric (unit-disk) graph: n points uniform in
// the unit square, an edge whenever two points are within radius. This is
// the standard model for the wireless ad-hoc and sensor networks that
// motivate the dominating set problem in the paper's introduction.
func UnitDisk(n int, radius float64, seed uint64) *Graph {
	r := rng(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			dx, dy := xs[u]-xs[v], ys[u]-ys[v]
			if dx*dx+dy*dy <= r2 {
				mustAdd(b, u, v)
			}
		}
	}
	return b.Graph()
}

// UnitDiskConnected returns a connected unit-disk sample: components are
// stitched along the x-order of representative points.
func UnitDiskConnected(n int, radius float64, seed uint64) *Graph {
	g := UnitDisk(n, radius, seed)
	comp, count := g.Components()
	if count <= 1 {
		return g
	}
	b := NewBuilder(n)
	g.Edges(func(u, v int) { mustAdd(b, u, v) })
	first := make([]int, count)
	for i := range first {
		first[i] = -1
	}
	for v, c := range comp {
		if first[c] < 0 {
			first[c] = v
		}
	}
	for c := 1; c < count; c++ {
		mustAdd(b, first[c-1], first[c])
	}
	return b.Graph()
}

// Named constructs one of the benchmark families by name, as used by the
// command-line tools. Families: gnp, grid, torus, path, cycle, star, tree,
// hypercube, caterpillar, ba, disk, complete, plus the bounded-arboricity
// suite uforest, gridx, adag (see arb.go). Unknown names get an error that
// lists the sorted family names, so callers never have to cross-reference
// Families() by hand.
func Named(family string, n int, seed uint64) (*Graph, error) {
	switch family {
	case "gnp":
		p := 4.0 / float64(n)
		if n <= 16 {
			p = 0.5
		}
		return GNPConnected(n, p, seed), nil
	case "gnp-dense":
		return GNPConnected(n, math.Min(1, 16.0/float64(n)), seed), nil
	case "grid":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 1 {
			side = 1
		}
		return Grid(side, side), nil
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return Torus(side, side), nil
	case "path":
		return Path(n), nil
	case "cycle":
		if n < 3 {
			n = 3
		}
		return Cycle(n), nil
	case "star":
		return Star(n), nil
	case "tree":
		depth := int(math.Max(1, math.Round(math.Log2(float64(n+1))-1)))
		return CompleteTree(2, depth), nil
	case "hypercube":
		d := int(math.Max(1, math.Round(math.Log2(float64(n)))))
		return Hypercube(d), nil
	case "caterpillar":
		legs := 4
		spine := n / (legs + 1)
		if spine < 1 {
			spine = 1
		}
		return Caterpillar(spine, legs), nil
	case "ba":
		return BarabasiAlbert(n, 3, seed), nil
	case "disk":
		radius := 1.8 / math.Sqrt(float64(n))
		return UnitDiskConnected(n, radius, seed), nil
	case "complete":
		return Complete(n), nil
	case "uforest":
		return UnionForests(n, DefaultArbAlpha, seed), nil
	case "gridx":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return GridDiagonals(side, side), nil
	case "adag":
		return RandomOutDAG(n, DefaultArbAlpha, seed), nil
	}
	known := Families()
	sort.Strings(known)
	return nil, fmt.Errorf("graph: unknown family %q (families: %s)",
		family, strings.Join(known, ", "))
}

// DefaultArbAlpha is the arboricity parameter Named uses for the
// parameterized bounded-arboricity families (uforest, adag).
const DefaultArbAlpha = 3

// Families lists the names accepted by Named.
func Families() []string {
	return []string{
		"gnp", "gnp-dense", "grid", "torus", "path", "cycle", "star",
		"tree", "hypercube", "caterpillar", "ba", "disk", "complete",
		"uforest", "gridx", "adag",
	}
}

func mustAdd(b *Builder, u, v int) {
	if err := b.Add(u, v); err != nil {
		panic("graph: generator produced invalid edge: " + err.Error())
	}
}
