//go:build !(linux || darwin)

package graph

import (
	"fmt"
	"os"
)

// mmapFile on hosts without syscall.Mmap: read the file into the heap
// behind the same function, so Mmap callers and tests run anywhere — they
// just don't get the page-cache-backed memory accounting.
func mmapFile(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadCSRG(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &Mapped{Graph: g}, nil
}
