package graph

// Bounded-arboricity workload generators. The arboricity α(G) is the
// minimum number of forests that cover E(G) (Nash-Williams); graphs of
// bounded arboricity — planar graphs, bounded-degeneracy graphs, most
// infrastructure and road-network-like topologies — are the regime where
// the Dory–Ghaffari–Ilchi peeling algorithm (arXiv:2206.05174, implemented
// in internal/arbmds) guarantees an O(α)-approximate dominating set in
// O(ε⁻¹·log Δ) rounds. Each generator below constructs its graph from an
// explicit forest/orientation witness, so the claimed α bound holds by
// construction and the measured degeneracy (internal/verify) can be checked
// against it in tests and in the E-arb experiment table.

// UnionForests returns the union of alpha random recursive spanning trees
// on n nodes: for each layer, nodes are visited in a seeded random order
// and each attaches to a uniformly random earlier node of that order. The
// edge set is covered by alpha forests by construction, so the arboricity
// is at most alpha (duplicate edges across layers only remove edges).
// Every layer is a spanning tree, so the graph is connected, and maximum
// degrees stay O(α·log n) with high probability — sparse but irregular,
// the core workload of the E-arb experiments.
func UnionForests(n, alpha int, seed uint64) *Graph {
	if alpha < 1 {
		alpha = 1
	}
	b := NewBuilder(n)
	for layer := 0; layer < alpha; layer++ {
		r := rng(seed ^ (0x9e3779b97f4a7c15 * uint64(layer+1)))
		perm := r.Perm(n)
		for i := 1; i < n; i++ {
			mustAdd(b, perm[i], perm[r.IntN(i)])
		}
	}
	return b.Graph()
}

// GridDiagonals returns the rows×cols grid with one diagonal per cell,
// alternating direction checkerboard-style. The graph stays planar (each
// face is a triangle or the outer face), so its arboricity is at most 3;
// it is the deterministic planar-style member of the bounded-arboricity
// suite, with Δ = 8 independent of n.
func GridDiagonals(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	at := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				mustAdd(b, at(r, c), at(r, c+1))
			}
			if r+1 < rows {
				mustAdd(b, at(r, c), at(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				if (r+c)%2 == 0 {
					mustAdd(b, at(r, c), at(r+1, c+1))
				} else {
					mustAdd(b, at(r+1, c), at(r, c+1))
				}
			}
		}
	}
	return b.Graph()
}

// RandomOutDAG returns the underlying undirected graph of a random DAG
// with out-degree at most alpha: node v (in index order) picks
// min(v, alpha) distinct uniform targets among 0..v-1. The acyclic
// orientation with out-degree ≤ alpha witnesses that every subgraph on k
// nodes has at most alpha·k edges, so the arboricity is at most alpha+1
// and the degeneracy at most 2·alpha. Early nodes accumulate in-degree
// Θ(α·log n), giving a mild hub structure on top of the sparse bound.
func RandomOutDAG(n, alpha int, seed uint64) *Graph {
	if alpha < 1 {
		alpha = 1
	}
	r := rng(seed)
	b := NewBuilder(n)
	picks := make([]int, 0, alpha)
	for v := 1; v < n; v++ {
		k := alpha
		if v < k {
			k = v
		}
		picks = picks[:0]
		for len(picks) < k {
			u := r.IntN(v)
			dup := false
			for _, w := range picks {
				if w == u {
					dup = true
					break
				}
			}
			if !dup {
				picks = append(picks, u)
			}
		}
		for _, u := range picks {
			mustAdd(b, v, u)
		}
	}
	return b.Graph()
}
