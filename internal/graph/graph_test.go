package graph

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	if err := b.Add(0, 1); err != nil {
		t.Fatalf("Add(0,1): %v", err)
	}
	if err := b.Add(1, 0); err != nil { // duplicate, reversed
		t.Fatalf("Add(1,0): %v", err)
	}
	if err := b.Add(2, 3); err != nil {
		t.Fatalf("Add(2,3): %v", err)
	}
	g := b.Graph()
	if g.N() != 4 || g.M() != 2 {
		t.Fatalf("got n=%d m=%d, want 4, 2", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Fatalf("HasEdge results wrong")
	}
}

func TestBuilderRejectsBadEdges(t *testing.T) {
	b := NewBuilder(3)
	for _, e := range [][2]int{{0, 0}, {-1, 1}, {0, 3}} {
		if err := b.Add(e[0], e[1]); err == nil {
			t.Errorf("Add(%d,%d) succeeded, want error", e[0], e[1])
		}
	}
}

func TestDefaultIDsDistinct(t *testing.T) {
	ids := DefaultIDs(10000)
	seen := make(map[int64]struct{}, len(ids))
	for _, id := range ids {
		if _, dup := seen[id]; dup {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = struct{}{}
	}
}

func TestSetIDsValidation(t *testing.T) {
	b := NewBuilder(3)
	if err := b.SetIDs([]int64{1, 2}); err == nil {
		t.Error("short id slice accepted")
	}
	if err := b.SetIDs([]int64{1, 2, 2}); err == nil {
		t.Error("duplicate ids accepted")
	}
	if err := b.SetIDs([]int64{5, 9, 1}); err != nil {
		t.Errorf("valid ids rejected: %v", err)
	}
}

func TestBFSAndDist(t *testing.T) {
	g := Path(5)
	dist, parent := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d]=%d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != -1 || parent[3] != 2 {
		t.Errorf("parents wrong: %v", parent)
	}
	if d := g.Dist(0, 4); d != 4 {
		t.Errorf("Dist(0,4)=%d, want 4", d)
	}
}

func TestComponentsAndConnectivity(t *testing.T) {
	g, err := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	comp, count := g.Components()
	if count != 3 {
		t.Fatalf("count=%d, want 3 (components %v)", count, comp)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] {
		t.Errorf("component labels wrong: %v", comp)
	}
	if g.IsConnected() {
		t.Error("disconnected graph reported connected")
	}
	if !Cycle(5).IsConnected() {
		t.Error("cycle reported disconnected")
	}
}

func TestDiameter(t *testing.T) {
	tests := []struct {
		name string
		g    *Graph
		want int
	}{
		{"path5", Path(5), 4},
		{"cycle6", Cycle(6), 3},
		{"star7", Star(7), 2},
		{"complete4", Complete(4), 1},
		{"grid3x3", Grid(3, 3), 4},
		{"hypercube3", Hypercube(3), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.g.Diameter(); got != tt.want {
				t.Errorf("Diameter()=%d, want %d", got, tt.want)
			}
		})
	}
}

func TestPower(t *testing.T) {
	g := Path(5)
	g2 := g.Power(2)
	wantEdges := [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}, {2, 4}, {3, 4}}
	if g2.M() != len(wantEdges) {
		t.Fatalf("G^2 of P5 has %d edges, want %d", g2.M(), len(wantEdges))
	}
	for _, e := range wantEdges {
		if !g2.HasEdge(e[0], e[1]) {
			t.Errorf("G^2 missing edge %v", e)
		}
	}
	// Power preserves IDs.
	for v := 0; v < g.N(); v++ {
		if g.ID(v) != g2.ID(v) {
			t.Errorf("Power changed ID of %d", v)
		}
	}
	// G^1 is a copy.
	g1 := g.Power(1)
	if g1.M() != g.M() {
		t.Errorf("G^1 edge count %d, want %d", g1.M(), g.M())
	}
}

func TestPowerMatchesBFSDistance(t *testing.T) {
	g := GNPConnected(40, 0.08, 7)
	for _, k := range []int{2, 3} {
		gk := g.Power(k)
		for u := 0; u < g.N(); u++ {
			dist, _ := g.BFS(u)
			for v := 0; v < g.N(); v++ {
				want := u != v && dist[v] > 0 && dist[v] <= k
				if got := gk.HasEdge(u, v); got != want {
					t.Fatalf("G^%d edge (%d,%d)=%v, want %v (dist %d)", k, u, v, got, want, dist[v])
				}
			}
		}
	}
}

func TestSubgraph(t *testing.T) {
	g := Cycle(6)
	sub, orig := g.Subgraph([]int{0, 1, 2, 4})
	if sub.N() != 4 {
		t.Fatalf("n=%d, want 4", sub.N())
	}
	if sub.M() != 2 { // edges {0,1},{1,2}; node 4 isolated in the induced graph
		t.Fatalf("m=%d, want 2", sub.M())
	}
	for i, v := range orig {
		if sub.ID(i) != g.ID(v) {
			t.Errorf("id mismatch at %d", i)
		}
	}
}

func TestGeneratorShapes(t *testing.T) {
	tests := []struct {
		name       string
		g          *Graph
		n, m, maxD int
	}{
		{"grid2x3", Grid(2, 3), 6, 7, 3},
		{"torus3x3", Torus(3, 3), 9, 18, 4},
		{"star5", Star(5), 5, 4, 4},
		{"complete5", Complete(5), 5, 10, 4},
		{"tree-2-2", CompleteTree(2, 2), 7, 6, 3},
		{"hypercube4", Hypercube(4), 16, 32, 4},
		{"caterpillar", Caterpillar(3, 2), 9, 8, 4},
		{"path1", Path(1), 1, 0, 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.g.N() != tt.n || tt.g.M() != tt.m || tt.g.MaxDegree() != tt.maxD {
				t.Errorf("got (n=%d,m=%d,Δ=%d), want (%d,%d,%d)",
					tt.g.N(), tt.g.M(), tt.g.MaxDegree(), tt.n, tt.m, tt.maxD)
			}
		})
	}
}

func TestGNPDeterministic(t *testing.T) {
	a := GNP(50, 0.1, 42)
	b := GNP(50, 0.1, 42)
	c := GNP(50, 0.1, 43)
	if a.M() != b.M() {
		t.Error("same seed produced different graphs")
	}
	same := true
	a.Edges(func(u, v int) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Error("same seed produced different edge sets")
	}
	if a.M() == c.M() {
		// Not impossible, but with 1225 candidate edges it would be a
		// miracle; treat as regression.
		diff := false
		a.Edges(func(u, v int) {
			if !c.HasEdge(u, v) {
				diff = true
			}
		})
		if !diff {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(100, 3, 1)
	if g.N() != 100 {
		t.Fatalf("n=%d", g.N())
	}
	if !g.IsConnected() {
		t.Error("BA graph should be connected")
	}
	// Each arriving node adds exactly 3 edges after the initial clique.
	if g.M() < 3*(100-4) {
		t.Errorf("m=%d too small", g.M())
	}
}

func TestUnitDiskConnected(t *testing.T) {
	g := UnitDiskConnected(80, 0.12, 3)
	if !g.IsConnected() {
		t.Error("UnitDiskConnected produced a disconnected graph")
	}
}

func TestNamedFamilies(t *testing.T) {
	for _, fam := range Families() {
		g, err := Named(fam, 30, 5)
		if err != nil {
			t.Errorf("Named(%q): %v", fam, err)
			continue
		}
		if g.N() == 0 {
			t.Errorf("Named(%q) produced empty graph", fam)
		}
	}
	if _, err := Named("nope", 10, 0); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestIORoundTrip(t *testing.T) {
	for _, g := range []*Graph{Path(0), Path(1), Cycle(5), GNP(30, 0.2, 9)} {
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			t.Fatalf("Write: %v", err)
		}
		h, err := ReadFrom(&buf)
		if err != nil {
			t.Fatalf("ReadFrom: %v", err)
		}
		if h.N() != g.N() || h.M() != g.M() {
			t.Fatalf("round trip changed shape: got (%d,%d), want (%d,%d)",
				h.N(), h.M(), g.N(), g.M())
		}
		g.Edges(func(u, v int) {
			if !h.HasEdge(u, v) {
				t.Errorf("round trip lost edge {%d,%d}", u, v)
			}
		})
		for v := 0; v < g.N(); v++ {
			if g.ID(v) != h.ID(v) {
				t.Errorf("round trip changed ID of %d", v)
			}
		}
	}
}

func TestReadFromErrors(t *testing.T) {
	for _, in := range []string{"", "1", "2 1\n7 8\n", "2 1\n7 8\n0 0\n", "2 1\n7\n0 1\n"} {
		if _, err := ReadFrom(bytes.NewReader([]byte(in))); err == nil {
			t.Errorf("ReadFrom(%q) succeeded, want error", in)
		}
	}
}

// Property: adjacency symmetry and sortedness for random graphs.
func TestAdjacencyInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		g := GNP(25, 0.3, seed)
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(v)
			for i := range nbrs {
				if i > 0 && nbrs[i-1] >= nbrs[i] {
					return false // unsorted or duplicate
				}
				if !g.HasEdge(int(nbrs[i]), v) {
					return false // asymmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInclusiveNeighbors(t *testing.T) {
	g := Star(4)
	inc := g.InclusiveNeighbors(nil, 0)
	if len(inc) != 4 {
		t.Fatalf("|N(center)|=%d, want 4", len(inc))
	}
	inc = g.InclusiveNeighbors(nil, 1)
	if len(inc) != 2 {
		t.Fatalf("|N(leaf)|=%d, want 2", len(inc))
	}
}

// Every generator family must be a pure function of (family, n, seed):
// identical adjacency on repeated calls. Regression test for the
// preferential-attachment generator, which once leaked map iteration order
// into its target list.
func TestGeneratorsDeterministic(t *testing.T) {
	for _, family := range Families() {
		a, err := Named(family, 60, 7)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		b, err := Named(family, 60, 7)
		if err != nil {
			t.Fatalf("%s: %v", family, err)
		}
		if a.N() != b.N() || a.M() != b.M() {
			t.Errorf("%s: sizes differ across calls: (%d,%d) vs (%d,%d)", family, a.N(), a.M(), b.N(), b.M())
			continue
		}
		for v := 0; v < a.N(); v++ {
			na, nb := a.Neighbors(v), b.Neighbors(v)
			if len(na) != len(nb) {
				t.Errorf("%s: node %d degree differs", family, v)
				break
			}
			for i := range na {
				if na[i] != nb[i] {
					t.Errorf("%s: node %d neighbour %d differs", family, v, i)
					break
				}
			}
		}
	}
}

func TestEccentricity(t *testing.T) {
	if got := Path(10).Eccentricity(0); got != 9 {
		t.Errorf("path end eccentricity = %d, want 9", got)
	}
	if got := Path(10).Eccentricity(5); got != 5 {
		t.Errorf("path middle eccentricity = %d, want 5", got)
	}
	if got := Star(8).Eccentricity(0); got != 1 {
		t.Errorf("star centre eccentricity = %d, want 1", got)
	}
	// Disconnected: eccentricity is within the component only.
	g, err := FromEdges(5, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Eccentricity(0); got != 2 {
		t.Errorf("component eccentricity = %d, want 2", got)
	}
	// 2·ecc+2 bounds the diameter from above on every small family.
	for _, g := range []*Graph{Cycle(9), Grid(4, 5), GNPConnected(30, 0.15, 3)} {
		if d, b := g.Diameter(), 2*g.Eccentricity(0)+2; d > b {
			t.Errorf("diameter %d exceeds 2·ecc(0)+2 = %d", d, b)
		}
	}
}

func TestEccentricityEmptyGraph(t *testing.T) {
	g, err := FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Eccentricity(0); got != 0 {
		t.Errorf("empty graph eccentricity = %d, want 0", got)
	}
}
