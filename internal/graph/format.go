package graph

// The .csrg binary graph format: the Graph's CSR slices, flat on disk, so
// a file can back a Graph by memory mapping with zero translation (Mmap)
// or by one contiguous read (ReadCSRG). Everything is little-endian — the
// byte order of every supported mmap host — and every section starts at an
// 8-byte-aligned file offset, so the mapped bytes can be aliased directly
// as []int64/[]int32.
//
// Layout (all offsets in bytes):
//
//	0   magic   [8]byte  "CSRG\r\n\x1a\n" (PNG-style: detects text-mode mangling)
//	8   version uint32   currently 1
//	12  flags   uint32   must be 0 (reserved)
//	16  n       uint64   number of nodes
//	24  m       uint64   number of undirected edges
//	32  crc(offsets section) uint32   \
//	36  crc(targets section) uint32    } CRC-32 (IEEE) of the raw section bytes
//	40  crc(ids section)     uint32   /
//	44  crc(header bytes 0..44) uint32
//	48  offsets section: (n+1) × int64   row bounds, offsets[0]=0, offsets[n]=2m
//	    targets section: 2m × int32      concatenated sorted neighbour lists
//	    ids section:     n × int64       unique node identifiers
//
// The header is 48 bytes and each section's byte length is a multiple of 8,
// so all three sections are 8-byte aligned with no padding; a future
// version that adds a section with a non-multiple-of-8 length must pad to
// the next 8-byte boundary. The file ends after the ids section — trailing
// bytes are rejected.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

const (
	csrgMagic      = "CSRG\r\n\x1a\n"
	csrgVersion    = 1
	csrgHeaderSize = 48
)

// ErrBadCSRG is wrapped by every decode error: corrupt headers, checksum
// mismatches, and structural violations (unsorted rows, asymmetric
// adjacency, out-of-range targets). errors.Is(err, ErrBadCSRG) is the
// loader's "this file is not a valid .csrg" test.
var ErrBadCSRG = errors.New("graph: invalid .csrg")

func badf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadCSRG, fmt.Sprintf(format, args...))
}

// csrgSize returns the exact file size for a graph with n nodes and m
// edges, or an error if the sizes overflow the format's bounds.
func csrgSize(n, m uint64) (int64, error) {
	// Targets are int32 node indices, so n must fit in int32; the total
	// size must fit in int64 for mmap length and file size arithmetic.
	if n > math.MaxInt32 {
		return 0, badf("n=%d exceeds int32 node indices", n)
	}
	if m > math.MaxInt64/16 {
		return 0, badf("m=%d overflows", m)
	}
	return int64(csrgHeaderSize) + int64(n+1)*8 + int64(m)*8 + int64(n)*8, nil
}

// WriteCSRG writes g in the .csrg binary format. The sections are streamed
// through a fixed-size scratch buffer (two passes over the CSR slices: one
// to checksum, one to write), so the writer allocates O(1) regardless of
// graph size.
func (g *Graph) WriteCSRG(w io.Writer) error {
	var hdr [csrgHeaderSize]byte
	copy(hdr[0:8], csrgMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], csrgVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(g.N()))
	binary.LittleEndian.PutUint64(hdr[24:32], uint64(g.M()))

	// Pass 1: per-section checksums.
	for i, section := range []func(io.Writer) error{g.writeOffsets, g.writeTargets, g.writeIDs} {
		h := crc32.NewIEEE()
		if err := section(h); err != nil {
			return err
		}
		binary.LittleEndian.PutUint32(hdr[32+4*i:36+4*i], h.Sum32())
	}
	binary.LittleEndian.PutUint32(hdr[44:48], crc32.ChecksumIEEE(hdr[:44]))

	// Pass 2: header then section bytes.
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	for _, section := range []func(io.Writer) error{g.writeOffsets, g.writeTargets, g.writeIDs} {
		if err := section(w); err != nil {
			return err
		}
	}
	return nil
}

// scratchSize is the encode buffer for the streaming section writers: a
// multiple of 8 so int64 values never straddle a flush.
const scratchSize = 64 << 10

func (g *Graph) writeOffsets(w io.Writer) error {
	// The zero-value Graph has a nil offsets slice but the format always
	// carries n+1 entries; emit the implicit single zero.
	if len(g.offsets) == 0 {
		var zero [8]byte
		_, err := w.Write(zero[:])
		return err
	}
	return writeInt64s(w, g.offsets)
}

func (g *Graph) writeTargets(w io.Writer) error {
	var buf [scratchSize]byte
	fill := 0
	for _, t := range g.targets {
		binary.LittleEndian.PutUint32(buf[fill:], uint32(t))
		fill += 4
		if fill == len(buf) {
			if _, err := w.Write(buf[:fill]); err != nil {
				return err
			}
			fill = 0
		}
	}
	_, err := w.Write(buf[:fill])
	return err
}

func (g *Graph) writeIDs(w io.Writer) error { return writeInt64s(w, g.ids) }

func writeInt64s(w io.Writer, xs []int64) error {
	var buf [scratchSize]byte
	fill := 0
	for _, x := range xs {
		binary.LittleEndian.PutUint64(buf[fill:], uint64(x))
		fill += 8
		if fill == len(buf) {
			if _, err := w.Write(buf[:fill]); err != nil {
				return err
			}
			fill = 0
		}
	}
	_, err := w.Write(buf[:fill])
	return err
}

// WriteCSRGFile writes g to path in the .csrg format, fsync-free but
// checking Close, so a reported success means the bytes reached the file.
func (g *Graph) WriteCSRGFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := g.WriteCSRG(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// decodeCSRG parses and fully validates a .csrg image. With alias=true the
// returned Graph's slices alias buf directly (zero-copy; buf must outlive
// the Graph and must not be modified); otherwise the sections are copied
// into fresh heap slices. The alias path requires a little-endian host and
// falls back to copying elsewhere.
//
// Validation is complete before the Graph is returned: header checksums,
// section checksums, exact file size, row monotonicity, per-row strict
// sortedness, target range, no self loops, adjacency symmetry, and
// pairwise-distinct ids. A non-nil error means no Graph aliases any part
// of buf.
func decodeCSRG(buf []byte, alias bool) (*Graph, error) {
	if len(buf) < csrgHeaderSize {
		return nil, badf("truncated header: %d bytes", len(buf))
	}
	if string(buf[0:8]) != csrgMagic {
		return nil, badf("bad magic %q", buf[0:8])
	}
	if got := crc32.ChecksumIEEE(buf[:44]); got != binary.LittleEndian.Uint32(buf[44:48]) {
		return nil, badf("header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != csrgVersion {
		return nil, badf("unsupported version %d", v)
	}
	if flags := binary.LittleEndian.Uint32(buf[12:16]); flags != 0 {
		return nil, badf("unsupported flags %#x", flags)
	}
	n := binary.LittleEndian.Uint64(buf[16:24])
	m := binary.LittleEndian.Uint64(buf[24:32])
	want, err := csrgSize(n, m)
	if err != nil {
		return nil, err
	}
	if int64(len(buf)) != want {
		return nil, badf("size %d, want %d for n=%d m=%d", len(buf), want, n, m)
	}
	offBytes := buf[csrgHeaderSize : csrgHeaderSize+int64(n+1)*8]
	tgtBytes := buf[csrgHeaderSize+int64(n+1)*8 : csrgHeaderSize+int64(n+1)*8+int64(m)*8]
	idBytes := buf[want-int64(n)*8 : want]
	for i, section := range [][]byte{offBytes, tgtBytes, idBytes} {
		if got := crc32.ChecksumIEEE(section); got != binary.LittleEndian.Uint32(buf[32+4*i:36+4*i]) {
			return nil, badf("section %d checksum mismatch", i)
		}
	}

	g := &Graph{}
	if alias && hostLittleEndian && aligned8(buf) {
		g.offsets = aliasInt64s(offBytes)
		g.targets = aliasInt32s(tgtBytes)
		g.ids = aliasInt64s(idBytes)
	} else {
		g.offsets = make([]int64, n+1)
		for i := range g.offsets {
			g.offsets[i] = int64(binary.LittleEndian.Uint64(offBytes[8*i:]))
		}
		g.targets = make([]int32, 2*m)
		for i := range g.targets {
			g.targets[i] = int32(binary.LittleEndian.Uint32(tgtBytes[4*i:]))
		}
		g.ids = make([]int64, n)
		for i := range g.ids {
			g.ids[i] = int64(binary.LittleEndian.Uint64(idBytes[8*i:]))
		}
	}
	if err := validateCSR(g, int64(2*m)); err != nil {
		return nil, err
	}
	return g, nil
}

// validateCSR checks the structural invariants every Graph method assumes,
// so a decoded graph is indistinguishable from a Builder-produced one:
// monotone row bounds ending at 2m, strictly sorted in-range rows with no
// self loops, symmetric adjacency, and pairwise-distinct ids. Cost is
// O(n + m·log Δ) time and O(n) transient space (the id-distinctness sort).
func validateCSR(g *Graph, wantEnd int64) error {
	n := int64(g.N())
	if g.offsets[0] != 0 {
		return badf("offsets[0]=%d, want 0", g.offsets[0])
	}
	if g.offsets[n] != wantEnd {
		return badf("offsets[n]=%d, want 2m=%d", g.offsets[n], wantEnd)
	}
	// All row bounds are vetted before the first row is sliced: a single
	// out-of-range offset would otherwise panic the slice expression below
	// instead of returning an error.
	for v := int64(0); v < n; v++ {
		if g.offsets[v] > g.offsets[v+1] || g.offsets[v+1] > wantEnd {
			return badf("offsets not monotone at node %d", v)
		}
	}
	for v := int64(0); v < n; v++ {
		row := g.targets[g.offsets[v]:g.offsets[v+1]]
		for i, w := range row {
			if int64(w) < 0 || int64(w) >= n {
				return badf("node %d: target %d out of range", v, w)
			}
			if int64(w) == v {
				return badf("node %d: self loop", v)
			}
			if i > 0 && row[i-1] >= w {
				return badf("node %d: row not strictly sorted at %d", v, i)
			}
		}
	}
	// Symmetry: every directed entry (v,w) needs its reverse (w,v). Rows
	// are sorted, so each check is one binary search: O(m·log Δ) total.
	for v := 0; int64(v) < n; v++ {
		for _, w := range g.Neighbors(v) {
			if !g.HasEdge(int(w), v) {
				return badf("asymmetric edge: %d→%d present, %d→%d missing", v, w, w, v)
			}
		}
	}
	if n > 0 {
		sorted := append([]int64(nil), g.ids...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				return badf("duplicate id %d", sorted[i])
			}
		}
	}
	return nil
}

// ReadCSRG parses a .csrg stream into a heap-backed Graph with the same
// validation as Mmap. Decode errors wrap ErrBadCSRG; the function never
// panics on corrupt input (FuzzCSRGDecode pins this).
func ReadCSRG(r io.Reader) (*Graph, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	// Alias the heap buffer we just read — it is ours, so zero-copy is
	// safe here too (decodeCSRG falls back to copying on big-endian hosts).
	return decodeCSRG(buf, true)
}

// LoadFault, when non-nil, is consulted by Load and Mmap with the path
// before any file is opened; a non-nil return fails the load with that
// error. It exists so fault-injection tests (internal/chaos.FailGraphLoads)
// can exercise loader failure paths deterministically — production code
// leaves it nil. Install or clear it only while no loads are in flight.
var LoadFault func(path string) error

// Load reads a graph from path, dispatching on the extension: ".csrg"
// files are memory-mapped zero-copy (heap-read fallback where mmap is
// unavailable), everything else is parsed as the text edge-list format
// (ReadFrom). The returned closer releases the mapping and must be held
// open for the Graph's lifetime; for text graphs it is a no-op.
func Load(path string) (*Graph, io.Closer, error) {
	if lf := LoadFault; lf != nil {
		if err := lf(path); err != nil {
			return nil, nil, err
		}
	}
	if strings.HasSuffix(path, ".csrg") {
		mg, err := Mmap(path)
		if err != nil {
			return nil, nil, err
		}
		return mg.Graph, mg, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	g, err := ReadFrom(f)
	if err != nil {
		return nil, nil, err
	}
	return g, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// Mapped is a Graph backed by a memory-mapped .csrg file. The embedded
// Graph aliases the mapping directly (on little-endian mmap-capable hosts;
// elsewhere it is a validated heap copy, behind the same API): topology
// costs file-backed pages, not Go heap, and the kernel can share and evict
// them. Close unmaps; the Graph must not be used afterwards.
type Mapped struct {
	*Graph
	unmap func() error
}

// Close releases the mapping. Safe to call twice.
func (m *Mapped) Close() error {
	if m.unmap == nil {
		return nil
	}
	u := m.unmap
	m.unmap = nil
	return u()
}

// Mmap opens the .csrg file at path and returns a Graph aliasing the
// mapped bytes. The file is validated completely before the Graph is
// returned (see decodeCSRG); the mapping is read-only, so even a buggy
// caller cannot corrupt the file through the returned slices. The size is
// stat-pinned at open and re-checked after validation, so a file truncated
// while Mmap runs is rejected instead of handing back a Graph over a torn
// view.
//
// SIGBUS hazard: the pages stay file-backed for the Graph's lifetime. If
// another process truncates or rewrites the file after Mmap returns, reads
// through the Graph's slices touch vanished pages and the kernel delivers
// SIGBUS — a process-fatal signal no Go recover can catch. Only map files
// you control for the duration of the run; use ReadCSRG (a heap copy) when
// the file's lifetime cannot be guaranteed.
func Mmap(path string) (*Mapped, error) {
	if lf := LoadFault; lf != nil {
		if err := lf(path); err != nil {
			return nil, err
		}
	}
	return mmapFile(path)
}
