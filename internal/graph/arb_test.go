package graph

import (
	"strings"
	"testing"
)

// testDegeneracy is an independent O(n²) min-degree peel used as the oracle
// for the generators' arboricity claims (internal/verify has the production
// bucket-queue implementation; this one is deliberately naive so the two
// cannot share a bug).
func testDegeneracy(g *Graph) int {
	n := g.N()
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	k := 0
	for left := n; left > 0; left-- {
		best, bestDeg := -1, n+1
		for v := 0; v < n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		if bestDeg > k {
			k = bestDeg
		}
		removed[best] = true
		for _, u := range g.Neighbors(best) {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	return k
}

// TestUnionForestsDeterministic mirrors the BarabasiAlbert regression test:
// the generator must be a pure function of (n, alpha, seed), and different
// seeds must produce different graphs.
func TestUnionForestsDeterministic(t *testing.T) {
	a := UnionForests(120, 3, 7)
	b := UnionForests(120, 3, 7)
	c := UnionForests(120, 3, 8)
	if a.N() != 120 || a.M() != b.M() {
		t.Fatalf("same seed: (%d,%d) vs (%d,%d)", a.N(), a.M(), b.N(), b.M())
	}
	same := true
	a.Edges(func(u, v int) {
		if !b.HasEdge(u, v) {
			same = false
		}
	})
	if !same {
		t.Error("same seed produced different edge sets")
	}
	diff := false
	a.Edges(func(u, v int) {
		if !c.HasEdge(u, v) {
			diff = true
		}
	})
	if !diff {
		t.Error("different seeds produced identical graphs")
	}
}

// TestUnionForestsArboricityWitness pins the construction guarantees: each
// of the alpha layers is a spanning tree, so the graph is connected, has at
// most alpha·(n-1) edges, and its measured degeneracy is at most 2α-1 (a
// union of α forests has average degree < 2α in every subgraph).
func TestUnionForestsArboricityWitness(t *testing.T) {
	for _, alpha := range []int{1, 2, 3, 5} {
		g := UnionForests(200, alpha, 11)
		if !g.IsConnected() {
			t.Errorf("alpha=%d: disconnected (every layer is a spanning tree)", alpha)
		}
		if g.M() > alpha*(g.N()-1) {
			t.Errorf("alpha=%d: m=%d > alpha*(n-1)=%d", alpha, g.M(), alpha*(g.N()-1))
		}
		if d := testDegeneracy(g); d > 2*alpha-1 {
			t.Errorf("alpha=%d: degeneracy %d > 2α-1=%d", alpha, d, 2*alpha-1)
		}
	}
}

// TestGridDiagonals pins shape and the planarity-derived sparsity: n nodes,
// grid edges plus one diagonal per cell, degeneracy ≤ 5 (planar), Δ ≤ 8.
func TestGridDiagonals(t *testing.T) {
	rows, cols := 9, 7
	g := GridDiagonals(rows, cols)
	if g.N() != rows*cols {
		t.Fatalf("n=%d, want %d", g.N(), rows*cols)
	}
	wantM := rows*(cols-1) + cols*(rows-1) + (rows-1)*(cols-1)
	if g.M() != wantM {
		t.Errorf("m=%d, want %d", g.M(), wantM)
	}
	if !g.IsConnected() {
		t.Error("grid with diagonals must be connected")
	}
	if d := g.MaxDegree(); d > 8 {
		t.Errorf("Δ=%d, want ≤ 8 independent of size", d)
	}
	if d := testDegeneracy(g); d > 5 {
		t.Errorf("degeneracy %d > 5 (planar bound)", d)
	}
}

// TestRandomOutDAG pins the orientation witness: out-degree ≤ alpha means
// m ≤ alpha·n and degeneracy ≤ 2α, and the generator is deterministic.
func TestRandomOutDAG(t *testing.T) {
	for _, alpha := range []int{1, 2, 3, 4} {
		g := RandomOutDAG(150, alpha, 5)
		if g.M() > alpha*g.N() {
			t.Errorf("alpha=%d: m=%d > alpha·n", alpha, g.M())
		}
		if d := testDegeneracy(g); d > 2*alpha {
			t.Errorf("alpha=%d: degeneracy %d > 2α", alpha, d)
		}
	}
	a := RandomOutDAG(150, 3, 5)
	b := RandomOutDAG(150, 3, 5)
	if a.M() != b.M() {
		t.Fatal("same seed produced different graphs")
	}
	a.Edges(func(u, v int) {
		if !b.HasEdge(u, v) {
			t.Fatalf("same seed differs at edge {%d,%d}", u, v)
		}
	})
}

// TestNamedUnknownFamilyError pins the error contract: the message must
// carry the sorted family list so callers see their options without
// cross-referencing Families() by hand.
func TestNamedUnknownFamilyError(t *testing.T) {
	_, err := Named("nope", 10, 0)
	if err == nil {
		t.Fatal("unknown family accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `unknown family "nope"`) {
		t.Errorf("error %q does not name the bad family", msg)
	}
	for _, fam := range Families() {
		if !strings.Contains(msg, fam) {
			t.Errorf("error %q does not list family %q", msg, fam)
		}
	}
	// The list must be sorted: "adag" (first alphabetically) must appear
	// before "uforest" even though Families() registers it last.
	if strings.Index(msg, "adag") > strings.Index(msg, "uforest") {
		t.Errorf("family list in %q is not sorted", msg)
	}
}

// FuzzBoundedArbGenerators drives the bounded-arboricity generators over
// random (n, alpha, seed) triples: same inputs must reproduce the identical
// edge list, and the measured degeneracy must respect the construction's
// arboricity witness (≤ 2α-1 for forest unions, ≤ 2α for outdegree-α DAGs).
func FuzzBoundedArbGenerators(f *testing.F) {
	f.Add(uint8(10), uint8(1), uint64(1))
	f.Add(uint8(60), uint8(3), uint64(7))
	f.Add(uint8(120), uint8(5), uint64(42))
	f.Add(uint8(2), uint8(2), uint64(0))
	f.Fuzz(func(t *testing.T, nRaw, alphaRaw uint8, seed uint64) {
		n := 1 + int(nRaw)%120
		alpha := 1 + int(alphaRaw)%5
		check := func(name string, gen func() *Graph, degBound int) {
			a, b := gen(), gen()
			if a.N() != b.N() || a.M() != b.M() {
				t.Fatalf("%s(n=%d,α=%d,seed=%d): sizes differ across calls", name, n, alpha, seed)
			}
			a.Edges(func(u, v int) {
				if !b.HasEdge(u, v) {
					t.Fatalf("%s(n=%d,α=%d,seed=%d): nondeterministic edge {%d,%d}", name, n, alpha, seed, u, v)
				}
			})
			if d := testDegeneracy(a); d > degBound {
				t.Fatalf("%s(n=%d,α=%d,seed=%d): degeneracy %d > %d", name, n, alpha, seed, d, degBound)
			}
		}
		check("UnionForests", func() *Graph { return UnionForests(n, alpha, seed) }, 2*alpha-1)
		check("RandomOutDAG", func() *Graph { return RandomOutDAG(n, alpha, seed) }, 2*alpha)
	})
}
