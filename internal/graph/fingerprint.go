package graph

import (
	"encoding/binary"
	"hash/crc32"
)

// Fingerprint hashes the content identity of g: node count, edge count and
// the full ID array, folded through CRC-32 (IEEE) in little-endian order.
// Two graphs with equal topology and identifiers fingerprint identically
// regardless of how they were loaded — built in memory, parsed from the
// text format, heap-read or memory-mapped from a .csrg file — which is
// what makes the fingerprint a cache and binding key: the `.ckpt`
// checkpoint format binds checkpoints to it (a resume against a different
// graph fails loudly), and the mdsd serving layer keys resident graphs and
// certified solutions by it, so the same content under two paths shares
// one cache line. The byte layout is frozen: changing it would orphan
// every existing checkpoint.
func Fingerprint(g *Graph) uint32 {
	h := crc32.NewIEEE()
	var scratch [64 * 1024]byte
	buf := scratch[:0]
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.N()))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(g.M()))
	for v := 0; v < g.N(); v++ {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(g.ID(v)))
		if len(buf) > len(scratch)-8 {
			h.Write(buf)
			buf = scratch[:0]
		}
	}
	h.Write(buf)
	return h.Sum32()
}

// Bytes returns the size of the CSR representation in bytes: the offsets,
// targets and ids slices exactly, whether they live on the Go heap or in a
// memory mapping. This is the residency cost a graph server accounts
// against its byte budget (and, up to the 48-byte header and CRCs, the
// .csrg file size).
func (g *Graph) Bytes() int64 {
	return int64(8*len(g.offsets) + 4*len(g.targets) + 8*len(g.ids))
}
