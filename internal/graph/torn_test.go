package graph

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// Torn-file hardening: files truncated between sections, or shrunk while a
// load is in flight, must surface ErrBadCSRG — never a panic, never a Graph
// over a partial view. (Truncation after Mmap returns is the documented
// SIGBUS hazard; these tests cover the load-time windows.)

// tornGraphBytes renders a mid-size graph into .csrg bytes.
func tornGraphBytes(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := GNPConnected(40, 0.1, 11).WriteCSRG(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestReadCSRGTornFile truncates a valid .csrg at every section boundary
// (and a few interior points) and feeds it to the heap-read path: every
// truncation must be ErrBadCSRG.
func TestReadCSRGTornFile(t *testing.T) {
	full := tornGraphBytes(t)
	n, m := int64(40), int64(0)
	{
		g, err := ReadCSRG(bytes.NewReader(full))
		if err != nil {
			t.Fatal(err)
		}
		m = int64(g.M())
	}
	offsetsEnd := int64(csrgHeaderSize) + (n+1)*8
	targetsEnd := offsetsEnd + m*8
	cuts := []int64{
		0, 7, csrgHeaderSize - 1, csrgHeaderSize,
		csrgHeaderSize + 8,
		offsetsEnd - 1, offsetsEnd,
		targetsEnd - 4, targetsEnd,
		int64(len(full)) - 1,
	}
	for _, cut := range cuts {
		if cut >= int64(len(full)) {
			continue
		}
		if _, err := ReadCSRG(bytes.NewReader(full[:cut])); !errors.Is(err, ErrBadCSRG) {
			t.Errorf("truncated at %d (of %d): err=%v, want ErrBadCSRG", cut, len(full), err)
		}
	}
}

// TestMmapTornFile writes truncated .csrg files to disk and memory-maps
// them: same contract as the heap path.
func TestMmapTornFile(t *testing.T) {
	full := tornGraphBytes(t)
	dir := t.TempDir()
	for _, cut := range []int{0, 20, csrgHeaderSize, len(full) / 2, len(full) - 1} {
		path := filepath.Join(dir, "torn.csrg")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Mmap(path); !errors.Is(err, ErrBadCSRG) {
			t.Errorf("mmap of %d/%d bytes: err=%v, want ErrBadCSRG", cut, len(full), err)
		}
	}
}

// TestLoadFaultHook: the injection point fires for both the text and csrg
// dispatch paths of Load, and clearing it restores normal behaviour.
func TestLoadFaultHook(t *testing.T) {
	full := tornGraphBytes(t)
	path := filepath.Join(t.TempDir(), "ok.csrg")
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected")
	LoadFault = func(p string) error { return boom }
	defer func() { LoadFault = nil }()
	if _, _, err := Load(path); !errors.Is(err, boom) {
		t.Fatalf("Load with fault hook: err=%v, want injected", err)
	}
	if _, err := Mmap(path); !errors.Is(err, boom) {
		t.Fatalf("Mmap with fault hook: err=%v, want injected", err)
	}
	LoadFault = nil
	g, closer, err := Load(path)
	if err != nil {
		t.Fatalf("Load after clearing hook: %v", err)
	}
	defer closer.Close()
	if g.N() != 40 {
		t.Fatalf("loaded n=%d, want 40", g.N())
	}
}
