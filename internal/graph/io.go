package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write writes g in a simple text edge-list format:
//
//	n m
//	id_0 id_1 ... id_{n-1}
//	u v        (one line per edge, node indices)
//
// The format round-trips exactly through ReadFrom. Write reports the
// first error the destination returns; because the output is buffered, an
// error from a small graph may only surface at the final flush, which is
// always checked. (For the binary zero-copy format, see WriteCSRG.)
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sw := stickyWriter{bw: bw}
	sw.printf("%d %d\n", g.N(), g.M())
	for v := 0; v < g.N(); v++ {
		if v > 0 {
			sw.writeByte(' ')
		}
		sw.writeString(strconv.FormatInt(g.ids[v], 10))
	}
	sw.writeByte('\n')
	// Edges has no early-exit, so the sticky error also serves to skip the
	// formatting work for the remaining edges once the destination failed.
	g.Edges(func(u, v int) {
		if sw.err == nil {
			sw.printf("%d %d\n", u, v)
		}
	})
	if sw.err != nil {
		return fmt.Errorf("graph: write: %w", sw.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: write: %w", err)
	}
	return nil
}

// stickyWriter funnels every Write path through one error latch, so no
// write result can be dropped: the first failure wins and all later
// operations are no-ops.
type stickyWriter struct {
	bw  *bufio.Writer
	err error
}

func (s *stickyWriter) printf(format string, args ...any) {
	if s.err == nil {
		_, s.err = fmt.Fprintf(s.bw, format, args...)
	}
}

func (s *stickyWriter) writeByte(b byte) {
	if s.err == nil {
		s.err = s.bw.WriteByte(b)
	}
}

func (s *stickyWriter) writeString(str string) {
	if s.err == nil {
		_, s.err = s.bw.WriteString(str)
	}
}

// ReadFrom parses the format produced by Write.
func ReadFrom(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	b := NewBuilder(n)
	if n > 0 {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: missing id line")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != n {
			return nil, fmt.Errorf("graph: got %d ids, want %d", len(fields), n)
		}
		ids := make([]int64, n)
		for i, f := range fields {
			id, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad id %q: %w", f, err)
			}
			ids[i] = id
		}
		if err := b.SetIDs(ids); err != nil {
			return nil, err
		}
	}
	for e := 0; e < m; e++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: missing edge %d of %d", e+1, m)
		}
		var u, v int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", sc.Text(), err)
		}
		if err := b.Add(u, v); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Graph(), nil
}
