package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write writes g in a simple text edge-list format:
//
//	n m
//	id_0 id_1 ... id_{n-1}
//	u v        (one line per edge, node indices)
//
// The format round-trips exactly through ReadFrom.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for v := 0; v < g.N(); v++ {
		if v > 0 {
			if err := bw.WriteByte(' '); err != nil {
				return err
			}
		}
		if _, err := bw.WriteString(strconv.FormatInt(g.ids[v], 10)); err != nil {
			return err
		}
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	var werr error
	g.Edges(func(u, v int) {
		if werr != nil {
			return
		}
		_, werr = fmt.Fprintf(bw, "%d %d\n", u, v)
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ReadFrom parses the format produced by WriteTo.
func ReadFrom(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty input")
	}
	var n, m int
	if _, err := fmt.Sscanf(sc.Text(), "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	b := NewBuilder(n)
	if n > 0 {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: missing id line")
		}
		fields := strings.Fields(sc.Text())
		if len(fields) != n {
			return nil, fmt.Errorf("graph: got %d ids, want %d", len(fields), n)
		}
		ids := make([]int64, n)
		for i, f := range fields {
			id, err := strconv.ParseInt(f, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad id %q: %w", f, err)
			}
			ids[i] = id
		}
		if err := b.SetIDs(ids); err != nil {
			return nil, err
		}
	}
	for e := 0; e < m; e++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("graph: missing edge %d of %d", e+1, m)
		}
		var u, v int
		if _, err := fmt.Sscanf(sc.Text(), "%d %d", &u, &v); err != nil {
			return nil, fmt.Errorf("graph: bad edge line %q: %w", sc.Text(), err)
		}
		if err := b.Add(u, v); err != nil {
			return nil, err
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Graph(), nil
}
