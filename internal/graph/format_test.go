package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the .csrg golden fixtures under testdata/ (only after a deliberate format change)")

func crc32IEEE(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// graphsEqual reports whether two graphs are identical: same node count,
// ids, and neighbour rows.
func graphsEqual(a, b *Graph) bool {
	if a.N() != b.N() || a.M() != b.M() {
		return false
	}
	for v := 0; v < a.N(); v++ {
		if a.ID(v) != b.ID(v) {
			return false
		}
		na, nb := a.Neighbors(v), b.Neighbors(v)
		if len(na) != len(nb) {
			return false
		}
		for i := range na {
			if na[i] != nb[i] {
				return false
			}
		}
	}
	return true
}

// formatCorpus is the graph set every representation test runs over:
// degenerate shapes (empty, single, no-edge), structured and random
// families.
func formatCorpus() []struct {
	name string
	g    *Graph
} {
	return []struct {
		name string
		g    *Graph
	}{
		{"empty", NewBuilder(0).Graph()},
		{"single", Path(1)},
		{"edgeless5", NewBuilder(5).Graph()},
		{"path7", Path(7)},
		{"cycle9", Cycle(9)},
		{"star6", Star(6)},
		{"grid4x5", Grid(4, 5)},
		{"complete6", Complete(6)},
		{"gnp40", GNPConnected(40, 0.1, 3)},
		{"ba64", BarabasiAlbert(64, 3, 5)},
		{"uforest50", UnionForests(50, 3, 7)},
		{"disconnected", GNP(30, 0.05, 11)},
	}
}

func TestCSRGRoundTrip(t *testing.T) {
	for _, tc := range formatCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := tc.g.WriteCSRG(&buf); err != nil {
				t.Fatalf("WriteCSRG: %v", err)
			}
			got, err := ReadCSRG(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadCSRG: %v", err)
			}
			if !graphsEqual(tc.g, got) {
				t.Errorf("round trip changed the graph: %v -> %v", tc.g, got)
			}
		})
	}
}

func TestCSRGMmapRoundTrip(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range formatCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, tc.name+".csrg")
			if err := tc.g.WriteCSRGFile(path); err != nil {
				t.Fatalf("WriteCSRGFile: %v", err)
			}
			mg, err := Mmap(path)
			if err != nil {
				t.Fatalf("Mmap: %v", err)
			}
			defer mg.Close()
			if !graphsEqual(tc.g, mg.Graph) {
				t.Errorf("mmap changed the graph: %v -> %v", tc.g, mg.Graph)
			}
			// The mapped graph must behave like a built one on read paths
			// that slice rows and run searches.
			if mg.MaxDegree() != tc.g.MaxDegree() {
				t.Errorf("MaxDegree: %d != %d", mg.MaxDegree(), tc.g.MaxDegree())
			}
			if tc.g.N() > 0 {
				da, _ := tc.g.BFS(0)
				db, _ := mg.BFS(0)
				for v := range da {
					if da[v] != db[v] {
						t.Fatalf("BFS dist diverges at %d", v)
					}
				}
			}
			if err := mg.Close(); err != nil {
				t.Errorf("Close: %v", err)
			}
			if err := mg.Close(); err != nil {
				t.Errorf("second Close: %v", err)
			}
		})
	}
}

// TestCSRGMatchesTextFormat pins representation equivalence: the same
// graph routed through the binary write→map path and through the text
// Write→ReadFrom path must be identical.
func TestCSRGMatchesTextFormat(t *testing.T) {
	dir := t.TempDir()
	for _, tc := range formatCorpus() {
		t.Run(tc.name, func(t *testing.T) {
			var text bytes.Buffer
			if err := tc.g.Write(&text); err != nil {
				t.Fatalf("Write: %v", err)
			}
			fromText, err := ReadFrom(&text)
			if err != nil {
				t.Fatalf("ReadFrom: %v", err)
			}
			path := filepath.Join(dir, tc.name+".csrg")
			if err := tc.g.WriteCSRGFile(path); err != nil {
				t.Fatal(err)
			}
			mg, err := Mmap(path)
			if err != nil {
				t.Fatal(err)
			}
			defer mg.Close()
			if !graphsEqual(fromText, mg.Graph) {
				t.Errorf("text and binary representations diverge for %s", tc.name)
			}
		})
	}
}

// TestCSRGGoldenFiles pins the writer's output byte-for-byte against
// committed fixtures, so the format cannot drift silently across PRs. To
// regenerate after a deliberate format change (bump csrgVersion!):
//
//	go test ./internal/graph -run TestCSRGGoldenFiles -update-golden
func TestCSRGGoldenFiles(t *testing.T) {
	for _, tc := range []struct {
		file string
		g    *Graph
	}{
		{"path5.csrg", Path(5)},
		{"gnp16.csrg", GNPConnected(16, 0.5, 1)},
	} {
		t.Run(tc.file, func(t *testing.T) {
			path := filepath.Join("testdata", tc.file)
			var buf bytes.Buffer
			if err := tc.g.WriteCSRG(&buf); err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("writer output diverges from golden %s (%d vs %d bytes): the on-disk format changed", tc.file, buf.Len(), len(want))
			}
			// The fixture must also load back into the generator's graph.
			mg, err := Mmap(path)
			if err != nil {
				t.Fatalf("Mmap golden: %v", err)
			}
			defer mg.Close()
			if !graphsEqual(tc.g, mg.Graph) {
				t.Errorf("golden %s does not decode to its generator graph", tc.file)
			}
		})
	}
}

// corruptCSRG returns a valid encoding of a small graph with mutate
// applied, for decoder error-path tests.
func corruptCSRG(t *testing.T, mutate func([]byte) []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := GNPConnected(12, 0.4, 2).WriteCSRG(&buf); err != nil {
		t.Fatal(err)
	}
	return mutate(buf.Bytes())
}

func TestCSRGDecodeErrors(t *testing.T) {
	reCRC := func(b []byte) []byte {
		// Refresh section + header CRCs so structural mutations are
		// exercised instead of being caught by the checksum layer.
		n := binary.LittleEndian.Uint64(b[16:24])
		offEnd := csrgHeaderSize + (int(n)+1)*8
		m := binary.LittleEndian.Uint64(b[24:32])
		tgtEnd := offEnd + int(m)*8
		for i, section := range [][]byte{b[csrgHeaderSize:offEnd], b[offEnd:tgtEnd], b[tgtEnd:]} {
			binary.LittleEndian.PutUint32(b[32+4*i:], crc32IEEE(section))
		}
		binary.LittleEndian.PutUint32(b[44:48], crc32IEEE(b[:44]))
		return b
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"truncated-header", func(b []byte) []byte { return b[:20] }},
		{"bad-magic", func(b []byte) []byte { b[0] = 'X'; return reCRC(b) }},
		{"bad-version", func(b []byte) []byte { b[8] = 99; return reCRC(b) }},
		{"nonzero-flags", func(b []byte) []byte { b[12] = 1; return reCRC(b) }},
		{"truncated-body", func(b []byte) []byte { return b[:len(b)-8] }},
		{"trailing-garbage", func(b []byte) []byte { return append(b, 0, 0, 0, 0, 0, 0, 0, 0) }},
		{"section-crc-flip", func(b []byte) []byte { b[csrgHeaderSize] ^= 0xff; return b }},
		{"header-crc-flip", func(b []byte) []byte { b[17] ^= 0xff; return b }},
		{"offsets-not-zero", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[csrgHeaderSize:], 1)
			return reCRC(b)
		}},
		{"offsets-huge", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[csrgHeaderSize+8:], 1<<40)
			return reCRC(b)
		}},
		{"self-loop", func(b []byte) []byte {
			n := binary.LittleEndian.Uint64(b[16:24])
			tgt := csrgHeaderSize + (int(n)+1)*8
			// First row belongs to node 0; make its first target 0.
			binary.LittleEndian.PutUint32(b[tgt:], 0)
			return reCRC(b)
		}},
		{"target-out-of-range", func(b []byte) []byte {
			n := binary.LittleEndian.Uint64(b[16:24])
			tgt := csrgHeaderSize + (int(n)+1)*8
			binary.LittleEndian.PutUint32(b[tgt:], uint32(n))
			return reCRC(b)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := corruptCSRG(t, tc.mutate)
			g, err := ReadCSRG(bytes.NewReader(data))
			if err == nil {
				t.Fatalf("decoder accepted corrupt input (%v)", g)
			}
			if !errors.Is(err, ErrBadCSRG) {
				t.Errorf("error %v does not wrap ErrBadCSRG", err)
			}
		})
	}
}

func TestMmapErrors(t *testing.T) {
	if _, err := Mmap(filepath.Join(t.TempDir(), "missing.csrg")); err == nil {
		t.Error("Mmap of a missing file succeeded")
	}
	short := filepath.Join(t.TempDir(), "short.csrg")
	if err := os.WriteFile(short, []byte("CSRG"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Mmap(short); !errors.Is(err, ErrBadCSRG) {
		t.Errorf("Mmap of a truncated file: err=%v, want ErrBadCSRG", err)
	}
}

func TestLoadDispatchesOnExtension(t *testing.T) {
	g := GNPConnected(25, 0.2, 4)
	dir := t.TempDir()

	bin := filepath.Join(dir, "g.csrg")
	if err := g.WriteCSRGFile(bin); err != nil {
		t.Fatal(err)
	}
	text := filepath.Join(dir, "g.txt")
	f, err := os.Create(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{bin, text} {
		got, closer, err := Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		if !graphsEqual(g, got) {
			t.Errorf("Load(%s) changed the graph", path)
		}
		if err := closer.Close(); err != nil {
			t.Errorf("Close(%s): %v", path, err)
		}
	}
}
