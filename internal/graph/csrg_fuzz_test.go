package graph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
)

// FuzzCSRGDecode hammers the .csrg decoder with arbitrary bytes: it must
// either return an error wrapping ErrBadCSRG (or a read error) or produce
// a graph whose invariants hold — never panic, and never alias garbage
// into a Graph whose methods could then crash. Seeds cover every corrupt
// class the decoder distinguishes: truncation, bad magic, misaligned
// sizes, offsets[n] ≠ 2m, unsorted targets, checksum mismatch.
func FuzzCSRGDecode(f *testing.F) {
	seed := func(g *Graph, mutate func([]byte) []byte) {
		var buf bytes.Buffer
		if err := g.WriteCSRG(&buf); err != nil {
			f.Fatal(err)
		}
		b := buf.Bytes()
		if mutate != nil {
			b = mutate(b)
		}
		f.Add(b)
	}
	ident := func(b []byte) []byte { return b }
	seed(NewBuilder(0).Graph(), ident)
	seed(Path(5), ident)
	seed(GNPConnected(16, 0.5, 1), ident)
	seed(Star(9), ident)
	// Truncated header.
	seed(Path(5), func(b []byte) []byte { return b[:17] })
	// Bad magic.
	seed(Path(5), func(b []byte) []byte { b[3] = 'X'; return b })
	// Misaligned / short section bytes.
	seed(Grid(3, 3), func(b []byte) []byte { return b[:len(b)-3] })
	// offsets[n] ≠ 2m: halve the edge count in the header.
	seed(Cycle(8), func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[24:32], 4)
		return b
	})
	// Non-sorted targets: swap node 0's first two neighbours.
	seed(Star(9), func(b []byte) []byte {
		n := binary.LittleEndian.Uint64(b[16:24])
		tgt := csrgHeaderSize + (int(n)+1)*8
		a := binary.LittleEndian.Uint32(b[tgt:])
		binary.LittleEndian.PutUint32(b[tgt:], binary.LittleEndian.Uint32(b[tgt+4:]))
		binary.LittleEndian.PutUint32(b[tgt+4:], a)
		return b
	})
	// CRC mismatch: flip a payload byte, keep the stored checksums.
	seed(Path(7), func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	// Header lies about n (huge allocation bait).
	seed(Path(3), func(b []byte) []byte {
		binary.LittleEndian.PutUint64(b[16:24], 1<<62)
		return b
	})

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadCSRG(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadCSRG) {
				t.Fatalf("decode error %v does not wrap ErrBadCSRG", err)
			}
			return
		}
		// Accepted input: the graph must be safe to traverse. Exercise the
		// paths that would fault on aliased garbage.
		if g.M() < 0 || g.N() < 0 {
			t.Fatalf("negative sizes: %v", g)
		}
		g.MaxDegree()
		edges := 0
		g.Edges(func(u, v int) {
			edges++
			if !g.HasEdge(u, v) || !g.HasEdge(v, u) {
				t.Fatalf("edge {%d,%d} not symmetric", u, v)
			}
		})
		if edges != g.M() {
			t.Fatalf("Edges visited %d, M()=%d", edges, g.M())
		}
		if g.N() > 0 {
			g.BFS(0)
		}
		// And it must re-encode to an identical byte stream: decode is the
		// writer's inverse on every accepted file.
		var buf bytes.Buffer
		if err := g.WriteCSRG(&buf); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), data) {
			t.Fatalf("accepted file does not re-encode byte-identically (%d vs %d bytes)", buf.Len(), len(data))
		}
	})
}
