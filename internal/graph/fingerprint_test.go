package graph

import (
	"path/filepath"
	"testing"
)

// TestFingerprintRepresentationIndependent pins the property the serving
// layer's cache key rests on: the same content fingerprints identically
// whether the graph was built in memory, heap-read from a .csrg stream, or
// memory-mapped from a .csrg file.
func TestFingerprintRepresentationIndependent(t *testing.T) {
	g := GNPConnected(60, 0.1, 7)
	want := Fingerprint(g)

	path := filepath.Join(t.TempDir(), "g.csrg")
	if err := g.WriteCSRGFile(path); err != nil {
		t.Fatal(err)
	}

	heap, closer, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	defer closer.Close()
	if got := Fingerprint(heap); got != want {
		t.Errorf(".csrg Load fingerprint %#08x != built %#08x", got, want)
	}

	if got := Fingerprint(g.Clone()); got != want {
		t.Errorf("Clone fingerprint %#08x != built %#08x", got, want)
	}
}

// TestFingerprintSensitivity: any change to topology or identifiers must
// change the fingerprint (with overwhelming probability for CRC-32; these
// specific perturbations are pinned).
func TestFingerprintSensitivity(t *testing.T) {
	base := Path(10)
	fp := Fingerprint(base)

	// Same node count, one more edge.
	b := NewBuilder(10)
	base.Edges(func(u, v int) { b.Add(u, v) })
	if err := b.Add(0, 9); err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(b.Graph()); got == fp {
		t.Error("adding an edge did not change the fingerprint")
	}

	// Same topology, permuted identifiers.
	b2 := NewBuilder(10)
	base.Edges(func(u, v int) { b2.Add(u, v) })
	ids := append([]int64(nil), base.IDs()...)
	ids[0], ids[1] = ids[1], ids[0]
	if err := b2.SetIDs(ids); err != nil {
		t.Fatal(err)
	}
	if got := Fingerprint(b2.Graph()); got == fp {
		t.Error("permuting ids did not change the fingerprint")
	}

	// Different node count.
	if got := Fingerprint(Path(11)); got == fp {
		t.Error("changing n did not change the fingerprint")
	}
}

// TestBytesAccountsCSRSlices pins the byte accounting formula against the
// CSR layout: 8(n+1) offsets + 4·2m targets + 8n ids.
func TestBytesAccountsCSRSlices(t *testing.T) {
	cases := []struct {
		g    *Graph
		want int64
	}{
		{&Graph{}, 0}, // zero value: no offsets slice at all
		{Path(1), 8*2 + 0 + 8*1},
		{Path(5), 8*6 + 4*8 + 8*5},
		{GNPConnected(40, 0.2, 3), 0}, // computed below
	}
	for i, c := range cases {
		want := c.want
		if want == 0 && c.g.N() > 0 {
			want = int64(8*(c.g.N()+1) + 4*2*c.g.M() + 8*c.g.N())
		}
		if got := c.g.Bytes(); got != want {
			t.Errorf("case %d: Bytes() = %d, want %d", i, got, want)
		}
	}
}
