package congest_test

import (
	"fmt"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// floodExample is the worked StepProgram from the package documentation: a
// flood from node 0 that records every node's hop distance.
type floodExample struct {
	my     int
	rounds int
	dist   []int
}

func (f *floodExample) Init(nd *congest.Node) bool {
	f.my = -1
	if nd.V() == 0 {
		f.my = 0
		nd.Broadcast([]byte{1})
	}
	return false
}

func (f *floodExample) Step(nd *congest.Node, r int, in []congest.Incoming) bool {
	if f.my < 0 && len(in) > 0 {
		f.my = r + 1
	}
	if r+1 >= f.rounds {
		f.dist[nd.V()] = f.my
		return true
	}
	if f.my == r+1 {
		nd.Broadcast([]byte{1})
	}
	return false
}

// ExampleNetwork_RunStepped runs a StepProgram natively on the stackless
// stepped engine; the same factory produces identical results and metrics
// on the goroutine and sharded engines via the blocking adapter.
func ExampleNetwork_RunStepped() {
	g := graph.Path(4)
	dist := make([]int, g.N())
	net := congest.NewNetwork(g, congest.Config{Engine: congest.EngineStepped})
	m, err := net.RunStepped(func(nd *congest.Node) congest.StepProgram {
		return &floodExample{rounds: 3, dist: dist}
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("distances:", dist)
	fmt.Println("rounds:", m.Rounds)
	// Output:
	// distances: [0 1 2 3]
	// rounds: 3
}
