package congest

import (
	"errors"
	"fmt"
	"time"
)

// Failure sentinels added by the robustness layer. Together with
// ErrBandwidth and ErrMaxRounds (congest.go) they form the complete
// sentinel taxonomy; SentinelClass maps any run error onto it.
var (
	// ErrDeadline is returned when a run exceeds Config.Deadline or its
	// Config.Ctx is cancelled. The check runs at every round boundary, so a
	// run never outlives its deadline by more than the round in progress
	// (per-round granularity: a Step that never returns cannot be preempted
	// cooperatively).
	ErrDeadline = errors.New("congest: deadline exceeded")
	// ErrInjected is returned when an injected infrastructure fault
	// (internal/chaos: arena exhaustion, I/O failure, ...) aborts a run.
	ErrInjected = errors.New("congest: injected fault")
)

// Hooks intercepts engine events for fault injection (see internal/chaos).
// All three engines call each hook at semantically identical points, so a
// deterministic implementation yields byte-identical outcomes — outputs,
// sentinel class and Metrics — on every engine and in both program forms;
// the conformance suite enforces exactly that.
//
// Hooks are called concurrently from engine workers and node goroutines;
// implementations must be safe for concurrent use (read-only state, as in
// chaos.Plan, is the intended shape). The compute-opportunity counter op
// numbers a node's chances to run code: op 0 is Init (the code before the
// first Sync), op r ≥ 1 is Step(round r-1) (the code after the r-th Sync).
type Hooks interface {
	// Crash reports whether node v crash-stops at compute opportunity op.
	// A crashed node behaves exactly as if its program returned done at the
	// start of that opportunity with an empty outbox: it falls silent, its
	// queued sends for the opportunity are discarded, and the run otherwise
	// continues (a crash is not a run failure).
	Crash(v, op int) bool
	// AlterPayload may replace the payload node v sends on port during
	// compute opportunity op. It runs after empty-payload canonicalization
	// and before the bandwidth check, so a payload grown past the budget
	// fails with ErrBandwidth identically on every engine. The returned
	// slice must not alias mutated caller memory (copy before corrupting).
	AlterPayload(v, port, op int, payload []byte) []byte
	// RoundEnd runs at the delivery point of the given round (1-based),
	// single-threaded on every engine. A non-nil error aborts the run with
	// that error; wrap ErrInjected or ErrDeadline to stay inside the
	// sentinel taxonomy.
	RoundEnd(round int) error
	// Stall may delay the caller (timing-only; it must not change any
	// outcome — the conformance suite diffs stalled runs against unstalled
	// engines). The blocking engines call it at the delivery point; the
	// stepped engine calls it from the worker that claims the first chunk
	// of the sweep, perturbing the work-stealing schedule.
	Stall(round int)
}

// SentinelClass maps a run error onto the sentinel taxonomy: "bandwidth",
// "max-rounds", "deadline", "injected", "bad-ckpt", "config" (caller
// misuse — the run never started), "" for nil, and "program" for
// everything else (a program panic or its own error). The conformance
// suite requires failed runs to agree on this class across engines, and
// the CLIs print it so exit statuses stay diagnosable.
func SentinelClass(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ErrBandwidth):
		return "bandwidth"
	case errors.Is(err, ErrMaxRounds):
		return "max-rounds"
	case errors.Is(err, ErrDeadline):
		return "deadline"
	case errors.Is(err, ErrInjected):
		return "injected"
	case errors.Is(err, ErrBadCkpt):
		return "bad-ckpt"
	case errors.Is(err, ErrConfig):
		return "config"
	default:
		return "program"
	}
}

// runDeadline resolves Config.Deadline into an absolute wall-clock instant
// at run start (zero when unset). Engines capture it once so every round
// check compares against the same instant.
func (net *Network) runDeadline() time.Time {
	if net.cfg.Deadline <= 0 {
		return time.Time{}
	}
	//detlint:allow nondet Deadline is wall-clock by contract (docs/ARCHITECTURE.md#static-guarantees, TestDeadlineEnforced)
	return time.Now().Add(net.cfg.Deadline)
}

// checkRound is the shared round-boundary stop check, called by all three
// engines at their delivery point after incrementing the round counter. The
// check order — MaxRounds, injected round faults, context cancellation,
// wall-clock deadline — is fixed so engines agree on the sentinel when
// several conditions hold at once. The first two are deterministic; the
// last two depend on wall clock by design, but still produce the same
// sentinel class wherever they fire.
func (net *Network) checkRound(round int, deadline time.Time) error {
	if round > net.cfg.MaxRounds {
		return fmt.Errorf("%w (%d)", ErrMaxRounds, net.cfg.MaxRounds)
	}
	if h := net.cfg.Hooks; h != nil {
		if err := h.RoundEnd(round); err != nil {
			return err
		}
	}
	if ctx := net.cfg.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("%w: %v", ErrDeadline, err)
		}
	}
	//detlint:allow nondet Deadline is wall-clock by contract (docs/ARCHITECTURE.md#static-guarantees, TestDeadlineEnforced)
	if !deadline.IsZero() && time.Now().After(deadline) {
		return fmt.Errorf("%w: run exceeded %v at round %d", ErrDeadline, net.cfg.Deadline, round)
	}
	return nil
}

// crashStop is the panic value Sync throws when a hook crash-stops a node
// mid-program; recoverNode treats it as a normal return, not a failure.
type crashStop struct{}

// runProg starts a blocking program on node v, honouring a crash at compute
// opportunity 0 (the node never runs). Both goroutine-per-node engines
// launch programs through this wrapper.
func runProg(nd *Node, prog Program) {
	if h := nd.net.cfg.Hooks; h != nil && h.Crash(nd.v, 0) {
		return
	}
	prog(nd)
}
