package congest

import (
	"fmt"
	"math/bits"
)

// Observer receives per-round telemetry from a run (see Config.Observer).
// It is the read-only twin of Hooks: the engines call it at semantically
// identical points, but unlike a Hooks implementation an Observer can never
// change an outcome — it has no return values, and the conformance suite
// (internal/congest/conformance) proves that attaching one leaves outputs,
// metrics and sentinel classes byte-identical across all engines and
// program forms. Telemetry observes the run; it never participates in it.
//
// The engines are deterministic packages (no wall-clock reads, see
// docs/ARCHITECTURE.md#static-guarantees), so callbacks carry counters and
// positions only; the observer side (internal/obs) timestamps them on
// receipt. RoundStart and RoundEnd are serialized per run — the engines
// call them from their single-threaded delivery points — while Event may
// arrive concurrently from engine workers, so implementations must be safe
// for concurrent use. Production runs leave Config.Observer nil; the nil
// check is the only cost on the hot paths.
type Observer interface {
	// RoundStart announces that the compute of the given round (1-based)
	// is beginning: the engines emit it just before the sweep or barrier
	// interval whose deposits the round's delivery will carry. A trailing
	// RoundStart with no matching RoundEnd means the run ended during that
	// compute (all nodes finished, or the run failed before delivery).
	RoundStart(round int)
	// RoundEnd reports the delivery of the given round. It fires exactly
	// when the engine's round counter advances, so on every engine and
	// every outcome — failed runs included — the number of RoundEnd calls
	// equals the run's Metrics.Rounds.
	RoundEnd(s RoundStats)
	// Event reports an engine- or fault-specific occurrence (see
	// EventKind). Events may be emitted concurrently by engine workers;
	// Round is -1 when the emitter cannot read the round counter without
	// synchronizing (the observer attributes it to the round in progress).
	Event(e Event)
}

// RoundStats is the snapshot RoundEnd delivers. Traffic counters are
// cumulative over the run (the observer side takes deltas), taken at the
// delivery point, so the final RoundEnd of a healthy run carries exactly
// the run's Metrics traffic. Live is the engine's count of nodes still
// participating at the delivery and is the one engine-flavoured field: the
// goroutine and sharded engines count nodes whose programs have not
// returned, the stepped engine counts nodes whose last Step returned
// not-done — equal in steady state, but a node that returns right after
// its last Sync is counted by the former and not the latter.
type RoundStats struct {
	Round      int     // the round just delivered (1-based)
	Live       int     // nodes still participating after the delivery
	Messages   int64   // cumulative messages deposited
	Bits       int64   // cumulative payload bits deposited
	MaxMsgBits int     // largest single message so far
	Hist       MsgHist // cumulative message-size histogram
}

// MsgHist is a power-of-two histogram of message payload sizes in bits:
// bucket 0 counts empty messages, bucket k ≥ 1 counts payloads of
// [2^(k-1), 2^k) bits, and the last bucket absorbs everything larger.
// CONGEST payloads are O(log n) bits, so the top buckets stay empty except
// under LOCAL-model runs.
type MsgHist [16]int64

// observe counts one message of the given payload length in bytes.
func (h *MsgHist) observe(payloadBytes int) {
	b := bits.Len(uint(payloadBytes) * 8)
	if b >= len(h) {
		b = len(h) - 1
	}
	h[b]++
}

// Merge adds other's counts into h.
func (h *MsgHist) Merge(other MsgHist) {
	for i, c := range other {
		h[i] += c
	}
}

// Total returns the number of messages counted.
func (h MsgHist) Total() int64 {
	var t int64
	for _, c := range h {
		t += c
	}
	return t
}

// BucketLabel renders bucket i's payload-bit range ("0", "1", "2-3",
// "8-15", "≥16384") for profile tables.
func BucketLabel(i int) string {
	switch {
	case i == 0:
		return "0"
	case i == 1:
		return "1"
	case i == len(MsgHist{})-1:
		return fmt.Sprintf("≥%d", 1<<(i-1))
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}

// EventKind enumerates the engine- and fault-specific Event classes.
type EventKind int

// Event kinds. Each engine emits its own scheduler events; EvFault comes
// from the fault injector (chaos.Plan.WithObserver) and EvCkpt from the
// checkpointing stepped driver.
const (
	// EvFault: an injected fault fired (Node = the faulted node or -1 for
	// round faults; Detail names the fault).
	EvFault EventKind = iota + 1
	// EvCkpt: the stepped driver wrote a checkpoint at round Round.
	EvCkpt
	// EvArena: stepped engine, per round — Value is the total slot-arena
	// bytes deposited during the round's sweep (summed over chunks); the
	// run's high-water mark is the max over rounds.
	EvArena
	// EvSweepStart: stepped engine — worker Node began the sweep of round
	// Round. The observer's receipt timestamps of the start/end pair are
	// the worker's busy span (one Chrome-trace lane per worker).
	EvSweepStart
	// EvSweepEnd: stepped engine — worker Node finished its sweep of round
	// Round after claiming Value chunks (the per-worker steal count; the
	// spread across workers shows how uneven the round's work was).
	EvSweepEnd
	// EvShardArrive: sharded engine — barrier shard Node became full (its
	// last node arrived). The gap between a shard's arrival stamp and the
	// round's delivery stamp is that shard's barrier wait. Round is -1:
	// the emitter is outside the engine's locks.
	EvShardArrive
	// EvWake: goroutine engine, per round — Value is the number of parked
	// node goroutines the delivery woke (the condvar pressure the sharded
	// engine's per-shard channels were built to shed).
	EvWake
)

// String returns the kind's JSONL/profile tag.
func (k EventKind) String() string {
	switch k {
	case EvFault:
		return "fault"
	case EvCkpt:
		return "ckpt"
	case EvArena:
		return "arena"
	case EvSweepStart:
		return "sweep-start"
	case EvSweepEnd:
		return "sweep-end"
	case EvShardArrive:
		return "shard-arrive"
	case EvWake:
		return "wake"
	}
	return fmt.Sprintf("EventKind(%d)", int(k))
}

// Event is one engine occurrence delivered to Observer.Event.
type Event struct {
	Kind   EventKind
	Round  int    // round the event belongs to; -1 = the round in progress
	Node   int    // node, worker or shard index; -1 when not applicable
	Value  int64  // kind-specific magnitude (bytes, chunks, goroutines)
	Detail string // kind-specific description (fault rendering); usually empty
}
