package congest

// Checkpoint/resume for the stepped engine: the .ckpt format.
//
// A checkpoint captures everything a round boundary carries forward —
// round counter, the live set, per-node StepProgram state, the pending
// message records with their payload bytes, accumulated metrics, and an
// optional host-state blob for the program's shared outputs — so a run
// killed at any point can resume from the last boundary and finish
// byte-identically to an uninterrupted run (outputs, Metrics and ledger
// alike; the conformance suite enforces it).
//
// Layout (same guard structure as the .csrg graph format: little-endian,
// CRC-32/IEEE over the body, then over the header itself):
//
//	offset  size  field
//	0       8     magic "CKPT\r\n\x1a\n"
//	8       4     version (currently 1)
//	12      4     flags (0)
//	16      4     CRC-32 of the body
//	20      4     CRC-32 of bytes 0..20 (header self-check)
//	24      ...   body
//
// The body is a varint stream (canonical: DecodeCkpt re-encodes and
// requires byte equality, so overlong varints and other non-canonical
// spellings are rejected):
//
//	n, m, fingerprint            graph identity (fp = CRC-32 of n, m, IDs)
//	round, chunkSize             boundary round (≥ 1) and chunk geometry
//	messages, bits, maxMsgBits   metrics accumulated so far
//	liveCount, live[]            live node indices (first, then gaps ≥ 1)
//	states[]                     per-live-node blob (len-prefixed), in order
//	pendingCount, pending[]      undelivered slot records: slot indices
//	                             (first, then gaps ≥ 1) each followed by a
//	                             len-prefixed payload
//	hasHost, host                optional len-prefixed host-state blob
//
// Only records addressed to live nodes are serialized: they are exactly the
// records the resumed run can ever read (records addressed to finished
// nodes are dead state in a running engine too).
//
// Every decoding failure wraps ErrBadCkpt. Writes are atomic
// (temp-file-and-rename), so a crash mid-write leaves the previous
// checkpoint intact.

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
)

// ErrBadCkpt is wrapped by every error reporting a structurally invalid
// .ckpt file, and by resume failures caused by a checkpoint that does not
// match the graph or program it is replayed against.
var ErrBadCkpt = errors.New("congest: invalid .ckpt file")

// badCkpt builds an ErrBadCkpt-wrapping error.
func badCkpt(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadCkpt, fmt.Sprintf(format, args...))
}

// CkptStep is a StepProgram whose per-node state can be checkpointed.
// AppendState appends a self-contained encoding of the node's state;
// RestoreState must reconstruct exactly that state from it (on a freshly
// factory-built program, before any Init/Step call — Init is never re-run
// on resume) and must reject malformed input with an error, never a panic:
// checkpoint files cross a process boundary and get the same distrust as
// any other input (see FuzzCkptDecode).
type CkptStep interface {
	StepProgram
	AppendState(buf []byte) []byte
	RestoreState(data []byte) error
}

// HostState checkpoints the host-side shared state a program family keeps
// outside its per-node structs — typically the output slices nodes write
// to disjoint indices, which must survive a resume even for nodes that
// finished before the checkpoint (finished nodes carry no per-node state).
type HostState interface {
	AppendHost(buf []byte) []byte
	RestoreHost(data []byte) error
}

// CkptSpec configures a checkpointed stepped run.
type CkptSpec struct {
	// Path is the checkpoint file. If it exists when the run starts, the
	// run resumes from it; otherwise the run starts fresh and creates it
	// at the first eligible boundary.
	Path string
	// Every is the checkpoint cadence in rounds (a checkpoint is written
	// at every round boundary r with r % Every == 0).
	Every int
	// Host, when non-nil, is included in (and restored from) every
	// checkpoint. A checkpoint written with host state can only be resumed
	// with a Host receiver, and vice versa.
	Host HostState
}

// RunSteppedCkpt is RunStepped with checkpoint/resume: the run writes a
// checkpoint of all engine and program state every spec.Every round
// boundaries, and — when spec.Path already exists — resumes from it instead
// of starting fresh. A resumed run (same graph, same factory, same host
// state) finishes with byte-identical outputs, Metrics and error to an
// uninterrupted run; a checkpoint from a different graph or a corrupted
// file fails with ErrBadCkpt. Checkpointing is a stepped-engine feature:
// every program built by f must implement CkptStep, and the Network must
// use EngineStepped (blocking goroutine stacks cannot be serialized).
func (net *Network) RunSteppedCkpt(f StepFactory, spec CkptSpec) (Metrics, error) {
	if net.cfg.Engine != EngineStepped {
		return Metrics{}, fmt.Errorf("%w: checkpointing requires EngineStepped (Config.Engine is %v)", ErrConfig, net.cfg.Engine)
	}
	if spec.Path == "" {
		return Metrics{}, fmt.Errorf("%w: CkptSpec.Path must be set", ErrConfig)
	}
	if spec.Every < 1 {
		return Metrics{}, fmt.Errorf("%w: CkptSpec.Every must be ≥ 1 (got %d)", ErrConfig, spec.Every)
	}
	return net.runSteppedCkpt(f, spec)
}

// Ckpt is the decoded form of a .ckpt file. States and Payloads run
// parallel to Live and Slots respectively.
type Ckpt struct {
	N, M       int64  // graph size the checkpoint belongs to
	FP         uint32 // graph fingerprint (n, m, IDs)
	Round      int    // boundary round, ≥ 1
	ChunkSize  int    // node→chunk geometry of the checkpointed run
	Messages   int64  // metrics accumulated up to Round
	Bits       int64
	MaxMsgBits int
	Live       []int32  // live node indices, strictly ascending
	States     [][]byte // per-live-node program state
	Slots      []int32  // pending message slots, strictly ascending
	Payloads   [][]byte // pending payloads (nil = present-but-empty)
	HasHost    bool
	Host       []byte
}

const (
	ckptMagic      = "CKPT\r\n\x1a\n"
	ckptVersion    = 1
	ckptHeaderSize = 24
)

// appendBody serializes the body fields (everything after the header).
func (c *Ckpt) appendBody(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(c.N))
	buf = binary.AppendUvarint(buf, uint64(c.M))
	buf = binary.AppendUvarint(buf, uint64(c.FP))
	buf = binary.AppendUvarint(buf, uint64(c.Round))
	buf = binary.AppendUvarint(buf, uint64(c.ChunkSize))
	buf = binary.AppendUvarint(buf, uint64(c.Messages))
	buf = binary.AppendUvarint(buf, uint64(c.Bits))
	buf = binary.AppendUvarint(buf, uint64(c.MaxMsgBits))
	buf = binary.AppendUvarint(buf, uint64(len(c.Live)))
	prev := int32(-1)
	for _, v := range c.Live {
		if prev < 0 {
			buf = binary.AppendUvarint(buf, uint64(v))
		} else {
			buf = binary.AppendUvarint(buf, uint64(v-prev))
		}
		prev = v
	}
	for _, st := range c.States {
		buf = binary.AppendUvarint(buf, uint64(len(st)))
		buf = append(buf, st...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.Slots)))
	prev = -1
	for i, s := range c.Slots {
		if prev < 0 {
			buf = binary.AppendUvarint(buf, uint64(s))
		} else {
			buf = binary.AppendUvarint(buf, uint64(s-prev))
		}
		prev = s
		buf = binary.AppendUvarint(buf, uint64(len(c.Payloads[i])))
		buf = append(buf, c.Payloads[i]...)
	}
	if c.HasHost {
		buf = binary.AppendUvarint(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(c.Host)))
		buf = append(buf, c.Host...)
	} else {
		buf = binary.AppendUvarint(buf, 0)
	}
	return buf
}

// Encode serializes the checkpoint into the .ckpt wire format.
func (c *Ckpt) Encode() []byte {
	body := c.appendBody(make([]byte, 0, 1024))
	out := make([]byte, ckptHeaderSize, ckptHeaderSize+len(body))
	copy(out, ckptMagic)
	binary.LittleEndian.PutUint32(out[8:], ckptVersion)
	binary.LittleEndian.PutUint32(out[12:], 0)
	binary.LittleEndian.PutUint32(out[16:], crc32.ChecksumIEEE(body))
	binary.LittleEndian.PutUint32(out[20:], crc32.ChecksumIEEE(out[:20]))
	return append(out, body...)
}

// ckptReader is a bounds-checked cursor over the body; the first failure
// latches and every later read is a no-op.
type ckptReader struct {
	data []byte
	off  int
	err  error
}

func (r *ckptReader) uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	x, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.err = badCkpt("truncated or malformed varint (%s) at offset %d", field, r.off)
		return 0
	}
	r.off += n
	return x
}

// count reads a collection length and rejects values that cannot possibly
// fit in the remaining bytes (each element costs ≥ minBytes), so a
// corrupted length cannot bait a giant allocation before the CRC… the CRC
// already ran, but defense in depth is cheap and keeps hand-built inputs
// from doing it either.
func (r *ckptReader) count(field string, minBytes int) int {
	x := r.uvarint(field)
	if r.err != nil {
		return 0
	}
	if limit := uint64(len(r.data)-r.off) / uint64(minBytes); x > limit {
		r.err = badCkpt("%s count %d exceeds what %d remaining bytes can hold", field, x, len(r.data)-r.off)
		return 0
	}
	return int(x)
}

func (r *ckptReader) bytes(field string) []byte {
	ln := r.uvarint(field + " length")
	if r.err != nil {
		return nil
	}
	if ln > uint64(len(r.data)-r.off) {
		r.err = badCkpt("%s of %d bytes overruns the body (%d left)", field, ln, len(r.data)-r.off)
		return nil
	}
	b := r.data[r.off : r.off+int(ln)]
	r.off += int(ln)
	return b
}

// DecodeCkpt parses and validates a .ckpt file. Every failure wraps
// ErrBadCkpt. Beyond the CRCs, decoding enforces structural invariants
// (ascending live/slot indices in range, a boundary round ≥ 1) and
// canonical encoding: the parsed checkpoint must re-encode to the input
// byte-for-byte, which is the other half of the FuzzCkptDecode invariant.
func DecodeCkpt(data []byte) (*Ckpt, error) {
	if len(data) < ckptHeaderSize {
		return nil, badCkpt("%d bytes is shorter than the %d-byte header", len(data), ckptHeaderSize)
	}
	if string(data[:8]) != ckptMagic {
		return nil, badCkpt("bad magic %q", data[:8])
	}
	if got := binary.LittleEndian.Uint32(data[20:]); got != crc32.ChecksumIEEE(data[:20]) {
		return nil, badCkpt("header CRC mismatch")
	}
	if v := binary.LittleEndian.Uint32(data[8:]); v != ckptVersion {
		return nil, badCkpt("unsupported version %d (want %d)", v, ckptVersion)
	}
	if f := binary.LittleEndian.Uint32(data[12:]); f != 0 {
		return nil, badCkpt("unsupported flags %#x", f)
	}
	body := data[ckptHeaderSize:]
	if got := binary.LittleEndian.Uint32(data[16:]); got != crc32.ChecksumIEEE(body) {
		return nil, badCkpt("body CRC mismatch")
	}

	r := &ckptReader{data: body}
	c := &Ckpt{}
	n := r.uvarint("n")
	m := r.uvarint("m")
	fp := r.uvarint("fingerprint")
	round := r.uvarint("round")
	chunkSize := r.uvarint("chunkSize")
	msgs := r.uvarint("messages")
	bits := r.uvarint("bits")
	maxB := r.uvarint("maxMsgBits")
	if r.err != nil {
		return nil, r.err
	}
	if n < 1 || n > math.MaxInt32 {
		return nil, badCkpt("n=%d out of range", n)
	}
	if m > math.MaxInt32 {
		return nil, badCkpt("m=%d out of range", m)
	}
	if fp > math.MaxUint32 {
		return nil, badCkpt("fingerprint %#x wider than 32 bits", fp)
	}
	if round < 1 || round > math.MaxInt32 {
		return nil, badCkpt("round=%d out of range (a checkpoint is only written at boundaries ≥ 1)", round)
	}
	if chunkSize < 1 || chunkSize > n {
		return nil, badCkpt("chunkSize=%d out of range for n=%d", chunkSize, n)
	}
	if msgs > math.MaxInt64 || bits > math.MaxInt64 || maxB > math.MaxInt32 {
		return nil, badCkpt("metrics out of range")
	}
	c.N, c.M, c.FP = int64(n), int64(m), uint32(fp)
	c.Round, c.ChunkSize = int(round), int(chunkSize)
	c.Messages, c.Bits, c.MaxMsgBits = int64(msgs), int64(bits), int(maxB)

	liveCount := r.count("live", 1)
	if r.err != nil {
		return nil, r.err
	}
	if uint64(liveCount) > n {
		return nil, badCkpt("live count %d exceeds n=%d", liveCount, n)
	}
	c.Live = make([]int32, 0, liveCount)
	prev := int64(-1)
	for i := 0; i < liveCount; i++ {
		d := r.uvarint("live index")
		if r.err != nil {
			return nil, r.err
		}
		v := prev + int64(d)
		if i == 0 {
			v = int64(d)
		} else if d == 0 {
			return nil, badCkpt("live indices must be strictly ascending")
		}
		if v >= int64(n) {
			return nil, badCkpt("live index %d out of range (n=%d)", v, n)
		}
		prev = v
		c.Live = append(c.Live, int32(v))
	}
	c.States = make([][]byte, liveCount)
	for i := range c.States {
		c.States[i] = r.bytes("program state")
		if r.err != nil {
			return nil, r.err
		}
	}

	pendingCount := r.count("pending", 2)
	if r.err != nil {
		return nil, r.err
	}
	if uint64(pendingCount) > 2*m {
		return nil, badCkpt("pending count %d exceeds the %d slots of m=%d edges", pendingCount, 2*m, m)
	}
	c.Slots = make([]int32, 0, pendingCount)
	c.Payloads = make([][]byte, 0, pendingCount)
	prev = -1
	for i := 0; i < pendingCount; i++ {
		d := r.uvarint("slot index")
		if r.err != nil {
			return nil, r.err
		}
		s := prev + int64(d)
		if i == 0 {
			s = int64(d)
		} else if d == 0 {
			return nil, badCkpt("slot indices must be strictly ascending")
		}
		if s >= 2*int64(m) {
			return nil, badCkpt("slot index %d out of range (2m=%d)", s, 2*m)
		}
		prev = s
		c.Slots = append(c.Slots, int32(s))
		c.Payloads = append(c.Payloads, r.bytes("payload"))
		if r.err != nil {
			return nil, r.err
		}
	}

	switch h := r.uvarint("host flag"); {
	case r.err != nil:
		return nil, r.err
	case h == 1:
		c.HasHost = true
		c.Host = r.bytes("host state")
		if r.err != nil {
			return nil, r.err
		}
	case h != 0:
		return nil, badCkpt("host flag must be 0 or 1 (got %d)", h)
	}
	if r.off != len(body) {
		return nil, badCkpt("%d trailing bytes after the host section", len(body)-r.off)
	}
	// Canonicality: the only accepted spelling of this checkpoint is the
	// one Encode produces. Rejects overlong varints and any other
	// alternative encoding, so decode∘encode is the identity on every
	// accepted input.
	if reenc := c.appendBody(nil); !bytes.Equal(reenc, body) {
		return nil, badCkpt("non-canonical encoding")
	}
	return c, nil
}

// The graph identity a checkpoint is bound to — node count, edge count
// and the full ID array — is hashed by graph.Fingerprint (it moved there
// so the serving layer can share the same content key); resuming against
// a graph with a different fingerprint fails with ErrBadCkpt instead of
// silently replaying state onto the wrong topology.

// restore rebuilds engine state from a decoded checkpoint: round counter
// and metrics, the live set (chunk alive lists in ascending order, exactly
// as a running engine maintains them), freshly factory-built programs with
// their state replayed, the pending slot records with payload bytes pushed
// into the owning sender chunks' delivered generation, and the host blob.
// Called after the chunk skeleton is built (with every node marked done)
// and before the worker pool starts.
func (eng *steppedEngine) restore(cp *Ckpt, spec CkptSpec, f StepFactory) error {
	g := eng.net.g
	n := g.N()
	if cp.N != int64(n) || cp.M != int64(g.M()) || cp.FP != eng.fp {
		return badCkpt("checkpoint belongs to a different graph (n=%d m=%d fp=%#08x, want n=%d m=%d fp=%#08x)",
			cp.N, cp.M, cp.FP, n, g.M(), eng.fp)
	}
	eng.round = cp.Round
	eng.metrics.Messages = cp.Messages
	eng.metrics.Bits = cp.Bits
	eng.metrics.MaxMsgBits = cp.MaxMsgBits
	for i, v32 := range cp.Live {
		v := int(v32)
		ck := &eng.chunks[v/eng.chunkSize]
		nd := &eng.nodes[v]
		nd.stopped = false
		prog := f(nd)
		cs, ok := prog.(CkptStep)
		if !ok {
			return fmt.Errorf("congest: resume: node %d's program (%T) does not implement CkptStep", v, prog)
		}
		if err := cs.RestoreState(cp.States[i]); err != nil {
			return badCkpt("node %d program state: %v", v, err)
		}
		ck.progs[v-ck.lo] = prog
		ck.alive = append(ck.alive, v32)
	}
	// Pending messages: recs[Round&1] is the array the first resumed sweep
	// reads; the payload bytes must sit in the sending node's chunk arena,
	// in the generation collect will look in ((Round+2)%3). Slots ascend,
	// so the receiving node is found by walking the CSR offsets forward.
	recs := eng.recs[cp.Round&1]
	gen := (cp.Round + 2) % 3
	v := 0
	for i, slot := range cp.Slots {
		for eng.topo.inOff[v+1] <= slot {
			v++
		}
		q := slot - eng.topo.inOff[v]
		u := int(g.Neighbors(v)[q])
		pl := cp.Payloads[i]
		rec := slotRec{ln: uint32(len(pl)) + 1}
		if len(pl) > 0 {
			rec.off = eng.chunks[u/eng.chunkSize].slots.push(gen, pl)
		}
		recs[slot] = rec
	}
	switch {
	case spec.Host != nil && !cp.HasHost:
		return badCkpt("checkpoint has no host-state blob but the resume expects one")
	case spec.Host == nil && cp.HasHost:
		return badCkpt("checkpoint carries a host-state blob but the resume provides no HostState receiver")
	case spec.Host != nil:
		if err := spec.Host.RestoreHost(cp.Host); err != nil {
			return badCkpt("host state: %v", err)
		}
	}
	return nil
}

// writeCkpt snapshots the engine at the current round boundary and writes
// it atomically to spec.Path. The worker pool is parked between sweeps, so
// all engine state (including the per-worker metric deltas) is readable
// without synchronization. Only records addressed to live nodes are
// serialized — the freshness invariant for those is that every live node's
// slot range was cleared by its own collect two phases ago and rewritten
// during the last sweep, so the bytes are in the delivered generation.
func (eng *steppedEngine) writeCkpt(spec CkptSpec) error {
	g := eng.net.g
	cp := &Ckpt{
		N:          int64(g.N()),
		M:          int64(g.M()),
		FP:         eng.fp,
		Round:      eng.round,
		ChunkSize:  eng.chunkSize,
		Messages:   eng.metrics.Messages,
		Bits:       eng.metrics.Bits,
		MaxMsgBits: eng.metrics.MaxMsgBits,
	}
	for w := range eng.workers {
		wk := &eng.workers[w]
		cp.Messages += wk.msgs
		cp.Bits += wk.bits
		if wk.maxBits > cp.MaxMsgBits {
			cp.MaxMsgBits = wk.maxBits
		}
	}
	readRecs := eng.recs[eng.round&1]
	gen := (eng.round + 2) % 3
	for c := range eng.chunks {
		ck := &eng.chunks[c]
		for _, v32 := range ck.alive {
			v := int(v32)
			cs, ok := ck.progs[v-ck.lo].(CkptStep)
			if !ok {
				return fmt.Errorf("congest: checkpoint: node %d's program (%T) does not implement CkptStep",
					v, ck.progs[v-ck.lo])
			}
			cp.Live = append(cp.Live, v32)
			cp.States = append(cp.States, cs.AppendState(nil))
			off, end := eng.topo.inOff[v], eng.topo.inOff[v+1]
			nbrs := g.Neighbors(v)
			for i := off; i < end; i++ {
				r := readRecs[i]
				if r.ln == 0 {
					continue
				}
				var pl []byte
				if r.ln > 1 {
					u := int(nbrs[i-off])
					src := eng.chunks[u/eng.chunkSize].slots.gens[gen]
					pl = src[r.off : r.off+r.ln-1]
				}
				cp.Slots = append(cp.Slots, i)
				cp.Payloads = append(cp.Payloads, pl)
			}
		}
	}
	if spec.Host != nil {
		cp.HasHost = true
		cp.Host = spec.Host.AppendHost(nil)
	}
	if err := writeFileAtomic(spec.Path, cp.Encode()); err != nil {
		return fmt.Errorf("congest: writing checkpoint: %w", err)
	}
	return nil
}

// writeFileAtomic writes data to path via a temp file in the same
// directory plus rename, so readers (and a resume after a crash mid-write)
// always see either the previous complete checkpoint or the new one.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
