package conformance

import (
	"math/bits"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// The registered programs. Each exercises a different slice of engine
// behaviour: single-round exchange, long floods, order-sensitive folding,
// staggered termination, final sends without Sync, zero-length payloads,
// sparse per-port sends with replacement, silent rounds, and payloads at
// the exact bandwidth budget. Outputs serialize every host-visible result
// in node order so the harness can compare engines byte for byte.

// mask keeps order-sensitive accumulators within two varint bytes, so every
// program fits the CONGEST budget even on the smallest corpus graphs.
const mask = 0x3fff

func init() {
	Register(Case{Name: "id-exchange", Build: buildIDExchange, BuildStep: buildIDExchangeStep})
	Register(Case{Name: "flood-distance", Build: buildFloodDistance, BuildStep: buildFloodDistanceStep})
	Register(Case{Name: "mixer", Build: buildMixer, BuildStep: buildMixerStep})
	Register(Case{Name: "early-stop", Build: buildEarlyStop, BuildStep: buildEarlyStopStep})
	Register(Case{Name: "final-send", Build: buildFinalSend, BuildStep: buildFinalSendStep})
	Register(Case{Name: "empty-payload", Build: buildEmptyPayload, BuildStep: buildEmptyPayloadStep})
	Register(Case{Name: "port-pingpong", Build: buildPortPingpong, BuildStep: buildPortPingpongStep})
	Register(Case{Name: "silent-rounds", Build: buildSilentRounds, BuildStep: buildSilentRoundsStep})
	Register(Case{Name: "budget-edge", Build: buildBudgetEdge, BuildStep: buildBudgetEdgeStep})
	Register(Case{Name: "local-big-payload", LocalOnly: true,
		Build: buildLocalBigPayload, BuildStep: buildLocalBigPayloadStep})
}

// buildIDExchange: one round; every node broadcasts its ID and records the
// (port, id) pairs it receives.
func buildIDExchange(g *graph.Graph) (congest.Program, func() []byte) {
	got := make([][]int64, g.N())
	prog := func(nd *congest.Node) {
		nd.Broadcast(congest.AppendVarint(nil, nd.ID()))
		in := nd.Sync()
		res := make([]int64, 0, 2*len(in))
		for _, msg := range in {
			id, _ := congest.Varint(msg.Payload, 0)
			res = append(res, int64(msg.Port), id)
		}
		got[nd.V()] = res
	}
	return prog, func() []byte {
		var buf []byte
		for _, res := range got {
			buf = appendInt(buf, int64(len(res)))
			for _, x := range res {
				buf = appendInt(buf, x)
			}
		}
		return buf
	}
}

// buildFloodDistance: the node with the smallest ID floods; every node
// records its hop distance (-1 if unreachable, exercising disconnected
// corpus graphs).
func buildFloodDistance(g *graph.Graph) (congest.Program, func() []byte) {
	dist := make([]int64, g.N())
	rounds := g.N()
	prog := func(nd *congest.Node) {
		my := int64(-1)
		if nd.ID() == 1 {
			my = 0
		}
		for r := 0; r < rounds; r++ {
			if my == int64(r) {
				nd.Broadcast([]byte{1})
			}
			in := nd.Sync()
			if my < 0 && len(in) > 0 {
				my = int64(r + 1)
			}
		}
		dist[nd.V()] = my
	}
	return prog, func() []byte {
		var buf []byte
		for _, d := range dist {
			buf = appendInt(buf, d)
		}
		return buf
	}
}

// mixerValue folds a mixer payload into the accumulator input: the decoded
// varint when the payload parses, a deterministic function of the raw bytes
// when it does not. Payload-corruption faults (chaos.FlipPayload /
// TruncatePayload) can hand the mixer arbitrary bytes, and the fold must
// stay a pure function of them so corrupted runs still diff byte-identical
// across engines.
func mixerValue(payload []byte) int64 {
	x, off := congest.Varint(payload, 0)
	if off < 0 {
		x = int64(len(payload)) + 1
		for _, b := range payload {
			x = x*257 + int64(b)
		}
	}
	return x
}

// buildMixer: five rounds of order-sensitive accumulation — any difference
// in inbox ordering or content between engines changes the result.
func buildMixer(g *graph.Graph) (congest.Program, func() []byte) {
	out := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		acc := nd.ID()
		for r := 0; r < 5; r++ {
			nd.Broadcast(congest.AppendVarint(nil, acc&mask))
			in := nd.Sync()
			for i, msg := range in {
				x := mixerValue(msg.Payload)
				acc = acc*31 + x*int64(i+1) + int64(msg.Port)
			}
		}
		out[nd.V()] = acc
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range out {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildEarlyStop: node v runs v%4+1 rounds then returns, so shards lose
// members at different times; each node records how many messages it saw in
// each round it was alive.
func buildEarlyStop(g *graph.Graph) (congest.Program, func() []byte) {
	seen := make([][]int64, g.N())
	prog := func(nd *congest.Node) {
		rounds := nd.V()%4 + 1
		for r := 0; r < rounds; r++ {
			nd.Broadcast(congest.AppendVarint(nil, int64(r)))
			in := nd.Sync()
			sum := int64(0)
			for _, msg := range in {
				x, _ := congest.Varint(msg.Payload, 0)
				sum += x + 1
			}
			seen[nd.V()] = append(seen[nd.V()], int64(len(in)), sum)
		}
	}
	return prog, func() []byte {
		var buf []byte
		for _, s := range seen {
			buf = appendInt(buf, int64(len(s)))
			for _, x := range s {
				buf = appendInt(buf, x)
			}
		}
		return buf
	}
}

// buildFinalSend: nodes with an even ID send once and return without ever
// calling Sync (their outbox must still be delivered, the engines' finish
// semantics); odd nodes listen for one round.
func buildFinalSend(g *graph.Graph) (congest.Program, func() []byte) {
	heard := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		if nd.ID()%2 == 0 {
			for p := 0; p < nd.Degree(); p++ {
				nd.Send(p, congest.AppendVarint(nil, nd.ID()&mask))
			}
			return
		}
		in := nd.Sync()
		sum := int64(0)
		for _, msg := range in {
			x, _ := congest.Varint(msg.Payload, 0)
			sum += x + int64(msg.Port) + 1
		}
		heard[nd.V()] = sum
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range heard {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildEmptyPayload: zero-length messages every other round; receivers
// count messages and total payload length (which must be zero).
func buildEmptyPayload(g *graph.Graph) (congest.Program, func() []byte) {
	count := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		for r := 0; r < 4; r++ {
			if r%2 == 0 {
				nd.Broadcast([]byte{})
			}
			in := nd.Sync()
			for _, msg := range in {
				count[nd.V()] += 1 + int64(len(msg.Payload))*1000
			}
		}
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range count {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildPortPingpong: each node sends on a single rotating port and
// overwrites that send once (Send-replaces-same-port semantics), so most
// slots stay empty each round.
func buildPortPingpong(g *graph.Graph) (congest.Program, func() []byte) {
	out := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		acc := int64(0)
		for r := 0; r < 6; r++ {
			if d := nd.Degree(); d > 0 {
				p := r % d
				nd.Send(p, congest.AppendVarint(nil, int64(r)))
				nd.Send(p, congest.AppendVarint(nil, int64(r)+100)) // replaces
			}
			in := nd.Sync()
			for _, msg := range in {
				x, _ := congest.Varint(msg.Payload, 0)
				acc = acc*17 + x + int64(msg.Port)
			}
		}
		out[nd.V()] = acc
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range out {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildSilentRounds: rounds in which no node at all sends, interleaved with
// broadcast rounds — the engines must advance through message-free
// barriers identically.
func buildSilentRounds(g *graph.Graph) (congest.Program, func() []byte) {
	out := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		total := int64(0)
		for r := 0; r < 6; r++ {
			if r%3 == 0 {
				nd.Broadcast(congest.AppendVarint(nil, int64(r)))
			}
			in := nd.Sync()
			total = total*7 + int64(len(in)) + int64(nd.Round())
		}
		out[nd.V()] = total
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range out {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildBudgetEdge: broadcast payloads of exactly the CONGEST budget (the
// default factor 16 gives 16·⌈log₂ n⌉ bits), probing the bandwidth check
// and MaxMsgBits accounting at the boundary.
func buildBudgetEdge(g *graph.Graph) (congest.Program, func() []byte) {
	n := g.N()
	logn := bits.Len(uint(n))
	if logn < 1 {
		logn = 1
	}
	budgetBytes := 16 * logn / 8
	sum := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		payload := make([]byte, budgetBytes)
		for i := range payload {
			payload[i] = byte(nd.V() + i)
		}
		nd.Broadcast(payload)
		in := nd.Sync()
		for _, msg := range in {
			for _, b := range msg.Payload {
				sum[nd.V()] += int64(b)
			}
		}
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range sum {
			buf = appendInt(buf, x)
		}
		return buf
	}
}

// buildLocalBigPayload: kilobyte payloads in the LOCAL model, exercising
// the unbounded path and large MaxMsgBits accounting.
func buildLocalBigPayload(g *graph.Graph) (congest.Program, func() []byte) {
	sum := make([]int64, g.N())
	prog := func(nd *congest.Node) {
		payload := make([]byte, 1024+nd.V())
		for i := range payload {
			payload[i] = byte(nd.ID() + int64(i))
		}
		nd.Broadcast(payload)
		in := nd.Sync()
		for _, msg := range in {
			sum[nd.V()] += int64(len(msg.Payload))
			if len(msg.Payload) > 0 {
				sum[nd.V()] += int64(msg.Payload[len(msg.Payload)-1])
			}
		}
	}
	return prog, func() []byte {
		var buf []byte
		for _, x := range sum {
			buf = appendInt(buf, x)
		}
		return buf
	}
}
