package conformance

import (
	"errors"
	"testing"

	"congestds/internal/arbmds"
	"congestds/internal/congest"
)

// TestArbmdsFailureMetricsConformance drives the arbmds case into
// ErrMaxRounds by clamping the round budget below its 4-rounds-per-phase
// schedule: every engine × program form must fail with the same sentinel
// and report identical Rounds/Messages/Bits for the aborted run. This is
// the real-algorithm companion to the synthetic runaway/oversend failure
// cases — the peeling protocol's mixed empty/integer payloads exercise the
// failure accounting with realistic traffic.
func TestArbmdsFailureMetricsConformance(t *testing.T) {
	c := Case{Name: "arbmds-peel-clamped", Build: buildArbmds, BuildStep: buildArbmdsStep}
	for _, ng := range Corpus(true)[:10] {
		full, err := arbmds.Solve(ng.G, arbmds.Params{})
		if err != nil {
			t.Fatalf("graph %s: unclamped run failed: %v", ng.Name, err)
		}
		clamp := full.Metrics.Rounds / 2
		if clamp < 1 {
			continue // single-phase graphs cannot be interrupted mid-run
		}
		// Sanity: the clamp actually triggers the failure on the reference.
		if _, err := arbmds.Solve(ng.G, arbmds.Params{MaxRounds: clamp}); !errors.Is(err, congest.ErrMaxRounds) {
			t.Fatalf("graph %s: clamp %d did not trigger ErrMaxRounds: %v", ng.Name, clamp, err)
		}
		if err := Diff(c, ng.G, congest.Config{MaxRounds: clamp}); err != nil {
			t.Errorf("graph %s: %v", ng.Name, err)
		}
	}
}

// TestArbmdsCorpusOutputsDominate: beyond byte-identity, the registered
// case's output must actually be a dominating set on every corpus graph
// (the conformance harness alone would accept a consistently-wrong
// program).
func TestArbmdsCorpusOutputsDominate(t *testing.T) {
	for _, ng := range Corpus(testing.Short()) {
		res, err := arbmds.Solve(ng.G, arbmds.Params{Sim: congest.EngineStepped})
		if err != nil {
			t.Fatalf("graph %s: %v", ng.Name, err)
		}
		in := make(map[int]bool, len(res.Set))
		for _, v := range res.Set {
			in[v] = true
		}
		for v := 0; v < ng.G.N(); v++ {
			if in[v] {
				continue
			}
			dominated := false
			for _, u := range ng.G.Neighbors(v) {
				if in[int(u)] {
					dominated = true
					break
				}
			}
			if !dominated {
				t.Errorf("graph %s: node %d undominated", ng.Name, v)
				break
			}
		}
	}
}
