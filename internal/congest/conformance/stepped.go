package conformance

import (
	"math/bits"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Stepped variants of the registered programs: each is an independent port
// of its blocking counterpart in programs.go to the stackless StepProgram
// form (explicit state struct, Init = sends before the first Sync, Step r =
// receives of round r plus the sends of round r+1). The harness requires
// every variant to be byte- and metric-identical to the blocking reference
// on every engine, which pins both the ports and the stepped engine itself.
//
// The variants build payloads through Node.PayloadBuf where the blocking
// programs allocate per send, so the corpus also exercises the stepped
// engine's arena on every graph.

// idExchangeStep: one round; broadcast the ID, record (port, id) pairs.
type idExchangeStep struct{ got [][]int64 }

func (s *idExchangeStep) Init(nd *congest.Node) bool {
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(10), nd.ID()))
	return false
}

func (s *idExchangeStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	res := make([]int64, 0, 2*len(in))
	for _, msg := range in {
		id, _ := congest.Varint(msg.Payload, 0)
		res = append(res, int64(msg.Port), id)
	}
	s.got[nd.V()] = res
	return true
}

func buildIDExchangeStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	got := make([][]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &idExchangeStep{got: got}
	}
	return factory, func() []byte {
		var buf []byte
		for _, res := range got {
			buf = appendInt(buf, int64(len(res)))
			for _, x := range res {
				buf = appendInt(buf, x)
			}
		}
		return buf
	}
}

// floodDistanceStep: the node with ID 1 floods; others record hop distance.
type floodDistanceStep struct {
	dist   []int64
	rounds int
	my     int64
}

func (s *floodDistanceStep) Init(nd *congest.Node) bool {
	s.my = -1
	if nd.ID() == 1 {
		s.my = 0
	}
	if s.rounds <= 0 {
		s.dist[nd.V()] = s.my
		return true
	}
	if s.my == 0 {
		nd.Broadcast([]byte{1})
	}
	return false
}

func (s *floodDistanceStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	if s.my < 0 && len(in) > 0 {
		s.my = int64(round + 1)
	}
	if round+1 >= s.rounds {
		s.dist[nd.V()] = s.my
		return true
	}
	if s.my == int64(round+1) {
		nd.Broadcast([]byte{1})
	}
	return false
}

func buildFloodDistanceStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	dist := make([]int64, g.N())
	rounds := g.N()
	factory := func(nd *congest.Node) congest.StepProgram {
		return &floodDistanceStep{dist: dist, rounds: rounds}
	}
	return factory, func() []byte {
		var buf []byte
		for _, d := range dist {
			buf = appendInt(buf, d)
		}
		return buf
	}
}

// mixerStep: five rounds of order-sensitive accumulation.
type mixerStep struct {
	out []int64
	acc int64
}

func (s *mixerStep) Init(nd *congest.Node) bool {
	s.acc = nd.ID()
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&mask))
	return false
}

func (s *mixerStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for i, msg := range in {
		x := mixerValue(msg.Payload)
		s.acc = s.acc*31 + x*int64(i+1) + int64(msg.Port)
	}
	if round+1 >= 5 {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), s.acc&mask))
	return false
}

func buildMixerStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &mixerStep{out: out}
	}
	return factory, outputInts(out)
}

// earlyStopStep: node v runs v%4+1 rounds then stops.
type earlyStopStep struct {
	seen   [][]int64
	rounds int
}

func (s *earlyStopStep) Init(nd *congest.Node) bool {
	s.rounds = nd.V()%4 + 1
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), 0))
	return false
}

func (s *earlyStopStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	sum := int64(0)
	for _, msg := range in {
		x, _ := congest.Varint(msg.Payload, 0)
		sum += x + 1
	}
	v := nd.V()
	s.seen[v] = append(s.seen[v], int64(len(in)), sum)
	if round+1 >= s.rounds {
		return true
	}
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), int64(round+1)))
	return false
}

func buildEarlyStopStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	seen := make([][]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &earlyStopStep{seen: seen}
	}
	return factory, func() []byte {
		var buf []byte
		for _, s := range seen {
			buf = appendInt(buf, int64(len(s)))
			for _, x := range s {
				buf = appendInt(buf, x)
			}
		}
		return buf
	}
}

// finalSendStep: even IDs send in Init and are immediately done (the
// stepped analogue of sending and returning without Sync); odd IDs listen
// for one round.
type finalSendStep struct{ heard []int64 }

func (s *finalSendStep) Init(nd *congest.Node) bool {
	if nd.ID()%2 == 0 {
		for p := 0; p < nd.Degree(); p++ {
			nd.Send(p, congest.AppendVarint(nd.PayloadBuf(4), nd.ID()&mask))
		}
		return true
	}
	return false
}

func (s *finalSendStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	sum := int64(0)
	for _, msg := range in {
		x, _ := congest.Varint(msg.Payload, 0)
		sum += x + int64(msg.Port) + 1
	}
	s.heard[nd.V()] = sum
	return true
}

func buildFinalSendStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	heard := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &finalSendStep{heard: heard}
	}
	return factory, outputInts(heard)
}

// emptyPayloadStep: zero-length messages every other round.
type emptyPayloadStep struct{ count []int64 }

func (s *emptyPayloadStep) Init(nd *congest.Node) bool {
	nd.Broadcast([]byte{})
	return false
}

func (s *emptyPayloadStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for _, msg := range in {
		s.count[nd.V()] += 1 + int64(len(msg.Payload))*1000
	}
	if round+1 >= 4 {
		return true
	}
	if (round+1)%2 == 0 {
		nd.Broadcast([]byte{})
	}
	return false
}

func buildEmptyPayloadStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	count := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &emptyPayloadStep{count: count}
	}
	return factory, outputInts(count)
}

// portPingpongStep: a single rotating port per round, with the send
// replaced once (Send-replaces-same-port semantics).
type portPingpongStep struct {
	out []int64
	acc int64
}

func (s *portPingpongStep) sendRound(nd *congest.Node, r int) {
	if d := nd.Degree(); d > 0 {
		p := r % d
		nd.Send(p, congest.AppendVarint(nd.PayloadBuf(4), int64(r)))
		nd.Send(p, congest.AppendVarint(nd.PayloadBuf(4), int64(r)+100)) // replaces
	}
}

func (s *portPingpongStep) Init(nd *congest.Node) bool {
	s.sendRound(nd, 0)
	return false
}

func (s *portPingpongStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for _, msg := range in {
		x, _ := congest.Varint(msg.Payload, 0)
		s.acc = s.acc*17 + x + int64(msg.Port)
	}
	if round+1 >= 6 {
		s.out[nd.V()] = s.acc
		return true
	}
	s.sendRound(nd, round+1)
	return false
}

func buildPortPingpongStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &portPingpongStep{out: out}
	}
	return factory, outputInts(out)
}

// silentRoundsStep: message-free rounds interleaved with broadcasts; mixes
// Node.Round into the accumulator, pinning the engine's round counter.
type silentRoundsStep struct {
	out   []int64
	total int64
}

func (s *silentRoundsStep) Init(nd *congest.Node) bool {
	nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), 0))
	return false
}

func (s *silentRoundsStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	s.total = s.total*7 + int64(len(in)) + int64(nd.Round())
	if round+1 >= 6 {
		s.out[nd.V()] = s.total
		return true
	}
	if (round+1)%3 == 0 {
		nd.Broadcast(congest.AppendVarint(nd.PayloadBuf(4), int64(round+1)))
	}
	return false
}

func buildSilentRoundsStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &silentRoundsStep{out: out}
	}
	return factory, outputInts(out)
}

// budgetEdgeStep: payloads of exactly the CONGEST budget, built in place in
// an arena buffer.
type budgetEdgeStep struct {
	sum   []int64
	bytes int
}

func (s *budgetEdgeStep) Init(nd *congest.Node) bool {
	payload := nd.PayloadBuf(s.bytes)[:s.bytes]
	for i := range payload {
		payload[i] = byte(nd.V() + i)
	}
	nd.Broadcast(payload)
	return false
}

func (s *budgetEdgeStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for _, msg := range in {
		for _, b := range msg.Payload {
			s.sum[nd.V()] += int64(b)
		}
	}
	return true
}

func buildBudgetEdgeStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	n := g.N()
	logn := bits.Len(uint(n))
	if logn < 1 {
		logn = 1
	}
	budgetBytes := 16 * logn / 8
	sum := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &budgetEdgeStep{sum: sum, bytes: budgetBytes}
	}
	return factory, outputInts(sum)
}

// localBigPayloadStep: kilobyte payloads in the LOCAL model.
type localBigPayloadStep struct{ sum []int64 }

func (s *localBigPayloadStep) Init(nd *congest.Node) bool {
	size := 1024 + nd.V()
	payload := nd.PayloadBuf(size)[:size]
	for i := range payload {
		payload[i] = byte(nd.ID() + int64(i))
	}
	nd.Broadcast(payload)
	return false
}

func (s *localBigPayloadStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	for _, msg := range in {
		s.sum[nd.V()] += int64(len(msg.Payload))
		if len(msg.Payload) > 0 {
			s.sum[nd.V()] += int64(msg.Payload[len(msg.Payload)-1])
		}
	}
	return true
}

func buildLocalBigPayloadStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	sum := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &localBigPayloadStep{sum: sum}
	}
	return factory, outputInts(sum)
}

// outputInts serializes a node-indexed int64 slice canonically.
func outputInts(xs []int64) func() []byte {
	return func() []byte {
		var buf []byte
		for _, x := range xs {
			buf = appendInt(buf, x)
		}
		return buf
	}
}
