// Package conformance is the differential test harness for the congest
// execution engines. Determinism is a paper-level invariant (Section 2: the
// algorithms are deterministic, so the outcome of a run is a pure function
// of the graph, the identifiers and the program), and the package enforces
// it as an engineering contract: every registered Program, run over a
// corpus of generated graphs, must produce byte-identical outputs and
// identical round counts and bandwidth metrics on every engine.
//
// The suite is what makes engine work safe: a new scheduler (like the
// sharded engine) is correct exactly when this package cannot tell it apart
// from the reference goroutine engine.
//
// Run it with:
//
//	go test ./internal/congest/conformance [-race] [-short]
package conformance

import (
	"bytes"
	"fmt"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Case is one Program under differential test. Build constructs the program
// for a concrete graph together with an output function that serializes
// every host-visible result of the run into a canonical byte string; the
// harness compares those bytes across engines. BuildStep is the same
// program ported independently to the stackless StepProgram form; the
// harness additionally runs it via RunStepped on every engine (natively on
// the stepped engine, through the blocking adapter elsewhere) and requires
// the same bytes and metrics as the blocking reference.
type Case struct {
	Name string
	// LocalOnly marks programs whose payloads exceed the CONGEST budget;
	// they run in the LOCAL model only.
	LocalOnly bool
	Build     func(g *graph.Graph) (congest.Program, func() []byte)
	BuildStep func(g *graph.Graph) (congest.StepFactory, func() []byte)
}

// cases is the registry, populated by programs.go.
var cases []Case

// Register adds a Case to the suite. Registrations happen at package init;
// tests iterate Cases.
func Register(c Case) { cases = append(cases, c) }

// Cases returns the registered differential cases.
func Cases() []Case { return cases }

// NamedGraph is a corpus entry.
type NamedGraph struct {
	Name string
	G    *graph.Graph
}

// Corpus returns the differential graph corpus: small degenerate
// topologies, structured families, and random families with fixed seeds —
// including disconnected graphs and graphs with isolated nodes. When short
// is true a reduced (but still ≥ 20 graph) corpus is returned so the suite
// stays fast under -race.
func Corpus(short bool) []NamedGraph {
	corpus := []NamedGraph{
		{"single", graph.Path(1)},
		{"pair", graph.Path(2)},
		{"path9", graph.Path(9)},
		{"cycle3", graph.Cycle(3)},
		{"cycle17", graph.Cycle(17)},
		{"star12", graph.Star(12)},
		{"complete8", graph.Complete(8)},
		{"grid5x6", graph.Grid(5, 6)},
		{"torus4x5", graph.Torus(4, 5)},
		{"tree2x3", graph.CompleteTree(2, 3)},
		{"hypercube4", graph.Hypercube(4)},
		{"caterpillar6x3", graph.Caterpillar(6, 3)},
		{"gnp40", graph.GNPConnected(40, 0.1, 1)},
		{"gnp64-sparse", graph.GNPConnected(64, 0.05, 2)},
		{"gnp30-disconnected", graph.GNP(30, 0.06, 3)},
		{"gnp20-isolated", graph.GNP(20, 0.05, 7)},
		{"ba50", graph.BarabasiAlbert(50, 2, 4)},
		{"disk48", graph.UnitDiskConnected(48, 0.25, 5)},
		{"gnp100", graph.GNPConnected(100, 0.04, 6)},
		{"caterpillar4x2", graph.Caterpillar(4, 2)},
	}
	if !short {
		corpus = append(corpus,
			NamedGraph{"grid12x12", graph.Grid(12, 12)},
			NamedGraph{"gnp200", graph.GNPConnected(200, 0.02, 8)},
			NamedGraph{"ba128", graph.BarabasiAlbert(128, 3, 9)},
			NamedGraph{"torus10x10", graph.Torus(10, 10)},
			NamedGraph{"gnp-dense60", graph.GNPConnected(60, 0.25, 10)},
		)
	}
	return corpus
}

// Result is one engine's observation of a run: the program's serialized
// output plus the metrics the engine reported.
type Result struct {
	Output  []byte
	Metrics congest.Metrics
	Err     error
}

// runOn executes the case on one engine and captures the observation.
func runOn(c Case, g *graph.Graph, eng congest.Engine, cfg congest.Config) Result {
	cfg.Engine = eng
	prog, output := c.Build(g)
	m, err := congest.NewNetwork(g, cfg).Run(prog)
	res := Result{Metrics: m, Err: err}
	if err == nil {
		res.Output = output()
	}
	return res
}

// runStepOn executes the case's stepped variant on one engine via
// RunStepped — natively on the stepped engine, through BlockingFromStep on
// the goroutine-backed ones.
func runStepOn(c Case, g *graph.Graph, eng congest.Engine, cfg congest.Config) Result {
	cfg.Engine = eng
	factory, output := c.BuildStep(g)
	m, err := congest.NewNetwork(g, cfg).RunStepped(factory)
	res := Result{Metrics: m, Err: err}
	if err == nil {
		res.Output = output()
	}
	return res
}

// Diff runs the case on the reference engine (goroutine) and on every other
// engine — the blocking program everywhere, plus the stepped variant (when
// registered) on every engine — and returns a non-nil error describing the
// first divergence: different outputs, different round counts, or different
// bandwidth metrics. A nil error means the engines and program forms are
// indistinguishable on this (case, graph, config) triple.
func Diff(c Case, g *graph.Graph, cfg congest.Config) error {
	if c.LocalOnly {
		cfg.Model = congest.Local
	}
	ref := runOn(c, g, congest.EngineGoroutine, cfg)
	compare := func(got Result, form string, eng congest.Engine) error {
		if (ref.Err == nil) != (got.Err == nil) {
			return fmt.Errorf("%s %s on %v: error mismatch: goroutine=%v, %v=%v",
				c.Name, form, eng, ref.Err, eng, got.Err)
		}
		if ref.Err != nil {
			// Both failed: the sentinel class (bandwidth, max-rounds, deadline,
			// injected, ... — see congest.SentinelClass) must match, and the
			// failed runs must still report identical progress metrics —
			// Rounds, Messages and Bits tell a caller how far a run got before
			// the failure, so an engine that zeroes (or inflates) them on
			// failure is observable and wrong.
			if rc, gc := congest.SentinelClass(ref.Err), congest.SentinelClass(got.Err); rc != gc {
				return fmt.Errorf("%s %s on %v: sentinel class mismatch: goroutine=%q (%v), %v=%q (%v)",
					c.Name, form, eng, rc, ref.Err, eng, gc, got.Err)
			}
			if err := diffFailureMetrics(ref.Metrics, got.Metrics); err != nil {
				return fmt.Errorf("%s %s on %v (failed run): %w", c.Name, form, eng, err)
			}
			return nil
		}
		if !bytes.Equal(ref.Output, got.Output) {
			return fmt.Errorf("%s %s on %v: output diverges from goroutine engine (%d vs %d bytes)",
				c.Name, form, eng, len(ref.Output), len(got.Output))
		}
		if err := diffMetrics(ref.Metrics, got.Metrics); err != nil {
			return fmt.Errorf("%s %s on %v: %w", c.Name, form, eng, err)
		}
		return nil
	}
	for _, eng := range congest.Engines() {
		if eng != congest.EngineGoroutine {
			if err := compare(runOn(c, g, eng, cfg), "blocking", eng); err != nil {
				return err
			}
		}
		if c.BuildStep != nil {
			if err := compare(runStepOn(c, g, eng, cfg), "stepped", eng); err != nil {
				return err
			}
		}
	}
	return nil
}

// diffFailureMetrics asserts the progress metrics a failed run reports are
// identical: how many rounds were delivered and what traffic was counted
// before the failure. AvgMsgBits follows from Messages and Bits, so it is
// covered implicitly; MaxMsgBits and the budget fields are compared by the
// full diffMetrics on successful runs.
func diffFailureMetrics(a, b congest.Metrics) error {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Errorf("rounds %d != %d", a.Rounds, b.Rounds)
	case a.Messages != b.Messages:
		return fmt.Errorf("messages %d != %d", a.Messages, b.Messages)
	case a.Bits != b.Bits:
		return fmt.Errorf("bits %d != %d", a.Bits, b.Bits)
	case a.AvgMsgBits != b.AvgMsgBits:
		return fmt.Errorf("avg message bits %v != %v", a.AvgMsgBits, b.AvgMsgBits)
	}
	return nil
}

// diffMetrics asserts the engine-visible cost model is identical: round
// counts, message counts, bit totals and the largest message must all
// agree.
func diffMetrics(a, b congest.Metrics) error {
	switch {
	case a.Rounds != b.Rounds:
		return fmt.Errorf("rounds %d != %d", a.Rounds, b.Rounds)
	case a.Messages != b.Messages:
		return fmt.Errorf("messages %d != %d", a.Messages, b.Messages)
	case a.Bits != b.Bits:
		return fmt.Errorf("bits %d != %d", a.Bits, b.Bits)
	case a.MaxMsgBits != b.MaxMsgBits:
		return fmt.Errorf("max message bits %d != %d", a.MaxMsgBits, b.MaxMsgBits)
	case a.BandwidthBits != b.BandwidthBits:
		return fmt.Errorf("budget %d != %d", a.BandwidthBits, b.BandwidthBits)
	case a.Model != b.Model:
		return fmt.Errorf("model %v != %v", a.Model, b.Model)
	case a.AvgMsgBits != b.AvgMsgBits:
		return fmt.Errorf("avg message bits %v != %v", a.AvgMsgBits, b.AvgMsgBits)
	}
	return nil
}

// appendInt is the canonical serializer used by the registered programs.
func appendInt(buf []byte, x int64) []byte {
	return congest.AppendVarint(buf, x)
}
