package conformance

import (
	"congestds/internal/baseline"
	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mcds"
)

// The connected-dominating-set family (internal/mcds) joins the corpus
// with two cases. mcds-full runs all three phases (threshold peel,
// flood-min orientation, two-hop connect); mcds-connect runs the
// connector search alone over a host-computed greedy dominating set — the
// StepProgram port of the CDS connector that internal/cds wraps. Both
// register independently written blocking and stepped forms, so the suite
// checks the protocol itself, not just the engines. The output serializes
// the CDS and DS indicator vectors plus both sizes: any divergence in
// peel joins, flood tie-breaking, parent selection or token forwarding
// changes the bytes. The corpus deliberately includes disconnected graphs
// and isolated nodes; the program forms handle them (one CDS per
// component), which is exactly what the differential harness needs.

func init() {
	Register(Case{Name: "mcds-full", Build: buildMcdsFull, BuildStep: buildMcdsFullStep})
	Register(Case{Name: "mcds-connect", Build: buildMcdsConnect, BuildStep: buildMcdsConnectStep})
}

func mcdsOutput(inD, inCDS []bool) func() []byte {
	return func() []byte {
		var buf []byte
		sizeD, sizeC := int64(0), int64(0)
		for v := range inD {
			if inD[v] {
				sizeD++
			}
			if inCDS[v] {
				sizeC++
			}
		}
		buf = appendInt(buf, sizeD)
		buf = appendInt(buf, sizeC)
		for v := range inD {
			b := int64(0)
			if inD[v] {
				b |= 1
			}
			if inCDS[v] {
				b |= 2
			}
			buf = appendInt(buf, b)
		}
		return buf
	}
}

func buildMcdsFull(g *graph.Graph) (congest.Program, func() []byte) {
	inD := make([]bool, g.N())
	inCDS := make([]bool, g.N())
	return mcds.BlockingProgram(g, 0.5, corpusDiam(g), inD, inCDS), mcdsOutput(inD, inCDS)
}

func buildMcdsFullStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	inD := make([]bool, g.N())
	inCDS := make([]bool, g.N())
	return mcds.StepFactory(g, 0.5, corpusDiam(g), inD, inCDS), mcdsOutput(inD, inCDS)
}

// corpusDiam is the diameter bound the corpus cases use: n is always safe
// (including on the disconnected corpus graphs) and keeps the cases
// parameter-free.
func corpusDiam(g *graph.Graph) int {
	if g.N() < 1 {
		return 1
	}
	return g.N()
}

// greedyInD is the host-side dominating set the connector cases extend.
func greedyInD(g *graph.Graph) []bool {
	inD := make([]bool, g.N())
	for _, v := range baseline.Greedy(g) {
		inD[v] = true
	}
	return inD
}

func buildMcdsConnect(g *graph.Graph) (congest.Program, func() []byte) {
	inD := greedyInD(g)
	inCDS := make([]bool, g.N())
	return mcds.ConnectBlocking(g, inD, corpusDiam(g), inCDS), mcdsOutput(inD, inCDS)
}

func buildMcdsConnectStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	inD := greedyInD(g)
	inCDS := make([]bool, g.N())
	return mcds.ConnectStepFactory(g, inD, corpusDiam(g), inCDS), mcdsOutput(inD, inCDS)
}
