package conformance

import (
	"bytes"
	"path/filepath"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// TestCSRGRepresentationConformance is the cross-representation
// differential pass: every corpus graph is routed through the .csrg binary
// format (write → memory-map) and every registered program must be unable
// to tell the mapped graph from the built one — identical output bytes and
// metrics on the reference engine, and the full engine Diff must hold on
// the mapped representation exactly as it does on the built one. This is
// what makes the zero-copy loader safe to put under the engines: a CSR
// aliasing a read-only mapping has different slice capacities, alignment
// and backing memory than a Builder product, and any behavioural leak of
// that difference is a bug this test catches at byte level.
func TestCSRGRepresentationConformance(t *testing.T) {
	dir := t.TempDir()
	corpus := Corpus(testing.Short())
	for _, ng := range corpus {
		path := filepath.Join(dir, ng.Name+".csrg")
		if err := ng.G.WriteCSRGFile(path); err != nil {
			t.Fatalf("write %s: %v", ng.Name, err)
		}
		mg, err := graph.Mmap(path)
		if err != nil {
			t.Fatalf("mmap %s: %v", ng.Name, err)
		}
		defer mg.Close()

		for _, c := range Cases() {
			cfg := congest.Config{}
			if c.LocalOnly {
				cfg.Model = congest.Local
			}
			// Reference outputs on both representations must be
			// byte-identical; Diff below then extends the identity to the
			// other engines and the stepped form.
			ref := runOn(c, ng.G, congest.EngineGoroutine, cfg)
			mapped := runOn(c, mg.Graph, congest.EngineGoroutine, cfg)
			if (ref.Err == nil) != (mapped.Err == nil) {
				t.Errorf("%s on %s: error mismatch built=%v mapped=%v", c.Name, ng.Name, ref.Err, mapped.Err)
				continue
			}
			if !bytes.Equal(ref.Output, mapped.Output) {
				t.Errorf("%s on %s: output diverges between built and mapped graph (%d vs %d bytes)",
					c.Name, ng.Name, len(ref.Output), len(mapped.Output))
				continue
			}
			if err := diffMetrics(ref.Metrics, mapped.Metrics); err != nil {
				t.Errorf("%s on %s: metrics diverge between built and mapped graph: %v", c.Name, ng.Name, err)
				continue
			}
			if err := Diff(c, mg.Graph, congest.Config{}); err != nil {
				t.Errorf("mapped %s: %v", ng.Name, err)
			}
		}
	}
}
