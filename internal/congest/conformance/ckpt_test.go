package conformance

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"

	"congestds/internal/chaos"
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Kill-and-resume determinism: a checkpointed stepped run interrupted at an
// interior round boundary and resumed — in this process or a fresh one,
// against freshly allocated host state — must finish with byte-identical
// outputs, Metrics and ledger to an uninterrupted run.

// steppedCfg is the fixed config of the checkpoint tests.
func steppedCfg() congest.Config {
	return congest.Config{Engine: congest.EngineStepped}
}

// runUninterrupted is the reference observation.
func runUninterrupted(t *testing.T, c CkptCase, g *graph.Graph) ([]byte, congest.Metrics) {
	t.Helper()
	factory, _, output := c.Build(g)
	m, err := congest.NewNetwork(g, steppedCfg()).RunStepped(factory)
	if err != nil {
		t.Fatalf("%s: uninterrupted run failed: %v", c.Name, err)
	}
	return output(), m
}

// TestCkptCasesRegistered pins the acceptance floor: at least three
// checkpointable conformance programs.
func TestCkptCasesRegistered(t *testing.T) {
	if n := len(CkptCases()); n < 3 {
		t.Fatalf("%d checkpointable cases registered, want >= 3", n)
	}
}

// TestCkptResumeEveryBoundary interrupts every checkpointable case at every
// interior round boundary (via a deterministic injected fault, checkpoints
// every round) and resumes from the file with fresh host slices: outputs
// and metrics must match the uninterrupted run exactly, whichever boundary
// the run died at.
func TestCkptResumeEveryBoundary(t *testing.T) {
	graphs := []NamedGraph{
		{"grid12x12", graph.Grid(12, 12)},
		{"gnp100", graph.GNPConnected(100, 0.04, 6)},
		{"star12", graph.Star(12)},
	}
	for _, c := range CkptCases() {
		t.Run(c.Name, func(t *testing.T) {
			for _, ng := range graphs {
				wantOut, wantM := runUninterrupted(t, c, ng.G)
				for kill := 2; kill <= c.Rounds; kill++ {
					path := filepath.Join(t.TempDir(), "run.ckpt")

					// Interrupted attempt: an injected fault aborts the run at
					// boundary kill; the last checkpoint on disk is kill-1.
					factory, host, _ := c.Build(ng.G)
					cfg := steppedCfg()
					cfg.Hooks = chaos.NewPlan(0, chaos.Fault{Kind: chaos.FailRound, Round: kill})
					spec := congest.CkptSpec{Path: path, Every: 1, Host: host}
					_, err := congest.NewNetwork(ng.G, cfg).RunSteppedCkpt(factory, spec)
					if !errors.Is(err, congest.ErrInjected) {
						t.Fatalf("%s kill=%d: interrupted run: err=%v, want ErrInjected", ng.Name, kill, err)
					}
					data, err := os.ReadFile(path)
					if err != nil {
						t.Fatalf("%s kill=%d: no checkpoint: %v", ng.Name, kill, err)
					}
					cp, err := congest.DecodeCkpt(data)
					if err != nil {
						t.Fatalf("%s kill=%d: checkpoint does not decode: %v", ng.Name, kill, err)
					}
					if cp.Round != kill-1 {
						t.Fatalf("%s kill=%d: checkpoint at round %d, want %d", ng.Name, kill, cp.Round, kill-1)
					}

					// Resume with a fresh build (new host slices, no hooks).
					factory2, host2, output2 := c.Build(ng.G)
					spec2 := congest.CkptSpec{Path: path, Every: 1, Host: host2}
					m, err := congest.NewNetwork(ng.G, steppedCfg()).RunSteppedCkpt(factory2, spec2)
					if err != nil {
						t.Fatalf("%s kill=%d: resume failed: %v", ng.Name, kill, err)
					}
					if got := output2(); !bytes.Equal(got, wantOut) {
						t.Errorf("%s kill=%d: resumed output diverges (%d vs %d bytes)",
							ng.Name, kill, len(got), len(wantOut))
					}
					if err := diffMetrics(wantM, m); err != nil {
						t.Errorf("%s kill=%d: resumed metrics diverge: %v", ng.Name, kill, err)
					}
				}
			}
		})
	}
}

// TestCkptResumeWrongGraph: a checkpoint replayed against a different graph
// must fail with ErrBadCkpt, not silently misapply state.
func TestCkptResumeWrongGraph(t *testing.T) {
	c := CkptCases()[0]
	g := graph.Grid(12, 12)
	path := filepath.Join(t.TempDir(), "run.ckpt")
	factory, host, _ := c.Build(g)
	cfg := steppedCfg()
	cfg.Hooks = chaos.NewPlan(0, chaos.Fault{Kind: chaos.FailRound, Round: 3})
	_, err := congest.NewNetwork(g, cfg).RunSteppedCkpt(factory, congest.CkptSpec{Path: path, Every: 1, Host: host})
	if !errors.Is(err, congest.ErrInjected) {
		t.Fatalf("interrupted run: %v", err)
	}
	// Same node count, different edges → different fingerprint.
	other := graph.Torus(12, 12)
	factory2, host2, _ := c.Build(other)
	_, err = congest.NewNetwork(other, steppedCfg()).RunSteppedCkpt(factory2, congest.CkptSpec{Path: path, Every: 1, Host: host2})
	if !errors.Is(err, congest.ErrBadCkpt) {
		t.Fatalf("resume on the wrong graph: err=%v, want ErrBadCkpt", err)
	}
	if got := congest.SentinelClass(err); got != "bad-ckpt" {
		t.Fatalf("sentinel class %q, want bad-ckpt", got)
	}
}

// killHook exits the process cold at a configured round boundary — the
// fresh-process kill. os.Exit skips every deferred cleanup, so the on-disk
// checkpoint is whatever the atomic write protocol left there, exactly as
// after a real crash or SIGKILL.
type killHook struct{ round int }

func (h killHook) Crash(v, op int) bool                          { return false }
func (h killHook) AlterPayload(v, port, op int, p []byte) []byte { return p }
func (h killHook) Stall(round int)                               {}
func (h killHook) RoundEnd(round int) error {
	if round == h.round {
		os.Exit(41)
	}
	return nil
}

// ckptChildGraph is the fresh-process corpus graph: 102400 nodes, past the
// 10^5 acceptance floor.
func ckptChildGraph() *graph.Graph { return graph.Grid(320, 320) }

const ckptChildKillRound = 3

// TestKillResumeChild is the helper process of TestKillResumeFreshProcess:
// it starts a checkpointed run and dies cold at the configured boundary. It
// skips unless the parent's environment variables are set.
func TestKillResumeChild(t *testing.T) {
	path := os.Getenv("CONFORMANCE_CKPT_PATH")
	if path == "" {
		t.Skip("helper process for TestKillResumeFreshProcess")
	}
	name := os.Getenv("CONFORMANCE_CKPT_CASE")
	kill, err := strconv.Atoi(os.Getenv("CONFORMANCE_CKPT_KILL"))
	if err != nil {
		t.Fatalf("bad kill round: %v", err)
	}
	for _, c := range CkptCases() {
		if c.Name != name {
			continue
		}
		g := ckptChildGraph()
		factory, host, _ := c.Build(g)
		cfg := steppedCfg()
		cfg.Hooks = killHook{round: kill}
		_, err := congest.NewNetwork(g, cfg).RunSteppedCkpt(factory, congest.CkptSpec{Path: path, Every: 1, Host: host})
		t.Fatalf("run outlived the kill at round %d (err=%v)", kill, err)
	}
	t.Fatalf("unknown case %q", name)
}

// TestKillResumeFreshProcess is the cross-process acceptance test: for every
// checkpointable case on a 102400-node grid, a child process is killed cold
// (os.Exit inside the engine) at an interior round boundary, and this
// process resumes from the checkpoint it left behind. Outputs, metrics and
// the recorded ledger must be byte-identical to an uninterrupted run.
func TestKillResumeFreshProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: in-process resume tests cover the format")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("locating test binary: %v", err)
	}
	g := ckptChildGraph()
	for _, c := range CkptCases() {
		t.Run(c.Name, func(t *testing.T) {
			// Reference: uninterrupted run, with its audited ledger.
			factory, _, output := c.Build(g)
			wantM, err := congest.NewNetwork(g, steppedCfg()).RunStepped(factory)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			wantOut := output()
			var wantLedger congest.Ledger
			wantLedger.RecordRun(c.Name, wantM)

			// Child: killed cold at the boundary.
			path := filepath.Join(t.TempDir(), "run.ckpt")
			cmd := exec.Command(exe, "-test.run", "^TestKillResumeChild$")
			cmd.Env = append(os.Environ(),
				"CONFORMANCE_CKPT_PATH="+path,
				"CONFORMANCE_CKPT_CASE="+c.Name,
				"CONFORMANCE_CKPT_KILL="+strconv.Itoa(ckptChildKillRound),
			)
			out, err := cmd.CombinedOutput()
			var exit *exec.ExitError
			if !errors.As(err, &exit) || exit.ExitCode() != 41 {
				t.Fatalf("child: err=%v (want exit code 41)\n%s", err, out)
			}
			cp, err := congest.DecodeCkpt(mustRead(t, path))
			if err != nil {
				t.Fatalf("child checkpoint does not decode: %v", err)
			}
			if cp.Round != ckptChildKillRound-1 {
				t.Fatalf("child checkpoint at round %d, want %d", cp.Round, ckptChildKillRound-1)
			}

			// Fresh process (this one, relative to the child): resume.
			factory2, host2, output2 := c.Build(g)
			m, err := congest.NewNetwork(g, steppedCfg()).RunSteppedCkpt(factory2,
				congest.CkptSpec{Path: path, Every: 1, Host: host2})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if got := output2(); !bytes.Equal(got, wantOut) {
				t.Errorf("resumed output diverges (%d vs %d bytes)", len(got), len(wantOut))
			}
			if err := diffMetrics(wantM, m); err != nil {
				t.Errorf("resumed metrics diverge: %v", err)
			}
			var gotLedger congest.Ledger
			gotLedger.RecordRun(c.Name, m)
			if !bytes.Equal(gotLedger.AppendState(nil), wantLedger.AppendState(nil)) {
				t.Errorf("resumed ledger diverges:\n got: %v\nwant: %v", &gotLedger, &wantLedger)
			}
		})
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}
