package conformance

import (
	"errors"
	"fmt"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// Checkpointable cases: a subset of the stepped program corpus whose
// per-node state implements congest.CkptStep and whose shared outputs are
// exposed as a congest.HostState, so the kill-and-resume tests can
// interrupt a run at an interior round boundary, resume it from the .ckpt
// file (in the same or a fresh process, against freshly allocated host
// slices), and require byte-identical outputs and metrics to an
// uninterrupted run.

// CkptCase is one checkpointable stepped program under differential test.
// Build constructs, for a concrete graph, the step factory, the host-state
// receiver covering the program's shared outputs, and the canonical output
// serializer — the same bytes the plain conformance harness compares.
type CkptCase struct {
	Name string
	// Rounds is the number of delivery rounds the program performs on a
	// graph with ≥ 2 nodes; kill-resume tests use it to pick interior
	// boundaries.
	Rounds int
	Build  func(g *graph.Graph) (congest.StepFactory, congest.HostState, func() []byte)
}

// ckptCases is the checkpointable registry, populated below.
var ckptCases []CkptCase

// CkptCases returns the registered checkpointable cases.
func CkptCases() []CkptCase { return ckptCases }

func init() {
	ckptCases = []CkptCase{
		{Name: "mixer", Rounds: 5, Build: buildMixerCkpt},
		{Name: "port-pingpong", Rounds: 6, Build: buildPortPingpongCkpt},
		{Name: "silent-rounds", Rounds: 6, Build: buildSilentRoundsCkpt},
		{Name: "early-stop", Rounds: 4, Build: buildEarlyStopCkpt},
	}
}

func buildMixerCkpt(g *graph.Graph) (congest.StepFactory, congest.HostState, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &mixerStep{out: out}
	}
	return factory, HostInt64s(out), outputInts(out)
}

func buildPortPingpongCkpt(g *graph.Graph) (congest.StepFactory, congest.HostState, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &portPingpongStep{out: out}
	}
	return factory, HostInt64s(out), outputInts(out)
}

func buildSilentRoundsCkpt(g *graph.Graph) (congest.StepFactory, congest.HostState, func() []byte) {
	out := make([]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &silentRoundsStep{out: out}
	}
	return factory, HostInt64s(out), outputInts(out)
}

func buildEarlyStopCkpt(g *graph.Graph) (congest.StepFactory, congest.HostState, func() []byte) {
	seen := make([][]int64, g.N())
	factory := func(nd *congest.Node) congest.StepProgram {
		return &earlyStopStep{seen: seen}
	}
	host := HostNestedInt64s(seen)
	return factory, host, func() []byte {
		var buf []byte
		for _, s := range seen {
			buf = appendInt(buf, int64(len(s)))
			for _, x := range s {
				buf = appendInt(buf, x)
			}
		}
		return buf
	}
}

// Per-node CkptStep state. Each program's state is exactly what its struct
// accumulates across Steps; shared output slices travel in the HostState
// blob instead (a node that finished before the checkpoint has no per-node
// state left, but its output must still survive the resume).

var errBadState = errors.New("conformance: malformed program state")

func (s *mixerStep) AppendState(buf []byte) []byte {
	return congest.AppendVarint(buf, s.acc)
}

func (s *mixerStep) RestoreState(data []byte) error {
	acc, off := congest.Varint(data, 0)
	if off != len(data) {
		return errBadState
	}
	s.acc = acc
	return nil
}

func (s *portPingpongStep) AppendState(buf []byte) []byte {
	return congest.AppendVarint(buf, s.acc)
}

func (s *portPingpongStep) RestoreState(data []byte) error {
	acc, off := congest.Varint(data, 0)
	if off != len(data) {
		return errBadState
	}
	s.acc = acc
	return nil
}

func (s *silentRoundsStep) AppendState(buf []byte) []byte {
	return congest.AppendVarint(buf, s.total)
}

func (s *silentRoundsStep) RestoreState(data []byte) error {
	total, off := congest.Varint(data, 0)
	if off != len(data) {
		return errBadState
	}
	s.total = total
	return nil
}

func (s *earlyStopStep) AppendState(buf []byte) []byte {
	return congest.AppendVarint(buf, int64(s.rounds))
}

func (s *earlyStopStep) RestoreState(data []byte) error {
	rounds, off := congest.Varint(data, 0)
	if off != len(data) || rounds < 0 || rounds > 1<<20 {
		return errBadState
	}
	s.rounds = int(rounds)
	return nil
}

// Compile-time checks that the checkpointable programs implement CkptStep.
var (
	_ congest.CkptStep = (*mixerStep)(nil)
	_ congest.CkptStep = (*portPingpongStep)(nil)
	_ congest.CkptStep = (*silentRoundsStep)(nil)
	_ congest.CkptStep = (*earlyStopStep)(nil)
)

// Int64sHost checkpoints a node-indexed []int64 in place: RestoreHost
// decodes into the same backing array the per-node programs hold, so a
// resume sees the outputs finished nodes wrote before the checkpoint.
type Int64sHost struct{ xs []int64 }

// HostInt64s wraps xs as a HostState.
func HostInt64s(xs []int64) *Int64sHost { return &Int64sHost{xs} }

// AppendHost implements congest.HostState.
func (h *Int64sHost) AppendHost(buf []byte) []byte {
	buf = congest.AppendUvarint(buf, uint64(len(h.xs)))
	for _, x := range h.xs {
		buf = congest.AppendVarint(buf, x)
	}
	return buf
}

// RestoreHost implements congest.HostState. The encoded length must match
// the receiver's (host slices are sized by the graph, and the checkpoint's
// graph fingerprint was already verified).
func (h *Int64sHost) RestoreHost(data []byte) error {
	n, off := congest.Uvarint(data, 0)
	if off < 0 || n != uint64(len(h.xs)) {
		return fmt.Errorf("conformance: host state: length %d, want %d", n, len(h.xs))
	}
	for i := range h.xs {
		x, o := congest.Varint(data, off)
		if o < 0 {
			return errBadState
		}
		h.xs[i] = x
		off = o
	}
	if off != len(data) {
		return errBadState
	}
	return nil
}

// NestedInt64sHost checkpoints a node-indexed [][]int64: the outer slice is
// restored in place (index by index), the rows are rebuilt.
type NestedInt64sHost struct{ xs [][]int64 }

// HostNestedInt64s wraps xs as a HostState.
func HostNestedInt64s(xs [][]int64) *NestedInt64sHost { return &NestedInt64sHost{xs} }

// AppendHost implements congest.HostState.
func (h *NestedInt64sHost) AppendHost(buf []byte) []byte {
	buf = congest.AppendUvarint(buf, uint64(len(h.xs)))
	for _, row := range h.xs {
		buf = congest.AppendUvarint(buf, uint64(len(row)))
		for _, x := range row {
			buf = congest.AppendVarint(buf, x)
		}
	}
	return buf
}

// RestoreHost implements congest.HostState.
func (h *NestedInt64sHost) RestoreHost(data []byte) error {
	n, off := congest.Uvarint(data, 0)
	if off < 0 || n != uint64(len(h.xs)) {
		return fmt.Errorf("conformance: host state: length %d, want %d", n, len(h.xs))
	}
	for i := range h.xs {
		ln, o := congest.Uvarint(data, off)
		if o < 0 || ln > uint64(len(data)-o) {
			return errBadState
		}
		off = o
		row := make([]int64, 0, ln)
		for j := uint64(0); j < ln; j++ {
			x, o := congest.Varint(data, off)
			if o < 0 {
				return errBadState
			}
			row = append(row, x)
			off = o
		}
		if len(row) == 0 {
			row = nil
		}
		h.xs[i] = row
	}
	if off != len(data) {
		return errBadState
	}
	return nil
}

var (
	_ congest.HostState = (*Int64sHost)(nil)
	_ congest.HostState = (*NestedInt64sHost)(nil)
)
