package conformance

import (
	"errors"
	"sync/atomic"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
)

// TestCorpusSize pins the acceptance floor: the differential corpus holds
// at least 20 graphs even in short mode.
func TestCorpusSize(t *testing.T) {
	if n := len(Corpus(true)); n < 20 {
		t.Fatalf("short corpus has %d graphs, want >= 20", n)
	}
	if n := len(Corpus(false)); n < 20 {
		t.Fatalf("full corpus has %d graphs, want >= 20", n)
	}
}

// TestSteppedCorpusComplete pins the stepped program corpus: every
// registered case must carry a StepProgram port, so the stepped engine is
// exercised by the full differential suite, not a subset.
func TestSteppedCorpusComplete(t *testing.T) {
	for _, c := range Cases() {
		if c.BuildStep == nil {
			t.Errorf("case %s has no stepped variant", c.Name)
		}
	}
}

// TestConformance is the differential suite: every registered program on
// every corpus graph must be indistinguishable across engines — identical
// output bytes, round counts and bandwidth metrics. Cases with a stepped
// variant additionally run it via RunStepped on every engine, inside the
// same Diff.
func TestConformance(t *testing.T) {
	corpus := Corpus(testing.Short())
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			for _, ng := range corpus {
				if err := Diff(c, ng.G, congest.Config{}); err != nil {
					t.Errorf("graph %s: %v", ng.Name, err)
				}
			}
		})
	}
}

// TestConformanceLocalModel repeats the suite in the LOCAL model (no
// bandwidth bound), on a reduced corpus.
func TestConformanceLocalModel(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: CONGEST-model pass covers the engines")
	}
	corpus := Corpus(true)
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			for _, ng := range corpus {
				if err := Diff(c, ng.G, congest.Config{Model: congest.Local}); err != nil {
					t.Errorf("graph %s: %v", ng.Name, err)
				}
			}
		})
	}
}

// TestConformanceTightBudget repeats the suite with a bandwidth factor of 8
// (half the default), shrinking the budget the programs must fit in.
func TestConformanceTightBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: default-budget pass covers the engines")
	}
	corpus := Corpus(true)
	for _, c := range Cases() {
		if c.Name == "budget-edge" {
			continue // sized for the default factor by construction
		}
		t.Run(c.Name, func(t *testing.T) {
			for _, ng := range corpus {
				if err := Diff(c, ng.G, congest.Config{BandwidthFactor: 8}); err != nil {
					t.Errorf("graph %s: %v", ng.Name, err)
				}
			}
		})
	}
}

// TestErrorEquivalence: simulator violations must surface as the same
// sentinel error on every engine.
func TestErrorEquivalence(t *testing.T) {
	g := graph.GNPConnected(24, 0.2, 13)
	t.Run("bandwidth", func(t *testing.T) {
		for _, eng := range congest.Engines() {
			net := congest.NewNetwork(g, congest.Config{BandwidthFactor: 1, Engine: eng})
			_, err := net.Run(func(nd *congest.Node) {
				nd.Broadcast(make([]byte, 64))
				nd.Sync()
			})
			if !errors.Is(err, congest.ErrBandwidth) {
				t.Errorf("%v: err=%v, want ErrBandwidth", eng, err)
			}
		}
	})
	t.Run("max-rounds", func(t *testing.T) {
		for _, eng := range congest.Engines() {
			net := congest.NewNetwork(g, congest.Config{MaxRounds: 8, Engine: eng})
			_, err := net.Run(func(nd *congest.Node) {
				for {
					nd.Sync()
				}
			})
			if !errors.Is(err, congest.ErrMaxRounds) {
				t.Errorf("%v: err=%v, want ErrMaxRounds", eng, err)
			}
		}
	})
	t.Run("program-panic", func(t *testing.T) {
		for _, eng := range congest.Engines() {
			net := congest.NewNetwork(g, congest.Config{Engine: eng})
			_, err := net.Run(func(nd *congest.Node) {
				if nd.V() == 7 {
					panic("deliberate")
				}
				for r := 0; r < 4; r++ {
					nd.Broadcast([]byte{1})
					nd.Sync()
				}
			})
			if err == nil {
				t.Errorf("%v: program panic did not surface", eng)
			}
		}
	})
}

// TestFailurePathEquivalence pins the failure contract across engines: a
// run that exceeds MaxRounds must leave identical host-visible side
// effects (rounds completed per node) and identical progress metrics —
// nodes unwind at the first wake after the failure on every engine, and
// the metrics of the aborted run must still say how far it got.
func TestFailurePathEquivalence(t *testing.T) {
	g := graph.Grid(4, 4)
	type obs struct {
		completed []int64
		rounds    int
		messages  int64
		bits      int64
	}
	run := func(eng congest.Engine) obs {
		completed := make([]int64, g.N())
		m, err := congest.NewNetwork(g, congest.Config{MaxRounds: 5, Engine: eng}).Run(func(nd *congest.Node) {
			for {
				nd.Broadcast([]byte{1})
				nd.Sync()
				completed[nd.V()]++
			}
		})
		if !errors.Is(err, congest.ErrMaxRounds) {
			t.Fatalf("%v: err=%v, want ErrMaxRounds", eng, err)
		}
		return obs{completed: completed, rounds: m.Rounds, messages: m.Messages, bits: m.Bits}
	}
	ref := run(congest.EngineGoroutine)
	if ref.rounds == 0 {
		t.Error("failed run reported Rounds=0; the metrics must say how far it got")
	}
	for _, eng := range congest.Engines() {
		got := run(eng)
		if got.rounds != ref.rounds || got.messages != ref.messages || got.bits != ref.bits {
			t.Errorf("%v: failure-path metrics diverge: (%d,%d,%d) vs (%d,%d,%d)",
				eng, got.rounds, got.messages, got.bits, ref.rounds, ref.messages, ref.bits)
		}
		for v := range got.completed {
			if got.completed[v] != ref.completed[v] {
				t.Errorf("%v: node %d completed %d rounds, goroutine reference %d",
					eng, v, got.completed[v], ref.completed[v])
			}
		}
	}
}

// runawayStep broadcasts forever; under a clamped MaxRounds every engine
// must fail at the same delivery with the same traffic counted.
type runawayStep struct{}

func (s *runawayStep) Init(nd *congest.Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *runawayStep) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	nd.Broadcast([]byte{1})
	return false
}

// lateOversend behaves for two rounds, then node 0 blows the CONGEST
// budget in round segment 2 — so the failure lands mid-run, after real
// traffic has been counted.
type lateOversend struct{}

func (s *lateOversend) Init(nd *congest.Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *lateOversend) Step(nd *congest.Node, round int, in []congest.Incoming) bool {
	seg := round + 1 // Step(round) queues round segment round+1's sends
	if seg == 2 && nd.V() == 0 {
		nd.Broadcast(make([]byte, 1024))
	}
	nd.Broadcast([]byte{byte(seg%2 + 1)})
	return false
}

// TestFailureMetricsConformance drives runs that end in ErrMaxRounds and
// ErrBandwidth through the differential harness: every engine × program
// form must report identical Rounds/Messages/Bits for the aborted run, not
// just an equivalent sentinel error. (Diff's failure branch does the
// comparison; this test supplies the failing cases, which the registered
// corpus — all successful programs — never exercises.)
func TestFailureMetricsConformance(t *testing.T) {
	corpus := Corpus(true)[:8]
	maxRounds := Case{
		Name: "runaway-max-rounds",
		Build: func(g *graph.Graph) (congest.Program, func() []byte) {
			prog := func(nd *congest.Node) {
				for {
					nd.Broadcast([]byte{1})
					nd.Sync()
				}
			}
			return prog, func() []byte { return nil }
		},
		BuildStep: func(g *graph.Graph) (congest.StepFactory, func() []byte) {
			return func(nd *congest.Node) congest.StepProgram { return &runawayStep{} },
				func() []byte { return nil }
		},
	}
	oversend := Case{
		Name: "late-oversend-bandwidth",
		Build: func(g *graph.Graph) (congest.Program, func() []byte) {
			prog := func(nd *congest.Node) {
				for r := 0; ; r++ {
					if r == 2 && nd.V() == 0 {
						nd.Broadcast(make([]byte, 1024))
					}
					nd.Broadcast([]byte{byte(r%2 + 1)})
					nd.Sync()
				}
			}
			return prog, func() []byte { return nil }
		},
		BuildStep: func(g *graph.Graph) (congest.StepFactory, func() []byte) {
			return func(nd *congest.Node) congest.StepProgram { return &lateOversend{} },
				func() []byte { return nil }
		},
	}
	t.Run("max-rounds", func(t *testing.T) {
		for _, ng := range corpus {
			if err := Diff(maxRounds, ng.G, congest.Config{MaxRounds: 6}); err != nil {
				t.Errorf("graph %s: %v", ng.Name, err)
			}
		}
	})
	t.Run("bandwidth", func(t *testing.T) {
		for _, ng := range corpus {
			if ng.G.Degree(0) == 0 {
				continue // node 0 cannot oversend without an edge
			}
			if err := Diff(oversend, ng.G, congest.Config{MaxRounds: 6}); err != nil {
				t.Errorf("graph %s: %v", ng.Name, err)
			}
		}
	})
}

// TestDiffDetectsDivergence sanity-checks the harness itself: runs whose
// outputs differ must be flagged. The evil case returns a different output
// on every Build (as an engine-dependent program would).
func TestDiffDetectsDivergence(t *testing.T) {
	builds := int64(0)
	evil := Case{
		Name: "engine-sniffer",
		Build: func(g *graph.Graph) (congest.Program, func() []byte) {
			builds++
			stamp := builds
			prog := func(nd *congest.Node) { nd.Sync() }
			return prog, func() []byte { return appendInt(nil, stamp) }
		},
	}
	g := graph.Cycle(6)
	if err := Diff(evil, g, congest.Config{}); err == nil {
		t.Fatal("harness failed to flag diverging outputs")
	}
}

// TestEmptyPayloadNilCanonical pins the canonicalization that keeps the
// empty-message representation engine-independent: zero-length sends are
// delivered as nil on every engine.
func TestEmptyPayloadNilCanonical(t *testing.T) {
	g := graph.Cycle(6)
	for _, eng := range congest.Engines() {
		var nonNil atomic.Int64
		_, err := congest.NewNetwork(g, congest.Config{Engine: eng}).Run(func(nd *congest.Node) {
			nd.Broadcast([]byte{})
			in := nd.Sync()
			for _, msg := range in {
				if msg.Payload != nil {
					nonNil.Add(1)
				}
			}
		})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		if n := nonNil.Load(); n != 0 {
			t.Errorf("%v: %d empty payloads delivered non-nil", eng, n)
		}
	}
}
