package conformance

import (
	"errors"
	"testing"

	"congestds/internal/chaos"
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// The fault-schedule corpus: every registered program, on a corpus of
// graphs, under a corpus of fault plans — crashes at interior opportunities,
// deterministic payload corruption, injected round faults and deterministic
// deadlines — must stay engine-indistinguishable: same outputs (or same
// sentinel class) and identical honest metrics across the three engines and
// both program forms. Diff does the comparison; this file supplies the
// schedules.

// namedPlan is one fault schedule of the corpus.
type namedPlan struct {
	name string
	plan *chaos.Plan
}

// faultPlans builds the fault-schedule corpus for an n-node graph. Node and
// opportunity indices are chosen to hit the small corpus graphs (crashes
// clamp to n); schedules that reference rounds past a program's lifetime
// simply never fire, which is itself part of the corpus (a fault that does
// not land must not perturb anything).
func faultPlans(n int, short bool) []namedPlan {
	clamp := func(v int) int {
		if v >= n {
			return n - 1
		}
		return v
	}
	plans := []namedPlan{
		{"crash-init", chaos.NewPlan(1,
			chaos.Fault{Kind: chaos.CrashNode, Node: 0, Round: 0},
			chaos.Fault{Kind: chaos.CrashNode, Node: clamp(3), Round: 0},
		)},
		{"crash-interior", chaos.NewPlan(2,
			chaos.Fault{Kind: chaos.CrashNode, Node: clamp(1), Round: 1},
			chaos.Fault{Kind: chaos.CrashNode, Node: clamp(2), Round: 2},
		)},
		{"truncate", chaos.NewPlan(3,
			chaos.Fault{Kind: chaos.TruncatePayload, Node: 0, Port: -1, Round: 1, Arg: 0},
			chaos.Fault{Kind: chaos.TruncatePayload, Node: clamp(1), Port: 0, Round: 2, Arg: 1},
		)},
		{"flip", chaos.NewPlan(4,
			chaos.Fault{Kind: chaos.FlipPayload, Node: 0, Port: -1, Round: 1},
			chaos.Fault{Kind: chaos.FlipPayload, Node: clamp(5), Port: -1, Round: 0},
		)},
		{"deadline-at-2", chaos.NewPlan(5,
			chaos.Fault{Kind: chaos.DeadlineRound, Round: 2},
		)},
		{"fail-at-1", chaos.NewPlan(6,
			chaos.Fault{Kind: chaos.FailRound, Round: 1},
		)},
		{"crash-flood-source", chaos.NewPlan(7,
			chaos.Fault{Kind: chaos.CrashNode, Node: 0, Round: 0},
			chaos.Fault{Kind: chaos.DeadlineRound, Round: 4},
		)},
		{"random-8", chaos.RandomPlan(0xc0ffee, n, 6, 8)},
	}
	if !short {
		plans = append(plans,
			namedPlan{"extend-overflow", chaos.NewPlan(8,
				chaos.Fault{Kind: chaos.ExtendPayload, Node: 0, Port: -1, Round: 1, Arg: 64},
			)},
			namedPlan{"stall-and-crash", chaos.NewPlan(9,
				chaos.Fault{Kind: chaos.StallRound, Round: 1, Arg: 1},
				chaos.Fault{Kind: chaos.CrashNode, Node: clamp(4), Round: 2},
			)},
			namedPlan{"random-12", chaos.RandomPlan(0xfeedbeef, n, 6, 12)},
		)
	}
	return plans
}

// TestFaultScheduleConformance is the fault-schedule differential suite.
func TestFaultScheduleConformance(t *testing.T) {
	short := testing.Short()
	corpus := Corpus(true)
	if short {
		corpus = corpus[:10]
	}
	for _, c := range Cases() {
		t.Run(c.Name, func(t *testing.T) {
			for _, ng := range corpus {
				for _, np := range faultPlans(ng.G.N(), short) {
					cfg := congest.Config{Hooks: np.plan}
					if err := Diff(c, ng.G, cfg); err != nil {
						t.Errorf("graph %s, plan %s: %v", ng.Name, np.name, err)
					}
				}
			}
		})
	}
}

// TestCrashAllNodes: crashing every node at opportunity 0 must end the run
// after zero rounds on every engine, with zero traffic counted.
func TestCrashAllNodes(t *testing.T) {
	g := graph.Grid(5, 6)
	faults := make([]chaos.Fault, g.N())
	for v := range faults {
		faults[v] = chaos.Fault{Kind: chaos.CrashNode, Node: v, Round: 0}
	}
	plan := chaos.NewPlan(0, faults...)
	c := Cases()[0]
	for _, eng := range congest.Engines() {
		check := func(form string, m congest.Metrics, err error) {
			if err != nil {
				t.Errorf("%v %s: err=%v, want nil (a crash is not a run failure)", eng, form, err)
			}
			if m.Rounds != 0 || m.Messages != 0 || m.Bits != 0 {
				t.Errorf("%v %s: metrics (%d rounds, %d msgs, %d bits) after total crash, want all zero",
					eng, form, m.Rounds, m.Messages, m.Bits)
			}
		}
		cfg := congest.Config{Engine: eng, Hooks: plan}
		prog, _ := c.Build(g)
		m, err := congest.NewNetwork(g, cfg).Run(prog)
		check("blocking", m, err)
		factory, _ := c.BuildStep(g)
		m, err = congest.NewNetwork(g, cfg).RunStepped(factory)
		check("stepped", m, err)
	}
}

// TestInjectedRoundFaultClasses pins the sentinel classes of injected round
// faults on every engine: FailRound → "injected", DeadlineRound →
// "deadline", and the metrics include the round the fault fired at.
func TestInjectedRoundFaultClasses(t *testing.T) {
	g := graph.Cycle(17)
	c := Cases()[1] // flood-distance: runs n rounds, comfortably past round 3
	for _, tc := range []struct {
		kind  chaos.Kind
		class string
	}{
		{chaos.FailRound, "injected"},
		{chaos.DeadlineRound, "deadline"},
	} {
		plan := chaos.NewPlan(0, chaos.Fault{Kind: tc.kind, Round: 3})
		for _, eng := range congest.Engines() {
			cfg := congest.Config{Engine: eng, Hooks: plan}
			prog, _ := c.Build(g)
			m, err := congest.NewNetwork(g, cfg).Run(prog)
			if got := congest.SentinelClass(err); got != tc.class {
				t.Errorf("%v under %v: class %q (err=%v), want %q", eng, tc.kind, got, err, tc.class)
			}
			if m.Rounds != 3 {
				t.Errorf("%v under %v: Rounds=%d, want 3 (the boundary the fault fired at)", eng, tc.kind, m.Rounds)
			}
			if tc.kind == chaos.FailRound && !errors.Is(err, congest.ErrInjected) {
				t.Errorf("%v: err=%v does not wrap ErrInjected", eng, err)
			}
			if tc.kind == chaos.DeadlineRound && !errors.Is(err, congest.ErrDeadline) {
				t.Errorf("%v: err=%v does not wrap ErrDeadline", eng, err)
			}
		}
	}
}
