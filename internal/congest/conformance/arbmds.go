package conformance

import (
	"congestds/internal/arbmds"
	"congestds/internal/congest"
	"congestds/internal/graph"
)

// The bounded-arboricity peeling MDS (internal/arbmds) joins the corpus as
// the first full algorithm under differential test: its blocking form and
// its native StepProgram form are written independently (counter-based vs
// per-neighbour bookkeeping), so the suite holding them byte-identical
// across all three engines checks the algorithm's own protocol, not just
// the engines. The output serializes every node's membership bit plus the
// set size, so any divergence in joins — ordering, tie-breaking, support
// accounting — changes the bytes.

func init() {
	Register(Case{Name: "arbmds-peel", Build: buildArbmds, BuildStep: buildArbmdsStep})
}

func arbmdsOutput(inD []bool) func() []byte {
	return func() []byte {
		var buf []byte
		size := int64(0)
		for _, in := range inD {
			if in {
				size++
			}
		}
		buf = appendInt(buf, size)
		for _, in := range inD {
			b := int64(0)
			if in {
				b = 1
			}
			buf = appendInt(buf, b)
		}
		return buf
	}
}

func buildArbmds(g *graph.Graph) (congest.Program, func() []byte) {
	inD := make([]bool, g.N())
	return arbmds.BlockingProgram(g, 0.5, inD), arbmdsOutput(inD)
}

func buildArbmdsStep(g *graph.Graph) (congest.StepFactory, func() []byte) {
	inD := make([]bool, g.N())
	return arbmds.StepFactory(g, 0.5, inD), arbmdsOutput(inD)
}
