package conformance

import (
	"bytes"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/obs"
)

// observed reruns a captured run with a Recorder attached and returns the
// new Result plus the recorder's profile.
func observedRunOn(c Case, g *graph.Graph, eng congest.Engine, cfg congest.Config, stepped bool) (Result, obs.Profile) {
	agg := obs.NewAggregator()
	cfg.Observer = obs.NewRecorder(agg)
	var got Result
	if stepped {
		got = runStepOn(c, g, eng, cfg)
	} else {
		got = runOn(c, g, eng, cfg)
	}
	return got, agg.Profile()
}

// diffObserved compares a plain run against its observed twin: byte-equal
// output, identical metrics (or identical sentinel class and failure
// progress), and the invariant that the observer saw exactly Metrics.Rounds
// round deliveries carrying exactly the run's traffic.
func diffObserved(t *testing.T, label string, plain, got Result, p obs.Profile) {
	t.Helper()
	if (plain.Err == nil) != (got.Err == nil) {
		t.Fatalf("%s: error mismatch: plain=%v observed=%v", label, plain.Err, got.Err)
	}
	if plain.Err != nil {
		if pc, gc := congest.SentinelClass(plain.Err), congest.SentinelClass(got.Err); pc != gc {
			t.Fatalf("%s: sentinel class mismatch: plain=%q observed=%q", label, pc, gc)
		}
		if err := diffFailureMetrics(plain.Metrics, got.Metrics); err != nil {
			t.Fatalf("%s (failed run): %v", label, err)
		}
	} else {
		if !bytes.Equal(plain.Output, got.Output) {
			t.Fatalf("%s: output diverges under observer (%d vs %d bytes)",
				label, len(plain.Output), len(got.Output))
		}
		if err := diffMetrics(plain.Metrics, got.Metrics); err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	if p.Rounds != got.Metrics.Rounds {
		t.Fatalf("%s: observer saw %d RoundEnds, Metrics.Rounds=%d", label, p.Rounds, got.Metrics.Rounds)
	}
	if p.Msgs != got.Metrics.Messages || p.Bits != got.Metrics.Bits {
		t.Fatalf("%s: observer traffic %d msgs/%d bits, metrics %d/%d",
			label, p.Msgs, p.Bits, got.Metrics.Messages, got.Metrics.Bits)
	}
	if p.Hist.Total() != got.Metrics.Messages {
		t.Fatalf("%s: histogram counts %d messages, metrics %d", label, p.Hist.Total(), got.Metrics.Messages)
	}
}

// TestObserverNonParticipation is the observability tentpole's conformance
// guarantee: attaching an obs.Recorder changes nothing. Every registered
// program over the full corpus, on every engine and in both program forms,
// produces byte-identical outputs, identical metrics and identical
// sentinel classes with and without an observer — and the observer's view
// reconciles exactly with the run's metrics.
func TestObserverNonParticipation(t *testing.T) {
	corpus := Corpus(testing.Short())
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cfg := congest.Config{}
			if c.LocalOnly {
				cfg.Model = congest.Local
			}
			for _, ng := range corpus {
				for _, eng := range congest.Engines() {
					plain := runOn(c, ng.G, eng, cfg)
					got, p := observedRunOn(c, ng.G, eng, cfg, false)
					diffObserved(t, ng.Name+"/blocking/"+eng.String(), plain, got, p)
					if c.BuildStep != nil {
						plain = runStepOn(c, ng.G, eng, cfg)
						got, p = observedRunOn(c, ng.G, eng, cfg, true)
						diffObserved(t, ng.Name+"/stepped/"+eng.String(), plain, got, p)
					}
				}
			}
		})
	}
}

// TestObserverNonParticipationOnFailure drives the same identity through
// failing runs: a clamped MaxRounds aborts every case mid-flight, and the
// observed run must fail with the same sentinel, the same progress
// metrics, and RoundEnd count equal to the failed run's Metrics.Rounds.
func TestObserverNonParticipationOnFailure(t *testing.T) {
	g := graph.GNPConnected(40, 0.1, 1)
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			cfg := congest.Config{MaxRounds: 2}
			if c.LocalOnly {
				cfg.Model = congest.Local
			}
			for _, eng := range congest.Engines() {
				plain := runOn(c, g, eng, cfg)
				got, p := observedRunOn(c, g, eng, cfg, false)
				diffObserved(t, "maxrounds/blocking/"+eng.String(), plain, got, p)
				if c.BuildStep != nil {
					plain = runStepOn(c, g, eng, cfg)
					got, p = observedRunOn(c, g, eng, cfg, true)
					diffObserved(t, "maxrounds/stepped/"+eng.String(), plain, got, p)
				}
			}
		})
	}
}
