package conformance

import (
	"errors"
	"testing"

	"congestds/internal/congest"
	"congestds/internal/graph"
	"congestds/internal/mcds"
	"congestds/internal/verify"
)

// TestMcdsFailureMetricsConformance drives the mcds-full case into
// ErrMaxRounds by clamping the round budget mid-schedule: every engine ×
// program form must fail with the same sentinel and report identical
// Rounds/Messages/Bits for the aborted run. Depending on where the clamp
// lands the abort hits the peel, the orientation flood or the connect
// hops, so the failure accounting sees all three traffic shapes.
func TestMcdsFailureMetricsConformance(t *testing.T) {
	c := Case{Name: "mcds-full-clamped", Build: buildMcdsFull, BuildStep: buildMcdsFullStep}
	for _, ng := range Corpus(true)[:10] {
		if ng.G.N() < 2 {
			continue // single-node runs cannot be interrupted mid-run
		}
		inD := make([]bool, ng.G.N())
		inCDS := make([]bool, ng.G.N())
		net := congest.NewNetwork(ng.G, congest.Config{})
		full, err := net.RunStepped(mcds.StepFactory(ng.G, 0.5, corpusDiam(ng.G), inD, inCDS))
		if err != nil {
			t.Fatalf("graph %s: unclamped run failed: %v", ng.Name, err)
		}
		clamp := full.Rounds / 2
		if clamp < 1 {
			continue
		}
		// Sanity: the clamp actually triggers the failure on the reference.
		net = congest.NewNetwork(ng.G, congest.Config{MaxRounds: clamp})
		if _, err := net.RunStepped(mcds.StepFactory(ng.G, 0.5, corpusDiam(ng.G),
			make([]bool, ng.G.N()), make([]bool, ng.G.N()))); !errors.Is(err, congest.ErrMaxRounds) {
			t.Fatalf("graph %s: clamp %d did not trigger ErrMaxRounds: %v", ng.Name, clamp, err)
		}
		if err := Diff(c, ng.G, congest.Config{MaxRounds: clamp}); err != nil {
			t.Errorf("graph %s: %v", ng.Name, err)
		}
	}
}

// TestMcdsCorpusOutputsAreComponentwiseCDS: beyond byte-identity, the
// registered cases' outputs must actually be connected dominating sets of
// every component on every corpus graph — the harness alone would accept
// a consistently-wrong program. (The corpus includes disconnected graphs,
// where the program produces one CDS per component.)
func TestMcdsCorpusOutputsAreComponentwiseCDS(t *testing.T) {
	for _, ng := range Corpus(testing.Short()) {
		for _, cs := range []struct {
			name  string
			build func(g *graph.Graph) (congest.StepFactory, func() []byte)
		}{
			{"full", buildMcdsFullStep},
			{"connect", buildMcdsConnectStep},
		} {
			factory, _ := cs.build(ng.G)
			net := congest.NewNetwork(ng.G, congest.Config{Engine: congest.EngineStepped})
			if _, err := net.RunStepped(factory); err != nil {
				t.Fatalf("graph %s %s: %v", ng.Name, cs.name, err)
			}
			// Recover the CDS from a fresh run's output vector.
			inD := make([]bool, ng.G.N())
			inCDS := make([]bool, ng.G.N())
			var run congest.StepFactory
			if cs.name == "full" {
				run = mcds.StepFactory(ng.G, 0.5, corpusDiam(ng.G), inD, inCDS)
			} else {
				copy(inD, greedyInD(ng.G))
				run = mcds.ConnectStepFactory(ng.G, inD, corpusDiam(ng.G), inCDS)
			}
			if _, err := net.RunStepped(run); err != nil {
				t.Fatalf("graph %s %s: %v", ng.Name, cs.name, err)
			}
			var cds []int
			for v, in := range inCDS {
				if in {
					cds = append(cds, v)
				}
			}
			if err := verify.CheckCDSComponents(ng.G, cds); err != nil {
				t.Errorf("graph %s %s: %v", ng.Name, cs.name, err)
			}
		}
	}
}
