package congest

import (
	"math/bits"
	"testing"
)

// uvarintBytes returns the exact size of the varint encoding of x: seven
// payload bits per byte, at least one byte. This is the "declared bit
// budget" of the codec — identifiers ≤ n and fixed-point values ≤ 2^S must
// encode within ⌈log₂(x+1)/7⌉ bytes so that a constant number of them fits
// a CONGEST message.
func uvarintBytes(x uint64) int {
	n := bits.Len64(x)
	if n == 0 {
		return 1
	}
	return (n + 6) / 7
}

// FuzzCodecRoundTrip checks, for arbitrary values, that the payload codec
// round-trips exactly, consumes exactly the bytes it wrote, never exceeds
// the declared bit budget, and never panics on adversarial input buffers.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), []byte{})
	f.Add(uint64(1), int64(-1), []byte{0x80})
	f.Add(uint64(127), int64(64), []byte{0x80, 0x00})
	f.Add(uint64(128), int64(-300), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01})
	f.Add(uint64(1)<<63, int64(1)<<62, []byte{1, 2, 3})
	f.Add(^uint64(0), int64(-1)<<63, []byte(nil))
	f.Fuzz(func(t *testing.T, u uint64, v int64, raw []byte) {
		// Unsigned round-trip and size budget.
		ubuf := AppendUvarint(nil, u)
		if len(ubuf) > uvarintBytes(u) {
			t.Fatalf("uvarint(%d) uses %d bytes, budget %d", u, len(ubuf), uvarintBytes(u))
		}
		gotU, off := Uvarint(ubuf, 0)
		if off != len(ubuf) || gotU != u {
			t.Fatalf("uvarint round-trip: wrote %d, read (%d, off=%d of %d)", u, gotU, off, len(ubuf))
		}

		// Signed round-trip (zig-zag encoded, so the budget is one extra bit).
		vbuf := AppendVarint(nil, v)
		zig := uint64(v) << 1
		if v < 0 {
			zig = ^zig
		}
		if len(vbuf) > uvarintBytes(zig) {
			t.Fatalf("varint(%d) uses %d bytes, budget %d", v, len(vbuf), uvarintBytes(zig))
		}
		gotV, voff := Varint(vbuf, 0)
		if voff != len(vbuf) || gotV != v {
			t.Fatalf("varint round-trip: wrote %d, read (%d, off=%d of %d)", v, gotV, voff, len(vbuf))
		}

		// Mixed sequence decodes in order with monotone offsets.
		seq := AppendUvarint(nil, u)
		seq = AppendVarint(seq, v)
		seq = AppendUvarint(seq, u>>32)
		x1, o1 := Uvarint(seq, 0)
		x2, o2 := Varint(seq, o1)
		x3, o3 := Uvarint(seq, o2)
		if x1 != u || x2 != v || x3 != u>>32 || o3 != len(seq) || !(0 < o1 && o1 <= o2 && o2 < o3) {
			t.Fatalf("sequence decode mismatch: (%d,%d,%d) offsets (%d,%d,%d)", x1, x2, x3, o1, o2, o3)
		}

		// Adversarial buffers: decoding must fail cleanly (offset -1), never
		// panic, and on success report an offset within bounds.
		if x, off := Uvarint(raw, 0); off > len(raw) {
			t.Fatalf("Uvarint(%x) reported offset %d past end (value %d)", raw, off, x)
		}
		if x, off := Varint(raw, 0); off > len(raw) {
			t.Fatalf("Varint(%x) reported offset %d past end (value %d)", raw, off, x)
		}
		// A successful decode of a canonical re-encode must round-trip.
		if x, off := Uvarint(raw, 0); off > 0 {
			re := AppendUvarint(nil, x)
			if y, _ := Uvarint(re, 0); y != x {
				t.Fatalf("re-encode of decoded %d mismatch: %d", x, y)
			}
			if len(re) > off {
				t.Fatalf("canonical encoding of %d (%d bytes) longer than accepted input (%d)", x, len(re), off)
			}
		}
	})
}
