package congest

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"testing"

	"congestds/internal/graph"
	"congestds/internal/testmem"
)

// echoStep broadcasts a round-stamped payload every round and folds its
// inbox order-sensitively — the broadcast-and-fold pattern of the paper's
// Part I/II phases, used by most stepped-engine tests below.
type echoStep struct {
	out    []int64
	rounds int
	acc    int64
}

func (s *echoStep) Init(nd *Node) bool {
	s.acc = nd.ID()
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func (s *echoStep) Step(nd *Node, round int, in []Incoming) bool {
	for i, msg := range in {
		v, _ := Varint(msg.Payload, 0)
		s.acc = s.acc*31 + v*int64(i+1)
	}
	if round+1 >= s.rounds {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func echoFactory(out []int64, rounds int) StepFactory {
	return func(nd *Node) StepProgram { return &echoStep{out: out, rounds: rounds} }
}

// TestRunSteppedAcrossEngines pins that RunStepped produces identical
// outputs and metrics on every engine: natively on the stepped engine,
// through the blocking adapter elsewhere.
func TestRunSteppedAcrossEngines(t *testing.T) {
	g := graph.GNPConnected(80, 0.08, 17)
	type obs struct {
		out []int64
		m   Metrics
	}
	run := func(eng Engine) obs {
		out := make([]int64, g.N())
		m, err := NewNetwork(g, Config{Engine: eng}).RunStepped(echoFactory(out, 7))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		return obs{out: out, m: m}
	}
	ref := run(EngineGoroutine)
	if ref.m.Rounds != 7 {
		t.Fatalf("reference rounds=%d, want 7", ref.m.Rounds)
	}
	for _, eng := range Engines() {
		got := run(eng)
		if got.m != ref.m {
			t.Errorf("%v metrics %+v != reference %+v", eng, got.m, ref.m)
		}
		for v := range got.out {
			if got.out[v] != ref.out[v] {
				t.Fatalf("%v node %d: %d != reference %d", eng, v, got.out[v], ref.out[v])
			}
		}
	}
}

// TestSteppedSyncRejected: a StepProgram calling Sync must abort the run
// with an error instead of deadlocking the worker pool.
func TestSteppedSyncRejected(t *testing.T) {
	g := graph.Path(4)
	factory := func(nd *Node) StepProgram { return &syncCaller{} }
	_, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(factory)
	if err == nil || !strings.Contains(err.Error(), "must not call Sync") {
		t.Fatalf("err=%v, want Sync rejection", err)
	}
}

type syncCaller struct{}

func (s *syncCaller) Init(nd *Node) bool { nd.Sync(); return true }
func (s *syncCaller) Step(nd *Node, round int, in []Incoming) bool {
	return true
}

// TestSteppedErrors pins the sentinel errors on the native stepped engine.
func TestSteppedErrors(t *testing.T) {
	g := graph.GNPConnected(24, 0.2, 13)
	t.Run("bandwidth", func(t *testing.T) {
		net := NewNetwork(g, Config{BandwidthFactor: 1, Engine: EngineStepped})
		_, err := net.RunStepped(func(nd *Node) StepProgram { return &bigSender{} })
		if !errors.Is(err, ErrBandwidth) {
			t.Errorf("err=%v, want ErrBandwidth", err)
		}
	})
	t.Run("max-rounds", func(t *testing.T) {
		net := NewNetwork(g, Config{MaxRounds: 8, Engine: EngineStepped})
		m, err := net.RunStepped(func(nd *Node) StepProgram { return &forever{} })
		if !errors.Is(err, ErrMaxRounds) {
			t.Errorf("err=%v, want ErrMaxRounds", err)
		}
		// A failed run still reports how far it got: 9 deliveries were
		// performed, the 9th being the one that exceeded MaxRounds=8 —
		// identical on the blocking engines (TestSteppedMaxRoundsSideEffects
		// and the conformance suite's TestFailureMetricsConformance).
		if m.Rounds != 9 {
			t.Errorf("failed run reported Rounds=%d, want 9 (MaxRounds exceeded on the 9th delivery)", m.Rounds)
		}
	})
	t.Run("program-panic", func(t *testing.T) {
		net := NewNetwork(g, Config{Engine: EngineStepped})
		_, err := net.RunStepped(func(nd *Node) StepProgram { return &panicker{} })
		if err == nil || !strings.Contains(err.Error(), "deliberate") {
			t.Errorf("panic did not surface: %v", err)
		}
	})
}

type bigSender struct{}

func (s *bigSender) Init(nd *Node) bool { nd.Broadcast(make([]byte, 64)); return false }
func (s *bigSender) Step(nd *Node, round int, in []Incoming) bool {
	return true
}

type forever struct{}

func (s *forever) Init(nd *Node) bool                           { return false }
func (s *forever) Step(nd *Node, round int, in []Incoming) bool { return false }

type panicker struct{}

func (s *panicker) Init(nd *Node) bool { return false }
func (s *panicker) Step(nd *Node, round int, in []Incoming) bool {
	if nd.V() == 7 {
		panic("deliberate")
	}
	return round >= 3
}

// TestSteppedMaxRoundsSideEffects pins the failure contract of the native
// stepped engine against the blocking reference: same number of completed
// steps per node, same sent-message metrics.
func TestSteppedMaxRoundsSideEffects(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func(eng Engine) ([]int64, Metrics) {
		completed := make([]int64, g.N())
		m, err := NewNetwork(g, Config{MaxRounds: 5, Engine: eng}).RunStepped(
			func(nd *Node) StepProgram { return &countingForever{completed: completed} })
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("%v: err=%v, want ErrMaxRounds", eng, err)
		}
		return completed, m
	}
	refC, refM := run(EngineGoroutine)
	if refM.Rounds == 0 {
		t.Errorf("failed reference run dropped Rounds (got 0, want the rounds delivered before the failure)")
	}
	for _, eng := range Engines() {
		gotC, gotM := run(eng)
		if gotM.Rounds != refM.Rounds || gotM.Messages != refM.Messages || gotM.Bits != refM.Bits {
			t.Errorf("%v: failure metrics (%d,%d,%d) != reference (%d,%d,%d)",
				eng, gotM.Rounds, gotM.Messages, gotM.Bits, refM.Rounds, refM.Messages, refM.Bits)
		}
		for v := range gotC {
			if gotC[v] != refC[v] {
				t.Errorf("%v: node %d completed %d steps, reference %d", eng, v, gotC[v], refC[v])
			}
		}
	}
}

type countingForever struct{ completed []int64 }

func (s *countingForever) Init(nd *Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *countingForever) Step(nd *Node, round int, in []Incoming) bool {
	s.completed[nd.V()]++
	nd.Broadcast([]byte{1})
	return false
}

// TestSteppedWorkerPartition sweeps GOMAXPROCS against awkward node counts
// (regression: with p not dividing n, a trailing worker's range once went
// negative and runStepped panicked on any multi-core machine).
func TestSteppedWorkerPartition(t *testing.T) {
	for procs := 1; procs <= 9; procs++ {
		prev := runtime.GOMAXPROCS(procs)
		for _, n := range []int{1, 2, 3, 5, 7, 9, 16} {
			g := graph.Path(n)
			out := make([]int64, n)
			m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(echoFactory(out, 3))
			if err != nil {
				t.Errorf("p=%d n=%d: %v", procs, n, err)
			} else if m.Rounds != 3 {
				t.Errorf("p=%d n=%d: rounds=%d, want 3", procs, n, m.Rounds)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestSteppedEmptyGraph: the stepped engine must handle n=0 cleanly.
func TestSteppedEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(
		func(nd *Node) StepProgram { return &forever{} })
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 || m.Messages != 0 {
		t.Errorf("empty graph metrics: %+v", m)
	}
}

// arenaAliasStep pins the arena recycling contract: a payload delivered in
// round r must not be aliased (overwritten) by any round r+1 send. Each
// node retains its first inbox payload together with a copy, lets every
// node complete one more full round of arena sends, and then compares.
type arenaAliasStep struct {
	rounds   int
	size     int
	retained []byte // the delivered slice, held one round past the contract
	snapshot []byte // its contents at delivery time
	fail     func(string)
}

func (s *arenaAliasStep) send(nd *Node, r int) {
	buf := nd.PayloadBuf(s.size)[:s.size]
	for i := range buf {
		buf[i] = byte(nd.V() + i + r)
	}
	nd.Broadcast(buf)
}

func (s *arenaAliasStep) Init(nd *Node) bool {
	s.send(nd, 0)
	return false
}

func (s *arenaAliasStep) Step(nd *Node, round int, in []Incoming) bool {
	if s.retained != nil {
		// The sends of round `round` (every node's, including ours below)
		// come from a different arena generation than the payload delivered
		// in round round-1, so the retained bytes must be intact.
		if !bytes.Equal(s.retained, s.snapshot) {
			s.fail(fmt.Sprintf("node %d: payload delivered in round %d was aliased by round %d sends",
				nd.V(), round-1, round))
		}
		s.retained = nil
	}
	if len(in) > 0 && in[0].Payload != nil {
		s.retained = in[0].Payload
		s.snapshot = append([]byte(nil), in[0].Payload...)
	}
	if round+1 >= s.rounds {
		return true
	}
	s.send(nd, round+1)
	return false
}

// TestSteppedArenaNoAliasing runs the retention probe on a graph large
// enough to force arena block growth, under all engines (the fallback path
// allocates fresh buffers, so it trivially holds there; the stepped engine
// is the one under test). The test is -race-clean: retained payloads are
// only read, and the engine guarantees no concurrent writer for one round.
func TestSteppedArenaNoAliasing(t *testing.T) {
	for _, eng := range Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			g := graph.Torus(20, 20)
			var failure string
			fail := func(msg string) {
				if failure == "" {
					failure = msg
				}
			}
			_, err := NewNetwork(g, Config{Engine: eng}).RunStepped(func(nd *Node) StepProgram {
				return &arenaAliasStep{rounds: 12, size: 8, fail: fail}
			})
			if err != nil {
				t.Fatal(err)
			}
			if failure != "" {
				t.Fatal(failure)
			}
		})
	}
}

// TestArenaGrowthKeepsOldBlocks: allocations that outgrow the arena's
// block must not invalidate payloads already handed out from it.
func TestArenaGrowthKeepsOldBlocks(t *testing.T) {
	var a payloadArena
	first := a.alloc(16)
	first = append(first, 1, 2, 3)
	// Force many block replacements within the same round.
	for i := 0; i < 64; i++ {
		b := a.alloc(4096)
		_ = append(b, byte(i))
	}
	if len(first) != 3 || first[0] != 1 || first[2] != 3 {
		t.Fatalf("early allocation corrupted by block growth: %v", first)
	}
	// Appending beyond capacity must fall out of the arena, not clobber it.
	small := a.alloc(2)
	small = append(small, 9, 9, 9, 9)
	next := a.alloc(2)
	next = append(next, 7, 7)
	if small[2] != 9 || next[0] != 7 {
		t.Fatalf("overflow append clobbered the arena: %v %v", small, next)
	}
	// reset recycles the block in place: same backing, zero length.
	a.reset()
	if len(a.block) != 0 || cap(a.block) == 0 {
		t.Fatalf("reset did not truncate in place: len=%d cap=%d", len(a.block), cap(a.block))
	}
}

// TestSlotArenaGenerations pins the packed-record byte lifetime: bytes
// pushed at phase k are the delivered view at phase k+1, survive phase k+2
// untouched (the grace round), and are recycled by the reset at phase k+3.
func TestSlotArenaGenerations(t *testing.T) {
	var a slotArena
	payload := []byte{10, 20, 30}
	a.reset(0)
	off := a.push(0, payload)
	if off != 0 {
		t.Fatalf("first push offset=%d, want 0", off)
	}
	view := a.delivered(1)[off : off+3]
	if !bytes.Equal(view, payload) {
		t.Fatalf("delivered(1) = %v, want %v", view, payload)
	}
	// Phases 1 and 2 write other generations; the view must stay intact.
	a.reset(1)
	a.push(1, []byte{91})
	a.reset(2)
	a.push(2, []byte{92})
	if !bytes.Equal(view, payload) {
		t.Fatalf("grace-round view corrupted: %v", view)
	}
	// Phase 3 recycles generation 0: the slot is rewritten in place.
	a.reset(3)
	a.push(3, []byte{1, 2, 3})
	if bytes.Equal(view, payload) {
		t.Fatalf("phase-3 push did not recycle generation 0 (view still %v)", view)
	}
	// Offsets keep accumulating within one phase.
	if off := a.push(3, []byte{4}); off != 3 {
		t.Fatalf("second push offset=%d, want 3", off)
	}
}

// TestSlotRecEncoding pins the tagged empty/absent encoding that replaces
// the [][]byte path's nil/emptyMsg sentinels: a cleared record is absent,
// ln==1 is a present-but-empty message (delivered nil), ln==k+1 carries k
// bytes — exercised end to end through a deposit/collect round-trip.
func TestSlotRecEncoding(t *testing.T) {
	g := graph.Path(3) // node 1 has ports 0 (to node 0) and 1 (to node 2)
	net := NewNetwork(g, Config{})
	topo := net.topology()
	recs := make([]slotRec, len(topo.destSlot))
	var arena slotArena
	arena.reset(0)
	// Node 0 sends 2 bytes to node 1; node 2 sends an empty message.
	m0, _, _, ok0 := topo.depositOutboxPacked(0, []outMsg{{port: 0, payload: []byte{7, 8}}}, recs, &arena, 0, nil)
	m2, _, _, ok2 := topo.depositOutboxPacked(2, []outMsg{{port: 0, payload: nil}}, recs, &arena, 0, nil)
	if m0 != 1 || m2 != 1 || !ok0 || !ok2 {
		t.Fatalf("deposit counted (%d,%d) messages (ok %v,%v), want (1,1) both ok", m0, m2, ok0, ok2)
	}
	off, end := topo.inOff[1], topo.inOff[2]
	if got := recs[off].ln; got != 3 {
		t.Errorf("2-byte payload record ln=%d, want 3 (len+1)", got)
	}
	if got := recs[off+1]; got != (slotRec{ln: 1}) {
		t.Errorf("empty-message record = %+v, want {off:0 ln:1}", got)
	}
	if int(end-off) != 2 {
		t.Fatalf("node 1 has %d slots, want 2", end-off)
	}
	// Nothing was sent to node 0: its slot must be the absent zero record.
	if got := recs[topo.inOff[0]]; got != (slotRec{}) {
		t.Errorf("absent slot = %+v, want the zero record", got)
	}
	view := arena.delivered(1)
	if pl := view[recs[off].off : recs[off].off+recs[off].ln-1]; !bytes.Equal(pl, []byte{7, 8}) {
		t.Errorf("materialized payload %v, want [7 8]", pl)
	}
}

// TestSlotArenaOverflowFails: a worker pushing past the 32-bit offset
// range must abort the run with a loud error, not wrap silently. The real
// limit is 4 GiB, so the test lowers it instead of allocating that much,
// and drives the failure end to end through a LOCAL-model run.
func TestSlotArenaOverflowFails(t *testing.T) {
	prev := slotPayloadLimit
	slotPayloadLimit = 64
	defer func() { slotPayloadLimit = prev }()
	g := graph.Cycle(6)
	net := NewNetwork(g, Config{Model: Local, Engine: EngineStepped})
	_, err := net.RunStepped(func(nd *Node) StepProgram { return &bigSender{} })
	if err == nil || !strings.Contains(err.Error(), "32-bit") {
		t.Fatalf("err=%v, want the slot-arena 32-bit overflow error", err)
	}
}

// echoBackStep sends per-port payloads with sizes scripted by a fuzz input
// and records a digest of everything received; the fuzz harness compares
// digests between the stepped engine and the goroutine reference. A
// scripted byte of skipMarker suppresses the send entirely, so the fuzzer
// steers all three packed-record states: absent (no send, the zero
// record), present-but-empty (size 0, ln=1) and payload-carrying.
type echoBackStep struct {
	digest []int64
	sizes  []byte
	rounds int
	budget int
}

// skipMarker is the scripted size byte meaning "send nothing on this port".
const skipMarker = 253

func (s *echoBackStep) sizeFor(nd *Node, r, p int) (size int, skip bool) {
	if len(s.sizes) == 0 {
		return 0, false
	}
	raw := int(s.sizes[(nd.V()*31+r*7+p)%len(s.sizes)])
	if raw == skipMarker {
		return 0, true
	}
	return raw % (s.budget + 1), false
}

func (s *echoBackStep) send(nd *Node, r int) {
	for p := 0; p < nd.Degree(); p++ {
		size, skip := s.sizeFor(nd, r, p)
		if skip {
			continue // the receiving slot stays absent this round
		}
		buf := nd.PayloadBuf(size)[:size]
		for i := range buf {
			buf[i] = byte(nd.V() + i + r + p)
		}
		nd.Send(p, buf)
	}
}

func (s *echoBackStep) Init(nd *Node) bool {
	s.send(nd, 0)
	return false
}

func (s *echoBackStep) Step(nd *Node, round int, in []Incoming) bool {
	v := nd.V()
	for _, msg := range in {
		s.digest[v] = s.digest[v]*131 + int64(msg.Port) + int64(len(msg.Payload))*7
		for _, b := range msg.Payload {
			s.digest[v] = s.digest[v]*31 + int64(b)
		}
	}
	if round+1 >= s.rounds {
		return true
	}
	s.send(nd, round+1)
	return false
}

// FuzzSteppedArenaPayloads drives scripted payload sizes — including
// zero-length and exact-budget payloads — through the stepped engine's
// arena and differentially compares every delivered byte against the
// goroutine reference engine.
func FuzzSteppedArenaPayloads(f *testing.F) {
	f.Add([]byte{})                          // all empty payloads
	f.Add([]byte{0, 0, 0, 0})                // explicit zero-length sizes
	f.Add([]byte{255, 255, 255, 255})        // clamped to max-bandwidth payloads
	f.Add([]byte{0, 255, 1, 254, 2, 128})    // mixed extremes
	f.Add([]byte{16, 3, 16, 3, 16, 3, 0, 1}) // budget-ish alternation
	// Alternate absent (skipMarker), present-but-empty (0) and tiny
	// payloads: every packed slotRec state (ln=0 / ln=1 / ln=k+1) flips
	// between rounds on the same edges.
	f.Add([]byte{skipMarker, 0, skipMarker, 1, 0, skipMarker, 2, 0})
	f.Add([]byte{skipMarker, skipMarker, skipMarker}) // all slots absent
	g := graph.GNPConnected(40, 0.12, 23)
	budget := NewNetwork(g, Config{}).BandwidthBits() / 8
	f.Fuzz(func(t *testing.T, sizes []byte) {
		run := func(eng Engine) []int64 {
			digest := make([]int64, g.N())
			_, err := NewNetwork(g, Config{Engine: eng}).RunStepped(func(nd *Node) StepProgram {
				return &echoBackStep{digest: digest, sizes: sizes, rounds: 6, budget: budget}
			})
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			return digest
		}
		ref := run(EngineGoroutine)
		got := run(EngineStepped)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("node %d digest: stepped %d != goroutine %d (sizes=%v)", v, got[v], ref[v], sizes)
			}
		}
	})
}

// raceEnabled is set by race_test.go under the race detector.
var raceEnabled = false

// TestSteppedMillionNodeTorus is the bounded-memory demonstration the
// stepped engine exists for: a 16-round broadcast-and-fold over a
// 1000×1000 torus — one million nodes, four million directed edges — which
// the goroutine-backed engines cannot attempt without gigabytes of stacks.
// Peak RSS must stay under 700 MiB (it was < 1 GiB before the packed slot
// records); the CI memory smoke job additionally runs it under an external
// GOMEMLIMIT.
func TestSteppedMillionNodeTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: million-node run takes several seconds")
	}
	if raceEnabled {
		t.Skip("race detector multiplies the 1M-node footprint several-fold")
	}
	// Bound the GC's laziness so peak RSS reflects live engine memory, not
	// deferred collection headroom; the engine's live footprint is what the
	// RSS criterion is about. The packed slot records brought the live floor
	// from ~486 MiB to ~392 MiB, so 450 MiB leaves real headroom while
	// locking the reduction in (the [][]byte layout cannot finish under it
	// without thrashing the GC).
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(450 << 20))
	g := graph.Torus(1000, 1000)
	out := make([]int64, g.N())
	net := NewNetwork(g, Config{Engine: EngineStepped})
	m, err := net.RunStepped(echoFactory(out, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 16 {
		t.Errorf("rounds=%d, want 16", m.Rounds)
	}
	if want := int64(16 * 4 * g.N()); m.Messages != want {
		t.Errorf("messages=%d, want %d", m.Messages, want)
	}
	// Spot-check determinism against a small reference: the torus is
	// vertex-transitive only in topology, not IDs, so just re-run and
	// compare a sample of nodes.
	out2 := make([]int64, g.N())
	if _, err := net.RunStepped(echoFactory(out2, 16)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 999, 499999, 999999} {
		if out[v] != out2[v] {
			t.Errorf("node %d: run1=%d run2=%d (nondeterministic)", v, out[v], out2[v])
		}
	}
	hwm := testmem.ReadVmHWM()
	t.Logf("peak RSS after 1M-node run: %.1f MiB", float64(hwm)/(1<<20))
	if hwm > 0 && hwm >= 700<<20 {
		t.Errorf("peak RSS %d bytes >= 700 MiB bound", hwm)
	}
	runtime.KeepAlive(out)
}

// TestSteppedMillionNodeTorusMapped is the out-of-core variant of
// TestSteppedMillionNodeTorus: the same million-node 16-round
// broadcast-and-fold, but with the topology served from a memory-mapped
// .csrg file instead of heap CSR slices. The mapped pages are file-backed
// — shareable across processes, evictable under pressure, and invisible
// to the Go heap — so the measured peak RSS must land strictly below the
// all-heap run's recorded number (~400 MiB; the CI memsmoke job runs this
// test alone, where the assertion is meaningful). Output equality against
// the heap-built graph is pinned by the conformance suite's
// cross-representation pass; here a checksum re-run pins determinism of
// the mapped run itself.
func TestSteppedMillionNodeTorusMapped(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: million-node run takes several seconds")
	}
	if raceEnabled {
		t.Skip("race detector multiplies the 1M-node footprint several-fold")
	}
	// The RSS assertion only means something if this test dominates the
	// process high-water mark: when the all-heap torus test ran first in
	// the same process, VmHWM already carries its peak.
	startHWM := testmem.ReadVmHWM()
	const bound = 470 << 20
	// Tighter in-test clamp than the all-heap run's 450 MiB: the graph no
	// longer costs heap, only the builder spike during file generation and
	// the engine arenas do.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(400 << 20))

	path := filepath.Join(t.TempDir(), "torus1m.csrg")
	func() {
		// Build and serialize in a scope of their own so the heap graph
		// and the builder's edge map are dead before the engine runs.
		g := graph.Torus(1000, 1000)
		if err := g.WriteCSRGFile(path); err != nil {
			t.Fatal(err)
		}
	}()
	runtime.GC()

	mg, err := graph.Mmap(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()
	if mg.N() != 1000*1000 || mg.M() != 2*1000*1000 {
		t.Fatalf("mapped torus has n=%d m=%d", mg.N(), mg.M())
	}

	out := make([]int64, mg.N())
	net := NewNetwork(mg.Graph, Config{Engine: EngineStepped})
	m, err := net.RunStepped(echoFactory(out, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 16 {
		t.Errorf("rounds=%d, want 16", m.Rounds)
	}
	if want := int64(16 * 4 * mg.N()); m.Messages != want {
		t.Errorf("messages=%d, want %d", m.Messages, want)
	}
	out2 := make([]int64, mg.N())
	if _, err := net.RunStepped(echoFactory(out2, 16)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 999, 499999, 999999} {
		if out[v] != out2[v] {
			t.Errorf("node %d: run1=%d run2=%d (nondeterministic)", v, out[v], out2[v])
		}
	}

	hwm := testmem.ReadVmHWM()
	t.Logf("peak RSS after mapped 1M-node run: %.1f MiB (at test start: %.1f MiB)",
		float64(hwm)/(1<<20), float64(startHWM)/(1<<20))
	if startHWM >= bound/2 {
		t.Logf("skipping RSS assertion: an earlier test in this process already peaked at %.1f MiB", float64(startHWM)/(1<<20))
	} else if hwm > 0 && hwm >= bound {
		t.Errorf("peak RSS %d bytes >= %d MiB bound", hwm, bound>>20)
	}
	runtime.KeepAlive(out)
}
