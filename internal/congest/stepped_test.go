package congest

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"

	"congestds/internal/graph"
)

// echoStep broadcasts a round-stamped payload every round and folds its
// inbox order-sensitively — the broadcast-and-fold pattern of the paper's
// Part I/II phases, used by most stepped-engine tests below.
type echoStep struct {
	out    []int64
	rounds int
	acc    int64
}

func (s *echoStep) Init(nd *Node) bool {
	s.acc = nd.ID()
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func (s *echoStep) Step(nd *Node, round int, in []Incoming) bool {
	for i, msg := range in {
		v, _ := Varint(msg.Payload, 0)
		s.acc = s.acc*31 + v*int64(i+1)
	}
	if round+1 >= s.rounds {
		s.out[nd.V()] = s.acc
		return true
	}
	nd.Broadcast(AppendVarint(nd.PayloadBuf(4), s.acc&0x3fff))
	return false
}

func echoFactory(out []int64, rounds int) StepFactory {
	return func(nd *Node) StepProgram { return &echoStep{out: out, rounds: rounds} }
}

// TestRunSteppedAcrossEngines pins that RunStepped produces identical
// outputs and metrics on every engine: natively on the stepped engine,
// through the blocking adapter elsewhere.
func TestRunSteppedAcrossEngines(t *testing.T) {
	g := graph.GNPConnected(80, 0.08, 17)
	type obs struct {
		out []int64
		m   Metrics
	}
	run := func(eng Engine) obs {
		out := make([]int64, g.N())
		m, err := NewNetwork(g, Config{Engine: eng}).RunStepped(echoFactory(out, 7))
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		return obs{out: out, m: m}
	}
	ref := run(EngineGoroutine)
	if ref.m.Rounds != 7 {
		t.Fatalf("reference rounds=%d, want 7", ref.m.Rounds)
	}
	for _, eng := range Engines() {
		got := run(eng)
		if got.m != ref.m {
			t.Errorf("%v metrics %+v != reference %+v", eng, got.m, ref.m)
		}
		for v := range got.out {
			if got.out[v] != ref.out[v] {
				t.Fatalf("%v node %d: %d != reference %d", eng, v, got.out[v], ref.out[v])
			}
		}
	}
}

// TestSteppedSyncRejected: a StepProgram calling Sync must abort the run
// with an error instead of deadlocking the worker pool.
func TestSteppedSyncRejected(t *testing.T) {
	g := graph.Path(4)
	factory := func(nd *Node) StepProgram { return &syncCaller{} }
	_, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(factory)
	if err == nil || !strings.Contains(err.Error(), "must not call Sync") {
		t.Fatalf("err=%v, want Sync rejection", err)
	}
}

type syncCaller struct{}

func (s *syncCaller) Init(nd *Node) bool { nd.Sync(); return true }
func (s *syncCaller) Step(nd *Node, round int, in []Incoming) bool {
	return true
}

// TestSteppedErrors pins the sentinel errors on the native stepped engine.
func TestSteppedErrors(t *testing.T) {
	g := graph.GNPConnected(24, 0.2, 13)
	t.Run("bandwidth", func(t *testing.T) {
		net := NewNetwork(g, Config{BandwidthFactor: 1, Engine: EngineStepped})
		_, err := net.RunStepped(func(nd *Node) StepProgram { return &bigSender{} })
		if !errors.Is(err, ErrBandwidth) {
			t.Errorf("err=%v, want ErrBandwidth", err)
		}
	})
	t.Run("max-rounds", func(t *testing.T) {
		net := NewNetwork(g, Config{MaxRounds: 8, Engine: EngineStepped})
		m, err := net.RunStepped(func(nd *Node) StepProgram { return &forever{} })
		if !errors.Is(err, ErrMaxRounds) {
			t.Errorf("err=%v, want ErrMaxRounds", err)
		}
		if m.Rounds != 0 {
			t.Errorf("failed run reported Rounds=%d, want 0 (matching the blocking engines)", m.Rounds)
		}
	})
	t.Run("program-panic", func(t *testing.T) {
		net := NewNetwork(g, Config{Engine: EngineStepped})
		_, err := net.RunStepped(func(nd *Node) StepProgram { return &panicker{} })
		if err == nil || !strings.Contains(err.Error(), "deliberate") {
			t.Errorf("panic did not surface: %v", err)
		}
	})
}

type bigSender struct{}

func (s *bigSender) Init(nd *Node) bool { nd.Broadcast(make([]byte, 64)); return false }
func (s *bigSender) Step(nd *Node, round int, in []Incoming) bool {
	return true
}

type forever struct{}

func (s *forever) Init(nd *Node) bool                           { return false }
func (s *forever) Step(nd *Node, round int, in []Incoming) bool { return false }

type panicker struct{}

func (s *panicker) Init(nd *Node) bool { return false }
func (s *panicker) Step(nd *Node, round int, in []Incoming) bool {
	if nd.V() == 7 {
		panic("deliberate")
	}
	return round >= 3
}

// TestSteppedMaxRoundsSideEffects pins the failure contract of the native
// stepped engine against the blocking reference: same number of completed
// steps per node, same sent-message metrics.
func TestSteppedMaxRoundsSideEffects(t *testing.T) {
	g := graph.Grid(4, 4)
	run := func(eng Engine) ([]int64, Metrics) {
		completed := make([]int64, g.N())
		m, err := NewNetwork(g, Config{MaxRounds: 5, Engine: eng}).RunStepped(
			func(nd *Node) StepProgram { return &countingForever{completed: completed} })
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("%v: err=%v, want ErrMaxRounds", eng, err)
		}
		return completed, m
	}
	refC, refM := run(EngineGoroutine)
	for _, eng := range Engines() {
		gotC, gotM := run(eng)
		if gotM.Messages != refM.Messages || gotM.Bits != refM.Bits {
			t.Errorf("%v: failure metrics (%d,%d) != reference (%d,%d)",
				eng, gotM.Messages, gotM.Bits, refM.Messages, refM.Bits)
		}
		for v := range gotC {
			if gotC[v] != refC[v] {
				t.Errorf("%v: node %d completed %d steps, reference %d", eng, v, gotC[v], refC[v])
			}
		}
	}
}

type countingForever struct{ completed []int64 }

func (s *countingForever) Init(nd *Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *countingForever) Step(nd *Node, round int, in []Incoming) bool {
	s.completed[nd.V()]++
	nd.Broadcast([]byte{1})
	return false
}

// TestSteppedWorkerPartition sweeps GOMAXPROCS against awkward node counts
// (regression: with p not dividing n, a trailing worker's range once went
// negative and runStepped panicked on any multi-core machine).
func TestSteppedWorkerPartition(t *testing.T) {
	for procs := 1; procs <= 9; procs++ {
		prev := runtime.GOMAXPROCS(procs)
		for _, n := range []int{1, 2, 3, 5, 7, 9, 16} {
			g := graph.Path(n)
			out := make([]int64, n)
			m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(echoFactory(out, 3))
			if err != nil {
				t.Errorf("p=%d n=%d: %v", procs, n, err)
			} else if m.Rounds != 3 {
				t.Errorf("p=%d n=%d: rounds=%d, want 3", procs, n, m.Rounds)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestSteppedEmptyGraph: the stepped engine must handle n=0 cleanly.
func TestSteppedEmptyGraph(t *testing.T) {
	g, err := graph.FromEdges(0, nil)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewNetwork(g, Config{Engine: EngineStepped}).RunStepped(
		func(nd *Node) StepProgram { return &forever{} })
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 0 || m.Messages != 0 {
		t.Errorf("empty graph metrics: %+v", m)
	}
}

// arenaAliasStep pins the arena recycling contract: a payload delivered in
// round r must not be aliased (overwritten) by any round r+1 send. Each
// node retains its first inbox payload together with a copy, lets every
// node complete one more full round of arena sends, and then compares.
type arenaAliasStep struct {
	rounds   int
	size     int
	retained []byte // the delivered slice, held one round past the contract
	snapshot []byte // its contents at delivery time
	fail     func(string)
}

func (s *arenaAliasStep) send(nd *Node, r int) {
	buf := nd.PayloadBuf(s.size)[:s.size]
	for i := range buf {
		buf[i] = byte(nd.V() + i + r)
	}
	nd.Broadcast(buf)
}

func (s *arenaAliasStep) Init(nd *Node) bool {
	s.send(nd, 0)
	return false
}

func (s *arenaAliasStep) Step(nd *Node, round int, in []Incoming) bool {
	if s.retained != nil {
		// The sends of round `round` (every node's, including ours below)
		// come from a different arena generation than the payload delivered
		// in round round-1, so the retained bytes must be intact.
		if !bytes.Equal(s.retained, s.snapshot) {
			s.fail(fmt.Sprintf("node %d: payload delivered in round %d was aliased by round %d sends",
				nd.V(), round-1, round))
		}
		s.retained = nil
	}
	if len(in) > 0 && in[0].Payload != nil {
		s.retained = in[0].Payload
		s.snapshot = append([]byte(nil), in[0].Payload...)
	}
	if round+1 >= s.rounds {
		return true
	}
	s.send(nd, round+1)
	return false
}

// TestSteppedArenaNoAliasing runs the retention probe on a graph large
// enough to force arena block growth, under all engines (the fallback path
// allocates fresh buffers, so it trivially holds there; the stepped engine
// is the one under test). The test is -race-clean: retained payloads are
// only read, and the engine guarantees no concurrent writer for one round.
func TestSteppedArenaNoAliasing(t *testing.T) {
	for _, eng := range Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			g := graph.Torus(20, 20)
			var failure string
			fail := func(msg string) {
				if failure == "" {
					failure = msg
				}
			}
			_, err := NewNetwork(g, Config{Engine: eng}).RunStepped(func(nd *Node) StepProgram {
				return &arenaAliasStep{rounds: 12, size: 8, fail: fail}
			})
			if err != nil {
				t.Fatal(err)
			}
			if failure != "" {
				t.Fatal(failure)
			}
		})
	}
}

// TestArenaGrowthKeepsOldBlocks: allocations that outgrow a generation's
// block must not invalidate payloads already handed out from it.
func TestArenaGrowthKeepsOldBlocks(t *testing.T) {
	var a payloadArena
	first := a.alloc(16)
	first = append(first, 1, 2, 3)
	// Force many block replacements within the same generation.
	for i := 0; i < 64; i++ {
		b := a.alloc(4096)
		_ = append(b, byte(i))
	}
	if len(first) != 3 || first[0] != 1 || first[2] != 3 {
		t.Fatalf("early allocation corrupted by block growth: %v", first)
	}
	// Appending beyond capacity must fall out of the arena, not clobber it.
	small := a.alloc(2)
	small = append(small, 9, 9, 9, 9)
	next := a.alloc(2)
	next = append(next, 7, 7)
	if small[2] != 9 || next[0] != 7 {
		t.Fatalf("overflow append clobbered the arena: %v %v", small, next)
	}
}

// echoBackStep sends per-port payloads with sizes scripted by a fuzz input
// and records a digest of everything received; the fuzz harness compares
// digests between the stepped engine and the goroutine reference.
type echoBackStep struct {
	digest []int64
	sizes  []byte
	rounds int
	budget int
}

func (s *echoBackStep) sizeFor(nd *Node, r, p int) int {
	if len(s.sizes) == 0 {
		return 0
	}
	raw := int(s.sizes[(nd.V()*31+r*7+p)%len(s.sizes)])
	size := raw % (s.budget + 1)
	return size
}

func (s *echoBackStep) send(nd *Node, r int) {
	for p := 0; p < nd.Degree(); p++ {
		size := s.sizeFor(nd, r, p)
		buf := nd.PayloadBuf(size)[:size]
		for i := range buf {
			buf[i] = byte(nd.V() + i + r + p)
		}
		nd.Send(p, buf)
	}
}

func (s *echoBackStep) Init(nd *Node) bool {
	s.send(nd, 0)
	return false
}

func (s *echoBackStep) Step(nd *Node, round int, in []Incoming) bool {
	v := nd.V()
	for _, msg := range in {
		s.digest[v] = s.digest[v]*131 + int64(msg.Port) + int64(len(msg.Payload))*7
		for _, b := range msg.Payload {
			s.digest[v] = s.digest[v]*31 + int64(b)
		}
	}
	if round+1 >= s.rounds {
		return true
	}
	s.send(nd, round+1)
	return false
}

// FuzzSteppedArenaPayloads drives scripted payload sizes — including
// zero-length and exact-budget payloads — through the stepped engine's
// arena and differentially compares every delivered byte against the
// goroutine reference engine.
func FuzzSteppedArenaPayloads(f *testing.F) {
	f.Add([]byte{})                          // all empty payloads
	f.Add([]byte{0, 0, 0, 0})                // explicit zero-length sizes
	f.Add([]byte{255, 255, 255, 255})        // clamped to max-bandwidth payloads
	f.Add([]byte{0, 255, 1, 254, 2, 128})    // mixed extremes
	f.Add([]byte{16, 3, 16, 3, 16, 3, 0, 1}) // budget-ish alternation
	g := graph.GNPConnected(40, 0.12, 23)
	budget := NewNetwork(g, Config{}).BandwidthBits() / 8
	f.Fuzz(func(t *testing.T, sizes []byte) {
		run := func(eng Engine) []int64 {
			digest := make([]int64, g.N())
			_, err := NewNetwork(g, Config{Engine: eng}).RunStepped(func(nd *Node) StepProgram {
				return &echoBackStep{digest: digest, sizes: sizes, rounds: 6, budget: budget}
			})
			if err != nil {
				t.Fatalf("%v: %v", eng, err)
			}
			return digest
		}
		ref := run(EngineGoroutine)
		got := run(EngineStepped)
		for v := range ref {
			if got[v] != ref[v] {
				t.Fatalf("node %d digest: stepped %d != goroutine %d (sizes=%v)", v, got[v], ref[v], sizes)
			}
		}
	})
}

// raceEnabled is set by race_test.go under the race detector.
var raceEnabled = false

// readVmHWM returns the process's peak resident set size in bytes, or 0 if
// /proc is unavailable.
func readVmHWM() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "VmHWM:"); ok {
			fields := strings.Fields(rest)
			if len(fields) >= 1 {
				kb, err := strconv.ParseInt(fields[0], 10, 64)
				if err == nil {
					return kb * 1024
				}
			}
		}
	}
	return 0
}

// TestSteppedMillionNodeTorus is the bounded-memory demonstration the
// stepped engine exists for: a 16-round broadcast-and-fold over a
// 1000×1000 torus — one million nodes, four million directed edges — which
// the goroutine-backed engines cannot attempt without gigabytes of stacks.
// Peak RSS must stay under 1 GiB; the CI memory smoke job additionally runs
// it under an external GOMEMLIMIT.
func TestSteppedMillionNodeTorus(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: million-node run takes several seconds")
	}
	if raceEnabled {
		t.Skip("race detector multiplies the 1M-node footprint several-fold")
	}
	// Bound the GC's laziness so peak RSS reflects live engine memory, not
	// deferred collection headroom; the engine's live footprint is what the
	// < 1 GiB criterion is about.
	defer debug.SetMemoryLimit(debug.SetMemoryLimit(800 << 20))
	g := graph.Torus(1000, 1000)
	out := make([]int64, g.N())
	net := NewNetwork(g, Config{Engine: EngineStepped})
	m, err := net.RunStepped(echoFactory(out, 16))
	if err != nil {
		t.Fatal(err)
	}
	if m.Rounds != 16 {
		t.Errorf("rounds=%d, want 16", m.Rounds)
	}
	if want := int64(16 * 4 * g.N()); m.Messages != want {
		t.Errorf("messages=%d, want %d", m.Messages, want)
	}
	// Spot-check determinism against a small reference: the torus is
	// vertex-transitive only in topology, not IDs, so just re-run and
	// compare a sample of nodes.
	out2 := make([]int64, g.N())
	if _, err := net.RunStepped(echoFactory(out2, 16)); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 1, 999, 499999, 999999} {
		if out[v] != out2[v] {
			t.Errorf("node %d: run1=%d run2=%d (nondeterministic)", v, out[v], out2[v])
		}
	}
	hwm := readVmHWM()
	t.Logf("peak RSS after 1M-node run: %.1f MiB", float64(hwm)/(1<<20))
	if hwm > 0 && hwm >= 1<<30 {
		t.Errorf("peak RSS %d bytes >= 1 GiB bound", hwm)
	}
	runtime.KeepAlive(out)
}
