package congest

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// goroutineEngine is the original engine: one goroutine per node, a global
// mutex-protected barrier, and per-node pending inboxes. Simple, but every
// Sync serializes on one mutex and every round sorts every inbox, which
// dominates wall-clock time on large graphs (see EngineSharded).
type goroutineEngine struct {
	net      *Network
	nodes    []*Node
	round    int
	deadline time.Time // absolute Config.Deadline instant; zero when unset

	mu      sync.Mutex
	waiting int
	active  int
	resume  chan struct{}
	pending [][]Incoming
	failure error
	// unwind is set (monotonically) just before a wake-up that ends a
	// failed round. Waiters check it after waking instead of the raw
	// failure state: a failure recorded after a successful delivery but
	// before a waiter gets scheduled must not make that waiter skip its
	// round, or the deposits a failed run counts would depend on goroutine
	// scheduling.
	unwind atomic.Bool

	metrics Metrics
	// obs mirrors net.cfg.Observer (nil = telemetry off); hist is only
	// maintained when obs is set, under mu like the traffic counters.
	obs  Observer
	hist MsgHist
}

func (eng *goroutineEngine) currentRound() int { return eng.round }

// runGoroutine executes prog on every node, one goroutine per node.
func (net *Network) runGoroutine(prog Program) (Metrics, error) {
	n := net.g.N()
	eng := &goroutineEngine{
		net:     net,
		nodes:   make([]*Node, n),
		resume:  make(chan struct{}),
		pending: make([][]Incoming, n),
		active:  n,
	}
	eng.deadline = net.runDeadline()
	eng.metrics.Model = net.cfg.Model
	eng.metrics.BandwidthBits = net.BandwidthBits()
	eng.obs = net.cfg.Observer
	for v := 0; v < n; v++ {
		eng.nodes[v] = &Node{net: net, sched: eng, v: v}
	}
	if eng.obs != nil && n > 0 {
		eng.obs.RoundStart(1)
	}
	var wg sync.WaitGroup
	wg.Add(n)
	// The goroutines block on the barrier, so n goroutines are fine even for
	// large n; OS-level parallelism is limited by GOMAXPROCS as usual.
	for v := 0; v < n; v++ {
		nd := eng.nodes[v]
		go func() {
			defer wg.Done()
			defer eng.finish(nd)
			defer recoverNode(nd.v, eng.fail)
			runProg(nd, prog)
		}()
	}
	wg.Wait()
	// Failed runs report how far they got (Rounds, AvgMsgBits) instead of
	// zeroes; all three engines populate the failure path identically.
	eng.metrics.Rounds = eng.round
	if eng.metrics.Messages > 0 {
		eng.metrics.AvgMsgBits = float64(eng.metrics.Bits) / float64(eng.metrics.Messages)
	}
	return eng.metrics, eng.failure
}

// barrier implements Sync: the last arriving node performs delivery and
// wakes everyone. A node arriving after a mid-round failure still deposits
// and is counted — the round in progress always completes (exactly like
// the stepped engine's sweep, which steps every remaining node of the
// round), so the deposits a failed run counts are deterministic and
// engine-independent; the unwind happens at the delivery point.
func (eng *goroutineEngine) barrier(nd *Node) {
	eng.mu.Lock()
	eng.deposit(nd)
	eng.waiting++
	if eng.waiting == eng.active {
		eng.deliverLocked()
		err := eng.failure
		eng.mu.Unlock()
		if err != nil {
			// The run failed (MaxRounds, or a node panicked this round):
			// unwind like every other waiter instead of computing more.
			panic(runError{err})
		}
		return
	}
	resume := eng.resume
	eng.mu.Unlock()
	<-resume
	// Unwind at the delivery that completed a failed round, before
	// computing another one.
	if eng.unwind.Load() {
		panic(runError{eng.loadFailure()})
	}
}

func (eng *goroutineEngine) loadFailure() error {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	return eng.failure
}

// finish marks a node as permanently done.
func (eng *goroutineEngine) finish(nd *Node) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if nd.stopped {
		return
	}
	nd.stopped = true
	eng.deposit(nd)
	eng.active--
	if eng.active > 0 && eng.waiting == eng.active {
		eng.deliverLocked()
	}
}

// deposit moves nd's outbox into the pending inboxes. Caller holds mu.
func (eng *goroutineEngine) deposit(nd *Node) {
	for _, m := range nd.outbox {
		dst := nd.net.g.Neighbors(nd.v)[m.port]
		// The receiving port is the index of nd.v in dst's neighbour list.
		dstPort := portOf(nd.net.g, int(dst), nd.v)
		eng.pending[dst] = append(eng.pending[dst], Incoming{Port: dstPort, Payload: m.payload})
		eng.metrics.Messages++
		eng.metrics.Bits += int64(len(m.payload) * 8)
		if b := len(m.payload) * 8; b > eng.metrics.MaxMsgBits {
			eng.metrics.MaxMsgBits = b
		}
		if eng.obs != nil {
			eng.hist.observe(len(m.payload))
		}
	}
	nd.outbox = nd.outbox[:0]
}

// deliverLocked distributes pending messages and resumes all waiters. If
// the run failed during the round just completed, the delivery (and the
// round increment) is skipped and the wake-up only unwinds the waiters, so
// a failed run's Rounds metric counts actual deliveries. Caller holds mu.
func (eng *goroutineEngine) deliverLocked() {
	delivered := false
	if eng.failure == nil {
		eng.round++
		delivered = true
		eng.failure = eng.net.checkRound(eng.round, eng.deadline)
	}
	if eng.failure != nil {
		eng.unwind.Store(true)
	}
	if eng.failure == nil {
		if h := eng.net.cfg.Hooks; h != nil {
			h.Stall(eng.round)
		}
		for v, msgs := range eng.pending {
			if msgs == nil {
				continue
			}
			sort.Slice(msgs, func(i, j int) bool { return msgs[i].Port < msgs[j].Port })
			if !eng.nodes[v].stopped {
				eng.nodes[v].inbox = msgs
			}
			eng.pending[v] = nil
		}
	}
	// RoundEnd fires iff the round counter advanced — even when checkRound
	// just failed the round — so on every engine and outcome the RoundEnd
	// count equals Metrics.Rounds.
	if eng.obs != nil && delivered {
		eng.obs.Event(Event{Kind: EvWake, Round: eng.round, Node: -1, Value: int64(eng.waiting)})
		eng.obs.RoundEnd(RoundStats{
			Round: eng.round, Live: eng.active,
			Messages: eng.metrics.Messages, Bits: eng.metrics.Bits,
			MaxMsgBits: eng.metrics.MaxMsgBits, Hist: eng.hist,
		})
		if eng.failure == nil {
			eng.obs.RoundStart(eng.round + 1)
		}
	}
	eng.waiting = 0
	close(eng.resume)
	eng.resume = make(chan struct{})
}

// fail records the first failure. It deliberately does NOT wake waiters:
// the failing node's deferred finish completes the round (deposit, active
// count), every other active node still arrives or finishes, and the
// arrival that completes the round performs the unwind wake-up — so the
// traffic a failed run reports is a pure function of the program, not of
// which goroutine the scheduler ran first.
func (eng *goroutineEngine) fail(err error) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if eng.failure == nil {
		eng.failure = err
	}
}
