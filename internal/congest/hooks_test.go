package congest

import (
	"context"
	"errors"
	"testing"
	"time"

	"congestds/internal/graph"
)

// TestSentinelClass pins the error taxonomy the conformance suite and the
// CLIs depend on.
func TestSentinelClass(t *testing.T) {
	wrap := func(err error) error { return errors.Join(errors.New("ctx"), err) }
	cases := []struct {
		err  error
		want string
	}{
		{nil, ""},
		{ErrBandwidth, "bandwidth"},
		{ErrMaxRounds, "max-rounds"},
		{ErrDeadline, "deadline"},
		{ErrInjected, "injected"},
		{ErrBadCkpt, "bad-ckpt"},
		{wrap(ErrDeadline), "deadline"},
		{wrap(ErrBadCkpt), "bad-ckpt"},
		{ErrConfig, "config"},
		{wrap(ErrConfig), "config"},
		{errors.New("node 3 panicked"), "program"},
	}
	for _, c := range cases {
		if got := SentinelClass(c.err); got != c.want {
			t.Errorf("SentinelClass(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

// sleepyStep burns ~1ms of wall clock per round and never stops — the
// workload the deadline must cut short.
type sleepyStep struct{}

func (s *sleepyStep) Init(nd *Node) bool { nd.Broadcast([]byte{1}); return false }
func (s *sleepyStep) Step(nd *Node, round int, in []Incoming) bool {
	if nd.V() == 0 {
		time.Sleep(time.Millisecond)
	}
	nd.Broadcast([]byte{1})
	return false
}

// TestDeadlineEnforced: on every engine and both program forms, a run whose
// program outlives Config.Deadline fails with ErrDeadline at a round
// boundary, and its metrics still report the progress it made. Timing
// assertions stay loose (the check has per-round granularity by contract).
func TestDeadlineEnforced(t *testing.T) {
	g := graph.Cycle(9)
	deadline := 30 * time.Millisecond
	for _, eng := range Engines() {
		cfg := Config{Engine: eng, Deadline: deadline, MaxRounds: 1 << 20}
		check := func(form string, m Metrics, err error, elapsed time.Duration) {
			if !errors.Is(err, ErrDeadline) {
				t.Errorf("%v %s: err=%v, want ErrDeadline", eng, form, err)
			}
			if m.Rounds < 1 {
				t.Errorf("%v %s: Rounds=%d; a failed run must report its progress", eng, form, m.Rounds)
			}
			// The run must stop within the deadline plus bounded overshoot —
			// generous slack so loaded CI machines don't flake, but far below
			// what the MaxRounds backstop (~2^20 rounds) would take.
			if elapsed > deadline+2*time.Second {
				t.Errorf("%v %s: run took %v against a %v deadline", eng, form, elapsed, deadline)
			}
		}
		start := time.Now()
		m, err := NewNetwork(g, cfg).Run(func(nd *Node) {
			for {
				if nd.V() == 0 {
					time.Sleep(time.Millisecond)
				}
				nd.Broadcast([]byte{1})
				nd.Sync()
			}
		})
		check("blocking", m, err, time.Since(start))

		start = time.Now()
		m, err = NewNetwork(g, cfg).RunStepped(func(nd *Node) StepProgram { return &sleepyStep{} })
		check("stepped", m, err, time.Since(start))
	}
}

// TestContextCancellation: cancelling Config.Ctx stops the run at the next
// round boundary with the deadline sentinel.
func TestContextCancellation(t *testing.T) {
	g := graph.Cycle(9)
	for _, eng := range Engines() {
		ctx, cancel := context.WithCancel(context.Background())
		go func() {
			time.Sleep(10 * time.Millisecond)
			cancel()
		}()
		cfg := Config{Engine: eng, Ctx: ctx, MaxRounds: 1 << 20}
		m, err := NewNetwork(g, cfg).RunStepped(func(nd *Node) StepProgram { return &sleepyStep{} })
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("%v: err=%v, want ErrDeadline after cancellation", eng, err)
		}
		if got := SentinelClass(err); got != "deadline" {
			t.Errorf("%v: class %q, want deadline", eng, got)
		}
		if m.Rounds < 1 {
			t.Errorf("%v: Rounds=%d; cancelled runs must report their progress", eng, m.Rounds)
		}
		cancel()
	}
}

// TestExpiredContextPreRun: a context already cancelled when the run starts
// still yields ErrDeadline at the first boundary, not a hang or a nil.
func TestExpiredContextPreRun(t *testing.T) {
	g := graph.Path(4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range Engines() {
		_, err := NewNetwork(g, Config{Engine: eng, Ctx: ctx}).Run(func(nd *Node) {
			nd.Broadcast([]byte{1})
			nd.Sync()
			nd.Sync()
		})
		if !errors.Is(err, ErrDeadline) {
			t.Errorf("%v: err=%v, want ErrDeadline", eng, err)
		}
	}
}
