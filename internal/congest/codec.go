package congest

import "encoding/binary"

// Message payload helpers. Algorithms encode identifiers and fixed-point
// values as unsigned varints, which keeps CONGEST payloads within the
// O(log n)-bit budget (identifiers are ≤ n, values are ≤ 2^S with
// S = O(log n)).

// AppendUvarint appends x to buf as an unsigned varint.
func AppendUvarint(buf []byte, x uint64) []byte {
	return binary.AppendUvarint(buf, x)
}

// AppendVarint appends x to buf as a signed varint.
func AppendVarint(buf []byte, x int64) []byte {
	return binary.AppendVarint(buf, x)
}

// Uvarint decodes an unsigned varint from buf[off:], returning the value and
// the new offset. A decoding failure returns (0, -1); algorithm code treats
// that as a protocol bug.
func Uvarint(buf []byte, off int) (uint64, int) {
	x, n := binary.Uvarint(buf[off:])
	if n <= 0 {
		return 0, -1
	}
	return x, off + n
}

// Varint decodes a signed varint from buf[off:], returning the value and the
// new offset, or (0, -1) on failure.
func Varint(buf []byte, off int) (int64, int) {
	x, n := binary.Varint(buf[off:])
	if n <= 0 {
		return 0, -1
	}
	return x, off + n
}
