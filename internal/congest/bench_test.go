package congest

import (
	"fmt"
	"runtime"
	"testing"

	"congestds/internal/graph"
)

// benchFactory builds the broadcast-and-fold workload (echoStep, shared
// with the engine tests): every node broadcasts a small varint every round
// and folds its inbox order-sensitively. It is the message pattern of the
// paper's Part I/II phases (all nodes exchange a constant number of values
// per round). Payloads come from PayloadBuf, so the goroutine-backed
// engines allocate per send (as real blocking programs do) while the
// stepped engine serves them from its arena — each engine's natural cost.
func benchFactory(out []int64, rounds int) StepFactory {
	return func(nd *Node) StepProgram { return &echoStep{out: out, rounds: rounds} }
}

// benchEngines runs fn once per engine per GOMAXPROCS setting. The sharded
// and stepped engines size their shards/workers from GOMAXPROCS at run
// time, so the sweep measures real scheduler scaling, not b.RunParallel
// loop parallelism.
func benchEngines(b *testing.B, fn func(b *testing.B, eng Engine)) {
	for _, procs := range []int{1, 4, 8} {
		for _, eng := range Engines() {
			b.Run(fmt.Sprintf("p%d/%v", procs, eng), func(b *testing.B) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				fn(b, eng)
			})
		}
	}
}

// BenchmarkEngine compares the execution engines head-to-head on sparse
// graphs, including the ≥100k-node torus that motivates the sharded and
// stepped schedulers. Reported time is per full Run (16 synchronous
// rounds); node-rounds/s is the cross-engine throughput figure.
func BenchmarkEngine(b *testing.B) {
	const rounds = 16
	for _, size := range []struct {
		name string
		g    *graph.Graph
	}{
		{"torus-4096", graph.Torus(64, 64)},
		{"torus-102400", graph.Torus(320, 320)},
		{"gnp-8192", graph.GNPConnected(8192, 4.0/8192, 11)},
	} {
		b.Run(size.name, func(b *testing.B) {
			benchEngines(b, func(b *testing.B, eng Engine) {
				net := NewNetwork(size.g, Config{Engine: eng})
				net.topology() // build the shared CSR layout outside the timer
				out := make([]int64, size.g.N())
				factory := benchFactory(out, rounds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.RunStepped(factory); err != nil {
						b.Fatal(err)
					}
				}
				nodeRounds := float64(size.g.N()) * rounds
				b.ReportMetric(nodeRounds*float64(b.N)/b.Elapsed().Seconds(), "node-rounds/s")
			})
		})
	}
}

// BenchmarkEngineBarrier isolates the barrier cost: no messages at all,
// just synchronous rounds. This is the workload the two-level arrive-wait
// barrier of the sharded engine targets. The goroutine and sharded engines
// run the blocking form (each engine's natural shape, and identical to the
// pre-two-level-barrier benchmark for before/after comparison); the stepped
// engine runs the silent StepProgram, whose "barrier" is just the worker
// sweep.
func BenchmarkEngineBarrier(b *testing.B) {
	g := graph.Torus(128, 128)
	const rounds = 32
	blocking := func(nd *Node) {
		for r := 0; r < rounds; r++ {
			nd.Sync()
		}
	}
	stepFactory := func(nd *Node) StepProgram { return &silentStep{rounds: rounds} }
	benchEngines(b, func(b *testing.B, eng Engine) {
		net := NewNetwork(g, Config{Engine: eng})
		net.topology()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if eng == EngineStepped {
				_, err = net.RunStepped(stepFactory)
			} else {
				_, err = net.Run(blocking)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNodeSend guards the Send hot path: the bandwidth budget is
// computed once per Network (NewNetwork), so each Send is a bounds check, a
// field read and an outbox append — no bits.Len/multiply per message and no
// allocation after the outbox reaches the node's degree.
func BenchmarkNodeSend(b *testing.B) {
	g := graph.Star(17)
	net := NewNetwork(g, Config{})
	nd := &Node{net: net, v: 0} // the hub: degree 16, ports 0..15
	payload := []byte{1, 2, 3, 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nd.Send(i&15, payload)
	}
}

// silentStep advances through rounds without sending.
type silentStep struct{ rounds int }

func (s *silentStep) Init(nd *Node) bool { return false }
func (s *silentStep) Step(nd *Node, round int, in []Incoming) bool {
	return round+1 >= s.rounds
}
