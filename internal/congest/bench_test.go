package congest

import (
	"fmt"
	"testing"

	"congestds/internal/graph"
)

// benchProgram is a broadcast-and-fold workload: every node broadcasts a
// small varint every round and folds its inbox order-sensitively. It is the
// message pattern of the paper's Part I/II phases (all nodes exchange a
// constant number of values per round).
func benchProgram(rounds int) Program {
	return func(nd *Node) {
		acc := nd.ID()
		for r := 0; r < rounds; r++ {
			// A fresh payload per round: receivers of round r read the slice
			// concurrently with round r+1's compute, so a reused buffer
			// would race (as real algorithm programs, which all allocate
			// per send, never do).
			nd.Broadcast(AppendVarint(nil, acc&0x3fff))
			in := nd.Sync()
			for i, msg := range in {
				v, _ := Varint(msg.Payload, 0)
				acc = acc*31 + v*int64(i+1)
			}
		}
	}
}

// BenchmarkEngine compares the execution engines head-to-head on sparse
// graphs, including the ≥100k-node torus that motivates the sharded
// scheduler. Reported time is per full Run (16 synchronous rounds).
func BenchmarkEngine(b *testing.B) {
	const rounds = 16
	for _, size := range []struct {
		name string
		g    *graph.Graph
	}{
		{"torus-4096", graph.Torus(64, 64)},
		{"torus-102400", graph.Torus(320, 320)},
		{"gnp-8192", graph.GNPConnected(8192, 4.0/8192, 11)},
	} {
		for _, eng := range Engines() {
			b.Run(fmt.Sprintf("%s/%v", size.name, eng), func(b *testing.B) {
				net := NewNetwork(size.g, Config{Engine: eng})
				if eng == EngineSharded {
					net.topology() // build the CSR layout outside the timer
				}
				prog := benchProgram(rounds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := net.Run(prog); err != nil {
						b.Fatal(err)
					}
				}
				nodeRounds := float64(size.g.N()) * rounds
				b.ReportMetric(nodeRounds*float64(b.N)/b.Elapsed().Seconds(), "node-rounds/s")
			})
		}
	}
}

// BenchmarkEngineBarrier isolates the barrier cost: no messages at all,
// just synchronous rounds.
func BenchmarkEngineBarrier(b *testing.B) {
	g := graph.Torus(128, 128)
	const rounds = 32
	for _, eng := range Engines() {
		b.Run(eng.String(), func(b *testing.B) {
			net := NewNetwork(g, Config{Engine: eng})
			if eng == EngineSharded {
				net.topology()
			}
			prog := func(nd *Node) {
				for r := 0; r < rounds; r++ {
					nd.Sync()
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := net.Run(prog); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
