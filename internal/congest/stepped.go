package congest

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"congestds/internal/graph"
)

// The stepped engine executes StepPrograms without per-node goroutines. The
// nodes are partitioned into contiguous chunks (more chunks than workers),
// and a fixed worker pool (GOMAXPROCS workers) sweeps all live nodes once
// per round, claiming chunks off a shared atomic counter:
//
//	claim the next unprocessed chunk            (one atomic add)
//	for each live node of the chunk:
//	  collect inbox from the read slot records  (clearing the records)
//	  call Init / Step                          (the node's compute)
//	  deposit the outbox into the write records (unique-writer array stores)
//
// then the driver flips the double-buffered record array by round parity —
// the same CSR layout the sharded engine uses — and the next sweep begins.
// There is no barrier protocol at all: the sweep IS the round, so the only
// synchronization is one WaitGroup arrive/wait per round for the whole
// pool, not per node.
//
// Chunk claiming is what keeps the pool busy on uneven rounds: with the
// static node ranges the engine used before, one slow chunk (a hot spot of
// expensive Steps, or nodes whose neighbourhood is much denser than the
// rest) stalled the whole round while the other workers idled at the
// WaitGroup. With claiming, a worker that finishes its chunk immediately
// grabs the next one, so the round's tail is one chunk, not one n/P range.
// Which worker sweeps a chunk never affects the outcome: deposits land in
// per-chunk arenas addressed by the static node→chunk map, so outputs and
// metrics stay byte-identical for every worker count and interleaving (the
// conformance suite and TestSteppedStealingDeterminism enforce this).
//
// Message slots are packed slotRecs (8 bytes) instead of the blocking
// engines' 24-byte slice headers: a deposit copies the payload bytes into
// the sending chunk's three-generation slotArena and stores the (offset,
// tagged length) pair; collect rematerializes the []byte view over the
// arena bytes. Halving-and-then-some the per-edge delivery state is what
// keeps million-node graphs in bounded memory, and the record arrays are
// pointer-free, so the GC never scans them (the [][]byte layout made it
// walk 8 M slice headers per cycle on a million-node torus).
//
// Memory per node is the Node struct, the interface value of its
// StepProgram and whatever state the program itself keeps — a few machine
// words instead of a goroutine stack. Payloads built via Node.PayloadBuf
// are bump-allocated from the sweeping worker's scratch arena and recycled
// without GC traffic.
//
// Semantics are identical to the blocking engines; the conformance suite
// runs the stepped program corpus on all three engines and requires
// byte-identical outputs and metrics — on failed runs too.

// errSyncInStep reports a StepProgram calling Node.Sync.
var errSyncInStep = errors.New("congest: StepProgram must not call Sync (the engine drives rounds)")

// errSlotArenaFull reports a chunk receiving more payload bytes in one
// round than slotRec offsets can address (LOCAL-model runs only; the
// CONGEST budget keeps rounds ~6 orders of magnitude below the limit).
var errSlotArenaFull = errors.New("congest: chunk exceeded 4 GiB of payload bytes in one round (slot records are 32-bit)")

// minChunkNodes keeps chunks coarse enough that the claim counter and the
// per-chunk bookkeeping stay invisible next to the sweep itself.
const minChunkNodes = 256

// chunksPerWorker oversubscribes the chunk count relative to the pool so a
// slow chunk can be compensated by the other workers. 8 balances steal
// granularity against per-chunk overhead.
const chunksPerWorker = 8

// steppedChunk owns a contiguous node range and everything a sweep of that
// range mutates. Exactly one worker processes a chunk per round (the claim
// counter hands each index out once), so chunk state needs no locking; the
// node→chunk map is static, which is what lets receivers locate a sender's
// payload bytes no matter which worker happened to sweep the sender.
type steppedChunk struct {
	lo    int
	alive []int32       // live node indices in this chunk's range, in order
	progs []StepProgram // indexed by v-lo
	slots slotArena     // payload bytes behind this chunk's deposited records
}

// steppedWorker is one pool goroutine's private scratch; it carries no node
// state, so workers can sweep any chunk.
type steppedWorker struct {
	eng    *steppedEngine
	id     int          // pool index, for the observer's per-worker lanes
	arena  payloadArena // PayloadBuf scratch, truncated every round
	inbox  []Incoming   // per-node scratch, reused across nodes and rounds
	outbox []outMsg     // per-node scratch: a node only holds an outbox while
	// its Init/Step runs, so one backing array per worker replaces one per
	// node — on a million-node graph that alone saves ~100 MB

	// Sender-resolution cache for collect, persisted across the nodes of a
	// sweep (reset each phase: the delivered generation changes): payload
	// views for senders in [srcLo, srcHi) come from srcBytes. Neighbouring
	// nodes share neighbours, so the hit rate is near-total and the
	// division in the miss path all but disappears from the profile.
	srcLo, srcHi int
	srcBytes     []byte

	msgs    int64
	bits    int64
	maxBits int
	hist    MsgHist // maintained only when eng.obs is set
}

// steppedEngine coordinates one stepped run.
type steppedEngine struct {
	net      *Network
	topo     *topology
	round    int       // deliveries performed; written only by the driver between sweeps
	deadline time.Time // absolute Config.Deadline instant; zero when unset
	fp       uint32    // graph fingerprint; computed only for checkpointed runs
	// recs[(round+1)&1] is the write record array during the current sweep;
	// recs[round&1] holds the records being delivered from it. 8 B per
	// directed edge per parity, vs 24 B for the blocking engines' [][]byte.
	recs      [2][]slotRec
	chunkSize int // nodes per chunk; node v belongs to chunks[v/chunkSize]
	nodes     []Node
	chunks    []steppedChunk
	workers   []steppedWorker

	// cursor is the chunk claim counter: workers atomically take the next
	// chunk index until the sweep runs out. Reset by the driver between
	// rounds (never mid-sweep, so resets need no synchronization beyond the
	// round WaitGroup).
	cursor atomic.Int64

	failMu  sync.Mutex
	failure error

	metrics Metrics
	// obs mirrors net.cfg.Observer (nil = telemetry off).
	obs Observer
}

// runStepped executes the stepped program built by f on every node.
func (net *Network) runStepped(f StepFactory) (Metrics, error) {
	return net.runSteppedCkpt(f, CkptSpec{})
}

// runSteppedCkpt is the stepped driver behind RunStepped and RunSteppedCkpt.
// With a zero spec it is a plain run. With a spec it additionally resumes
// from spec.Path when that file exists (rebuilding round counter, live set,
// program state, pending slot records and accumulated metrics) and writes a
// checkpoint every spec.Every round boundaries. Resumed runs are
// byte-identical to uninterrupted ones: the sweep schedule never affects
// outcomes (see the work-stealing notes above), and the checkpoint captures
// exactly the state a round boundary carries forward.
func (net *Network) runSteppedCkpt(f StepFactory, spec CkptSpec) (Metrics, error) {
	n := net.g.N()
	eng := &steppedEngine{net: net, deadline: net.runDeadline()}
	eng.metrics.Model = net.cfg.Model
	eng.metrics.BandwidthBits = net.BandwidthBits()
	eng.obs = net.cfg.Observer
	if n == 0 {
		return eng.metrics, nil
	}
	var cp *Ckpt
	if spec.Path != "" {
		eng.fp = graph.Fingerprint(net.g)
		data, err := os.ReadFile(spec.Path)
		switch {
		case err == nil:
			if cp, err = DecodeCkpt(data); err != nil {
				return eng.metrics, err
			}
		case !errors.Is(err, fs.ErrNotExist):
			return eng.metrics, fmt.Errorf("congest: reading checkpoint: %w", err)
		}
	}
	eng.topo = net.topology()
	slots := len(eng.topo.destSlot)
	eng.recs[0] = make([]slotRec, slots)
	eng.recs[1] = make([]slotRec, slots)

	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	// Oversubscribe the chunk count so workers can steal: aim for
	// chunksPerWorker chunks per pool goroutine, floored at minChunkNodes
	// nodes per chunk so tiny graphs stay a single claim.
	chunk := (n + chunksPerWorker*p - 1) / (chunksPerWorker * p)
	if chunk < minChunkNodes {
		chunk = minChunkNodes
	}
	if chunk > n {
		chunk = n
	}
	if cp != nil {
		// Resume under the checkpointed chunk geometry: the restored arena
		// bytes are addressed through the node→chunk map, and reusing it
		// keeps the layout identical even if GOMAXPROCS changed between the
		// two processes (outcomes never depend on it either way).
		chunk = cp.ChunkSize
	}
	numChunks := (n + chunk - 1) / chunk
	eng.chunkSize = chunk
	eng.nodes = make([]Node, n)
	eng.chunks = make([]steppedChunk, numChunks)
	for c := range eng.chunks {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		ck := &eng.chunks[c]
		ck.lo = lo
		ck.alive = make([]int32, 0, hi-lo)
		ck.progs = make([]StepProgram, hi-lo)
		for v := lo; v < hi; v++ {
			nd := &eng.nodes[v]
			nd.net, nd.sched, nd.v = net, eng, v
			if cp == nil {
				ck.alive = append(ck.alive, int32(v))
			} else {
				// Assume done until the checkpoint's live list says otherwise.
				nd.stopped = true
			}
		}
	}
	if cp != nil {
		if err := eng.restore(cp, spec, f); err != nil {
			return eng.metrics, err
		}
	}
	eng.workers = make([]steppedWorker, p)

	// Persistent worker pool: one goroutine per worker for the whole run,
	// woken per round with its phase number; each drains the chunk claim
	// counter until the sweep is exhausted.
	var wg sync.WaitGroup
	starts := make([]chan int, p)
	for w := range eng.workers {
		eng.workers[w].eng = eng
		eng.workers[w].id = w
		starts[w] = make(chan int, 1)
		go func(wk *steppedWorker, start chan int) {
			for phase := range start {
				wk.sweep(f, phase)
				wg.Done()
			}
		}(&eng.workers[w], starts[w])
	}

	// A fresh run starts at phase 0 (Init); a resumed one at the
	// checkpointed round boundary, sweeping Step(round-1) next — exactly
	// the sweep the interrupted run would have performed.
	for phase := eng.round; ; phase++ {
		if eng.obs != nil {
			eng.obs.RoundStart(phase + 1)
		}
		eng.cursor.Store(0)
		wg.Add(p)
		for w := range starts {
			starts[w] <- phase
		}
		wg.Wait()
		if eng.failure != nil {
			break
		}
		aliveTotal := 0
		for c := range eng.chunks {
			aliveTotal += len(eng.chunks[c].alive)
		}
		if aliveTotal == 0 {
			// All nodes done: final sends are counted but, as on the
			// blocking engines, no further delivery happens.
			break
		}
		eng.round++ // delivery: the record arrays trade roles by parity
		roundErr := net.checkRound(eng.round, eng.deadline)
		if eng.obs != nil {
			// RoundEnd fires iff the round counter advanced — even when
			// checkRound just failed the round (matching the blocking
			// engines). The pool is parked, so all state reads are plain.
			st := RoundStats{Round: eng.round, Live: aliveTotal}
			for w := range eng.workers {
				wk := &eng.workers[w]
				st.Messages += wk.msgs
				st.Bits += wk.bits
				if wk.maxBits > st.MaxMsgBits {
					st.MaxMsgBits = wk.maxBits
				}
				st.Hist.Merge(wk.hist)
			}
			var arenaBytes int64
			for c := range eng.chunks {
				arenaBytes += int64(len(eng.chunks[c].slots.gens[phase%3]))
			}
			eng.obs.Event(Event{Kind: EvArena, Round: eng.round, Node: -1, Value: arenaBytes})
			eng.obs.RoundEnd(st)
		}
		if roundErr != nil {
			eng.fail(roundErr)
			break
		}
		if spec.Every > 0 && eng.round%spec.Every == 0 {
			// The pool is parked between sweeps, so the driver reads all
			// engine state without synchronization. A write failure aborts
			// the run: a checkpointed run that silently stops checkpointing
			// would be worse than a loud failure.
			if err := eng.writeCkpt(spec); err != nil {
				eng.fail(err)
				break
			}
			if eng.obs != nil {
				eng.obs.Event(Event{Kind: EvCkpt, Round: eng.round, Node: -1})
			}
		}
	}
	for w := range starts {
		close(starts[w])
	}

	for w := range eng.workers {
		wk := &eng.workers[w]
		eng.metrics.Messages += wk.msgs
		eng.metrics.Bits += wk.bits
		if wk.maxBits > eng.metrics.MaxMsgBits {
			eng.metrics.MaxMsgBits = wk.maxBits
		}
	}
	// Failed runs report how far they got — the same Rounds/AvgMsgBits a
	// failing blocking engine reports, so callers can diagnose ErrMaxRounds
	// and ErrBandwidth from the metrics alone.
	eng.metrics.Rounds = eng.round
	if eng.metrics.Messages > 0 {
		eng.metrics.AvgMsgBits = float64(eng.metrics.Bits) / float64(eng.metrics.Messages)
	}
	return eng.metrics, eng.failure
}

// sweep runs one round on this worker: claim chunks off the shared cursor
// until none remain, processing each claimed chunk's live nodes.
func (w *steppedWorker) sweep(f StepFactory, phase int) {
	eng := w.eng
	w.arena.reset()
	// Invalidate the sender cache: the delivered generation changed.
	w.srcLo, w.srcHi, w.srcBytes = 0, 0, nil
	if eng.obs != nil {
		eng.obs.Event(Event{Kind: EvSweepStart, Round: phase + 1, Node: w.id})
	}
	claimed := 0
	for {
		c := int(eng.cursor.Add(1)) - 1
		if c >= len(eng.chunks) {
			break
		}
		claimed++
		if c == 0 {
			if h := eng.net.cfg.Hooks; h != nil {
				// Timing-only worker stall: delays whichever worker claimed
				// the first chunk, perturbing the stealing schedule — the
				// conformance suite proves outcomes don't move.
				h.Stall(phase)
			}
		}
		w.sweepChunk(f, phase, &eng.chunks[c])
	}
	if eng.obs != nil {
		// The start/end receipt stamps bound the worker's busy span; Value
		// is its share of the round's chunks (the steal distribution).
		eng.obs.Event(Event{Kind: EvSweepEnd, Round: phase + 1, Node: w.id, Value: int64(claimed)})
	}
}

// sweepChunk runs one round over one chunk's live nodes: collect, step,
// deposit. Phase 0 instantiates the programs and calls Init instead.
func (w *steppedWorker) sweepChunk(f StepFactory, phase int, ck *steppedChunk) {
	eng := w.eng
	var histp *MsgHist
	if eng.obs != nil {
		histp = &w.hist
	}
	ck.slots.reset(phase)
	writeRecs := eng.recs[(phase+1)&1]
	readRecs := eng.recs[phase&1]
	gen := (phase + 2) % 3 // the generation delivered during this sweep
	kept := ck.alive[:0]
	for _, v32 := range ck.alive {
		v := int(v32)
		nd := &eng.nodes[v]
		nd.arena = &w.arena // the sweeping worker's scratch, not a fixed owner
		nd.outbox = w.outbox[:0]
		hooks := eng.net.cfg.Hooks
		if hooks != nil {
			nd.op = phase // compute opportunity: phase 0 = Init, phase p = Step(p-1)
		}
		var done bool
		if hooks != nil && hooks.Crash(v, phase) {
			// Crash-stop: as if the program returned done at the start of
			// this opportunity with an empty outbox. The blocking engines'
			// counterpart is the crashStop unwind in Sync / runProg.
			done = true
		} else if phase == 0 {
			done = w.initNode(f, ck, nd)
		} else {
			in := w.collect(readRecs, gen, v)
			done = w.stepNode(ck, nd, phase-1, in)
		}
		// Deposit unconditionally: sends queued before a final return or a
		// panic are delivered and counted, like the blocking engines'
		// finish semantics.
		if len(nd.outbox) > 0 {
			msgs, bits, maxB, ok := eng.topo.depositOutboxPacked(v, nd.outbox, writeRecs, &ck.slots, phase, histp)
			w.msgs += msgs
			w.bits += bits
			if maxB > w.maxBits {
				w.maxBits = maxB
			}
			if !ok {
				eng.fail(fmt.Errorf("congest: node %d: %w", v, errSlotArenaFull))
				done = true
			}
		}
		w.outbox = nd.outbox[:0] // reclaim the (possibly grown) backing
		nd.outbox = nil
		if done {
			nd.stopped = true
			ck.progs[v-ck.lo] = nil
		} else {
			kept = append(kept, v32)
		}
	}
	ck.alive = kept
}

// collect gathers node v's inbox from the delivered records into the
// worker's scratch slice (valid only until the node's Step returns),
// clearing the records for reuse as the write array two rounds later.
// Payload views point straight into the sending chunks' slot arenas; the
// sender of slot inOff[v]+q is v's neighbour on port q, so its chunk — and
// with it the generation (gen) holding the bytes — follows from the
// adjacency list. The delivered generation was sealed at the previous
// round's barrier and no worker touches it this round (sweeps write
// generation phase%3 only), so cross-chunk reads are race-free no matter
// which workers claimed the sending chunks.
func (w *steppedWorker) collect(readRecs []slotRec, gen, v int) []Incoming {
	eng := w.eng
	off, end := eng.topo.inOff[v], eng.topo.inOff[v+1]
	in := w.inbox[:0]
	nbrs := eng.net.g.Neighbors(v)
	// The worker's sender cache is keyed by the sender's chunk range, so the
	// hit path is two compares — no division, no arena lookup.
	srcLo, srcHi, srcBytes := w.srcLo, w.srcHi, w.srcBytes
	for i := off; i < end; i++ {
		r := readRecs[i]
		if r.ln == 0 {
			continue
		}
		readRecs[i] = slotRec{}
		q := int(i - off)
		var pl []byte
		if r.ln > 1 {
			if u := int(nbrs[q]); u < srcLo || u >= srcHi {
				cIdx := u / eng.chunkSize
				srcLo = cIdx * eng.chunkSize
				srcHi = srcLo + eng.chunkSize
				srcBytes = eng.chunks[cIdx].slots.gens[gen]
			}
			hi := r.off + r.ln - 1
			pl = srcBytes[r.off:hi:hi]
		}
		in = append(in, Incoming{Port: q, Payload: pl})
	}
	w.srcLo, w.srcHi, w.srcBytes = srcLo, srcHi, srcBytes
	w.inbox = in
	return in
}

// initNode builds the node's program and runs Init, converting panics into
// the run failure. A panicked node is treated as done.
func (w *steppedWorker) initNode(f StepFactory, ck *steppedChunk, nd *Node) (done bool) {
	defer w.recoverStep(nd, &done)
	prog := f(nd)
	ck.progs[nd.v-ck.lo] = prog
	return prog.Init(nd)
}

// stepNode runs one Step, converting panics into the run failure.
func (w *steppedWorker) stepNode(ck *steppedChunk, nd *Node, round int, in []Incoming) (done bool) {
	defer w.recoverStep(nd, &done)
	return ck.progs[nd.v-ck.lo].Step(nd, round, in)
}

// recoverStep records a program panic as the run failure. The sweep keeps
// processing the remaining nodes of the round — the blocking engines let
// concurrently running nodes complete their round too — and the driver
// aborts before the next delivery.
func (w *steppedWorker) recoverStep(nd *Node, done *bool) {
	if r := recover(); r != nil {
		if re, ok := r.(runError); ok {
			w.eng.fail(re.err)
		} else {
			w.eng.fail(fmt.Errorf("congest: node %d panicked: %v", nd.v, r))
		}
		*done = true
	}
}

// fail records the first failure. The driver observes it at the round
// barrier, so no wake-up machinery is needed.
func (eng *steppedEngine) fail(err error) {
	eng.failMu.Lock()
	if eng.failure == nil {
		eng.failure = err
	}
	eng.failMu.Unlock()
}

func (eng *steppedEngine) currentRound() int { return eng.round }

// barrier rejects Sync from StepPrograms: the engine owns the round loop.
func (eng *steppedEngine) barrier(nd *Node) {
	panic(runError{fmt.Errorf("%w: node %d", errSyncInStep, nd.v)})
}
