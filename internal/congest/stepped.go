package congest

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// The stepped engine executes StepPrograms without per-node goroutines. A
// fixed worker pool (GOMAXPROCS workers, each owning a contiguous node
// range) sweeps all live nodes once per round:
//
//	collect inbox from the read slot buffer  (clearing the slots)
//	call Init / Step                         (the node's compute)
//	deposit the outbox into the write buffer (unique-writer array stores)
//
// then the driver flips the double-buffered slot array by round parity —
// the same CSR layout the sharded engine uses — and the next sweep begins.
// There is no barrier protocol at all: the sweep IS the round, so the only
// synchronization is one WaitGroup arrive/wait per round for the whole
// pool, not per node.
//
// Memory per node is the Node struct, the interface value of its
// StepProgram and whatever state the program itself keeps — a few machine
// words instead of a goroutine stack, which is what lets million-node
// graphs run in bounded memory. Payloads built via Node.PayloadBuf are
// bump-allocated from the worker's three-generation arena (arena.go) and
// recycled without GC traffic.
//
// Semantics are identical to the blocking engines; the conformance suite
// runs the stepped program corpus on all three engines and requires
// byte-identical outputs and metrics.

// errSyncInStep reports a StepProgram calling Node.Sync.
var errSyncInStep = errors.New("congest: StepProgram must not call Sync (the engine drives rounds)")

// steppedWorker owns a contiguous node range and everything its sweep
// touches, so the hot path shares no mutable state between workers.
type steppedWorker struct {
	eng    *steppedEngine
	lo     int
	alive  []int32       // live node indices in this worker's range, in order
	progs  []StepProgram // indexed by v-lo
	arena  payloadArena
	inbox  []Incoming // per-node scratch, reused across nodes and rounds
	outbox []outMsg   // per-node scratch: a node only holds an outbox while
	// its Init/Step runs, so one backing array per worker replaces one per
	// node — on a million-node graph that alone saves ~100 MB

	msgs    int64
	bits    int64
	maxBits int
}

// steppedEngine coordinates one stepped run.
type steppedEngine struct {
	net   *Network
	topo  *topology
	round int // deliveries performed; written only by the driver between sweeps
	// bufs[(round+1)&1] is the write buffer during the current sweep;
	// bufs[round&1] holds the messages being delivered to it.
	bufs    [2][][]byte
	nodes   []Node
	workers []steppedWorker

	failMu  sync.Mutex
	failure error

	metrics Metrics
}

// runStepped executes the stepped program built by f on every node.
func (net *Network) runStepped(f StepFactory) (Metrics, error) {
	n := net.g.N()
	eng := &steppedEngine{net: net}
	eng.metrics.Model = net.cfg.Model
	eng.metrics.BandwidthBits = net.BandwidthBits()
	if n == 0 {
		return eng.metrics, nil
	}
	eng.topo = net.topology()
	slots := len(eng.topo.destSlot)
	eng.bufs[0] = make([][]byte, slots)
	eng.bufs[1] = make([][]byte, slots)

	p := runtime.GOMAXPROCS(0)
	if p < 1 {
		p = 1
	}
	if p > n {
		p = n
	}
	chunk := (n + p - 1) / p
	// Recompute the worker count from the chunk size (as runSharded does for
	// shards): with p not dividing n, w*chunk can pass n before w reaches p.
	p = (n + chunk - 1) / chunk
	eng.nodes = make([]Node, n)
	eng.workers = make([]steppedWorker, p)
	for w := range eng.workers {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wk := &eng.workers[w]
		wk.eng, wk.lo = eng, lo
		wk.alive = make([]int32, 0, hi-lo)
		wk.progs = make([]StepProgram, hi-lo)
		for v := lo; v < hi; v++ {
			nd := &eng.nodes[v]
			nd.net, nd.sched, nd.v, nd.arena = net, eng, v, &wk.arena
			wk.alive = append(wk.alive, int32(v))
		}
	}

	// Persistent worker pool: one goroutine per worker for the whole run,
	// woken per round with its phase number.
	var wg sync.WaitGroup
	starts := make([]chan int, p)
	for w := range eng.workers {
		starts[w] = make(chan int, 1)
		go func(wk *steppedWorker, start chan int) {
			for phase := range start {
				wk.sweep(f, phase)
				wg.Done()
			}
		}(&eng.workers[w], starts[w])
	}

	for phase := 0; ; phase++ {
		wg.Add(p)
		for w := range starts {
			starts[w] <- phase
		}
		wg.Wait()
		if eng.failure != nil {
			break
		}
		aliveTotal := 0
		for w := range eng.workers {
			aliveTotal += len(eng.workers[w].alive)
		}
		if aliveTotal == 0 {
			// All nodes done: final sends are counted but, as on the
			// blocking engines, no further delivery happens.
			break
		}
		eng.round++ // delivery: the buffers trade roles by parity
		if eng.round > net.cfg.MaxRounds {
			eng.fail(fmt.Errorf("%w (%d)", ErrMaxRounds, net.cfg.MaxRounds))
			break
		}
	}
	for w := range starts {
		close(starts[w])
	}

	for w := range eng.workers {
		wk := &eng.workers[w]
		eng.metrics.Messages += wk.msgs
		eng.metrics.Bits += wk.bits
		if wk.maxBits > eng.metrics.MaxMsgBits {
			eng.metrics.MaxMsgBits = wk.maxBits
		}
	}
	if eng.failure != nil {
		return eng.metrics, eng.failure
	}
	eng.metrics.Rounds = eng.round
	if eng.metrics.Messages > 0 {
		eng.metrics.AvgMsgBits = float64(eng.metrics.Bits) / float64(eng.metrics.Messages)
	}
	return eng.metrics, nil
}

// sweep runs one round over this worker's live nodes: collect, step,
// deposit. Phase 0 instantiates the programs and calls Init instead.
func (w *steppedWorker) sweep(f StepFactory, phase int) {
	eng := w.eng
	w.arena.rotate()
	writeBuf := eng.bufs[(phase+1)&1]
	readBuf := eng.bufs[phase&1]
	topo := eng.topo
	kept := w.alive[:0]
	for _, v32 := range w.alive {
		v := int(v32)
		nd := &eng.nodes[v]
		nd.outbox = w.outbox[:0]
		var done bool
		if phase == 0 {
			done = w.initNode(f, nd)
		} else {
			in := w.collect(readBuf, v)
			done = w.stepNode(nd, phase-1, in)
		}
		// Deposit unconditionally: sends queued before a final return or a
		// panic are delivered and counted, like the blocking engines'
		// finish semantics.
		if len(nd.outbox) > 0 {
			msgs, bits, maxB := topo.depositOutbox(v, nd.outbox, writeBuf)
			w.msgs += msgs
			w.bits += bits
			if maxB > w.maxBits {
				w.maxBits = maxB
			}
		}
		w.outbox = nd.outbox[:0] // reclaim the (possibly grown) backing
		nd.outbox = nil
		if done {
			nd.stopped = true
			w.progs[v-w.lo] = nil
		} else {
			kept = append(kept, v32)
		}
	}
	w.alive = kept
}

// collect gathers node v's inbox from the delivered buffer into the
// worker's scratch slice (valid only until the node's Step returns).
func (w *steppedWorker) collect(readBuf [][]byte, v int) []Incoming {
	w.inbox = w.eng.topo.appendInbox(v, readBuf, w.inbox[:0])
	return w.inbox
}

// initNode builds the node's program and runs Init, converting panics into
// the run failure. A panicked node is treated as done.
func (w *steppedWorker) initNode(f StepFactory, nd *Node) (done bool) {
	defer w.recoverStep(nd, &done)
	prog := f(nd)
	w.progs[nd.v-w.lo] = prog
	return prog.Init(nd)
}

// stepNode runs one Step, converting panics into the run failure.
func (w *steppedWorker) stepNode(nd *Node, round int, in []Incoming) (done bool) {
	defer w.recoverStep(nd, &done)
	return w.progs[nd.v-w.lo].Step(nd, round, in)
}

// recoverStep records a program panic as the run failure. The sweep keeps
// processing the remaining nodes of the round — the blocking engines let
// concurrently running nodes complete their round too — and the driver
// aborts before the next delivery.
func (w *steppedWorker) recoverStep(nd *Node, done *bool) {
	if r := recover(); r != nil {
		if re, ok := r.(runError); ok {
			w.eng.fail(re.err)
		} else {
			w.eng.fail(fmt.Errorf("congest: node %d panicked: %v", nd.v, r))
		}
		*done = true
	}
}

// fail records the first failure. The driver observes it at the round
// barrier, so no wake-up machinery is needed.
func (eng *steppedEngine) fail(err error) {
	eng.failMu.Lock()
	if eng.failure == nil {
		eng.failure = err
	}
	eng.failMu.Unlock()
}

func (eng *steppedEngine) currentRound() int { return eng.round }

// barrier rejects Sync from StepPrograms: the engine owns the round loop.
func (eng *steppedEngine) barrier(nd *Node) {
	panic(runError{fmt.Errorf("%w: node %d", errSyncInStep, nd.v)})
}
