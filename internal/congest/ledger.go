package congest

import "fmt"

// Ledger accumulates the cost of an algorithm pipeline. Phases that run on a
// Network contribute measured Metrics; phases that are structurally
// simulated (see DESIGN.md, substitution 1: e.g. leader-serialized network
// decomposition) charge rounds explicitly with a reason, so the total round
// count of a pipeline remains honest and auditable.
type Ledger struct {
	metrics Metrics
	phases  []Phase
}

// Phase records the cost of one pipeline stage.
type Phase struct {
	Name    string
	Rounds  int // measured engine rounds
	Charged int // structurally charged rounds
	Bits    int64
	Msgs    int64
}

// RecordRun merges metrics measured by Network.Run under the given phase
// name. Charged rounds carried by the metrics (pipeline stages that fold
// structural simulation into a measured run) land in the phase row too, so
// the per-phase breakdown adds up to the totals.
func (l *Ledger) RecordRun(name string, m Metrics) {
	l.metrics.Add(m)
	l.phases = append(l.phases, Phase{
		Name:    name,
		Rounds:  m.Rounds,
		Charged: m.ChargedRounds,
		Bits:    m.Bits,
		Msgs:    m.Messages,
	})
}

// Charge adds structurally simulated rounds under the given phase name.
func (l *Ledger) Charge(name string, rounds int) {
	if rounds < 0 {
		rounds = 0
	}
	l.metrics.ChargedRounds += rounds
	l.phases = append(l.phases, Phase{Name: name, Charged: rounds})
}

// Metrics returns the accumulated totals.
func (l *Ledger) Metrics() Metrics { return l.metrics }

// Phases returns the per-phase breakdown in execution order.
func (l *Ledger) Phases() []Phase { return l.phases }

// String renders a compact per-phase summary.
func (l *Ledger) String() string {
	s := fmt.Sprintf("total rounds=%d (measured %d + charged %d), msgs=%d, bits=%d",
		l.metrics.TotalRounds(), l.metrics.Rounds, l.metrics.ChargedRounds,
		l.metrics.Messages, l.metrics.Bits)
	for _, p := range l.phases {
		s += fmt.Sprintf("\n  %-28s rounds=%d charged=%d msgs=%d", p.Name, p.Rounds, p.Charged, p.Msgs)
	}
	return s
}
