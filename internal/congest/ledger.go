package congest

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Ledger accumulates the cost of an algorithm pipeline. Phases that run on a
// Network contribute measured Metrics; phases that are structurally
// simulated (see DESIGN.md, substitution 1: e.g. leader-serialized network
// decomposition) charge rounds explicitly with a reason, so the total round
// count of a pipeline remains honest and auditable.
type Ledger struct {
	metrics Metrics
	phases  []Phase
}

// Phase records the cost of one pipeline stage.
type Phase struct {
	Name    string
	Rounds  int // measured engine rounds
	Charged int // structurally charged rounds
	Bits    int64
	Msgs    int64
	// WallNs is the phase's wall-clock duration in nanoseconds, filled in
	// after the fact by the observability layer (obs.FillLedgerWall) — the
	// engines themselves are deterministic packages and never read the
	// clock, so RecordRun always leaves it zero. Zero means unmeasured.
	WallNs int64
}

// RecordRun merges metrics measured by Network.Run under the given phase
// name. Charged rounds carried by the metrics (pipeline stages that fold
// structural simulation into a measured run) land in the phase row too, so
// the per-phase breakdown adds up to the totals.
func (l *Ledger) RecordRun(name string, m Metrics) {
	l.metrics.Add(m)
	l.phases = append(l.phases, Phase{
		Name:    name,
		Rounds:  m.Rounds,
		Charged: m.ChargedRounds,
		Bits:    m.Bits,
		Msgs:    m.Messages,
	})
}

// Charge adds structurally simulated rounds under the given phase name.
func (l *Ledger) Charge(name string, rounds int) {
	if rounds < 0 {
		rounds = 0
	}
	l.metrics.ChargedRounds += rounds
	l.phases = append(l.phases, Phase{Name: name, Charged: rounds})
}

// Metrics returns the accumulated totals.
func (l *Ledger) Metrics() Metrics { return l.metrics }

// SetPhaseWall records the wall-clock duration of phase i (by Phases
// index). Out-of-range indices and negative durations are ignored: wall
// attribution is advisory telemetry, never a reason to fail a pipeline.
func (l *Ledger) SetPhaseWall(i int, ns int64) {
	if i < 0 || i >= len(l.phases) || ns < 0 {
		return
	}
	l.phases[i].WallNs = ns
}

// Phases returns the per-phase breakdown in execution order.
func (l *Ledger) Phases() []Phase { return l.phases }

// AppendState appends a self-contained encoding of the ledger (totals and
// per-phase breakdown), so pipelines can fold their ledger into a
// checkpoint's HostState blob and a resumed run reports the same audited
// history as an uninterrupted one.
func (l *Ledger) AppendState(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(l.metrics.Rounds))
	buf = binary.AppendVarint(buf, int64(l.metrics.ChargedRounds))
	buf = binary.AppendVarint(buf, l.metrics.Messages)
	buf = binary.AppendVarint(buf, l.metrics.Bits)
	buf = binary.AppendVarint(buf, int64(l.metrics.MaxMsgBits))
	buf = binary.AppendVarint(buf, int64(l.metrics.BandwidthBits))
	buf = binary.AppendVarint(buf, int64(l.metrics.Model))
	buf = binary.AppendUvarint(buf, math.Float64bits(l.metrics.AvgMsgBits))
	buf = binary.AppendUvarint(buf, uint64(len(l.phases)))
	for _, p := range l.phases {
		buf = binary.AppendUvarint(buf, uint64(len(p.Name)))
		buf = append(buf, p.Name...)
		buf = binary.AppendVarint(buf, int64(p.Rounds))
		buf = binary.AppendVarint(buf, int64(p.Charged))
		buf = binary.AppendVarint(buf, p.Bits)
		buf = binary.AppendVarint(buf, p.Msgs)
		buf = binary.AppendVarint(buf, p.WallNs)
	}
	return buf
}

// RestoreState replaces the ledger's contents with the state AppendState
// encoded, rejecting malformed input with an error (never a panic):
// checkpoint blobs cross a process boundary.
func (l *Ledger) RestoreState(data []byte) error {
	bad := fmt.Errorf("congest: malformed ledger state")
	off := 0
	varint := func() int64 {
		if off < 0 {
			return 0
		}
		var x int64
		x, off = Varint(data, off)
		return x
	}
	var m Metrics
	m.Rounds = int(varint())
	m.ChargedRounds = int(varint())
	m.Messages = varint()
	m.Bits = varint()
	m.MaxMsgBits = int(varint())
	m.BandwidthBits = int(varint())
	m.Model = Model(varint())
	avg, off2 := Uvarint(data, max(off, 0))
	if off < 0 || off2 < 0 {
		return bad
	}
	m.AvgMsgBits = math.Float64frombits(avg)
	off = off2
	count, off2 := Uvarint(data, off)
	if off2 < 0 || count > uint64(len(data)) {
		return bad
	}
	off = off2
	phases := make([]Phase, 0, count)
	for i := uint64(0); i < count; i++ {
		nameLen, o := Uvarint(data, off)
		if o < 0 || nameLen > uint64(len(data)-o) {
			return bad
		}
		var p Phase
		p.Name = string(data[o : o+int(nameLen)])
		off = o + int(nameLen)
		p.Rounds = int(varint())
		p.Charged = int(varint())
		p.Bits = varint()
		p.Msgs = varint()
		p.WallNs = varint()
		if off < 0 {
			return bad
		}
		phases = append(phases, p)
	}
	if off != len(data) {
		return bad
	}
	l.metrics = m
	l.phases = phases
	return nil
}

// String renders a compact per-phase summary. Wall columns appear only
// when the observability layer attributed wall time (see
// obs.FillLedgerWall); untimed ledgers render exactly as before.
func (l *Ledger) String() string {
	var wallTotal int64
	for _, p := range l.phases {
		wallTotal += p.WallNs
	}
	s := fmt.Sprintf("total rounds=%d (measured %d + charged %d), msgs=%d, bits=%d",
		l.metrics.TotalRounds(), l.metrics.Rounds, l.metrics.ChargedRounds,
		l.metrics.Messages, l.metrics.Bits)
	if wallTotal > 0 {
		s += fmt.Sprintf(", wall=%v", time.Duration(wallTotal).Round(time.Microsecond))
	}
	for _, p := range l.phases {
		s += fmt.Sprintf("\n  %-28s rounds=%d charged=%d msgs=%d", p.Name, p.Rounds, p.Charged, p.Msgs)
		if p.WallNs > 0 {
			s += fmt.Sprintf(" wall=%v", time.Duration(p.WallNs).Round(time.Microsecond))
		}
	}
	return s
}
