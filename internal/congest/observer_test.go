package congest

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"congestds/internal/graph"
)

// countObs counts observer callbacks and keeps the last RoundStats; Event
// may arrive concurrently, so everything is mutex-guarded.
type countObs struct {
	mu     sync.Mutex
	starts int
	ends   int
	last   RoundStats
	kinds  map[EventKind]int
}

func newCountObs() *countObs { return &countObs{kinds: map[EventKind]int{}} }

func (o *countObs) RoundStart(round int) {
	o.mu.Lock()
	o.starts++
	o.mu.Unlock()
}

func (o *countObs) RoundEnd(s RoundStats) {
	o.mu.Lock()
	o.ends++
	o.last = s
	o.mu.Unlock()
}

func (o *countObs) Event(e Event) {
	o.mu.Lock()
	o.kinds[e.Kind]++
	o.mu.Unlock()
}

// TestObserverRoundEndMatchesMetrics pins the core observer contract on
// every engine, for healthy and failed runs alike: the number of RoundEnd
// calls equals Metrics.Rounds, and the final RoundStats carries exactly
// the run's cumulative traffic.
func TestObserverRoundEndMatchesMetrics(t *testing.T) {
	g := graph.GNPConnected(48, 0.12, 11)
	for _, eng := range Engines() {
		t.Run(eng.String(), func(t *testing.T) {
			t.Run("healthy", func(t *testing.T) {
				o := newCountObs()
				out := make([]int64, g.N())
				m, err := NewNetwork(g, Config{Engine: eng, Observer: o}).
					RunStepped(echoFactory(out, 9))
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				checkObs(t, o, m)
			})
			t.Run("bandwidth-failure", func(t *testing.T) {
				o := newCountObs()
				net := NewNetwork(g, Config{BandwidthFactor: 1, Engine: eng, Observer: o})
				m, err := net.RunStepped(func(nd *Node) StepProgram { return &bigSender{} })
				if !errors.Is(err, ErrBandwidth) {
					t.Fatalf("err=%v, want ErrBandwidth", err)
				}
				checkObs(t, o, m)
			})
			t.Run("max-rounds-failure", func(t *testing.T) {
				o := newCountObs()
				net := NewNetwork(g, Config{MaxRounds: 5, Engine: eng, Observer: o})
				m, err := net.RunStepped(func(nd *Node) StepProgram { return &forever{} })
				if !errors.Is(err, ErrMaxRounds) {
					t.Fatalf("err=%v, want ErrMaxRounds", err)
				}
				checkObs(t, o, m)
			})
		})
	}
}

func checkObs(t *testing.T, o *countObs, m Metrics) {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.ends != m.Rounds {
		t.Errorf("RoundEnd fired %d times, Metrics.Rounds=%d", o.ends, m.Rounds)
	}
	if o.starts < o.ends {
		t.Errorf("RoundStart fired %d times for %d RoundEnds", o.starts, o.ends)
	}
	if o.ends > 0 {
		if o.last.Messages != m.Messages || o.last.Bits != m.Bits {
			t.Errorf("final RoundStats traffic %d msgs/%d bits, metrics %d/%d",
				o.last.Messages, o.last.Bits, m.Messages, m.Bits)
		}
		if o.last.MaxMsgBits != m.MaxMsgBits {
			t.Errorf("final RoundStats MaxMsgBits=%d, metrics %d", o.last.MaxMsgBits, m.MaxMsgBits)
		}
		if o.last.Hist.Total() != m.Messages {
			t.Errorf("final hist total %d, metrics messages %d", o.last.Hist.Total(), m.Messages)
		}
		if o.last.Round != m.Rounds {
			t.Errorf("final RoundStats.Round=%d, Metrics.Rounds=%d", o.last.Round, m.Rounds)
		}
	}
}

// TestObserverEngineEvents pins each engine's scheduler events: wake
// counts from the goroutine engine, shard arrivals from the sharded one,
// sweep spans and arena levels from the stepped one.
func TestObserverEngineEvents(t *testing.T) {
	g := graph.GNPConnected(48, 0.12, 11)
	runWith := func(eng Engine) *countObs {
		o := newCountObs()
		out := make([]int64, g.N())
		if _, err := NewNetwork(g, Config{Engine: eng, Observer: o}).RunStepped(echoFactory(out, 5)); err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		return o
	}
	if o := runWith(EngineGoroutine); o.kinds[EvWake] == 0 {
		t.Error("goroutine engine emitted no EvWake")
	}
	if o := runWith(EngineSharded); o.kinds[EvShardArrive] == 0 {
		t.Error("sharded engine emitted no EvShardArrive")
	}
	o := runWith(EngineStepped)
	if o.kinds[EvArena] == 0 {
		t.Error("stepped engine emitted no EvArena")
	}
	if o.kinds[EvSweepStart] == 0 || o.kinds[EvSweepStart] != o.kinds[EvSweepEnd] {
		t.Errorf("sweep events unpaired: %d starts, %d ends", o.kinds[EvSweepStart], o.kinds[EvSweepEnd])
	}
}

// TestMetricsAddUnequalStages: merging stages with very different message
// sizes must recompute AvgMsgBits as the weighted mean over all messages
// (total bits / total messages), not an average of stage averages, and
// MaxMsgBits as the max of maxes. 3 eight-bit messages + 1 eight-hundred-
// bit message average (24+800)/4 = 206 bits — a naive mean of stage
// averages would claim (8+800)/2 = 404.
func TestMetricsAddUnequalStages(t *testing.T) {
	a := Metrics{Rounds: 3, Messages: 3, Bits: 24, MaxMsgBits: 8, AvgMsgBits: 8}
	b := Metrics{Rounds: 1, Messages: 1, Bits: 800, MaxMsgBits: 800, AvgMsgBits: 800}
	a.Add(b)
	if a.AvgMsgBits != 206 {
		t.Errorf("AvgMsgBits=%v, want weighted mean 206 (not the 404 a mean-of-means would give)", a.AvgMsgBits)
	}
	if a.MaxMsgBits != 800 {
		t.Errorf("MaxMsgBits=%d, want 800", a.MaxMsgBits)
	}
	if a.Messages != 4 || a.Bits != 824 || a.Rounds != 4 {
		t.Errorf("totals wrong after merge: %+v", a)
	}
	// Merging an empty stage must not disturb the running average.
	a.Add(Metrics{})
	if a.AvgMsgBits != 206 {
		t.Errorf("AvgMsgBits=%v after empty merge, want 206", a.AvgMsgBits)
	}
}

// TestLedgerWallRows: wall attribution is additive telemetry — phase sums
// still reconcile with totals, rows survive the HostState encoding a
// checkpoint resume goes through, and String renders wall columns only
// for measured rows.
func TestLedgerWallRows(t *testing.T) {
	var l Ledger
	l.RecordRun("part1", Metrics{Rounds: 4, Messages: 40, Bits: 400})
	l.Charge("sim", 9)
	l.RecordRun("part2", Metrics{Rounds: 2, Messages: 6, Bits: 60})
	l.SetPhaseWall(0, 1_500_000)
	l.SetPhaseWall(2, 300_000)
	l.SetPhaseWall(1, -5) // negative: ignored
	l.SetPhaseWall(99, 1) // out of range: ignored

	check := func(l *Ledger, stage string) {
		t.Helper()
		m := l.Metrics()
		sumRounds, sumMsgs, sumWall := 0, int64(0), int64(0)
		for _, p := range l.Phases() {
			sumRounds += p.Rounds
			sumMsgs += p.Msgs
			sumWall += p.WallNs
		}
		if sumRounds != m.Rounds || sumMsgs != m.Messages {
			t.Errorf("%s: phase sums (%d rounds, %d msgs) != totals (%d, %d)",
				stage, sumRounds, sumMsgs, m.Rounds, m.Messages)
		}
		if sumWall != 1_800_000 {
			t.Errorf("%s: wall sum %d, want 1800000", stage, sumWall)
		}
		if ph := l.Phases(); ph[1].WallNs != 0 {
			t.Errorf("%s: charged-only phase has wall %d", stage, ph[1].WallNs)
		}
	}
	check(&l, "before resume")

	s := l.String()
	if !strings.Contains(s, "wall=1.8ms") {
		t.Errorf("String missing wall total:\n%s", s)
	}
	if !strings.Contains(s, "wall=1.5ms") || !strings.Contains(s, "wall=300µs") {
		t.Errorf("String missing per-phase wall columns:\n%s", s)
	}
	if strings.Contains(s, "sim") && strings.Contains(strings.Split(s, "sim")[1][:20], "wall=") {
		t.Errorf("charged-only phase rendered a wall column:\n%s", s)
	}

	// The checkpoint/resume path: the ledger crosses a process boundary as
	// a HostState blob and must come back with identical rows.
	var resumed Ledger
	if err := resumed.RestoreState(l.AppendState(nil)); err != nil {
		t.Fatalf("restore: %v", err)
	}
	check(&resumed, "after resume")
	if resumed.String() != s {
		t.Errorf("resume changed the rendering:\n%s\nvs\n%s", resumed.String(), s)
	}
	// A resumed pipeline keeps accounting: new phases extend the rows and
	// the reconciliation still holds.
	resumed.RecordRun("part3", Metrics{Rounds: 1, Messages: 2, Bits: 2})
	m := resumed.Metrics()
	if m.Rounds != 7 || len(resumed.Phases()) != 4 {
		t.Errorf("post-resume RecordRun lost history: %+v", m)
	}
}
