// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing (Peleg 2000), as defined in Section 2 of the paper.
//
// A Network wraps a communication graph. Each node executes a Program;
// rounds are synchronous: all nodes compute, send at most one message per
// incident edge, and a barrier (Sync) delivers messages for the next round.
// In the CONGEST model the simulator enforces the O(log n) message-size
// bound and records bandwidth metrics; in the LOCAL model messages are
// unbounded.
//
// Three execution engines implement the same semantics (see Config.Engine):
//
//   - EngineGoroutine: one goroutine per node with a global barrier. The
//     original engine; simple and adequate for small instances.
//   - EngineSharded: a sharded, round-driven scheduler that partitions the
//     nodes across a GOMAXPROCS-sized set of barrier shards and
//     double-buffers per-edge message slots, so message delivery is a flat
//     array exchange instead of per-node mutex/condvar traffic. Orders of
//     magnitude less contention on large graphs.
//   - EngineStepped: a stackless worker-pool scheduler for programs written
//     in the non-blocking StepProgram form. Per-node state is an explicit
//     struct instead of a goroutine stack, so million-node graphs run in a
//     few machine words per node; payloads are bump-allocated from a
//     per-round arena (see Node.PayloadBuf). Blocking Programs still work
//     under EngineStepped — they fall back to the sharded goroutine-per-node
//     path, since a blocked goroutine cannot be suspended without its stack.
//
// Determinism: inboxes are sorted by port, programs may not use any entropy
// source, and no engine introduces any, so the outcome of a run is a
// pure function of the graph, the IDs and the program — independent of the
// engine and of goroutine scheduling. The conformance suite
// (internal/congest/conformance) enforces this cross-engine: all engines
// must produce byte-identical outputs and identical metrics on a corpus of
// graphs, for blocking programs and their stepped variants alike.
//
// # Writing a StepProgram
//
// A StepProgram is the resumable state-machine form of a Program: Init
// replaces the code before the first Sync, each Step replaces the code
// between two Syncs, and explicit struct fields replace stack variables.
// The blocking flood
//
//	prog := func(nd *congest.Node) {
//		my := -1
//		if nd.V() == 0 {
//			my = 0
//		}
//		for r := 0; r < rounds; r++ {
//			if my == r {
//				nd.Broadcast([]byte{1})
//			}
//			in := nd.Sync()
//			if my < 0 && len(in) > 0 {
//				my = r + 1
//			}
//		}
//		dist[nd.V()] = my
//	}
//
// becomes
//
//	type flood struct{ my, rounds int; dist []int }
//
//	func (f *flood) Init(nd *congest.Node) bool {
//		f.my = -1
//		if nd.V() == 0 {
//			f.my = 0
//			nd.Broadcast([]byte{1}) // the sends of loop iteration 0
//		}
//		return false
//	}
//
//	func (f *flood) Step(nd *congest.Node, r int, in []congest.Incoming) bool {
//		if f.my < 0 && len(in) > 0 { // the receives of loop iteration r
//			f.my = r + 1
//		}
//		if r+1 >= f.rounds {
//			f.dist[nd.V()] = f.my
//			return true // done: like returning from the blocking Program
//		}
//		if f.my == r+1 {
//			nd.Broadcast([]byte{1}) // the sends of loop iteration r+1
//		}
//		return false
//	}
//
// run with
//
//	net.RunStepped(func(nd *congest.Node) congest.StepProgram {
//		return &flood{rounds: rounds, dist: dist}
//	})
package congest

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"sync"
	"time"

	"congestds/internal/graph"
)

// Model selects the communication model.
type Model int

// Supported models.
const (
	// Congest limits messages to BandwidthFactor·⌈log₂ n⌉ bits per edge per
	// round.
	Congest Model = iota + 1
	// Local allows unbounded messages.
	Local
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Congest:
		return "CONGEST"
	case Local:
		return "LOCAL"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Engine selects the execution engine that drives a run. Both engines
// implement identical synchronous-round semantics; they differ only in how
// the barrier and message delivery are scheduled.
type Engine int

// Supported engines.
const (
	// EngineGoroutine runs one goroutine per node with a global
	// mutex/condvar barrier (the original engine). The zero value.
	EngineGoroutine Engine = iota
	// EngineSharded partitions nodes across a fixed GOMAXPROCS-sized set of
	// barrier shards and double-buffers per-edge message slots; delivery is
	// a flat array exchange with no per-message locking or sorting.
	EngineSharded
	// EngineStepped drives StepPrograms with a GOMAXPROCS-sized worker pool
	// over the sharded CSR slot layout: no per-node goroutine, no condvar
	// parking, message slots packed into 8-byte {offset, length} records
	// over per-worker byte arenas (a third of the [][]byte slot memory, and
	// invisible to the GC), payloads bump-allocated and recycled without
	// per-send allocation. Blocking Programs fall back to the sharded
	// goroutine-per-node path.
	EngineStepped
)

// String returns the engine name.
func (e Engine) String() string {
	switch e {
	case EngineGoroutine:
		return "goroutine"
	case EngineSharded:
		return "sharded"
	case EngineStepped:
		return "stepped"
	}
	return fmt.Sprintf("Engine(%d)", int(e))
}

// ParseEngine converts a command-line engine name to an Engine.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "goroutine":
		return EngineGoroutine, nil
	case "sharded":
		return EngineSharded, nil
	case "stepped":
		return EngineStepped, nil
	}
	return 0, fmt.Errorf("%w: unknown engine %q (want goroutine, sharded or stepped)", ErrConfig, s)
}

// Engines lists all engines (used by differential tests and benchmarks).
func Engines() []Engine { return []Engine{EngineGoroutine, EngineSharded, EngineStepped} }

// Config parameterizes a Network. The zero value selects the CONGEST model
// with the goroutine engine, the default bandwidth factor and round limit.
type Config struct {
	// Model is Congest or Local. Zero means Congest.
	Model Model
	// Engine selects the execution engine. Zero means EngineGoroutine.
	Engine Engine
	// BandwidthFactor c gives a per-edge, per-round budget of c·⌈log₂ n⌉
	// bits ("messages of size O(log n)", Section 2). Zero means 16, enough
	// for a constant number of identifiers and fixed-point values per
	// message, as the paper assumes.
	BandwidthFactor int
	// MaxRounds aborts runaway programs. Zero means 10_000_000.
	MaxRounds int
	// Deadline, when positive, bounds the wall-clock duration of a single
	// run. The engines check it at every round boundary and abort with
	// ErrDeadline, so a run never outlives the deadline by more than the
	// round in progress; metrics report how far the run got, like every
	// other failure. (Granularity is per round: a single Step that never
	// returns cannot be preempted cooperatively.)
	Deadline time.Duration
	// Ctx, when non-nil, cancels runs: its cancellation or deadline is
	// checked at every round boundary and surfaces as ErrDeadline. Unlike
	// Deadline (which restarts per run), one context bounds every run on
	// the Network, so a multi-phase pipeline shares a single budget.
	Ctx context.Context
	// Hooks, when non-nil, intercepts engine events for fault injection
	// (see internal/chaos). Production runs leave it nil; the nil check is
	// the only cost on the hot paths.
	Hooks Hooks
	// Observer, when non-nil, receives per-round telemetry (round
	// boundaries, traffic counters, engine scheduler events — see
	// internal/obs for the sinks). Observers can never change an outcome:
	// the conformance suite proves runs are byte-identical with and
	// without one. Like Hooks, nil costs one branch on the hot paths.
	Observer Observer
}

// Errors reported by Run.
var (
	// ErrBandwidth is returned when a CONGEST message exceeds the budget.
	ErrBandwidth = errors.New("congest: message exceeds bandwidth budget")
	// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
	ErrMaxRounds = errors.New("congest: exceeded MaxRounds")
	// ErrConfig is wrapped by every error reporting caller misuse — an
	// invalid Config, CkptSpec or engine name — as opposed to a run
	// failing. Callers distinguish "fix your configuration" from "the run
	// failed" with errors.Is(err, ErrConfig) or SentinelClass's "config".
	ErrConfig = errors.New("congest: invalid configuration")
)

// Network is a simulated synchronous network over a fixed graph.
type Network struct {
	g   *graph.Graph
	cfg Config

	// bwBits is the per-edge per-round bit budget, computed once at
	// NewNetwork (graph and config are immutable afterwards) so the Send
	// hot path reads a field instead of recomputing bits.Len-and-multiply
	// on every message (see BenchmarkNodeSend).
	bwBits int

	// topo is the CSR slot layout used by the sharded engine, built lazily
	// once per Network and shared across runs.
	topoOnce sync.Once
	topo     *topology
}

// NewNetwork creates a network over g.
func NewNetwork(g *graph.Graph, cfg Config) *Network {
	if cfg.Model == 0 {
		cfg.Model = Congest
	}
	if cfg.BandwidthFactor == 0 {
		cfg.BandwidthFactor = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10_000_000
	}
	net := &Network{g: g, cfg: cfg}
	if cfg.Model != Local {
		logn := bits.Len(uint(g.N()))
		if logn < 1 {
			logn = 1
		}
		net.bwBits = cfg.BandwidthFactor * logn
	}
	return net
}

// Graph returns the underlying communication graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// BandwidthBits returns the per-edge per-round bit budget (0 for LOCAL).
func (net *Network) BandwidthBits() int { return net.bwBits }

// Incoming is a message delivered to a node: the local port it arrived on
// and its payload.
type Incoming struct {
	Port    int
	Payload []byte
}

// Program is the code executed by every node, written in blocking style:
// call Send to queue messages, then Sync to advance one synchronous round
// and receive. Returning ends the node's participation (it stays silent and
// discards incoming messages).
type Program func(nd *Node)

// scheduler is the engine-side contract behind a Node: it advances the
// node through the synchronous barrier and exposes the round counter.
type scheduler interface {
	// barrier ends the node's round: its outbox is delivered and, once all
	// running nodes have arrived, nd.inbox holds the next round's messages
	// sorted by port.
	barrier(nd *Node)
	// currentRound returns the number of deliveries performed so far.
	currentRound() int
}

// Node is the per-node API available inside a Program.
type Node struct {
	net     *Network
	sched   scheduler
	v       int
	outbox  []outMsg
	inbox   []Incoming
	stopped bool
	// op counts the node's compute opportunities: 0 during Init / before the
	// first Sync, r after the r-th Sync (= Step round r-1). It addresses
	// injected faults identically across engines and program forms; unused
	// (and not maintained) when Config.Hooks is nil.
	op int
	// arena is the payload arena of the worker driving this node; nil on the
	// goroutine-backed engines, where PayloadBuf falls back to make.
	arena *payloadArena
}

type outMsg struct {
	port    int
	payload []byte
}

// V returns the node's index in 0..n-1. Programs should use V only for
// host-side bookkeeping (output slots); distributed decisions must be based
// on ID, degrees and messages, as in the real model.
func (nd *Node) V() int { return nd.v }

// ID returns the node's unique identifier.
func (nd *Node) ID() int64 { return nd.net.g.ID(nd.v) }

// N returns the number of nodes in the network, known to all nodes (the
// standard assumption that fixes the O(log n) message size).
func (nd *Node) N() int { return nd.net.g.N() }

// Degree returns the number of incident edges (ports 0..Degree()-1).
func (nd *Node) Degree() int { return nd.net.g.Degree(nd.v) }

// NeighborID returns the identifier of the neighbour on the given port.
// Knowing neighbour identifiers is the KT-1 assumption the paper uses
// ("v knows its neighbors' IDs", proof of Lemma 3.4).
func (nd *Node) NeighborID(port int) int64 {
	return nd.net.g.ID(int(nd.net.g.Neighbors(nd.v)[port]))
}

// NeighborIndex returns the node index of the neighbour on the given port
// (host-side bookkeeping only, like V).
func (nd *Node) NeighborIndex(port int) int {
	return int(nd.net.g.Neighbors(nd.v)[port])
}

// Round returns the current round number (0 before the first Sync).
func (nd *Node) Round() int { return nd.sched.currentRound() }

// Send queues a message to the neighbour on the given port for delivery at
// the next Sync. At most one message per port per round; a second Send on
// the same port in one round replaces the first. Zero-length payloads are
// canonicalized to nil on delivery, so the representation of an empty
// message is identical on every engine.
func (nd *Node) Send(port int, payload []byte) {
	if port < 0 || port >= nd.Degree() {
		panic(runError{fmt.Errorf("congest: node %d sends on invalid port %d", nd.v, port)})
	}
	if len(payload) == 0 {
		payload = nil
	}
	if h := nd.net.cfg.Hooks; h != nil {
		// Before the bandwidth check, so a payload grown past the budget
		// fails identically on every engine; re-canonicalize afterwards so
		// an injected truncation-to-empty stays representation-identical.
		payload = h.AlterPayload(nd.v, port, nd.op, payload)
		if len(payload) == 0 {
			payload = nil
		}
	}
	if budget := nd.net.bwBits; budget > 0 && len(payload)*8 > budget {
		panic(runError{fmt.Errorf("%w: node %d sent %d bits, budget %d",
			ErrBandwidth, nd.v, len(payload)*8, budget)})
	}
	for i := range nd.outbox {
		if nd.outbox[i].port == port {
			nd.outbox[i].payload = payload
			return
		}
	}
	nd.outbox = append(nd.outbox, outMsg{port: port, payload: payload})
}

// Broadcast queues the same payload on every port.
func (nd *Node) Broadcast(payload []byte) {
	for p := 0; p < nd.Degree(); p++ {
		nd.Send(p, payload)
	}
}

// PayloadBuf returns a zero-length scratch buffer with the given capacity
// for building a payload to Send in the current round. On EngineStepped the
// buffer is bump-allocated from the worker's scratch arena and recycled at
// the end of the round — deposit copies the sent bytes into the packed slot
// arena — eliminating the per-send allocation; on the goroutine-backed
// engines it falls back to make. Buffers obtained here must be filled and
// sent in the same Init/Step call that allocated them, and a received
// payload (a view over the sender's slot arena) is only valid until the
// receiving Step returns (copy it to retain it).
func (nd *Node) PayloadBuf(capacity int) []byte {
	if nd.arena != nil {
		return nd.arena.alloc(capacity)
	}
	return make([]byte, 0, capacity)
}

// Sync ends the node's current round: queued messages are exchanged and the
// messages sent to this node are returned, sorted by port. Sync blocks until
// every running node has also called Sync (or returned).
func (nd *Node) Sync() []Incoming {
	nd.sched.barrier(nd)
	if h := nd.net.cfg.Hooks; h != nil {
		// The node is past the barrier, about to start compute opportunity
		// op (= Step round op-1 in stepped form). A crash here ends its
		// participation silently: the unwound goroutine's deferred finish
		// delivers an empty outbox, matching the stepped engine's handling.
		nd.op++
		if h.Crash(nd.v, nd.op) {
			nd.inbox = nil
			panic(crashStop{})
		}
	}
	in := nd.inbox
	nd.inbox = nil
	return in
}

// Metrics summarizes a run. ChargedRounds accounts for structurally
// simulated phases (see Ledger); TotalRounds is the sum.
type Metrics struct {
	Rounds        int     // synchronous rounds executed by the engine
	ChargedRounds int     // rounds charged by structural simulation
	Messages      int64   // messages delivered
	Bits          int64   // payload bits delivered
	MaxMsgBits    int     // largest single message
	BandwidthBits int     // per-edge per-round budget (0 = unbounded)
	Model         Model   // model the run used
	AvgMsgBits    float64 // mean payload size
}

// Add merges other into m (used to combine pipeline stages). AvgMsgBits is
// recomputed from the merged totals — the message-weighted mean, not the
// mean of the two stage means — and MaxMsgBits is the max of the maxima,
// so unequal stages merge correctly (see TestMetricsAddUnequalStages).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.ChargedRounds += other.ChargedRounds
	m.Messages += other.Messages
	m.Bits += other.Bits
	if other.MaxMsgBits > m.MaxMsgBits {
		m.MaxMsgBits = other.MaxMsgBits
	}
	if m.BandwidthBits == 0 {
		m.BandwidthBits = other.BandwidthBits
	}
	if m.Model == 0 {
		m.Model = other.Model
	}
	if m.Messages > 0 {
		m.AvgMsgBits = float64(m.Bits) / float64(m.Messages)
	}
}

// TotalRounds returns executed plus charged rounds.
func (m Metrics) TotalRounds() int { return m.Rounds + m.ChargedRounds }

// runError wraps an error thrown inside a node goroutine so the engine can
// distinguish simulator-raised conditions from program bugs.
type runError struct{ err error }

// Run executes prog on every node until all nodes return. It returns the
// collected metrics. Any simulator violation (bandwidth, bad port) or panic
// inside a program aborts the run with an error. The engine is selected by
// Config.Engine; all engines produce identical results and metrics. A
// blocking Program needs a goroutine stack per node while parked at Sync, so
// under EngineStepped it falls back to the sharded goroutine-per-node
// scheduler; only StepPrograms (see RunStepped) execute stacklessly.
func (net *Network) Run(prog Program) (Metrics, error) {
	switch net.cfg.Engine {
	case EngineSharded, EngineStepped:
		return net.runSharded(prog)
	default:
		return net.runGoroutine(prog)
	}
}

// recoverNode converts a panic inside a node's program into the run failure
// reported by the engine via fail.
func recoverNode(v int, fail func(error)) {
	if r := recover(); r != nil {
		if _, ok := r.(crashStop); ok {
			// An injected crash-stop: the node just stops participating;
			// the run itself is healthy.
			return
		}
		if re, ok := r.(runError); ok {
			fail(re.err)
			return
		}
		fail(fmt.Errorf("congest: node %d panicked: %v", v, r))
	}
}

// portOf returns the port index of neighbour u at node v.
func portOf(g *graph.Graph, v, u int) int {
	list := g.Neighbors(v)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(list[mid]) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
