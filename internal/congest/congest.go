// Package congest simulates the synchronous CONGEST and LOCAL models of
// distributed computing (Peleg 2000), as defined in Section 2 of the paper.
//
// A Network wraps a communication graph. Each node executes a Program in its
// own goroutine; rounds are synchronous: all nodes compute, send at most one
// message per incident edge, and a barrier (Sync) delivers messages for the
// next round. In the CONGEST model the simulator enforces the O(log n)
// message-size bound and records bandwidth metrics; in the LOCAL model
// messages are unbounded.
//
// Determinism: inboxes are sorted by port, programs may not use any entropy
// source, and the engine introduces none, so the outcome of a run is a pure
// function of the graph, the IDs and the program — independent of goroutine
// scheduling. The test suite checks this by running pipelines twice.
package congest

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sort"
	"sync"

	"congestds/internal/graph"
)

// Model selects the communication model.
type Model int

// Supported models.
const (
	// Congest limits messages to BandwidthFactor·⌈log₂ n⌉ bits per edge per
	// round.
	Congest Model = iota + 1
	// Local allows unbounded messages.
	Local
)

// String returns the model name.
func (m Model) String() string {
	switch m {
	case Congest:
		return "CONGEST"
	case Local:
		return "LOCAL"
	}
	return fmt.Sprintf("Model(%d)", int(m))
}

// Config parameterizes a Network. The zero value selects the CONGEST model
// with the default bandwidth factor and round limit.
type Config struct {
	// Model is Congest or Local. Zero means Congest.
	Model Model
	// BandwidthFactor c gives a per-edge, per-round budget of c·⌈log₂ n⌉
	// bits ("messages of size O(log n)", Section 2). Zero means 16, enough
	// for a constant number of identifiers and fixed-point values per
	// message, as the paper assumes.
	BandwidthFactor int
	// MaxRounds aborts runaway programs. Zero means 10_000_000.
	MaxRounds int
}

// Errors reported by Run.
var (
	// ErrBandwidth is returned when a CONGEST message exceeds the budget.
	ErrBandwidth = errors.New("congest: message exceeds bandwidth budget")
	// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
	ErrMaxRounds = errors.New("congest: exceeded MaxRounds")
)

// Network is a simulated synchronous network over a fixed graph.
type Network struct {
	g   *graph.Graph
	cfg Config
}

// NewNetwork creates a network over g.
func NewNetwork(g *graph.Graph, cfg Config) *Network {
	if cfg.Model == 0 {
		cfg.Model = Congest
	}
	if cfg.BandwidthFactor == 0 {
		cfg.BandwidthFactor = 16
	}
	if cfg.MaxRounds == 0 {
		cfg.MaxRounds = 10_000_000
	}
	return &Network{g: g, cfg: cfg}
}

// Graph returns the underlying communication graph.
func (net *Network) Graph() *graph.Graph { return net.g }

// BandwidthBits returns the per-edge per-round bit budget (0 for LOCAL).
func (net *Network) BandwidthBits() int {
	if net.cfg.Model == Local {
		return 0
	}
	n := net.g.N()
	logn := bits.Len(uint(n))
	if logn < 1 {
		logn = 1
	}
	return net.cfg.BandwidthFactor * logn
}

// Incoming is a message delivered to a node: the local port it arrived on
// and its payload.
type Incoming struct {
	Port    int
	Payload []byte
}

// Program is the code executed by every node, written in blocking style:
// call Send to queue messages, then Sync to advance one synchronous round
// and receive. Returning ends the node's participation (it stays silent and
// discards incoming messages).
type Program func(nd *Node)

// Node is the per-node API available inside a Program.
type Node struct {
	net     *Network
	engine  *engine
	v       int
	outbox  []outMsg
	inbox   []Incoming
	stopped bool
}

type outMsg struct {
	port    int
	payload []byte
}

// V returns the node's index in 0..n-1. Programs should use V only for
// host-side bookkeeping (output slots); distributed decisions must be based
// on ID, degrees and messages, as in the real model.
func (nd *Node) V() int { return nd.v }

// ID returns the node's unique identifier.
func (nd *Node) ID() int64 { return nd.net.g.ID(nd.v) }

// N returns the number of nodes in the network, known to all nodes (the
// standard assumption that fixes the O(log n) message size).
func (nd *Node) N() int { return nd.net.g.N() }

// Degree returns the number of incident edges (ports 0..Degree()-1).
func (nd *Node) Degree() int { return nd.net.g.Degree(nd.v) }

// NeighborID returns the identifier of the neighbour on the given port.
// Knowing neighbour identifiers is the KT-1 assumption the paper uses
// ("v knows its neighbors' IDs", proof of Lemma 3.4).
func (nd *Node) NeighborID(port int) int64 {
	return nd.net.g.ID(int(nd.net.g.Neighbors(nd.v)[port]))
}

// NeighborIndex returns the node index of the neighbour on the given port
// (host-side bookkeeping only, like V).
func (nd *Node) NeighborIndex(port int) int {
	return int(nd.net.g.Neighbors(nd.v)[port])
}

// Round returns the current round number (0 before the first Sync).
func (nd *Node) Round() int { return nd.engine.round }

// Send queues a message to the neighbour on the given port for delivery at
// the next Sync. At most one message per port per round; a second Send on
// the same port in one round replaces the first.
func (nd *Node) Send(port int, payload []byte) {
	if port < 0 || port >= nd.Degree() {
		panic(runError{fmt.Errorf("congest: node %d sends on invalid port %d", nd.v, port)})
	}
	if budget := nd.net.BandwidthBits(); budget > 0 && len(payload)*8 > budget {
		panic(runError{fmt.Errorf("%w: node %d sent %d bits, budget %d",
			ErrBandwidth, nd.v, len(payload)*8, budget)})
	}
	for i := range nd.outbox {
		if nd.outbox[i].port == port {
			nd.outbox[i].payload = payload
			return
		}
	}
	nd.outbox = append(nd.outbox, outMsg{port: port, payload: payload})
}

// Broadcast queues the same payload on every port.
func (nd *Node) Broadcast(payload []byte) {
	for p := 0; p < nd.Degree(); p++ {
		nd.Send(p, payload)
	}
}

// Sync ends the node's current round: queued messages are exchanged and the
// messages sent to this node are returned, sorted by port. Sync blocks until
// every running node has also called Sync (or returned).
func (nd *Node) Sync() []Incoming {
	nd.engine.barrier(nd)
	in := nd.inbox
	nd.inbox = nil
	return in
}

// Metrics summarizes a run. ChargedRounds accounts for structurally
// simulated phases (see Ledger); TotalRounds is the sum.
type Metrics struct {
	Rounds        int     // synchronous rounds executed by the engine
	ChargedRounds int     // rounds charged by structural simulation
	Messages      int64   // messages delivered
	Bits          int64   // payload bits delivered
	MaxMsgBits    int     // largest single message
	BandwidthBits int     // per-edge per-round budget (0 = unbounded)
	Model         Model   // model the run used
	AvgMsgBits    float64 // mean payload size
}

// Add merges other into m (used to combine pipeline stages).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.ChargedRounds += other.ChargedRounds
	m.Messages += other.Messages
	m.Bits += other.Bits
	if other.MaxMsgBits > m.MaxMsgBits {
		m.MaxMsgBits = other.MaxMsgBits
	}
	if m.BandwidthBits == 0 {
		m.BandwidthBits = other.BandwidthBits
	}
	if m.Model == 0 {
		m.Model = other.Model
	}
	if m.Messages > 0 {
		m.AvgMsgBits = float64(m.Bits) / float64(m.Messages)
	}
}

// TotalRounds returns executed plus charged rounds.
func (m Metrics) TotalRounds() int { return m.Rounds + m.ChargedRounds }

// runError wraps an error thrown inside a node goroutine so the engine can
// distinguish simulator-raised conditions from program bugs.
type runError struct{ err error }

// engine coordinates one run.
type engine struct {
	net   *Network
	nodes []*Node
	round int

	mu      sync.Mutex
	waiting int
	active  int
	resume  chan struct{}
	pending [][]Incoming
	failure error

	metrics Metrics
}

// Run executes prog on every node until all node goroutines return. It
// returns the collected metrics. Any simulator violation (bandwidth, bad
// port) or panic inside a program aborts the run with an error.
func (net *Network) Run(prog Program) (Metrics, error) {
	n := net.g.N()
	eng := &engine{
		net:     net,
		nodes:   make([]*Node, n),
		resume:  make(chan struct{}),
		pending: make([][]Incoming, n),
		active:  n,
	}
	eng.metrics.Model = net.cfg.Model
	eng.metrics.BandwidthBits = net.BandwidthBits()
	for v := 0; v < n; v++ {
		eng.nodes[v] = &Node{net: net, engine: eng, v: v}
	}
	var wg sync.WaitGroup
	wg.Add(n)
	// Limit simultaneous OS-level parallelism only through GOMAXPROCS; the
	// goroutines block on the barrier, so n goroutines are fine even for
	// large n.
	_ = runtime.GOMAXPROCS(0)
	for v := 0; v < n; v++ {
		nd := eng.nodes[v]
		go func() {
			defer wg.Done()
			defer eng.finish(nd)
			defer func() {
				if r := recover(); r != nil {
					if re, ok := r.(runError); ok {
						eng.fail(re.err)
						return
					}
					eng.fail(fmt.Errorf("congest: node %d panicked: %v", nd.v, r))
				}
			}()
			prog(nd)
		}()
	}
	wg.Wait()
	if eng.failure != nil {
		return eng.metrics, eng.failure
	}
	eng.metrics.Rounds = eng.round
	if eng.metrics.Messages > 0 {
		eng.metrics.AvgMsgBits = float64(eng.metrics.Bits) / float64(eng.metrics.Messages)
	}
	return eng.metrics, nil
}

// barrier implements Sync: the last arriving node performs delivery and
// wakes everyone.
func (eng *engine) barrier(nd *Node) {
	eng.mu.Lock()
	if eng.failure != nil {
		eng.mu.Unlock()
		panic(runError{eng.failure}) // unwind this goroutine; Run reports the first failure
	}
	eng.deposit(nd)
	eng.waiting++
	if eng.waiting == eng.active {
		eng.deliverLocked()
		eng.mu.Unlock()
		return
	}
	resume := eng.resume
	eng.mu.Unlock()
	<-resume
}

// finish marks a node as permanently done.
func (eng *engine) finish(nd *Node) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if nd.stopped {
		return
	}
	nd.stopped = true
	eng.deposit(nd)
	eng.active--
	if eng.active > 0 && eng.waiting == eng.active {
		eng.deliverLocked()
	}
}

// deposit moves nd's outbox into the pending inboxes. Caller holds mu.
func (eng *engine) deposit(nd *Node) {
	for _, m := range nd.outbox {
		dst := nd.net.g.Neighbors(nd.v)[m.port]
		// The receiving port is the index of nd.v in dst's neighbour list.
		dstPort := portOf(nd.net.g, int(dst), nd.v)
		eng.pending[dst] = append(eng.pending[dst], Incoming{Port: dstPort, Payload: m.payload})
		eng.metrics.Messages++
		eng.metrics.Bits += int64(len(m.payload) * 8)
		if b := len(m.payload) * 8; b > eng.metrics.MaxMsgBits {
			eng.metrics.MaxMsgBits = b
		}
	}
	nd.outbox = nd.outbox[:0]
}

// deliverLocked distributes pending messages and resumes all waiters.
// Caller holds mu.
func (eng *engine) deliverLocked() {
	eng.round++
	if eng.round > eng.net.cfg.MaxRounds && eng.failure == nil {
		eng.failure = fmt.Errorf("%w (%d)", ErrMaxRounds, eng.net.cfg.MaxRounds)
	}
	for v, msgs := range eng.pending {
		if msgs == nil {
			continue
		}
		sort.Slice(msgs, func(i, j int) bool { return msgs[i].Port < msgs[j].Port })
		if !eng.nodes[v].stopped {
			eng.nodes[v].inbox = msgs
		}
		eng.pending[v] = nil
	}
	eng.waiting = 0
	close(eng.resume)
	eng.resume = make(chan struct{})
}

// fail records the first failure and releases any waiters.
func (eng *engine) fail(err error) {
	eng.mu.Lock()
	defer eng.mu.Unlock()
	if eng.failure == nil {
		eng.failure = err
	}
	// Release all current waiters so their goroutines can observe the
	// failure and unwind.
	eng.waiting = 0
	close(eng.resume)
	eng.resume = make(chan struct{})
}

// portOf returns the port index of neighbour u at node v.
func portOf(g *graph.Graph, v, u int) int {
	list := g.Neighbors(v)
	lo, hi := 0, len(list)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(list[mid]) < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
