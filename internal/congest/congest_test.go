package congest

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"congestds/internal/graph"
)

// forEachEngine runs the test body once per execution engine, so every
// semantics test below covers both the goroutine and the sharded engine.
func forEachEngine(t *testing.T, fn func(t *testing.T, eng Engine)) {
	for _, eng := range Engines() {
		t.Run(eng.String(), func(t *testing.T) { fn(t, eng) })
	}
}

func TestModelString(t *testing.T) {
	if Congest.String() != "CONGEST" || Local.String() != "LOCAL" {
		t.Errorf("model names wrong: %v %v", Congest, Local)
	}
}

func TestEngineString(t *testing.T) {
	if EngineGoroutine.String() != "goroutine" || EngineSharded.String() != "sharded" ||
		EngineStepped.String() != "stepped" {
		t.Errorf("engine names wrong: %v %v %v", EngineGoroutine, EngineSharded, EngineStepped)
	}
	if Engine(99).String() == "" {
		t.Error("unknown engine must still render")
	}
}

func TestParseEngine(t *testing.T) {
	for _, tt := range []struct {
		in   string
		want Engine
		ok   bool
	}{
		{"", EngineGoroutine, true},
		{"goroutine", EngineGoroutine, true},
		{"sharded", EngineSharded, true},
		{"stepped", EngineStepped, true},
		{"warp", 0, false},
	} {
		got, err := ParseEngine(tt.in)
		if (err == nil) != tt.ok || got != tt.want {
			t.Errorf("ParseEngine(%q) = (%v, %v), want (%v, ok=%v)", tt.in, got, err, tt.want, tt.ok)
		}
	}
}

// Every node broadcasts its ID for one round; each node must receive exactly
// the IDs of its neighbours, sorted by port.
func TestOneRoundIDExchange(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Cycle(8)
		net := NewNetwork(g, Config{Engine: eng})
		got := make([][]int64, g.N())
		m, err := net.Run(func(nd *Node) {
			nd.Broadcast(AppendVarint(nil, nd.ID()))
			in := nd.Sync()
			ids := make([]int64, 0, len(in))
			for _, msg := range in {
				id, _ := Varint(msg.Payload, 0)
				ids = append(ids, id)
			}
			got[nd.V()] = ids
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.Rounds != 1 {
			t.Errorf("rounds=%d, want 1", m.Rounds)
		}
		if m.Messages != int64(2*g.M()) {
			t.Errorf("messages=%d, want %d", m.Messages, 2*g.M())
		}
		for v := 0; v < g.N(); v++ {
			nbrs := g.Neighbors(v)
			if len(got[v]) != len(nbrs) {
				t.Fatalf("node %d received %d messages, want %d", v, len(got[v]), len(nbrs))
			}
			for i, w := range nbrs {
				if got[v][i] != g.ID(int(w)) {
					t.Errorf("node %d port %d: got id %d, want %d", v, i, got[v][i], g.ID(int(w)))
				}
			}
		}
	})
}

// Multi-round flood: distance from node 0 computed by message passing must
// equal BFS distance.
func TestFloodDistances(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Grid(5, 7)
		net := NewNetwork(g, Config{Engine: eng})
		dist := make([]int, g.N())
		_, err := net.Run(func(nd *Node) {
			my := -1
			if nd.ID() == 1 { // the node with the smallest ID is the source
				my = 0
			}
			for r := 0; r < 2*g.N(); r++ {
				if my == r {
					nd.Broadcast([]byte{1})
				}
				in := nd.Sync()
				if my < 0 && len(in) > 0 {
					my = r + 1
				}
			}
			dist[nd.V()] = my
		})
		if err != nil {
			t.Fatal(err)
		}
		src := -1
		for v := 0; v < g.N(); v++ {
			if g.ID(v) == 1 {
				src = v
			}
		}
		want, _ := g.BFS(src)
		for v := range dist {
			if dist[v] != want[v] {
				t.Errorf("node %d: flooded dist %d, want %d", v, dist[v], want[v])
			}
		}
	})
}

func TestBandwidthEnforced(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(4)
		net := NewNetwork(g, Config{Model: Congest, BandwidthFactor: 1, Engine: eng})
		// Budget = 1·⌈log₂ 4⌉ = 2 bits; any 1-byte message exceeds it.
		_, err := net.Run(func(nd *Node) {
			nd.Broadcast([]byte{0xff})
			nd.Sync()
		})
		if !errors.Is(err, ErrBandwidth) {
			t.Fatalf("err=%v, want ErrBandwidth", err)
		}
	})
}

func TestLocalModelUnbounded(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(3)
		net := NewNetwork(g, Config{Model: Local, Engine: eng})
		big := make([]byte, 1<<16)
		m, err := net.Run(func(nd *Node) {
			nd.Broadcast(big)
			nd.Sync()
		})
		if err != nil {
			t.Fatal(err)
		}
		if m.MaxMsgBits != len(big)*8 {
			t.Errorf("MaxMsgBits=%d, want %d", m.MaxMsgBits, len(big)*8)
		}
		if m.BandwidthBits != 0 {
			t.Errorf("LOCAL budget=%d, want 0", m.BandwidthBits)
		}
	})
}

func TestMaxRounds(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(2)
		net := NewNetwork(g, Config{MaxRounds: 5, Engine: eng})
		_, err := net.Run(func(nd *Node) {
			for {
				nd.Sync()
			}
		})
		if !errors.Is(err, ErrMaxRounds) {
			t.Fatalf("err=%v, want ErrMaxRounds", err)
		}
	})
}

func TestNodesFinishingEarly(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(5)
		net := NewNetwork(g, Config{Engine: eng})
		var total atomic.Int64
		_, err := net.Run(func(nd *Node) {
			// Node with even V stops after round 1, odd nodes run 3 rounds.
			rounds := 1
			if nd.V()%2 == 1 {
				rounds = 3
			}
			for r := 0; r < rounds; r++ {
				nd.Broadcast([]byte{byte(r)})
				in := nd.Sync()
				total.Add(int64(len(in)))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if total.Load() == 0 {
			t.Error("no messages delivered")
		}
	})
}

func TestProgramPanicSurfacesAsError(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(3)
		net := NewNetwork(g, Config{Engine: eng})
		_, err := net.Run(func(nd *Node) {
			if nd.V() == 1 {
				panic("boom")
			}
			nd.Sync()
		})
		if err == nil {
			t.Fatal("panic did not surface as error")
		}
	})
}

func TestInvalidPort(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(3)
		net := NewNetwork(g, Config{Engine: eng})
		_, err := net.Run(func(nd *Node) {
			nd.Send(99, []byte{1})
			nd.Sync()
		})
		if err == nil {
			t.Fatal("invalid port accepted")
		}
	})
}

func TestSendReplacesSamePort(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(2)
		net := NewNetwork(g, Config{Engine: eng})
		var got []byte
		var count int64
		m, err := net.Run(func(nd *Node) {
			if nd.V() == 0 {
				nd.Send(0, []byte{1})
				nd.Send(0, []byte{2})
				nd.Sync()
				return
			}
			in := nd.Sync()
			if len(in) == 1 {
				got = in[0].Payload
				count = 1
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if count != 1 || len(got) != 1 || got[0] != 2 {
			t.Errorf("got %v (count %d), want [2]", got, count)
		}
		if m.Messages != 1 {
			t.Errorf("replaced send double-counted: messages=%d, want 1", m.Messages)
		}
	})
}

// Determinism: an order-sensitive computation must produce identical results
// across runs despite goroutine scheduling — and identical results across
// engines.
func TestDeterministicAcrossRunsAndEngines(t *testing.T) {
	g := graph.GNPConnected(60, 0.1, 11)
	run := func(eng Engine) []int64 {
		net := NewNetwork(g, Config{Engine: eng})
		out := make([]int64, g.N())
		_, err := net.Run(func(nd *Node) {
			acc := nd.ID()
			for r := 0; r < 4; r++ {
				nd.Broadcast(AppendVarint(nil, acc))
				in := nd.Sync()
				for i, msg := range in {
					v, _ := Varint(msg.Payload, 0)
					acc = acc*31 + v*int64(i+1) // order-sensitive mix
				}
			}
			out[nd.V()] = acc
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(EngineGoroutine)
	for _, eng := range Engines() {
		a, b := run(eng), run(eng)
		for v := range a {
			if a[v] != b[v] {
				t.Fatalf("%v node %d: run1=%d run2=%d", eng, v, a[v], b[v])
			}
			if a[v] != ref[v] {
				t.Fatalf("node %d: engine %v=%d, goroutine reference=%d", v, eng, a[v], ref[v])
			}
		}
	}
}

func TestNeighborID(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Star(4)
		net := NewNetwork(g, Config{Engine: eng})
		_, err := net.Run(func(nd *Node) {
			for p := 0; p < nd.Degree(); p++ {
				want := g.ID(nd.NeighborIndex(p))
				if nd.NeighborID(p) != want {
					panic("neighbor id mismatch")
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// The empty graph must run cleanly on both engines.
func TestEmptyGraph(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g, err := graph.FromEdges(0, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewNetwork(g, Config{Engine: eng}).Run(func(nd *Node) { nd.Sync() })
		if err != nil {
			t.Fatal(err)
		}
		if m.Rounds != 0 || m.Messages != 0 {
			t.Errorf("empty graph metrics: %+v", m)
		}
	})
}

// Nodes that return without ever calling Sync must still have their final
// outbox delivered (the seed engine's finish semantics).
func TestFinalSendWithoutSync(t *testing.T) {
	forEachEngine(t, func(t *testing.T, eng Engine) {
		g := graph.Path(3)
		net := NewNetwork(g, Config{Engine: eng})
		var received atomic.Int64
		m, err := net.Run(func(nd *Node) {
			if nd.V() == 0 {
				nd.Send(0, []byte{42}) // send and return without Sync
				return
			}
			in := nd.Sync()
			for _, msg := range in {
				if len(msg.Payload) == 1 && msg.Payload[0] == 42 {
					received.Add(1)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if received.Load() != 1 {
			t.Errorf("final send delivered %d times, want 1", received.Load())
		}
		if m.Messages != 1 {
			t.Errorf("messages=%d, want 1", m.Messages)
		}
	})
}

// The CSR slot layout must give every directed edge a unique destination
// slot that round-trips back to the sender's port.
func TestTopologySlots(t *testing.T) {
	for _, g := range []*graph.Graph{
		graph.Path(6), graph.Cycle(5), graph.Star(7),
		graph.GNPConnected(40, 0.1, 3), graph.Grid(4, 5),
	} {
		net := NewNetwork(g, Config{})
		topo := net.topology()
		if got, want := len(topo.destSlot), 2*g.M(); got != want {
			t.Fatalf("destSlot len=%d, want %d", got, want)
		}
		seen := make(map[int32]bool, len(topo.destSlot))
		for v := 0; v < g.N(); v++ {
			for p, w := range g.Neighbors(v) {
				slot := topo.destSlot[topo.inOff[v]+int32(p)]
				if seen[slot] {
					t.Fatalf("slot %d assigned twice", slot)
				}
				seen[slot] = true
				u := int(w)
				q := int(slot - topo.inOff[u])
				if q < 0 || q >= g.Degree(u) {
					t.Fatalf("slot %d out of node %d's inbox range", slot, u)
				}
				if int(g.Neighbors(u)[q]) != v {
					t.Fatalf("slot for edge (%d,%d) maps to wrong port %d of %d", v, u, q, u)
				}
			}
		}
	}
}

func TestLedger(t *testing.T) {
	var l Ledger
	// phase-a carries charged rounds inside its measured metrics (a pipeline
	// stage that folded structural simulation into a run); the phase row must
	// keep them, not just the totals.
	l.RecordRun("phase-a", Metrics{Rounds: 3, ChargedRounds: 2, Messages: 10, Bits: 100})
	l.Charge("phase-b", 7)
	l.Charge("neg", -5) // clamped
	m := l.Metrics()
	if m.Rounds != 3 || m.ChargedRounds != 9 || m.TotalRounds() != 12 {
		t.Errorf("ledger totals wrong: %+v", m)
	}
	phases := l.Phases()
	if len(phases) != 3 {
		t.Fatalf("phases=%d, want 3", len(phases))
	}
	if phases[0].Charged != 2 || phases[0].Rounds != 3 {
		t.Errorf("phase-a row = %+v, want rounds=3 charged=2 (RecordRun must not drop ChargedRounds)", phases[0])
	}
	// The per-phase breakdown must add up to the totals it is printed with.
	sumRounds, sumCharged := 0, 0
	for _, p := range phases {
		sumRounds += p.Rounds
		sumCharged += p.Charged
	}
	if sumRounds != m.Rounds || sumCharged != m.ChargedRounds {
		t.Errorf("phase breakdown sums to (%d,%d), totals are (%d,%d)",
			sumRounds, sumCharged, m.Rounds, m.ChargedRounds)
	}
	s := l.String()
	if !strings.Contains(s, "total rounds=12 (measured 3 + charged 9)") {
		t.Errorf("String totals wrong:\n%s", s)
	}
	if !strings.Contains(s, "phase-a") || !strings.Contains(s, "rounds=3 charged=2 msgs=10") {
		t.Errorf("String phase row dropped charged rounds:\n%s", s)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	buf := AppendUvarint(nil, 300)
	buf = AppendVarint(buf, -77)
	x, off := Uvarint(buf, 0)
	if x != 300 || off <= 0 {
		t.Fatalf("Uvarint got (%d,%d)", x, off)
	}
	y, off2 := Varint(buf, off)
	if y != -77 || off2 != len(buf) {
		t.Fatalf("Varint got (%d,%d)", y, off2)
	}
	if _, bad := Uvarint([]byte{}, 0); bad != -1 {
		t.Error("decoding empty buffer should fail")
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Rounds: 1, Messages: 2, Bits: 16, MaxMsgBits: 8, Model: Congest, BandwidthBits: 64}
	b := Metrics{Rounds: 2, Messages: 2, Bits: 48, MaxMsgBits: 24}
	a.Add(b)
	if a.Rounds != 3 || a.Messages != 4 || a.Bits != 64 || a.MaxMsgBits != 24 {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.AvgMsgBits != 16 {
		t.Errorf("AvgMsgBits=%v, want 16", a.AvgMsgBits)
	}
}
