//go:build race

package congest

func init() { raceEnabled = true }
